#!/usr/bin/env python3
"""Repo-specific lint rules for the Wi-Fi Backscatter codebase.

Run from anywhere: paths are resolved relative to the repo root (the parent
of this file's directory). Exits non-zero if any rule is violated; run by
scripts/check.sh as part of the pre-PR gate.

Rules
-----
pragma-once       every header under src/ starts its code with #pragma once
using-namespace   no `using namespace` at any scope in headers under src/
no-rand           no rand()/srand() anywhere in src/ (use sim::RngStream:
                  seeded, forkable, deterministic across platforms)
unit-suffix       public-API scalar parameters in src/phy/ and src/reader/
                  headers carry a physical-unit suffix (_us, _dbm, _hz, _m,
                  ...). TimeUs parameters must end in _us; double parameters
                  whose names say they are physical quantities (power, freq,
                  duration, loss, ...) must name their unit.
metric-name       metric names passed to counter()/gauge()/histogram() in
                  src/ are lowercase dotted `module.subsystem.name` (at
                  least three segments) and end in a unit suffix (_total,
                  _count, _us, _uj, _bps, _ratio, ...), so dashboards can
                  group by module and interpret values without a data
                  dictionary.
no-raw-thread     no raw std::thread / std::jthread / std::async outside
                  src/runner/. Parallelism goes through wb::runner's
                  SweepRunner so results stay deterministic (per-task
                  seeds, in-order merge) and the concurrency surface stays
                  small enough to audit under TSan.
no-stox           no std::sto{i,l,ll,ul,ull,d,f,ld} outside tests (src/,
                  bench/, examples/): they accept trailing garbage
                  ("12abc" -> 12), let stoul wrap negative inputs, and
                  throw context-free exceptions. Use wb::util::parse_full
                  (util/parse.h) for strict full-string parsing.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

# Unit suffixes accepted by the unit-suffix rule.
UNIT_SUFFIXES = (
    "_us", "_ms", "_s",          # time
    "_hz", "_khz", "_mhz", "_ghz",  # frequency
    "_dbm", "_db",               # power / gain, log domain
    "_mw", "_uw", "_w",          # power, linear
    "_uj", "_j",                 # energy
    "_m", "_cm", "_km",          # distance
    "_bps", "_pps",              # rates
    "_f",                        # capacitance
)

# A double parameter whose name contains one of these stems is a physical
# quantity and must carry a unit suffix.
PHYSICAL_STEMS = (
    "power", "freq", "duration", "delay", "window", "interval",
    "tau", "loss", "atten", "energy", "wavelength", "bandwidth",
    "distance", "dist",
)

# Unit suffixes accepted at the end of a metric name (wb::obs convention:
# the last path segment says what is being counted/measured).
METRIC_UNIT_SUFFIXES = (
    "_total", "_count",                    # event / object counts
    "_us", "_ns", "_s",                    # time
    "_uj", "_j",                           # energy
    "_uw", "_mw", "_w",                    # power
    "_bps", "_pps", "_hz",                 # rates
    "_bits", "_bytes",                     # sizes
    "_ratio", "_pct",                      # dimensionless
    "_db", "_dbm", "_m",                   # physical
)


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blank out comments and string/char literals, preserving line numbers.

    With keep_strings=True only comments are blanked; literal contents stay
    (used by rules that inspect string arguments, e.g. metric-name).
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            # C++14 digit separator (10'000) or a suffix position — not a
            # character literal.
            out.append(c)
            i += 1
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            if keep_strings:
                out.append(text[i:j])
            else:
                out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


class Linter:
    def __init__(self) -> None:
        self.violations: list[str] = []

    def report(self, path: Path, line: int, rule: str, msg: str) -> None:
        rel = path.relative_to(REPO_ROOT)
        self.violations.append(f"{rel}:{line}: [{rule}] {msg}")

    # ---- rules ----

    def check_pragma_once(self, path: Path, code: str) -> None:
        if not re.search(r"^\s*#\s*pragma\s+once\b", code, re.MULTILINE):
            self.report(path, 1, "pragma-once", "header lacks #pragma once")

    def check_using_namespace(self, path: Path, code: str) -> None:
        for m in re.finditer(r"\busing\s+namespace\b", code):
            self.report(path, line_of(code, m.start()), "using-namespace",
                        "`using namespace` in a header leaks into every "
                        "includer; qualify names instead")

    def check_no_rand(self, path: Path, code: str) -> None:
        for m in re.finditer(r"\b(?:std\s*::\s*)?(s?rand)\s*\(", code):
            self.report(path, line_of(code, m.start()), "no-rand",
                        f"{m.group(1)}() is non-deterministic across "
                        "platforms; use wb::sim::RngStream")

    STOX_RE = re.compile(
        r"\bstd\s*::\s*(sto(?:i|l|ll|ul|ull|d|f|ld))\s*\(")

    def check_no_stox(self, path: Path, code: str) -> None:
        for m in self.STOX_RE.finditer(code):
            self.report(path, line_of(code, m.start()), "no-stox",
                        f"std::{m.group(1)}() accepts trailing garbage and "
                        "throws context-free errors; use "
                        "wb::util::parse_full (util/parse.h)")

    def check_no_raw_thread(self, path: Path, code: str) -> None:
        if path.relative_to(SRC).parts[0] == "runner":
            return
        for m in re.finditer(r"\bstd\s*::\s*(thread|jthread|async)\b", code):
            self.report(path, line_of(code, m.start()), "no-raw-thread",
                        f"std::{m.group(1)} outside src/runner/ bypasses "
                        "the deterministic sweep API; use "
                        "wb::runner::SweepRunner (or ThreadPool)")

    # Matches `TimeUs name` / `double name` parameter declarations: the name
    # must be followed by `,` or `)` (optionally via a simple default value),
    # which excludes struct fields and locals (they end with `;`).
    PARAM_RE = re.compile(
        r"\b(TimeUs|double|float)\s+([A-Za-z_]\w*)\s*(?:=\s*[^,;(){}]*)?([,)])")

    def check_unit_suffix(self, path: Path, code: str) -> None:
        for m in self.PARAM_RE.finditer(code):
            typ, name = m.group(1), m.group(2)
            line = line_of(code, m.start())
            if typ == "TimeUs":
                if not name.endswith(("_us", "_s")):
                    self.report(path, line, "unit-suffix",
                                f"TimeUs parameter `{name}` must carry its "
                                "unit (e.g. `" + name + "_us`)")
            elif any(stem in name for stem in PHYSICAL_STEMS):
                if not name.endswith(UNIT_SUFFIXES):
                    self.report(path, line, "unit-suffix",
                                f"{typ} parameter `{name}` names a physical "
                                "quantity but not its unit (expected one of "
                                + ", ".join(UNIT_SUFFIXES) + ")")

    # Direct string-literal first argument of an instrument lookup. Computed
    # names (ternaries, concatenation) are rare and checked by eye.
    METRIC_CALL_RE = re.compile(
        r"\b(?:counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
    METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*){2,}$")

    def check_metric_names(self, path: Path, code_with_strings: str) -> None:
        for m in self.METRIC_CALL_RE.finditer(code_with_strings):
            name = m.group(1)
            line = line_of(code_with_strings, m.start())
            if not self.METRIC_NAME_RE.match(name):
                self.report(path, line, "metric-name",
                            f'metric "{name}" must be lowercase dotted '
                            "`module.subsystem.name` with at least three "
                            "segments")
            elif not name.endswith(METRIC_UNIT_SUFFIXES):
                self.report(path, line, "metric-name",
                            f'metric "{name}" must end in a unit suffix '
                            "(one of " + ", ".join(METRIC_UNIT_SUFFIXES)
                            + ")")

    # ---- driver ----

    def run(self) -> int:
        headers = sorted(SRC.rglob("*.h"))
        sources = sorted(SRC.rglob("*.cpp"))
        for path in headers + sources:
            text = path.read_text()
            code = strip_comments_and_strings(text)
            self.check_no_rand(path, code)
            self.check_no_stox(path, code)
            self.check_no_raw_thread(path, code)
            self.check_metric_names(
                path, strip_comments_and_strings(text, keep_strings=True))
            if path.suffix == ".h":
                self.check_pragma_once(path, code)
                self.check_using_namespace(path, code)
                mod = path.relative_to(SRC).parts[0]
                if mod in ("phy", "reader"):
                    self.check_unit_suffix(path, code)
        # no-stox also covers the non-test binaries outside src/.
        extra = []
        for top in ("bench", "examples"):
            extra.extend(sorted((REPO_ROOT / top).rglob("*.h")))
            extra.extend(sorted((REPO_ROOT / top).rglob("*.cpp")))
        for path in extra:
            self.check_no_stox(path, strip_comments_and_strings(
                path.read_text()))
        for v in self.violations:
            print(v)
        if self.violations:
            print(f"wb_lint: {len(self.violations)} violation(s)",
                  file=sys.stderr)
            return 1
        print(f"wb_lint: OK ({len(headers)} headers, {len(sources)} sources)")
        return 0


if __name__ == "__main__":
    sys.exit(Linter().run())
