#!/usr/bin/env python3
"""Legacy shim: wb_lint grew into the wb_analyze framework.

`python3 tools/wb_lint.py` keeps working (same exit semantics: non-zero
on any finding) but just drives tools/wb_analyze/, where the six original
lint rules now live in the `legacy` family alongside the determinism,
headers, and raii families. Use `python3 tools/wb_analyze --list-rules`
for the full catalogue.
"""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from wb_analyze.engine import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
