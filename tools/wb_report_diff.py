#!/usr/bin/env python3
"""Compare two obs::RunReport JSON artifacts (baseline vs current).

Reports, in order:
  * meta keys that changed, appeared, or vanished;
  * row-count changes and per-row field deltas (rows matched by index);
  * metric deltas over a flattened metric map — counters and gauges by
    name, histograms as `name:stat` for each exported stat — with
    absolute and relative change;
  * new / vanished metrics, with `forensics.*` counters (the decode drop
    taxonomy) always listed explicitly even when --quiet.

Gates (any breach exits 1):
  --max-rel-increase PATTERN=PCT
        fnmatch PATTERN over flattened metric names; a matched metric may
        not increase by more than PCT percent relative to baseline
        (baseline 0 -> any increase breaches). Repeatable.
  --fail-on-new-drop-reasons
        breach when a forensics.* counter is nonzero in current but
        absent or zero in baseline: a drop reason that never fired before
        is firing now.

Exit codes: 0 = no gated regressions, 1 = at least one gate breached,
2 = usage or unreadable/malformed input. Differences alone never fail:
without gates the tool is purely informational.
"""
from __future__ import annotations

import argparse
import fnmatch
import json
import sys

HIST_STATS = ("count", "sum", "min", "max", "p50", "p95", "p99")


def load_report(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"wb_report_diff: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(doc, dict):
        print(f"wb_report_diff: {path}: not a JSON object", file=sys.stderr)
        raise SystemExit(2)
    return doc


def flatten_metrics(doc: dict) -> dict[str, float]:
    """Counters/gauges by name; histograms as `name:stat`."""
    out: dict[str, float] = {}
    metrics = doc.get("metrics", {}) or {}
    for kind in ("counters", "gauges"):
        for name, value in (metrics.get(kind, {}) or {}).items():
            out[name] = float(value)
    for name, stats in (metrics.get("histograms", {}) or {}).items():
        for stat in HIST_STATS:
            if stat in stats:
                out[f"{name}:{stat}"] = float(stats[stat])
    return out


def rel_change(base: float, cur: float) -> float | None:
    """Relative change in percent; None when baseline is zero."""
    if base == 0.0:
        return None
    return (cur - base) / abs(base) * 100.0


def fmt_rel(base: float, cur: float) -> str:
    r = rel_change(base, cur)
    return f"{r:+.2f}%" if r is not None else "n/a (baseline 0)"


def diff_meta(base: dict, cur: dict, out: list[str]) -> None:
    bmeta, cmeta = base.get("meta", {}) or {}, cur.get("meta", {}) or {}
    for key in sorted(set(bmeta) | set(cmeta)):
        if key not in cmeta:
            out.append(f"meta: '{key}' vanished (was {bmeta[key]!r})")
        elif key not in bmeta:
            out.append(f"meta: '{key}' appeared ({cmeta[key]!r})")
        elif bmeta[key] != cmeta[key]:
            out.append(f"meta: '{key}': {bmeta[key]!r} -> {cmeta[key]!r}")


def diff_rows(base: dict, cur: dict, out: list[str]) -> None:
    brows, crows = base.get("rows", []) or [], cur.get("rows", []) or []
    if len(brows) != len(crows):
        out.append(f"rows: count {len(brows)} -> {len(crows)}")
    for i, (b, c) in enumerate(zip(brows, crows)):
        label = f"row[{i}] ({c.get('row', '?')})"
        for key in sorted(set(b) | set(c)):
            if key not in c:
                out.append(f"{label}: field '{key}' vanished")
            elif key not in b:
                out.append(f"{label}: field '{key}' appeared ({c[key]!r})")
            elif b[key] != c[key]:
                delta = ""
                if isinstance(b[key], (int, float)) and \
                        isinstance(c[key], (int, float)) and \
                        not isinstance(b[key], bool):
                    delta = f" ({fmt_rel(float(b[key]), float(c[key]))})"
                out.append(f"{label}: {key}: {b[key]!r} -> {c[key]!r}{delta}")


def is_drop_counter(name: str) -> bool:
    return name.startswith("forensics.") and ":" not in name


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="wb_report_diff", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="baseline RunReport JSON")
    ap.add_argument("current", help="current RunReport JSON")
    ap.add_argument("--max-rel-increase", action="append", default=[],
                    metavar="PATTERN=PCT",
                    help="gate: matched metrics may not rise more than "
                         "PCT%% over baseline (repeatable)")
    ap.add_argument("--fail-on-new-drop-reasons", action="store_true",
                    help="gate: fail when a forensics.* counter fires "
                         "that was silent in the baseline")
    ap.add_argument("--quiet", action="store_true",
                    help="print only gate breaches and the forensics "
                         "summary")
    args = ap.parse_args(argv)

    gates: list[tuple[str, float]] = []
    for spec in args.max_rel_increase:
        pattern, eq, pct = spec.partition("=")
        try:
            if not eq or not pattern:
                raise ValueError(spec)
            gates.append((pattern, float(pct)))
        except ValueError:
            print(f"wb_report_diff: bad --max-rel-increase '{spec}' "
                  f"(want PATTERN=PCT)", file=sys.stderr)
            return 2

    base_doc = load_report(args.baseline)
    cur_doc = load_report(args.current)
    base = flatten_metrics(base_doc)
    cur = flatten_metrics(cur_doc)

    info: list[str] = []
    diff_meta(base_doc, cur_doc, info)
    diff_rows(base_doc, cur_doc, info)

    for name in sorted(set(base) & set(cur)):
        if base[name] != cur[name]:
            info.append(f"metric {name}: {base[name]:g} -> {cur[name]:g} "
                        f"({fmt_rel(base[name], cur[name])})")

    new_names = sorted(set(cur) - set(base))
    gone_names = sorted(set(base) - set(cur))
    for name in new_names:
        info.append(f"metric {name}: new ({cur[name]:g})")
    for name in gone_names:
        info.append(f"metric {name}: vanished (was {base[name]:g})")

    if not args.quiet:
        for line in info:
            print(line)
        if not info:
            print("wb_report_diff: reports are identical")

    # The drop-taxonomy summary always prints: a reason that starts (or
    # stops) firing is the headline of any decode regression.
    new_drops = [n for n in cur
                 if is_drop_counter(n) and cur[n] > 0.0
                 and base.get(n, 0.0) == 0.0]
    gone_drops = [n for n in base
                  if is_drop_counter(n) and base[n] > 0.0
                  and cur.get(n, 0.0) == 0.0]
    for name in sorted(new_drops):
        print(f"drop-reason NEW: {name} = {cur[name]:g}")
    for name in sorted(gone_drops):
        print(f"drop-reason GONE: {name} (was {base[name]:g})")

    breaches: list[str] = []
    for pattern, pct in gates:
        for name in sorted(set(base) | set(cur)):
            if not fnmatch.fnmatch(name, pattern):
                continue
            b, c = base.get(name, 0.0), cur.get(name, 0.0)
            if c <= b:
                continue
            r = rel_change(b, c)
            if r is None or r > pct:
                shown = f"{r:.2f}%" if r is not None else "inf"
                breaches.append(
                    f"GATE {pattern}<=+{pct:g}%: {name} rose {shown} "
                    f"({b:g} -> {c:g})")
    if args.fail_on_new_drop_reasons and new_drops:
        breaches.append(
            "GATE new-drop-reasons: " + ", ".join(sorted(new_drops)))

    for line in breaches:
        print(line)
    return 1 if breaches else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
