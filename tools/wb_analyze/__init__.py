"""wb_analyze: determinism & hygiene static analysis for the Wi-Fi
Backscatter codebase.

Entry points:
    python3 tools/wb_analyze [--json-out F] [--baseline F] [--root DIR]
    python3 tools/wb_lint.py          (legacy shim, same engine)

See tools/wb_analyze/engine.py for the engine and rules/ for the
catalogue; `--list-rules` prints every rule with family and severity.
"""
