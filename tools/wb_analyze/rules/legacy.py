"""The six wb_lint rule generations, ported onto the wb_analyze engine.

Behaviour is intentionally identical to tools/wb_lint.py at PR 4 (scope
included): pragma-once / using-namespace / unit-suffix over src/ headers,
no-rand / metric-name / no-raw-thread over src/, no-stox additionally over
bench/ and examples/.
"""
from __future__ import annotations

import re

from ..cpptext import line_of
from ..engine import Context, Rule, SourceFile, register

# Unit suffixes accepted by the unit-suffix rule.
UNIT_SUFFIXES = (
    "_us", "_ms", "_s",             # time
    "_hz", "_khz", "_mhz", "_ghz",  # frequency
    "_dbm", "_db",                  # power / gain, log domain
    "_mw", "_uw", "_w",             # power, linear
    "_uj", "_j",                    # energy
    "_m", "_cm", "_km",             # distance
    "_bps", "_pps",                 # rates
    "_f",                           # capacitance
)

# A double parameter whose name contains one of these stems is a physical
# quantity and must carry a unit suffix.
PHYSICAL_STEMS = (
    "power", "freq", "duration", "delay", "window", "interval",
    "tau", "loss", "atten", "energy", "wavelength", "bandwidth",
    "distance", "dist",
)

# Unit suffixes accepted at the end of a metric name (wb::obs convention:
# the last path segment says what is being counted/measured).
METRIC_UNIT_SUFFIXES = (
    "_total", "_count",                    # event / object counts
    "_us", "_ns", "_s",                    # time
    "_uj", "_j",                           # energy
    "_uw", "_mw", "_w",                    # power
    "_bps", "_pps", "_hz",                 # rates
    "_bits", "_bytes",                     # sizes
    "_ratio", "_pct",                      # dimensionless
    "_db", "_dbm", "_m",                   # physical
)


@register
class PragmaOnce(Rule):
    name = "pragma-once"
    family = "legacy"
    severity = "error"
    description = "every header under src/ starts its code with #pragma once"

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.top != "src" or not f.is_header:
            return
        if not re.search(r"^\s*#\s*pragma\s+once\b", f.code, re.MULTILINE):
            ctx.report(self, f, 1, "header lacks #pragma once")


@register
class UsingNamespace(Rule):
    name = "using-namespace"
    family = "legacy"
    severity = "error"
    description = "no `using namespace` at any scope in headers under src/"

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.top != "src" or not f.is_header:
            return
        for m in re.finditer(r"\busing\s+namespace\b", f.code):
            ctx.report(self, f, line_of(f.code, m.start()),
                       "`using namespace` in a header leaks into every "
                       "includer; qualify names instead")


@register
class NoRand(Rule):
    name = "no-rand"
    family = "legacy"
    severity = "error"
    description = ("no rand()/srand() in src/ (use sim::RngStream: seeded, "
                   "forkable, deterministic across platforms)")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.top != "src":
            return
        for m in re.finditer(r"\b(?:std\s*::\s*)?(s?rand)\s*\(", f.code):
            ctx.report(self, f, line_of(f.code, m.start()),
                       f"{m.group(1)}() is non-deterministic across "
                       "platforms; use wb::sim::RngStream")


@register
class NoStox(Rule):
    name = "no-stox"
    family = "legacy"
    severity = "error"
    description = ("no std::sto{i,l,ll,ul,ull,d,f,ld} in src/, bench/, "
                   "examples/: trailing garbage accepted, negative wrap, "
                   "context-free throws — use wb::util::parse_full")

    STOX_RE = re.compile(r"\bstd\s*::\s*(sto(?:i|l|ll|ul|ull|d|f|ld))\s*\(")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        for m in self.STOX_RE.finditer(f.code):
            ctx.report(self, f, line_of(f.code, m.start()),
                       f"std::{m.group(1)}() accepts trailing garbage and "
                       "throws context-free errors; use "
                       "wb::util::parse_full (util/parse.h)")


@register
class NoRawThread(Rule):
    name = "no-raw-thread"
    family = "legacy"
    severity = "error"
    description = ("no raw std::thread/std::jthread/std::async outside "
                   "src/runner/ — parallelism goes through "
                   "wb::runner::SweepRunner so results stay deterministic")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.top != "src" or f.module == "runner":
            return
        for m in re.finditer(r"\bstd\s*::\s*(thread|jthread|async)\b", f.code):
            ctx.report(self, f, line_of(f.code, m.start()),
                       f"std::{m.group(1)} outside src/runner/ bypasses the "
                       "deterministic sweep API; use "
                       "wb::runner::SweepRunner (or ThreadPool)")


@register
class UnitSuffix(Rule):
    name = "unit-suffix"
    family = "legacy"
    severity = "error"
    description = ("public-API scalar parameters in src/phy/ and src/reader/ "
                   "headers carry a physical-unit suffix (_us, _dbm, _hz, …)")

    # Matches `TimeUs name` / `double name` parameter declarations: the name
    # must be followed by `,` or `)` (optionally via a simple default value),
    # which excludes struct fields and locals (they end with `;`).
    PARAM_RE = re.compile(
        r"\b(TimeUs|double|float)\s+([A-Za-z_]\w*)\s*(?:=\s*[^,;(){}]*)?([,)])")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.top != "src" or not f.is_header \
                or f.module not in ("phy", "reader"):
            return
        for m in self.PARAM_RE.finditer(f.code):
            typ, name = m.group(1), m.group(2)
            line = line_of(f.code, m.start())
            if typ == "TimeUs":
                if not name.endswith(("_us", "_s")):
                    ctx.report(self, f, line,
                               f"TimeUs parameter `{name}` must carry its "
                               f"unit (e.g. `{name}_us`)")
            elif any(stem in name for stem in PHYSICAL_STEMS):
                if not name.endswith(UNIT_SUFFIXES):
                    ctx.report(self, f, line,
                               f"{typ} parameter `{name}` names a physical "
                               "quantity but not its unit (expected one of "
                               + ", ".join(UNIT_SUFFIXES) + ")")


@register
class MetricName(Rule):
    name = "metric-name"
    family = "legacy"
    severity = "error"
    description = ("metric names passed to counter()/gauge()/histogram() in "
                   "src/ are lowercase dotted module.subsystem.name (≥3 "
                   "segments) ending in a unit suffix")

    # Direct string-literal first argument of an instrument lookup. Computed
    # names (ternaries, concatenation) are rare and checked by eye.
    METRIC_CALL_RE = re.compile(
        r"\b(?:counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
    METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*){2,}$")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.top != "src":
            return
        code = f.code_with_strings
        for m in self.METRIC_CALL_RE.finditer(code):
            name = m.group(1)
            line = line_of(code, m.start())
            if not self.METRIC_NAME_RE.match(name):
                ctx.report(self, f, line,
                           f'metric "{name}" must be lowercase dotted '
                           "`module.subsystem.name` with at least three "
                           "segments")
            elif not name.endswith(METRIC_UNIT_SUFFIXES):
                ctx.report(self, f, line,
                           f'metric "{name}" must end in a unit suffix '
                           "(one of " + ", ".join(METRIC_UNIT_SUFFIXES) + ")")
