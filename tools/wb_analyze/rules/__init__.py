"""Rule catalogue. Importing this package registers every rule module."""
from . import legacy        # noqa: F401
from . import determinism   # noqa: F401
from . import headers       # noqa: F401
from . import obs           # noqa: F401
from . import raii          # noqa: F401
from . import realtime      # noqa: F401
from . import serve         # noqa: F401
from . import simd          # noqa: F401
from . import units         # noqa: F401
