"""SIMD isolation rules.

  simd-isolation   src/util/simd.h is the single place the codebase is
                   allowed to talk to vector hardware; everything else
                   uses wb::simd::pack, whose lane-order determinism
                   contract (DESIGN.md §15) is what keeps vectorised
                   kernels bit-identical to their scalar references. A
                   platform intrinsic in a kernel bypasses that contract
                   silently: `_mm256_fmadd_pd` contracts the product
                   rounding, `_mm_hadd_pd` reassociates a reduction, and
                   neither shows up in a diff as a numerics change. Banned
                   outside the wrapper header: platform SIMD includes
                   (immintrin.h and friends, arm_neon.h), `_mm*_*()`
                   intrinsic calls, `__builtin_ia32_*`, and
                   vectorisation pragmas (omp simd / GCC ivdep / clang
                   loop) that license the compiler to reorder lanes.
"""
from __future__ import annotations

import re

from ..cpptext import line_of
from ..engine import Context, Rule, SourceFile, register

# The one file allowed to use compiler vector machinery.
WRAPPER = "src/util/simd.h"


@register
class SimdIsolation(Rule):
    name = "simd-isolation"
    family = "simd"
    severity = "error"
    description = ("platform SIMD primitives (intrinsic headers, _mm* "
                   "calls, __builtin_ia32_*, vectorisation pragmas) are "
                   "confined to src/util/simd.h — kernels use "
                   "wb::simd::pack, whose fixed lane order is what keeps "
                   "them bit-identical to their scalar references")

    PATTERNS = (
        (re.compile(r"#\s*include\s*[<\"]"
                    r"(\w*intrin|arm_neon|arm_sve|arm_mve|altivec)"
                    r"\.h[>\"]"),
         "platform SIMD header <{0}.h> — only src/util/simd.h may "
         "include intrinsics"),
        (re.compile(r"\b(_mm\d*_\w+)\s*\("),
         "raw intrinsic call `{0}` — use wb::simd::pack ops, which pin "
         "lane order and rounding"),
        (re.compile(r"\b(__builtin_ia32_\w+)\b"),
         "compiler vector builtin `{0}` — use wb::simd::pack ops"),
        (re.compile(r"#\s*pragma\s+(omp\s+simd|GCC\s+ivdep|clang\s+loop)\b"),
         "vectorisation pragma `#pragma {0}` licenses the compiler to "
         "reorder lanes — keep kernels on wb::simd::pack so the scalar "
         "replay stays exact"),
    )

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.rel == WRAPPER:
            return
        # Strings kept: an #include name is string-like, and a quoted
        # "immintrin.h" include must still fire.
        code = f.code_with_strings
        for pat, msg in self.PATTERNS:
            for m in pat.finditer(code):
                ctx.report(self, f, line_of(code, m.start()),
                           msg.format(m.group(1)))
