"""Determinism rules.

The repo's figures (fig10/12/17/20) are bit-reproducible across seeds and
thread counts; these rules reject the three nondeterminism sources the
pipeline is sensitive to before they can land:

  unordered-iteration  iteration order of std::unordered_{map,set} is
                       implementation- and seed-dependent; iterating one
                       into any result-producing path reorders decoder
                       output silently
  no-wallclock         wall-clock reads (chrono clocks, time(), getenv)
                       make runs unreproducible; all simulation time is
                       virtual (sim::EventQueue), and only src/runner +
                       src/obs may touch the host clock
  locale-parse         stream extraction (`is >> x`) and the C ato*/
                       strto*/scanf families honour the process locale
                       (decimal comma!), silently corrupting CSI traces —
                       route through wb::util::parse_full (util/parse.h)
"""
from __future__ import annotations

import re

from ..cpptext import declared_names, line_of, match_angle
from ..engine import Context, Rule, SourceFile, register

UNORDERED_HEAD_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*?):([^;]*?)\)")

ITER_CALL = r"\b({names})\s*\.\s*c?r?(?:begin|end)\s*\(\s*\)"


@register
class UnorderedIteration(Rule):
    name = "unordered-iteration"
    family = "determinism"
    severity = "error"
    description = ("no iteration over std::unordered_{map,set} in src/ "
                   "(outside the allowlist): iteration order is seed- and "
                   "platform-dependent and reorders results silently — use "
                   "std::map, a sorted vector, or sort before iterating")

    # Files where unordered iteration is proven order-insensitive (e.g. the
    # results are re-sorted before use). Keep empty unless a reviewer signs
    # off; prefer a `wb-analyze: allow(...)` with justification at the site.
    ALLOWLIST: frozenset[str] = frozenset()

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.top != "src" or f.rel in self.ALLOWLIST:
            return
        code = f.code
        names = {n for n, _ in declared_names(code, UNORDERED_HEAD_RE.pattern)}
        for m in RANGE_FOR_RE.finditer(code):
            expr = m.group(2).strip()
            # The iterated expression: either a declared unordered variable
            # (last path component of `a.b.c`) or an inline unordered temp.
            last = re.split(r"\.|->", expr)[-1].strip()
            if last in names or "unordered_" in expr:
                ctx.report(self, f, line_of(code, m.start()),
                           f"range-for over unordered container `{expr}`: "
                           "iteration order is not deterministic")
        if names:
            pat = ITER_CALL.format(names="|".join(map(re.escape, names)))
            for m in re.finditer(pat, code):
                ctx.report(self, f, line_of(code, m.start()),
                           f"iterator over unordered container "
                           f"`{m.group(1)}`: iteration order is not "
                           "deterministic")


@register
class NoWallclock(Rule):
    name = "no-wallclock"
    family = "determinism"
    severity = "error"
    description = ("no wall-clock reads (std::chrono system/steady/"
                   "high_resolution clocks, time(), clock(), gettimeofday, "
                   "getenv) outside src/runner/ and src/obs/ — simulation "
                   "time is virtual (sim::EventQueue::now)")

    PATTERNS = (
        (re.compile(r"\bstd\s*::\s*chrono\s*::\s*"
                    r"(system_clock|steady_clock|high_resolution_clock)\b"),
         "std::chrono::{0} reads the host clock"),
        (re.compile(r"(?<![\w.:>])time\s*\("), "time() reads the host clock"),
        (re.compile(r"(?<![\w.:>])clock\s*\("),
         "clock() reads the host clock"),
        (re.compile(r"\b(?:gettimeofday|clock_gettime|localtime|gmtime)"
                    r"\s*\("),
         "{0} reads the host clock"),
        (re.compile(r"\b(?:std\s*::\s*)?getenv\s*\("),
         "getenv() makes behaviour depend on the host environment"),
    )

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.top == "src" and f.module in ("runner", "obs"):
            return
        code = f.code
        for pat, msg in self.PATTERNS:
            for m in pat.finditer(code):
                what = m.group(1) if pat.groups else \
                    m.group(0).split("(")[0].strip()
                ctx.report(self, f, line_of(code, m.start()),
                           msg.format(what)
                           + "; results must not depend on when or where "
                             "they run")


@register
class LocaleParse(Rule):
    name = "locale-parse"
    family = "determinism"
    severity = "error"
    description = ("no locale-sensitive number parsing in trace/decode "
                   "paths: stream extraction (>>) from stringstreams and "
                   "the ato*/strto*/sscanf families honour the process "
                   "locale — use wb::util::parse_full (util/parse.h)")

    STREAM_HEAD_RE = re.compile(r"\bstd\s*::\s*i?stringstream\b")
    CFUNC_RE = re.compile(
        r"\b(?:std\s*::\s*)?(atof|atoi|atol|atoll|strtod|strtof|strtold|"
        r"strtol|strtoul|sscanf|fscanf|setlocale)\s*\(")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        code = f.code
        names = {n for n, _ in
                 declared_names(code, self.STREAM_HEAD_RE.pattern)}
        if names:
            pat = r"\b({0})\s*>>".format("|".join(map(re.escape, names)))
            for m in re.finditer(pat, code):
                ctx.report(self, f, line_of(code, m.start()),
                           f"stream extraction `{m.group(1)} >> …` parses "
                           "under the process locale (decimal comma "
                           "corrupts traces); use wb::util::parse_full")
        for m in self.CFUNC_RE.finditer(code):
            ctx.report(self, f, line_of(code, m.start()),
                       f"{m.group(1)}() is locale-sensitive; use "
                       "wb::util::parse_full (util/parse.h)")
