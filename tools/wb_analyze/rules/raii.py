"""Exception / RAII safety rules.

throwing-dtor  a `throw` inside a destructor body terminates the process
               if the destructor runs during unwinding; destructors log or
               swallow, they never throw (WB_REQUIRE in a dtor is fine —
               its abort policy is deliberate, its throw policy is not
               reachable from dtors by convention and caught here if used)
naked-new      manual new/delete outside the workspace allocators loses
               exception safety and defeats the zero-allocation decode
               hot-path accounting; use std::vector / std::unique_ptr /
               DecodeWorkspace
"""
from __future__ import annotations

import re

from ..cpptext import line_of, match_brace
from ..engine import Context, Rule, SourceFile, register

DTOR_RE = re.compile(
    r"~\s*([A-Za-z_]\w*)\s*\(\s*\)\s*"
    r"((?:noexcept\s*(?:\([^)]*\))?\s*|override\s*|final\s*)*)\{")


@register
class ThrowingDtor(Rule):
    name = "throwing-dtor"
    family = "raii"
    severity = "error"
    description = ("no `throw` inside a destructor body (src/, bench/, "
                   "examples/): throwing during unwinding calls "
                   "std::terminate")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        code = f.code
        for m in DTOR_RE.finditer(code):
            open_pos = m.end() - 1
            body = code[open_pos:match_brace(code, open_pos)]
            for t in re.finditer(r"\bthrow\b", body):
                ctx.report(self, f, line_of(code, open_pos + t.start()),
                           f"`throw` inside ~{m.group(1)}(): destructors "
                           "run during unwinding; throwing there calls "
                           "std::terminate")


@register
class NakedNew(Rule):
    name = "naked-new"
    family = "raii"
    severity = "error"
    description = ("no naked new/delete outside workspace allocators (src/, "
                   "bench/, examples/): use std::vector, std::unique_ptr, "
                   "or reader::DecodeWorkspace")

    # Translation units that legitimately define allocator machinery
    # (e.g. the counting operator new in the decoder micro-bench) — the
    # operator-definition forms are excluded by token context anyway; this
    # list is for files that must *call* raw allocation, none today.
    ALLOWLIST: frozenset[str] = frozenset()

    TOKEN_RE = re.compile(r"\b(new|delete)\b")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.rel in self.ALLOWLIST:
            return
        code = f.code
        for m in self.TOKEN_RE.finditer(code):
            before = code[:m.start()].rstrip()
            # `operator new` / `operator delete` definitions or calls are
            # allocator machinery, not naked allocation; `= delete` is the
            # deleted-function idiom (`= new` is NOT excluded — that is
            # exactly the assignment this rule exists for); `#include
            # <new>` is a directive.
            if before.endswith("operator"):
                continue
            if m.group(1) == "delete" and before.endswith("="):
                continue
            line_start = code.rfind("\n", 0, m.start()) + 1
            if code[line_start:m.start()].lstrip().startswith("#"):
                continue
            if m.group(1) == "delete" and \
                    code[m.end():].lstrip().startswith(";"):
                # `= delete;` with a comment between `=` and `delete` was
                # already handled; a bare `delete;` cannot occur otherwise.
                continue
            ctx.report(self, f, line_of(code, m.start()),
                       f"naked `{m.group(1)}`: manual memory management "
                       "outside workspace allocators; use std::vector, "
                       "std::unique_ptr, or reader::DecodeWorkspace")
