"""Header hygiene rules.

include-cycle builds the quoted-include graph over src/ and reports every
strongly connected component with more than one node (plus self-includes).
Cycles compile or not depending on include *order* at the call site — the
classic way a refactor breaks a file that never changed.

Header self-containment (every header compiles as its own TU) is enforced
by the generated `wb_header_probes` compile target (src/CMakeLists.txt,
option WB_HEADER_PROBES) rather than by a text rule; this module only
owns the graph-shaped checks.
"""
from __future__ import annotations

import re

from ..engine import Context, Rule, SourceFile, register

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


@register
class IncludeCycle(Rule):
    name = "include-cycle"
    family = "headers"
    severity = "error"
    description = ("no include cycles among headers under src/ (quoted "
                   "includes, resolved against src/): cycles make "
                   "compilation depend on include order at the call site")

    def check_tree(self, ctx: Context) -> None:
        headers = {f.rel: f for f in ctx.files
                   if f.top == "src" and f.is_header}
        graph: dict[str, list[str]] = {}
        for rel, f in headers.items():
            deps = []
            # code_with_strings: include paths are string literals, so the
            # fully stripped view would blank them; comments stay stripped
            # so a commented-out #include cannot create a phantom edge.
            for inc in INCLUDE_RE.findall(f.code_with_strings):
                # Includes are rooted at src/ (e.g. "util/units.h"); fall
                # back to sibling-relative for robustness.
                cand = f"src/{inc}"
                if cand not in headers:
                    sibling = "/".join(rel.split("/")[:-1] + [inc])
                    cand = sibling if sibling in headers else cand
                if cand in headers:
                    deps.append(cand)
            graph[rel] = deps

        for scc in tarjan_sccs(graph):
            cycle = sorted(scc)
            if len(cycle) > 1 or cycle[0] in graph[cycle[0]]:
                anchor = cycle[0]
                ctx.report(self, anchor, 1,
                           "include cycle: " + " -> ".join(
                               c.removeprefix("src/") for c in cycle)
                           + " -> " + cycle[0].removeprefix("src/"))


def tarjan_sccs(graph: dict[str, list[str]]) -> list[list[str]]:
    """Iterative Tarjan: strongly connected components of `graph`."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, ei = work[-1]
            if ei == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            edges = graph.get(node, [])
            while ei < len(edges):
                nxt = edges[ei]
                ei += 1
                if nxt not in index:
                    work[-1] = (node, ei)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs
