"""Live-capture-service rules.

  serve-bounded    src/serve/ is the always-on data plane: every container
                   is preallocated and written by index, and nothing on
                   the dispatch path may block. Growth calls
                   (push_back/emplace_back), node-based unbounded
                   containers (std::deque/std::list), and blocking
                   primitives (condition variables, wait*/sleep*,
                   std::this_thread) are banned in the module — a single
                   growing container turns a "bounded memory per session"
                   promise into a slow leak under a hostile feed, and a
                   single blocking wait breaks the deterministic
                   virtual-time "block by dispatching inline" contract.
                   (std::map::emplace on control-plane maps is fine: the
                   retired-forensics archive is explicitly capped.)
"""
from __future__ import annotations

import re

from ..cpptext import line_of
from ..engine import Context, Rule, SourceFile, register


@register
class ServeBounded(Rule):
    name = "serve-bounded"
    family = "serve"
    severity = "error"
    description = ("src/serve/ must stay preallocated and non-blocking: no "
                   "container growth calls (push_back/emplace_back), no "
                   "unbounded node containers (std::deque/std::list), and "
                   "no blocking primitives (std::condition_variable, "
                   ".wait()/wait_for/wait_until, sleep_for/sleep_until, "
                   "std::this_thread) — the service owns bounded memory "
                   "and 'blocks' by dispatching inline")

    PATTERNS = (
        (re.compile(r"\.\s*(push_back|emplace_back)\s*\("),
         "container growth `{0}` — serve storage is preallocated at "
         "construction and written by index"),
        (re.compile(r"\bstd\s*::\s*(deque|list)\s*<"),
         "std::{0} is an unbounded node container — use a preallocated "
         "ring or vector with an explicit capacity"),
        (re.compile(r"\bstd\s*::\s*condition_variable\b"),
         "std::condition_variable is a blocking primitive — backpressure "
         "'blocks' deterministically by running the dispatch loop inline"),
        (re.compile(r"\.\s*(wait|wait_for|wait_until)\s*\("),
         "blocking `.{0}()` — nothing in the service may sleep or wait; "
         "drive progress from submit()/poll()"),
        (re.compile(r"\bstd\s*::\s*this_thread\s*::\s*"
                    r"(sleep_for|sleep_until|yield)\b"),
         "std::this_thread::{0} stalls the driver thread — the service "
         "must stay deterministic and non-blocking"),
    )

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if f.top != "src" or f.module != "serve":
            return
        code = f.code
        for pat, msg in self.PATTERNS:
            for m in pat.finditer(code):
                what = m.group(1) if pat.groups else m.group(0)
                ctx.report(self, f, line_of(code, m.start()),
                           msg.format(what))
