"""Dimensional-safety rules backing the wb::units strong types.

src/util/units.h is the one home of dB/linear conversion math and the
only place a physical quantity may live in a raw double. These rules
keep it that way:

  units-raw-api        a double/float parameter or field in a src/ header
                       whose name ends in a power/gain/distance/frequency
                       suffix must use the strong type (Dbm, Db,
                       Milliwatts, Meters, Hertz) instead
  units-inline-db-math no pow(10, x/10)-style or 10*log10-style dB
                       conversions outside util/units.h — call the
                       conversion helpers so typed and raw paths stay
                       bit-identical
  units-mixed-domain   no `a_dbm + b_dbm` (absolute log powers do not
                       add; combine in Milliwatts) and no +/- between a
                       linear `_mw` value and a log `_db`/`_dbm` value

Raw `double ..._us` stays legal: sub-microsecond analog constants
(smoothing taus, fall times) intentionally carry fractional microseconds
that the integer TimeUs cannot. C-array fields (`double rssi_dbm[3]`)
also stay raw: they are wire/ABI-shaped capture records, and the strong
types would change aggregate initialisation.
"""
from __future__ import annotations

import re

from ..cpptext import line_of
from ..engine import Context, Rule, SourceFile, register

#: Suffix -> strong type expected for a scalar with that suffix.
STRONG_TYPE_FOR_SUFFIX = {
    "_dbm": "Dbm",
    "_db": "Db",
    "_mw": "Milliwatts",
    "_m": "Meters",
    "_hz": "Hertz",
}

#: The one file allowed to do raw dB math and hold raw-double quantities.
UNITS_HEADER = "src/util/units.h"


def _in_scope(f: SourceFile) -> bool:
    return f.top == "src" and f.rel != UNITS_HEADER


@register
class UnitsRawApi(Rule):
    name = "units-raw-api"
    family = "units"
    severity = "error"
    description = ("double/float parameters and fields in src/ headers "
                   "named *_dbm/_db/_mw/_m/_hz must use the wb::units "
                   "strong type (Dbm, Db, Milliwatts, Meters, Hertz); "
                   "only util/units.h holds raw-double quantities")

    # `double name_dbm` followed by `,` `)` `;` `=` or `{` — a parameter
    # or a (possibly default-initialised) field, but not a function name
    # (those are followed by `(`) and not a C array (followed by `[`).
    DECL_RE = re.compile(
        r"\b(double|float)\s+([A-Za-z_]\w*?(_dbm|_db|_mw|_m|_hz))"
        r"\s*([,);={\[])")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if not _in_scope(f) or not f.is_header:
            return
        for m in self.DECL_RE.finditer(f.code):
            typ, name, suffix, term = m.groups()
            if term == "[":
                continue  # C-array capture field: stays raw by contract
            strong = STRONG_TYPE_FOR_SUFFIX[suffix]
            ctx.report(self, f, line_of(f.code, m.start()),
                       f"{typ} `{name}` is a physical quantity; use "
                       f"wb::units::{strong} so unit mixups fail to "
                       "compile")


@register
class UnitsInlineDbMath(Rule):
    name = "units-inline-db-math"
    family = "units"
    severity = "error"
    description = ("no inline dB<->linear conversion math (pow(10, x/10), "
                   "10*log10, 20*log10) in src/ outside util/units.h — "
                   "use dbm_to_mw/mw_to_dbm/Db::to_ratio & co so every "
                   "conversion is one audited expression")

    POW10_RE = re.compile(r"\bpow\s*\(\s*10(?:\.0*)?\s*,")
    LOG10_RE = re.compile(
        r"\b(10|20)(?:\.0*)?\s*\*\s*(?:std\s*::\s*)?log10\s*\(")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if not _in_scope(f):
            return
        for m in self.POW10_RE.finditer(f.code):
            ctx.report(self, f, line_of(f.code, m.start()),
                       "inline 10^x dB conversion; use "
                       "wb::units::dbm_to_mw/db_to_ratio/db_to_amplitude "
                       "(util/units.h)")
        for m in self.LOG10_RE.finditer(f.code):
            helper = ("mw_to_dbm/ratio_to_db" if m.group(1) == "10"
                      else "amplitude_ratio_to_db")
            ctx.report(self, f, line_of(f.code, m.start()),
                       f"inline {m.group(1)}*log10 dB conversion; use "
                       f"wb::units::{helper} (util/units.h)")


@register
class UnitsMixedDomain(Rule):
    name = "units-mixed-domain"
    family = "units"
    severity = "error"
    description = ("no `a_dbm + b_dbm` (absolute log powers do not add — "
                   "combine in Milliwatts) and no +/- mixing a linear "
                   "*_mw value with a log *_db/*_dbm value in src/")

    DBM_PLUS_DBM_RE = re.compile(r"\b\w+_dbm\s*\+\s*\w+_dbm\b")
    MW_LOG_MIX_RE = re.compile(
        r"\b\w+_mw\s*[-+]\s*\w+_db(?:m)?\b"
        r"|\b\w+_db(?:m)?\s*[-+]\s*\w+_mw\b")

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        if not _in_scope(f):
            return
        for m in self.DBM_PLUS_DBM_RE.finditer(f.code):
            ctx.report(self, f, line_of(f.code, m.start()),
                       "adding two absolute dBm powers is not physical; "
                       "convert to Milliwatts, add, convert back")
        for m in self.MW_LOG_MIX_RE.finditer(f.code):
            ctx.report(self, f, line_of(f.code, m.start()),
                       "adding/subtracting across linear (mW) and log "
                       "(dB/dBm) domains; convert one side first")
