"""Realtime rule family: interprocedural hot-path safety.

Roots are declared in source with the `WB_REALTIME` marker
(src/util/check.h). The rules walk transitive reachability over the
src/ call graph (callgraph.py) and ban, anywhere reachable from a root:

  realtime-alloc     amortized allocation — operator new,
                     make_unique/make_shared, container growth calls
                     (push_back/emplace_back/insert/...), std::string
                     construction, std::to_string. The sanctioned
                     explicit-sizing idiom (resize/reserve/assign/clear
                     into reused workspace capacity) is deliberately
                     legal: steady-state allocation counts are pinned at
                     runtime by the BENCH_* zero-alloc gates, and bans
                     here target the *unbounded* growth calls those
                     gates can miss on unbenched paths.
  realtime-blocking  blocking and nondeterminism — mutex/lock
                     acquisition, condition-variable waits, sleeps,
                     stream/FILE I/O, throw. snprintf (memory-only
                     formatting) stays legal.
  realtime-marker    a WB_REALTIME marker whose declaration resolves to
                     no definition in the graph (stale marker, or an
                     analyzer blind spot that must not fail silently).

Cold-gated calls: an `// wb-analyze: allow(realtime-alloc): why` (or
-blocking) on a call-site line — or the line above — prunes that call
edge from the walk *for the whole family* (coldness is a property of the
call, not of one rule), and the rule named by the allow reports the
pruned edge at that line so the suppression is consumed and audited.
Removing the allow un-prunes the edge and every violation inside the
callee surfaces unsuppressed.

Audited sinks (never traversed, documented in DESIGN.md §16):
MetricsRegistry::counter/gauge/histogram — instrument lookup takes the
registry mutex and emplaces on first use by design; the obs layer is
null-gated off the hot path by default and its overhead is budget-gated
(≤5 %, 0 steady-state allocs) by BENCH_obs.
"""
from __future__ import annotations

import re

from ..engine import Context, Rule, SUPPRESS_RE, register

FAMILY_RULES = ("realtime-alloc", "realtime-blocking")

#: (cls, name) method sets whose *internals* are audited out of the walk.
AUDITED_SINKS = (
    ("MetricsRegistry", "counter"),
    ("MetricsRegistry", "gauge"),
    ("MetricsRegistry", "histogram"),
)

ALLOC_PATTERNS = (
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\bmake_unique\b|\bmake_shared\b"), "heap construction"),
    (re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|push_front"
                r"|emplace_front|insert|emplace|append)\s*\("),
     "amortized container growth"),
    (re.compile(r"\bstd\s*::\s*string\b"), "std::string construction"),
    (re.compile(r"\bstd\s*::\s*to_string\b"), "std::to_string"),
    (re.compile(r"\bstd\s*::\s*(?:[oi]?stringstream)\b"),
     "stringstream construction"),
)

BLOCKING_PATTERNS = (
    (re.compile(r"\b(?:MutexLock|lock_guard|unique_lock|scoped_lock"
                r"|shared_lock)\b"), "mutex acquisition"),
    (re.compile(r"(?:\.|->)\s*(?:lock|try_lock|unlock)\s*\("),
     "explicit lock call"),
    (re.compile(r"\bcondition_variable\b"), "condition variable"),
    (re.compile(r"(?:\.|->)\s*(?:wait|wait_for|wait_until)\s*\("),
     "blocking wait"),
    (re.compile(r"\bsleep_for\b|\bsleep_until\b|\bthis_thread\b"),
     "sleep/yield"),
    (re.compile(r"\bthrow\b"), "throw (unwinding is unbounded; hot paths "
                               "report via DropReason/Error returns)"),
    (re.compile(r"\bstd\s*::\s*(?:cout|cerr|clog|cin|getline|ifstream"
                r"|ofstream|fstream)\b"), "stream I/O"),
    (re.compile(r"\b(?:fopen|fclose|fread|fwrite|fprintf|printf|fputs"
                r"|puts|fflush|fscanf|scanf|fgets)\s*\("), "FILE I/O"),
)


def _family_allow_lines(ctx: Context) -> dict[str, dict[int, str]]:
    """path -> {line: allowed-rule-name} for realtime-family allows."""
    out: dict[str, dict[int, str]] = {}
    for f in ctx.files:
        if f.top != "src":
            continue
        for lineno, line in enumerate(f.text.splitlines(), start=1):
            m = SUPPRESS_RE.search(line)
            if m and m.group(1) in FAMILY_RULES:
                out.setdefault(f.rel, {})[lineno] = m.group(1)
    return out


class _RealtimeWalk(Rule):
    """Shared reachability walk; subclasses provide the token patterns."""

    family = "realtime"
    severity = "error"
    patterns: tuple = ()

    def check_tree(self, ctx: Context) -> None:
        g = ctx.callgraph()
        roots = g.root_defs()
        if not roots:
            return

        blocked = frozenset(
            i for cls, name in AUDITED_SINKS for i in g.find_defs(cls, name))

        allows = _family_allow_lines(ctx)
        pruned: set[int] = set()
        pruned_rule: dict[int, str] = {}
        for ci, call in enumerate(g.calls):
            if not call.targets:
                continue
            file_allows = allows.get(g.defs[call.caller].file.rel, {})
            for ln in (call.line, call.line - 1):
                if ln in file_allows:
                    pruned.add(ci)
                    pruned_rule[ci] = file_allows[ln]
                    break

        reach = g.reachable(roots, frozenset(pruned), blocked)

        # Pruned (cold-gated) edges out of hot callers: reported by the
        # rule the allow names, at the call line, so the suppression is
        # consumed and shows up in the audited census.
        for ci in sorted(pruned):
            call = g.calls[ci]
            if call.caller not in reach or pruned_rule[ci] != self.name:
                continue
            d = g.defs[call.caller]
            targets = ", ".join(sorted({g.defs[t].symbol
                                        for t in call.targets}))
            ctx.report(self, d.file.rel, call.line,
                       f"cold-gated call from hot `{d.symbol}` into "
                       f"{targets}: edge pruned from the realtime walk "
                       f"(audited via this allow)")

        for di in sorted(reach, key=lambda i: (g.defs[i].file.rel,
                                               g.defs[i].line)):
            d = g.defs[di]
            body = d.file.code[d.body_start:d.body_end]
            hits = []
            for pat, what in self.patterns:
                for m in pat.finditer(body):
                    hits.append((d.body_start + m.start(), what))
            if not hits:
                continue
            chain = g.path_to(reach, di)
            if len(chain) > 4:
                chain = chain[:2] + ["…"] + chain[-1:]
            via = " → ".join(chain)
            for off, what in sorted(hits):
                ctx.report(self, d.file.rel, d.file.line_of(off),
                           f"{what} in `{d.symbol}`, reachable from a "
                           f"WB_REALTIME root: {via}")


@register
class RealtimeAlloc(_RealtimeWalk):
    name = "realtime-alloc"
    description = ("no amortized allocation (new, make_unique/shared, "
                   "container growth, std::string building) anywhere "
                   "reachable from a WB_REALTIME root; explicit-sizing "
                   "resize/reserve into reused capacity stays legal "
                   "(runtime-gated by the BENCH zero-alloc rows)")
    patterns = ALLOC_PATTERNS


@register
class RealtimeBlocking(_RealtimeWalk):
    name = "realtime-blocking"
    description = ("no blocking or nondeterminism (mutex/CV waits, "
                   "sleeps, stream/FILE I/O, throw) anywhere reachable "
                   "from a WB_REALTIME root")
    patterns = BLOCKING_PATTERNS


@register
class RealtimeMarker(Rule):
    name = "realtime-marker"
    family = "realtime"
    severity = "error"
    description = ("every WB_REALTIME marker must resolve to a defined "
                   "function/method (name, owner, arity) in the src/ call "
                   "graph — a stale marker silently guards nothing")

    def check_tree(self, ctx: Context) -> None:
        g = ctx.callgraph()
        for mk in g.markers:
            if not mk.defs:
                ctx.report(self, mk.path, mk.line,
                           f"WB_REALTIME marks `{mk.symbol}` "
                           f"(arity {mk.min_arity}..{mk.max_arity}) but no "
                           f"matching definition exists in src/ — remove "
                           f"the stale marker or fix the declaration")
