"""Observability rules.

  drop-taxonomy    the decode-forensics taxonomy (src/obs/forensics.h)
                   must stay closed and live: every DropStage/DropReason
                   enumerator needs an explicit `case` in its to_string()
                   switch in forensics.cpp (a missing case means exported
                   JSONL silently labels that value "unknown"), and every
                   DropReason must be recorded somewhere in src/ outside
                   src/obs/ (an unreferenced reason is dead taxonomy that
                   reads as "this never happens" when really "nothing
                   reports it")
"""
from __future__ import annotations

import re

from ..engine import Context, Rule, SourceFile, register

ENUM_RE = re.compile(
    r"enum\s+class\s+(DropStage|DropReason)\s*:\s*[A-Za-z0-9_:\s]+\{"
    r"([^}]*)\}", re.S)

ENUMERATOR_RE = re.compile(r"\bk[A-Z][A-Za-z0-9]*\b")


def _enumerators(header_code: str) -> dict[str, list[str]]:
    """Enum name -> enumerator list, parsed from forensics.h."""
    out: dict[str, list[str]] = {}
    for m in ENUM_RE.finditer(header_code):
        out[m.group(1)] = ENUMERATOR_RE.findall(m.group(2))
    return out


@register
class DropTaxonomy(Rule):
    name = "drop-taxonomy"
    family = "observability"
    severity = "error"
    description = ("every DropStage/DropReason enumerator must have an "
                   "explicit `case` in its to_string() switch in "
                   "src/obs/forensics.cpp, and every DropReason must be "
                   "referenced in src/ outside src/obs/ — a reason nothing "
                   "records is dead taxonomy")

    def check_tree(self, ctx: Context) -> None:
        header = _find(ctx, "src/obs/forensics.h")
        if header is None:
            return  # tree without the forensics layer: nothing to check
        enums = _enumerators(header.code)
        impl = _find(ctx, "src/obs/forensics.cpp")
        if impl is None:
            ctx.report(self, header.rel, 1,
                       "src/obs/forensics.cpp is missing: to_string() "
                       "switches cannot be checked")
            return

        for enum_name, enumerators in sorted(enums.items()):
            for enumerator in enumerators:
                case_re = re.compile(
                    r"case\s+" + re.escape(enum_name) + r"\s*::\s*" +
                    re.escape(enumerator) + r"\b")
                if not case_re.search(impl.code):
                    ctx.report(self, impl.rel, 1,
                               f"{enum_name}::{enumerator} has no `case` in "
                               f"a switch in forensics.cpp: to_string() "
                               f"would export it as \"unknown\"")

        reasons = enums.get("DropReason", [])
        use_files = [f for f in ctx.files
                     if f.top == "src" and f.module != "obs"]
        for enumerator in reasons:
            use_re = re.compile(r"DropReason\s*::\s*" +
                                re.escape(enumerator) + r"\b")
            if not any(use_re.search(f.code) for f in use_files):
                ctx.report(self, header.rel, 1,
                           f"DropReason::{enumerator} is never referenced "
                           f"in src/ outside src/obs/: either record it at "
                           f"a failure exit or retire the enumerator")


def _find(ctx: Context, rel: str) -> SourceFile | None:
    for f in ctx.files:
        if f.rel == rel:
            return f
    return None
