"""Interprocedural symbol table + call graph over src/ for wb_analyze.

Built on the cpptext tokenizer (comment/string-stripped, offset-preserving
text; preprocessor lines masked), not a real parser. The heuristics and
their known false-negative surface are documented in DESIGN.md §16; the
short version:

Definitions
    An identifier followed by a balanced `(...)` and then a function body
    `{` — allowing `const`/`noexcept(...)`/ref-qualifiers/`override`/
    `final`, all-caps annotation macros (thread-safety attributes), a
    trailing return type, and a constructor member-init list between the
    `)` and the `{`. Method owners come from the innermost enclosing
    `class`/`struct` body or from an out-of-line `Cls::` qualifier.
    Arity is the parameter count; default arguments make it a
    [min, max] range, `...` makes max unbounded.

Calls
    An identifier followed by `(` inside a known definition body.
    `.`/`->` member calls resolve only to method definitions; `Cls::`
    qualified calls prefer methods of `Cls` and fall back to every
    name+arity match (namespace qualifiers); plain calls resolve to free
    functions plus methods of the caller's own class. Calls that resolve
    to no definition (std::, macros, function pointers, declaration-style
    constructor calls) are recorded as unresolved edges and not traversed.

Known false negatives (see DESIGN.md §16)
    `Type var(args)` constructor calls, destructor edges, calls with
    explicit template arguments (`f<int>(x)`), code run at namespace-scope
    static initialization (outside any definition body), and virtual
    dispatch is over- rather than under-approximated (every same-name
    same-arity method is a candidate target).

Reachability
    BFS from WB_REALTIME-marked roots, deterministic (roots and edge
    targets visited in index order), with optional pruned call sites
    (cold-gated `allow` edges) and blocked targets (audited sinks).
"""
from __future__ import annotations

import re
from dataclasses import dataclass, field

from . import cpptext

#: Identifiers that look like calls/definitions but never are.
KEYWORDS = frozenset({
    "alignas", "alignof", "asm", "assert", "case", "catch", "co_await",
    "co_return", "co_yield", "decltype", "defined", "delete", "do", "else",
    "for", "goto", "if", "namespace", "new", "noexcept", "operator",
    "private", "protected", "public", "requires", "return", "sizeof",
    "static_assert", "switch", "template", "throw", "typeid", "typename",
    "using", "while",
})

#: Member-call names shared with the standard containers/utilities. A
#: `.size()` receiver is almost always a std:: container, so resolving it
#: against every src/ class that also defines `size` would flood the graph
#: with false hot edges (e.g. vector.clear() -> FlightRecorder::clear,
#: which takes a mutex). Member calls with these names are recorded as
#: unresolved instead; calls into *our* same-named methods are a
#: documented false negative (DESIGN.md §16) — reach them with an
#: explicit `Cls::name` qualified call if one ever becomes hot.
STL_HOMONYMS = frozenset({
    "assign", "at", "back", "begin", "c_str", "capacity", "clear", "count",
    "data", "empty", "end", "erase", "fill", "find", "front", "get",
    "length", "release", "reserve", "reset", "resize", "size", "str",
    "substr", "swap", "value", "value_or",
})

CANDIDATE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CLASS_RE = re.compile(r"\b(enum\s+)?(?:class|struct)\s+([A-Za-z_]\w*)")
QUALIFIER_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:<[^<>]*>)?\s*::\s*$")
MARKER_RE = re.compile(r"\bWB_REALTIME\b")
#: Tokens legal between a definition's `)` and its `{`: cv/ref
#: qualifiers, virt-specifiers, and all-caps annotation macros
#: (clang thread-safety attributes like WB_REQUIRES(mu_)).
TRAILER_WORD_RE = re.compile(r"(const|noexcept|override|final|mutable"
                             r"|[A-Z][A-Z0-9_]{2,})\b")

UNBOUNDED_ARITY = 999


@dataclass
class FuncDef:
    name: str
    cls: str | None          # owning class, or None for a free function
    file: object             # engine.SourceFile
    line: int
    min_arity: int
    max_arity: int
    body_start: int          # offsets into file.code (== masked code)
    body_end: int
    name_offset: int

    @property
    def symbol(self) -> str:
        qual = f"{self.cls}::{self.name}" if self.cls else self.name
        ar = (str(self.min_arity) if self.min_arity == self.max_arity
              else f"{self.min_arity}-"
                   + ("*" if self.max_arity >= UNBOUNDED_ARITY
                      else str(self.max_arity)))
        return f"{qual}/{ar}"


@dataclass
class CallSite:
    caller: int              # index into CallGraph.defs
    name: str
    qualifier: str | None    # `Cls` of a `Cls::name(...)` call
    kind: str                # "plain" | "member" | "qualified"
    arity: int
    offset: int              # into the caller file's code
    line: int
    targets: list[int] = field(default_factory=list)


@dataclass
class Marker:
    """One WB_REALTIME occurrence and the declaration it annotates."""
    name: str
    cls: str | None
    min_arity: int
    max_arity: int
    path: str
    line: int
    defs: list[int] = field(default_factory=list)

    @property
    def symbol(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


def _match_paren(code: str, open_pos: int) -> int:
    """Offset one past the `)` matching code[open_pos] == '('."""
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def _skip_ws(code: str, i: int) -> int:
    n = len(code)
    while i < n and code[i].isspace():
        i += 1
    return i


def _split_top_level(args: str) -> list[str]:
    """Split on commas at zero ()/[]/{} depth, with a template-angle
    heuristic: `<` after an identifier opens an angle level. Comparison
    operators inside arguments can fool this (documented false negative:
    the arity comes out wrong and the edge goes unresolved)."""
    parts: list[str] = []
    depth = 0
    angle = 0
    start = 0
    prev = ""
    for i, c in enumerate(args):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<" and (prev.isalnum() or prev in "_>"):
            angle += 1
        elif c == ">" and angle > 0 and prev != "-":
            angle -= 1
        elif c == "," and depth == 0 and angle == 0:
            parts.append(args[start:i])
            start = i + 1
        if not c.isspace():
            prev = c
    parts.append(args[start:])
    return parts


def _arity_range(params: str) -> tuple[int, int]:
    """(min, max) arity of a definition's parameter list."""
    body = params.strip()
    if not body or body == "void":
        return 0, 0
    parts = _split_top_level(body)
    n = len(parts)
    if any("..." in p for p in parts):
        return max(0, n - 1), UNBOUNDED_ARITY
    defaults = sum(1 for p in parts if "=" in p)
    return n - defaults, n


def _call_arity(args: str) -> int:
    body = args.strip()
    if not body:
        return 0
    return len(_split_top_level(body))


def _class_spans(code: str) -> list[tuple[str, int, int]]:
    """(name, body_start, body_end) for every class/struct with a body."""
    out: list[tuple[str, int, int]] = []
    for m in CLASS_RE.finditer(code):
        if m.group(1):  # enum class: scoped enumerators, not a class body
            continue
        # Scan past any base-clause to the body `{` (or give up at `;`,
        # a forward declaration).
        i = m.end()
        n = len(code)
        while i < n and code[i] not in "{;":
            if code[i] == "<":  # template args in a base clause
                i = cpptext.match_angle(code, i)
            elif code[i] == "(":
                i = _match_paren(code, i)
            else:
                i += 1
        if i < n and code[i] == "{":
            out.append((m.group(2), i, cpptext.match_brace(code, i)))
    return out


def _innermost_class(spans: list[tuple[str, int, int]],
                     pos: int) -> str | None:
    best: tuple[int, str] | None = None
    for name, start, end in spans:
        if start <= pos < end and (best is None or start > best[0]):
            best = (start, name)
    return best[1] if best else None


def _prev_nonspace(code: str, pos: int) -> int:
    i = pos - 1
    while i >= 0 and code[i].isspace():
        i -= 1
    return i


def _find_body(code: str, pclose: int) -> int | None:
    """Offset of the definition body `{` following a parameter list that
    ends at `pclose`, or None if this is a declaration/expression.
    Handles cv/ref/virt-specifier trailers, annotation macros, trailing
    return types, and constructor member-init lists."""
    i = _skip_ws(code, pclose)
    n = len(code)
    while i < n:
        c = code[i]
        if c == "{":
            return i
        if c in ";=,)]":
            return None
        if c == "&":  # ref-qualifier (& or &&)
            i = _skip_ws(code, i + 1 if code[i:i + 2] != "&&" else i + 2)
            continue
        if c == "(":  # noexcept(...) / annotation-macro arguments
            i = _skip_ws(code, _match_paren(code, i))
            continue
        if code.startswith("->", i):  # trailing return type
            i += 2
            while i < n and code[i] not in "{;=":
                if code[i] == "<":
                    i = cpptext.match_angle(code, i)
                elif code[i] == "(":
                    i = _match_paren(code, i)
                else:
                    i += 1
            continue
        if c == ":":  # constructor member-init list
            i = _skip_ws(code, i + 1)
            while i < n:
                m = re.match(r"[A-Za-z_]\w*", code[i:])
                if not m:
                    return None
                i = _skip_ws(code, i + m.end())
                if i < n and code[i] == "<":
                    i = _skip_ws(code, cpptext.match_angle(code, i))
                if i >= n or code[i] not in "({":
                    return None
                i = (_match_paren(code, i) if code[i] == "("
                     else cpptext.match_brace(code, i))
                i = _skip_ws(code, i)
                if i < n and code[i] == ",":
                    i = _skip_ws(code, i + 1)
                    continue
                return i if i < n and code[i] == "{" else None
            return None
        m = TRAILER_WORD_RE.match(code, i)
        if m:
            i = _skip_ws(code, m.end())
            continue
        return None
    return None


class CallGraph:
    def __init__(self) -> None:
        self.defs: list[FuncDef] = []
        self.calls: list[CallSite] = []
        self.markers: list[Marker] = []
        self.files_scanned = 0
        self._by_name: dict[str, list[int]] = {}
        self._calls_by_def: dict[int, list[int]] = {}

    # -- queries ----------------------------------------------------------

    def defs_named(self, name: str) -> list[int]:
        return self._by_name.get(name, [])

    def find_defs(self, cls: str | None, name: str) -> list[int]:
        return [i for i in self.defs_named(name) if self.defs[i].cls == cls]

    def calls_of(self, def_index: int) -> list[int]:
        return self._calls_by_def.get(def_index, [])

    def root_defs(self) -> list[int]:
        """Definition indices of every marker-resolved root, sorted."""
        out: set[int] = set()
        for mk in self.markers:
            out.update(mk.defs)
        return sorted(out)

    def reachable(self, roots: list[int],
                  pruned_calls: frozenset[int] = frozenset(),
                  blocked_defs: frozenset[int] = frozenset()
                  ) -> dict[int, tuple[int | None, int | None]]:
        """BFS from `roots`: def index -> (parent def, via call index).
        Roots map to (None, None). `pruned_calls` edges are not followed;
        `blocked_defs` are never entered (audited sinks)."""
        parent: dict[int, tuple[int | None, int | None]] = {}
        queue: list[int] = []
        for r in sorted(roots):
            if r not in parent:
                parent[r] = (None, None)
                queue.append(r)
        while queue:
            d = queue.pop(0)
            for ci in self.calls_of(d):
                if ci in pruned_calls:
                    continue
                for t in self.calls[ci].targets:
                    if t in parent or t in blocked_defs:
                        continue
                    parent[t] = (d, ci)
                    queue.append(t)
        return parent

    def path_to(self, reach: dict[int, tuple[int | None, int | None]],
                def_index: int) -> list[str]:
        """Root-first symbol chain explaining why `def_index` is hot."""
        chain: list[str] = []
        cur: int | None = def_index
        while cur is not None:
            chain.append(self.defs[cur].symbol)
            cur = reach[cur][0]
        return list(reversed(chain))

    # -- construction -----------------------------------------------------

    def _scan_file(self, f) -> None:
        code = cpptext.mask_directives(f.code)
        spans = _class_spans(code)
        def_names: set[int] = set()

        # Pass 1: definitions. Candidates inside an already-found body are
        # calls, handled in pass 2 (definitions cannot nest; lambdas never
        # match `name(`).
        skip_until = 0
        first_def = len(self.defs)
        for m in CANDIDATE_RE.finditer(code):
            if m.start() < skip_until:
                continue
            name = m.group(1)
            if name in KEYWORDS:
                continue
            prev = _prev_nonspace(code, m.start(1))
            if prev >= 0 and (code[prev] in ".~"
                              or code[prev - 1: prev + 1] == "->"):
                continue
            open_pos = code.index("(", m.end(1))
            pclose = _match_paren(code, open_pos)
            body = _find_body(code, pclose)
            if body is None:
                continue
            cls = None
            if prev >= 1 and code[prev - 1: prev + 1] == "::":
                q = QUALIFIER_RE.search(code[max(0, prev - 79): prev + 1])
                if q:
                    cls = q.group(1)
            if cls is None:
                cls = _innermost_class(spans, m.start(1))
            lo, hi = _arity_range(code[open_pos + 1: pclose - 1])
            body_end = cpptext.match_brace(code, body)
            self.defs.append(FuncDef(
                name=name, cls=cls, file=f, line=f.line_of(m.start(1)),
                min_arity=lo, max_arity=hi,
                body_start=body, body_end=body_end,
                name_offset=m.start(1)))
            def_names.add(m.start(1))
            skip_until = body_end

        # Pass 2: markers (macro *definition* lines are masked, so the one
        # in util/check.h never matches).
        for m in MARKER_RE.finditer(code):
            cand = CANDIDATE_RE.search(code, m.end(), m.end() + 240)
            if cand is None or cand.group(1) in KEYWORDS:
                continue
            open_pos = code.index("(", cand.end(1))
            pclose = _match_paren(code, open_pos)
            lo, hi = _arity_range(code[open_pos + 1: pclose - 1])
            self.markers.append(Marker(
                name=cand.group(1),
                cls=_innermost_class(spans, cand.start(1)),
                min_arity=lo, max_arity=hi,
                path=f.rel, line=f.line_of(m.start())))

        # Pass 3: call sites inside each definition body found in pass 1.
        for di in range(first_def, len(self.defs)):
            d = self.defs[di]
            for m in CANDIDATE_RE.finditer(code, d.body_start, d.body_end):
                name = m.group(1)
                if name in KEYWORDS or m.start(1) in def_names:
                    continue
                prev = _prev_nonspace(code, m.start(1))
                if prev >= 0 and code[prev] == "~":
                    continue
                kind, qualifier = "plain", None
                if prev >= 0 and code[prev] == ".":
                    kind = "member"
                elif prev >= 1 and code[prev - 1: prev + 1] == "->":
                    kind = "member"
                elif prev >= 1 and code[prev - 1: prev + 1] == "::":
                    kind = "qualified"
                    q = QUALIFIER_RE.search(code[max(0, prev - 79): prev + 1])
                    if q:
                        qualifier = q.group(1)
                open_pos = code.index("(", m.end(1))
                pclose = _match_paren(code, open_pos)
                self.calls.append(CallSite(
                    caller=di, name=name, qualifier=qualifier, kind=kind,
                    arity=_call_arity(code[open_pos + 1: pclose - 1]),
                    offset=m.start(1), line=f.line_of(m.start(1))))

    def _resolve(self) -> None:
        self._by_name = {}
        for i, d in enumerate(self.defs):
            self._by_name.setdefault(d.name, []).append(i)
        for ci, call in enumerate(self.calls):
            if call.kind == "member" and call.name in STL_HOMONYMS:
                self._calls_by_def.setdefault(call.caller, []).append(ci)
                continue
            cands = [i for i in self.defs_named(call.name)
                     if self.defs[i].min_arity <= call.arity
                     <= self.defs[i].max_arity]
            if call.kind == "member":
                cands = [i for i in cands if self.defs[i].cls is not None]
            elif call.kind == "qualified" and call.qualifier:
                scoped = [i for i in cands
                          if self.defs[i].cls == call.qualifier]
                if scoped:  # else: a namespace qualifier (wb::, std::)
                    cands = scoped
            elif call.kind == "plain":
                caller_cls = self.defs[call.caller].cls
                cands = [i for i in cands
                         if self.defs[i].cls is None
                         or self.defs[i].cls == caller_cls]
            call.targets = cands
            self._calls_by_def.setdefault(call.caller, []).append(ci)
        for mk in self.markers:
            # Arity *ranges* must overlap, not match exactly: default
            # arguments appear on the marked declaration but not on the
            # out-of-line definition.
            mk.defs = [
                i for i in self.defs_named(mk.name)
                if self.defs[i].cls == mk.cls
                and self.defs[i].min_arity <= mk.max_arity
                and mk.min_arity <= self.defs[i].max_arity]

    # -- export -----------------------------------------------------------

    def to_json(self) -> dict:
        reach_all = self.reachable(self.root_defs())
        roots = []
        for mk in sorted(self.markers, key=lambda m: (m.path, m.line)):
            sub = self.reachable(mk.defs)
            roots.append({
                "marker": mk.symbol,
                "path": mk.path,
                "line": mk.line,
                "resolved": [self.defs[i].symbol for i in mk.defs],
                "reachable": sorted(self.defs[i].symbol for i in sub),
            })
        functions = []
        for di, d in enumerate(self.defs):
            functions.append({
                "symbol": d.symbol,
                "path": d.file.rel,
                "line": d.line,
                "hot": di in reach_all,
                "calls": [
                    {"name": c.name, "kind": c.kind, "arity": c.arity,
                     "line": c.line,
                     "targets": sorted(self.defs[t].symbol
                                       for t in c.targets)}
                    for c in (self.calls[ci] for ci in self.calls_of(di))
                ],
            })
        resolved = sum(1 for c in self.calls if c.targets)
        return {
            "tool": "wb_callgraph",
            "version": 1,
            "files_scanned": self.files_scanned,
            "functions_total": len(self.defs),
            "calls_total": len(self.calls),
            "calls_resolved": resolved,
            "calls_unresolved": len(self.calls) - resolved,
            "hot_functions": len(reach_all),
            "roots": roots,
            "functions": functions,
        }


def build(files: list) -> CallGraph:
    """Build the call graph over `files` (engine.SourceFile list; the
    engine passes every file under src/)."""
    g = CallGraph()
    g.files_scanned = len(files)
    for f in files:
        g._scan_file(f)
    g._resolve()
    return g
