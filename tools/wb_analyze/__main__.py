"""Allow both `python3 tools/wb_analyze` (directory invocation, no package
context) and `python3 -m wb_analyze` (from tools/)."""
import sys

if __package__ in (None, ""):
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from wb_analyze.engine import main
else:
    from .engine import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
