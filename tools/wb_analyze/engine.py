"""wb_analyze rule engine: file collection, rule registry, suppressions,
finding aggregation, human/JSON output, and baseline comparison.

The engine is repo-layout aware but root-relocatable: `--root DIR` points
it at any tree with the same top-level shape (src/, bench/, examples/),
which is how the fixture corpus under tests/analyze/ drives it.

Suppression contract
--------------------
A finding is suppressed by a line comment

    // wb-analyze: allow(<rule>): <justification>

on the same line as the finding or on the line directly above it. The
justification is mandatory: a bare `allow(<rule>)` is itself reported
(rule `suppression-hygiene`, error), as is an allow() naming an unknown
rule or one that suppresses nothing (audit trail for stale suppressions).
Suppressed findings stay in the JSON artifact with their justification,
so CI can diff the suppression census against the committed baseline.
"""
from __future__ import annotations

import argparse
import json
import re
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from . import cpptext

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: Top-level directories scanned for C++ sources, in scan order.
SCAN_TOPS = ("src", "bench", "examples")

SEVERITIES = ("error", "warning", "note")

SUPPRESS_RE = re.compile(
    r"//\s*wb-analyze:\s*allow\(\s*([A-Za-z0-9_-]*)\s*\)"
    r"(?:\s*:\s*(.*?))?\s*$")


@dataclass
class Finding:
    rule: str
    severity: str
    path: str  # posix, relative to the scanned root
    line: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def human(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}: {self.severity}: "
                f"[{self.rule}] {self.message}{tag}")


@dataclass
class Suppression:
    rule: str
    path: str
    line: int
    justification: str | None
    used: bool = False


class SourceFile:
    """One scanned file with lazily computed, shared per-file context:
    both stripped views come from a single tokenizer pass, and line
    lookups go through one cached LineIndex. Every rule family reuses
    these instead of re-parsing."""

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text()
        self._code: str | None = None
        self._code_with_strings: str | None = None
        self._lines: cpptext.LineIndex | None = None

    def _strip(self) -> None:
        self._code, self._code_with_strings = cpptext.strip_views(self.text)

    @property
    def code(self) -> str:
        if self._code is None:
            self._strip()
        return self._code

    @property
    def code_with_strings(self) -> str:
        if self._code_with_strings is None:
            self._strip()
        return self._code_with_strings

    def line_of(self, pos: int) -> int:
        """1-based line of byte offset `pos` (valid for text and both
        stripped views — stripping preserves offsets)."""
        if self._lines is None:
            self._lines = cpptext.LineIndex(self.text)
        return self._lines.line_of(pos)

    @property
    def is_header(self) -> bool:
        return self.path.suffix == ".h"

    @property
    def top(self) -> str:
        return self.rel.split("/", 1)[0]

    @property
    def module(self) -> str:
        """Second path component (`src/<module>/...`), or "" at top level."""
        parts = self.rel.split("/")
        return parts[1] if len(parts) > 2 else ""


class Context:
    """Shared state passed to every rule check."""

    def __init__(self, root: Path, files: list[SourceFile]) -> None:
        self.root = root
        self.files = files
        self.findings: list[Finding] = []
        self._callgraph = None

    def callgraph(self):
        """The interprocedural call graph over src/ (built once, shared by
        the realtime rule family and --callgraph-out)."""
        if self._callgraph is None:
            from . import callgraph
            self._callgraph = callgraph.build(
                [f for f in self.files if f.top == "src"])
        return self._callgraph

    def report(self, rule: "Rule", f: SourceFile | str, line: int,
               message: str) -> None:
        rel = f if isinstance(f, str) else f.rel
        self.findings.append(
            Finding(rule.name, rule.severity, rel, line, message))


class Rule:
    """Base class. Subclasses set name/family/severity/description and
    override check_file() (per file) or check_tree() (once, whole tree)."""

    name = ""
    family = ""
    severity = "error"
    description = ""

    def check_file(self, ctx: Context, f: SourceFile) -> None:
        pass

    def check_tree(self, ctx: Context) -> None:
        pass


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    rule = cls()
    if not rule.name or not rule.description or not rule.family:
        raise ValueError(f"rule {cls.__name__} missing name/family/description")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"rule {rule.name}: bad severity {rule.severity}")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name}")
    _REGISTRY[rule.name] = rule
    return cls


def registry() -> dict[str, Rule]:
    # Import for side effect: rule modules self-register on first use.
    from . import rules  # noqa: F401
    return _REGISTRY


# `suppression-hygiene` is reported by the engine itself, not a Rule
# subclass, but it needs an entry in the catalogue so allow() of it is
# legal and fixtures can reference it by name.
class _SuppressionHygiene(Rule):
    name = "suppression-hygiene"
    family = "meta"
    severity = "error"
    description = ("every `wb-analyze: allow(rule)` must name a known rule, "
                   "carry a justification after a colon, and actually "
                   "suppress something (unused allows are warnings)")


_REGISTRY[_SuppressionHygiene.name] = _SuppressionHygiene()


def collect_files(root: Path) -> list[SourceFile]:
    files: list[SourceFile] = []
    for top in SCAN_TOPS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.h")) + sorted(base.rglob("*.cpp")):
            files.append(SourceFile(root, path))
    return files


def collect_suppressions(files: list[SourceFile]) -> list[Suppression]:
    out: list[Suppression] = []
    for f in files:
        for lineno, line in enumerate(f.text.splitlines(), start=1):
            m = SUPPRESS_RE.search(line)
            if m:
                rule, just = m.group(1), m.group(2)
                out.append(Suppression(rule, f.rel, lineno,
                                       just if just else None))
    return out


def apply_suppressions(findings: list[Finding],
                       supps: list[Suppression],
                       only: set[str] | None = None) -> list[Finding]:
    """Mark suppressed findings, then append suppression-hygiene findings
    for bare/unknown/unused allows. Returns the full finding list.

    With a rule filter (`only`), hygiene findings are emitted only when
    `suppression-hygiene` itself is in the filter, and an allow() for a
    rule that did not run is never flagged as unused (it had no chance
    to suppress anything this run)."""
    hygiene = _REGISTRY["suppression-hygiene"]
    known = set(_REGISTRY)
    by_key: dict[tuple[str, str], list[Suppression]] = {}
    for s in supps:
        by_key.setdefault((s.rule, s.path), []).append(s)

    for fnd in findings:
        for s in by_key.get((fnd.rule, fnd.path), []):
            if s.line in (fnd.line, fnd.line - 1) and s.justification \
                    and s.rule in known:
                fnd.suppressed = True
                fnd.justification = s.justification
                s.used = True
                break

    if only is not None and hygiene.name not in only:
        return findings
    for s in supps:
        if only is not None and s.rule in known and s.rule not in only:
            continue
        if s.rule not in known:
            findings.append(Finding(
                hygiene.name, hygiene.severity, s.path, s.line,
                f"allow() names unknown rule `{s.rule}` — "
                "see --list-rules for the catalogue"))
        elif not s.justification:
            findings.append(Finding(
                hygiene.name, hygiene.severity, s.path, s.line,
                f"bare allow({s.rule}) — a suppression must carry a "
                "justification: `// wb-analyze: allow(rule): why`"))
        elif not s.used:
            findings.append(Finding(
                hygiene.name, "warning", s.path, s.line,
                f"allow({s.rule}) suppresses nothing on this or the next "
                "line — stale suppression, remove it"))
    return findings


def run_analysis(root: Path,
                 only: set[str] | None = None,
                 timings: dict[str, float] | None = None
                 ) -> tuple[Context, list[Suppression]]:
    """Run every registered rule (or just `only`, a set of rule names).
    With `timings` (a dict), per-rule wall seconds are recorded into it."""
    rules = registry()
    files = collect_files(root)
    ctx = Context(root, files)
    for name, rule in rules.items():
        if only is not None and name not in only:
            continue
        t0 = time.perf_counter() if timings is not None else 0.0
        for f in files:
            rule.check_file(ctx, f)
        rule.check_tree(ctx)
        if timings is not None:
            timings[name] = time.perf_counter() - t0
    supps = collect_suppressions(files)
    apply_suppressions(ctx.findings, supps, only)
    ctx.findings.sort(key=lambda x: (x.path, x.line, x.rule))
    return ctx, supps


def counts_by_rule(findings: list[Finding], suppressed: bool) -> dict[str, int]:
    out = {name: 0 for name in sorted(_REGISTRY)}
    for f in findings:
        if f.suppressed == suppressed:
            out[f.rule] += 1
    return out


def to_json(ctx: Context, supps: list[Suppression]) -> dict:
    return {
        "tool": "wb_analyze",
        "version": 1,
        "root": str(ctx.root),
        "files_scanned": len(ctx.files),
        "counts": counts_by_rule(ctx.findings, suppressed=False),
        "suppressed_counts": counts_by_rule(ctx.findings, suppressed=True),
        "findings": [
            {"rule": f.rule, "severity": f.severity, "path": f.path,
             "line": f.line, "message": f.message,
             "suppressed": f.suppressed,
             **({"justification": f.justification} if f.suppressed else {})}
            for f in ctx.findings
        ],
        "suppressions": [
            {"rule": s.rule, "path": s.path, "line": s.line,
             "justification": s.justification, "used": s.used}
            for s in supps
        ],
    }


def check_baseline(doc: dict, baseline_path: Path) -> list[str]:
    """Compare the finding/suppression census against the committed
    baseline. Any drift (including *fewer* suppressions — the baseline is
    an audit trail, so improvements must be recorded too) is an error
    asking for an explicit baseline update."""
    try:
        base = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"baseline {baseline_path}: unreadable ({e})"]
    problems: list[str] = []
    for key in ("counts", "suppressed_counts"):
        want = base.get(key, {})
        got = doc[key]
        for rule in sorted(set(want) | set(got)):
            w, g = want.get(rule, 0), got.get(rule, 0)
            if w != g:
                problems.append(
                    f"{key}[{rule}]: baseline {w}, tree {g} — if intended, "
                    f"re-run with --write-baseline and commit {baseline_path}")
    return problems


def write_baseline(doc: dict, baseline_path: Path) -> None:
    slim = {
        "comment": "wb_analyze finding census. CI fails on any drift; "
                   "update via `python3 tools/wb_analyze --write-baseline` "
                   "and commit with the change that moved it.",
        "counts": {k: v for k, v in doc["counts"].items() if v},
        "suppressed_counts": {k: v for k, v in doc["suppressed_counts"].items()
                              if v},
    }
    baseline_path.write_text(json.dumps(slim, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="wb_analyze",
        description="Determinism & hygiene static analysis for the Wi-Fi "
                    "Backscatter codebase.")
    ap.add_argument("--root", type=Path, default=REPO_ROOT,
                    help="tree to scan (default: the repo root)")
    ap.add_argument("--json-out", type=Path,
                    help="write the machine-readable report here")
    ap.add_argument("--baseline", type=Path,
                    help="compare finding/suppression counts against this "
                         "committed census; any drift fails")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline file (default "
                         "tools/wb_analyze/baseline.json) from this run")
    ap.add_argument("--rule", action="append", dest="rules", metavar="NAME",
                    help="run only this rule (repeatable); see --list-rules "
                         "for names")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress per-finding human output")
    ap.add_argument("--timings", action="store_true",
                    help="print per-rule wall time to stderr")
    ap.add_argument("--callgraph-out", type=Path, metavar="PATH",
                    help="write the resolved src/ call graph (deterministic "
                         "JSON, with per-WB_REALTIME-root reachability) here")
    args = ap.parse_args(argv)

    rules = registry()
    if args.list_rules:
        width = max(len(n) for n in rules)
        for name in sorted(rules):
            r = rules[name]
            print(f"{name:<{width}}  [{r.family}/{r.severity}] "
                  f"{r.description}")
        return 0

    only: set[str] | None = None
    if args.rules:
        unknown = sorted(set(args.rules) - set(rules))
        if unknown:
            print("wb_analyze: unknown rule(s): " + ", ".join(unknown)
                  + " — see --list-rules for the catalogue", file=sys.stderr)
            return 2
        if args.baseline or args.write_baseline:
            print("wb_analyze: --rule filters the census, so it cannot be "
                  "combined with --baseline/--write-baseline", file=sys.stderr)
            return 2
        only = set(args.rules)

    root = args.root.resolve()
    timings: dict[str, float] | None = {} if args.timings else None
    ctx, supps = run_analysis(root, only, timings)
    doc = to_json(ctx, supps)

    if timings is not None:
        width = max((len(n) for n in timings), default=0)
        for name in sorted(timings, key=lambda n: -timings[n]):
            print(f"wb_analyze: timing: {name:<{width}} "
                  f"{timings[name] * 1e3:8.2f} ms", file=sys.stderr)

    if not args.quiet:
        for f in ctx.findings:
            print(f.human())

    if args.json_out:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(json.dumps(doc, indent=2) + "\n")

    if args.callgraph_out:
        from . import callgraph
        args.callgraph_out.parent.mkdir(parents=True, exist_ok=True)
        args.callgraph_out.write_text(
            json.dumps(ctx.callgraph().to_json(), indent=1) + "\n")

    if args.write_baseline:
        path = args.baseline or (REPO_ROOT / "tools/wb_analyze/baseline.json")
        write_baseline(doc, path)
        print(f"wb_analyze: baseline written to {path}")

    failures = [f for f in ctx.findings
                if not f.suppressed and f.severity in ("error", "warning")]
    baseline_problems: list[str] = []
    if args.baseline and not args.write_baseline:
        baseline_problems = check_baseline(doc, args.baseline)
        for p in baseline_problems:
            print(f"wb_analyze: baseline drift: {p}", file=sys.stderr)

    n_suppressed = sum(doc["suppressed_counts"].values())
    if failures or baseline_problems:
        print(f"wb_analyze: {len(failures)} finding(s), "
              f"{len(baseline_problems)} baseline problem(s)", file=sys.stderr)
        return 1
    print(f"wb_analyze: OK ({doc['files_scanned']} files, "
          f"{len(rules)} rules, {n_suppressed} suppressed finding(s))")
    return 0
