"""Lightweight C++ text tokenization helpers for wb_analyze rules.

Not a parser: rules work on comment/string-stripped text (so keywords in
comments and literals never fire) plus a handful of structural helpers —
line mapping, brace matching, angle-bracket matching, and declared-name
scanning — that together give enough scope awareness for the rule
catalogue without an AST.
"""
from __future__ import annotations

import bisect
import re
from typing import Iterator


def strip_views(text: str) -> tuple[str, str]:
    """One tokenizer pass producing both stripped views of `text`:
    (code, code_with_strings).

    `code` blanks comments and string/char literal contents; in
    `code_with_strings` only comments are blanked (used by rules that
    inspect string arguments, e.g. metric-name). Every replaced character
    becomes a space and newlines are kept, so byte offsets and line
    numbers in both views match the original.
    """
    code: list[str] = []
    code_s: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            blank = " " * (j - i)
            code.append(blank)
            code_s.append(blank)
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            blank = re.sub(r"[^\n]", " ", text[i:j])
            code.append(blank)
            code_s.append(blank)
            i = j
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            # C++14 digit separator (10'000) or a suffix position — not a
            # character literal.
            code.append(c)
            code_s.append(c)
            i += 1
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            code_s.append(text[i:j])
            code.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            code.append(c)
            code_s.append(c)
            i += 1
    return "".join(code), "".join(code_s)


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Single-view wrapper over strip_views() (kept for callers that only
    need one view, e.g. the call-graph unit tests)."""
    code, code_s = strip_views(text)
    return code_s if keep_strings else code


class LineIndex:
    """O(log n) byte-offset → 1-based line number mapping.

    Built once per file and shared by every rule; replaces the previous
    per-lookup `text.count("\\n", 0, pos)` scan, which was quadratic over
    a file's findings.
    """

    def __init__(self, text: str) -> None:
        self._starts = [0]
        find = text.find
        i = find("\n")
        while i >= 0:
            self._starts.append(i + 1)
            i = find("\n", i + 1)

    def line_of(self, pos: int) -> int:
        return bisect.bisect_right(self._starts, pos)


def line_of(text: str, pos: int) -> int:
    """1-based line number of byte offset `pos` (one-shot; rules should
    prefer SourceFile.line_of, which uses a cached LineIndex)."""
    return text.count("\n", 0, pos) + 1


def match_brace(code: str, open_pos: int) -> int:
    """Given code[open_pos] == '{', return the offset one past the matching
    '}'. Returns len(code) if unbalanced (rules then scan to EOF, which is
    conservative but never crashes on malformed input)."""
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def match_angle(code: str, open_pos: int) -> int:
    """Given code[open_pos] == '<', return the offset one past the matching
    '>' of a template argument list, tracking nesting. Parentheses inside
    (e.g. decltype) are skipped wholesale. Returns len(code) if unbalanced."""
    depth = 0
    i = open_pos
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            # `->` and `>>` inside nested lists: a lone `>` closes one level.
            depth -= 1
            if depth == 0:
                return i + 1
        elif c == "(":
            par = 1
            i += 1
            while i < n and par:
                if code[i] == "(":
                    par += 1
                elif code[i] == ")":
                    par -= 1
                i += 1
            continue
        elif c in ";{}":
            # A statement boundary inside an argument list means this `<`
            # was a comparison, not a template list.
            return open_pos + 1
        i += 1
    return n


def declared_names(code: str, type_re: str) -> Iterator[tuple[str, int]]:
    """Yield (name, offset) for every variable/member declared with a type
    matching `type_re` (a regex for the type head, without template args).

    Handles `Type<...> name`, `Type name` and skips function declarations
    (`Type name(` is still yielded — callers that care filter on usage, and
    a false declared-name only matters if the same identifier is also
    iterated, which is what the rules flag anyway).
    """
    for m in re.finditer(type_re, code):
        i = m.end()
        # Skip template argument list if present.
        while i < len(code) and code[i].isspace():
            i += 1
        if i < len(code) and code[i] == "<":
            i = match_angle(code, i)
        # Optional &, *, const, whitespace before the name.
        tail = re.match(r"\s*(?:const\s+)?[&*\s]*([A-Za-z_]\w*)", code[i:])
        if tail:
            yield tail.group(1), m.start()


def mask_directives(code: str) -> str:
    """Blank preprocessor directive lines (including backslash
    continuations) in comment-stripped code, preserving offsets.

    The call-graph layer works on unexpanded text, so macro *definitions*
    must not look like function definitions; masking them keeps
    `#define WB_REQUIRE(cond, msg) ...` out of the symbol table.
    """
    out: list[str] = []
    for line in code.split("\n"):
        in_directive = out and out[-1].rstrip().endswith("\\")
        if in_directive or line.lstrip().startswith("#"):
            out.append(re.sub(r"[^\\]", " ", line) if line.rstrip().endswith("\\")
                       else " " * len(line))
        else:
            out.append(line)
    return "\n".join(out)


def directive_lines(text: str) -> set[int]:
    """1-based line numbers that are preprocessor directives (leading #)."""
    out: set[int] = set()
    for i, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("#"):
            out.add(i)
    return out
