"""Lightweight C++ text tokenization helpers for wb_analyze rules.

Not a parser: rules work on comment/string-stripped text (so keywords in
comments and literals never fire) plus a handful of structural helpers —
line mapping, brace matching, angle-bracket matching, and declared-name
scanning — that together give enough scope awareness for the rule
catalogue without an AST.
"""
from __future__ import annotations

import re
from typing import Iterator


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blank out comments and string/char literals, preserving offsets.

    Every replaced character becomes a space (newlines are kept), so byte
    offsets and line numbers in the stripped text match the original.
    With keep_strings=True only comments are blanked; literal contents
    stay (used by rules that inspect string arguments, e.g. metric-name).
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            # C++14 digit separator (10'000) or a suffix position — not a
            # character literal.
            out.append(c)
            i += 1
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            if keep_strings:
                out.append(text[i:j])
            else:
                out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    """1-based line number of byte offset `pos`."""
    return text.count("\n", 0, pos) + 1


def match_brace(code: str, open_pos: int) -> int:
    """Given code[open_pos] == '{', return the offset one past the matching
    '}'. Returns len(code) if unbalanced (rules then scan to EOF, which is
    conservative but never crashes on malformed input)."""
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def match_angle(code: str, open_pos: int) -> int:
    """Given code[open_pos] == '<', return the offset one past the matching
    '>' of a template argument list, tracking nesting. Parentheses inside
    (e.g. decltype) are skipped wholesale. Returns len(code) if unbalanced."""
    depth = 0
    i = open_pos
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            # `->` and `>>` inside nested lists: a lone `>` closes one level.
            depth -= 1
            if depth == 0:
                return i + 1
        elif c == "(":
            par = 1
            i += 1
            while i < n and par:
                if code[i] == "(":
                    par += 1
                elif code[i] == ")":
                    par -= 1
                i += 1
            continue
        elif c in ";{}":
            # A statement boundary inside an argument list means this `<`
            # was a comparison, not a template list.
            return open_pos + 1
        i += 1
    return n


def declared_names(code: str, type_re: str) -> Iterator[tuple[str, int]]:
    """Yield (name, offset) for every variable/member declared with a type
    matching `type_re` (a regex for the type head, without template args).

    Handles `Type<...> name`, `Type name` and skips function declarations
    (`Type name(` is still yielded — callers that care filter on usage, and
    a false declared-name only matters if the same identifier is also
    iterated, which is what the rules flag anyway).
    """
    for m in re.finditer(type_re, code):
        i = m.end()
        # Skip template argument list if present.
        while i < len(code) and code[i].isspace():
            i += 1
        if i < len(code) and code[i] == "<":
            i = match_angle(code, i)
        # Optional &, *, const, whitespace before the name.
        tail = re.match(r"\s*(?:const\s+)?[&*\s]*([A-Za-z_]\w*)", code[i:])
        if tail:
            yield tail.group(1), m.start()


def directive_lines(text: str) -> set[int]:
    """1-based line numbers that are preprocessor directives (leading #)."""
    out: set[int] = set()
    for i, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("#"):
            out.add(i)
    return out
