#include "reader/ack_detector.h"

#include <gtest/gtest.h>

#include "core/uplink_sim.h"
#include "tag/modulator.h"
#include "wifi/traffic.h"

namespace wb::reader {
namespace {

/// Capture trace with (optionally) an ACK pattern at `ack_start`.
wifi::CaptureTrace make_trace(bool with_ack, TimeUs ack_start,
                              const AckConfig& cfg, double distance_m,
                              std::uint64_t seed) {
  core::UplinkSimConfig sim_cfg;
  sim_cfg.channel.tag_pos = {distance_m, 0.0};
  sim_cfg.channel.helper_pos = {distance_m + 3.0, 0.0};
  sim_cfg.seed = seed;
  sim::RngStream rng(seed);
  auto traffic_rng = rng.fork("t");
  const TimeUs until = ack_start + cfg.duration_us() + TimeUs{100'000};
  const auto tl = wifi::make_cbr_timeline(3'000, until,
                                          wifi::TrafficParams{},
                                          traffic_rng);
  core::UplinkSim sim(sim_cfg);
  if (!with_ack) return sim.run_idle(tl);
  tag::Modulator mod(cfg.pattern, cfg.chip_duration_us, ack_start);
  return sim.run(tl, mod);
}

TEST(AckDetector, DetectsAckAtExpectedTime) {
  AckConfig cfg;
  const TimeUs ack_start{700'000};
  const auto trace = make_trace(true, ack_start, cfg, 0.15, 1);
  const auto det = detect_ack(trace, cfg, ack_start);
  EXPECT_TRUE(det.detected);
  EXPECT_NEAR(static_cast<double>(det.at_us.ticks()),
              static_cast<double>(ack_start.ticks()),
              static_cast<double>(cfg.jitter_us.ticks()));
}

TEST(AckDetector, ToleratesTagClockSkew) {
  AckConfig cfg;
  const TimeUs nominal{700'000};
  // Tag fires 1.5 ms late (inside the jitter window).
  const auto trace = make_trace(true, nominal + TimeUs{1'500}, cfg, 0.15, 2);
  EXPECT_TRUE(detect_ack(trace, cfg, nominal).detected);
}

TEST(AckDetector, SilentTagNotDetected) {
  AckConfig cfg;
  const auto trace = make_trace(false, TimeUs{700'000}, cfg, 0.15, 3);
  const auto det = detect_ack(trace, cfg, TimeUs{700'000});
  EXPECT_FALSE(det.detected);
  EXPECT_LT(det.score, cfg.threshold);
}

TEST(AckDetector, NoFalsePositivesOverSeeds) {
  AckConfig cfg;
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    const auto trace = make_trace(false, TimeUs{700'000}, cfg, 0.15, seed);
    EXPECT_FALSE(detect_ack(trace, cfg, TimeUs{700'000}).detected)
        << "seed " << seed;
  }
}

TEST(AckDetector, DetectsAcrossSeeds) {
  AckConfig cfg;
  std::size_t hits = 0;
  for (std::uint64_t seed = 20; seed < 28; ++seed) {
    const auto trace = make_trace(true, TimeUs{700'000}, cfg, 0.15, seed);
    if (detect_ack(trace, cfg, TimeUs{700'000}).detected) ++hits;
  }
  EXPECT_GE(hits, 7u);
}

TEST(AckDetector, LongerPatternsRejectNoiseBetter) {
  // The per-chip-normalised score averages over the pattern, so its mean
  // on a real ACK is length-independent — but its *noise floor* shrinks
  // with length (the §3.4 correlation-gain argument). A 2-chip pattern's
  // best noise correlation over the search window far exceeds a
  // 16-chip pattern's.
  AckConfig short_cfg;
  short_cfg.pattern = bits_from_string("10");
  AckConfig long_cfg;
  long_cfg.pattern = bits_from_string("1010101010101010");
  double short_noise = 0.0, long_noise = 0.0;
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    short_noise +=
        detect_ack(
            make_trace(false, TimeUs{700'000}, short_cfg, 0.15, seed),
            short_cfg, TimeUs{700'000})
            .score;
    long_noise +=
        detect_ack(
            make_trace(false, TimeUs{700'000}, long_cfg, 0.15, seed),
            long_cfg, TimeUs{700'000})
            .score;
  }
  EXPECT_GT(short_noise, 1.5 * long_noise);
}

TEST(AckDetector, EmptyTraceNotDetected) {
  AckConfig cfg;
  EXPECT_FALSE(detect_ack(ConditionedTrace{}, cfg, TimeUs{}).detected);
}

}  // namespace
}  // namespace wb::reader
