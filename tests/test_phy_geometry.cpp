#include "phy/geometry.h"
#include "phy/pathloss.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace wb::phy {
namespace {

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}).value(), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}).value(), 0.0);
}

TEST(Geometry, SegmentsCross) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
}

TEST(Geometry, SegmentsParallelDoNotCross) {
  EXPECT_FALSE(segments_intersect({0, 0}, {2, 0}, {0, 1}, {2, 1}));
}

TEST(Geometry, SegmentsDisjointDoNotCross) {
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 1}, {3, 1}));
}

TEST(Geometry, SharedEndpointCountsAsCross) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(Geometry, CollinearOverlapCountsAsCross) {
  EXPECT_TRUE(segments_intersect({0, 0}, {3, 0}, {1, 0}, {2, 0}));
}

TEST(FloorPlan, WallLossAccumulates) {
  FloorPlan plan;
  plan.add_wall(Wall{{1, -1}, {1, 1}, Db{6.0}});
  plan.add_wall(Wall{{2, -1}, {2, 1}, Db{4.0}});
  EXPECT_DOUBLE_EQ(plan.wall_loss_db({0, 0}, {3, 0}).value(), 10.0);
  EXPECT_DOUBLE_EQ(plan.wall_loss_db({0, 0}, {0.5, 0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(plan.wall_loss_db({1.5, 0}, {3, 0}).value(), 4.0);
}

TEST(Testbed, PaperFig13Layout) {
  const auto tb = Testbed::paper_fig13();
  EXPECT_EQ(tb.helper_locations.size(), 4u);
  EXPECT_NEAR(distance(tb.reader, tb.tag).value(), 0.05, 1e-12);
  // Locations 2-4 LOS, 3-6 m; location 5 NLOS behind the wall, ~9 m.
  for (std::size_t i = 0; i < 3; ++i) {
    const double d = distance(tb.helper_locations[i], tb.tag).value();
    EXPECT_GE(d, 2.5) << i;
    EXPECT_LE(d, 6.5) << i;
    EXPECT_DOUBLE_EQ(
        tb.plan.wall_loss_db(tb.helper_locations[i], tb.tag).value(),
        0.0)
        << i;
  }
  EXPECT_GT(distance(tb.helper_locations[3], tb.tag), Meters{8.0});
  EXPECT_GT(tb.plan.wall_loss_db(tb.helper_locations[3], tb.tag),
            Db{});
}

TEST(PathLoss, FreeSpaceReference) {
  PathLossModel pl;
  pl.near_field_m = Meters{};
  EXPECT_NEAR(pl.loss_db(Meters{1.0}).value(), 40.0, 1e-9);
  // +20 dB per decade at n=2
  EXPECT_NEAR(pl.loss_db(Meters{10.0}).value(), 60.0, 1e-9);
}

TEST(PathLoss, MonotoneInDistance) {
  PathLossModel pl;
  double prev = -1e9;
  for (double d : {0.05, 0.1, 0.5, 1.0, 3.0, 10.0}) {
    const double loss = pl.loss_db(Meters{d}).value();
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(PathLoss, NearFieldClampBoundsCloseRange) {
  PathLossModel pl;
  pl.near_field_m = Meters{0.08};
  // Below the clamp the loss flattens: 1 cm and 5 cm differ by < 3 dB.
  EXPECT_LT(pl.loss_db(Meters{0.05}) - pl.loss_db(Meters{0.01}), Db{3.0});
}

TEST(PathLoss, AmplitudeGainMatchesLoss) {
  PathLossModel pl;
  const Meters d{2.0};
  EXPECT_NEAR(pl.amplitude_gain(d),
              (-pl.loss_db(d)).to_amplitude(), 1e-12);
}

TEST(PathLoss, WallsAddToPointToPointLoss) {
  FloorPlan plan;
  plan.add_wall(Wall{{1, -1}, {1, 1}, Db{7.0}});
  PathLossModel pl;
  const Db with_wall = pl.loss_db({0, 0}, {2, 0}, &plan);
  const Db without = pl.loss_db({0, 0}, {2, 0}, nullptr);
  EXPECT_NEAR((with_wall - without).value(), 7.0, 1e-12);
}

TEST(Units, DbmRoundtrip) {
  for (double dbm : {-90.0, -30.0, 0.0, 16.0}) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
}

TEST(Units, DbHelpers) {
  EXPECT_NEAR(db_to_ratio(3.0103), 2.0, 1e-3);
  EXPECT_NEAR(db_to_amplitude(6.0206), 2.0, 1e-3);
  EXPECT_NEAR(ratio_to_db(100.0), 20.0, 1e-9);
}

TEST(Units, Wavelength24GHz) {
  EXPECT_NEAR(kWifiChannel6.wavelength().value(), 0.123, 0.001);
}

}  // namespace
}  // namespace wb::phy
