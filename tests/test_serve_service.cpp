#include "serve/capture_service.h"

#include <gtest/gtest.h>

#include "core/uplink_sim.h"
#include "obs/metrics.h"
#include "serve/error.h"
#include "tag/modulator.h"
#include "util/check.h"
#include "util/codes.h"
#include "wifi/replay.h"
#include "wifi/traffic.h"

namespace wb::serve {
namespace {

/// Synthetic capture with one tag frame (24-bit payload at 0.7 s) over
/// helper CBR traffic — same recipe as the streaming decoder tests.
wifi::CaptureTrace make_trace(const std::vector<TimeUs>& frame_starts,
                              const std::vector<BitVec>& payloads,
                              TimeUs bit_us, TimeUs until,
                              std::uint64_t seed) {
  core::UplinkSimConfig cfg;
  cfg.channel.tag_pos = {0.08, 0.0};
  cfg.channel.helper_pos = {3.08, 0.0};
  cfg.seed = seed;
  sim::RngStream rng(seed);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(3'000, until,
                                          wifi::TrafficParams{},
                                          traffic_rng);
  std::vector<tag::Modulator> mods;
  for (std::size_t i = 0; i < frame_starts.size(); ++i) {
    BitVec frame = barker13();
    frame.insert(frame.end(), payloads[i].begin(), payloads[i].end());
    mods.emplace_back(frame, bit_us, frame_starts[i]);
  }
  core::UplinkSim sim(cfg);
  wifi::CaptureTrace trace;
  for (const auto& pkt : tl) {
    bool state = false;
    for (const auto& m : mods) state = state || m.state_at(pkt.start_us);
    const auto h = sim.channel().response(state, pkt.start_us);
    trace.push_back(
        sim.nic().measure(h, pkt.start_us, pkt.source, pkt.kind));
  }
  return trace;
}

const BitVec& shared_payload() {
  static const BitVec payload = random_bits(24, 1);
  return payload;
}

/// One frame at 0.7 s, traffic to 1.2 s (the frame ends at 0.885 s, so
/// push-path scans emit it without needing a flush).
const wifi::CaptureTrace& shared_trace() {
  static const wifi::CaptureTrace trace =
      make_trace({TimeUs{700'000}}, {shared_payload()}, TimeUs{5'000},
                 TimeUs{1'200'000}, 2);
  return trace;
}

reader::StreamingDecoderConfig stream_config() {
  reader::StreamingDecoderConfig cfg;
  cfg.decoder.payload_bits = 24;
  cfg.decoder.bit_duration_us = TimeUs{5'000};
  return cfg;
}

ServeConfig serve_config(unsigned threads, BackpressurePolicy policy,
                         std::size_t ring_capacity) {
  ServeConfig cfg;
  cfg.ring_capacity = ring_capacity;
  cfg.policy = policy;
  cfg.max_sessions = 8;
  cfg.dispatch_threads = threads;
  cfg.decoder = stream_config();
  cfg.frame_capacity = 16;
  return cfg;
}

constexpr std::size_t kSessions = 3;
constexpr TimeUs kStagger{1'733};

/// Feeds shared_trace() to `sessions` staggered streams and drains.
void feed_all(CaptureService& svc, std::size_t sessions, bool poll_each) {
  auto feed = wifi::MultiSessionFeed(
      wifi::fan_out(shared_trace(), sessions, kStagger));
  std::uint32_t session = 0;
  wifi::CaptureRecord rec{};
  while (feed.next(session, rec)) {
    EXPECT_TRUE(svc.submit(session, rec).ok());
    if (poll_each) svc.poll();
  }
  svc.drain_all();
}

struct RunOutput {
  std::string frames;     ///< concatenated per-session frames_jsonl
  std::string forensics;  ///< merged forensics JSONL
};

/// attach_variant 0: attach 0..N-1 in order.
/// attach_variant 1: attach in reverse, plus a bystander session that
/// attaches and detaches before any record flows.
RunOutput run_service(unsigned threads, BackpressurePolicy policy,
                      std::size_t ring_capacity, int attach_variant,
                      bool poll_each) {
  CaptureService svc(serve_config(threads, policy, ring_capacity));
  if (attach_variant == 0) {
    for (std::uint32_t id = 0; id < kSessions; ++id) {
      EXPECT_TRUE(svc.attach(id).ok());
    }
  } else {
    EXPECT_TRUE(svc.attach(7).ok());  // bystander
    for (std::uint32_t id = kSessions; id-- > 0;) {
      EXPECT_TRUE(svc.attach(id).ok());
    }
    EXPECT_TRUE(svc.detach(7).ok());
  }
  feed_all(svc, kSessions, poll_each);
  RunOutput out;
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    const Session* s = svc.find(id);
    EXPECT_NE(s, nullptr);
    if (s != nullptr) out.frames += s->frames_jsonl();
  }
  out.forensics = svc.forensics_jsonl();
  return out;
}

TEST(CaptureService, BlockProducerSmallRingLosesNothing) {
  // Ring far smaller than the workload: submit must backpressure by
  // draining inline, and every record still reaches its decoder.
  CaptureService svc(serve_config(1, BackpressurePolicy::kBlockProducer, 32));
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    ASSERT_TRUE(svc.attach(id).ok());
  }
  feed_all(svc, kSessions, /*poll_each=*/false);

  const auto& c = svc.counters();
  EXPECT_EQ(c.submitted, shared_trace().size() * kSessions);
  EXPECT_EQ(c.accepted, c.submitted);
  EXPECT_EQ(c.routed, c.submitted);
  EXPECT_EQ(c.dropped_backpressure, 0u);
  EXPECT_GT(c.blocked, 0u);  // the small ring did fill

  for (std::uint32_t id = 0; id < kSessions; ++id) {
    const Session* s = svc.find(id);
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->frames_total(), 1u) << "session " << id;
    EXPECT_EQ(s->frame(0).payload, shared_payload());
  }

  // Ingest ledger reconciles with zero drops.
  obs::ForensicsSink merged;
  svc.merge_forensics_into(merged);
  EXPECT_EQ(merged.attempts(obs::DropStage::kIngest), c.submitted);
  EXPECT_EQ(merged.decodes(obs::DropStage::kIngest), c.submitted);
  EXPECT_EQ(merged.total_drops(obs::DropStage::kIngest), 0u);
}

TEST(CaptureService, DropOldestShedsAndLedgerReconciles) {
  // Never poll: the tiny ring must keep evicting, and the ledger must
  // still balance after the drain.
  CaptureService svc(serve_config(1, BackpressurePolicy::kDropOldest, 8));
  ASSERT_TRUE(svc.attach(0).ok());
  auto feed =
      wifi::MultiSessionFeed(wifi::fan_out(shared_trace(), 1, TimeUs{0}));
  std::uint32_t session = 0;
  wifi::CaptureRecord rec{};
  while (feed.next(session, rec)) {
    ASSERT_TRUE(svc.submit(session, rec).ok());
  }
  svc.drain_all();

  const auto& c = svc.counters();
  const std::uint64_t n = shared_trace().size();
  EXPECT_EQ(c.submitted, n);
  EXPECT_EQ(c.accepted, n);  // drop-oldest always admits the new record
  EXPECT_EQ(c.dropped_backpressure, n - 8);
  EXPECT_EQ(c.routed, 8u);  // only the final ring-full survived
  EXPECT_EQ(c.blocked, 0u);

  obs::ForensicsSink merged;
  svc.merge_forensics_into(merged);
  EXPECT_EQ(merged.attempts(obs::DropStage::kIngest), n);
  EXPECT_EQ(merged.decodes(obs::DropStage::kIngest) +
                merged.total_drops(obs::DropStage::kIngest),
            n);
  EXPECT_EQ(merged.drops(obs::DropStage::kIngest,
                         obs::DropReason::kBackpressure),
            n - 8);
  // The drop path stored (bounded) raw exemplars of the victims: the
  // per-cell cap worth of backpressure captures, alongside whatever the
  // session's own decoder stages stored.
  const std::string jsonl = merged.to_jsonl();
  EXPECT_NE(jsonl.find("serve_ingest_backpressure.0.csv"), std::string::npos);
  EXPECT_NE(jsonl.find("serve_ingest_backpressure.1.csv"), std::string::npos);
  EXPECT_EQ(jsonl.find("serve_ingest_backpressure.2.csv"), std::string::npos);
}

TEST(CaptureService, DropNewestRefusesAndLedgerReconciles) {
  CaptureService svc(serve_config(1, BackpressurePolicy::kDropNewest, 8));
  ASSERT_TRUE(svc.attach(0).ok());
  auto feed =
      wifi::MultiSessionFeed(wifi::fan_out(shared_trace(), 1, TimeUs{0}));
  std::uint32_t session = 0;
  wifi::CaptureRecord rec{};
  while (feed.next(session, rec)) {
    ASSERT_TRUE(svc.submit(session, rec).ok());
  }
  svc.drain_all();

  const auto& c = svc.counters();
  const std::uint64_t n = shared_trace().size();
  EXPECT_EQ(c.submitted, n);
  EXPECT_EQ(c.accepted, 8u);  // only the first ring-full was admitted
  EXPECT_EQ(c.dropped_backpressure, n - 8);
  EXPECT_EQ(c.routed, 8u);

  obs::ForensicsSink merged;
  svc.merge_forensics_into(merged);
  EXPECT_EQ(merged.attempts(obs::DropStage::kIngest), n);
  EXPECT_EQ(merged.decodes(obs::DropStage::kIngest) +
                merged.total_drops(obs::DropStage::kIngest),
            n);
}

TEST(CaptureService, DrainRecoversStrandedTailFrame) {
  // Traffic stops right after the frame ends: no push-path scan can emit
  // it, so the frame exists only in the decoders' buffered tails.
  // drain_all() must flush it out for every session — the "drain loses
  // no decodable frame" acceptance criterion.
  const BitVec payload = random_bits(24, 10);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{890'000}, 11);
  CaptureService svc(serve_config(1, BackpressurePolicy::kBlockProducer, 64));
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    ASSERT_TRUE(svc.attach(id).ok());
  }
  auto feed = wifi::MultiSessionFeed(wifi::fan_out(trace, kSessions, kStagger));
  std::uint32_t session = 0;
  wifi::CaptureRecord rec{};
  while (feed.next(session, rec)) {
    ASSERT_TRUE(svc.submit(session, rec).ok());
  }
  EXPECT_EQ(svc.frames_total(), 0u);  // stranded before the drain
  const std::size_t drained = svc.drain_all();
  EXPECT_EQ(drained, kSessions);
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    const Session* s = svc.find(id);
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->frames_total(), 1u) << "session " << id;
    EXPECT_EQ(s->frame(0).payload, payload);
  }
}

TEST(CaptureService, OutputsIdenticalAcrossThreadCounts) {
  const RunOutput serial =
      run_service(1, BackpressurePolicy::kBlockProducer, 64, 0, false);
  const RunOutput parallel =
      run_service(8, BackpressurePolicy::kBlockProducer, 64, 0, false);
  ASSERT_FALSE(serial.frames.empty());
  EXPECT_EQ(serial.frames, parallel.frames);
  EXPECT_EQ(serial.forensics, parallel.forensics);
}

TEST(CaptureService, OutputsIdenticalAcrossAttachInterleaving) {
  // Reverse attach order, a bystander attach/detach, and per-submit
  // polling must not change a byte of any session's decode output or of
  // the merged forensics.
  const RunOutput plain =
      run_service(1, BackpressurePolicy::kBlockProducer, 64, 0, false);
  const RunOutput shuffled =
      run_service(1, BackpressurePolicy::kBlockProducer, 64, 1, true);
  ASSERT_FALSE(plain.frames.empty());
  EXPECT_EQ(plain.frames, shuffled.frames);
  EXPECT_EQ(plain.forensics, shuffled.forensics);
}

TEST(CaptureService, OutputsIdenticalAcrossPoliciesWithoutBackpressure) {
  // Polling after every submit keeps the ring depth at <= 1, so no
  // policy ever engages and all three must produce identical bytes.
  const RunOutput block =
      run_service(1, BackpressurePolicy::kBlockProducer, 64, 0, true);
  const RunOutput oldest =
      run_service(1, BackpressurePolicy::kDropOldest, 64, 0, true);
  const RunOutput newest =
      run_service(1, BackpressurePolicy::kDropNewest, 64, 0, true);
  ASSERT_FALSE(block.frames.empty());
  EXPECT_EQ(block.frames, oldest.frames);
  EXPECT_EQ(block.frames, newest.frames);
  EXPECT_EQ(block.forensics, oldest.forensics);
  EXPECT_EQ(block.forensics, newest.forensics);
}

TEST(CaptureService, ErrorTaxonomy) {
  CaptureService svc(serve_config(1, BackpressurePolicy::kBlockProducer, 16));
  EXPECT_TRUE(svc.attach(1).ok());
  EXPECT_EQ(svc.attach(1).code(), ErrorCode::kAlreadyExists);
  for (std::uint32_t id = 2; id <= 8; ++id) {
    EXPECT_TRUE(svc.attach(id).ok());
  }
  EXPECT_EQ(svc.attach(9).code(), ErrorCode::kCapacity);
  EXPECT_EQ(svc.detach(99).code(), ErrorCode::kNotFound);
  wifi::CaptureRecord rec{};
  EXPECT_EQ(svc.submit(99, rec).code(), ErrorCode::kNotFound);

  EXPECT_TRUE(svc.stop().ok());
  EXPECT_EQ(svc.state(), ServiceState::kStopped);
  EXPECT_EQ(svc.attach(10).code(), ErrorCode::kWrongState);
  EXPECT_EQ(svc.submit(1, rec).code(), ErrorCode::kWrongState);
  EXPECT_EQ(svc.detach(1).code(), ErrorCode::kWrongState);
  EXPECT_TRUE(svc.stop().ok());  // idempotent
}

TEST(CaptureService, DetachRetiresForensicsAndFreesSlot) {
  CaptureService svc(serve_config(1, BackpressurePolicy::kBlockProducer, 64));
  ASSERT_TRUE(svc.attach(0).ok());
  auto feed =
      wifi::MultiSessionFeed(wifi::fan_out(shared_trace(), 1, TimeUs{0}));
  std::uint32_t session = 0;
  wifi::CaptureRecord rec{};
  while (feed.next(session, rec)) {
    ASSERT_TRUE(svc.submit(session, rec).ok());
  }
  ASSERT_TRUE(svc.detach(0).ok());
  EXPECT_EQ(svc.find(0), nullptr);
  EXPECT_EQ(svc.active_sessions(), 0u);
  EXPECT_EQ(svc.state(), ServiceState::kIdle);

  // The ingest ledger and the retired session's decode ledger survive
  // the detach in the merged export.
  obs::ForensicsSink merged;
  svc.merge_forensics_into(merged);
  const std::uint64_t n = shared_trace().size();
  EXPECT_EQ(merged.attempts(obs::DropStage::kIngest), n);
  EXPECT_EQ(merged.decodes(obs::DropStage::kIngest), n);
  EXPECT_GT(merged.decodes(obs::DropStage::kStreamingDecoder), 0u);

  // The slot is reusable for a fresh id.
  EXPECT_TRUE(svc.attach(12).ok());
  EXPECT_EQ(svc.state(), ServiceState::kServing);
}

TEST(CaptureService, StopDrainsDetachesAndIsTerminal) {
  CaptureService svc(serve_config(1, BackpressurePolicy::kBlockProducer, 64));
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    ASSERT_TRUE(svc.attach(id).ok());
  }
  auto feed = wifi::MultiSessionFeed(
      wifi::fan_out(shared_trace(), kSessions, kStagger));
  std::uint32_t session = 0;
  wifi::CaptureRecord rec{};
  while (feed.next(session, rec)) {
    ASSERT_TRUE(svc.submit(session, rec).ok());
  }
  ASSERT_TRUE(svc.stop().ok());
  EXPECT_EQ(svc.state(), ServiceState::kStopped);
  EXPECT_EQ(svc.active_sessions(), 0u);

  // Every session's ledger was retired, not lost: each decoded a frame.
  obs::ForensicsSink merged;
  svc.merge_forensics_into(merged);
  EXPECT_EQ(merged.decodes(obs::DropStage::kStreamingDecoder), kSessions);
  EXPECT_EQ(merged.attempts(obs::DropStage::kIngest),
            merged.decodes(obs::DropStage::kIngest));
}

TEST(CaptureService, PropertiesSnapshotIsSortedAndComplete) {
  CaptureService svc(serve_config(1, BackpressurePolicy::kDropOldest, 16));
  ASSERT_TRUE(svc.attach(3).ok());
  const auto props = svc.properties();
  ASSERT_FALSE(props.empty());
  for (std::size_t i = 1; i < props.size(); ++i) {
    EXPECT_LT(props[i - 1].first, props[i].first);
  }
  auto value_of = [&](const std::string& key) -> std::string {
    for (const auto& kv : props) {
      if (kv.first == key) return kv.second;
    }
    return "<missing>";
  };
  EXPECT_EQ(value_of("ring.capacity"), "16");
  EXPECT_EQ(value_of("ring.policy"), "drop_oldest");
  EXPECT_EQ(value_of("service.state"), "serving");
  EXPECT_EQ(value_of("sessions.active"), "1");
  EXPECT_EQ(value_of("sessions.max"), "8");
  EXPECT_EQ(value_of("ingest.submitted_total"), "0");
}

TEST(CaptureService, PublishMetricsWritesServeNames) {
  CaptureService svc(serve_config(1, BackpressurePolicy::kBlockProducer, 64));
  ASSERT_TRUE(svc.attach(0).ok());
  auto feed =
      wifi::MultiSessionFeed(wifi::fan_out(shared_trace(), 1, TimeUs{0}));
  std::uint32_t session = 0;
  wifi::CaptureRecord rec{};
  while (feed.next(session, rec)) {
    ASSERT_TRUE(svc.submit(session, rec).ok());
  }
  svc.drain_all();

  obs::MetricsRegistry registry;
  {
    obs::ScopedMetrics guard(registry);
    svc.publish_metrics();
  }
  const auto snap = registry.snapshot();
  auto counter_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& kv : snap.counters) {
      if (kv.first == name) return kv.second;
    }
    return static_cast<std::uint64_t>(-1);
  };
  EXPECT_EQ(counter_of("serve.ingest.submitted_total"),
            shared_trace().size());
  EXPECT_EQ(counter_of("serve.ingest.accepted_total"),
            shared_trace().size());
  EXPECT_EQ(counter_of("serve.dispatch.records_total"),
            shared_trace().size());
  EXPECT_EQ(counter_of("serve.session.frames_total"), 1u);
}

TEST(CaptureService, ServiceStateTokensAreStable) {
  EXPECT_STREQ(to_string(ServiceState::kIdle), "idle");
  EXPECT_STREQ(to_string(ServiceState::kServing), "serving");
  EXPECT_STREQ(to_string(ServiceState::kDraining), "draining");
  EXPECT_STREQ(to_string(ServiceState::kStopped), "stopped");
}

}  // namespace
}  // namespace wb::serve
