#include "util/args.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/check.h"

namespace wb::util {
namespace {

// Builds argv ("prog" + words) with storage owned by the fixture so the
// Args view stays valid for the whole test body.
class ArgsTest : public ::testing::Test {
 protected:
  Args make(std::vector<std::string> words) {
    words_ = std::move(words);
    ptrs_.clear();
    ptrs_.push_back(prog_.data());
    for (auto& w : words_) ptrs_.push_back(w.data());
    return Args(static_cast<int>(ptrs_.size()), ptrs_.data());
  }

  std::string prog_ = "prog";
  std::vector<std::string> words_;
  std::vector<char*> ptrs_;
};

TEST_F(ArgsTest, BooleanFlagPresenceAndAbsence) {
  const Args args = make({"--quick", "positional"});
  EXPECT_TRUE(args.flag("--quick"));
  EXPECT_FALSE(args.flag("--slow"));
}

TEST_F(ArgsTest, ValuedFlagsParseAndLastOccurrenceWins) {
  const Args args =
      make({"--out", "a.json", "--threads", "8", "--out", "b.json"});
  EXPECT_EQ(args.str("--out"), "b.json");
  EXPECT_EQ(args.u64("--threads", 0), 8u);
  EXPECT_EQ(args.size("--threads", 0), 8u);
  EXPECT_EQ(args.str("--missing", "dflt"), "dflt");
  EXPECT_EQ(args.u64("--missing", 3), 3u);
}

TEST_F(ArgsTest, NumParsesDoublesIncludingNegatives) {
  const Args args = make({"--distance", "0.3", "--offset", "-5"});
  EXPECT_DOUBLE_EQ(args.num("--distance", 0.0), 0.3);
  EXPECT_DOUBLE_EQ(args.num("--offset", 0.0), -5.0);
  EXPECT_DOUBLE_EQ(args.num("--missing", 1.5), 1.5);
}

TEST_F(ArgsTest, NumListSplitsOnCommas) {
  const Args args = make({"--distances-cm", "5,30,,65"});
  EXPECT_EQ(args.num_list("--distances-cm"),
            (std::vector<double>{5.0, 30.0, 65.0}));
  EXPECT_EQ(args.num_list("--missing", {1.0}), std::vector<double>{1.0});
}

TEST_F(ArgsTest, FlagAsValueIsAUsageError) {
  // `--json-out --quick` used to silently write a file named "--quick".
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  const Args args = make({"--json-out", "--quick"});
  EXPECT_THROW(args.str("--json-out"), ContractViolation);
}

TEST_F(ArgsTest, TrailingValuedFlagIsAUsageError) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  const Args args = make({"--runs", "3", "--json-out"});
  EXPECT_THROW(args.str("--json-out"), ContractViolation);
  // Other flags on the same line still parse.
  EXPECT_EQ(args.u64("--runs", 0), 3u);
}

TEST_F(ArgsTest, NonNumericValuesFailLoudly) {
  // `--threads abc` used to parse as 0, meaning "hardware concurrency".
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  const Args args = make({"--threads", "abc", "--distance", "1.5x",
                          "--runs", "-2", "--list", "1,zz,3"});
  EXPECT_THROW(args.u64("--threads", 0), ContractViolation);
  EXPECT_THROW(args.num("--distance", 0.0), ContractViolation);
  EXPECT_THROW(args.u64("--runs", 0), ContractViolation);  // negative u64
  EXPECT_THROW(args.num_list("--list"), ContractViolation);
}

}  // namespace
}  // namespace wb::util
