#include "wifi/nic.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace wb::wifi {
namespace {

phy::CsiMatrix flat_channel(double amp) {
  phy::CsiMatrix h{};
  for (auto& ant : h) {
    for (auto& c : ant) c = {amp, 0.0};
  }
  return h;
}

NicModelParams quiet_params() {
  NicModelParams p;
  p.csi_noise_rel = 0.0;
  p.csi_noise_spread = 0.0;
  p.spurious_prob = 0.0;
  p.rssi_noise_db = Db{};
  p.weak_antenna = phy::kNumAntennas;  // disabled
  p.csi_quant_step = 0.0;
  p.rssi_quant_db = Db{};
  return p;
}

TEST(Nic, CalibratedScaleMapsRmsToCsiScale) {
  NicModelParams p = quiet_params();
  sim::RngStream rng(1);
  NicModel nic(p, rng);
  const auto h = flat_channel(0.02);
  nic.calibrate(h);
  const auto rec = nic.measure(h, TimeUs{}, 1, FrameKind::kData);
  for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
    for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
      EXPECT_NEAR(rec.csi[a][s], p.csi_scale, 1e-9);
    }
  }
}

TEST(Nic, AutoCalibratesOnFirstPacket) {
  NicModelParams p = quiet_params();
  sim::RngStream rng(2);
  NicModel nic(p, rng);
  const auto rec = nic.measure(flat_channel(0.01), TimeUs{}, 1, FrameKind::kData);
  EXPECT_NEAR(rec.csi[0][0], p.csi_scale, 1e-9);
}

TEST(Nic, CalibrationDoesNotTrackModulation) {
  // The reference is fixed at calibration; a stronger channel later shows
  // up as larger CSI, not as a re-normalised constant.
  NicModelParams p = quiet_params();
  sim::RngStream rng(3);
  NicModel nic(p, rng);
  nic.calibrate(flat_channel(0.01));
  const auto rec = nic.measure(flat_channel(0.012), TimeUs{1}, 1, FrameKind::kData);
  EXPECT_NEAR(rec.csi[0][0], p.csi_scale * 1.2, 1e-9);
}

TEST(Nic, QuantisationGrid) {
  NicModelParams p = quiet_params();
  p.csi_quant_step = 0.05;
  sim::RngStream rng(4);
  NicModel nic(p, rng);
  nic.calibrate(flat_channel(0.01));
  const auto rec = nic.measure(flat_channel(0.0101), TimeUs{}, 1, FrameKind::kData);
  const double steps = rec.csi[0][0] / 0.05;
  EXPECT_NEAR(steps, std::round(steps), 1e-9);
}

TEST(Nic, WeakAntennaReportsLowCsi) {
  NicModelParams p = quiet_params();
  p.weak_antenna = 2;
  p.weak_antenna_gain = 0.08;
  sim::RngStream rng(5);
  NicModel nic(p, rng);
  nic.calibrate(flat_channel(0.01));
  const auto rec = nic.measure(flat_channel(0.01), TimeUs{}, 1, FrameKind::kData);
  EXPECT_NEAR(rec.csi[2][0], rec.csi[0][0] * 0.08, 1e-9);
}

TEST(Nic, BeaconsCarryNoCsi) {
  sim::RngStream rng(6);
  NicModel nic(quiet_params(), rng);
  const auto rec = nic.measure(flat_channel(0.01), TimeUs{}, 1, FrameKind::kBeacon);
  EXPECT_FALSE(rec.has_csi);
  // RSSI is still present.
  EXPECT_GT(rec.rssi_dbm[0], -95.0);
}

TEST(Nic, RssiReflectsTotalPower) {
  sim::RngStream rng(7);
  NicModel nic(quiet_params(), rng);
  nic.calibrate(flat_channel(0.01));
  const auto weak = nic.measure(flat_channel(0.01), TimeUs{}, 1, FrameKind::kData);
  const auto strong =
      nic.measure(flat_channel(0.02), TimeUs{1}, 1, FrameKind::kData);
  // 2x amplitude = +6.02 dB.
  EXPECT_NEAR(strong.rssi_dbm[0] - weak.rssi_dbm[0], 6.02, 0.05);
}

TEST(Nic, RssiQuantisedToWholeDb) {
  NicModelParams p = quiet_params();
  p.rssi_quant_db = Db{1.0};
  sim::RngStream rng(8);
  NicModel nic(p, rng);
  const auto rec = nic.measure(flat_channel(0.013), TimeUs{}, 1, FrameKind::kData);
  for (double r : rec.rssi_dbm) {
    EXPECT_NEAR(r, std::round(r), 1e-9);
  }
}

TEST(Nic, SpuriousEventsAtConfiguredRate) {
  NicModelParams p = quiet_params();
  p.spurious_prob = 0.1;
  p.spurious_scale = 2.0;
  sim::RngStream rng(9);
  NicModel nic(p, rng);
  nic.calibrate(flat_channel(0.01));
  std::size_t spurious = 0;
  const std::size_t n = 5'000;
  for (std::size_t i = 0; i < n; ++i) {
    const auto rec =
        nic.measure(flat_channel(0.01), static_cast<TimeUs>(i), 1,
                    FrameKind::kData);
    if (std::abs(rec.csi[0][0] - p.csi_scale) > 0.01) ++spurious;
  }
  EXPECT_NEAR(static_cast<double>(spurious), 500.0, 100.0);
}

TEST(Nic, NoiseScalesWithConfiguredRel) {
  NicModelParams p = quiet_params();
  p.csi_noise_rel = 0.05;
  sim::RngStream rng(10);
  NicModel nic(p, rng);
  nic.calibrate(flat_channel(0.01));
  RunningStats stats;
  for (int i = 0; i < 3'000; ++i) {
    const auto rec = nic.measure(flat_channel(0.01),
                                 static_cast<TimeUs>(i), 1,
                                 FrameKind::kData);
    stats.push(rec.csi[0][0]);
  }
  // Complex noise with sigma 5% per axis perturbs |H| by roughly 5% of
  // scale; verify the observed jitter is in that ballpark.
  EXPECT_NEAR(stats.stddev() / p.csi_scale, 0.05, 0.02);
}

TEST(Nic, StreamIndexHelpers) {
  EXPECT_EQ(stream_index(0, 0), 0u);
  EXPECT_EQ(stream_index(1, 0), phy::kNumSubchannels);
  EXPECT_EQ(stream_antenna(stream_index(2, 7)), 2u);
  EXPECT_EQ(stream_subchannel(stream_index(2, 7)), 7u);
}

}  // namespace
}  // namespace wb::wifi
