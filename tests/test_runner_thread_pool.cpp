#include "runner/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wb::runner {
namespace {

TEST(DefaultThreads, AtLeastOne) {
  EXPECT_GE(default_threads(), 1u);
}

TEST(ThreadPool, ReportsRequestedWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 200;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, WaitIdleWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not block
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ReusableAcrossWaitIdleRounds) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SubmitFromWorkerThreadIsSafe) {
  ThreadPool pool(2);
  std::atomic<int> children{0};
  std::atomic<int> parents{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &children, &parents] {
      parents.fetch_add(1);
      pool.submit([&children] { children.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(parents.load(), 8);
  EXPECT_EQ(children.load(), 8);
}

TEST(ThreadPool, TrickledSubmissionsNeverStrandATask) {
  // Regression for a lost-wakeup race in submit(): the task used to be
  // pushed to its worker queue after the epoch bump and outside mu_, so a
  // worker could read the new epoch, scan every queue before the push
  // landed, and then sleep forever on `epoch_ != seen_epoch` — stranding
  // the task and deadlocking wait_idle(). Trickling single tasks through
  // repeated idle phases maximizes sleeping workers at submit time; a
  // stranded task hangs this test (guarded by the ctest timeout).
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
    if (i % 2 == 0) pool.wait_idle();
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, WorkIsActuallyDistributedWhenWorkersBlock) {
  // Two tasks that each wait for the other to start can only finish if two
  // distinct workers pick them up — a single-threaded pool would deadlock
  // (guarded by the surrounding ctest timeout).
  ThreadPool pool(2);
  std::atomic<int> started{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&started] {
      started.fetch_add(1);
      while (started.load() < 2) std::this_thread::yield();
    });
  }
  pool.wait_idle();
  EXPECT_EQ(started.load(), 2);

  // And the pool reports which threads ran: with many yielding tasks on a
  // 4-worker pool at least one task runs off the submitting thread.
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&mu, &ids] {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_GE(ids.size(), 1u);
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

}  // namespace
}  // namespace wb::runner
