#include "core/frame.h"

#include <gtest/gtest.h>

namespace wb::core {
namespace {

TEST(UplinkFrame, BuildLayout) {
  const BitVec data = bits_from_string("10110011");
  const auto frame = build_uplink_frame(data);
  EXPECT_EQ(frame.size(),
            uplink_preamble().size() + uplink_payload_bits(data.size()));
  // Preamble first.
  for (std::size_t i = 0; i < uplink_preamble().size(); ++i) {
    EXPECT_EQ(frame[i], uplink_preamble()[i]);
  }
  // Postamble last.
  const auto& post = uplink_postamble();
  for (std::size_t i = 0; i < post.size(); ++i) {
    EXPECT_EQ(frame[frame.size() - post.size() + i], post[i]);
  }
}

TEST(UplinkFrame, PostambleIsReversedPreamble) {
  BitVec rev = uplink_preamble();
  std::reverse(rev.begin(), rev.end());
  EXPECT_EQ(uplink_postamble(), rev);
}

TEST(UplinkFrame, ParseRoundtrip) {
  const BitVec data = random_bits(24, 5);
  const auto frame = build_uplink_frame(data);
  const BitVec payload(frame.begin() +
                           static_cast<long>(uplink_preamble().size()),
                       frame.end());
  const auto parsed = parse_uplink_payload(payload, data.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, data);
}

TEST(UplinkFrame, ParseRejectsCorruptedData) {
  const BitVec data = random_bits(24, 6);
  const auto frame = build_uplink_frame(data);
  BitVec payload(frame.begin() +
                     static_cast<long>(uplink_preamble().size()),
                 frame.end());
  payload[3] ^= 1;
  EXPECT_FALSE(parse_uplink_payload(payload, data.size()).has_value());
}

TEST(UplinkFrame, ParseRejectsCorruptedCrc) {
  const BitVec data = random_bits(24, 7);
  const auto frame = build_uplink_frame(data);
  BitVec payload(frame.begin() +
                     static_cast<long>(uplink_preamble().size()),
                 frame.end());
  payload[data.size() + 2] ^= 1;  // inside the CRC field
  EXPECT_FALSE(parse_uplink_payload(payload, data.size()).has_value());
}

TEST(UplinkFrame, ParseRejectsCorruptedPostamble) {
  const BitVec data = random_bits(24, 8);
  const auto frame = build_uplink_frame(data);
  BitVec payload(frame.begin() +
                     static_cast<long>(uplink_preamble().size()),
                 frame.end());
  payload.back() ^= 1;
  EXPECT_FALSE(parse_uplink_payload(payload, data.size()).has_value());
}

TEST(UplinkFrame, ParseRejectsWrongLength) {
  EXPECT_FALSE(parse_uplink_payload(BitVec(10, 0), 24).has_value());
}

TEST(DownlinkFrame, BuildLayout) {
  const BitVec data = random_bits(kDownlinkDataBits, 9);
  const auto frame = build_downlink_frame(data);
  EXPECT_EQ(frame.size(),
            downlink_preamble().size() + kDownlinkPayloadBits);
}

TEST(DownlinkFrame, ParseRoundtrip) {
  const BitVec data = random_bits(kDownlinkDataBits, 10);
  const auto frame = build_downlink_frame(data);
  const BitVec payload(
      frame.begin() + static_cast<long>(downlink_preamble().size()),
      frame.end());
  const auto parsed = parse_downlink_payload(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, data);
}

TEST(DownlinkFrame, ParseRejectsBitError) {
  const BitVec data = random_bits(kDownlinkDataBits, 11);
  const auto frame = build_downlink_frame(data);
  for (std::size_t flip : {0u, 20u, 55u, 60u, 63u}) {
    BitVec payload(
        frame.begin() + static_cast<long>(downlink_preamble().size()),
        frame.end());
    payload[flip] ^= 1;
    EXPECT_FALSE(parse_downlink_payload(payload).has_value()) << flip;
  }
}

TEST(DownlinkFrame, ShortDataZeroPadded) {
  const BitVec data = bits_from_string("1111");
  const auto frame = build_downlink_frame(data);
  EXPECT_EQ(frame.size(),
            downlink_preamble().size() + kDownlinkPayloadBits);
  const BitVec payload(
      frame.begin() + static_cast<long>(downlink_preamble().size()),
      frame.end());
  const auto parsed = parse_downlink_payload(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(BitVec(parsed->begin(), parsed->begin() + 4), data);
  for (std::size_t i = 4; i < kDownlinkDataBits; ++i) {
    EXPECT_EQ((*parsed)[i], 0);
  }
}

TEST(DownlinkFrame, PreambleMatchesMcuDefault) {
  // The frame layer and the tag firmware must agree on the preamble or no
  // downlink frame is ever detected (this was a real bug).
  EXPECT_EQ(downlink_preamble(), bits_from_string("1100100111111111"));
}

TEST(Query, SerialisationRoundtrip) {
  Query q;
  q.tag_address = 0xBEEF;
  q.command = kCmdReadSensor;
  q.bitrate_code = 2;
  q.argument = 0x123456;
  const auto bits = q.to_bits();
  EXPECT_EQ(bits.size(), kDownlinkDataBits);
  const auto parsed = Query::from_bits(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tag_address, 0xBEEF);
  EXPECT_EQ(parsed->command, kCmdReadSensor);
  EXPECT_EQ(parsed->bitrate_code, 2);
  EXPECT_EQ(parsed->argument, 0x123456u);
}

TEST(Query, ArgumentTruncatedTo24Bits) {
  Query q;
  q.argument = 0xFFFFFFFF;
  const auto parsed = Query::from_bits(q.to_bits());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->argument, 0xFFFFFFu);
}

TEST(Query, FromBitsRejectsWrongSize) {
  EXPECT_FALSE(Query::from_bits(BitVec(10, 0)).has_value());
}

class QueryRoundtrip : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(QueryRoundtrip, AddressPreserved) {
  Query q;
  q.tag_address = GetParam();
  const auto parsed = Query::from_bits(q.to_bits());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tag_address, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Addresses, QueryRoundtrip,
                         ::testing::Values(0x0000, 0x0001, 0x8000, 0xFFFF,
                                           0x1234, 0xAAAA));

TEST(UplinkFrame, EndToEndThroughFrameLayer) {
  // Frame-level property: any data roundtrips; any single-bit corruption
  // anywhere in the payload region is caught.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const BitVec data = random_bits(32, seed);
    const auto frame = build_uplink_frame(data);
    BitVec payload(frame.begin() +
                       static_cast<long>(uplink_preamble().size()),
                   frame.end());
    ASSERT_EQ(*parse_uplink_payload(payload, 32), data);
    const std::size_t flip = (seed * 7) % payload.size();
    payload[flip] ^= 1;
    EXPECT_FALSE(parse_uplink_payload(payload, 32).has_value());
  }
}

}  // namespace
}  // namespace wb::core
