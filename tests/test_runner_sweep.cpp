#include "runner/sweep.h"

#include <cstddef>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "obs/report.h"
#include "runner/seed_derive.h"
#include "runner/thread_pool.h"
#include "sim/rng.h"

namespace wb::runner {
namespace {

// ------------------------------------------------------------ seed_derive

TEST(SeedDerive, Mix64MatchesSplitMix64Reference) {
  // mix64(x) is one SplitMix64 step from state x; the reference sequence
  // for state 0 starts 0xE220A8397B1DCDAF (Steele et al., appendix).
  EXPECT_EQ(mix64(0), 0xE220A8397B1DCDAFull);
  // And it is a compile-time function (used in constexpr context here).
  static_assert(mix64(0) != mix64(1), "mix64 must separate adjacent inputs");
}

TEST(SeedDerive, DistinctAcrossTaskIndices) {
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 10'000; ++i) {
    seen.insert(derive_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(SeedDerive, DistinctAcrossBaseSeeds) {
  // The same task index under different base seeds must not collide —
  // otherwise two sweeps with different --seed would share randomness.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 1'000; ++base) {
    seen.insert(derive_seed(base, 7));
  }
  EXPECT_EQ(seen.size(), 1'000u);
}

TEST(SeedDerive, PureFunctionOfInputs) {
  EXPECT_EQ(derive_seed(1234, 56), derive_seed(1234, 56));
  EXPECT_NE(derive_seed(1234, 56), derive_seed(1234, 57));
  EXPECT_NE(derive_seed(1234, 56), derive_seed(1235, 56));
}

// ------------------------------------------------------------ SweepRunner

TEST(SweepRunner, ResolvesThreadCounts) {
  EXPECT_EQ(SweepRunner({1}).threads(), 1u);
  EXPECT_EQ(SweepRunner({5}).threads(), 5u);
  EXPECT_EQ(SweepRunner({0}).threads(), default_threads());
  EXPECT_EQ(SweepRunner().threads(), default_threads());
}

TEST(SweepRunner, TaskContextCarriesDerivedSeed) {
  SweepConfig cfg;
  cfg.threads = 1;
  cfg.base_seed = 99;
  auto res = SweepRunner(cfg).run(
      8, [](const TaskContext& ctx) { return ctx.seed; });
  ASSERT_EQ(res.results.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(res.results[i], derive_seed(99, i));
  }
  EXPECT_EQ(res.metrics, nullptr);  // collect_metrics off by default
}

TEST(SweepRunner, EmptySweepIsFine) {
  auto res = SweepRunner({4}).run(
      0, [](const TaskContext&) { return 1; });
  EXPECT_TRUE(res.results.empty());
}

// A deterministic task: draws from an RNG seeded only by the task seed and
// records metrics. Any cross-task state sharing or misordered merge shows
// up as a value difference across thread counts.
double noisy_task(const TaskContext& ctx) {
  sim::RngStream rng(ctx.seed);
  double acc = 0.0;
  for (int i = 0; i < 1'000; ++i) acc += rng.uniform();
  if (auto* m = obs::metrics()) {
    m->counter("test.sweep.tasks_total").add();
    m->counter("test.sweep.draws_total").add(1'000);
    m->gauge("test.sweep.last_task_index")
        .set(static_cast<double>(ctx.task_index));
    m->histogram("test.sweep.acc_sum").record(acc);
  }
  return acc;
}

TEST(SweepRunner, BitIdenticalResultsAcrossThreadCounts) {
  constexpr std::size_t kTasks = 37;  // not a multiple of any worker count
  std::vector<std::vector<double>> per_thread_count;
  for (unsigned threads : {1u, 2u, 8u}) {
    SweepConfig cfg;
    cfg.threads = threads;
    cfg.base_seed = 7;
    per_thread_count.push_back(
        SweepRunner(cfg).run(kTasks, noisy_task).results);
  }
  // Bit-identical, not approximately equal.
  EXPECT_EQ(per_thread_count[0], per_thread_count[1]);
  EXPECT_EQ(per_thread_count[0], per_thread_count[2]);
}

TEST(SweepRunner, MergedMetricsIdenticalAcrossThreadCounts) {
  constexpr std::size_t kTasks = 23;
  std::vector<std::string> reports;
  for (unsigned threads : {1u, 2u, 8u}) {
    SweepConfig cfg;
    cfg.threads = threads;
    cfg.base_seed = 11;
    cfg.collect_metrics = true;
    auto res = SweepRunner(cfg).run(kTasks, noisy_task);
    ASSERT_NE(res.metrics, nullptr);

    const auto snap = res.metrics->snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[1].first, "test.sweep.tasks_total");
    EXPECT_EQ(snap.counters[1].second, kTasks);
    EXPECT_EQ(snap.counters[0].second, kTasks * 1'000u);
    // Gauges are last-merge-wins; "last" is the highest task index
    // regardless of which worker finished last in wall-clock time.
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].second, static_cast<double>(kTasks - 1));

    // The full RunReport JSON (rows + attached metrics) must be
    // byte-identical across thread counts.
    obs::RunReport report;
    report.set_meta("base_seed", 11.0);
    report.set_meta("quick", true);
    for (std::size_t i = 0; i < res.results.size(); ++i) {
      report.add_row("task")
          .set("index", static_cast<double>(i))
          .set("acc", res.results[i]);
    }
    report.attach_metrics(*res.metrics);
    reports.push_back(report.to_json());
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

TEST(SweepRunner, RealUplinkGridIdenticalAcrossThreadCounts) {
  // End-to-end: a tiny Fig-10-shaped grid through the actual experiment
  // driver, compared bit-for-bit across thread counts.
  core::UplinkGridSpec spec;
  spec.base.runs = 1;
  spec.base.payload_bits = 24;
  spec.base.seed = 42;
  spec.distances_m = {0.05, 0.30};
  spec.packets_per_bit = {30};
  const auto grid = core::expand_uplink_grid(spec);
  ASSERT_EQ(grid.size(), 2u);

  std::vector<std::vector<double>> bers;
  for (unsigned threads : {1u, 2u, 8u}) {
    SweepConfig cfg;
    cfg.threads = threads;
    cfg.base_seed = spec.base.seed;
    auto res = SweepRunner(cfg).run(
        grid.size(), [&grid](const TaskContext& ctx) {
          return core::measure_uplink_ber(grid[ctx.task_index].params)
              .ber_raw;
        });
    bers.push_back(res.results);
  }
  EXPECT_EQ(bers[0], bers[1]);
  EXPECT_EQ(bers[0], bers[2]);
}

TEST(SweepRunner, GridExpansionDerivesSeedsFromBase) {
  core::UplinkGridSpec spec;
  spec.base.seed = 42;
  spec.distances_m = {0.05, 0.30};
  spec.packets_per_bit = {30, 6};
  const auto grid = core::expand_uplink_grid(spec);
  ASSERT_EQ(grid.size(), 4u);
  for (const auto& pt : grid) {
    EXPECT_EQ(pt.params.seed, derive_seed(42, pt.index));
  }
  // Distance is the outer loop within a source, packets the inner one.
  EXPECT_EQ(grid[0].distance_m, Meters{0.05});
  EXPECT_EQ(grid[1].distance_m, Meters{0.05});
  EXPECT_EQ(grid[1].packets_per_bit, 6.0);
  EXPECT_EQ(grid[2].distance_m, Meters{0.30});
}

TEST(SweepRunner, LowestIndexExceptionWinsDeterministically) {
  for (unsigned threads : {1u, 4u}) {
    SweepConfig cfg;
    cfg.threads = threads;
    SweepRunner sweep(cfg);
    try {
      sweep.run(16, [](const TaskContext& ctx) -> int {
        if (ctx.task_index == 3 || ctx.task_index == 7) {
          throw std::runtime_error("task " +
                                   std::to_string(ctx.task_index));
        }
        return 0;
      });
      FAIL() << "sweep must rethrow a task exception";
    } catch (const std::runtime_error& e) {
      // Even when task 7 fails first in wall-clock time, the sweep
      // reports task 3 — failures are as deterministic as successes.
      EXPECT_STREQ(e.what(), "task 3");
    }
  }
}

}  // namespace
}  // namespace wb::runner
