#include "serve/session.h"

#include <gtest/gtest.h>

#include "core/uplink_sim.h"
#include "serve/error.h"
#include "tag/modulator.h"
#include "util/check.h"
#include "util/codes.h"
#include "wifi/traffic.h"

namespace wb::serve {
namespace {

/// Same synthetic capture recipe as tests/test_reader_streaming.cpp: tag
/// frames at the given starts over helper CBR traffic.
wifi::CaptureTrace make_trace(const std::vector<TimeUs>& frame_starts,
                              const std::vector<BitVec>& payloads,
                              TimeUs bit_us, TimeUs until,
                              std::uint64_t seed) {
  core::UplinkSimConfig cfg;
  cfg.channel.tag_pos = {0.08, 0.0};
  cfg.channel.helper_pos = {3.08, 0.0};
  cfg.seed = seed;
  sim::RngStream rng(seed);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(3'000, until,
                                          wifi::TrafficParams{},
                                          traffic_rng);
  std::vector<tag::Modulator> mods;
  for (std::size_t i = 0; i < frame_starts.size(); ++i) {
    BitVec frame = barker13();
    frame.insert(frame.end(), payloads[i].begin(), payloads[i].end());
    mods.emplace_back(frame, bit_us, frame_starts[i]);
  }
  core::UplinkSim sim(cfg);
  wifi::CaptureTrace trace;
  for (const auto& pkt : tl) {
    bool state = false;
    for (const auto& m : mods) state = state || m.state_at(pkt.start_us);
    const auto h = sim.channel().response(state, pkt.start_us);
    trace.push_back(
        sim.nic().measure(h, pkt.start_us, pkt.source, pkt.kind));
  }
  return trace;
}

reader::StreamingDecoderConfig stream_config() {
  reader::StreamingDecoderConfig cfg;
  cfg.decoder.payload_bits = 24;
  cfg.decoder.bit_duration_us = TimeUs{5'000};
  return cfg;
}

SessionLimits big_limits() {
  SessionLimits limits;
  limits.pending_capacity = 8'192;
  limits.frame_capacity = 16;
  return limits;
}

TEST(Session, LifecycleAttachDispatchDetach) {
  Session s(stream_config(), big_limits());
  EXPECT_EQ(s.state(), SessionState::kDetached);
  s.attach(42);
  EXPECT_EQ(s.state(), SessionState::kAttached);
  EXPECT_EQ(s.id(), 42u);

  const BitVec payload = random_bits(24, 1);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{1'500'000}, 2);
  for (const auto& rec : trace) s.enqueue(rec);
  EXPECT_EQ(s.pending(), trace.size());
  s.dispatch_pending();
  EXPECT_EQ(s.state(), SessionState::kActive);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.records_dispatched(), trace.size());
  ASSERT_EQ(s.frames_total(), 1u);
  EXPECT_EQ(s.frame(0).payload, payload);
  EXPECT_EQ(s.frame(0).ordinal, 0u);

  s.detach();
  EXPECT_EQ(s.state(), SessionState::kDetached);
}

TEST(Session, FlushDrainsStrandedFrame) {
  // Traffic stops right after the frame ends: dispatch alone cannot emit
  // it (the decoder waits for a later record), flush must.
  Session s(stream_config(), big_limits());
  s.attach(1);
  const BitVec payload = random_bits(24, 10);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{890'000}, 11);
  for (const auto& rec : trace) s.enqueue(rec);
  EXPECT_EQ(s.dispatch_pending(), 0u);
  EXPECT_EQ(s.flush(), 1u);
  ASSERT_EQ(s.frames_total(), 1u);
  EXPECT_EQ(s.frame(0).payload, payload);
}

TEST(Session, ReattachResetsDecodeState) {
  Session s(stream_config(), big_limits());
  s.attach(1);
  const BitVec payload = random_bits(24, 1);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{1'500'000}, 2);
  for (const auto& rec : trace) s.enqueue(rec);
  s.dispatch_pending();
  ASSERT_EQ(s.frames_total(), 1u);
  const std::string first = s.frames_jsonl();
  s.detach();

  // Same slot, same records: the second life must behave identically
  // apart from the session id (decoder and counters fully reset).
  s.attach(1);
  EXPECT_EQ(s.frames_total(), 0u);
  EXPECT_EQ(s.records_dispatched(), 0u);
  for (const auto& rec : trace) s.enqueue(rec);
  s.dispatch_pending();
  EXPECT_EQ(s.frames_jsonl(), first);
}

TEST(Session, FrameRingOverwritesOldest) {
  SessionLimits limits = big_limits();
  limits.frame_capacity = 1;
  Session s(stream_config(), limits);
  s.attach(5);
  const BitVec p1 = random_bits(24, 3);
  const BitVec p2 = random_bits(24, 4);
  const auto trace =
      make_trace({TimeUs{700'000}, TimeUs{1'400'000}}, {p1, p2},
                 TimeUs{5'000}, TimeUs{2'200'000}, 5);
  for (const auto& rec : trace) s.enqueue(rec);
  s.dispatch_pending();
  EXPECT_EQ(s.frames_total(), 2u);
  ASSERT_EQ(s.frames_kept(), 1u);
  EXPECT_EQ(s.frame(0).ordinal, 1u);  // only the newest survives
  EXPECT_EQ(s.frame(0).payload, p2);
}

TEST(Session, EnqueueBeyondPendingCapacityViolates) {
  SessionLimits limits = big_limits();
  limits.pending_capacity = 2;
  Session s(stream_config(), limits);
  s.attach(1);
  wifi::CaptureRecord rec{};
  s.enqueue(rec);
  s.enqueue(rec);
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  EXPECT_THROW(s.enqueue(rec), ContractViolation);
}

TEST(Session, DetachWithPendingRecordsViolates) {
  Session s(stream_config(), big_limits());
  s.attach(1);
  wifi::CaptureRecord rec{};
  s.enqueue(rec);
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  EXPECT_THROW(s.detach(), ContractViolation);
}

TEST(Session, StateTokensAreStable) {
  EXPECT_STREQ(to_string(SessionState::kDetached), "detached");
  EXPECT_STREQ(to_string(SessionState::kAttached), "attached");
  EXPECT_STREQ(to_string(SessionState::kActive), "active");
  EXPECT_STREQ(to_string(SessionState::kDraining), "draining");
}

TEST(SessionManager, AttachFindRelease) {
  SessionManager mgr(2, stream_config(), big_limits());
  EXPECT_TRUE(mgr.attach(10).ok());
  EXPECT_TRUE(mgr.attach(20).ok());
  EXPECT_EQ(mgr.active_count(), 2u);
  ASSERT_NE(mgr.find(10), nullptr);
  EXPECT_EQ(mgr.find(10)->id(), 10u);
  EXPECT_EQ(mgr.find(30), nullptr);

  EXPECT_TRUE(mgr.release(10).ok());
  EXPECT_EQ(mgr.find(10), nullptr);
  EXPECT_EQ(mgr.active_count(), 1u);
}

TEST(SessionManager, DuplicateAttachFails) {
  SessionManager mgr(2, stream_config(), big_limits());
  EXPECT_TRUE(mgr.attach(10).ok());
  const Error err = mgr.attach(10);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kAlreadyExists);
}

TEST(SessionManager, PoolExhaustionFails) {
  SessionManager mgr(1, stream_config(), big_limits());
  EXPECT_TRUE(mgr.attach(10).ok());
  const Error err = mgr.attach(11);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kCapacity);
  // Releasing frees the slot for a new id.
  EXPECT_TRUE(mgr.release(10).ok());
  EXPECT_TRUE(mgr.attach(11).ok());
}

TEST(SessionManager, ReleaseUnknownFails) {
  SessionManager mgr(1, stream_config(), big_limits());
  const Error err = mgr.release(99);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kNotFound);
}

TEST(SessionManager, SnapshotIsSortedById) {
  SessionManager mgr(4, stream_config(), big_limits());
  // Attach out of order; the snapshot must come back ascending.
  EXPECT_TRUE(mgr.attach(30).ok());
  EXPECT_TRUE(mgr.attach(10).ok());
  EXPECT_TRUE(mgr.attach(40).ok());
  EXPECT_TRUE(mgr.attach(20).ok());
  std::vector<Session*> out(4, nullptr);
  ASSERT_EQ(mgr.snapshot_attached(out.data(), out.size()), 4u);
  EXPECT_EQ(out[0]->id(), 10u);
  EXPECT_EQ(out[1]->id(), 20u);
  EXPECT_EQ(out[2]->id(), 30u);
  EXPECT_EQ(out[3]->id(), 40u);
}

}  // namespace
}  // namespace wb::serve
