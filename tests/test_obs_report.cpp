#include "obs/report.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace wb::obs {
namespace {

TEST(RunReport, JsonContainsMetaRowsAndMetrics) {
  MetricsRegistry reg;
  reg.counter("a.b.total").add(7);
  reg.gauge("a.b.ratio").set(0.25);
  reg.histogram("a.b.wall_us").record(4.0);

  RunReport report;
  report.set_meta("figure", "fig12");
  report.set_meta("seed", 42.0);
  report.add_row("point").set("pps", 500.0).set("label", "low");
  report.attach_metrics(reg);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"figure\": \"fig12\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"row\": \"point\""), std::string::npos);
  EXPECT_NE(json.find("\"pps\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"low\""), std::string::npos);
  EXPECT_NE(json.find("\"a.b.total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"a.b.ratio\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(RunReport, EmptyReportIsStillWellFormed) {
  RunReport report;
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"meta\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"rows\": []"), std::string::npos);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
}

TEST(RunReport, JsonEscapesStringsInMetaAndRows) {
  RunReport report;
  report.set_meta("note", "line\nbreak \"quoted\"");
  report.add_row("r").set("s", "tab\there");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("line\\nbreak \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(RunReport, CsvUnionHeaderAndQuoting) {
  RunReport report;
  report.add_row("a").set("x", 1.0).set("name", "plain");
  report.add_row("b").set("y", 2.0).set("name", "has \"quote\"");
  const std::string csv = report.rows_csv();
  // Header: first-seen order of the union of keys.
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "row,x,name,y");
  EXPECT_NE(csv.find("a,1,\"plain\",\n"), std::string::npos);
  EXPECT_NE(csv.find("b,,\"has \"\"quote\"\"\",2\n"), std::string::npos);
}

TEST(RunReport, CsvQuotesRowNamesAndKeysRfc4180) {
  // A comma, quote, or newline in a row NAME or header KEY must be
  // quoted (with inner quotes doubled), or the emitted CSV changes its
  // column structure. Plain names stay bare (asserted by the test above).
  RunReport report;
  report.add_row("point,5cm").set("dist,cm", 5.0);
  report.add_row("say \"hi\"").set("x", 1.0);
  const std::string csv = report.rows_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "row,\"dist,cm\",x");
  EXPECT_NE(csv.find("\"point,5cm\",5,\n"), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\",,1\n"), std::string::npos);
}

TEST(RunReport, CsvRoundTripsFieldsThroughNaiveRfc4180Parser) {
  // Emit a report with every awkward character class, re-parse it with a
  // by-the-book RFC 4180 reader, and require the original cell texts
  // back. This is the regression surface for the quoting rules: if any
  // emitter path stops quoting, the parsed shape changes.
  RunReport report;
  report.add_row("r,1").set("k\"q", "v1");
  report.add_row("plain").set("k2", "with,comma").set(
      "k3", "with \"quotes\" inside");
  const std::string csv = report.rows_csv();

  // Minimal RFC 4180 parser: quoted fields absorb commas/newlines,
  // doubled quotes collapse.
  std::vector<std::vector<std::string>> grid(1);
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < csv.size(); ++i) {
    const char c = csv[i];
    if (quoted) {
      if (c == '"' && i + 1 < csv.size() && csv[i + 1] == '"') {
        cell += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      grid.back().push_back(cell);
      cell.clear();
    } else if (c == '\n') {
      grid.back().push_back(cell);
      cell.clear();
      grid.emplace_back();
    } else {
      cell += c;
    }
  }
  ASSERT_EQ(grid.size(), 4u);  // header + 2 rows + trailing empty
  const std::vector<std::string> header = {"row", "k\"q", "k2", "k3"};
  EXPECT_EQ(grid[0], header);
  const std::vector<std::string> row1 = {"r,1", "v1", "", ""};
  EXPECT_EQ(grid[1], row1);
  const std::vector<std::string> row2 = {"plain", "", "with,comma",
                                         "with \"quotes\" inside"};
  EXPECT_EQ(grid[2], row2);
}

TEST(RunReport, WriteJsonAndCsvFiles) {
  RunReport report;
  report.add_row("r").set("v", 3.0);
  const std::string dir = ::testing::TempDir();
  const std::string jpath = dir + "wb_report_test.json";
  const std::string cpath = dir + "wb_report_test.csv";
  EXPECT_TRUE(report.write_json(jpath));
  EXPECT_TRUE(report.write_csv(cpath));
  std::remove(jpath.c_str());
  std::remove(cpath.c_str());
  // Unwritable path reports failure instead of aborting.
  EXPECT_FALSE(report.write_json("/nonexistent-dir/x/y.json"));
}

TEST(RunReport, AttachMetricsReplacesEarlierSnapshot) {
  MetricsRegistry first;
  first.counter("old.metric.total").add(1);
  MetricsRegistry second;
  second.counter("new.metric.total").add(2);

  RunReport report;
  report.attach_metrics(first);
  report.attach_metrics(second);
  const std::string json = report.to_json();
  EXPECT_EQ(json.find("old.metric.total"), std::string::npos);
  EXPECT_NE(json.find("new.metric.total"), std::string::npos);
}

}  // namespace
}  // namespace wb::obs
