#include "obs/report.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace wb::obs {
namespace {

TEST(RunReport, JsonContainsMetaRowsAndMetrics) {
  MetricsRegistry reg;
  reg.counter("a.b.total").add(7);
  reg.gauge("a.b.ratio").set(0.25);
  reg.histogram("a.b.wall_us").record(4.0);

  RunReport report;
  report.set_meta("figure", "fig12");
  report.set_meta("seed", 42.0);
  report.add_row("point").set("pps", 500.0).set("label", "low");
  report.attach_metrics(reg);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"figure\": \"fig12\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"row\": \"point\""), std::string::npos);
  EXPECT_NE(json.find("\"pps\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"low\""), std::string::npos);
  EXPECT_NE(json.find("\"a.b.total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"a.b.ratio\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(RunReport, EmptyReportIsStillWellFormed) {
  RunReport report;
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"meta\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"rows\": []"), std::string::npos);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
}

TEST(RunReport, JsonEscapesStringsInMetaAndRows) {
  RunReport report;
  report.set_meta("note", "line\nbreak \"quoted\"");
  report.add_row("r").set("s", "tab\there");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("line\\nbreak \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(RunReport, CsvUnionHeaderAndQuoting) {
  RunReport report;
  report.add_row("a").set("x", 1.0).set("name", "plain");
  report.add_row("b").set("y", 2.0).set("name", "has \"quote\"");
  const std::string csv = report.rows_csv();
  // Header: first-seen order of the union of keys.
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "row,x,name,y");
  EXPECT_NE(csv.find("a,1,\"plain\",\n"), std::string::npos);
  EXPECT_NE(csv.find("b,,\"has \"\"quote\"\"\",2\n"), std::string::npos);
}

TEST(RunReport, WriteJsonAndCsvFiles) {
  RunReport report;
  report.add_row("r").set("v", 3.0);
  const std::string dir = ::testing::TempDir();
  const std::string jpath = dir + "wb_report_test.json";
  const std::string cpath = dir + "wb_report_test.csv";
  EXPECT_TRUE(report.write_json(jpath));
  EXPECT_TRUE(report.write_csv(cpath));
  std::remove(jpath.c_str());
  std::remove(cpath.c_str());
  // Unwritable path reports failure instead of aborting.
  EXPECT_FALSE(report.write_json("/nonexistent-dir/x/y.json"));
}

TEST(RunReport, AttachMetricsReplacesEarlierSnapshot) {
  MetricsRegistry first;
  first.counter("old.metric.total").add(1);
  MetricsRegistry second;
  second.counter("new.metric.total").add(2);

  RunReport report;
  report.attach_metrics(first);
  report.attach_metrics(second);
  const std::string json = report.to_json();
  EXPECT_EQ(json.find("old.metric.total"), std::string::npos);
  EXPECT_NE(json.find("new.metric.total"), std::string::npos);
}

}  // namespace
}  // namespace wb::obs
