// Calibration pins: the headline shapes EXPERIMENTS.md promises, asserted
// with generous tolerances. If a model or decoder change moves one of
// these, the figure benches (and the documented paper comparisons) need
// re-examination — this suite makes that visible in CI instead of in a
// stale markdown file.
#include <gtest/gtest.h>

#include "core/downlink_sim.h"
#include "core/experiments.h"
#include "core/frame.h"
#include "phy/uplink_channel.h"
#include "reader/downlink_encoder.h"
#include "util/stats.h"

namespace wb {
namespace {

// ---- uplink (Fig 10) ----

core::UplinkExperimentParams uplink_at(double d, std::uint64_t seed) {
  core::UplinkExperimentParams p;
  p.tag_reader_distance_m = Meters{d};
  p.packets_per_bit = 30.0;
  p.payload_bits = 40;
  p.runs = 5;
  p.seed = seed;
  return p;
}

TEST(CalibrationPins, CsiCleanAt30cm) {
  double total = 0.0;
  for (std::uint64_t s = 1; s <= 2; ++s) {
    total += core::measure_uplink_ber(uplink_at(0.30, s)).ber_raw;
  }
  EXPECT_LT(total / 2.0, 5e-3);
}

TEST(CalibrationPins, CsiDegradedBeyondOneMeter) {
  double total = 0.0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    total += core::measure_uplink_ber(uplink_at(1.3, s)).ber_raw;
  }
  EXPECT_GT(total / 3.0, 2e-2);
}

TEST(CalibrationPins, RssiWorksOnlyVeryClose) {
  auto close_p = uplink_at(0.05, 4);
  close_p.source = reader::MeasurementSource::kRssi;
  auto far_p = uplink_at(0.40, 4);
  far_p.source = reader::MeasurementSource::kRssi;
  EXPECT_LT(core::measure_uplink_ber(close_p).ber_raw, 2e-2);
  EXPECT_GT(core::measure_uplink_ber(far_p).ber_raw, 5e-2);
}

TEST(CalibrationPins, ModulationDepthAtCloseRange) {
  // Fig 3's premise: visible two-level modulation at 5 cm. The mean
  // relative depth must be large against the 8% NIC noise but below
  // unity (a reflection, not a second transmitter).
  RunningStats depth;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    phy::UplinkChannelParams p;
    p.tag_pos = {0.05, 0.0};
    p.helper_pos = {3.05, 0.0};
    sim::RngStream rng(seed);
    depth.push(phy::UplinkChannel(p, rng).mean_relative_depth());
  }
  EXPECT_GT(depth.mean(), 0.12);
  EXPECT_LT(depth.mean(), 0.8);
}

// ---- coded uplink (Fig 20) ----

TEST(CalibrationPins, CodedExtendsRangePastTwoMeters) {
  core::CodedExperimentParams p;
  p.tag_reader_distance_m = Meters{2.1};
  p.packets_per_chip = 2.0;
  p.code_length = 32;
  p.payload_bits = 16;
  p.runs = 4;
  p.seed = 7;
  EXPECT_LT(core::measure_coded_uplink_ber(p).ber_raw, 3e-2);
}

// ---- downlink (Fig 17) ----

double downlink_slot_ber(double distance_m, TimeUs slot_us,
                         std::uint64_t seed) {
  reader::DownlinkEncoderConfig enc_cfg;
  enc_cfg.slot_us = slot_us;
  reader::DownlinkEncoder encoder(enc_cfg);
  BerCounter ber;
  for (std::uint64_t round = 0; round < 8; ++round) {
    BitVec message = core::downlink_preamble();
    const BitVec data = random_bits(400, seed + round);
    message.insert(message.end(), data.begin(), data.end());
    const auto tx = encoder.encode(message, TimeUs{500});
    core::DownlinkSimConfig cfg;
    cfg.reader_tag_distance_m = Meters{distance_m};
    cfg.mcu.bit_duration_us = slot_us;
    cfg.seed = seed * 131 + round;
    core::DownlinkSim sim(cfg);
    const auto rep = sim.run(tx, {}, tx.end_us + TimeUs{1'000});
    BitVec truth;
    for (const auto& s : tx.slots) truth.push_back(s.bit);
    ber.add(truth, rep.slot_levels);
  }
  return ber.ber();
}

TEST(CalibrationPins, Downlink20kbpsCliffNearTwoMeters) {
  EXPECT_LT(downlink_slot_ber(1.5, TimeUs{50}, 1), 1e-2);
  EXPECT_GT(downlink_slot_ber(3.0, TimeUs{50}, 1), 3e-2);
}

TEST(CalibrationPins, Downlink10kbpsOutranges20kbps) {
  const double at_2_6m_fast = downlink_slot_ber(2.6, TimeUs{50}, 2);
  const double at_2_6m_slow = downlink_slot_ber(2.6, TimeUs{100}, 2);
  EXPECT_LT(at_2_6m_slow, at_2_6m_fast);
  EXPECT_LT(at_2_6m_slow, 1e-2);
}

// ---- rate scaling (Fig 12) ----

TEST(CalibrationPins, KilobitUplinkNeedsKiloHelperRate) {
  core::UplinkExperimentParams p;
  p.tag_reader_distance_m = Meters{0.05};
  p.payload_bits = 48;
  p.runs = 3;
  p.seed = 5;
  p.helper_pps = 3'000.0;
  EXPECT_GE(core::achievable_bit_rate(p), 500.0);
  p.helper_pps = 300.0;
  EXPECT_LE(core::achievable_bit_rate(p), 200.0);
}

}  // namespace
}  // namespace wb
