#include "core/arq.h"

#include "core/frame.h"

#include <gtest/gtest.h>

namespace wb::core {
namespace {

TEST(Arq, CleanLinkDeliversInOneRound) {
  ArqConfig cfg;
  cfg.tag_reader_distance_m = Meters{0.10};
  cfg.seed = 1;
  const BitVec data = random_bits(40, 5);
  const auto rep = run_selective_repeat(data, cfg);
  ASSERT_TRUE(rep.delivered);
  EXPECT_EQ(rep.data, data);
  EXPECT_EQ(rep.rounds.size(), 1u);
  EXPECT_EQ(rep.bits_transmitted, uplink_payload_bits(40));
}

TEST(Arq, MarginalLinkRecoversWithRepeats) {
  // Find a placement where the first transmission fails but repeats fix
  // it; assert the protocol converges and transmits fewer bits than
  // full-frame retransmission would have.
  std::size_t recovered_with_savings = 0;
  std::size_t attempted = 0;
  for (std::uint64_t seed = 1; seed <= 14; ++seed) {
    ArqConfig cfg;
    cfg.tag_reader_distance_m = Meters{0.72};  // marginal for CSI decoding
    cfg.seed = seed;
    const BitVec data = random_bits(48, seed);
    const auto rep = run_selective_repeat(data, cfg);
    if (rep.rounds.size() <= 1) continue;  // clean on this placement
    ++attempted;
    if (rep.delivered) {
      EXPECT_EQ(rep.data, data);
      const std::size_t naive =
          rep.rounds.size() * uplink_payload_bits(48);
      if (rep.bits_transmitted < naive) ++recovered_with_savings;
    }
  }
  // At 72 cm a fair share of placements struggle; at least one must both
  // recover and save bits vs naive retransmission.
  EXPECT_GT(attempted, 0u);
  EXPECT_GT(recovered_with_savings, 0u);
}

TEST(Arq, HopelessLinkGivesUpCleanly) {
  ArqConfig cfg;
  cfg.tag_reader_distance_m = Meters{4.0};  // far past uplink range
  cfg.max_repeats = 2;
  cfg.seed = 3;
  const BitVec data = random_bits(32, 9);
  const auto rep = run_selective_repeat(data, cfg);
  EXPECT_FALSE(rep.delivered);
  EXPECT_LE(rep.rounds.size(), 3u);  // 1 full + up to 2 repeats
}

TEST(Arq, ReportsAccounting) {
  ArqConfig cfg;
  cfg.tag_reader_distance_m = Meters{0.10};
  cfg.seed = 4;
  const BitVec data = random_bits(24, 2);
  const auto rep = run_selective_repeat(data, cfg);
  ASSERT_FALSE(rep.rounds.empty());
  EXPECT_EQ(rep.rounds[0].offset, 0u);
  EXPECT_EQ(rep.rounds[0].length, 24u);
  EXPECT_GE(rep.bits_transmitted, uplink_payload_bits(24));
}

}  // namespace
}  // namespace wb::core
