// Property-style sweeps across module boundaries: randomised inputs,
// structural invariants that must hold for every draw.
#include <gtest/gtest.h>

#include "core/frame.h"
#include "core/uplink_sim.h"
#include "reader/conditioning.h"
#include "reader/downlink_encoder.h"
#include "reader/uplink_decoder.h"
#include "tag/modulator.h"
#include "util/crc.h"
#include "wifi/traffic.h"

namespace wb {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededProperty, FrameLayerRoundtripsAnyPayload) {
  const std::uint64_t seed = GetParam();
  const std::size_t len = 8 + (seed * 13) % 64;
  const BitVec data = random_bits(len, seed);
  const auto frame = core::build_uplink_frame(data);
  const BitVec payload(
      frame.begin() + static_cast<long>(core::uplink_preamble().size()),
      frame.end());
  const auto parsed = core::parse_uplink_payload(payload, len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, data);
}

TEST_P(SeededProperty, FrameLayerRejectsAnySingleFlip) {
  const std::uint64_t seed = GetParam();
  const BitVec data = random_bits(32, seed);
  const auto frame = core::build_uplink_frame(data);
  BitVec payload(
      frame.begin() + static_cast<long>(core::uplink_preamble().size()),
      frame.end());
  sim::RngStream rng(seed);
  payload[rng.uniform_int(payload.size())] ^= 1;
  EXPECT_FALSE(core::parse_uplink_payload(payload, 32).has_value());
}

TEST_P(SeededProperty, ModulatorChipCountInvariant) {
  const std::uint64_t seed = GetParam();
  sim::RngStream rng(seed);
  const std::size_t nbits = 1 + rng.uniform_int(50);
  const std::size_t code_len = 2 + 2 * rng.uniform_int(40);
  const BitVec frame = random_bits(nbits, seed);
  const auto codes = make_orthogonal_pair(code_len);
  tag::Modulator plain(frame, TimeUs{100}, TimeUs{});
  tag::Modulator coded(frame, codes, TimeUs{100}, TimeUs{});
  EXPECT_EQ(plain.chip_sequence().size(), nbits);
  EXPECT_EQ(coded.chip_sequence().size(), nbits * code_len);
  EXPECT_EQ(coded.duration(),
            plain.duration() * static_cast<std::int64_t>(code_len));
}

TEST_P(SeededProperty, ModulatorStateMatchesChipTable) {
  const std::uint64_t seed = GetParam();
  const BitVec frame = random_bits(20, seed);
  tag::Modulator mod(frame, TimeUs{250}, TimeUs{5'000});
  for (std::size_t c = 0; c < frame.size(); ++c) {
    const TimeUs mid = TimeUs{5'000} +
                       TimeUs{250} * static_cast<std::int64_t>(c) +
                       TimeUs{125};
    EXPECT_EQ(mod.state_at(mid), frame[c] != 0);
  }
}

TEST_P(SeededProperty, ConditioningPreservesShape) {
  const std::uint64_t seed = GetParam();
  sim::RngStream rng(seed);
  wifi::CaptureTrace trace;
  const std::size_t n = 20 + rng.uniform_int(100);
  TimeUs t{0};
  for (std::size_t i = 0; i < n; ++i) {
    t += TimeUs{static_cast<std::int64_t>(200 + rng.uniform_int(2'000))};
    wifi::CaptureRecord r;
    r.timestamp_us = t;
    for (auto& ant : r.csi) {
      for (auto& v : ant) v = rng.uniform(1.0, 10.0);
    }
    r.rssi_dbm.fill(rng.uniform(-60.0, -30.0));
    trace.push_back(r);
  }
  const auto ct =
      reader::condition(trace, reader::MeasurementSource::kCsi,
                        TimeUs{50'000});
  ASSERT_EQ(ct.num_packets(), n);
  ASSERT_EQ(ct.num_streams(), wifi::kNumCsiStreams);
  // Timestamps preserved and sorted.
  for (std::size_t i = 1; i < ct.timestamps.size(); ++i) {
    EXPECT_GE(ct.timestamps[i], ct.timestamps[i - 1]);
  }
  // Every stream zero-mean-ish after conditioning.
  for (const auto& s : ct.streams) {
    double mean = 0.0;
    for (double v : s) mean += v;
    mean /= static_cast<double>(s.size());
    EXPECT_LT(std::abs(mean), 0.6);
  }
}

TEST_P(SeededProperty, DecoderOutputLengthAlwaysPayloadBits) {
  const std::uint64_t seed = GetParam();
  sim::RngStream rng(seed);
  reader::ConditionedTrace ct;
  const std::size_t n = 500;
  for (std::size_t i = 0; i < n; ++i) {
    ct.timestamps.push_back(static_cast<TimeUs>(i) * 400);
  }
  ct.streams.resize(5);
  for (auto& s : ct.streams) {
    for (std::size_t i = 0; i < n; ++i) s.push_back(rng.normal());
  }
  reader::UplinkDecoderConfig cfg;
  cfg.payload_bits = 7 + seed % 20;
  cfg.bit_duration_us = TimeUs{4'000};
  cfg.num_good_streams = 3;
  reader::UplinkDecoder dec(cfg);
  const auto res = dec.decode_conditioned(ct);
  if (res.found) {
    EXPECT_EQ(res.payload.size(), cfg.payload_bits);
    EXPECT_EQ(res.confidence.size(), cfg.payload_bits);
    EXPECT_EQ(res.streams.size(), res.weights.size());
    EXPECT_EQ(res.streams.size(), res.polarity.size());
    for (double p : res.polarity) {
      EXPECT_TRUE(p == 1.0 || p == -1.0);
    }
    for (double w : res.weights) EXPECT_GT(w, 0.0);
  }
}

TEST_P(SeededProperty, DownlinkScheduleInternallyConsistent) {
  const std::uint64_t seed = GetParam();
  sim::RngStream rng(seed);
  reader::DownlinkEncoderConfig cfg;
  const TimeUs slots[] = {TimeUs{50}, TimeUs{100}, TimeUs{200}};
  cfg.slot_us = slots[rng.uniform_int(3)];
  reader::DownlinkEncoder enc(cfg);
  const BitVec message = random_bits(1 + rng.uniform_int(900), seed);
  const auto tx = enc.encode(message, TimeUs{1'000});

  ASSERT_EQ(tx.slots.size(), message.size());
  // Slot bits reproduce the message; every '1' slot is covered by a data
  // packet; no data packet exists without a '1' slot.
  std::size_t ones = 0;
  for (std::size_t i = 0; i < message.size(); ++i) {
    EXPECT_EQ(tx.slots[i].bit, message[i]);
    if (message[i]) ++ones;
  }
  std::size_t data_packets = 0;
  for (const auto& pkt : tx.packets) {
    if (pkt.kind == wifi::FrameKind::kData) ++data_packets;
    if (pkt.kind == wifi::FrameKind::kCtsToSelf) {
      EXPECT_LE(pkt.nav_us, wifi::kMaxNavUs);
    }
  }
  EXPECT_EQ(data_packets, ones);
  // Slots are strictly increasing and packets sorted.
  for (std::size_t i = 1; i < tx.slots.size(); ++i) {
    EXPECT_GT(tx.slots[i].start_us, tx.slots[i - 1].start_us);
  }
}

TEST_P(SeededProperty, EndToEndUplinkFrameRecovery) {
  // Full-stack property at friendly SNR: whatever the payload, the reader
  // recovers it bit-exactly through channel + NIC + decoder.
  const std::uint64_t seed = GetParam();
  core::UplinkSimConfig sim_cfg;
  sim_cfg.channel.tag_pos = {0.08, 0.0};
  sim_cfg.channel.helper_pos = {3.08, 0.0};
  sim_cfg.seed = seed;

  const BitVec payload = random_bits(20, seed ^ 0xAA);
  BitVec frame = barker13();
  frame.insert(frame.end(), payload.begin(), payload.end());
  const TimeUs bit_us{10'000};
  const TimeUs start{600'000};
  const TimeUs until = start +
                       bit_us * static_cast<std::int64_t>(frame.size()) +
                       TimeUs{50'000};
  sim::RngStream rng(seed);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(3'000, until,
                                          wifi::TrafficParams{},
                                          traffic_rng);
  tag::Modulator mod(frame, bit_us, start);
  core::UplinkSim sim(sim_cfg);
  const auto trace = sim.run(tl, mod);

  reader::UplinkDecoderConfig cfg;
  cfg.payload_bits = payload.size();
  cfg.bit_duration_us = bit_us;
  cfg.search_from = start - 2 * bit_us;
  cfg.search_to = start + 2 * bit_us;
  reader::UplinkDecoder dec(cfg);
  const auto res = dec.decode(trace);
  ASSERT_TRUE(res.found) << "seed " << seed;
  EXPECT_LE(hamming_distance(res.payload, payload), 1u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace wb
