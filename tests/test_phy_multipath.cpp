#include "phy/multipath.h"

#include <complex>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace wb::phy {
namespace {

TEST(Multipath, UnitAveragePower) {
  sim::RngStream rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto h = draw_frequency_response(MultipathProfile{}, rng);
    EXPECT_NEAR(average_power(h), 1.0, 1e-9);
  }
}

TEST(Multipath, DeterministicForSameRngState) {
  sim::RngStream a(9), b(9);
  const auto ha = draw_frequency_response(MultipathProfile{}, a);
  const auto hb = draw_frequency_response(MultipathProfile{}, b);
  for (std::size_t s = 0; s < kNumSubchannels; ++s) {
    EXPECT_EQ(ha[s], hb[s]);
  }
}

TEST(Multipath, DifferentDrawsDiffer) {
  sim::RngStream rng(10);
  const auto h1 = draw_frequency_response(MultipathProfile{}, rng);
  const auto h2 = draw_frequency_response(MultipathProfile{}, rng);
  bool any_diff = false;
  for (std::size_t s = 0; s < kNumSubchannels; ++s) {
    if (h1[s] != h2[s]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Multipath, AdjacentSubchannelsMoreCorrelatedThanDistant) {
  // Frequency selectivity: |H| of neighbouring sub-channels tracks, while
  // sub-channels far apart (beyond the coherence bandwidth) decorrelate.
  sim::RngStream rng(11);
  RunningStats near_diff, far_diff;
  for (int i = 0; i < 300; ++i) {
    const auto h = draw_frequency_response(MultipathProfile{}, rng);
    near_diff.push(std::abs(std::abs(h[10]) - std::abs(h[11])));
    far_diff.push(std::abs(std::abs(h[0]) - std::abs(h[29])));
  }
  EXPECT_LT(near_diff.mean(), 0.5 * far_diff.mean());
}

TEST(Multipath, HigherRicianKLessFading) {
  // With a dominant line-of-sight component the |H| spread across
  // sub-channels shrinks.
  MultipathProfile weak_los;
  weak_los.rician_k = 0.1;
  MultipathProfile strong_los;
  strong_los.rician_k = 20.0;
  sim::RngStream rng(12);
  RunningStats weak_spread, strong_spread;
  for (int i = 0; i < 200; ++i) {
    const auto hw = draw_frequency_response(weak_los, rng);
    const auto hs = draw_frequency_response(strong_los, rng);
    RunningStats w, s;
    for (std::size_t k = 0; k < kNumSubchannels; ++k) {
      w.push(std::abs(hw[k]));
      s.push(std::abs(hs[k]));
    }
    weak_spread.push(w.stddev());
    strong_spread.push(s.stddev());
  }
  EXPECT_LT(strong_spread.mean(), 0.6 * weak_spread.mean());
}

TEST(Multipath, LargerDelaySpreadMoreSelectivity) {
  MultipathProfile flat;
  flat.delay_spread_s = 5e-9;
  MultipathProfile selective;
  selective.delay_spread_s = 200e-9;
  sim::RngStream rng(13);
  RunningStats flat_dev, sel_dev;
  for (int i = 0; i < 200; ++i) {
    const auto hf = draw_frequency_response(flat, rng);
    const auto hs = draw_frequency_response(selective, rng);
    flat_dev.push(std::abs(std::abs(hf[0]) - std::abs(hf[29])));
    sel_dev.push(std::abs(std::abs(hs[0]) - std::abs(hs[29])));
  }
  EXPECT_LT(flat_dev.mean(), sel_dev.mean());
}

TEST(Multipath, HadamardProduct) {
  FrequencyResponse a{}, b{};
  a[0] = {1.0, 2.0};
  b[0] = {3.0, -1.0};
  const auto c = hadamard(a, b);
  EXPECT_EQ(c[0], (Complex{1.0, 2.0} * Complex{3.0, -1.0}));
  EXPECT_EQ(c[1], Complex{});
}

TEST(Multipath, SingleTapIsFlat) {
  MultipathProfile p;
  p.taps = 1;
  p.rician_k = 100.0;
  sim::RngStream rng(14);
  const auto h = draw_frequency_response(p, rng);
  for (std::size_t s = 1; s < kNumSubchannels; ++s) {
    EXPECT_NEAR(std::abs(h[s]), std::abs(h[0]), 1e-9);
  }
}

}  // namespace
}  // namespace wb::phy
