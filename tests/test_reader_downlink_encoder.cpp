#include "reader/downlink_encoder.h"

#include <gtest/gtest.h>

#include "util/bits.h"

namespace wb::reader {
namespace {

TEST(DownlinkEncoder, OneSlotPerMessageBit) {
  DownlinkEncoder enc(DownlinkEncoderConfig{});
  const BitVec message = bits_from_string("10110");
  const auto tx = enc.encode(message, TimeUs{1'000});
  ASSERT_EQ(tx.slots.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(tx.slots[i].bit, message[i]);
  }
}

TEST(DownlinkEncoder, PacketsOnlyForOneBits) {
  DownlinkEncoderConfig cfg;
  DownlinkEncoder enc(cfg);
  const BitVec message = bits_from_string("1010011");
  const auto tx = enc.encode(message, TimeUs{});
  std::size_t data_packets = 0;
  for (const auto& pkt : tx.packets) {
    if (pkt.kind == wifi::FrameKind::kData) ++data_packets;
  }
  EXPECT_EQ(data_packets, 4u);  // four '1' bits
}

TEST(DownlinkEncoder, SlotsAreContiguousAndUniform) {
  DownlinkEncoderConfig cfg;
  cfg.slot_us = TimeUs{100};
  DownlinkEncoder enc(cfg);
  const auto tx = enc.encode(BitVec(20, 1), TimeUs{500});
  for (std::size_t i = 1; i < tx.slots.size(); ++i) {
    EXPECT_EQ(tx.slots[i].start_us - tx.slots[i - 1].start_us, TimeUs{100});
  }
}

TEST(DownlinkEncoder, CtsPrecedesFirstSlot) {
  DownlinkEncoder enc(DownlinkEncoderConfig{});
  const auto tx = enc.encode(BitVec(8, 1), TimeUs{2'000});
  ASSERT_FALSE(tx.packets.empty());
  EXPECT_EQ(tx.packets.front().kind, wifi::FrameKind::kCtsToSelf);
  EXPECT_EQ(tx.packets.front().start_us, TimeUs{2'000});
  EXPECT_GT(tx.slots.front().start_us, tx.packets.front().end_us());
}

TEST(DownlinkEncoder, NavCoversWholeChunk) {
  DownlinkEncoder enc(DownlinkEncoderConfig{});
  const auto tx = enc.encode(BitVec(40, 1), TimeUs{});
  const auto& cts = tx.packets.front();
  const TimeUs nav_end = cts.end_us() + cts.nav_us;
  EXPECT_GE(nav_end, tx.slots.back().start_us +
                         enc.config().slot_us);
  EXPECT_LE(cts.nav_us, wifi::kMaxNavUs);
}

TEST(DownlinkEncoder, LongMessageSplitsIntoChunks) {
  DownlinkEncoderConfig cfg;
  cfg.slot_us = TimeUs{50};
  DownlinkEncoder enc(cfg);
  const std::size_t per_chunk = cfg.bits_per_chunk();
  const auto tx = enc.encode(BitVec(per_chunk + 10, 1), TimeUs{});
  std::size_t cts_count = 0;
  for (const auto& pkt : tx.packets) {
    if (pkt.kind == wifi::FrameKind::kCtsToSelf) ++cts_count;
  }
  EXPECT_EQ(cts_count, 2u);
  EXPECT_EQ(tx.slots.size(), per_chunk + 10);
}

TEST(DownlinkEncoder, NoNavExceeds32ms) {
  DownlinkEncoderConfig cfg;
  cfg.slot_us = TimeUs{200};
  DownlinkEncoder enc(cfg);
  const auto tx = enc.encode(BitVec(500, 1), TimeUs{});
  for (const auto& pkt : tx.packets) {
    if (pkt.kind == wifi::FrameKind::kCtsToSelf) {
      EXPECT_LE(pkt.nav_us, wifi::kMaxNavUs);
    }
  }
}

TEST(DownlinkEncoder, BitrateMatchesSlotDuration) {
  DownlinkEncoderConfig cfg;
  cfg.slot_us = TimeUs{50};
  EXPECT_DOUBLE_EQ(cfg.bitrate_bps(), 20'000.0);
  cfg.slot_us = TimeUs{200};
  EXPECT_DOUBLE_EQ(cfg.bitrate_bps(), 5'000.0);
}

TEST(DownlinkEncoder, PaperMessageTiming) {
  // §4.1: a 64-bit payload with a 16-bit preamble at 50 us slots takes
  // ~4.0 ms on air.
  DownlinkEncoderConfig cfg;
  cfg.slot_us = TimeUs{50};
  DownlinkEncoder enc(cfg);
  const auto tx = enc.encode(BitVec(80, 1), TimeUs{});
  EXPECT_NEAR(static_cast<double>((tx.end_us - tx.start_us).ticks()),
              4'000.0, 150.0);
}

TEST(DownlinkEncoder, EmptyMessage) {
  DownlinkEncoder enc(DownlinkEncoderConfig{});
  const auto tx = enc.encode(BitVec{}, TimeUs{100});
  EXPECT_TRUE(tx.slots.empty());
  EXPECT_TRUE(tx.packets.empty());
  EXPECT_EQ(tx.end_us, TimeUs{100});
}

TEST(DownlinkEncoder, GuardGapExceedsDetectorFallTime) {
  // Regression: a guard gap at SIFS scale (10 us) fuses the CTS onto the
  // preamble's first run at the tag's comparator.
  DownlinkEncoderConfig cfg;
  EXPECT_GE(cfg.sifs_us, TimeUs{25});
}

}  // namespace
}  // namespace wb::reader
