#include "reader/corr_decoder.h"

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "util/check.h"

namespace wb::reader {
namespace {

/// Synthetic coded trace: streams observing a chip sequence with additive
/// noise; mirrors the tag's coded modulator output.
struct CodedSynthetic {
  ConditionedTrace ct;
  TimeUs frame_start{0};
  BitVec payload;
};

struct CodedSpec {
  std::size_t num_streams = 8;
  std::size_t good_streams = 4;
  double gain = 1.0;
  double noise = 0.4;
  double packet_interval_us = 500;
  std::size_t code_length = 8;
  TimeUs chip_us{2'000};
  std::size_t payload_bits = 10;
  TimeUs lead_us{30'000};
  std::uint64_t seed = 3;
};

CodedSynthetic make_coded(const CodedSpec& spec) {
  CodedSynthetic out;
  out.frame_start = spec.lead_us;
  out.payload = random_bits(spec.payload_bits, spec.seed ^ 0xF00D);
  const auto codes = make_orthogonal_pair(spec.code_length);

  BitVec frame = barker13();
  frame.insert(frame.end(), out.payload.begin(), out.payload.end());
  BitVec chips;
  for (std::uint8_t b : frame) {
    const BitVec& c = b ? codes.one : codes.zero;
    chips.insert(chips.end(), c.begin(), c.end());
  }

  const TimeUs end =
      spec.lead_us +
      spec.chip_us * static_cast<std::int64_t>(chips.size()) + TimeUs{30'000};
  sim::RngStream rng(spec.seed);
  auto noise_rng = rng.fork("noise");
  for (double t = 0.0; t < static_cast<double>(end.ticks());
       t += spec.packet_interval_us) {
    out.ct.timestamps.push_back(TimeUs{static_cast<std::int64_t>(t)});
  }
  out.ct.streams.resize(spec.num_streams);
  for (std::size_t s = 0; s < spec.num_streams; ++s) {
    const bool good = s < spec.good_streams;
    for (const TimeUs t : out.ct.timestamps) {
      double v = noise_rng.normal(0.0, spec.noise);
      if (good && t >= out.frame_start) {
        const auto chip =
            static_cast<std::size_t>((t - out.frame_start) / spec.chip_us);
        if (chip < chips.size()) {
          v += spec.gain * (chips[chip] ? 1.0 : -1.0);
        }
      }
      out.ct.streams[s].push_back(v);
    }
  }
  return out;
}

CodedDecoderConfig config_for(const CodedSpec& spec) {
  CodedDecoderConfig cfg;
  cfg.codes = make_orthogonal_pair(spec.code_length);
  cfg.payload_bits = spec.payload_bits;
  cfg.chip_duration_us = spec.chip_us;
  cfg.num_good_streams = spec.good_streams;
  return cfg;
}

TEST(CodedDecoder, DecodesCleanFrameWithKnownStart) {
  CodedSpec spec;
  auto cfg = config_for(spec);
  const auto syn = make_coded(spec);
  cfg.known_start = syn.frame_start;
  CodedUplinkDecoder dec(cfg);
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.payload, syn.payload);
}

TEST(CodedDecoder, SyncSearchFindsFrame) {
  CodedSpec spec;
  spec.noise = 0.3;
  const auto syn = make_coded(spec);
  CodedUplinkDecoder dec(config_for(spec));
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  EXPECT_NEAR(static_cast<double>(res.start_us.ticks()),
              static_cast<double>(syn.frame_start.ticks()),
              static_cast<double>(spec.chip_us.ticks()));
  EXPECT_EQ(res.payload, syn.payload);
}

TEST(CodedDecoder, PreambleCorrelationPositiveAtStart) {
  CodedSpec spec;
  spec.noise = 0.1;
  const auto syn = make_coded(spec);
  CodedUplinkDecoder dec(config_for(spec));
  EXPECT_GT(dec.preamble_correlation(syn.ct, 0, syn.frame_start), 0.5);
}

TEST(CodedDecoder, LongerCodesSurviveMoreNoise) {
  // At a noise level where L=4 fails regularly, L=32 must decode. This is
  // the paper's central §3.4 claim (SNR gain proportional to L).
  auto errors_at = [](std::size_t code_len, std::uint64_t seed) {
    CodedSpec spec;
    spec.code_length = code_len;
    spec.noise = 6.0;
    spec.gain = 1.0;
    spec.seed = seed;
    auto cfg = config_for(spec);
    const auto syn = make_coded(spec);
    cfg.known_start = syn.frame_start;
    CodedUplinkDecoder dec(cfg);
    const auto res = dec.decode_conditioned(syn.ct);
    if (!res.found) return spec.payload_bits;
    return hamming_distance(res.payload, syn.payload);
  };
  std::size_t short_errors = 0, long_errors = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    short_errors += errors_at(4, 100 + s);
    long_errors += errors_at(32, 100 + s);
  }
  EXPECT_GT(short_errors, long_errors + 3);
  EXPECT_LE(long_errors, 3u);
}

TEST(CodedDecoder, MarginGrowsWithGain) {
  CodedSpec weak;
  weak.gain = 0.2;
  CodedSpec strong;
  strong.gain = 2.0;
  auto margin_of = [](const CodedSpec& spec) {
    auto cfg = config_for(spec);
    const auto syn = make_coded(spec);
    cfg.known_start = syn.frame_start;
    CodedUplinkDecoder dec(cfg);
    const auto res = dec.decode_conditioned(syn.ct);
    double m = 0.0;
    for (double x : res.margin) m += x;
    return m;
  };
  EXPECT_GT(margin_of(strong), 2.0 * margin_of(weak));
}

TEST(CodedDecoder, SelectsGoodStreams) {
  CodedSpec spec;
  spec.num_streams = 12;
  spec.good_streams = 4;
  spec.noise = 0.2;
  auto cfg = config_for(spec);
  cfg.num_good_streams = 4;
  const auto syn = make_coded(spec);
  cfg.known_start = syn.frame_start;
  CodedUplinkDecoder dec(cfg);
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  for (std::size_t s : res.streams) {
    EXPECT_LT(s, 4u);
  }
}

TEST(CodedDecoder, EmptyTraceNotFound) {
  CodedSpec spec;
  CodedUplinkDecoder dec(config_for(spec));
  EXPECT_FALSE(dec.decode_conditioned(ConditionedTrace{}).found);
}

TEST(CodedDecoder, FrameGeometryHelpers) {
  CodedDecoderConfig cfg;
  cfg.codes = make_orthogonal_pair(20);
  cfg.payload_bits = 16;
  cfg.chip_duration_us = TimeUs{1'000};
  EXPECT_EQ(cfg.chips_per_bit(), 20u);
  EXPECT_EQ(cfg.frame_bits(), 13u + 16u);
  EXPECT_EQ(cfg.frame_chips(), 29u * 20u);
  EXPECT_EQ(cfg.frame_duration_us(), TimeUs{580'000});
}

class CodedLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodedLengthSweep, RoundtripAtModerateNoise) {
  CodedSpec spec;
  spec.code_length = GetParam();
  spec.noise = 0.8;
  spec.payload_bits = 6;
  auto cfg = config_for(spec);
  const auto syn = make_coded(spec);
  cfg.known_start = syn.frame_start;
  CodedUplinkDecoder dec(cfg);
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.payload, syn.payload) << "L=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Lengths, CodedLengthSweep,
                         ::testing::Values(4, 8, 20, 64, 150));

TEST(CodedDecoder, CtorRejectsInvertedSearchWindow) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  CodedSpec spec;
  auto cfg = config_for(spec);
  cfg.search_from = TimeUs{60'000};
  cfg.search_to = TimeUs{10'000};
  EXPECT_THROW(CodedUplinkDecoder{cfg}, ContractViolation);
  cfg.search_from.reset();
  EXPECT_NO_THROW(CodedUplinkDecoder{cfg});
}

TEST(CodedDecoder, SyncTieBreakKeepsEarliestFrameStart) {
  // Two bit-identical noiseless copies of the same coded frame, both on
  // the sync-step grid: the chip-correlation sync scores tie exactly, and
  // the pinned first-max-wins rule (strict `>`) must keep the earlier
  // start.
  CodedSpec spec;
  spec.num_streams = 1;
  spec.good_streams = 1;
  spec.payload_bits = 6;
  const auto codes = make_orthogonal_pair(spec.code_length);
  const BitVec payload = random_bits(spec.payload_bits, 21);
  BitVec frame = barker13();
  frame.insert(frame.end(), payload.begin(), payload.end());
  BitVec chips;
  for (std::uint8_t b : frame) {
    const BitVec& c = b ? codes.one : codes.zero;
    chips.insert(chips.end(), c.begin(), c.end());
  }

  const TimeUs first{30'000};
  // Offset by a multiple of the chip duration (and of the default
  // chip/2 sync step) so both starts land on the search grid.
  const TimeUs second = first + TimeUs{400'000};
  ConditionedTrace ct;
  const TimeUs end = second +
                     spec.chip_us * static_cast<std::int64_t>(chips.size()) +
                     TimeUs{30'000};
  for (std::int64_t t = 0; t < end.ticks(); t += 500) {
    ct.timestamps.push_back(TimeUs{t});
  }
  ct.streams.resize(1);
  for (const TimeUs t : ct.timestamps) {
    double v = 0.0;
    for (const TimeUs start : {first, second}) {
      if (t >= start) {
        const auto chip = static_cast<std::size_t>((t - start) / spec.chip_us);
        if (chip < chips.size()) v = chips[chip] ? 1.0 : -1.0;
      }
    }
    ct.streams[0].push_back(v);
  }

  auto cfg = config_for(spec);
  cfg.num_good_streams = 1;
  ASSERT_FALSE(cfg.known_start.has_value());  // exercise the sync search
  const CodedUplinkDecoder dec(cfg);
  const auto res = dec.decode_conditioned(ct);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.start_us, first);
  EXPECT_EQ(res.payload, payload);
}

}  // namespace
}  // namespace wb::reader
