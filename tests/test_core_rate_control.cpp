#include "core/rate_control.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace wb::core {
namespace {

RateControl make_rc(double m, double safety = 0.8) {
  return RateControl(RateControlParams{m, safety});
}

TEST(RateControl, RawRateIsNOverM) {
  const auto rc = make_rc(10.0);
  EXPECT_DOUBLE_EQ(rc.raw_rate_bps(3'000.0), 300.0);
  EXPECT_DOUBLE_EQ(rc.raw_rate_bps(500.0), 50.0);
}

TEST(RateControl, ChoosesLargestSupportedUnderBudget) {
  const auto rc = make_rc(10.0, 1.0);
  EXPECT_DOUBLE_EQ(rc.choose_bit_rate(10'000.0), 1'000.0);
  EXPECT_DOUBLE_EQ(rc.choose_bit_rate(5'100.0), 500.0);
  EXPECT_DOUBLE_EQ(rc.choose_bit_rate(2'100.0), 200.0);
}

TEST(RateControl, SafetyFactorIsConservative) {
  // At exactly 1000 bps budget the 0.8 safety factor steps down to 500.
  const auto strict = make_rc(1.0, 0.8);
  EXPECT_DOUBLE_EQ(strict.choose_bit_rate(1'000.0), 500.0);
  const auto loose = make_rc(1.0, 1.0);
  EXPECT_DOUBLE_EQ(loose.choose_bit_rate(1'000.0), 1'000.0);
}

TEST(RateControl, FloorsAtSlowestSupportedRate) {
  const auto rc = make_rc(30.0);
  EXPECT_DOUBLE_EQ(rc.choose_bit_rate(100.0), 100.0);
}

TEST(RateControl, PaperOperatingPoints) {
  // §7.2 / Fig 12: ~100 bps at 500 pkt/s; ~1 kbps at ~3070 pkt/s. The
  // paper's M is small at close range; M=3 with the safety factor lands on
  // the paper's rates.
  const auto rc = make_rc(3.0);
  EXPECT_DOUBLE_EQ(rc.choose_bit_rate(500.0), 100.0);
  EXPECT_DOUBLE_EQ(rc.choose_bit_rate(3'070.0), 500.0);
  const auto rc_fast = make_rc(2.0);
  EXPECT_DOUBLE_EQ(rc_fast.choose_bit_rate(3'070.0), 1'000.0);
}

TEST(RateControl, RateCodeRoundtrip) {
  const auto rc = make_rc(5.0);
  for (double rate : kSupportedBitRates) {
    EXPECT_DOUBLE_EQ(RateControl::rate_from_code(rc.rate_code(rate)), rate);
  }
}

TEST(RateControl, UnknownRateIsAContractViolation) {
  // Regression: rate_code(123.0) used to silently return code 0 (100 bps)
  // for any unrecognised rate, so a bad caller value became a tag
  // transmitting at a rate the reader never chose.
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  const auto rc = make_rc(5.0);
  EXPECT_THROW(rc.rate_code(123.0), ContractViolation);
  EXPECT_THROW(rc.rate_code(50.0), ContractViolation);     // below all
  EXPECT_THROW(rc.rate_code(2'000.0), ContractViolation);  // above all
}

TEST(RateControl, OutOfRangeCodeClamps) {
  EXPECT_DOUBLE_EQ(RateControl::rate_from_code(200),
                   kSupportedBitRates.back());
}

TEST(RateControl, MeasuredPacketRate) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 100; ++i) {
    wifi::CaptureRecord r;
    r.timestamp_us = TimeUs{i * 1'000};  // 1000 pkt/s
    trace.push_back(r);
  }
  EXPECT_NEAR(RateControl::measured_packet_rate(trace, TimeUs{50'000}), 1'000.0,
              50.0);
}

TEST(RateControl, MeasuredRateUsesOnlyRecentWindow) {
  wifi::CaptureTrace trace;
  // 10 packets long ago, then 50 packets in the last 10 ms.
  for (int i = 0; i < 10; ++i) {
    wifi::CaptureRecord r;
    r.timestamp_us = TimeUs{i * 100};
    trace.push_back(r);
  }
  for (int i = 0; i < 50; ++i) {
    wifi::CaptureRecord r;
    r.timestamp_us = TimeUs{1'000'000 + i * 200};
    trace.push_back(r);
  }
  EXPECT_NEAR(RateControl::measured_packet_rate(trace, TimeUs{10'000}), 5'000.0,
              100.0);
}

TEST(RateControl, EmptyTraceZeroRate) {
  EXPECT_DOUBLE_EQ(RateControl::measured_packet_rate({}, TimeUs{1'000}), 0.0);
}

TEST(RateControl, ShortTraceIsNotDilutedByTheFullWindow) {
  // Regression: a capture shorter than the window used to be divided by
  // the full window anyway — 501 packets at 1 ms spacing (0.5 s of air)
  // over a 1 s window reported ~501 pps instead of 1000 pps, so rate
  // control picked a rate roughly 2x too slow right after startup.
  wifi::CaptureTrace trace;
  for (int i = 0; i <= 500; ++i) {
    wifi::CaptureRecord r;
    r.timestamp_us = TimeUs{i * 1'000};
    trace.push_back(r);
  }
  EXPECT_DOUBLE_EQ(RateControl::measured_packet_rate(trace, TimeUs{1'000'000}),
                   1'000.0);
}

TEST(RateControl, WindowIsHalfOpenAtTheLowerEdge) {
  // Documented convention: (end - span, end]. Three packets spaced
  // exactly one window apart — only the last one is inside the window,
  // so a steady 1-per-window stream measures exactly 1/window.
  wifi::CaptureTrace trace;
  for (int i = 0; i < 3; ++i) {
    wifi::CaptureRecord r;
    r.timestamp_us = TimeUs{i * 10'000};
    trace.push_back(r);
  }
  EXPECT_DOUBLE_EQ(RateControl::measured_packet_rate(trace, TimeUs{10'000}), 100.0);
}

TEST(RateControl, SinglePacketTraceZeroRate) {
  wifi::CaptureTrace trace;
  trace.push_back(wifi::CaptureRecord{});  // zero-extent span
  EXPECT_DOUBLE_EQ(RateControl::measured_packet_rate(trace, TimeUs{1'000}), 0.0);
}

TEST(RateControl, SupportedRatesAreThePapersSet) {
  ASSERT_EQ(kSupportedBitRates.size(), 4u);
  EXPECT_DOUBLE_EQ(kSupportedBitRates[0], 100.0);
  EXPECT_DOUBLE_EQ(kSupportedBitRates[3], 1'000.0);
}

}  // namespace
}  // namespace wb::core
