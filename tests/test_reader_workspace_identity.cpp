// The workspace decode paths (DESIGN.md §10) promise bit-identical
// outputs to the allocating wrappers — same arithmetic in the same order,
// only the memory behaviour differs. These tests pin that promise: every
// field of every result must compare EXACTLY equal (==, not NEAR), and a
// workspace reused across traces of different shapes must leave no stale
// state behind.
#include <gtest/gtest.h>

#include "core/uplink_sim.h"
#include "reader/conditioning.h"
#include "reader/corr_decoder.h"
#include "reader/decode_workspace.h"
#include "reader/uplink_decoder.h"
#include "tag/modulator.h"
#include "util/codes.h"
#include "wifi/traffic.h"

namespace wb::reader {
namespace {

/// Simulated capture with one tag frame; `beacon_gaps` drops CSI on some
/// records so the CSI-skip path in conditioning is exercised too.
wifi::CaptureTrace make_capture(TimeUs bit_us, std::size_t payload_bits,
                                TimeUs until, std::uint64_t seed,
                                bool beacon_gaps) {
  core::UplinkSimConfig cfg;
  cfg.channel.tag_pos = {0.1, 0.0};
  cfg.channel.helper_pos = {3.1, 0.0};
  cfg.seed = seed;
  sim::RngStream rng(seed);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(2'000, until, wifi::TrafficParams{},
                                          traffic_rng);
  BitVec frame = barker13();
  const auto payload = random_bits(payload_bits, seed ^ 0xF00D);
  frame.insert(frame.end(), payload.begin(), payload.end());
  tag::Modulator mod(frame, bit_us, TimeUs{300'000});
  core::UplinkSim sim(cfg);
  auto trace = sim.run(tl, mod);
  if (beacon_gaps) {
    auto gap_rng = rng.fork("gaps");
    for (auto& rec : trace) {
      if (gap_rng.chance(0.1)) {
        rec.has_csi = false;
        for (auto& ant : rec.csi) ant.fill(0.0);
      }
    }
  }
  return trace;
}

void expect_same(const ConditionedTrace& a, const ConditionedTrace& b) {
  ASSERT_EQ(a.timestamps, b.timestamps);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t s = 0; s < a.streams.size(); ++s) {
    ASSERT_EQ(a.streams[s], b.streams[s]) << "stream " << s;
  }
}

void expect_same(const UplinkDecodeResult& a, const UplinkDecodeResult& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.start_us, b.start_us);
  EXPECT_EQ(a.sync_score, b.sync_score);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.streams, b.streams);
  EXPECT_EQ(a.polarity, b.polarity);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(a.packets_used, b.packets_used);
}

void expect_same(const CodedDecodeResult& a, const CodedDecodeResult& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.start_us, b.start_us);
  EXPECT_EQ(a.sync_score, b.sync_score);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.streams, b.streams);
  EXPECT_EQ(a.polarity, b.polarity);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.margin, b.margin);
}

TEST(WorkspaceIdentity, ConditioningMatchesAcrossReuse) {
  // Big trace, then a smaller one, then the big one again: the workspace
  // must regrow/shrink without leaking values between calls.
  const auto big = make_capture(TimeUs{10'000}, 32, TimeUs{900'000}, 21, true);
  const auto small = make_capture(TimeUs{5'000}, 8, TimeUs{500'000}, 22, false);

  DecodeWorkspace ws;
  ConditionedTrace out;
  for (const auto* trace : {&big, &small, &big}) {
    for (const auto source :
         {MeasurementSource::kCsi, MeasurementSource::kRssi}) {
      const auto reference = condition(*trace, source);
      condition_into(*trace, source, TimeUs{400'000}, ws, out);
      expect_same(reference, out);
    }
  }
}

TEST(WorkspaceIdentity, UplinkDecodeMatchesAcrossReuse) {
  const auto big = make_capture(TimeUs{10'000}, 32, TimeUs{900'000}, 23, true);
  const auto small = make_capture(TimeUs{5'000}, 8, TimeUs{500'000}, 24, false);

  UplinkDecoderConfig big_cfg;
  big_cfg.payload_bits = 32;
  big_cfg.bit_duration_us = TimeUs{10'000};
  big_cfg.search_from = TimeUs{280'000};
  big_cfg.search_to = TimeUs{320'000};
  UplinkDecoderConfig small_cfg;
  small_cfg.payload_bits = 8;
  small_cfg.bit_duration_us = TimeUs{5'000};
  small_cfg.search_from = TimeUs{280'000};
  small_cfg.search_to = TimeUs{320'000};
  const UplinkDecoder big_dec(big_cfg);
  const UplinkDecoder small_dec(small_cfg);

  DecodeWorkspace ws;
  UplinkDecodeResult out;
  // Alternate decoders and traces against one shared workspace/result.
  struct Case {
    const UplinkDecoder* dec;
    const wifi::CaptureTrace* trace;
  };
  for (const auto& c : {Case{&big_dec, &big}, Case{&small_dec, &small},
                        Case{&big_dec, &big}}) {
    const auto reference = c.dec->decode(*c.trace);
    EXPECT_TRUE(reference.found);
    c.dec->decode_into(*c.trace, ws, out);
    expect_same(reference, out);
  }

  // And the not-found path must reset a previously-filled result.
  const wifi::CaptureTrace empty;
  big_dec.decode_into(empty, ws, out);
  expect_same(big_dec.decode(empty), out);
  EXPECT_FALSE(out.found);
  EXPECT_TRUE(out.payload.empty());
}

TEST(WorkspaceIdentity, CodedDecodeMatchesAcrossReuse) {
  // Coded frames: 8-chip codes, 6 payload bits, known start. Exercise
  // both the winsorised (clip_sigma > 0) and unclipped paths.
  CodedDecoderConfig cfg;
  cfg.codes = make_orthogonal_pair(8);
  cfg.payload_bits = 6;
  cfg.chip_duration_us = TimeUs{5'000};
  cfg.known_start = TimeUs{300'000};

  const auto frame_chips =
      cfg.chip_duration_us * static_cast<std::int64_t>(cfg.frame_chips());
  const auto until = TimeUs{300'000} + frame_chips + TimeUs{200'000};

  // Build a capture whose tag modulates the coded chip sequence.
  core::UplinkSimConfig sim_cfg;
  sim_cfg.channel.tag_pos = {0.3, 0.0};
  sim_cfg.channel.helper_pos = {3.3, 0.0};
  sim_cfg.seed = 25;
  sim::RngStream rng(25);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(2'000, until, wifi::TrafficParams{},
                                          traffic_rng);
  BitVec bits = cfg.preamble;
  const auto payload = random_bits(cfg.payload_bits, 77);
  bits.insert(bits.end(), payload.begin(), payload.end());
  BitVec chips;
  for (std::uint8_t b : bits) {
    const BitVec& code = b ? cfg.codes.one : cfg.codes.zero;
    chips.insert(chips.end(), code.begin(), code.end());
  }
  tag::Modulator mod(chips, cfg.chip_duration_us, TimeUs{300'000});
  core::UplinkSim sim(sim_cfg);
  const auto trace = sim.run(tl, mod);

  DecodeWorkspace ws;
  CodedDecodeResult out;
  for (const double clip : {3.0, 0.0, 3.0}) {
    cfg.clip_sigma = clip;
    const CodedUplinkDecoder dec(cfg);
    const auto reference = dec.decode(trace);
    EXPECT_TRUE(reference.found);
    dec.decode_into(trace, ws, out);
    expect_same(reference, out);
  }
}

TEST(WorkspaceIdentity, UplinkBatchMatchesPerTraceDecode) {
  // decode_batch_into over mixed-shape traces (big, small, big, empty)
  // through ONE workspace must equal per-trace decode() exactly — the
  // batch API is a loop sharing scratch, not a different pipeline.
  const auto big = make_capture(TimeUs{10'000}, 32, TimeUs{900'000}, 31, true);
  const auto small = make_capture(TimeUs{10'000}, 32, TimeUs{700'000}, 32,
                                  false);
  const std::vector<wifi::CaptureTrace> traces{big, small, big,
                                               wifi::CaptureTrace{}};

  UplinkDecoderConfig cfg;
  cfg.payload_bits = 32;
  cfg.bit_duration_us = TimeUs{10'000};
  cfg.search_from = TimeUs{280'000};
  cfg.search_to = TimeUs{320'000};
  const UplinkDecoder dec(cfg);

  DecodeWorkspace ws;
  std::vector<UplinkDecodeResult> results;
  // Pre-fill with stale entries (and the wrong size) to prove the batch
  // resizes and overwrites rather than appending.
  results.resize(7);
  dec.decode_batch_into(traces, ws, results);
  ASSERT_EQ(results.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    expect_same(dec.decode(traces[i]), results[i]);
  }
  EXPECT_TRUE(results[0].found);
  EXPECT_FALSE(results[3].found);

  // Run the same batch again through the warm workspace: still identical.
  dec.decode_batch_into(traces, ws, results);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    expect_same(dec.decode(traces[i]), results[i]);
  }
}

TEST(WorkspaceIdentity, CodedBatchMatchesPerTraceDecode) {
  CodedDecoderConfig cfg;
  cfg.codes = make_orthogonal_pair(8);
  cfg.payload_bits = 6;
  cfg.chip_duration_us = TimeUs{5'000};
  cfg.known_start = TimeUs{300'000};

  const auto frame_chips =
      cfg.chip_duration_us * static_cast<std::int64_t>(cfg.frame_chips());
  const auto until = TimeUs{300'000} + frame_chips + TimeUs{200'000};
  core::UplinkSimConfig sim_cfg;
  sim_cfg.channel.tag_pos = {0.3, 0.0};
  sim_cfg.channel.helper_pos = {3.3, 0.0};
  sim_cfg.seed = 33;
  sim::RngStream rng(33);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(2'000, until, wifi::TrafficParams{},
                                          traffic_rng);
  BitVec bits = cfg.preamble;
  const auto payload = random_bits(cfg.payload_bits, 78);
  bits.insert(bits.end(), payload.begin(), payload.end());
  BitVec chips;
  for (std::uint8_t b : bits) {
    const BitVec& code = b ? cfg.codes.one : cfg.codes.zero;
    chips.insert(chips.end(), code.begin(), code.end());
  }
  tag::Modulator mod(chips, cfg.chip_duration_us, TimeUs{300'000});
  core::UplinkSim sim(sim_cfg);
  const auto trace = sim.run(tl, mod);

  const std::vector<wifi::CaptureTrace> traces{trace, wifi::CaptureTrace{},
                                               trace};
  const CodedUplinkDecoder dec(cfg);
  DecodeWorkspace ws;
  std::vector<CodedDecodeResult> results;
  dec.decode_batch_into(traces, ws, results);
  ASSERT_EQ(results.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    expect_same(dec.decode(traces[i]), results[i]);
  }
  EXPECT_TRUE(results[0].found);
  EXPECT_FALSE(results[1].found);
}

}  // namespace
}  // namespace wb::reader
