#include "obs/flight_recorder.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "util/check.h"

namespace wb::obs {
namespace {

TEST(FlightRecorder, OffByDefault) {
  EXPECT_EQ(recorder(), nullptr);
}

TEST(FlightRecorder, ScopedInstallAndRestore) {
  FlightRecorder outer(8);
  {
    ScopedFlightRecorder g(&outer);
    EXPECT_EQ(recorder(), &outer);
    {
      FlightRecorder inner(8);
      ScopedFlightRecorder g2(&inner);
      EXPECT_EQ(recorder(), &inner);
    }
    EXPECT_EQ(recorder(), &outer);
  }
  EXPECT_EQ(recorder(), nullptr);
}

TEST(FlightRecorder, NullInstallSuppressesAnOuterRecorder) {
  FlightRecorder outer(8);
  ScopedFlightRecorder g(&outer);
  {
    ScopedFlightRecorder off(nullptr);
    EXPECT_EQ(recorder(), nullptr);
  }
  EXPECT_EQ(recorder(), &outer);
}

TEST(FlightRecorder, RingKeepsOnlyTheNewestEvents) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.log(TimeUs{i}, Severity::kInfo, "m", "e",
            {{"i", static_cast<double>(i)}});
  }
  EXPECT_EQ(rec.total_logged(), 10u);
  EXPECT_EQ(rec.size(), 4u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the newest four survive.
  EXPECT_EQ(events.front().seq, 6u);
  EXPECT_EQ(events.back().seq, 9u);
  EXPECT_EQ(events.front().ts.ticks(), 6);
}

TEST(FlightRecorder, TruncatesLongStringsInsteadOfAllocating) {
  FlightRecorder rec(2);
  const std::string long_module(100, 'm');
  const std::string long_message(300, 'x');
  rec.log(TimeUs{1}, Severity::kWarn, long_module, long_message,
          {{"k", 1.0}});
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LT(std::string(events[0].module).size(), long_module.size());
  EXPECT_LT(std::string(events[0].message).size(), long_message.size());
}

TEST(FlightRecorder, KeepsAtMostMaxFields) {
  FlightRecorder rec(2);
  rec.log(TimeUs{1}, Severity::kInfo, "m", "e",
          {{"a", 1.0}, {"b", 2.0}, {"c", 3.0}, {"d", 4.0}, {"e", 5.0}});
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].num_fields, FlightRecorder::kMaxFields);
}

TEST(FlightRecorder, JsonlIsOneEventPerLine) {
  FlightRecorder rec(4);
  rec.log(TimeUs{5}, Severity::kError, "core", "boom", {{"x", 2.5}});
  const std::string jsonl = rec.to_jsonl();
  EXPECT_NE(jsonl.find("\"type\":\"event\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"module\":\"core\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ts_us\":5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"x\":2.5"), std::string::npos);
}

TEST(FlightRecorder, OffsetShiftsTimestamps) {
  FlightRecorder rec(4);
  rec.set_offset(TimeUs{1'000});
  rec.log(TimeUs{5}, Severity::kInfo, "m", "e", {});
  EXPECT_EQ(rec.events()[0].ts.ticks(), 1'005);
}

TEST(FlightRecorder, ScopedTraceOffsetShiftsRecorderClock) {
  FlightRecorder rec(4);
  ScopedFlightRecorder g(&rec);
  {
    ScopedTraceOffset shift(TimeUs{500});
    recorder()->log(TimeUs{1}, Severity::kInfo, "m", "sub", {});
  }
  recorder()->log(TimeUs{2}, Severity::kInfo, "m", "outer", {});
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts.ticks(), 501);  // shifted onto the outer timeline
  EXPECT_EQ(events[1].ts.ticks(), 2);    // restored
}

TEST(FlightRecorder, ContractDumpWritesRingOnFailure) {
  const std::string path =
      ::testing::TempDir() + "wb_contract_dump_test.jsonl";
  std::remove(path.c_str());
  FlightRecorder rec(8);
  ScopedFlightRecorder g(&rec);
  rec.log(TimeUs{1}, Severity::kInfo, "test", "before_failure", {});
  {
    ScopedContractPolicy policy(ContractPolicy::kThrow);
    ScopedContractDump dump(path);
    EXPECT_THROW(WB_REQUIRE(false, "intentional failure for dump test"),
                 ContractViolation);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 16, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("before_failure"), std::string::npos);
  // The failure itself is logged as a kError "contract" event. The full
  // "file:line: precondition violated" message exceeds the ring's
  // fixed-width message slot, so only the (truncated) head is pinned.
  EXPECT_NE(content.find("\"module\":\"contract\""), std::string::npos);
  EXPECT_NE(content.find("precondition violated"), std::string::npos);
}

TEST(FlightRecorder, ContractDumpRestoresPreviousHook) {
  const ContractFailureHook prev = contract_failure_hook();
  {
    ScopedContractDump dump("/tmp/unused_dump.jsonl");
    EXPECT_NE(contract_failure_hook(), prev);
  }
  EXPECT_EQ(contract_failure_hook(), prev);
}

}  // namespace
}  // namespace wb::obs
