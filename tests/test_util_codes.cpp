#include "util/codes.h"

#include <gtest/gtest.h>

namespace wb {
namespace {

TEST(Codes, Barker13IsTheStandardSequence) {
  EXPECT_EQ(bits_to_string(barker13()), "1111100110101");
  EXPECT_EQ(barker13().size(), 13u);
}

TEST(Codes, BarkerAutocorrelationSidelobes) {
  // Barker codes have aperiodic sidelobes <= 1; the cyclic variant used
  // here stays tightly bounded as well.
  EXPECT_LE(max_autocorrelation_sidelobe(barker13()), 1.0 + 1e-9);
  EXPECT_LE(max_autocorrelation_sidelobe(barker7()), 3.0);
  EXPECT_LE(max_autocorrelation_sidelobe(barker11()), 1.0 + 1e-9);
}

TEST(Codes, ToBipolarMapsCorrectly) {
  const auto bp = to_bipolar(BitVec{1, 0, 1});
  ASSERT_EQ(bp.size(), 3u);
  EXPECT_DOUBLE_EQ(bp[0], 1.0);
  EXPECT_DOUBLE_EQ(bp[1], -1.0);
  EXPECT_DOUBLE_EQ(bp[2], 1.0);
}

TEST(Codes, SelfCorrelationIsLength) {
  const auto& b = barker13();
  EXPECT_DOUBLE_EQ(code_correlation(b, b), 13.0);
}

TEST(Codes, ComplementCorrelationIsNegativeLength) {
  const auto& b = barker13();
  BitVec inv = b;
  for (auto& bit : inv) bit ^= 1u;
  EXPECT_DOUBLE_EQ(code_correlation(b, inv), -13.0);
}

class OrthogonalPair : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrthogonalPair, CrossCorrelationNearZero) {
  const auto pair = make_orthogonal_pair(GetParam());
  EXPECT_EQ(pair.length(), GetParam());
  const double cross = code_correlation(pair.one, pair.zero);
  // Exactly orthogonal for multiples of 4, within 2 chips otherwise.
  if (GetParam() % 4 == 0) {
    EXPECT_DOUBLE_EQ(cross, 0.0);
  } else {
    EXPECT_LE(std::abs(cross), 2.0);
  }
}

TEST_P(OrthogonalPair, CodesDiffer) {
  const auto pair = make_orthogonal_pair(GetParam());
  EXPECT_NE(pair.one, pair.zero);
}

TEST_P(OrthogonalPair, SeparationIsTwiceLength) {
  // The decoder decides on corr(one) - corr(zero); for the transmitted
  // code this difference is L - (-... ) ~ 2L-ish. Verify the discriminant
  // is large relative to L.
  const auto pair = make_orthogonal_pair(GetParam());
  const double d_one = code_correlation(pair.one, pair.one) -
                       code_correlation(pair.one, pair.zero);
  EXPECT_GE(d_one, static_cast<double>(GetParam()) - 2.0);
}

INSTANTIATE_TEST_SUITE_P(Lengths, OrthogonalPair,
                         ::testing::Values(2, 4, 8, 10, 20, 31, 64, 150,
                                           160));

TEST(Codes, WalshRowsOrthogonal) {
  const std::size_t n = 16;
  for (std::size_t r1 = 0; r1 < n; ++r1) {
    for (std::size_t r2 = r1 + 1; r2 < n; ++r2) {
      EXPECT_DOUBLE_EQ(
          code_correlation(walsh_row(n, r1), walsh_row(n, r2)), 0.0)
          << r1 << " vs " << r2;
    }
  }
}

TEST(Codes, WalshRowZeroIsAllPositive) {
  const auto row = walsh_row(8, 0);
  for (auto b : row) EXPECT_EQ(b, 0u);  // 0 == positive sign
}

}  // namespace
}  // namespace wb
