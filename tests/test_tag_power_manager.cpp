#include "tag/power_manager.h"

#include <gtest/gtest.h>

namespace wb::tag {
namespace {

PowerManagerParams near_reader() {
  PowerManagerParams p;
  p.incident_dbm = Dbm{-10.0};  // very close: harvest >> loads
  return p;
}

PowerManagerParams far_from_power() {
  PowerManagerParams p;
  p.incident_dbm = Dbm{-32.0};  // harvest below even the idle load
  return p;
}

TEST(PowerManager, StartsFull) {
  PowerManager pm(near_reader());
  EXPECT_NEAR(pm.stored_fraction(), 1.0, 1e-9);
  EXPECT_FALSE(pm.browned_out());
  EXPECT_NEAR(pm.capacity_uj(), 126.0, 1.0);  // 100 uF, 2.4->1.8 V swing
}

TEST(PowerManager, IdleChargesWhenHarvestExceedsLoad) {
  PowerManagerParams p = near_reader();
  p.initial_fraction = 0.5;
  PowerManager pm(p);
  EXPECT_GT(pm.idle_margin_uw(), 0.0);
  pm.idle(10 * kMicrosPerSec);
  EXPECT_GT(pm.stored_fraction(), 0.5);
}

TEST(PowerManager, IdleDrainsWhenHarvestShort) {
  PowerManager pm(far_from_power());
  EXPECT_LT(pm.idle_margin_uw(), 0.0);
  const double before = pm.stored_uj();
  pm.idle(10 * kMicrosPerSec);
  EXPECT_LT(pm.stored_uj(), before);
}

TEST(PowerManager, DecodeCostsMoreThanIdle) {
  PowerManager a(far_from_power());
  PowerManager b(far_from_power());
  a.idle(kMicrosPerSec);
  b.try_decode(kMicrosPerSec);
  EXPECT_GT(a.stored_uj(), b.stored_uj());
}

TEST(PowerManager, BrownsOutUnderSustainedDecode) {
  PowerManager pm(far_from_power());
  std::size_t accepted = 0;
  for (int i = 0; i < 5'000; ++i) {
    if (pm.try_decode(kMicrosPerSec)) ++accepted;
  }
  EXPECT_TRUE(pm.browned_out() || pm.stored_fraction() < 0.2);
  EXPECT_LT(accepted, 5'000u);
}

TEST(PowerManager, RefusesWorkWhileBrownedOut) {
  PowerManagerParams p = far_from_power();
  p.initial_fraction = 0.05;  // below the brown-out threshold
  PowerManager pm(p);
  EXPECT_TRUE(pm.browned_out());
  EXPECT_FALSE(pm.try_decode(TimeUs{1'000}));
  EXPECT_FALSE(pm.try_respond(TimeUs{1'000}));
}

TEST(PowerManager, RecoversWithHysteresis) {
  PowerManagerParams p = near_reader();
  p.initial_fraction = 0.05;
  PowerManager pm(p);
  EXPECT_TRUE(pm.browned_out());
  // Charge past the brown-out threshold but below resume: still out.
  while (pm.stored_fraction() < 0.2) pm.idle(TimeUs{100'000});
  EXPECT_TRUE(pm.browned_out());
  while (pm.stored_fraction() < 0.35) pm.idle(TimeUs{100'000});
  EXPECT_FALSE(pm.browned_out());
  EXPECT_TRUE(pm.try_decode(TimeUs{1'000}));
}

TEST(PowerManager, EnergyLedgerBalances) {
  PowerManagerParams p = near_reader();
  p.initial_fraction = 0.5;
  PowerManager pm(p);
  const double start = pm.stored_uj();
  pm.idle(kMicrosPerSec);
  pm.try_decode(kMicrosPerSec);
  pm.try_respond(kMicrosPerSec);
  // stored = start + harvested - spent (no clamping hit in this range).
  EXPECT_NEAR(pm.stored_uj(), start + pm.harvested_uj() - pm.spent_uj(),
              1e-6);
}

TEST(PowerManager, StoredEnergyNeverExceedsCapacity) {
  PowerManager pm(near_reader());
  pm.idle(1'000 * kMicrosPerSec);
  EXPECT_LE(pm.stored_uj(), pm.capacity_uj() + 1e-9);
}

TEST(PowerManager, PaperDutyCycleBehaviour) {
  // At one foot from the reader, continuous listening is sustainable
  // (§6); far away it is not, and the sustainable duty cycle matches the
  // harvest/load ratio.
  PowerManagerParams near_p;
  near_p.incident_dbm = incident_power_dbm(Dbm{16.0}, Meters{0.3048});
  PowerManager near_pm(near_p);
  EXPECT_GT(near_pm.idle_margin_uw(), 0.0);

  PowerManagerParams far_p;
  far_p.incident_dbm = incident_power_dbm(Dbm{16.0}, Meters{2.0});
  far_p.idle_load_uw = 9.65;  // full rx + tx chain always on
  PowerManager far_pm(far_p);
  EXPECT_LT(far_pm.idle_margin_uw(), 0.0);
}

}  // namespace
}  // namespace wb::tag
