#include "core/device.h"

#include <gtest/gtest.h>

namespace wb::core {
namespace {

SystemConfig friendly(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.tag_reader_distance_m = Meters{0.10};
  cfg.helper_pps = 2'000.0;
  cfg.seed = seed;
  return cfg;
}

TagDevice make_thermometer(std::uint16_t addr, std::uint16_t reading) {
  TagDevice dev(addr);
  dev.add_register(0, TagRegister{"temperature",
                                  [reading] { return reading; }});
  return dev;
}

TEST(TagDevice, HandlesAddressedReadQuery) {
  auto dev = make_thermometer(0x0042, 2215);
  Query q;
  q.tag_address = 0x0042;
  q.command = kCmdReadSensor;
  const auto resp = dev.handle(q);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->size(), kDeviceResponseBits);
  EXPECT_EQ(pack_uint({resp->data(), 16}), 0x0042u);
  EXPECT_EQ(pack_uint({resp->data() + 24, 16}), 2215u);
  EXPECT_EQ(dev.queries_served(), 1u);
}

TEST(TagDevice, SilentForOtherAddresses) {
  auto dev = make_thermometer(0x0042, 2215);
  Query q;
  q.tag_address = 0x0099;
  q.command = kCmdReadSensor;
  EXPECT_FALSE(dev.handle(q).has_value());
  EXPECT_EQ(dev.queries_served(), 0u);
}

TEST(TagDevice, SilentForUnknownRegister) {
  auto dev = make_thermometer(0x0042, 2215);
  Query q;
  q.tag_address = 0x0042;
  q.command = kCmdReadSensor;
  q.argument = 7;  // no register 7
  EXPECT_FALSE(dev.handle(q).has_value());
}

TEST(TagDevice, MultipleRegistersDispatchByIndex) {
  TagDevice dev(0x0001);
  dev.add_register(0, TagRegister{"temp", [] { return 100; }});
  dev.add_register(1, TagRegister{"humidity", [] { return 55; }});
  Query q;
  q.tag_address = 0x0001;
  q.command = kCmdReadSensor;
  q.argument = 1;
  const auto resp = dev.handle(q);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(pack_uint({resp->data() + 16, 8}), 1u);
  EXPECT_EQ(pack_uint({resp->data() + 24, 16}), 55u);
}

TEST(QueryDevice, EndToEndReadsRegister) {
  WiFiBackscatterSystem system(friendly(1));
  auto dev = make_thermometer(0x0042, 2215);
  Query q;
  q.tag_address = 0x0042;
  q.command = kCmdReadSensor;
  const auto out = query_device(system, dev, q);
  ASSERT_TRUE(out.transport.downlink.delivered);
  ASSERT_TRUE(out.addressed_tag_responded);
  ASSERT_TRUE(out.value.has_value());
  EXPECT_EQ(*out.value, 2215u);
  EXPECT_EQ(dev.queries_served(), 1u);
}

TEST(QueryDevice, WrongAddressNeverGetsResponse) {
  WiFiBackscatterSystem system(friendly(2));
  auto dev = make_thermometer(0x0042, 2215);
  Query q;
  q.tag_address = 0x0043;
  q.command = kCmdReadSensor;
  const auto out = query_device(system, dev, q);
  EXPECT_TRUE(out.transport.downlink.delivered);  // the tag heard it...
  EXPECT_FALSE(out.addressed_tag_responded);      // ...and stayed silent
  EXPECT_FALSE(out.value.has_value());
}

TEST(QueryDevice, SensorValueChangesAcrossQueries) {
  WiFiBackscatterSystem system(friendly(3));
  std::uint16_t reading = 100;
  TagDevice dev(0x0007);
  dev.add_register(0, TagRegister{"counter", [&reading] { return reading; }});
  Query q;
  q.tag_address = 0x0007;
  q.command = kCmdReadSensor;
  const auto first = query_device(system, dev, q);
  reading = 200;
  const auto second = query_device(system, dev, q);
  ASSERT_TRUE(first.value && second.value);
  EXPECT_EQ(*first.value, 100u);
  EXPECT_EQ(*second.value, 200u);
}

}  // namespace
}  // namespace wb::core
