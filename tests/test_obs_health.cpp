#include "obs/health.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace wb::obs {
namespace {

// ------------------------------------------------------------- grammar

TEST(SloGrammar, PlainCounterCeiling) {
  const auto rule = parse_slo_rule("core.stream.queue_depth_peak_count<=64");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->metric, "core.stream.queue_depth_peak_count");
  EXPECT_TRUE(rule->denominator.empty());
  EXPECT_EQ(rule->stat, SloRule::Stat::kValue);
  EXPECT_EQ(rule->op, SloRule::Op::kLe);
  EXPECT_DOUBLE_EQ(rule->bound, 64.0);
  // Unnamed rules get the canonical spec as their name.
  EXPECT_EQ(rule->name, "core.stream.queue_depth_peak_count<=64");
}

TEST(SloGrammar, NamedRatioRule) {
  const auto rule = parse_slo_rule(
      "ber=core.system.uplink_bit_errors_total/"
      "core.system.uplink_bits_delivered_total<=0.01");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->name, "ber");
  EXPECT_EQ(rule->metric, "core.system.uplink_bit_errors_total");
  EXPECT_EQ(rule->denominator, "core.system.uplink_bits_delivered_total");
  EXPECT_DOUBLE_EQ(rule->bound, 0.01);
}

TEST(SloGrammar, HistogramStatAndFloor) {
  const auto p99 = parse_slo_rule("reader.uplink.decode_us:p99<=5000");
  ASSERT_TRUE(p99.has_value());
  EXPECT_EQ(p99->metric, "reader.uplink.decode_us");
  EXPECT_EQ(p99->stat, SloRule::Stat::kP99);

  const auto floor = parse_slo_rule("tag.harvester.energy_uj>=1.0");
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(floor->op, SloRule::Op::kGe);
  EXPECT_DOUBLE_EQ(floor->bound, 1.0);
}

TEST(SloGrammar, MalformedSpecsAreRejected) {
  EXPECT_FALSE(parse_slo_rule("").has_value());
  EXPECT_FALSE(parse_slo_rule("no.operator.here").has_value());
  EXPECT_FALSE(parse_slo_rule("m<=").has_value());          // no bound
  EXPECT_FALSE(parse_slo_rule("m<=abc").has_value());       // bad bound
  EXPECT_FALSE(parse_slo_rule("<=5").has_value());          // no metric
  EXPECT_FALSE(parse_slo_rule("=m<=5").has_value());        // empty name
  EXPECT_FALSE(parse_slo_rule("m/<=5").has_value());        // empty denom
  EXPECT_FALSE(parse_slo_rule("m:p42<=5").has_value());     // unknown stat
  EXPECT_FALSE(parse_slo_rule("a/b:p99<=5").has_value());   // ratio + stat
}

TEST(SloGrammar, ToStringRoundTrips) {
  for (const char* spec :
       {"a.b.c_total<=10", "x>=0.5", "lat=reader.uplink.decode_us:p95<=100",
        "ber=errs/bits<=0.01"}) {
    const auto rule = parse_slo_rule(spec);
    ASSERT_TRUE(rule.has_value()) << spec;
    const auto reparsed = parse_slo_rule(to_string(*rule));
    ASSERT_TRUE(reparsed.has_value()) << to_string(*rule);
    EXPECT_EQ(reparsed->name, rule->name);
    EXPECT_EQ(reparsed->metric, rule->metric);
    EXPECT_EQ(reparsed->denominator, rule->denominator);
    EXPECT_EQ(reparsed->stat, rule->stat);
    EXPECT_EQ(reparsed->op, rule->op);
    EXPECT_DOUBLE_EQ(reparsed->bound, rule->bound);
  }
}

// ---------------------------------------------------------- evaluation

TEST(HealthMonitor, AddRuleRejectsMalformedSpecs) {
  HealthMonitor mon;
  EXPECT_FALSE(mon.add_rule("garbage"));
  EXPECT_EQ(mon.num_rules(), 0u);
  EXPECT_TRUE(mon.add_rule("m<=1"));
  EXPECT_EQ(mon.num_rules(), 1u);
}

TEST(HealthMonitor, CounterGaugeAndHistogramRules) {
  MetricsRegistry reg;
  reg.counter("errs").add(2);
  reg.counter("bits").add(400);
  reg.gauge("energy").set(3.5);
  for (int i = 0; i < 100; ++i) reg.histogram("lat").record(10.0);

  HealthMonitor mon;
  ASSERT_TRUE(mon.add_rule("ber=errs/bits<=0.01"));       // 0.005 -> ok
  ASSERT_TRUE(mon.add_rule("energy>=1.0"));               // 3.5   -> ok
  ASSERT_TRUE(mon.add_rule("lat:count>=100"));            // 100   -> ok
  ASSERT_TRUE(mon.add_rule("errs<=1"));                   // 2     -> breach

  const auto statuses = mon.evaluate(reg, TimeUs{0});
  ASSERT_EQ(statuses.size(), 4u);
  EXPECT_EQ(statuses[0].name, "ber");
  EXPECT_TRUE(statuses[0].has_value);
  EXPECT_DOUBLE_EQ(statuses[0].value, 0.005);
  EXPECT_FALSE(statuses[0].breached);
  EXPECT_DOUBLE_EQ(statuses[1].value, 3.5);
  EXPECT_FALSE(statuses[1].breached);
  EXPECT_DOUBLE_EQ(statuses[2].value, 100.0);
  EXPECT_FALSE(statuses[2].breached);
  EXPECT_TRUE(statuses[3].breached);
  EXPECT_EQ(mon.breached_count(), 1u);
}

TEST(HealthMonitor, MissingInstrumentVacuousForCeilingBreachForFloor) {
  MetricsRegistry reg;
  HealthMonitor mon;
  ASSERT_TRUE(mon.add_rule("never.measured<=10"));
  ASSERT_TRUE(mon.add_rule("never.supplied>=1"));
  const auto statuses = mon.evaluate(reg, TimeUs{0});
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_FALSE(statuses[0].has_value);
  EXPECT_FALSE(statuses[0].breached);  // ceiling: nothing measured, nothing over
  EXPECT_FALSE(statuses[1].has_value);
  EXPECT_TRUE(statuses[1].breached);   // floor: the supply never materialised
}

TEST(HealthMonitor, ZeroDenominatorRatioIsZero) {
  MetricsRegistry reg;
  reg.counter("errs").add(5);
  reg.counter("bits");  // registered, value 0
  HealthMonitor mon;
  ASSERT_TRUE(mon.add_rule("errs/bits<=0.01"));
  const auto statuses = mon.evaluate(reg, TimeUs{0});
  EXPECT_TRUE(statuses[0].has_value);
  EXPECT_DOUBLE_EQ(statuses[0].value, 0.0);
  EXPECT_FALSE(statuses[0].breached);
}

TEST(HealthMonitor, TransitionsLogOnceIntoTheRecorder) {
  MetricsRegistry reg;
  FlightRecorder rec(16);
  HealthMonitor mon;
  ASSERT_TRUE(mon.add_rule("floor=supply>=5"));

  // Breach on the first evaluation (counter at 0): one kError event.
  mon.evaluate(reg, TimeUs{100}, &rec);
  EXPECT_EQ(mon.breached_count(), 1u);
  ASSERT_EQ(rec.size(), 1u);
  {
    const auto events = rec.events();
    EXPECT_EQ(events[0].severity, Severity::kError);
    EXPECT_STREQ(events[0].module, "health");
    EXPECT_NE(std::string(events[0].message).find("slo breach: floor"),
              std::string::npos);
    EXPECT_EQ(events[0].ts.ticks(), 100);
  }

  // Still breached: no second alert for the same condition.
  mon.evaluate(reg, TimeUs{200}, &rec);
  EXPECT_EQ(rec.size(), 1u);

  // Supply arrives: one kInfo recovery event.
  reg.counter("supply").add(10);
  mon.evaluate(reg, TimeUs{300}, &rec);
  EXPECT_EQ(mon.breached_count(), 0u);
  ASSERT_EQ(rec.size(), 2u);
  {
    const auto events = rec.events();
    EXPECT_EQ(events[1].severity, Severity::kInfo);
    EXPECT_NE(std::string(events[1].message).find("slo recovered: floor"),
              std::string::npos);
    EXPECT_EQ(events[1].ts.ticks(), 300);
  }

  // Healthy again: still quiet.
  mon.evaluate(reg, TimeUs{400}, &rec);
  EXPECT_EQ(rec.size(), 2u);
}

}  // namespace
}  // namespace wb::obs
