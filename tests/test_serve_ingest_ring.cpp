#include "serve/ingest_ring.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace wb::serve {
namespace {

IngestItem item_at(std::uint32_t session, std::int64_t ts) {
  IngestItem it;
  it.session = session;
  it.record.timestamp_us = TimeUs{ts};
  return it;
}

TEST(IngestRing, AcceptsUpToCapacityAndPopsFifo) {
  IngestRing ring(4, BackpressurePolicy::kBlockProducer);
  IngestItem evicted;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.push(item_at(7, 100 + i), evicted),
              PushOutcome::kAccepted);
  }
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.size(), 4u);
  IngestItem out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out.session, 7u);
    EXPECT_EQ(out.record.timestamp_us, TimeUs{100 + i});
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.pop(out));
}

TEST(IngestRing, BlockProducerRejectsWhenFull) {
  IngestRing ring(2, BackpressurePolicy::kBlockProducer);
  IngestItem evicted;
  ring.push(item_at(0, 1), evicted);
  ring.push(item_at(0, 2), evicted);
  EXPECT_EQ(ring.push(item_at(0, 3), evicted), PushOutcome::kRejectedFull);
  // Nothing was lost or admitted: the ring still holds exactly 1, 2.
  EXPECT_EQ(ring.size(), 2u);
  IngestItem out;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out.record.timestamp_us, TimeUs{1});
}

TEST(IngestRing, DropOldestEvictsHeadAndAdmits) {
  IngestRing ring(2, BackpressurePolicy::kDropOldest);
  IngestItem evicted;
  ring.push(item_at(1, 10), evicted);
  ring.push(item_at(2, 20), evicted);
  EXPECT_EQ(ring.push(item_at(3, 30), evicted),
            PushOutcome::kAcceptedEvicted);
  // The oldest item is handed back for forensic accounting.
  EXPECT_EQ(evicted.session, 1u);
  EXPECT_EQ(evicted.record.timestamp_us, TimeUs{10});
  IngestItem out;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out.record.timestamp_us, TimeUs{20});
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out.record.timestamp_us, TimeUs{30});
}

TEST(IngestRing, DropNewestRefusesIncoming) {
  IngestRing ring(2, BackpressurePolicy::kDropNewest);
  IngestItem evicted;
  ring.push(item_at(1, 10), evicted);
  ring.push(item_at(2, 20), evicted);
  EXPECT_EQ(ring.push(item_at(3, 30), evicted), PushOutcome::kDroppedNewest);
  EXPECT_EQ(ring.size(), 2u);
  IngestItem out;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out.record.timestamp_us, TimeUs{10});
}

TEST(IngestRing, WrapAroundKeepsFifoOrder) {
  IngestRing ring(3, BackpressurePolicy::kBlockProducer);
  IngestItem evicted;
  IngestItem out;
  // Interleave pushes and pops so head/tail wrap several times.
  for (std::int64_t base = 0; base < 30; base += 3) {
    for (std::int64_t k = 0; k < 3; ++k) {
      ASSERT_EQ(ring.push(item_at(0, base + k), evicted),
                PushOutcome::kAccepted);
    }
    for (std::int64_t k = 0; k < 3; ++k) {
      ASSERT_TRUE(ring.pop(out));
      EXPECT_EQ(out.record.timestamp_us, TimeUs{base + k});
    }
  }
}

TEST(IngestRing, DepthPeakTracksHighWater) {
  IngestRing ring(8, BackpressurePolicy::kBlockProducer);
  IngestItem evicted;
  IngestItem out;
  ring.push(item_at(0, 1), evicted);
  ring.push(item_at(0, 2), evicted);
  ring.push(item_at(0, 3), evicted);
  EXPECT_EQ(ring.depth_peak(), 3u);
  ring.pop(out);
  ring.pop(out);
  EXPECT_EQ(ring.depth_peak(), 3u);  // peak is monotone
  ring.push(item_at(0, 4), evicted);
  EXPECT_EQ(ring.depth_peak(), 3u);
  ring.push(item_at(0, 5), evicted);
  ring.push(item_at(0, 6), evicted);
  EXPECT_EQ(ring.depth_peak(), 4u);
}

TEST(IngestRing, ZeroCapacityIsAContractViolation) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  EXPECT_THROW(IngestRing(0, BackpressurePolicy::kBlockProducer),
               ContractViolation);
}

TEST(IngestRing, PolicyTokensAreStable) {
  EXPECT_STREQ(to_string(BackpressurePolicy::kBlockProducer),
               "block_producer");
  EXPECT_STREQ(to_string(BackpressurePolicy::kDropOldest), "drop_oldest");
  EXPECT_STREQ(to_string(BackpressurePolicy::kDropNewest), "drop_newest");
}

}  // namespace
}  // namespace wb::serve
