#include "reader/streaming_decoder.h"

#include <gtest/gtest.h>

#include "core/uplink_sim.h"
#include "tag/modulator.h"
#include "util/check.h"
#include "util/codes.h"
#include "wifi/traffic.h"

namespace wb::reader {
namespace {

/// Generate a capture trace containing tag frames at the given start
/// times, with helper CBR traffic throughout.
wifi::CaptureTrace make_trace(const std::vector<TimeUs>& frame_starts,
                              const std::vector<BitVec>& payloads,
                              TimeUs bit_us, TimeUs until,
                              std::uint64_t seed) {
  core::UplinkSimConfig cfg;
  cfg.channel.tag_pos = {0.08, 0.0};
  cfg.channel.helper_pos = {3.08, 0.0};
  cfg.seed = seed;
  sim::RngStream rng(seed);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(3'000, until,
                                          wifi::TrafficParams{},
                                          traffic_rng);
  std::vector<tag::Modulator> mods;
  for (std::size_t i = 0; i < frame_starts.size(); ++i) {
    BitVec frame = barker13();
    frame.insert(frame.end(), payloads[i].begin(), payloads[i].end());
    mods.emplace_back(frame, bit_us, frame_starts[i]);
  }
  // Compose: at most one frame active at a time in these tests.
  core::UplinkSim sim(cfg);
  wifi::CaptureTrace trace;
  for (const auto& pkt : tl) {
    bool state = false;
    for (const auto& m : mods) state = state || m.state_at(pkt.start_us);
    const auto h = sim.channel().response(state, pkt.start_us);
    trace.push_back(
        sim.nic().measure(h, pkt.start_us, pkt.source, pkt.kind));
  }
  return trace;
}

StreamingDecoderConfig stream_config(std::size_t payload_bits,
                                     TimeUs bit_us) {
  StreamingDecoderConfig cfg;
  cfg.decoder.payload_bits = payload_bits;
  cfg.decoder.bit_duration_us = bit_us;
  return cfg;
}

TEST(StreamingDecoder, EmitsSingleFrame) {
  const BitVec payload = random_bits(24, 1);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{1'500'000}, 2);
  StreamingUplinkDecoder dec(stream_config(24, TimeUs{5'000}));
  std::vector<UplinkDecodeResult> got;
  for (const auto& rec : trace) {
    auto frames = dec.push(rec);
    got.insert(got.end(), frames.begin(), frames.end());
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, payload);
  EXPECT_EQ(dec.frames_emitted(), 1u);
}

TEST(StreamingDecoder, EmitsTwoFramesInOrder) {
  const BitVec p1 = random_bits(24, 3);
  const BitVec p2 = random_bits(24, 4);
  // Frames at 0.7 s and 1.4 s (frame = 37 bits * 5 ms = 185 ms).
  const auto trace =
      make_trace({TimeUs{700'000}, TimeUs{1'400'000}}, {p1, p2},
                 TimeUs{5'000}, TimeUs{2'200'000}, 5);
  StreamingUplinkDecoder dec(stream_config(24, TimeUs{5'000}));
  std::vector<UplinkDecodeResult> got;
  for (const auto& rec : trace) {
    auto frames = dec.push(rec);
    got.insert(got.end(), frames.begin(), frames.end());
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].payload, p1);
  EXPECT_EQ(got[1].payload, p2);
  EXPECT_LT(got[0].start_us, got[1].start_us);
}

TEST(StreamingDecoder, QuietAirEmitsNothing) {
  const auto trace = make_trace({}, {}, TimeUs{5'000}, TimeUs{1'200'000}, 6);
  StreamingUplinkDecoder dec(stream_config(24, TimeUs{5'000}));
  std::size_t emitted = 0;
  for (const auto& rec : trace) {
    emitted += dec.push(rec).size();
  }
  EXPECT_EQ(emitted, 0u);
}

TEST(StreamingDecoder, BufferStaysBounded) {
  const auto trace = make_trace({}, {}, TimeUs{5'000}, TimeUs{4'000'000}, 7);
  StreamingDecoderConfig cfg = stream_config(24, TimeUs{5'000});
  cfg.history_us = TimeUs{500'000};
  StreamingUplinkDecoder dec(cfg);
  std::size_t max_buffered = 0;
  for (const auto& rec : trace) {
    dec.push(rec);
    max_buffered = std::max(max_buffered, dec.buffered());
  }
  // 4 s of packets at 3000/s = 12000; the rolling window must hold far
  // fewer. (History 0.5 s + scan horizon ~ frame duration.)
  EXPECT_LT(max_buffered, 9'000u);
}

TEST(StreamingDecoder, FlushDrainsStrandedFinalFrame) {
  // Regression: the helper stops transmitting right after the frame ends
  // (frame 700'000..885'000, traffic until 890'000). push() only scans a
  // region once a *later* record extends the buffer past it, so the final
  // frame used to be stranded forever; flush() must drain it.
  const BitVec payload = random_bits(24, 10);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{890'000}, 11);
  StreamingUplinkDecoder dec(stream_config(24, TimeUs{5'000}));
  std::size_t pushed = 0;
  for (const auto& rec : trace) {
    pushed += dec.push(rec).size();
  }
  EXPECT_EQ(pushed, 0u);  // the pre-fix behaviour: frame never emitted
  const auto drained = dec.flush();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].payload, payload);
  EXPECT_EQ(dec.frames_emitted(), 1u);
}

TEST(StreamingDecoder, FlushIsIdempotent) {
  const BitVec payload = random_bits(24, 12);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{890'000}, 13);
  StreamingUplinkDecoder dec(stream_config(24, TimeUs{5'000}));
  for (const auto& rec : trace) dec.push(rec);
  EXPECT_EQ(dec.flush().size(), 1u);
  EXPECT_EQ(dec.flush().size(), 0u);
  EXPECT_EQ(dec.frames_emitted(), 1u);
}

TEST(StreamingDecoder, FlushOnEmptyDecoderIsANoOp) {
  StreamingUplinkDecoder dec(stream_config(24, TimeUs{5'000}));
  EXPECT_TRUE(dec.flush().empty());
}

TEST(StreamingDecoder, FlushAfterNormalEmissionAddsNothing) {
  // Plenty of trailing traffic: push() already emitted the frame, so
  // flush() must not re-emit it.
  const BitVec payload = random_bits(24, 14);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{1'500'000}, 15);
  StreamingUplinkDecoder dec(stream_config(24, TimeUs{5'000}));
  std::size_t pushed = 0;
  for (const auto& rec : trace) pushed += dec.push(rec).size();
  EXPECT_EQ(pushed, 1u);
  EXPECT_TRUE(dec.flush().empty());
}

TEST(StreamingDecoder, ConfigWithSearchWindowViolates) {
  // The wrapper owns the search window; a caller-set bound would
  // silently fight the sliding window, so construction must reject it.
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  StreamingDecoderConfig with_from = stream_config(24, TimeUs{5'000});
  with_from.decoder.search_from = TimeUs{100'000};
  EXPECT_THROW(StreamingUplinkDecoder{with_from}, ContractViolation);
  StreamingDecoderConfig with_to = stream_config(24, TimeUs{5'000});
  with_to.decoder.search_to = TimeUs{900'000};
  EXPECT_THROW(StreamingUplinkDecoder{with_to}, ContractViolation);
}

TEST(StreamingDecoder, HistoryShorterThanConditioningWindowViolates) {
  // history_us < movavg_window_us would trim records the moving-average
  // filter still needs, silently degrading every later scan.
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  StreamingDecoderConfig cfg = stream_config(24, TimeUs{5'000});
  cfg.decoder.movavg_window_us = TimeUs{400'000};
  cfg.history_us = TimeUs{399'999};
  EXPECT_THROW(StreamingUplinkDecoder{cfg}, ContractViolation);
  // Exactly covering the window is legal.
  cfg.history_us = TimeUs{400'000};
  EXPECT_NO_THROW(StreamingUplinkDecoder{cfg});
}

TEST(StreamingDecoder, ResetRestoresFreshState) {
  const BitVec payload = random_bits(24, 1);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{1'500'000}, 2);
  StreamingUplinkDecoder dec(stream_config(24, TimeUs{5'000}));
  std::size_t first = 0;
  for (const auto& rec : trace) first += dec.push(rec).size();
  EXPECT_EQ(first, 1u);
  dec.reset();
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_EQ(dec.frames_emitted(), 0u);
  // The same records decode identically in the decoder's second life
  // (reset() would otherwise reject them as out of time order).
  std::vector<UplinkDecodeResult> got;
  for (const auto& rec : trace) {
    auto frames = dec.push(rec);
    got.insert(got.end(), frames.begin(), frames.end());
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, payload);
}

TEST(StreamingDecoder, SinkOverloadMatchesVectorOverload) {
  struct CountingSink final : FrameSink {
    std::vector<BitVec> payloads;
    void on_frame(const UplinkDecodeResult& frame) override {
      payloads.push_back(frame.payload);
    }
  };
  const BitVec payload = random_bits(24, 1);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{1'500'000}, 2);
  StreamingUplinkDecoder vec_dec(stream_config(24, TimeUs{5'000}));
  StreamingUplinkDecoder sink_dec(stream_config(24, TimeUs{5'000}));
  CountingSink sink;
  std::vector<UplinkDecodeResult> vec_got;
  std::size_t sink_got = 0;
  for (const auto& rec : trace) {
    auto frames = vec_dec.push(rec);
    vec_got.insert(vec_got.end(), frames.begin(), frames.end());
    sink_got += sink_dec.push(rec, sink);
  }
  ASSERT_EQ(vec_got.size(), 1u);
  ASSERT_EQ(sink_got, 1u);
  ASSERT_EQ(sink.payloads.size(), 1u);
  EXPECT_EQ(sink.payloads[0], vec_got[0].payload);
}

TEST(StreamingDecoder, FrameNeverEmittedTwice) {
  const BitVec payload = random_bits(24, 8);
  const auto trace = make_trace({TimeUs{700'000}}, {payload}, TimeUs{5'000},
                                TimeUs{3'000'000}, 9);
  StreamingUplinkDecoder dec(stream_config(24, TimeUs{5'000}));
  std::size_t emitted = 0;
  for (const auto& rec : trace) {
    emitted += dec.push(rec).size();
  }
  EXPECT_EQ(emitted, 1u);
}

}  // namespace
}  // namespace wb::reader
