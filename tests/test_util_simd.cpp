#include "util/simd.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace wb::simd {
namespace {

TEST(Simd, LaneOrderIsIndexOrder) {
  const double src[4] = {1.5, -2.25, 3.0, 4.75};
  const auto v = dpack::load(src);
  for (std::size_t i = 0; i < dpack::size(); ++i) {
    EXPECT_DOUBLE_EQ(v.lane[i], src[i]) << i;
  }
  double dst[4] = {};
  v.store(dst);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(dst[i], src[i]) << i;
}

TEST(Simd, BroadcastAndZero) {
  const auto b = dpack::broadcast(7.25);
  const auto z = dpack::zero();
  for (std::size_t i = 0; i < dpack::size(); ++i) {
    EXPECT_DOUBLE_EQ(b.lane[i], 7.25);
    EXPECT_DOUBLE_EQ(z.lane[i], 0.0);
    EXPECT_FALSE(std::signbit(z.lane[i]));  // positive zero
  }
}

TEST(Simd, ElementwiseOpsMatchScalarExactly) {
  // Each lane op must be the one IEEE-754 double operation the scalar
  // expression names — compare with EXPECT_EQ on the bit-exact result,
  // not EXPECT_NEAR. Inputs chosen so the results are inexact (rounding
  // happens) and a reassociated or fused implementation would differ.
  const double a[4] = {0.1, -0.2, 1e16, 3.7};
  const double b[4] = {0.3, 0.7, 1.0, -1.9};
  const auto va = dpack::load(a);
  const auto vb = dpack::load(b);
  const auto sum = va + vb;
  const auto dif = va - vb;
  const auto prd = va * vb;
  const auto quo = va / vb;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sum.lane[i], a[i] + b[i]) << i;
    EXPECT_EQ(dif.lane[i], a[i] - b[i]) << i;
    EXPECT_EQ(prd.lane[i], a[i] * b[i]) << i;
    EXPECT_EQ(quo.lane[i], a[i] / b[i]) << i;
  }
}

TEST(Simd, MulAddRoundsTheProduct) {
  // a = 1 + 2^-52, b = 1 - 2^-52: the exact product is 1 - 2^-104, which
  // rounds to exactly 1.0 in double. With c = -1 a rounded product gives
  // exactly 0.0; a hardware FMA would keep the infinite-precision product
  // and return -2^-104. mul_add promises the rounded (unfused) answer.
  const double ulp = std::ldexp(1.0, -52);
  const auto a = dpack::broadcast(1.0 + ulp);
  const auto b = dpack::broadcast(1.0 - ulp);
  const auto c = dpack::broadcast(-1.0);
  const auto r = dpack::mul_add(a, b, c);
  for (std::size_t i = 0; i < dpack::size(); ++i) {
    EXPECT_EQ(r.lane[i], 0.0) << "product was not rounded before the add";
  }
}

TEST(Simd, HsumReducesInAscendingLaneOrder) {
  // 1e16 + 1.0 rounds to 1e16, so the ascending-order sum
  // ((1e16 + 1) + 1) + -1e16 is exactly 0.0; summing the middle lanes
  // first (a pairwise/tree reduction) would give 2.0.
  const double src[4] = {1e16, 1.0, 1.0, -1e16};
  EXPECT_EQ(dpack::load(src).hsum(), ((1e16 + 1.0) + 1.0) + -1e16);
  EXPECT_EQ(dpack::load(src).hsum(), 0.0);
}

TEST(Simd, MinMaxClampMatchStdSemantics) {
  const double a[4] = {1.0, -2.0, 0.0, 5.0};
  const double b[4] = {3.0, -7.0, -0.0, 5.0};
  const auto vmin = dpack::min(dpack::load(a), dpack::load(b));
  const auto vmax = dpack::max(dpack::load(a), dpack::load(b));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(vmin.lane[i], std::min(a[i], b[i])) << i;
    EXPECT_EQ(vmax.lane[i], std::max(a[i], b[i])) << i;
  }
  // std::min/max return the FIRST argument on ties — ±0.0 compare equal,
  // so min(0.0, -0.0) is +0.0 and max(0.0, -0.0) is +0.0 too.
  EXPECT_FALSE(std::signbit(vmin.lane[2]));
  EXPECT_FALSE(std::signbit(vmax.lane[2]));

  const double x[4] = {-5.0, 0.5, 9.0, 2.0};
  const auto cl = dpack::clamp(dpack::load(x), dpack::broadcast(0.0),
                               dpack::broadcast(2.0));
  const double want[4] = {0.0, 0.5, 2.0, 2.0};
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(cl.lane[i], want[i]) << i;
}

TEST(Simd, AbsIsTheScalarComparisonChain) {
  // abs is pinned to `v < 0 ? -v : v`, NOT std::abs: -0.0 compares equal
  // to zero and comes back unchanged. The kernels only sum abs results,
  // where -0.0 and +0.0 contribute identically.
  const double src[4] = {-3.5, 0.0, -0.0, 2.25};
  const auto r = dpack::abs(dpack::load(src));
  EXPECT_EQ(r.lane[0], 3.5);
  EXPECT_EQ(r.lane[1], 0.0);
  EXPECT_EQ(r.lane[2], 0.0);  // ±0.0 compare equal...
  EXPECT_TRUE(std::signbit(r.lane[2]));  // ...but the sign is preserved
  EXPECT_EQ(r.lane[3], 2.25);
  EXPECT_EQ(1.0 + r.lane[2], 1.0 + std::abs(-0.0));  // sums can't tell
}

TEST(Simd, CompoundAssignmentMatchesBinaryOps) {
  const double a[4] = {0.1, 0.2, 0.3, 0.4};
  const double b[4] = {0.7, 0.9, 1.1, 1.3};
  auto v = dpack::load(a);
  v += dpack::load(b);
  v *= dpack::load(b);
  v -= dpack::load(a);
  v /= dpack::load(b);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(v.lane[i], (((a[i] + b[i]) * b[i]) - a[i]) / b[i]) << i;
  }
}

TEST(Simd, NonPowerOfTwoWidthUsesArrayFallback) {
  // The native vector-extension storage only exists for power-of-two
  // packs; a pack<double, 3> must still work (array fallback) with the
  // same lane semantics.
  using p3 = pack<double, 3>;
  static_assert(!p3::kNative);
  const double src[3] = {1.0, -2.0, 4.0};
  const auto v = p3::load(src);
  const auto r = v * v + p3::broadcast(1.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.lane[i], src[i] * src[i] + 1.0) << i;
  }
  EXPECT_EQ(v.hsum(), (1.0 + -2.0) + 4.0);
}

TEST(Simd, KernelLoopMatchesScalarReference) {
  // A miniature conditioning-style kernel (subtract, divide, abs) over a
  // remainder-bearing length: pack main loop + scalar tail must equal the
  // plain scalar loop bit for bit.
  const std::size_t n = 37;  // 9 full packs + 1 remainder lane
  std::vector<double> x(n), m(n), d(n), want(n), got(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.37 * static_cast<double>(i)) * 3.0;
    m[i] = 0.25 * static_cast<double>(i % 7);
    d[i] = 1.0 + 0.125 * static_cast<double>(i % 5);
    want[i] = std::abs((x[i] - m[i]) / d[i]);
  }
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const auto r = dpack::abs(
        (dpack::load(&x[i]) - dpack::load(&m[i])) / dpack::load(&d[i]));
    r.store(&got[i]);
  }
  for (; i < n; ++i) got[i] = std::abs((x[i] - m[i]) / d[i]);
  EXPECT_EQ(want, got);
}

}  // namespace
}  // namespace wb::simd
