// Failure-injection tests: the system under hostile or degenerate
// conditions must fail *cleanly* (no crashes, no false successes), and
// recover when conditions improve.
#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/inventory.h"
#include "core/frame.h"
#include "core/system.h"
#include "reader/uplink_decoder.h"
#include "wifi/mac.h"
#include "wifi/nic.h"

namespace wb {
namespace {

TEST(FailureInjection, AllAntennasWeak) {
  // Every antenna crippled: decoding still works at close range because
  // conditioning normalises per stream (relative modulation survives a
  // flat gain), which is exactly why the paper could keep its bad antenna
  // in the pipeline (§7.1).
  core::UplinkExperimentParams p;
  p.tag_reader_distance_m = Meters{0.05};
  p.runs = 3;
  p.payload_bits = 24;
  p.nic.weak_antenna = 0;  // one designated weak antenna...
  p.nic.weak_antenna_gain = 0.01;
  p.seed = 1;
  const auto m = core::measure_uplink_ber(p);
  EXPECT_LT(m.ber_raw, 0.05);
}

TEST(FailureInjection, ExtremeSpuriousNic) {
  // A quarter of all packets carry spurious snapshots: close-range
  // decoding should degrade but not collapse (majority voting).
  core::UplinkExperimentParams p;
  p.tag_reader_distance_m = Meters{0.05};
  p.runs = 3;
  p.payload_bits = 24;
  p.nic.spurious_prob = 0.25;
  p.seed = 2;
  const auto m = core::measure_uplink_ber(p);
  EXPECT_LT(m.ber_raw, 0.1);
}

TEST(FailureInjection, CrushingNoiseFailsCleanly) {
  core::UplinkExperimentParams p;
  p.tag_reader_distance_m = Meters{0.05};
  p.runs = 2;
  p.payload_bits = 24;
  p.nic.csi_noise_rel = 5.0;  // SNR << 1 everywhere
  p.seed = 3;
  const auto m = core::measure_uplink_ber(p);
  // Whatever happens, the answer is garbage-rate BER, not a crash or a
  // fake clean decode.
  EXPECT_GT(m.ber_raw, 0.2);
}

TEST(FailureInjection, DecoderHandlesSinglePacketTrace) {
  wifi::CaptureTrace trace(1);
  trace[0].timestamp_us = TimeUs{};
  reader::UplinkDecoderConfig cfg;
  cfg.payload_bits = 8;
  cfg.bit_duration_us = TimeUs{1'000};
  reader::UplinkDecoder dec(cfg);
  const auto res = dec.decode(trace);
  EXPECT_FALSE(res.found);
}

TEST(FailureInjection, DecoderHandlesAllIdenticalMeasurements) {
  // A frozen NIC reporting constants: conditioning yields zeros, sync
  // finds nothing.
  wifi::CaptureTrace trace;
  for (int i = 0; i < 2'000; ++i) {
    wifi::CaptureRecord r;
    r.timestamp_us = TimeUs{i * 500};
    for (auto& ant : r.csi) ant.fill(7.0);
    r.rssi_dbm.fill(-40.0);
    trace.push_back(r);
  }
  reader::UplinkDecoderConfig cfg;
  cfg.payload_bits = 16;
  cfg.bit_duration_us = TimeUs{5'000};
  cfg.sync_threshold = 0.1;
  reader::UplinkDecoder dec(cfg);
  EXPECT_FALSE(dec.decode(trace).found);
}

TEST(FailureInjection, MacRetryLimitDropsFrames) {
  // Guarantee repeated collisions: two stations whose backoffs always
  // collide is not forceable deterministically, so use many stations at
  // tiny CW pressure and verify drops are accounted, never lost.
  wifi::DcfMac mac{sim::RngStream(4)};
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(mac.add_station());
    mac.make_saturated(ids.back(), 1'500, 6.0);
  }
  mac.run_until(2 * kMicrosPerSec);
  std::uint64_t delivered = 0, collisions = 0;
  for (auto id : ids) {
    delivered += mac.stats(id).delivered;
    collisions += mac.stats(id).collisions;
  }
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(collisions, 0u);
}

TEST(FailureInjection, SystemSurvivesZeroHelperTraffic) {
  core::SystemConfig cfg;
  cfg.helper_pps = 1.0;  // effectively dead network
  cfg.max_query_attempts = 1;
  cfg.seed = 5;
  core::WiFiBackscatterSystem sys(cfg);
  const auto out = sys.receive_uplink(random_bits(8, 1), 100.0);
  EXPECT_FALSE(out.delivered);  // nothing to modulate: no false success
}

TEST(FailureInjection, ParseRejectsTruncatedQueries) {
  for (std::size_t len : {0u, 1u, 55u, 57u, 100u}) {
    EXPECT_FALSE(core::Query::from_bits(BitVec(len, 1)).has_value()) << len;
  }
}

TEST(FailureInjection, DownlinkRejectsMassiveCorruption) {
  // Random 64-bit payloads: the CRC8 must reject ~255/256.
  std::size_t accepted = 0;
  for (std::uint64_t seed = 0; seed < 2'000; ++seed) {
    if (core::parse_downlink_payload(random_bits(64, seed))) ++accepted;
  }
  EXPECT_LT(accepted, 20u);
}

TEST(FailureInjection, ConditioningSurvivesIdenticalTimestamps) {
  // Several packets sharing one timestamp (bursted delivery reports).
  std::vector<TimeUs> ts = {TimeUs{100}, TimeUs{100}, TimeUs{100},
                            TimeUs{200}, TimeUs{200}, TimeUs{300}};
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const auto y = reader::remove_time_moving_average(ts, xs, TimeUs{1'000});
  EXPECT_EQ(y.size(), xs.size());
  for (double v : y) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(FailureInjection, InventoryWithDuplicateAddresses) {
  // Two tags wrongly programmed with the same address: the protocol must
  // terminate (it cannot tell them apart — at most one is "identified").
  core::InventoryConfig cfg;
  cfg.seed = 6;
  cfg.max_rounds = 6;
  std::vector<core::InventoryTag> tags;
  tags.push_back({0x1111, {{0.10, 0.0}, {}}});
  tags.push_back({0x1111, {{0.20, 0.1}, {}}});
  const auto res = core::run_inventory(tags, cfg);
  EXPECT_LE(res.rounds.size(), 6u);
  for (std::size_t i = 1; i < res.identified.size(); ++i) {
    EXPECT_EQ(res.identified[i], 0x1111);
  }
}

}  // namespace
}  // namespace wb
