#include "wifi/trace_io.h"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace wb::wifi {
namespace {

CaptureTrace sample_trace(std::size_t n, std::uint64_t seed) {
  sim::RngStream rng(seed);
  CaptureTrace trace;
  TimeUs t{0};
  for (std::size_t i = 0; i < n; ++i) {
    t += TimeUs{static_cast<std::int64_t>(200 + rng.uniform_int(2'000))};
    CaptureRecord rec;
    rec.timestamp_us = t;
    rec.source = static_cast<std::uint32_t>(rng.uniform_int(5));
    rec.has_csi = !rng.chance(0.2);
    for (auto& ant : rec.csi) {
      for (auto& v : ant) {
        v = rec.has_csi ? rng.uniform(0.0, 30.0) : 0.0;
      }
    }
    for (auto& r : rec.rssi_dbm) r = rng.uniform(-70.0, -30.0);
    trace.push_back(rec);
  }
  return trace;
}

TEST(TraceIo, RoundtripPreservesEverything) {
  const auto trace = sample_trace(40, 1);
  std::stringstream ss;
  EXPECT_EQ(write_capture_csv(ss, trace), 40u);
  const auto back = read_capture_csv(ss);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].timestamp_us, trace[i].timestamp_us);
    EXPECT_EQ(back[i].source, trace[i].source);
    EXPECT_EQ(back[i].has_csi, trace[i].has_csi);
    for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
      EXPECT_NEAR(back[i].rssi_dbm[a], trace[i].rssi_dbm[a], 1e-6);
      if (trace[i].has_csi) {
        for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
          EXPECT_NEAR(back[i].csi[a][s], trace[i].csi[a][s], 1e-6);
        }
      }
    }
  }
}

TEST(TraceIo, RoundtripPropertyRandomTraces) {
  // Property: write then read is the identity, bit-exact, for any NaN-free
  // trace — CSI and RSSI-only records mixed (RSSI-only rows end in a run
  // of empty cells, including the trailing one), values spanning 1e-4 to
  // 1e4 in both signs, and signed timestamps.
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    sim::RngStream rng(seed);
    CaptureTrace trace;
    TimeUs t{-50'000 + static_cast<std::int64_t>(rng.uniform_int(100'000))};
    const std::size_t n = 5 + rng.uniform_int(40);
    for (std::size_t i = 0; i < n; ++i) {
      t += TimeUs{static_cast<std::int64_t>(1 + rng.uniform_int(5'000))};
      CaptureRecord rec;
      rec.timestamp_us = t;
      rec.source = static_cast<std::uint32_t>(rng.uniform_int(8));
      rec.has_csi = !rng.chance(0.3);
      auto value = [&rng] {
        return rng.uniform(-1.0, 1.0) *
               std::pow(10.0, static_cast<double>(rng.uniform_int(9)) - 4.0);
      };
      for (auto& r : rec.rssi_dbm) r = value();
      for (auto& ant : rec.csi) {
        for (auto& v : ant) v = rec.has_csi ? value() : 0.0;
      }
      trace.push_back(rec);
    }

    std::stringstream ss;
    EXPECT_EQ(write_capture_csv(ss, trace), trace.size());
    const auto back = read_capture_csv(ss);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(back[i].timestamp_us, trace[i].timestamp_us);
      EXPECT_EQ(back[i].source, trace[i].source);
      EXPECT_EQ(back[i].has_csi, trace[i].has_csi);
      for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
        EXPECT_EQ(back[i].rssi_dbm[a], trace[i].rssi_dbm[a]);
        for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
          EXPECT_EQ(back[i].csi[a][s], trace[i].csi[a][s]);
        }
      }
    }
  }
}

/// A one-record CSV with recognisable cell values, for tampering.
std::string one_row_csv(bool has_csi) {
  CaptureRecord rec;
  rec.timestamp_us = TimeUs{1'234'567};
  rec.source = 3;
  rec.has_csi = has_csi;
  for (auto& r : rec.rssi_dbm) r = -40.0;
  for (auto& ant : rec.csi) {
    for (auto& v : ant) v = has_csi ? 1.5 : 0.0;
  }
  std::stringstream ss;
  write_capture_csv(ss, {rec});
  return ss.str();
}

/// Replace cell `cell_idx` (0-based) of the first data row.
std::string with_cell(const std::string& csv, std::size_t cell_idx,
                      const std::string& value) {
  const auto header_end = csv.find('\n');
  const auto row_end = csv.find('\n', header_end + 1);
  std::string row = csv.substr(header_end + 1, row_end - header_end - 1);
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(row);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  if (!row.empty() && row.back() == ',') cells.push_back("");
  cells.at(cell_idx) = value;
  std::string out = csv.substr(0, header_end + 1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out += ',';
    out += cells[i];
  }
  out += csv.substr(row_end);
  return out;
}

void expect_rejected(const std::string& csv, const std::string& fragment) {
  std::stringstream ss(csv);
  try {
    read_capture_csv(ss);
    FAIL() << "expected a parse error mentioning \"" << fragment << "\"";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "error was: " << e.what();
  }
}

TEST(TraceIo, RejectsTrailingGarbageInTimestamp) {
  // Regression: std::stoll("1234567x") silently parsed the prefix.
  expect_rejected(with_cell(one_row_csv(true), 0, "1234567x"),
                  "line 2, column 1");
}

TEST(TraceIo, RejectsLeadingWhitespace) {
  // Regression: std::stoll skipped leading whitespace.
  expect_rejected(with_cell(one_row_csv(true), 0, " 1234567"), "column 1");
}

TEST(TraceIo, RejectsNegativeSource) {
  // Regression: std::stoul wrapped "-3" around to 4294967293.
  expect_rejected(with_cell(one_row_csv(true), 1, "-3"), "column 2");
}

TEST(TraceIo, RejectsNonBinaryHasCsi) {
  // Regression: any cell other than "1" silently meant "no CSI".
  expect_rejected(with_cell(one_row_csv(true), 2, "2"), "has_csi");
  expect_rejected(with_cell(one_row_csv(true), 2, "true"), "has_csi");
  expect_rejected(with_cell(one_row_csv(true), 2, ""), "has_csi");
}

TEST(TraceIo, RejectsMalformedRssi) {
  expect_rejected(with_cell(one_row_csv(true), 3, ""), "column 4");
  expect_rejected(with_cell(one_row_csv(true), 3, "-40dBm"), "column 4");
}

TEST(TraceIo, RejectsMalformedCsi) {
  expect_rejected(with_cell(one_row_csv(true), 6, "1.5x"), "column 7");
}

TEST(TraceIo, RejectsNonEmptyCsiOnRssiOnlyRow) {
  // Regression: CSI cells on has_csi=0 rows were silently ignored, so a
  // row misaligned with the header round-tripped to different data.
  expect_rejected(with_cell(one_row_csv(false), 6, "1.5"),
                  "must be empty");
}

TEST(TraceIo, ErrorReportsOffendingCell) {
  expect_rejected(with_cell(one_row_csv(true), 0, "12a"), "\"12a\"");
}

TEST(TraceIo, EmptyTraceRoundtrips) {
  std::stringstream ss;
  write_capture_csv(ss, {});
  EXPECT_TRUE(read_capture_csv(ss).empty());
}

TEST(TraceIo, RejectsEmptyInput) {
  std::stringstream ss;
  EXPECT_THROW(read_capture_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsWrongHeader) {
  std::stringstream ss("time,stuff\n1,2\n");
  EXPECT_THROW(read_capture_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedRow) {
  const auto trace = sample_trace(2, 2);
  std::stringstream ss;
  write_capture_csv(ss, trace);
  std::string text = ss.str();
  text = text.substr(0, text.size() - 40);  // chop the last row
  std::stringstream damaged(text);
  EXPECT_THROW(read_capture_csv(damaged), std::runtime_error);
}

TEST(TraceIo, BeaconRowsHaveEmptyCsiCells) {
  CaptureTrace trace = sample_trace(1, 3);
  trace[0].has_csi = false;
  std::stringstream ss;
  write_capture_csv(ss, trace);
  const auto back = read_capture_csv(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_FALSE(back[0].has_csi);
  EXPECT_DOUBLE_EQ(back[0].csi[0][0], 0.0);
}

TEST(TraceIo, FileRoundtrip) {
  const auto trace = sample_trace(10, 4);
  const std::string path = "/tmp/wb_trace_io_test.csv";
  EXPECT_EQ(save_capture_csv(path, trace), 10u);
  const auto back = load_capture_csv(path);
  EXPECT_EQ(back.size(), 10u);
}

TEST(TraceIo, FileErrorsThrow) {
  EXPECT_THROW(load_capture_csv("/nonexistent/nope.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace wb::wifi
