#include "wifi/trace_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace wb::wifi {
namespace {

CaptureTrace sample_trace(std::size_t n, std::uint64_t seed) {
  sim::RngStream rng(seed);
  CaptureTrace trace;
  TimeUs t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += 200 + static_cast<TimeUs>(rng.uniform_int(2'000));
    CaptureRecord rec;
    rec.timestamp_us = t;
    rec.source = static_cast<std::uint32_t>(rng.uniform_int(5));
    rec.has_csi = !rng.chance(0.2);
    for (auto& ant : rec.csi) {
      for (auto& v : ant) {
        v = rec.has_csi ? rng.uniform(0.0, 30.0) : 0.0;
      }
    }
    for (auto& r : rec.rssi_dbm) r = rng.uniform(-70.0, -30.0);
    trace.push_back(rec);
  }
  return trace;
}

TEST(TraceIo, RoundtripPreservesEverything) {
  const auto trace = sample_trace(40, 1);
  std::stringstream ss;
  EXPECT_EQ(write_capture_csv(ss, trace), 40u);
  const auto back = read_capture_csv(ss);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].timestamp_us, trace[i].timestamp_us);
    EXPECT_EQ(back[i].source, trace[i].source);
    EXPECT_EQ(back[i].has_csi, trace[i].has_csi);
    for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
      EXPECT_NEAR(back[i].rssi_dbm[a], trace[i].rssi_dbm[a], 1e-6);
      if (trace[i].has_csi) {
        for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
          EXPECT_NEAR(back[i].csi[a][s], trace[i].csi[a][s], 1e-6);
        }
      }
    }
  }
}

TEST(TraceIo, EmptyTraceRoundtrips) {
  std::stringstream ss;
  write_capture_csv(ss, {});
  EXPECT_TRUE(read_capture_csv(ss).empty());
}

TEST(TraceIo, RejectsEmptyInput) {
  std::stringstream ss;
  EXPECT_THROW(read_capture_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsWrongHeader) {
  std::stringstream ss("time,stuff\n1,2\n");
  EXPECT_THROW(read_capture_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedRow) {
  const auto trace = sample_trace(2, 2);
  std::stringstream ss;
  write_capture_csv(ss, trace);
  std::string text = ss.str();
  text = text.substr(0, text.size() - 40);  // chop the last row
  std::stringstream damaged(text);
  EXPECT_THROW(read_capture_csv(damaged), std::runtime_error);
}

TEST(TraceIo, BeaconRowsHaveEmptyCsiCells) {
  CaptureTrace trace = sample_trace(1, 3);
  trace[0].has_csi = false;
  std::stringstream ss;
  write_capture_csv(ss, trace);
  const auto back = read_capture_csv(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_FALSE(back[0].has_csi);
  EXPECT_DOUBLE_EQ(back[0].csi[0][0], 0.0);
}

TEST(TraceIo, FileRoundtrip) {
  const auto trace = sample_trace(10, 4);
  const std::string path = "/tmp/wb_trace_io_test.csv";
  EXPECT_EQ(save_capture_csv(path, trace), 10u);
  const auto back = load_capture_csv(path);
  EXPECT_EQ(back.size(), 10u);
}

TEST(TraceIo, FileErrorsThrow) {
  EXPECT_THROW(load_capture_csv("/nonexistent/nope.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace wb::wifi
