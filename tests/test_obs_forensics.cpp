#include "obs/forensics.h"

#include <cstddef>
#include <cstdio>
#include <numeric>
#include <utility>
#include <string>

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "obs/metrics.h"
#include "runner/sweep.h"

namespace wb::obs {
namespace {

TEST(ForensicsSink, OffByDefault) {
  EXPECT_EQ(forensics(), nullptr);
}

TEST(ForensicsSink, ScopedInstallAndRestore) {
  ForensicsSink outer;
  {
    ScopedForensics g(outer);
    EXPECT_EQ(forensics(), &outer);
    {
      ForensicsSink inner;
      ScopedForensics g2(inner);
      EXPECT_EQ(forensics(), &inner);
    }
    EXPECT_EQ(forensics(), &outer);
  }
  EXPECT_EQ(forensics(), nullptr);
}

TEST(ForensicsSink, CountersUpholdTheStageInvariant) {
  ForensicsSink sink;
  for (int i = 0; i < 5; ++i) sink.record_attempt(DropStage::kUplinkDecoder);
  for (int i = 0; i < 3; ++i) sink.record_decode(DropStage::kUplinkDecoder);
  sink.record_drop(DropStage::kUplinkDecoder, DropReason::kLowSnr);
  sink.record_drop(DropStage::kUplinkDecoder, DropReason::kNoPreamble);

  EXPECT_EQ(sink.attempts(DropStage::kUplinkDecoder), 5u);
  EXPECT_EQ(sink.decodes(DropStage::kUplinkDecoder), 3u);
  EXPECT_EQ(sink.drops(DropStage::kUplinkDecoder, DropReason::kLowSnr), 1u);
  EXPECT_EQ(sink.drops(DropStage::kUplinkDecoder, DropReason::kNoPreamble),
            1u);
  EXPECT_EQ(sink.total_drops(DropStage::kUplinkDecoder), 2u);
  EXPECT_EQ(sink.attempts(DropStage::kUplinkDecoder),
            sink.decodes(DropStage::kUplinkDecoder) +
                sink.total_drops(DropStage::kUplinkDecoder));
  // Other stages untouched.
  EXPECT_EQ(sink.attempts(DropStage::kAckDetector), 0u);
  EXPECT_EQ(sink.total_drops(), 2u);
}

TEST(ForensicsSink, StableExportTokens) {
  EXPECT_STREQ(to_string(DropStage::kUplinkDecoder), "reader.uplink");
  EXPECT_STREQ(metric_token(DropStage::kUplinkDecoder), "reader_uplink");
  EXPECT_STREQ(to_string(DropStage::kWifiMac), "wifi.mac");
  EXPECT_STREQ(to_string(DropReason::kLowSnr), "low_snr");
  EXPECT_STREQ(to_string(DropReason::kDrainedIncomplete),
               "drained_incomplete");
  EXPECT_STREQ(to_string(DropStage::kIngest), "serve.ingest");
  EXPECT_STREQ(metric_token(DropStage::kIngest), "serve_ingest");
  EXPECT_STREQ(to_string(DropReason::kBackpressure), "backpressure");
}

TEST(ForensicsSink, DropMirrorsCounterIntoInstalledRegistry) {
  MetricsRegistry reg;
  ForensicsSink sink;
  {
    ScopedMetrics metrics_guard(reg);
    sink.record_drop(DropStage::kUplinkDecoder, DropReason::kLowSnr);
    sink.record_drop(DropStage::kUplinkDecoder, DropReason::kLowSnr);
    sink.record_drop(DropStage::kAckDetector, DropReason::kNoPreamble);
  }
  EXPECT_EQ(reg.counter("forensics.reader_uplink.low_snr_total").value(), 2u);
  EXPECT_EQ(reg.counter("forensics.reader_ack.no_preamble_total").value(),
            1u);
  // No registry installed: counting still works, no mirror, no crash.
  sink.record_drop(DropStage::kUplinkDecoder, DropReason::kLowSnr);
  EXPECT_EQ(sink.drops(DropStage::kUplinkDecoder, DropReason::kLowSnr), 3u);
  EXPECT_EQ(reg.counter("forensics.reader_uplink.low_snr_total").value(), 2u);
}

TEST(ForensicsSink, ExemplarCapGatesStorage) {
  ForensicsSink sink(2);
  const auto st = DropStage::kUplinkDecoder;
  const auto rs = DropReason::kLowSnr;
  EXPECT_TRUE(sink.wants_exemplar(st, rs));
  sink.add_exemplar(st, rs, "csv0");
  sink.add_exemplar(st, rs, "csv1");
  EXPECT_FALSE(sink.wants_exemplar(st, rs));
  sink.add_exemplar(st, rs, "csv2");  // ignored: slot full
  EXPECT_EQ(sink.num_exemplars(), 2u);
  // A different (stage, reason) cell has its own slot.
  EXPECT_TRUE(sink.wants_exemplar(st, DropReason::kCrcFail));
  sink.add_exemplar(st, DropReason::kCrcFail, "csv3");
  EXPECT_EQ(sink.num_exemplars(), 3u);
}

TEST(ForensicsSink, MergeAddsCountersAndReappliesExemplarCap) {
  ForensicsSink a(2);
  ForensicsSink b(2);
  a.record_attempt(DropStage::kUplinkDecoder);
  a.record_drop(DropStage::kUplinkDecoder, DropReason::kLowSnr);
  a.add_exemplar(DropStage::kUplinkDecoder, DropReason::kLowSnr, "a0");
  a.add_exemplar(DropStage::kUplinkDecoder, DropReason::kLowSnr, "a1");
  b.record_attempt(DropStage::kUplinkDecoder);
  b.record_attempt(DropStage::kUplinkDecoder);
  b.record_decode(DropStage::kUplinkDecoder);
  b.record_drop(DropStage::kUplinkDecoder, DropReason::kLowSnr);
  b.add_exemplar(DropStage::kUplinkDecoder, DropReason::kLowSnr, "b0");

  ForensicsSink merged(2);
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.attempts(DropStage::kUplinkDecoder), 3u);
  EXPECT_EQ(merged.decodes(DropStage::kUplinkDecoder), 1u);
  EXPECT_EQ(merged.drops(DropStage::kUplinkDecoder, DropReason::kLowSnr),
            2u);
  // a's two exemplars filled the merged cell; b's never entered. The
  // JSONL carries file refs, so verify the stored bytes via the sidecars.
  EXPECT_EQ(merged.num_exemplars(), 2u);
  const std::string prefix = ::testing::TempDir() + "wb_forensics_merge";
  EXPECT_EQ(merged.write_exemplars(prefix), 2u);
  for (const auto& [ordinal, want] :
       {std::pair<int, const char*>{0, "a0"}, {1, "a1"}}) {
    const std::string path = prefix + ".reader_uplink_low_snr." +
                             std::to_string(ordinal) + ".csv";
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    std::string content(16, '\0');
    content.resize(std::fread(content.data(), 1, content.size(), f));
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(content, want);
  }
}

TEST(ForensicsSink, JsonlListsEveryStageAndReasonEvenAtZero) {
  ForensicsSink sink;
  const std::string jsonl = sink.to_jsonl();
  for (std::size_t s = 0; s < kNumDropStages; ++s) {
    const std::string needle = std::string("\"stage\":\"") +
                               to_string(static_cast<DropStage>(s)) + "\"";
    EXPECT_NE(jsonl.find(needle), std::string::npos) << needle;
  }
  for (std::size_t r = 0; r < kNumDropReasons; ++r) {
    const std::string needle = std::string("\"reason\":\"") +
                               to_string(static_cast<DropReason>(r)) + "\"";
    EXPECT_NE(jsonl.find(needle), std::string::npos) << needle;
  }
}

TEST(ForensicsSink, JsonlIsDeterministicForIdenticalHistories) {
  auto build = [] {
    auto sink = std::make_unique<ForensicsSink>(2);
    sink->record_attempt(DropStage::kConditioning);
    sink->record_decode(DropStage::kConditioning);
    sink->record_attempt(DropStage::kUplinkDecoder);
    sink->record_drop(DropStage::kUplinkDecoder, DropReason::kLowSnr);
    sink->add_exemplar(DropStage::kUplinkDecoder, DropReason::kLowSnr,
                       "t_us,rssi\n0,1.0\n");
    return sink;
  };
  EXPECT_EQ(build()->to_jsonl(), build()->to_jsonl());
}

// --- Sweep determinism (the check.sh forensics gate, in-process) --------
//
// Runs the same 4-point uplink grid through SweepRunner at 1 and 8
// threads with forensics collection on. The per-task sinks merge in task
// index order, so the exported JSONL must be byte-identical, and the
// reader.uplink ledger must reconcile with what the experiment reported:
// every failed sync is exactly one low_snr drop.
struct SweepForensics {
  std::string jsonl;
  std::size_t failed_syncs = 0;
  std::uint64_t attempts = 0;
  std::uint64_t decodes = 0;
  std::uint64_t low_snr_drops = 0;
  std::uint64_t total_drops = 0;
};

SweepForensics run_sweep_at(unsigned threads) {
  runner::SweepConfig cfg;
  cfg.threads = threads;
  cfg.base_seed = 7;
  cfg.collect_forensics = true;
  runner::SweepRunner sweep(cfg);
  const auto res =
      sweep.run(4, [](const runner::TaskContext& ctx) -> std::size_t {
        core::UplinkExperimentParams p;
        p.runs = 2;
        p.payload_bits = 16;
        p.packets_per_bit = 10.0;
        // A sync score no window reaches (cf. bench_obs_overhead): every
        // run fails sync, so the grid is guaranteed to produce drops.
        p.sync_threshold = 0.99;
        p.tag_reader_distance_m =
            Meters{0.3 + 0.2 * static_cast<double>(ctx.task_index)};
        p.seed = ctx.seed;
        return core::measure_uplink_ber(p).failed_syncs;
      });
  SweepForensics out;
  out.failed_syncs =
      std::accumulate(res.results.begin(), res.results.end(), std::size_t{0});
  const ForensicsSink& fx = *res.forensics;
  out.jsonl = fx.to_jsonl();
  out.attempts = fx.attempts(DropStage::kUplinkDecoder);
  out.decodes = fx.decodes(DropStage::kUplinkDecoder);
  out.low_snr_drops =
      fx.drops(DropStage::kUplinkDecoder, DropReason::kLowSnr);
  out.total_drops = fx.total_drops(DropStage::kUplinkDecoder);
  return out;
}

TEST(ForensicsSweep, JsonlIsByteIdenticalAcrossThreadCounts) {
  const SweepForensics serial = run_sweep_at(1);
  const SweepForensics parallel = run_sweep_at(8);

  // The ledger reconciles: 4 tasks x 2 runs = 8 attempts, every failed
  // sync is exactly one low_snr drop, and the invariant closes.
  EXPECT_EQ(serial.attempts, 8u);
  EXPECT_GT(serial.failed_syncs, 0u);
  EXPECT_EQ(serial.low_snr_drops, serial.failed_syncs);
  EXPECT_EQ(serial.total_drops, serial.low_snr_drops);
  EXPECT_EQ(serial.attempts, serial.decodes + serial.total_drops);

  EXPECT_EQ(parallel.failed_syncs, serial.failed_syncs);
  EXPECT_EQ(parallel.jsonl, serial.jsonl);
}

}  // namespace
}  // namespace wb::obs
