#include "sim/rng.h"

#include <array>
#include <cmath>

#include <gtest/gtest.h>

namespace wb::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  RngStream a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  RngStream a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  RngStream a(42);
  RngStream fork_before = a.fork("child");
  a.next_u64();
  a.next_u64();
  RngStream fork_after = a.fork("child");
  // Forking derives only from the stream state at fork time; forks taken
  // at different parent states differ, but the same name at the same
  // state matches.
  RngStream b(42);
  RngStream fork_b = b.fork("child");
  EXPECT_EQ(fork_before.next_u64(), fork_b.next_u64());
  (void)fork_after;
}

TEST(Rng, NamedForksAreDecorrelated) {
  RngStream a(42);
  auto x = a.fork("alpha");
  auto y = a.fork("beta");
  EXPECT_NE(x.next_u64(), y.next_u64());
}

TEST(Rng, IndexedForksDiffer) {
  RngStream a(7);
  auto x = a.fork("ant", 0);
  auto y = a.fork("ant", 1);
  EXPECT_NE(x.next_u64(), y.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  RngStream r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  RngStream r(4);
  for (int i = 0; i < 1'000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBounded) {
  RngStream r(5);
  std::array<int, 7> counts{};
  for (int i = 0; i < 14'000; ++i) {
    const auto v = r.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 2'000, 300);
}

TEST(Rng, NormalMoments) {
  RngStream r(6);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  RngStream r(7);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  RngStream r(8);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ParetoBounded) {
  RngStream r(9);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.pareto(1.5, 2.0, 40.0);
    EXPECT_GE(x, 2.0 - 1e-9);
    EXPECT_LE(x, 40.0 + 1e-9);
  }
}

TEST(Rng, ParetoIsHeavyTailedWithinBounds) {
  // Median should sit well below the midpoint of [lo, hi].
  RngStream r(10);
  int below_mid = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    if (r.pareto(1.5, 2.0, 40.0) < 21.0) ++below_mid;
  }
  EXPECT_GT(below_mid, n * 8 / 10);
}

TEST(Rng, ChanceProbability) {
  RngStream r(11);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 6'000, 300);
  RngStream r2(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r2.chance(0.0));
  }
}

}  // namespace
}  // namespace wb::sim
