#include "obs/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace wb::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddMax) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(0.5);
  EXPECT_EQ(g.value(), 3.0);
  g.max_of(1.0);  // smaller: no change
  EXPECT_EQ(g.value(), 3.0);
  g.max_of(7.0);
  EXPECT_EQ(g.value(), 7.0);
}

TEST(LogHistogram, EmptyIsAllZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(LogHistogram, ExactMinMaxSumMean) {
  LogHistogram h;
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.8);
}

TEST(LogHistogram, PercentilesOfUniformRampWithinBucketError) {
  // 1..1000 uniformly: p50 ~ 500, p95 ~ 950, p99 ~ 990. Log bucketing at 8
  // buckets/octave guarantees ~<= 4.5% relative error at the midpoint; use
  // 10% slack to stay robust.
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_NEAR(h.percentile(50), 500.0, 50.0);
  EXPECT_NEAR(h.percentile(95), 950.0, 95.0);
  EXPECT_NEAR(h.percentile(99), 990.0, 99.0);
}

TEST(LogHistogram, PercentileClampedToExactExtremes) {
  LogHistogram h;
  h.record(123.0);
  // A single sample: every percentile is that sample, not a bucket
  // midpoint near it.
  EXPECT_DOUBLE_EQ(h.percentile(0), 123.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 123.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 123.0);
}

TEST(LogHistogram, NonPositiveValuesLandInUnderflowBucket) {
  LogHistogram h;
  h.record(0.0);
  h.record(-5.0);
  h.record(1e-12);
  EXPECT_EQ(h.count(), 3u);
  // Percentiles remain finite and clamp to the exact recorded extremes.
  EXPECT_DOUBLE_EQ(h.percentile(50), h.min());
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
}

TEST(LogHistogram, HugeValuesGoToOverflowBucket) {
  LogHistogram h;
  h.record(1e30);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(99), 1e30);  // clamped to exact max
}

TEST(LogHistogram, WideDynamicRangeKeepsRelativeAccuracy) {
  LogHistogram h;
  const std::vector<double> vals = {1e-6, 1e-3, 1.0, 1e3, 1e6};
  for (double v : vals) h.record(v);
  // Median of 5 = third value = 1.0 within bucket error.
  EXPECT_NEAR(h.percentile(50), 1.0, 0.1);
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("m.x.total");
  Counter& b = reg.counter("m.x.total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Distinct kinds with distinct names coexist.
  reg.gauge("m.x.level_count").set(2.0);
  reg.histogram("m.x.wall_us").record(10.0);
  EXPECT_EQ(&reg.gauge("m.x.level_count"), &reg.gauge("m.x.level_count"));
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("b.y.total").add(2);
  reg.counter("a.x.total").add(1);
  reg.gauge("c.z.ratio").set(0.5);
  auto& h = reg.histogram("d.w.wall_us");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.x.total");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b.y.total");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 0.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hs = snap.histograms[0].second;
  EXPECT_EQ(hs.count, 100u);
  EXPECT_DOUBLE_EQ(hs.min, 1.0);
  EXPECT_DOUBLE_EQ(hs.max, 100.0);
  EXPECT_NEAR(hs.p50, 50.0, 5.0);
}

TEST(GlobalRegistry, OffByDefaultAndScopedInstall) {
  EXPECT_EQ(metrics(), nullptr);
  MetricsRegistry reg;
  {
    ScopedMetrics scope(reg);
    ASSERT_EQ(metrics(), &reg);
    metrics()->counter("t.scope.total").add(1);
    // Nesting restores the outer registry, not null.
    MetricsRegistry inner;
    {
      ScopedMetrics inner_scope(inner);
      EXPECT_EQ(metrics(), &inner);
    }
    EXPECT_EQ(metrics(), &reg);
  }
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(reg.snapshot().counters.size(), 1u);
}

TEST(GlobalRegistry, DisabledPathIsANoop) {
  // The guard idiom used at every instrumentation site must simply skip.
  ASSERT_EQ(metrics(), nullptr);
  if (auto* m = metrics()) {
    m->counter("never.reached.total").add(1);
    FAIL();
  }
}

}  // namespace
}  // namespace wb::obs
