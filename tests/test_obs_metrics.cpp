#include "obs/metrics.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wb::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddMax) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(0.5);
  EXPECT_EQ(g.value(), 3.0);
  g.max_of(1.0);  // smaller: no change
  EXPECT_EQ(g.value(), 3.0);
  g.max_of(7.0);
  EXPECT_EQ(g.value(), 7.0);
}

TEST(LogHistogram, EmptyIsAllZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(LogHistogram, ExactMinMaxSumMean) {
  LogHistogram h;
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.8);
}

TEST(LogHistogram, PercentilesOfUniformRampWithinBucketError) {
  // 1..1000 uniformly: p50 ~ 500, p95 ~ 950, p99 ~ 990. Log bucketing at 8
  // buckets/octave guarantees ~<= 4.5% relative error at the midpoint; use
  // 10% slack to stay robust.
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_NEAR(h.percentile(50), 500.0, 50.0);
  EXPECT_NEAR(h.percentile(95), 950.0, 95.0);
  EXPECT_NEAR(h.percentile(99), 990.0, 99.0);
}

TEST(LogHistogram, PercentileClampedToExactExtremes) {
  LogHistogram h;
  h.record(123.0);
  // A single sample: every percentile is that sample, not a bucket
  // midpoint near it.
  EXPECT_DOUBLE_EQ(h.percentile(0), 123.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 123.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 123.0);
}

TEST(LogHistogram, EmptyPercentileIsZeroForEveryP) {
  // Pinned contract (metrics.h): an empty histogram answers exactly 0.0
  // regardless of p, including out-of-range p.
  LogHistogram h;
  EXPECT_EQ(h.percentile(0), 0.0);
  EXPECT_EQ(h.percentile(100), 0.0);
  EXPECT_EQ(h.percentile(-10), 0.0);
  EXPECT_EQ(h.percentile(250), 0.0);
}

TEST(LogHistogram, PercentileZeroIsLowestSampleHundredIsHighest) {
  // Nearest-rank: p=0 floors to rank 1 (the lowest sample's bucket),
  // p=100 is rank n (the highest sample's). With two samples far apart,
  // the two ends must differ and each clamp to its exact extreme (each
  // sits alone in its bucket, so the clamp gives the exact value).
  LogHistogram h;
  h.record(2.0);
  h.record(512.0);
  EXPECT_NEAR(h.percentile(0), 2.0, 0.2);       // within bucket error
  EXPECT_NEAR(h.percentile(100), 512.0, 50.0);  // within bucket error
  // Rank semantics are exact even though values are bucketed:
  // p=50 with n=2 → rank ceil(1.0) = 1 → still the lowest sample;
  // just past the halfway boundary → rank 2, the highest sample.
  EXPECT_DOUBLE_EQ(h.percentile(50), h.percentile(0));
  EXPECT_DOUBLE_EQ(h.percentile(51), h.percentile(100));
  EXPECT_LT(h.percentile(50), h.percentile(51));
}

TEST(LogHistogram, OutOfRangePIsClampedNotUndefined) {
  LogHistogram h;
  h.record(2.0);
  h.record(512.0);
  EXPECT_DOUBLE_EQ(h.percentile(-5), h.percentile(0));
  EXPECT_DOUBLE_EQ(h.percentile(1e9), h.percentile(100));
}

TEST(LogHistogram, SingleBucketAnswersSameValueForEveryP) {
  // Many samples all within one geometric bucket (2^(1/8) ≈ 1.09 wide):
  // every percentile is that bucket's midpoint clamped to the exact
  // extremes, so all of [0, 100] answers the same value, inside [min,max].
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.record(100.0 + 0.01 * i);  // 100..100.99
  const double p0 = h.percentile(0);
  EXPECT_DOUBLE_EQ(h.percentile(25), p0);
  EXPECT_DOUBLE_EQ(h.percentile(50), p0);
  EXPECT_DOUBLE_EQ(h.percentile(100), p0);
  EXPECT_GE(p0, h.min());
  EXPECT_LE(p0, h.max());
}

TEST(LogHistogram, NonPositiveValuesLandInUnderflowBucket) {
  LogHistogram h;
  h.record(0.0);
  h.record(-5.0);
  h.record(1e-12);
  EXPECT_EQ(h.count(), 3u);
  // Percentiles remain finite and clamp to the exact recorded extremes.
  EXPECT_DOUBLE_EQ(h.percentile(50), h.min());
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
}

TEST(LogHistogram, HugeValuesGoToOverflowBucket) {
  LogHistogram h;
  h.record(1e30);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(99), 1e30);  // clamped to exact max
}

TEST(LogHistogram, WideDynamicRangeKeepsRelativeAccuracy) {
  LogHistogram h;
  const std::vector<double> vals = {1e-6, 1e-3, 1.0, 1e3, 1e6};
  for (double v : vals) h.record(v);
  // Median of 5 = third value = 1.0 within bucket error.
  EXPECT_NEAR(h.percentile(50), 1.0, 0.1);
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("m.x.total");
  Counter& b = reg.counter("m.x.total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Distinct kinds with distinct names coexist.
  reg.gauge("m.x.level_count").set(2.0);
  reg.histogram("m.x.wall_us").record(10.0);
  EXPECT_EQ(&reg.gauge("m.x.level_count"), &reg.gauge("m.x.level_count"));
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("b.y.total").add(2);
  reg.counter("a.x.total").add(1);
  reg.gauge("c.z.ratio").set(0.5);
  auto& h = reg.histogram("d.w.wall_us");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.x.total");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b.y.total");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 0.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hs = snap.histograms[0].second;
  EXPECT_EQ(hs.count, 100u);
  EXPECT_DOUBLE_EQ(hs.min, 1.0);
  EXPECT_DOUBLE_EQ(hs.max, 100.0);
  EXPECT_NEAR(hs.p50, 50.0, 5.0);
}

TEST(GlobalRegistry, OffByDefaultAndScopedInstall) {
  EXPECT_EQ(metrics(), nullptr);
  MetricsRegistry reg;
  {
    ScopedMetrics scope(reg);
    ASSERT_EQ(metrics(), &reg);
    metrics()->counter("t.scope.total").add(1);
    // Nesting restores the outer registry, not null.
    MetricsRegistry inner;
    {
      ScopedMetrics inner_scope(inner);
      EXPECT_EQ(metrics(), &inner);
    }
    EXPECT_EQ(metrics(), &reg);
  }
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(reg.snapshot().counters.size(), 1u);
}

TEST(MergeFrom, CountersAccumulateAcrossRegistries) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("m.x.total").add(3);
  b.counter("m.x.total").add(4);
  b.counter("m.y.total").add(1);  // only in the source
  a.merge_from(b);
  const auto snap = a.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].second, 7u);
  EXPECT_EQ(snap.counters[1].second, 1u);
  // The source registry is untouched.
  EXPECT_EQ(b.snapshot().counters[0].second, 4u);
}

TEST(MergeFrom, GaugesAreLastMergeWins) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.gauge("m.x.level").set(1.0);
  b.gauge("m.x.level").set(2.0);
  a.merge_from(b);
  EXPECT_EQ(a.snapshot().gauges[0].second, 2.0);
}

TEST(MergeFrom, PeakGaugesMergeWithMax) {
  // Gauges driven by max_of (e.g. sim.event_queue.depth_peak_count) hold a
  // peak; after a merge the destination must hold the max across both
  // sides, not the source's local peak (last-merge-wins would lose a
  // larger earlier-task peak).
  MetricsRegistry a;
  MetricsRegistry b;
  a.gauge("m.x.depth_peak_count").max_of(7.0);
  b.gauge("m.x.depth_peak_count").max_of(3.0);
  a.merge_from(b);
  EXPECT_EQ(a.snapshot().gauges[0].second, 7.0);
}

TEST(MergeFrom, PeakGaugesIntoFreshRegistryTakeCrossTaskMax) {
  // The sweep merge starts from an empty destination and folds per-task
  // registries in ascending index order; a peak gauge must come out as
  // the cross-task max even when the largest peak is not the last task's.
  std::vector<MetricsRegistry> parts(3);
  const double peaks[] = {5.0, 9.0, 2.0};
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts[i].gauge("m.x.depth_peak_count").max_of(peaks[i]);
  }
  MetricsRegistry merged;
  for (const auto& part : parts) merged.merge_from(part);
  EXPECT_EQ(merged.snapshot().gauges[0].second, 9.0);
}

TEST(MergeFrom, HistogramsMergeCountSumAndExtremes) {
  MetricsRegistry a;
  MetricsRegistry b;
  for (double v : {10.0, 20.0}) a.histogram("m.x.wall_us").record(v);
  for (double v : {1.0, 100.0, 50.0}) b.histogram("m.x.wall_us").record(v);
  a.merge_from(b);
  const auto snap = a.snapshot();
  const auto& hs = snap.histograms[0].second;
  EXPECT_EQ(hs.count, 5u);
  EXPECT_DOUBLE_EQ(hs.sum, 181.0);
  EXPECT_DOUBLE_EQ(hs.min, 1.0);
  EXPECT_DOUBLE_EQ(hs.max, 100.0);
}

TEST(MergeFrom, EmptySourceHistogramDoesNotClobberExtremes) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.histogram("m.x.wall_us").record(5.0);
  b.histogram("m.x.wall_us");  // exists but never recorded into
  a.merge_from(b);
  const auto snap = a.snapshot();
  const auto& hs = snap.histograms[0].second;
  EXPECT_EQ(hs.count, 1u);
  EXPECT_DOUBLE_EQ(hs.min, 5.0);
  EXPECT_DOUBLE_EQ(hs.max, 5.0);
}

TEST(MergeFrom, SelfMergeIsANoop) {
  MetricsRegistry a;
  a.counter("m.x.total").add(2);
  a.merge_from(a);
  EXPECT_EQ(a.snapshot().counters[0].second, 2u);
}

TEST(MergeFrom, InOrderMergeEqualsSerialSharedRegistry) {
  // The SweepRunner contract: per-task registries merged in ascending task
  // index order must reproduce what one shared registry would have seen
  // from a serial loop.
  MetricsRegistry serial;
  std::vector<MetricsRegistry> parts(3);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (MetricsRegistry* reg : {&serial, &parts[i]}) {
      reg->counter("t.merge.total").add(i + 1);
      reg->gauge("t.merge.last_index").set(static_cast<double>(i));
      reg->gauge("t.merge.peak_count")
          .max_of(static_cast<double>((7 * i) % 5));  // peaks 0, 2, 4
      reg->histogram("t.merge.val").record(static_cast<double>(10 * i + 1));
    }
  }
  MetricsRegistry merged;
  for (const auto& part : parts) merged.merge_from(part);

  const auto want = serial.snapshot();
  const auto got = merged.snapshot();
  ASSERT_EQ(got.counters.size(), want.counters.size());
  EXPECT_EQ(got.counters[0].second, want.counters[0].second);
  EXPECT_EQ(got.gauges[0].second, want.gauges[0].second);
  EXPECT_EQ(got.gauges[0].second, 2.0);  // highest index wins, not fastest
  EXPECT_EQ(got.gauges[1].second, want.gauges[1].second);
  EXPECT_EQ(got.gauges[1].second, 4.0);  // peak gauge: cross-task max
  EXPECT_EQ(got.histograms[0].second.count, want.histograms[0].second.count);
  EXPECT_DOUBLE_EQ(got.histograms[0].second.sum,
                   want.histograms[0].second.sum);
  EXPECT_DOUBLE_EQ(got.histograms[0].second.min,
                   want.histograms[0].second.min);
  EXPECT_DOUBLE_EQ(got.histograms[0].second.max,
                   want.histograms[0].second.max);
  EXPECT_DOUBLE_EQ(got.histograms[0].second.p50,
                   want.histograms[0].second.p50);
}

TEST(GlobalRegistry, InstallationIsThreadLocal) {
  // Sweep workers install their own registries; an installation on one
  // thread must be invisible to every other thread.
  MetricsRegistry main_reg;
  ScopedMetrics scope(main_reg);
  ASSERT_EQ(metrics(), &main_reg);

  MetricsRegistry worker_reg;
  std::thread worker([&worker_reg] {
    EXPECT_EQ(metrics(), nullptr);  // main's install not inherited
    ScopedMetrics worker_scope(worker_reg);
    metrics()->counter("t.tls.total").add(1);
  });
  worker.join();

  EXPECT_EQ(metrics(), &main_reg);  // untouched by the worker's install
  EXPECT_TRUE(main_reg.snapshot().counters.empty());
  EXPECT_EQ(worker_reg.snapshot().counters[0].second, 1u);
}

TEST(GlobalRegistry, DisabledPathIsANoop) {
  // The guard idiom used at every instrumentation site must simply skip.
  ASSERT_EQ(metrics(), nullptr);
  if (auto* m = metrics()) {
    m->counter("never.reached.total").add(1);
    FAIL();
  }
}

}  // namespace
}  // namespace wb::obs
