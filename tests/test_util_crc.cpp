#include "util/crc.h"

#include <gtest/gtest.h>

#include "util/bits.h"

namespace wb {
namespace {

std::vector<std::uint8_t> check_bytes() {
  return {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
}

// Reference check values for the standard "123456789" test vector.
TEST(Crc, Crc32IeeeCheckValue) {
  EXPECT_EQ(crc32_ieee(check_bytes()), 0xCBF43926u);
}

TEST(Crc, Crc16CcittFalseCheckValue) {
  // CRC-16/CCITT-FALSE (init 0xFFFF, poly 0x1021, no reflection).
  EXPECT_EQ(crc16_ccitt(check_bytes()), 0x29B1u);
}

TEST(Crc, Crc8CheckValue) {
  // CRC-8 (poly 0x07, init 0): check value 0xF4.
  EXPECT_EQ(crc8(check_bytes()), 0xF4u);
}

TEST(Crc, EmptyInputs) {
  EXPECT_EQ(crc8({}), 0x00u);
  EXPECT_EQ(crc16_ccitt({}), 0xFFFFu);
  EXPECT_EQ(crc32_ieee({}), 0x00000000u);
}

TEST(Crc, Deterministic) {
  const auto data = check_bytes();
  EXPECT_EQ(crc32_ieee(data), crc32_ieee(data));
  EXPECT_EQ(crc8(data), crc8(data));
}

TEST(Crc, Crc8BitsMatchesBytePath) {
  const std::vector<std::uint8_t> bytes = {0xAB, 0xCD};
  EXPECT_EQ(crc8_bits(unpack_bits(bytes)), crc8(bytes));
}

class CrcSingleBitFlip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrcSingleBitFlip, AllCrcsDetectIt) {
  auto data = check_bytes();
  const std::size_t bit = GetParam();
  data[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
  EXPECT_NE(crc8(data), crc8(check_bytes()));
  EXPECT_NE(crc16_ccitt(data), crc16_ccitt(check_bytes()));
  EXPECT_NE(crc32_ieee(data), crc32_ieee(check_bytes()));
}

INSTANTIATE_TEST_SUITE_P(EveryBit, CrcSingleBitFlip,
                         ::testing::Range<std::size_t>(0, 72));

TEST(Crc, DetectsAllDoubleBitFlipsInShortMessage) {
  // CRCs guarantee detection of any 2-bit error within their span; verify
  // exhaustively on a 3-byte message.
  const std::vector<std::uint8_t> base = {0x12, 0x34, 0x56};
  const auto ref8 = crc8(base);
  const auto ref16 = crc16_ccitt(base);
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = i + 1; j < 24; ++j) {
      auto data = base;
      data[i / 8] ^= static_cast<std::uint8_t>(0x80u >> (i % 8));
      data[j / 8] ^= static_cast<std::uint8_t>(0x80u >> (j % 8));
      EXPECT_NE(crc8(data), ref8) << i << "," << j;
      EXPECT_NE(crc16_ccitt(data), ref16) << i << "," << j;
    }
  }
}

TEST(Crc, RandomCorruptionDetectionRate) {
  // Random corruption slips past an 8-bit CRC with probability ~2^-8;
  // verify the false-accept rate is in that ballpark, not higher.
  std::uint64_t seed = 1;
  std::size_t accepted = 0;
  const std::size_t trials = 4'000;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto a = pack_bits(random_bits(64, seed++));
    const auto b = pack_bits(random_bits(64, seed++));
    if (a != b && crc8(a) == crc8(b)) ++accepted;
  }
  EXPECT_LT(accepted, trials / 100);  // << 1% (expect ~0.4%)
}

}  // namespace
}  // namespace wb
