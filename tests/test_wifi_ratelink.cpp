#include "wifi/link_sim.h"
#include "wifi/rate_adapt.h"

#include <gtest/gtest.h>

namespace wb::wifi {
namespace {

TEST(RateAdapt, ThresholdsMonotoneInRate) {
  Db prev{};
  for (double r : kPhyRatesMbps) {
    EXPECT_GT(required_snr_db(r), prev);
    prev = required_snr_db(r);
  }
}

TEST(RateAdapt, PerMonotoneDecreasingInSnr) {
  double prev = 1.0;
  for (double snr = 0.0; snr <= 40.0; snr += 2.0) {
    const double per = packet_error_rate(Db{snr}, 54.0, 1000);
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
  }
}

TEST(RateAdapt, PerHighBelowThresholdLowAbove) {
  EXPECT_GT(packet_error_rate(required_snr_db(54.0) - Db{4.0}, 54.0, 1000),
            0.95);
  EXPECT_LT(packet_error_rate(required_snr_db(54.0) + Db{4.0}, 54.0, 1000),
            0.05);
}

TEST(RateAdapt, LongerFramesFailMore) {
  const Db snr = required_snr_db(24.0) + Db{0.5};
  EXPECT_GT(packet_error_rate(snr, 24.0, 1500),
            packet_error_rate(snr, 24.0, 100));
}

TEST(Arf, StepsUpAfterSuccessStreak) {
  ArfRateAdapter arf(ArfRateAdapter::Params{3, 2}, 0);
  EXPECT_DOUBLE_EQ(arf.current_rate_mbps(), 6.0);
  arf.on_result(true);
  arf.on_result(true);
  EXPECT_DOUBLE_EQ(arf.current_rate_mbps(), 6.0);
  arf.on_result(true);
  EXPECT_DOUBLE_EQ(arf.current_rate_mbps(), 9.0);
}

TEST(Arf, StepsDownAfterFailures) {
  ArfRateAdapter arf(ArfRateAdapter::Params{3, 2}, 4);
  arf.on_result(false);
  arf.on_result(false);
  EXPECT_EQ(arf.rate_index(), 3u);
}

TEST(Arf, SuccessResetsFailureStreak) {
  ArfRateAdapter arf(ArfRateAdapter::Params{10, 2}, 4);
  arf.on_result(false);
  arf.on_result(true);
  arf.on_result(false);
  EXPECT_EQ(arf.rate_index(), 4u);  // never two consecutive failures
}

TEST(Arf, SaturatesAtExtremes) {
  ArfRateAdapter arf(ArfRateAdapter::Params{1, 1}, kNumPhyRates - 1);
  for (int i = 0; i < 5; ++i) arf.on_result(true);
  EXPECT_EQ(arf.rate_index(), kNumPhyRates - 1);
  for (int i = 0; i < 20; ++i) arf.on_result(false);
  EXPECT_EQ(arf.rate_index(), 0u);
  arf.on_result(false);
  EXPECT_EQ(arf.rate_index(), 0u);
}

TEST(LinkSim, ConvergesToHighRateAtHighSnr) {
  LinkSimConfig cfg;
  cfg.base_snr_db = Db{35.0};
  cfg.seed = 1;
  const auto r = run_link_sim(cfg, 5 * kMicrosPerSec);
  EXPECT_GT(r.mean_rate_mbps, 45.0);
  EXPECT_GT(r.mean_throughput_mbps, 20.0);
  EXPECT_LT(r.per, 0.05);
}

TEST(LinkSim, LowSnrPicksLowRate) {
  LinkSimConfig cfg;
  cfg.base_snr_db = Db{9.0};
  cfg.seed = 2;
  const auto r = run_link_sim(cfg, 5 * kMicrosPerSec);
  EXPECT_LT(r.mean_rate_mbps, 15.0);
  EXPECT_GT(r.mean_throughput_mbps, 1.0);
}

TEST(LinkSim, ThroughputMonotoneInSnr) {
  double prev = 0.0;
  for (double snr : {8.0, 14.0, 20.0, 28.0}) {
    LinkSimConfig cfg;
    cfg.base_snr_db = Db{snr};
    cfg.seed = 3;
    const auto r = run_link_sim(cfg, 5 * kMicrosPerSec);
    EXPECT_GT(r.mean_throughput_mbps, prev) << snr;
    prev = r.mean_throughput_mbps;
  }
}

TEST(LinkSim, ContentionReducesThroughput) {
  LinkSimConfig base;
  base.base_snr_db = Db{30.0};
  base.seed = 4;
  LinkSimConfig busy = base;
  busy.contention_busy_frac = 0.5;
  const auto r0 = run_link_sim(base, 5 * kMicrosPerSec);
  const auto r1 = run_link_sim(busy, 5 * kMicrosPerSec);
  EXPECT_LT(r1.mean_throughput_mbps, r0.mean_throughput_mbps * 0.75);
}

TEST(LinkSim, TagRippleWithinVariance) {
  // Fig 19's claim: the tag's small SNR ripple does not measurably change
  // throughput under rate adaptation.
  LinkSimConfig base;
  base.base_snr_db = Db{30.0};
  base.seed = 5;
  LinkSimConfig tagged = base;
  tagged.tag_depth_db = Db{0.8};
  tagged.tag_bit_rate_bps = 1'000.0;
  const auto r0 = run_link_sim(base, 20 * kMicrosPerSec);
  const auto r1 = run_link_sim(tagged, 20 * kMicrosPerSec);
  EXPECT_NEAR(r1.mean_throughput_mbps, r0.mean_throughput_mbps,
              3.0 * (r0.stddev_throughput_mbps + 0.1));
}

TEST(LinkSim, ReportsIntervals) {
  LinkSimConfig cfg;
  cfg.seed = 6;
  const auto r = run_link_sim(cfg, 3 * kMicrosPerSec);
  EXPECT_EQ(r.per_interval_mbps.size(), 6u);  // 500 ms intervals
}

}  // namespace
}  // namespace wb::wifi
