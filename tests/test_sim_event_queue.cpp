#include "sim/event_queue.h"

#include <functional>
#include <vector>

#include <gtest/gtest.h>

namespace wb::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(TimeUs{30}, [&] { order.push_back(3); });
  q.schedule_at(TimeUs{10}, [&] { order.push_back(1); });
  q.schedule_at(TimeUs{20}, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), TimeUs{30});
}

TEST(EventQueue, SameTimeFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(TimeUs{100}, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  TimeUs fired_at{-1};
  q.schedule_at(TimeUs{50}, [&] {
    q.schedule_in(TimeUs{25}, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_EQ(fired_at, TimeUs{75});
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto id = q.schedule_at(TimeUs{10}, [&] { fired = true; });
  q.cancel(id);
  q.run_all();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.cancel(999);
  q.cancel(0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceCountsOnce) {
  EventQueue q;
  const auto id = q.schedule_at(TimeUs{10}, [] {});
  q.schedule_at(TimeUs{20}, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run_all(), 1u);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  std::vector<TimeUs> fired;
  for (TimeUs t : {TimeUs{10}, TimeUs{20}, TimeUs{30}, TimeUs{40}}) {
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  EXPECT_EQ(q.run_until(TimeUs{25}), 2u);
  EXPECT_EQ(fired, (std::vector<TimeUs>{TimeUs{10}, TimeUs{20}}));
  EXPECT_EQ(q.now(), TimeUs{25});
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueue, RunUntilIncludesExactBoundary) {
  EventQueue q;
  bool fired = false;
  q.schedule_at(TimeUs{25}, [&] { fired = true; });
  q.run_until(TimeUs{25});
  EXPECT_TRUE(fired);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.run_until(TimeUs{1'000});
  EXPECT_EQ(q.now(), TimeUs{1'000});
}

TEST(EventQueue, StepFiresExactlyOne) {
  EventQueue q;
  int count = 0;
  q.schedule_at(TimeUs{1}, [&] { ++count; });
  q.schedule_at(TimeUs{2}, [&] { ++count; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, SelfReschedulingProcess) {
  EventQueue q;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) q.schedule_in(TimeUs{10}, tick);
  };
  q.schedule_at(TimeUs{0}, tick);
  q.run_until(TimeUs{1'000});
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(q.now(), TimeUs{1'000});
}

TEST(EventQueue, CancelTombstoneBeyondHorizonSurvives) {
  // A cancelled event beyond the horizon must not block later runs.
  EventQueue q;
  const auto id = q.schedule_at(TimeUs{100}, [] { FAIL(); });
  bool fired = false;
  q.schedule_at(TimeUs{50}, [&] { fired = true; });
  q.run_until(TimeUs{60});
  q.cancel(id);
  q.run_until(TimeUs{200});
  EXPECT_TRUE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelFromInsideHandler) {
  EventQueue q;
  bool second_fired = false;
  const auto id2 = q.schedule_at(TimeUs{20}, [&] { second_fired = true; });
  q.schedule_at(TimeUs{10}, [&] { q.cancel(id2); });
  q.run_all();
  EXPECT_FALSE(second_fired);
}

TEST(EventQueue, CancelAfterFireKeepsAccountingCorrect) {
  // Regression: cancelling an id that already fired used to corrupt the
  // live count, making pending() wrap and empty() lie.
  EventQueue q;
  const auto id = q.schedule_at(TimeUs{10}, [] {});
  q.run_all();
  EXPECT_TRUE(q.empty());
  q.cancel(id);  // must be a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  q.schedule_at(TimeUs{20}, [] {});
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run_all(), 1u);
}

TEST(EventQueue, CancelAfterTombstoneConsumedIsNoop) {
  // Regression: once run_all() consumed the tombstone, a second cancel of
  // the same id passed the tombstone-presence guard and double-decremented
  // the pending count.
  EventQueue q;
  const auto id = q.schedule_at(TimeUs{10}, [] { FAIL(); });
  q.cancel(id);
  q.run_all();  // consumes the tombstone
  q.cancel(id);  // must be a no-op
  q.cancel(id);
  EXPECT_EQ(q.pending(), 0u);
  bool fired = false;
  q.schedule_at(TimeUs{30}, [&] { fired = true; });
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
  q.run_all();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingTracksLiveEventsOnly) {
  EventQueue q;
  const auto a = q.schedule_at(TimeUs{10}, [] {});
  const auto b = q.schedule_at(TimeUs{20}, [] {});
  q.schedule_at(TimeUs{30}, [] {});
  EXPECT_EQ(q.pending(), 3u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);  // repeat: no effect
  EXPECT_EQ(q.pending(), 2u);
  q.run_until(TimeUs{20});
  EXPECT_EQ(q.pending(), 1u);
  q.cancel(b);  // already fired: no effect
  EXPECT_EQ(q.pending(), 1u);
  q.run_all();
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
}  // namespace wb::sim
