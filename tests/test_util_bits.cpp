#include "util/bits.h"

#include <gtest/gtest.h>

namespace wb {
namespace {

TEST(Bits, PackUnpackRoundtripBytes) {
  const std::vector<std::uint8_t> bytes = {0xDE, 0xAD, 0xBE, 0xEF, 0x00,
                                           0xFF};
  EXPECT_EQ(pack_bits(unpack_bits(bytes)), bytes);
}

TEST(Bits, UnpackBitsMsbFirst) {
  const std::vector<std::uint8_t> bytes = {0b10110000};
  const BitVec expected = {1, 0, 1, 1, 0, 0, 0, 0};
  EXPECT_EQ(unpack_bits(bytes), expected);
}

TEST(Bits, PackBitsPadsFinalByte) {
  const BitVec bits = {1, 1, 1};  // -> 0b11100000
  const auto packed = pack_bits(bits);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0xE0);
}

TEST(Bits, PackBitsEmpty) {
  EXPECT_TRUE(pack_bits(BitVec{}).empty());
  EXPECT_TRUE(unpack_bits(std::vector<std::uint8_t>{}).empty());
}

TEST(Bits, UnpackUintMsbFirst) {
  const BitVec expected = {1, 0, 1, 0};
  EXPECT_EQ(unpack_uint(0b1010, 4), expected);
}

TEST(Bits, PackUintInverse) {
  for (std::uint64_t v : {0ull, 1ull, 0x42ull, 0xFFFFull, 0xDEADBEEFull}) {
    EXPECT_EQ(pack_uint(unpack_uint(v, 40)), v) << v;
  }
}

TEST(Bits, PackUintOfEmptyIsZero) {
  EXPECT_EQ(pack_uint(BitVec{}), 0u);
}

TEST(Bits, HammingDistanceEqual) {
  const BitVec a = {1, 0, 1, 1};
  EXPECT_EQ(hamming_distance(a, a), 0u);
}

TEST(Bits, HammingDistanceCountsFlips) {
  const BitVec a = {1, 0, 1, 1};
  const BitVec b = {0, 0, 1, 0};
  EXPECT_EQ(hamming_distance(a, b), 2u);
}

TEST(Bits, HammingDistanceLengthMismatchCountsTail) {
  const BitVec a = {1, 0};
  const BitVec b = {1, 0, 1, 1, 0};
  EXPECT_EQ(hamming_distance(a, b), 3u);
  EXPECT_EQ(hamming_distance(b, a), 3u);
}

TEST(Bits, StringRoundtrip) {
  const std::string s = "1011001";
  EXPECT_EQ(bits_to_string(bits_from_string(s)), s);
}

TEST(Bits, StringIgnoresSeparators) {
  EXPECT_EQ(bits_from_string("10 11-0x1"), bits_from_string("101101"));
}

TEST(Bits, RepeatBits) {
  const BitVec in = {1, 0};
  const BitVec expected = {1, 1, 1, 0, 0, 0};
  EXPECT_EQ(repeat_bits(in, 3), expected);
}

TEST(Bits, RepeatByZeroGivesEmpty) {
  const BitVec in = {1, 0, 1};
  EXPECT_TRUE(repeat_bits(in, 0).empty());
}

TEST(Bits, RandomBitsDeterministic) {
  EXPECT_EQ(random_bits(256, 7), random_bits(256, 7));
  EXPECT_NE(random_bits(256, 7), random_bits(256, 8));
}

TEST(Bits, RandomBitsBalanced) {
  const auto bits = random_bits(10'000, 3);
  std::size_t ones = 0;
  for (auto b : bits) ones += b;
  EXPECT_NEAR(static_cast<double>(ones), 5'000.0, 300.0);
}

TEST(Bits, IsBinary) {
  EXPECT_TRUE(is_binary(BitVec{0, 1, 1, 0}));
  EXPECT_FALSE(is_binary(BitVec{0, 2}));
  EXPECT_TRUE(is_binary(BitVec{}));
}

class BitsRoundtrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsRoundtrip, UnpackPackUintAllWidths) {
  const std::size_t width = GetParam();
  const std::uint64_t v =
      0xA5A5A5A5A5A5A5A5ull & ((width == 64) ? ~0ull : ((1ull << width) - 1));
  EXPECT_EQ(pack_uint(unpack_uint(v, width)), v);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitsRoundtrip,
                         ::testing::Values(1, 2, 7, 8, 13, 16, 24, 32, 48,
                                           63, 64));

}  // namespace
}  // namespace wb
