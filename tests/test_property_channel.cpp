// Parameterised property sweeps over the PHY substrate: invariants that
// must hold for any seed and across the parameter ranges the experiments
// exercise.
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "phy/multi_tag_channel.h"
#include "phy/multipath.h"
#include "phy/uplink_channel.h"
#include "wifi/link_sim.h"
#include "wifi/nic.h"

namespace wb {
namespace {

class ChannelSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelSeedSweep, ResponsesAreFiniteAndPositivePower) {
  sim::RngStream rng(GetParam());
  phy::UplinkChannelParams p;
  p.tag_pos = {0.05 + 0.1 * static_cast<double>(GetParam() % 7), 0.0};
  p.helper_pos = {p.tag_pos.x + 3.0, 0.0};
  phy::UplinkChannel ch(p, rng);
  for (bool state : {false, true}) {
    const auto h = ch.response(state, static_cast<TimeUs>(GetParam()) * 10);
    double power = 0.0;
    for (const auto& ant : h) {
      for (const auto& c : ant) {
        ASSERT_TRUE(std::isfinite(c.real()) && std::isfinite(c.imag()));
        power += std::norm(c);
      }
    }
    EXPECT_GT(power, 0.0);
  }
}

TEST_P(ChannelSeedSweep, DeltaNeverExceedsPlausibleBound) {
  // The backscatter perturbation can never out-power the direct path by a
  // large factor (it is a second-order reflection).
  sim::RngStream rng(GetParam());
  phy::UplinkChannelParams p;
  p.tag_pos = {0.05, 0.0};
  p.helper_pos = {3.05, 0.0};
  phy::UplinkChannel ch(p, rng);
  double p_direct = 0.0, p_delta = 0.0;
  for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
    for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
      p_direct += std::norm(ch.direct()[a][s]);
      p_delta += std::norm(ch.delta()[a][s]);
    }
  }
  EXPECT_LT(p_delta, p_direct);
}

TEST_P(ChannelSeedSweep, MultiTagMatchesSingleTagForOneTag) {
  // A MultiTagUplinkChannel with one tag and an UplinkChannel share the
  // same structure: same decay behaviour, same relative magnitudes.
  sim::RngStream rng(GetParam());
  phy::UplinkChannelParams base;
  base.tag_pos = {0.3, 0.0};
  base.helper_pos = {3.3, 0.0};
  const std::vector<phy::TagPlacement> tags = {{base.tag_pos, {}}};
  phy::MultiTagUplinkChannel multi(base, tags, rng);
  double p_direct = 0.0, p_delta = 0.0;
  for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
    for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
      p_direct += std::norm(multi.direct()[a][s]);
      p_delta += std::norm(multi.delta(0)[a][s]);
    }
  }
  EXPECT_GT(p_direct, 0.0);
  EXPECT_GT(p_delta, 0.0);
  EXPECT_LT(p_delta, p_direct);
}

TEST_P(ChannelSeedSweep, NicMeasurementsBounded) {
  sim::RngStream rng(GetParam());
  phy::UplinkChannelParams p;
  p.tag_pos = {0.2, 0.0};
  p.helper_pos = {3.2, 0.0};
  phy::UplinkChannel ch(p, rng.fork("ch"));
  wifi::NicModel nic(wifi::NicModelParams{}, rng.fork("nic"));
  nic.calibrate(ch.response(false, TimeUs{}));
  for (int i = 0; i < 50; ++i) {
    const auto rec =
        nic.measure(ch.response(i % 2 == 0, TimeUs{i * 500}),
                    TimeUs{i * 500}, 1, wifi::FrameKind::kData);
    for (const auto& ant : rec.csi) {
      for (double v : ant) {
        ASSERT_TRUE(std::isfinite(v));
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1'000.0);
      }
    }
    for (double r : rec.rssi_dbm) {
      ASSERT_GT(r, -120.0);
      ASSERT_LT(r, 30.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 15));

class LinkSnrSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinkSnrSweep, ThroughputAndPerWellFormed) {
  wifi::LinkSimConfig cfg;
  cfg.base_snr_db = Db{static_cast<double>(GetParam())};
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  const auto r = wifi::run_link_sim(cfg, 2 * kMicrosPerSec);
  EXPECT_GE(r.per, 0.0);
  EXPECT_LE(r.per, 1.0);
  EXPECT_GE(r.mean_throughput_mbps, 0.0);
  // Rate adaptation never reports a rate outside the 802.11g set.
  EXPECT_GE(r.mean_rate_mbps, 6.0);
  EXPECT_LE(r.mean_rate_mbps, 54.0);
}

INSTANTIATE_TEST_SUITE_P(SnrRange, LinkSnrSweep,
                         ::testing::Values(0, 5, 10, 15, 20, 25, 30, 40));

class DelaySpreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(DelaySpreadSweep, ResponseUnitPowerAcrossProfiles) {
  phy::MultipathProfile p;
  p.delay_spread_s = static_cast<double>(GetParam()) * 1e-9;
  sim::RngStream rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 10; ++i) {
    const auto h = phy::draw_frequency_response(p, rng);
    EXPECT_NEAR(phy::average_power(h), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Spreads, DelaySpreadSweep,
                         ::testing::Values(5, 20, 50, 70, 150, 300));

}  // namespace
}  // namespace wb
