#include "reader/conditioning.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "util/dsp.h"

namespace wb::reader {
namespace {

wifi::CaptureRecord record_at(TimeUs t, double csi, double rssi,
                              bool has_csi = true) {
  wifi::CaptureRecord r;
  r.timestamp_us = t;
  r.has_csi = has_csi;
  for (auto& ant : r.csi) ant.fill(csi);
  r.rssi_dbm.fill(rssi);
  return r;
}

TEST(Conditioning, RemovesConstantOffset) {
  std::vector<TimeUs> ts;
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    ts.push_back(TimeUs{i * 1'000});
    xs.push_back(5.0);
  }
  const auto y = remove_time_moving_average(ts, xs, TimeUs{20'000});
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Conditioning, CenteredWindowHasNoBaselineCreep) {
  // Regression test for the trailing-window bug: a square wave whose
  // recent history is imbalanced (long run of ones) must keep the correct
  // sign on every bit. With a trailing window, bits after the long run
  // flipped sign.
  std::vector<TimeUs> ts;
  std::vector<double> xs;
  // Pattern: ...101010 111111111 0 1...  each "bit" = 10 samples.
  const std::string pattern = "10101010111111111010";
  int k = 0;
  for (char c : pattern) {
    for (int i = 0; i < 10; ++i, ++k) {
      ts.push_back(TimeUs{k * 300});
      xs.push_back(c == '1' ? 1.0 : 0.0);
    }
  }
  const auto y = remove_time_moving_average(ts, xs, TimeUs{30'000});  // 100 samples
  // Check the '0' bit right after the run of ones (samples 170-179) is
  // negative and the '1' bit after it positive.
  for (int i = 172; i < 178; ++i) EXPECT_LT(y[i], 0.0) << i;
  for (int i = 182; i < 188; ++i) EXPECT_GT(y[i], 0.0) << i;
}

TEST(Conditioning, TracksSlowDrift) {
  // A linear ramp (drift) is strongly suppressed.
  std::vector<TimeUs> ts;
  std::vector<double> xs;
  for (int i = 0; i < 1'000; ++i) {
    ts.push_back(TimeUs{i * 1'000});
    xs.push_back(0.01 * i);
  }
  const auto y = remove_time_moving_average(ts, xs, TimeUs{50'000});
  for (std::size_t i = 100; i + 100 < y.size(); ++i) {
    EXPECT_NEAR(y[i], 0.0, 0.05);
  }
}

TEST(Conditioning, HandlesIrregularTimestamps) {
  std::vector<TimeUs> ts = {TimeUs{0}, TimeUs{1'000}, TimeUs{50'000},
                            TimeUs{51'000}, TimeUs{200'000}};
  std::vector<double> xs = {1.0, 1.0, 1.0, 1.0, 1.0};
  const auto y = remove_time_moving_average(ts, xs, TimeUs{10'000});
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Conditioning, CsiTraceShapes) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 50; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0 + (i % 2), -40.0));
  }
  const auto ct = condition(trace, MeasurementSource::kCsi, TimeUs{20'000});
  EXPECT_EQ(ct.num_streams(), wifi::kNumCsiStreams);
  EXPECT_EQ(ct.num_packets(), 50u);
  for (const auto& s : ct.streams) {
    EXPECT_EQ(s.size(), 50u);
  }
}

TEST(Conditioning, RssiTraceHasAntennaStreams) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 50; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0, -40.0 - (i % 2)));
  }
  const auto ct = condition(trace, MeasurementSource::kRssi, TimeUs{20'000});
  EXPECT_EQ(ct.num_streams(), phy::kNumAntennas);
}

TEST(Conditioning, CsiSkipsRecordsWithoutCsi) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0, -40.0, i % 2 == 0));
  }
  const auto ct = condition(trace, MeasurementSource::kCsi, TimeUs{20'000});
  EXPECT_EQ(ct.num_packets(), 10u);
}

TEST(Conditioning, RssiKeepsAllRecords) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0, -40.0, i % 2 == 0));
  }
  const auto ct = condition(trace, MeasurementSource::kRssi, TimeUs{20'000});
  EXPECT_EQ(ct.num_packets(), 20u);
}

TEST(Conditioning, NormalisedToUnitMeanAbs) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 200; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0 + 0.5 * (i % 2), -40.0));
  }
  const auto ct = condition(trace, MeasurementSource::kCsi, TimeUs{20'000});
  double mad = 0.0;
  for (double v : ct.streams[0]) mad += std::abs(v);
  mad /= static_cast<double>(ct.streams[0].size());
  EXPECT_NEAR(mad, 1.0, 1e-9);
}

TEST(Conditioning, SquareWaveMapsNearPlusMinusOne) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 400; ++i) {
    const double bit = (i / 10) % 2 ? 1.0 : 0.0;
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0 + bit, -40.0));
  }
  const auto ct = condition(trace, MeasurementSource::kCsi, TimeUs{100'000});
  // Interior samples should sit near +1 / -1 (paper §3.2's target).
  for (std::size_t i = 100; i < 300; ++i) {
    EXPECT_NEAR(std::abs(ct.streams[0][i]), 1.0, 0.25) << i;
  }
}

TEST(Conditioning, EmptyTrace) {
  const auto ct = condition({}, MeasurementSource::kCsi, TimeUs{20'000});
  EXPECT_EQ(ct.num_packets(), 0u);
  EXPECT_EQ(ct.num_streams(), wifi::kNumCsiStreams);
}

}  // namespace
}  // namespace wb::reader
