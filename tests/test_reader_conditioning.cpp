#include "reader/conditioning.h"

#include <cmath>
#include <span>

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "util/check.h"
#include "util/dsp.h"

namespace wb::reader {
namespace {

wifi::CaptureRecord record_at(TimeUs t, double csi, double rssi,
                              bool has_csi = true) {
  wifi::CaptureRecord r;
  r.timestamp_us = t;
  r.has_csi = has_csi;
  for (auto& ant : r.csi) ant.fill(csi);
  r.rssi_dbm.fill(rssi);
  return r;
}

TEST(Conditioning, RemovesConstantOffset) {
  std::vector<TimeUs> ts;
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    ts.push_back(TimeUs{i * 1'000});
    xs.push_back(5.0);
  }
  const auto y = remove_time_moving_average(ts, xs, TimeUs{20'000});
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Conditioning, CenteredWindowHasNoBaselineCreep) {
  // Regression test for the trailing-window bug: a square wave whose
  // recent history is imbalanced (long run of ones) must keep the correct
  // sign on every bit. With a trailing window, bits after the long run
  // flipped sign.
  std::vector<TimeUs> ts;
  std::vector<double> xs;
  // Pattern: ...101010 111111111 0 1...  each "bit" = 10 samples.
  const std::string pattern = "10101010111111111010";
  int k = 0;
  for (char c : pattern) {
    for (int i = 0; i < 10; ++i, ++k) {
      ts.push_back(TimeUs{k * 300});
      xs.push_back(c == '1' ? 1.0 : 0.0);
    }
  }
  const auto y = remove_time_moving_average(ts, xs, TimeUs{30'000});  // 100 samples
  // Check the '0' bit right after the run of ones (samples 170-179) is
  // negative and the '1' bit after it positive.
  for (int i = 172; i < 178; ++i) EXPECT_LT(y[i], 0.0) << i;
  for (int i = 182; i < 188; ++i) EXPECT_GT(y[i], 0.0) << i;
}

TEST(Conditioning, TracksSlowDrift) {
  // A linear ramp (drift) is strongly suppressed.
  std::vector<TimeUs> ts;
  std::vector<double> xs;
  for (int i = 0; i < 1'000; ++i) {
    ts.push_back(TimeUs{i * 1'000});
    xs.push_back(0.01 * i);
  }
  const auto y = remove_time_moving_average(ts, xs, TimeUs{50'000});
  for (std::size_t i = 100; i + 100 < y.size(); ++i) {
    EXPECT_NEAR(y[i], 0.0, 0.05);
  }
}

TEST(Conditioning, HandlesIrregularTimestamps) {
  std::vector<TimeUs> ts = {TimeUs{0}, TimeUs{1'000}, TimeUs{50'000},
                            TimeUs{51'000}, TimeUs{200'000}};
  std::vector<double> xs = {1.0, 1.0, 1.0, 1.0, 1.0};
  const auto y = remove_time_moving_average(ts, xs, TimeUs{10'000});
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Conditioning, CsiTraceShapes) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 50; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0 + (i % 2), -40.0));
  }
  const auto ct = condition(trace, MeasurementSource::kCsi, TimeUs{20'000});
  EXPECT_EQ(ct.num_streams(), wifi::kNumCsiStreams);
  EXPECT_EQ(ct.num_packets(), 50u);
  for (const auto& s : ct.streams) {
    EXPECT_EQ(s.size(), 50u);
  }
}

TEST(Conditioning, RssiTraceHasAntennaStreams) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 50; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0, -40.0 - (i % 2)));
  }
  const auto ct = condition(trace, MeasurementSource::kRssi, TimeUs{20'000});
  EXPECT_EQ(ct.num_streams(), phy::kNumAntennas);
}

TEST(Conditioning, CsiSkipsRecordsWithoutCsi) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0, -40.0, i % 2 == 0));
  }
  const auto ct = condition(trace, MeasurementSource::kCsi, TimeUs{20'000});
  EXPECT_EQ(ct.num_packets(), 10u);
}

TEST(Conditioning, RssiKeepsAllRecords) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0, -40.0, i % 2 == 0));
  }
  const auto ct = condition(trace, MeasurementSource::kRssi, TimeUs{20'000});
  EXPECT_EQ(ct.num_packets(), 20u);
}

TEST(Conditioning, NormalisedToUnitMeanAbs) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 200; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0 + 0.5 * (i % 2), -40.0));
  }
  const auto ct = condition(trace, MeasurementSource::kCsi, TimeUs{20'000});
  double mad = 0.0;
  for (double v : ct.streams[0]) mad += std::abs(v);
  mad /= static_cast<double>(ct.streams[0].size());
  EXPECT_NEAR(mad, 1.0, 1e-9);
}

TEST(Conditioning, SquareWaveMapsNearPlusMinusOne) {
  wifi::CaptureTrace trace;
  for (int i = 0; i < 400; ++i) {
    const double bit = (i / 10) % 2 ? 1.0 : 0.0;
    trace.push_back(record_at(TimeUs{i * 1'000}, 4.0 + bit, -40.0));
  }
  const auto ct = condition(trace, MeasurementSource::kCsi, TimeUs{100'000});
  // Interior samples should sit near +1 / -1 (paper §3.2's target).
  for (std::size_t i = 100; i < 300; ++i) {
    EXPECT_NEAR(std::abs(ct.streams[0][i]), 1.0, 0.25) << i;
  }
}

TEST(Conditioning, EmptyTrace) {
  const auto ct = condition({}, MeasurementSource::kCsi, TimeUs{20'000});
  EXPECT_EQ(ct.num_packets(), 0u);
  EXPECT_EQ(ct.num_streams(), wifi::kNumCsiStreams);
}

// -- stream-batched kernels (DESIGN.md §15) -----------------------------

/// Irregular but sorted timestamps so the window cursors actually move.
std::vector<TimeUs> make_ts(std::size_t n) {
  std::vector<TimeUs> ts(n);
  std::int64_t t = 0;
  for (std::size_t k = 0; k < n; ++k) {
    t += 200 + 150 * static_cast<std::int64_t>(k % 7);
    ts[k] = TimeUs{t};
  }
  return ts;
}

std::vector<double> make_matrix(std::size_t n, std::size_t stride) {
  std::vector<double> rows(n * stride);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t c = 0; c + 1 < stride; ++c) {
      rows[k * stride + c] =
          std::sin(0.23 * static_cast<double>(k * stride + c)) +
          0.05 * static_cast<double>(c);
    }
    rows[k * stride + stride - 1] = 0.0;  // padding column
  }
  return rows;
}

TEST(Conditioning, RowsMovingAverageMatchesPerColumnSpanKernel) {
  const std::size_t stride = 8;
  const TimeUs w{2'000};
  // Lengths around the pack width cover the pack loop, the scalar
  // remainder, and the degenerate single-row matrix.
  for (const std::size_t n : {std::size_t{1}, std::size_t{5},
                              std::size_t{37}}) {
    const auto ts = make_ts(n);
    const auto rows = make_matrix(n, stride);
    std::vector<double> out(rows.size(), -99.0), sums(stride);
    remove_time_moving_average_rows(ts, rows, stride, w, sums, out);
    for (std::size_t c = 0; c < stride; ++c) {
      std::vector<double> col(n), want(n);
      for (std::size_t k = 0; k < n; ++k) col[k] = rows[k * stride + c];
      remove_time_moving_average(std::span<const TimeUs>(ts),
                                 std::span<const double>(col), w, want);
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_EQ(out[k * stride + c], want[k]) << "col " << c << " k " << k;
      }
    }
  }
}

TEST(Conditioning, FusedMadOverloadMatchesKernelSequence) {
  const std::size_t stride = 8, n = 37;
  const auto ts = make_ts(n);
  const auto rows = make_matrix(n, stride);
  const TimeUs w{2'000};

  std::vector<double> out_a(rows.size()), sums(stride), mads_seq(stride);
  remove_time_moving_average_rows(ts, rows, stride, w, sums, out_a);
  mad_rows(out_a, stride, n, mads_seq);

  std::vector<double> out_b(rows.size()), mads_fused(stride, -99.0);
  remove_time_moving_average_rows(ts, rows, stride, w, sums, out_b,
                                  mads_fused);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(mads_seq, mads_fused);
}

TEST(Conditioning, FusedMadOverloadEmptyInputYieldsSafeDivisors) {
  std::vector<double> sums(8), mads(8, -99.0);
  remove_time_moving_average_rows({}, std::span<const double>(), 8,
                                  TimeUs{2'000}, sums, std::span<double>(),
                                  mads);
  // No rows: every column is degenerate, so every divisor is the safe 1.0.
  for (double v : mads) EXPECT_EQ(v, 1.0);
}

TEST(Conditioning, SpanKernelsRejectAliasedOutputs) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  const std::size_t stride = 8, n = 5;
  const auto ts = make_ts(n);
  auto rows = make_matrix(n, stride);
  std::vector<double> sums(stride), mads(stride);

  // Span variant: the sliding window re-reads behind the cursor.
  std::vector<double> xs(n, 1.0);
  EXPECT_THROW(remove_time_moving_average(std::span<const TimeUs>(ts),
                                          std::span<const double>(xs),
                                          TimeUs{2'000},
                                          std::span<double>(xs)),
               ContractViolation);
  // Rows variant: output over the input matrix.
  EXPECT_THROW(remove_time_moving_average_rows(
                   ts, rows, stride, TimeUs{2'000}, sums,
                   std::span<double>(rows.data(), rows.size())),
               ContractViolation);
  // Fused overload: mad vector aliasing the window sums.
  std::vector<double> out(rows.size());
  EXPECT_THROW(remove_time_moving_average_rows(
                   ts, rows, stride, TimeUs{2'000}, sums, out,
                   std::span<double>(sums.data(), stride)),
               ContractViolation);
}

/// Composes the documented pipeline out of the retained scalar kernels:
/// per stream, collect -> remove_time_moving_average -> normalize_mad.
ConditionedTrace condition_scalar_reference(const wifi::CaptureTrace& trace,
                                            MeasurementSource source,
                                            TimeUs window_us) {
  ConditionedTrace out;
  const bool want_csi = source == MeasurementSource::kCsi;
  const std::size_t num_streams =
      want_csi ? wifi::kNumCsiStreams : phy::kNumAntennas;
  for (const auto& rec : trace) {
    if (want_csi && !rec.has_csi) continue;
    out.timestamps.push_back(rec.timestamp_us);
  }
  out.streams.resize(num_streams);
  std::vector<double> raw, centered;
  for (std::size_t s = 0; s < num_streams; ++s) {
    raw.clear();
    for (const auto& rec : trace) {
      if (want_csi && !rec.has_csi) continue;
      raw.push_back(want_csi ? rec.csi[s / phy::kNumSubchannels]
                                      [s % phy::kNumSubchannels]
                             : rec.rssi_dbm[s]);
    }
    centered.assign(raw.size(), 0.0);
    remove_time_moving_average(std::span<const TimeUs>(out.timestamps),
                               std::span<const double>(raw), window_us,
                               centered);
    out.streams[s].assign(raw.size(), 0.0);
    normalize_mad(centered, out.streams[s]);
  }
  return out;
}

TEST(Conditioning, BatchedPipelineBitIdenticalToScalarReference) {
  // The whole point of the stream-batched kernels: condition() must equal
  // the per-stream scalar composition EXACTLY, for CSI (with skipped
  // records) and RSSI alike.
  sim::RngStream rng(11);
  wifi::CaptureTrace trace;
  for (int i = 0; i < 300; ++i) {
    auto r = record_at(TimeUs{i * 777}, 0.0, 0.0, i % 5 != 0);
    for (auto& ant : r.csi) {
      for (auto& v : ant) v = 8.0 + rng.normal();
    }
    for (auto& v : r.rssi_dbm) v = -42.0 + rng.normal();
    trace.push_back(r);
  }
  for (const auto source :
       {MeasurementSource::kCsi, MeasurementSource::kRssi}) {
    const auto got = condition(trace, source, TimeUs{20'000});
    const auto want = condition_scalar_reference(trace, source, TimeUs{20'000});
    ASSERT_EQ(got.timestamps, want.timestamps);
    ASSERT_EQ(got.streams.size(), want.streams.size());
    for (std::size_t s = 0; s < want.streams.size(); ++s) {
      EXPECT_EQ(got.streams[s], want.streams[s]) << "stream " << s;
    }
  }
}

TEST(Conditioning, SinglePacketTrace) {
  wifi::CaptureTrace trace;
  trace.push_back(record_at(TimeUs{1'000}, 4.0, -40.0));
  const auto ct = condition(trace, MeasurementSource::kCsi, TimeUs{20'000});
  EXPECT_EQ(ct.num_packets(), 1u);
  // One sample: the moving average equals the sample, so every stream
  // conditions to exactly zero.
  for (const auto& s : ct.streams) {
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0], 0.0);
  }
}

TEST(Conditioning, AllZeroStreamsSurviveConditioning) {
  // Zero CSI and RSSI everywhere: centered is zero, the MAD divisor
  // degenerates to the safe 1.0, and the output is exact zeros (no NaNs).
  wifi::CaptureTrace trace;
  for (int i = 0; i < 40; ++i) {
    trace.push_back(record_at(TimeUs{i * 1'000}, 0.0, 0.0));
  }
  for (const auto source :
       {MeasurementSource::kCsi, MeasurementSource::kRssi}) {
    const auto ct = condition(trace, source, TimeUs{20'000});
    for (const auto& s : ct.streams) {
      for (double v : s) EXPECT_EQ(v, 0.0);
    }
  }
}

}  // namespace
}  // namespace wb::reader
