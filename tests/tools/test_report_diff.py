#!/usr/bin/env python3
"""Tests for tools/wb_report_diff.py (registered in ctest as
`tools_report_diff`). Drives the real CLI via subprocess, the same way
check.sh and CI call it."""
from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
TOOL = REPO / "tools" / "wb_report_diff.py"


def report(counters=None, gauges=None, histograms=None, rows=None,
           meta=None) -> dict:
    return {
        "meta": meta or {"tool": "t"},
        "rows": rows or [],
        "metrics": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        },
    }


class ReportDiffTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def run_diff(self, base: dict, cur: dict, *extra: str):
        bpath = self.tmp / "base.json"
        cpath = self.tmp / "cur.json"
        bpath.write_text(json.dumps(base))
        cpath.write_text(json.dumps(cur))
        return subprocess.run(
            [sys.executable, str(TOOL), str(bpath), str(cpath), *extra],
            capture_output=True, text=True)

    def test_identical_reports_exit_zero(self):
        doc = report(counters={"a.b_total": 3})
        p = self.run_diff(doc, doc)
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("identical", p.stdout)

    def test_changed_counter_is_reported_but_not_fatal(self):
        p = self.run_diff(report(counters={"a.b_total": 3}),
                          report(counters={"a.b_total": 6}))
        self.assertEqual(p.returncode, 0)
        self.assertIn("a.b_total: 3 -> 6", p.stdout)
        self.assertIn("+100.00%", p.stdout)

    def test_injected_metric_regression_fails_gate(self):
        # The acceptance-criteria case: a gated metric regresses -> exit 1.
        p = self.run_diff(
            report(histograms={"reader.uplink.decode_wall_us": {
                "count": 10, "p99": 100.0}}),
            report(histograms={"reader.uplink.decode_wall_us": {
                "count": 10, "p99": 120.0}}),
            "--max-rel-increase", "reader.*.decode_wall_us:p99=5")
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("GATE", p.stdout)
        self.assertIn("decode_wall_us:p99", p.stdout)

    def test_increase_within_gate_passes(self):
        p = self.run_diff(
            report(histograms={"x.wall_us": {"p99": 100.0}}),
            report(histograms={"x.wall_us": {"p99": 103.0}}),
            "--max-rel-increase", "x.wall_us:p99=5")
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)

    def test_decrease_never_breaches_gate(self):
        p = self.run_diff(
            report(counters={"x_total": 10}),
            report(counters={"x_total": 2}),
            "--max-rel-increase", "x_total=0")
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)

    def test_rise_from_zero_baseline_breaches_gate(self):
        p = self.run_diff(
            report(counters={"x_total": 0}),
            report(counters={"x_total": 1}),
            "--max-rel-increase", "x_total=50")
        self.assertEqual(p.returncode, 1)

    def test_new_drop_reason_always_printed(self):
        p = self.run_diff(
            report(counters={"forensics.reader_uplink.low_snr_total": 0}),
            report(counters={"forensics.reader_uplink.low_snr_total": 4}),
            "--quiet")
        self.assertEqual(p.returncode, 0)  # informational without the gate
        self.assertIn("drop-reason NEW: "
                      "forensics.reader_uplink.low_snr_total = 4", p.stdout)

    def test_fail_on_new_drop_reasons_gates(self):
        p = self.run_diff(
            report(),
            report(counters={"forensics.reader_uplink.clipped_total": 2}),
            "--fail-on-new-drop-reasons")
        self.assertEqual(p.returncode, 1)
        self.assertIn("GATE new-drop-reasons", p.stdout)

    def test_vanished_drop_reason_printed(self):
        p = self.run_diff(
            report(counters={"forensics.wifi_mac.collision_total": 7}),
            report(counters={"forensics.wifi_mac.collision_total": 0}))
        self.assertEqual(p.returncode, 0)
        self.assertIn("drop-reason GONE", p.stdout)

    def test_meta_and_row_deltas_reported(self):
        p = self.run_diff(
            report(meta={"mode": "sweep"},
                   rows=[{"row": "grid_point", "ber": 0.01}]),
            report(meta={"mode": "sweep", "quick": True},
                   rows=[{"row": "grid_point", "ber": 0.02}]))
        self.assertEqual(p.returncode, 0)
        self.assertIn("meta: 'quick' appeared", p.stdout)
        self.assertIn("ber: 0.01 -> 0.02", p.stdout)

    def test_malformed_input_exits_two(self):
        bad = self.tmp / "bad.json"
        bad.write_text("{not json")
        ok = self.tmp / "ok.json"
        ok.write_text(json.dumps(report()))
        p = subprocess.run(
            [sys.executable, str(TOOL), str(bad), str(ok)],
            capture_output=True, text=True)
        self.assertEqual(p.returncode, 2)

    def test_bad_gate_spec_exits_two(self):
        p = self.run_diff(report(), report(),
                          "--max-rel-increase", "no-equals-sign")
        self.assertEqual(p.returncode, 2)


if __name__ == "__main__":
    unittest.main()
