#include "tag/energy_detector.h"

#include <gtest/gtest.h>

#include "phy/ofdm_envelope.h"
#include "util/units.h"

namespace wb::tag {
namespace {

EnergyDetectorParams quiet_params() {
  EnergyDetectorParams p;
  p.noise_floor_dbm = Dbm{-90.0};  // essentially noiseless for unit tests
  return p;
}

/// Feed constant power for `us` microseconds at 1 us steps.
bool feed(EnergyDetector& det, double us, Milliwatts power_mw) {
  bool level = det.comparator();
  for (double t = 0.0; t < us; t += 1.0) {
    level = det.step(1.0, power_mw);
  }
  return level;
}

TEST(EnergyDetector, ComparatorRisesOnStrongSignal) {
  sim::RngStream rng(1);
  EnergyDetector det(quiet_params(), rng);
  EXPECT_FALSE(det.comparator());
  EXPECT_TRUE(feed(det, 100.0, Milliwatts{dbm_to_mw(-20.0)}));
}

TEST(EnergyDetector, ComparatorFallsInSilence) {
  sim::RngStream rng(2);
  EnergyDetector det(quiet_params(), rng);
  feed(det, 100.0, Milliwatts{dbm_to_mw(-20.0)});
  EXPECT_FALSE(feed(det, 60.0, Milliwatts{0.0}));
}

TEST(EnergyDetector, ThresholdIsHalfPeak) {
  sim::RngStream rng(3);
  EnergyDetector det(quiet_params(), rng);
  feed(det, 200.0, Milliwatts{1.0});
  EXPECT_NEAR(det.threshold(), det.peak() / 2.0, 1e-9);
}

TEST(EnergyDetector, PeakTracksSignalLevel) {
  sim::RngStream rng(4);
  EnergyDetector det(quiet_params(), rng);
  feed(det, 300.0, Milliwatts{2.0});
  EXPECT_NEAR(det.peak(), 2.0, 0.2);
}

TEST(EnergyDetector, PeakDecaysOverTime) {
  sim::RngStream rng(5);
  EnergyDetectorParams p = quiet_params();
  p.peak_decay_tau_us = 1'000.0;
  EnergyDetector det(p, rng);
  feed(det, 200.0, Milliwatts{1.0});
  const double before = det.peak();
  det.idle(2'000.0);
  EXPECT_LT(det.peak(), before * 0.3);  // 2 time constants
}

TEST(EnergyDetector, Detects50usPacket) {
  // The headline circuit capability (§4.2): a 50 us packet at a healthy
  // power toggles the comparator on and back off.
  sim::RngStream rng(6);
  EnergyDetector det(quiet_params(), rng);
  // Charge the peak reference with a preamble-like burst first.
  feed(det, 100.0, Milliwatts{dbm_to_mw(-20.0)});
  feed(det, 100.0, Milliwatts{0.0});
  EXPECT_FALSE(det.comparator());
  EXPECT_TRUE(feed(det, 50.0, Milliwatts{dbm_to_mw(-20.0)}));
  EXPECT_FALSE(feed(det, 50.0, Milliwatts{0.0}));
}

TEST(EnergyDetector, PacketBelowNoiseFloorIsIndistinguishable) {
  // -60 dBm is 22 dB below the detector's noise: the comparator output
  // must not track a packet on/off pattern at that level, while a strong
  // pattern is tracked faithfully.
  auto agreement = [](double power_dbm) {
    EnergyDetectorParams p;
    p.noise_floor_dbm = Dbm{-37.5};
    sim::RngStream rng(7);
    EnergyDetector det(p, rng);
    int agree = 0, total = 0;
    bool level = false;
    for (int slot = 0; slot < 200; ++slot) {
      const bool on = slot % 2 == 0;
      for (int t = 0; t < 50; ++t) {
        level = det.step(1.0, Milliwatts{on ? dbm_to_mw(power_dbm) : 0.0});
      }
      // Sample at slot end (settled).
      if (level == on) ++agree;
      ++total;
    }
    return static_cast<double>(agree) / total;
  };
  EXPECT_GT(agreement(-20.0), 0.9);
  EXPECT_LT(agreement(-60.0), 0.75);
}

TEST(EnergyDetector, HysteresisSuppressesChatter) {
  // Input dithering right at the threshold must not toggle the comparator
  // every sample.
  sim::RngStream rng(8);
  EnergyDetectorParams p = quiet_params();
  EnergyDetector det(p, rng);
  feed(det, 200.0, Milliwatts{1.0});
  const double th = det.threshold();
  int transitions = 0;
  bool level = det.comparator();
  sim::RngStream jitter(9);
  for (int i = 0; i < 2'000; ++i) {
    const bool nl = det.step(1.0,
                             Milliwatts{th * (1.0 + 0.02 * jitter.normal())});
    if (nl != level) ++transitions;
    level = nl;
  }
  EXPECT_LT(transitions, 100);
}

TEST(EnergyDetector, IdleMatchesExplicitZeroSteps) {
  sim::RngStream rng_a(10), rng_b(10);
  EnergyDetector a(quiet_params(), rng_a);
  EnergyDetector b(quiet_params(), rng_b);
  feed(a, 100.0, Milliwatts{1.0});
  feed(b, 100.0, Milliwatts{1.0});
  a.idle(400.0);
  for (double t = 0.0; t < 400.0; t += 20.0) {
    b.step(20.0, Milliwatts{});
  }
  EXPECT_NEAR(a.peak(), b.peak(), 1e-6);
  EXPECT_EQ(a.comparator(), b.comparator());
}

TEST(EnergyDetector, EnergyAccountingAtQuiescentDraw) {
  sim::RngStream rng(11);
  EnergyDetector det(quiet_params(), rng);
  feed(det, 1'000.0, Milliwatts{0.5});  // 1 ms
  // 1 uW for 1 ms = 1e-3 uJ.
  EXPECT_NEAR(det.energy_uj(), 1e-3, 1e-5);
}

TEST(EnergyDetector, ResetClearsState) {
  sim::RngStream rng(12);
  EnergyDetector det(quiet_params(), rng);
  feed(det, 200.0, Milliwatts{1.0});
  det.reset();
  EXPECT_FALSE(det.comparator());
  EXPECT_DOUBLE_EQ(det.peak(), 0.0);
  EXPECT_DOUBLE_EQ(det.smoothed(), 0.0);
}

TEST(EnergyDetector, SlowRiseDelaysShortPackets) {
  // With a long smoothing constant the comparator's rise on a 50 us packet
  // comes later than with a short one — the mechanism behind the paper's
  // rate-range tradeoff (Fig 17).
  auto rise_time = [](double tau) {
    sim::RngStream rng(13);
    EnergyDetectorParams p = quiet_params();
    p.smooth_tau_us = tau;
    EnergyDetector det(p, rng);
    feed(det, 150.0, Milliwatts{1.0});  // charge peak
    feed(det, 150.0, Milliwatts{0.0});
    double t = 0.0;
    while (t < 100.0 && !det.step(1.0, Milliwatts{1.0})) t += 1.0;
    return t;
  };
  EXPECT_LT(rise_time(5.0), rise_time(25.0));
}

TEST(OfdmEnvelope, RawSamplesAreExponential) {
  sim::RngStream rng(14);
  double sum = 0.0;
  int above_2x = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double x = phy::draw_ofdm_raw_power_sample(Milliwatts{2.0}, rng);
    sum += x;
    if (x > 4.0) ++above_2x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
  // P(X > 2*mean) = e^-2 ~ 0.135 for exponential.
  EXPECT_NEAR(static_cast<double>(above_2x) / n, 0.135, 0.01);
}

TEST(OfdmEnvelope, BandlimitedSamplesHaveReducedVariance) {
  sim::RngStream rng(15);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double x = phy::draw_ofdm_power_sample(Milliwatts{2.0}, rng);
    EXPECT_GE(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  // Relative std 0.25 vs 1.0 for raw exponential.
  EXPECT_NEAR(std::sqrt(var) / mean, 0.25, 0.03);
}

TEST(OfdmEnvelope, PaprHelper) {
  EXPECT_NEAR(phy::papr_exceeded_with_probability(0.01), 4.6, 0.1);
}

}  // namespace
}  // namespace wb::tag
