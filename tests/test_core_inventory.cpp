#include "core/inventory.h"

#include <cmath>

#include <gtest/gtest.h>

#include "phy/multi_tag_channel.h"

namespace wb::core {
namespace {

std::vector<InventoryTag> shelf(std::size_t n) {
  std::vector<InventoryTag> tags;
  for (std::size_t i = 0; i < n; ++i) {
    InventoryTag t;
    t.address = static_cast<std::uint16_t>(0x1000 + i);
    t.placement.pos = {0.06 + 0.03 * static_cast<double>(i),
                       0.02 * static_cast<double>(i % 3)};
    tags.push_back(t);
  }
  return tags;
}

TEST(MultiTagChannel, ResponseSumsActiveDeltas) {
  phy::UplinkChannelParams base;
  base.drift.antenna_sigma = 0.0;
  base.drift.subchannel_sigma = 0.0;
  const auto tags = std::vector<phy::TagPlacement>{
      {{0.1, 0.0}, {}}, {{0.2, 0.1}, {}}};
  phy::MultiTagUplinkChannel ch(base, tags, sim::RngStream(1));
  ASSERT_EQ(ch.num_tags(), 2u);
  const auto none = ch.response(std::vector<std::uint8_t>{0, 0}, TimeUs{});
  const auto both = ch.response(std::vector<std::uint8_t>{1, 1}, TimeUs{});
  for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
    for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
      const auto expected =
          none[a][s] + ch.delta(0)[a][s] + ch.delta(1)[a][s];
      EXPECT_NEAR(std::abs(both[a][s] - expected), 0.0, 1e-12);
    }
  }
}

TEST(MultiTagChannel, CloserTagPerturbsMore) {
  phy::UplinkChannelParams base;
  const auto tags = std::vector<phy::TagPlacement>{
      {{0.08, 0.0}, {}}, {{1.2, 0.0}, {}}};
  phy::MultiTagUplinkChannel ch(base, tags, sim::RngStream(2));
  double p_near = 0.0, p_far = 0.0;
  for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
    for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
      p_near += std::norm(ch.delta(0)[a][s]);
      p_far += std::norm(ch.delta(1)[a][s]);
    }
  }
  EXPECT_GT(p_near, 10.0 * p_far);
}

TEST(Inventory, SingleTagIdentifiedImmediately) {
  InventoryConfig cfg;
  cfg.seed = 3;
  const auto tags = shelf(1);
  const auto res = run_inventory(tags, cfg);
  EXPECT_TRUE(res.complete);
  ASSERT_EQ(res.identified.size(), 1u);
  EXPECT_EQ(res.identified[0], 0x1000);
  EXPECT_LE(res.rounds.size(), 3u);
}

TEST(Inventory, IdentifiesAllOfFourTags) {
  InventoryConfig cfg;
  cfg.seed = 4;
  const auto tags = shelf(4);
  const auto res = run_inventory(tags, cfg);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.identified.size(), 4u);
  // Each address appears exactly once.
  auto sorted = res.identified;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

/// Tags on a ring at equal distance from the reader: comparable
/// backscatter power, so simultaneous replies garble each other rather
/// than being resolved by capture.
std::vector<InventoryTag> ring(std::size_t n, double radius_m) {
  std::vector<InventoryTag> tags;
  for (std::size_t i = 0; i < n; ++i) {
    InventoryTag t;
    t.address = static_cast<std::uint16_t>(0x3000 + i);
    const double phi =
        2.0 * 3.14159265 * static_cast<double>(i) / static_cast<double>(n);
    t.placement.pos = {radius_m * std::cos(phi), radius_m * std::sin(phi)};
    tags.push_back(t);
  }
  return tags;
}

TEST(Inventory, CollisionsOccurAmongEquidistantTags) {
  InventoryConfig cfg;
  cfg.seed = 5;
  cfg.initial_q = 1;  // 2 slots for 6 comparable tags
  cfg.max_rounds = 1;
  const auto tags = ring(6, 0.15);
  const auto res = run_inventory(tags, cfg);
  ASSERT_EQ(res.rounds.size(), 1u);
  EXPECT_GT(res.rounds[0].collisions, 0u);
  EXPECT_FALSE(res.complete);
}

TEST(Inventory, CaptureResolvesUnequalTags) {
  // A tag at 6 cm dominates one at 40 cm: even a shared slot usually
  // yields the strong tag's frame (capture), so a cramped 1-slot round
  // still identifies someone.
  InventoryConfig cfg;
  cfg.seed = 6;
  cfg.initial_q = 1;
  cfg.max_rounds = 6;
  std::vector<InventoryTag> tags;
  tags.push_back({0x4001, {{0.06, 0.0}, {}}});
  tags.push_back({0x4002, {{0.40, 0.0}, {}}});
  const auto res = run_inventory(tags, cfg);
  EXPECT_TRUE(res.complete);
}

TEST(Inventory, QGrowsAfterCollisionHeavyRound) {
  InventoryConfig cfg;
  cfg.seed = 6;
  cfg.initial_q = 1;
  cfg.max_rounds = 2;
  const auto tags = ring(8, 0.15);
  const auto res = run_inventory(tags, cfg);
  ASSERT_GE(res.rounds.size(), 2u);
  EXPECT_GT(res.rounds[1].q, res.rounds[0].q);
}

TEST(Inventory, EventuallyCompletesForEightTags) {
  InventoryConfig cfg;
  cfg.seed = 7;
  cfg.initial_q = 2;
  const auto tags = shelf(8);
  const auto res = run_inventory(tags, cfg);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.identified.size(), 8u);
}

TEST(Inventory, ElapsedTimeAccumulates) {
  InventoryConfig cfg;
  cfg.seed = 8;
  const auto tags = shelf(2);
  const auto res = run_inventory(tags, cfg);
  EXPECT_GT(res.elapsed_us, TimeUs{});
  TimeUs expected{0};
  const TimeUs bit_us = TimeUs::from_us(1e6 / cfg.bit_rate_bps);
  for (const auto& r : res.rounds) {
    expected += bit_us * static_cast<std::int64_t>(r.slots * 50);
  }
  EXPECT_EQ(res.elapsed_us, expected);
}

}  // namespace
}  // namespace wb::core
