// Adding two absolute dBm powers is not physical (log-domain values do
// not superpose); combine in Milliwatts instead.
#include "util/units.h"

int main() {
  const wb::Dbm a{3.0};
  const wb::Dbm b{4.0};
#ifdef WB_COMPILE_FAIL
  const auto bad = a + b;
  (void)bad;
#endif
  (void)a;
  (void)b;
  return 0;
}
