// Time times time is not a duration. Scaling by a dimensionless count
// is fine; multiplying two TimeUs values (or scaling by a non-integral
// factor) is a compile error.
#include "util/units.h"

int main() {
  const wb::TimeUs bit{400};
#ifdef WB_COMPILE_FAIL
  const auto bad = bit * bit;
  (void)bad;
#else
  const wb::TimeUs good = bit * 8;
  (void)good;
#endif
  return 0;
}
