// Dbm - Db is still an absolute power (Dbm), not a gain (Db): the
// result type follows the operator table, not the spelling.
#include "util/units.h"

int main() {
  const wb::Dbm rx{-40.0};
  const wb::Db margin{6.0};
#ifdef WB_COMPILE_FAIL
  const wb::Db bad = rx - margin;
  (void)bad;
#else
  const wb::Dbm good = rx - margin;
  (void)good;
#endif
  return 0;
}
