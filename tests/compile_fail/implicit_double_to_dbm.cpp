// An unlabelled double never silently becomes an absolute power; the
// Dbm constructor is explicit.
#include "util/units.h"

namespace {
double measure_noise_floor() { return -91.0; }
void record(wb::Dbm level) { (void)level; }
}  // namespace

int main() {
#ifdef WB_COMPILE_FAIL
  record(measure_noise_floor());
#else
  record(wb::Dbm{measure_noise_floor()});
#endif
  return 0;
}
