// Linear milliwatts and log-domain decibels live in different domains;
// one side must be converted explicitly before they can meet.
#include "util/units.h"

int main() {
  const wb::Milliwatts p{1.0};
  const wb::Db gain{3.0};
#ifdef WB_COMPILE_FAIL
  const auto bad = p + gain;
  (void)bad;
#else
  const wb::Milliwatts good = p * gain.to_ratio();
  (void)good;
#endif
  return 0;
}
