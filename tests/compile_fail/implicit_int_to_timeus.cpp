// A raw integer of unknown unit never silently becomes simulation time;
// TimeUs construction is explicit (or via the _us/_ms/_s literals).
#include "util/units.h"

namespace {
void schedule(wb::TimeUs at) { (void)at; }
}  // namespace

int main() {
#ifdef WB_COMPILE_FAIL
  schedule(400);
#else
  schedule(wb::TimeUs{400});
#endif
  return 0;
}
