#include "tag/modulator.h"

#include <gtest/gtest.h>

namespace wb::tag {
namespace {

TEST(Modulator, StateFollowsFrameBits) {
  const BitVec frame = {1, 0, 1, 1, 0};
  Modulator mod(frame, TimeUs{100}, TimeUs{1'000});
  EXPECT_TRUE(mod.state_at(TimeUs{1'000}));
  EXPECT_TRUE(mod.state_at(TimeUs{1'099}));
  EXPECT_FALSE(mod.state_at(TimeUs{1'100}));
  EXPECT_TRUE(mod.state_at(TimeUs{1'250}));
  EXPECT_TRUE(mod.state_at(TimeUs{1'399}));
  EXPECT_FALSE(mod.state_at(TimeUs{1'450}));
}

TEST(Modulator, AbsorbingOutsideFrame) {
  const BitVec frame = {1, 1, 1};
  Modulator mod(frame, TimeUs{100}, TimeUs{1'000});
  EXPECT_FALSE(mod.state_at(TimeUs{0}));
  EXPECT_FALSE(mod.state_at(TimeUs{999}));
  EXPECT_FALSE(mod.state_at(TimeUs{1'300}));  // one past the end
  EXPECT_FALSE(mod.state_at(TimeUs{50'000}));
}

TEST(Modulator, ActiveWindow) {
  Modulator mod(BitVec{1, 0}, TimeUs{500}, TimeUs{2'000});
  EXPECT_FALSE(mod.active_at(TimeUs{1'999}));
  EXPECT_TRUE(mod.active_at(TimeUs{2'000}));
  EXPECT_TRUE(mod.active_at(TimeUs{2'999}));
  EXPECT_FALSE(mod.active_at(TimeUs{3'000}));
  EXPECT_EQ(mod.duration(), TimeUs{1'000});
  EXPECT_EQ(mod.end_time(), TimeUs{3'000});
}

TEST(Modulator, CodedModeExpandsBitsToChips) {
  const auto codes = make_orthogonal_pair(4);
  const BitVec frame = {1, 0};
  Modulator mod(frame, codes, TimeUs{10}, TimeUs{0});
  EXPECT_EQ(mod.chip_sequence().size(), 8u);
  // First 4 chips == code one, next 4 == code zero.
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(mod.chip_sequence()[c], codes.one[c]);
    EXPECT_EQ(mod.chip_sequence()[4 + c], codes.zero[c]);
  }
  EXPECT_EQ(mod.duration(), TimeUs{80});
}

TEST(Modulator, CodedStateAtChipBoundaries) {
  const auto codes = make_orthogonal_pair(4);
  Modulator mod(BitVec{1}, codes, TimeUs{10}, TimeUs{100});
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(mod.state_at(TimeUs{100} + TimeUs{10} * static_cast<std::int64_t>(c)),
              codes.one[c] != 0);
  }
}

TEST(Modulator, PlainModeChipsEqualFrame) {
  const BitVec frame = {1, 0, 1};
  Modulator mod(frame, TimeUs{10}, TimeUs{0});
  EXPECT_EQ(mod.chip_sequence(), frame);
  EXPECT_EQ(mod.frame(), frame);
}

TEST(Modulator, FrameEnergyMatchesPowerTimesTime) {
  Modulator mod(BitVec(100, 1), TimeUs{10'000}, TimeUs{0});  // 1 s on air
  // 0.65 uW for 1 s = 0.65 uJ.
  EXPECT_NEAR(mod.frame_energy_uj(), 0.65, 1e-9);
  ModulatorPower half;
  half.active_uw = 0.325;
  EXPECT_NEAR(mod.frame_energy_uj(half), 0.325, 1e-9);
}

TEST(Modulator, EmptyFrameNeverActive) {
  Modulator mod(BitVec{}, TimeUs{100}, TimeUs{0});
  EXPECT_FALSE(mod.active_at(TimeUs{0}));
  EXPECT_FALSE(mod.state_at(TimeUs{0}));
  EXPECT_EQ(mod.duration(), TimeUs{});
}

}  // namespace
}  // namespace wb::tag
