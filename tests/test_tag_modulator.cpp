#include "tag/modulator.h"

#include <gtest/gtest.h>

namespace wb::tag {
namespace {

TEST(Modulator, StateFollowsFrameBits) {
  const BitVec frame = {1, 0, 1, 1, 0};
  Modulator mod(frame, 100, 1'000);
  EXPECT_TRUE(mod.state_at(1'000));
  EXPECT_TRUE(mod.state_at(1'099));
  EXPECT_FALSE(mod.state_at(1'100));
  EXPECT_TRUE(mod.state_at(1'250));
  EXPECT_TRUE(mod.state_at(1'399));
  EXPECT_FALSE(mod.state_at(1'450));
}

TEST(Modulator, AbsorbingOutsideFrame) {
  const BitVec frame = {1, 1, 1};
  Modulator mod(frame, 100, 1'000);
  EXPECT_FALSE(mod.state_at(0));
  EXPECT_FALSE(mod.state_at(999));
  EXPECT_FALSE(mod.state_at(1'300));  // one past the end
  EXPECT_FALSE(mod.state_at(50'000));
}

TEST(Modulator, ActiveWindow) {
  Modulator mod(BitVec{1, 0}, 500, 2'000);
  EXPECT_FALSE(mod.active_at(1'999));
  EXPECT_TRUE(mod.active_at(2'000));
  EXPECT_TRUE(mod.active_at(2'999));
  EXPECT_FALSE(mod.active_at(3'000));
  EXPECT_EQ(mod.duration(), 1'000);
  EXPECT_EQ(mod.end_time(), 3'000);
}

TEST(Modulator, CodedModeExpandsBitsToChips) {
  const auto codes = make_orthogonal_pair(4);
  const BitVec frame = {1, 0};
  Modulator mod(frame, codes, 10, 0);
  EXPECT_EQ(mod.chip_sequence().size(), 8u);
  // First 4 chips == code one, next 4 == code zero.
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(mod.chip_sequence()[c], codes.one[c]);
    EXPECT_EQ(mod.chip_sequence()[4 + c], codes.zero[c]);
  }
  EXPECT_EQ(mod.duration(), 80);
}

TEST(Modulator, CodedStateAtChipBoundaries) {
  const auto codes = make_orthogonal_pair(4);
  Modulator mod(BitVec{1}, codes, 10, 100);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(mod.state_at(100 + static_cast<TimeUs>(c) * 10),
              codes.one[c] != 0);
  }
}

TEST(Modulator, PlainModeChipsEqualFrame) {
  const BitVec frame = {1, 0, 1};
  Modulator mod(frame, 10, 0);
  EXPECT_EQ(mod.chip_sequence(), frame);
  EXPECT_EQ(mod.frame(), frame);
}

TEST(Modulator, FrameEnergyMatchesPowerTimesTime) {
  Modulator mod(BitVec(100, 1), 10'000, 0);  // 1 s on air
  // 0.65 uW for 1 s = 0.65 uJ.
  EXPECT_NEAR(mod.frame_energy_uj(), 0.65, 1e-9);
  ModulatorPower half;
  half.active_uw = 0.325;
  EXPECT_NEAR(mod.frame_energy_uj(half), 0.325, 1e-9);
}

TEST(Modulator, EmptyFrameNeverActive) {
  Modulator mod(BitVec{}, 100, 0);
  EXPECT_FALSE(mod.active_at(0));
  EXPECT_FALSE(mod.state_at(0));
  EXPECT_EQ(mod.duration(), 0);
}

}  // namespace
}  // namespace wb::tag
