#include "tag/harvester.h"

#include <gtest/gtest.h>

namespace wb::tag {
namespace {

TEST(Harvester, IncidentPowerFreeSpace) {
  // +16 dBm at 1 m with 40 dB reference loss -> -24 dBm.
  EXPECT_NEAR(incident_power_dbm(Dbm{16.0}, Meters{1.0}).value(), -24.0,
              1e-9);
  // Each doubling of distance costs 6 dB.
  EXPECT_NEAR(incident_power_dbm(Dbm{16.0}, Meters{2.0}).value(), -30.0,
              0.05);
}

TEST(Harvester, HarvestedPowerScalesWithEfficiency) {
  HarvesterParams p;
  p.efficiency = 0.15;
  p.antenna_gain_db = Db{};
  Harvester h(p);
  // 0 dBm incident = 1 mW -> 150 uW at 15%.
  EXPECT_NEAR(h.harvested_uw(Dbm{}), 150.0, 1e-6);
}

TEST(Harvester, DutyCycleClampedToOne) {
  Harvester h{HarvesterParams{}};
  EXPECT_DOUBLE_EQ(h.sustainable_duty_cycle(100.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.sustainable_duty_cycle(5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(h.sustainable_duty_cycle(0.0, 10.0), 0.0);
}

TEST(Harvester, ZeroLoadAlwaysSustainable) {
  Harvester h{HarvesterParams{}};
  EXPECT_DOUBLE_EQ(h.sustainable_duty_cycle(0.0, 0.0), 1.0);
}

TEST(Harvester, PaperClaimContinuousAtOneFoot) {
  // §6: "the Wi-Fi power harvester can continuously run both the
  // transmitter and receiver from a distance of one foot".
  Harvester h{HarvesterParams{}};
  const Dbm incident = incident_power_dbm(Dbm{16.0}, Meters{0.3048});
  const double harvested = h.harvested_uw(incident);
  EXPECT_GE(h.sustainable_duty_cycle(harvested, 0.65 + 9.0), 1.0);
}

TEST(Harvester, TvAt10KmSupportsAboutHalfDuty) {
  // §6: "the full system could be powered with a duty cycle of around 50%
  // at a distance of 10 km from a TV broadcast tower" (dual-antenna).
  HarvesterParams p;
  p.antenna_gain_db = Db{8.0};
  Harvester h(p);
  const Dbm incident = tv_incident_power_dbm(Dbm{90.0}, 10.0);
  const double duty =
      h.sustainable_duty_cycle(h.harvested_uw(incident), 0.65 + 9.0 + 1.5);
  EXPECT_GT(duty, 0.01);
  EXPECT_LT(duty, 1.0);
}

TEST(Harvester, BurstFromCapacitor) {
  HarvesterParams p;
  p.storage_cap_f = 100e-6;
  p.v_high = 2.4;
  p.v_low = 1.8;
  Harvester h(p);
  // Cap energy = 0.5 * 100u * (2.4^2 - 1.8^2) = 126 uJ; at a 600 uW net
  // load the burst lasts 0.21 s.
  EXPECT_NEAR(h.burst_seconds(600.0, 0.0), 0.21, 0.01);
}

TEST(Harvester, BurstInfiniteWhenHarvestCoversLoad) {
  Harvester h{HarvesterParams{}};
  EXPECT_TRUE(std::isinf(h.burst_seconds(5.0, 10.0)));
}

TEST(Harvester, RechargeTime) {
  Harvester h{HarvesterParams{}};
  // 126 uJ swing at 2 uW net inflow ~ 63 s.
  EXPECT_NEAR(h.recharge_seconds(2.5, 0.5), 63.0, 1.0);
  EXPECT_TRUE(std::isinf(h.recharge_seconds(0.5, 0.5)));
}

TEST(Harvester, MonotoneInDistance) {
  Harvester h{HarvesterParams{}};
  double prev = 1e9;
  for (double d : {0.1, 0.3, 1.0, 3.0}) {
    const double uw =
        h.harvested_uw(incident_power_dbm(Dbm{16.0}, Meters{d}));
    EXPECT_LT(uw, prev);
    prev = uw;
  }
}

TEST(Harvester, TvIncidentFallsWithDistance) {
  EXPECT_GT(tv_incident_power_dbm(Dbm{90.0}, 1.0),
            tv_incident_power_dbm(Dbm{90.0}, 10.0));
}

}  // namespace
}  // namespace wb::tag
