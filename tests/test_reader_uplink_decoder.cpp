#include "reader/uplink_decoder.h"

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "util/check.h"
#include "util/codes.h"

namespace wb::reader {
namespace {

/// Build a synthetic conditioned trace directly: `num_streams` streams
/// observing a frame (preamble + payload) with per-stream gain/polarity
/// and additive Gaussian noise; packets arrive at a fixed rate.
struct SyntheticTrace {
  ConditionedTrace ct;
  TimeUs frame_start{0};
  BitVec payload;
};

struct SyntheticSpec {
  std::size_t num_streams = 12;
  std::size_t good_streams = 6;   ///< streams with signal (rest pure noise)
  double gain = 1.0;              ///< signal amplitude on good streams
  double noise = 0.3;
  double packet_interval_us = 500;
  TimeUs bit_us{5'000};
  std::size_t payload_bits = 24;
  TimeUs lead_us{50'000};
  bool alternate_polarity = false;  ///< invert every other good stream
  std::uint64_t seed = 1;
};

SyntheticTrace make_synthetic(const SyntheticSpec& spec) {
  SyntheticTrace out;
  out.frame_start = spec.lead_us;
  out.payload = random_bits(spec.payload_bits, spec.seed ^ 0xBEEF);
  BitVec frame = barker13();
  frame.insert(frame.end(), out.payload.begin(), out.payload.end());

  const TimeUs end =
      spec.lead_us +
      spec.bit_us * static_cast<std::int64_t>(frame.size()) + TimeUs{50'000};
  sim::RngStream rng(spec.seed);
  auto noise_rng = rng.fork("noise");

  for (double t = 0.0; t < static_cast<double>(end.ticks());
       t += spec.packet_interval_us) {
    out.ct.timestamps.push_back(TimeUs{static_cast<std::int64_t>(t)});
  }
  out.ct.streams.resize(spec.num_streams);
  for (std::size_t s = 0; s < spec.num_streams; ++s) {
    const bool good = s < spec.good_streams;
    const double polarity =
        (spec.alternate_polarity && s % 2 == 1) ? -1.0 : 1.0;
    for (const TimeUs t : out.ct.timestamps) {
      double v = noise_rng.normal(0.0, spec.noise);
      if (good && t >= out.frame_start) {
        const auto bit =
            static_cast<std::size_t>((t - out.frame_start) / spec.bit_us);
        if (bit < frame.size()) {
          v += polarity * spec.gain * (frame[bit] ? 1.0 : -1.0);
        }
      }
      out.ct.streams[s].push_back(v);
    }
  }
  return out;
}

UplinkDecoderConfig config_for(const SyntheticSpec& spec) {
  UplinkDecoderConfig cfg;
  cfg.payload_bits = spec.payload_bits;
  cfg.bit_duration_us = spec.bit_us;
  cfg.num_good_streams = spec.good_streams;
  return cfg;
}

TEST(BinSlots, MeansAndCounts) {
  ConditionedTrace ct;
  ct.timestamps = {TimeUs{0},     TimeUs{100},   TimeUs{200},
                   TimeUs{1'000}, TimeUs{1'100}, TimeUs{2'500}};
  ct.streams = {{1.0, 2.0, 3.0, 10.0, 20.0, 7.0}};
  const auto slots =
      UplinkDecoder::bin_slots(ct, 0, TimeUs{0}, TimeUs{1'000}, 3);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].count, 3u);
  EXPECT_DOUBLE_EQ(slots[0].mean, 2.0);
  EXPECT_EQ(slots[1].count, 2u);
  EXPECT_DOUBLE_EQ(slots[1].mean, 15.0);
  EXPECT_EQ(slots[2].count, 1u);
  EXPECT_DOUBLE_EQ(slots[2].mean, 7.0);
}

TEST(BinSlots, IgnoresPacketsOutsideRange) {
  ConditionedTrace ct;
  ct.timestamps = {TimeUs{-500}, TimeUs{0}, TimeUs{500}, TimeUs{5'000}};
  ct.streams = {{100.0, 1.0, 2.0, 100.0}};
  const auto slots =
      UplinkDecoder::bin_slots(ct, 0, TimeUs{0}, TimeUs{1'000}, 1);
  EXPECT_EQ(slots[0].count, 2u);
  EXPECT_DOUBLE_EQ(slots[0].mean, 1.5);
}

TEST(UplinkDecoder, PreambleCorrelationPeaksAtTrueStart) {
  SyntheticSpec spec;
  spec.noise = 0.05;
  const auto syn = make_synthetic(spec);
  UplinkDecoder dec(config_for(spec));
  const double at_true =
      dec.preamble_correlation(syn.ct, 0, syn.frame_start);
  const double off =
      dec.preamble_correlation(syn.ct, 0, syn.frame_start + 4 * spec.bit_us);
  EXPECT_GT(at_true, 0.8);
  EXPECT_GT(at_true, std::abs(off) + 0.3);
}

TEST(UplinkDecoder, CorrelationSignReflectsPolarity) {
  SyntheticSpec spec;
  spec.noise = 0.05;
  spec.alternate_polarity = true;
  const auto syn = make_synthetic(spec);
  UplinkDecoder dec(config_for(spec));
  EXPECT_GT(dec.preamble_correlation(syn.ct, 0, syn.frame_start), 0.5);
  EXPECT_LT(dec.preamble_correlation(syn.ct, 1, syn.frame_start), -0.5);
}

TEST(UplinkDecoder, CorrelationZeroWhenUnderFilled) {
  SyntheticSpec spec;
  spec.packet_interval_us = 20'000;  // one packet per 4 bits
  const auto syn = make_synthetic(spec);
  UplinkDecoder dec(config_for(spec));
  EXPECT_DOUBLE_EQ(dec.preamble_correlation(syn.ct, 0, syn.frame_start),
                   0.0);
}

TEST(UplinkDecoder, FindsFrameStart) {
  SyntheticSpec spec;
  const auto syn = make_synthetic(spec);
  UplinkDecoder dec(config_for(spec));
  const auto sync = dec.find_frame(syn.ct);
  ASSERT_TRUE(sync.has_value());
  EXPECT_NEAR(static_cast<double>(sync->start.ticks()),
              static_cast<double>(syn.frame_start.ticks()),
              static_cast<double>(spec.bit_us.ticks()) / 2.0);
}

TEST(UplinkDecoder, SelectsGoodStreams) {
  SyntheticSpec spec;
  spec.num_streams = 20;
  spec.good_streams = 5;
  const auto syn = make_synthetic(spec);
  UplinkDecoderConfig cfg = config_for(spec);
  cfg.num_good_streams = 5;
  UplinkDecoder dec(cfg);
  const auto sync = dec.find_frame(syn.ct);
  ASSERT_TRUE(sync.has_value());
  // All 5 selected streams should be among the 5 that carry signal.
  for (std::size_t s : sync->streams) {
    EXPECT_LT(s, 5u) << "noise stream selected";
  }
}

TEST(UplinkDecoder, NoiseVarianceLowForCleanStream) {
  SyntheticSpec spec;
  spec.noise = 0.1;
  const auto syn = make_synthetic(spec);
  UplinkDecoder dec(config_for(spec));
  const double clean =
      dec.preamble_noise_variance(syn.ct, 0, 1.0, syn.frame_start);
  const double noisy = dec.preamble_noise_variance(
      syn.ct, spec.num_streams - 1, 1.0, syn.frame_start);
  EXPECT_LT(clean, noisy);
  EXPECT_NEAR(clean, 0.01, 0.01);  // sigma^2 of the 0.1 noise
}

TEST(UplinkDecoder, DecodesCleanFrame) {
  SyntheticSpec spec;
  spec.noise = 0.2;
  const auto syn = make_synthetic(spec);
  UplinkDecoder dec(config_for(spec));
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.payload, syn.payload);
  EXPECT_EQ(res.payload.size(), spec.payload_bits);
}

TEST(UplinkDecoder, DecodesWithInvertedStreams) {
  SyntheticSpec spec;
  spec.noise = 0.2;
  spec.alternate_polarity = true;
  const auto syn = make_synthetic(spec);
  UplinkDecoder dec(config_for(spec));
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.payload, syn.payload);
  // Recorded polarities must differ across the selected streams.
  bool pos = false, neg = false;
  for (double p : res.polarity) {
    if (p > 0) pos = true;
    if (p < 0) neg = true;
  }
  EXPECT_TRUE(pos && neg);
}

TEST(UplinkDecoder, DecodesAtModerateNoiseViaCombining) {
  // Single streams at this SNR are unreliable; combining must recover.
  SyntheticSpec spec;
  spec.noise = 1.2;
  spec.good_streams = 8;
  spec.num_streams = 16;
  const auto syn = make_synthetic(spec);
  UplinkDecoderConfig cfg = config_for(spec);
  cfg.num_good_streams = 8;
  UplinkDecoder dec(cfg);
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  EXPECT_LE(hamming_distance(res.payload, syn.payload), 1u);
}

TEST(UplinkDecoder, WeightsFavourCleanStreams) {
  // Two good streams with very different noise: MRC weight of the clean
  // one should dominate.
  SyntheticSpec spec;
  spec.num_streams = 2;
  spec.good_streams = 2;
  spec.noise = 0.1;
  auto syn = make_synthetic(spec);
  // Add extra noise to stream 1.
  sim::RngStream extra(99);
  for (double& v : syn.ct.streams[1]) v += extra.normal(0.0, 1.0);
  UplinkDecoderConfig cfg = config_for(spec);
  cfg.num_good_streams = 2;
  UplinkDecoder dec(cfg);
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  ASSERT_EQ(res.streams.size(), 2u);
  const std::size_t clean_pos = res.streams[0] == 0 ? 0 : 1;
  EXPECT_GT(res.weights[clean_pos], 3.0 * res.weights[1 - clean_pos]);
}

TEST(UplinkDecoder, EmptyTraceNotFound) {
  SyntheticSpec spec;
  UplinkDecoder dec(config_for(spec));
  const auto res = dec.decode_conditioned(ConditionedTrace{});
  EXPECT_FALSE(res.found);
}

TEST(UplinkDecoder, SyncThresholdRejectsPureNoise) {
  SyntheticSpec spec;
  spec.good_streams = 0;  // nothing but noise
  const auto syn = make_synthetic(spec);
  UplinkDecoderConfig cfg = config_for(spec);
  cfg.num_good_streams = 4;
  cfg.sync_threshold = 0.5;  // require a real preamble
  UplinkDecoder dec(cfg);
  EXPECT_FALSE(dec.decode_conditioned(syn.ct).found);
}

TEST(UplinkDecoder, SearchWindowRestrictsSync) {
  SyntheticSpec spec;
  const auto syn = make_synthetic(spec);
  UplinkDecoderConfig cfg = config_for(spec);
  cfg.search_from = syn.frame_start - 2 * spec.bit_us;
  cfg.search_to = syn.frame_start + 2 * spec.bit_us;
  UplinkDecoder dec(cfg);
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  EXPECT_GE(res.start_us, *cfg.search_from);
  EXPECT_LE(res.start_us, *cfg.search_to);
  EXPECT_EQ(res.payload, syn.payload);
}

TEST(UplinkDecoder, ConfidenceHighWhenClean) {
  SyntheticSpec spec;
  spec.noise = 0.1;
  const auto syn = make_synthetic(spec);
  UplinkDecoder dec(config_for(spec));
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  double mean_conf = 0.0;
  for (double c : res.confidence) mean_conf += c;
  mean_conf /= static_cast<double>(res.confidence.size());
  EXPECT_GT(mean_conf, 0.9);
}

TEST(UplinkDecoder, RssiConfigUsesOneStream) {
  UplinkDecoderConfig base;
  base.num_good_streams = 10;
  const auto rssi = rssi_decoder_config(base);
  EXPECT_EQ(rssi.num_good_streams, 1u);
  EXPECT_EQ(rssi.source, MeasurementSource::kRssi);
}

TEST(UplinkDecoder, HysteresisAbsorbsSpuriousOutliers) {
  // Inject single-packet outliers; with per-packet majority voting they
  // must not flip bits.
  SyntheticSpec spec;
  spec.noise = 0.2;
  auto syn = make_synthetic(spec);
  sim::RngStream spike_rng(7);
  for (auto& stream : syn.ct.streams) {
    for (double& v : stream) {
      if (spike_rng.chance(0.01)) v += spike_rng.uniform(-8.0, 8.0);
    }
  }
  UplinkDecoder dec(config_for(spec));
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.payload, syn.payload);
}

class DecoderBitRateSweep : public ::testing::TestWithParam<TimeUs> {};

TEST_P(DecoderBitRateSweep, DecodesAcrossBitDurations) {
  SyntheticSpec spec;
  spec.bit_us = GetParam();
  spec.noise = 0.3;
  const auto syn = make_synthetic(spec);
  UplinkDecoder dec(config_for(spec));
  const auto res = dec.decode_conditioned(syn.ct);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.payload, syn.payload) << "bit_us=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(BitDurations, DecoderBitRateSweep,
                         ::testing::Values(TimeUs{1'000}, TimeUs{2'000},
                                           TimeUs{5'000}, TimeUs{10'000},
                                           TimeUs{20'000}));

TEST(UplinkDecoder, CtorRejectsInvertedSearchWindow) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  UplinkDecoderConfig cfg;
  cfg.search_from = TimeUs{100'000};
  cfg.search_to = TimeUs{50'000};
  EXPECT_THROW(UplinkDecoder{cfg}, ContractViolation);
  // A half-open window (only one end set) is fine.
  cfg.search_to.reset();
  EXPECT_NO_THROW(UplinkDecoder{cfg});
}

TEST(UplinkDecoder, SetSearchWindowRejectsInverted) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  UplinkDecoder dec{UplinkDecoderConfig{}};
  EXPECT_THROW(dec.set_search_window(TimeUs{100'000}, TimeUs{50'000}),
               ContractViolation);
  EXPECT_NO_THROW(dec.set_search_window(TimeUs{50'000}, TimeUs{100'000}));
  EXPECT_NO_THROW(dec.set_search_window(std::nullopt, std::nullopt));
}

TEST(UplinkDecoder, SyncTieBreakKeepsEarliestFrameStart) {
  // Two bit-identical, noiseless copies of the same frame on a packet
  // grid that divides both starts: the sync scores at both frame starts
  // are the SAME double, and the pinned first-max-wins tie-break (strict
  // `>` in find_frame) must report the earlier one. A `>=` regression or
  // a reordered score reduction would flip this to the later copy.
  const TimeUs bit{5'000};
  const BitVec payload = random_bits(24, 7);
  BitVec frame = barker13();
  frame.insert(frame.end(), payload.begin(), payload.end());
  const TimeUs first{50'000};
  const TimeUs second = first + TimeUs{200'000};  // multiple of bit & step

  ConditionedTrace ct;
  const TimeUs end =
      second + bit * static_cast<std::int64_t>(frame.size()) + TimeUs{50'000};
  for (std::int64_t t = 0; t < end.ticks(); t += 500) {
    ct.timestamps.push_back(TimeUs{t});
  }
  ct.streams.resize(1);
  for (const TimeUs t : ct.timestamps) {
    double v = 0.0;
    for (const TimeUs start : {first, second}) {
      if (t >= start) {
        const auto b = static_cast<std::size_t>((t - start) / bit);
        if (b < frame.size()) v = frame[b] ? 1.0 : -1.0;
      }
    }
    ct.streams[0].push_back(v);
  }

  UplinkDecoderConfig cfg;
  cfg.payload_bits = payload.size();
  cfg.bit_duration_us = bit;
  cfg.num_good_streams = 1;
  const UplinkDecoder dec(cfg);
  const auto res = dec.decode_conditioned(ct);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.start_us, first);
  EXPECT_EQ(res.payload, payload);
}

}  // namespace
}  // namespace wb::reader
