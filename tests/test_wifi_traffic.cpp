#include "wifi/traffic.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace wb::wifi {
namespace {

bool is_sorted_by_start(const PacketTimeline& t) {
  return std::is_sorted(t.begin(), t.end(),
                        [](const WifiPacket& a, const WifiPacket& b) {
                          return a.start_us < b.start_us;
                        });
}

TEST(Traffic, CbrRateWithinTolerance) {
  sim::RngStream rng(1);
  const auto t = make_cbr_timeline(1'000, 10 * kMicrosPerSec,
                                   TrafficParams{}, rng);
  EXPECT_NEAR(static_cast<double>(t.size()), 10'000.0, 100.0);
  EXPECT_TRUE(is_sorted_by_start(t));
}

TEST(Traffic, CbrEvenSpacing) {
  sim::RngStream rng(2);
  const auto t =
      make_cbr_timeline(100, kMicrosPerSec, TrafficParams{}, rng, 0.0);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_NEAR(static_cast<double>((t[i].start_us - t[i - 1].start_us).ticks()),
                10'000.0, 2.0);
  }
}

TEST(Traffic, PoissonRateWithinTolerance) {
  sim::RngStream rng(3);
  const auto t = make_poisson_timeline(2'000, 10 * kMicrosPerSec,
                                       TrafficParams{}, rng);
  EXPECT_NEAR(static_cast<double>(t.size()), 20'000.0, 600.0);
  EXPECT_TRUE(is_sorted_by_start(t));
}

TEST(Traffic, PoissonInterarrivalsExponential) {
  sim::RngStream rng(4);
  const auto t = make_poisson_timeline(1'000, 20 * kMicrosPerSec,
                                       TrafficParams{}, rng);
  // CV of exponential inter-arrivals is 1.
  std::vector<double> gaps;
  for (std::size_t i = 1; i < t.size(); ++i) {
    gaps.push_back(static_cast<double>((t[i].start_us - t[i - 1].start_us).ticks()));
  }
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size() - 1);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.1);
}

TEST(Traffic, PacketsCarrySourceAndAirtime) {
  sim::RngStream rng(5);
  TrafficParams p;
  p.source = 42;
  p.size_bytes = 1500;
  p.rate_mbps = 54.0;
  const auto t = make_poisson_timeline(500, kMicrosPerSec, p, rng);
  ASSERT_FALSE(t.empty());
  for (const auto& pkt : t) {
    EXPECT_EQ(pkt.source, 42u);
    EXPECT_EQ(pkt.duration_us, airtime_us(1500, 54.0));
  }
}

TEST(Traffic, AirtimeFormula) {
  // 1500 B at 54 Mbps = 222 us payload + 20 us PLCP.
  EXPECT_EQ(airtime_us(1500, 54.0), TimeUs{242});
  EXPECT_EQ(airtime_us(14, 24.0), TimeUs{25});  // ACK-ish (4.7 us payload + 20 + rounding)
}

TEST(Traffic, BurstyLongRunRate) {
  sim::RngStream rng(6);
  BurstyParams b;
  b.burst_pps = 3'000;
  b.mean_burst_ms = 50;
  b.mean_idle_ms = 100;
  const auto t =
      make_bursty_timeline(b, 30 * kMicrosPerSec, TrafficParams{}, rng);
  // Expected on-fraction ~ 1/3 -> ~1000 pps long run; heavy-tailed, so
  // allow generous tolerance.
  EXPECT_GT(t.size(), 10'000u);
  EXPECT_LT(t.size(), 60'000u);
  EXPECT_TRUE(is_sorted_by_start(t));
}

TEST(Traffic, BurstyIsBurstier) {
  // Index of dispersion of counts (var/mean over 100 ms windows) should be
  // far above Poisson's 1.
  sim::RngStream rng(7);
  BurstyParams b;
  const auto t =
      make_bursty_timeline(b, 30 * kMicrosPerSec, TrafficParams{}, rng);
  std::vector<double> counts;
  for (TimeUs w{0}; w < 30 * kMicrosPerSec; w += TimeUs{100'000}) {
    counts.push_back(
        static_cast<double>(packets_in_window(t, w, w + TimeUs{100'000})));
  }
  double mean = 0.0;
  for (double c : counts) mean += c;
  mean /= static_cast<double>(counts.size());
  double var = 0.0;
  for (double c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(counts.size() - 1);
  EXPECT_GT(var / mean, 3.0);
}

TEST(Traffic, BeaconCountAndKind) {
  sim::RngStream rng(8);
  const auto t = make_beacon_timeline(10, 5 * kMicrosPerSec, 9, rng);
  EXPECT_NEAR(static_cast<double>(t.size()), 50.0, 2.0);
  for (const auto& pkt : t) {
    EXPECT_EQ(pkt.kind, FrameKind::kBeacon);
    EXPECT_EQ(pkt.source, 9u);
    EXPECT_EQ(pkt.rate_mbps, 6.0);
  }
}

TEST(Traffic, OfficeLoadProfileShape) {
  // Night is quiet; evening peak is the day's maximum; always positive.
  EXPECT_LT(office_load_pps(3.0), 100.0);
  double peak = 0.0;
  double peak_hour = 0.0;
  for (double h = 0.0; h < 24.0; h += 0.25) {
    EXPECT_GT(office_load_pps(h), 0.0);
    if (office_load_pps(h) > peak) {
      peak = office_load_pps(h);
      peak_hour = h;
    }
  }
  EXPECT_GT(peak, 900.0);
  EXPECT_GE(peak_hour, 17.0);
  EXPECT_LE(peak_hour, 21.0);
}

TEST(Traffic, OfficeLoadWrapsAround) {
  EXPECT_NEAR(office_load_pps(0.0), office_load_pps(24.0), 1e-9);
  EXPECT_NEAR(office_load_pps(25.0), office_load_pps(1.0), 1e-9);
}

TEST(Traffic, OfficeTimelineTracksProfile) {
  sim::RngStream rng(9);
  const auto quiet = make_office_timeline(4.0, 60 * kMicrosPerSec,
                                          TrafficParams{}, rng);
  auto rng2 = rng.fork("x");
  const auto busy = make_office_timeline(19.0, 60 * kMicrosPerSec,
                                         TrafficParams{}, rng2);
  EXPECT_GT(busy.size(), quiet.size() * 5);
}

TEST(Traffic, MergeSortsByStart) {
  sim::RngStream rng(10);
  auto a = make_poisson_timeline(200, kMicrosPerSec, TrafficParams{}, rng);
  auto b = make_poisson_timeline(300, kMicrosPerSec, TrafficParams{}, rng);
  const auto merged = merge_timelines({a, b});
  EXPECT_EQ(merged.size(), a.size() + b.size());
  EXPECT_TRUE(is_sorted_by_start(merged));
}

TEST(Traffic, PacketsInWindow) {
  PacketTimeline t;
  for (TimeUs s : {TimeUs{10}, TimeUs{20}, TimeUs{30}, TimeUs{40}}) {
    WifiPacket p;
    p.start_us = s;
    t.push_back(p);
  }
  EXPECT_EQ(packets_in_window(t, TimeUs{15}, TimeUs{35}), 2u);
  EXPECT_EQ(packets_in_window(t, TimeUs{0}, TimeUs{100}), 4u);
  EXPECT_EQ(packets_in_window(t, TimeUs{41}, TimeUs{100}), 0u);
}

TEST(Traffic, AmbientMixHasAcksAfterData) {
  sim::RngStream rng(11);
  const auto t = make_ambient_mix_timeline(800, 5 * kMicrosPerSec, rng);
  EXPECT_TRUE(is_sorted_by_start(t));
  std::size_t data = 0, acks = 0;
  for (const auto& pkt : t) {
    if (pkt.kind == FrameKind::kData) ++data;
    if (pkt.kind == FrameKind::kAck) ++acks;
  }
  EXPECT_EQ(data, acks);  // every data frame is acknowledged
  EXPECT_GT(data, 0u);
}

TEST(Traffic, AmbientMixShortGapsExist) {
  // The mix must contain SIFS/DIFS-scale gaps (the structures Fig 18's
  // false-positive analysis depends on).
  sim::RngStream rng(12);
  const auto t = make_ambient_mix_timeline(800, 5 * kMicrosPerSec, rng);
  std::size_t short_gaps = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const TimeUs gap = t[i].start_us - t[i - 1].end_us();
    if (gap >= TimeUs{} && gap < TimeUs{150}) ++short_gaps;
  }
  EXPECT_GT(short_gaps, t.size() / 4);
}

TEST(Traffic, FrameKindNames) {
  EXPECT_STREQ(to_string(FrameKind::kData), "DATA");
  EXPECT_STREQ(to_string(FrameKind::kCtsToSelf), "CTS_TO_SELF");
  EXPECT_STREQ(to_string(FrameKind::kBeacon), "BEACON");
}

}  // namespace
}  // namespace wb::wifi
