#include "obs/trace.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace wb::obs {
namespace {

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(Json, NumbersAreFiniteOrNull) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

TEST(Tracer, LanesAreStableAndNamed) {
  Tracer t;
  const int a = t.lane("uplink");
  const int b = t.lane("downlink");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.lane("uplink"), a);
}

TEST(Tracer, EventsAppearInJson) {
  Tracer t;
  const int lane = t.lane("protocol");
  t.complete(lane, "query", "core", TimeUs{100}, TimeUs{50},
             {{"attempt", 1.0}});
  t.instant(lane, "decoded", "tag", TimeUs{160});
  t.counter("depth", TimeUs{10}, 3.0);
  EXPECT_EQ(t.num_events(), 3u);

  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"protocol\""), std::string::npos);
  EXPECT_NE(json.find("\"attempt\":1"), std::string::npos);
}

TEST(Tracer, JsonIsStructurallyBalanced) {
  // Cheap well-formedness check without a parser: balanced braces and
  // brackets, and no raw control characters inside the output.
  Tracer t;
  const int lane = t.lane("lane \"quoted\"\n");
  t.complete(lane, "evil\tname", "cat", TimeUs{}, TimeUs{1});
  const std::string json = t.to_json();
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') in_string = !in_string;
    if (in_string) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20) << "raw control char";
      continue;
    }
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Tracer, OffsetShiftsTimestamps) {
  Tracer t;
  const int lane = t.lane("l");
  ScopedTracer scope(t);
  {
    ScopedTraceOffset shift(TimeUs{1'000});
    tracer()->complete(lane, "inner", "c", TimeUs{10}, TimeUs{5});
    {
      ScopedTraceOffset nested(TimeUs{100});
      tracer()->instant(lane, "nested", "c", TimeUs{1});
    }
  }
  tracer()->instant(lane, "outer", "c", TimeUs{7});
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"ts\":1010"), std::string::npos);  // 10 + 1000
  EXPECT_NE(json.find("\"ts\":1101"), std::string::npos);  // 1 + 1100
  EXPECT_NE(json.find("\"ts\":7"), std::string::npos);     // offset restored
}

TEST(Tracer, GlobalOffByDefaultAndOffsetNoopWhenOff) {
  EXPECT_EQ(tracer(), nullptr);
  ScopedTraceOffset shift(TimeUs{500});  // must not crash with no tracer installed
  EXPECT_EQ(tracer(), nullptr);
}

TEST(Tracer, WriteJsonRoundTrip) {
  Tracer t;
  t.complete(t.lane("x"), "e", "c", TimeUs{}, TimeUs{2});
  const std::string path = ::testing::TempDir() + "wb_trace_test.json";
  ASSERT_TRUE(t.write_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  EXPECT_EQ(std::string(buf), t.to_json());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wb::obs
