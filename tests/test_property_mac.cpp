// Property sweeps over the DCF MAC: conservation and sanity invariants
// across station counts, frame sizes, and seeds.
#include <gtest/gtest.h>

#include "wifi/mac.h"

namespace wb::wifi {
namespace {

struct MacCase {
  std::size_t stations;
  std::uint32_t size_bytes;
  double rate_mbps;
  std::uint64_t seed;
};

class MacSweep : public ::testing::TestWithParam<MacCase> {};

TEST_P(MacSweep, ConservationInvariants) {
  const auto c = GetParam();
  DcfMac mac{sim::RngStream(c.seed)};
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < c.stations; ++i) {
    ids.push_back(mac.add_station());
    mac.make_saturated(ids.back(), c.size_bytes, c.rate_mbps);
  }
  const TimeUs horizon = kMicrosPerSec;
  mac.run_until(horizon);

  // The clock reaches the horizon; a frame that started before it may
  // finish past it, bounded by one frame cycle.
  EXPECT_GE(mac.now(), horizon);
  EXPECT_LE(mac.now(), horizon + TimeUs{30'000});
  EXPECT_GE(mac.utilisation(), 0.0);
  EXPECT_LE(mac.utilisation(), 1.0);

  // Airtime conservation: every logged frame fits inside the horizon and
  // successful frames never overlap each other.
  TimeUs prev_end{0};
  for (const auto& f : mac.log()) {
    EXPECT_GE(f.packet.start_us, TimeUs{});
    EXPECT_LE(f.packet.end_us(), horizon + TimeUs{10'000});
    if (!f.collided) {
      EXPECT_GE(f.packet.start_us, prev_end - TimeUs{1});
      prev_end = f.packet.end_us();
    }
  }

  // Accounting: delivered + dropped never exceeds enqueued for queued
  // stations; delivered counts match the log.
  std::uint64_t delivered_stats = 0;
  for (auto id : ids) delivered_stats += mac.stats(id).delivered;
  std::uint64_t delivered_log = 0;
  for (const auto& f : mac.log()) {
    if (!f.collided) ++delivered_log;
  }
  EXPECT_EQ(delivered_stats, delivered_log);

  // With any saturated station, the medium must not sit idle.
  EXPECT_GT(mac.utilisation(), 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MacSweep,
    ::testing::Values(MacCase{1, 1'500, 54.0, 1}, MacCase{2, 500, 24.0, 2},
                      MacCase{4, 1'500, 6.0, 3}, MacCase{8, 1'000, 54.0, 4},
                      MacCase{16, 200, 12.0, 5},
                      MacCase{3, 1'500, 54.0, 99}));

class MacSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MacSeedSweep, DeterministicForSeed) {
  auto run = [&](std::uint64_t seed) {
    DcfMac mac{sim::RngStream(seed)};
    const auto a = mac.add_station();
    const auto b = mac.add_station();
    mac.make_saturated(a, 1'000, 54.0);
    mac.make_saturated(b, 700, 24.0);
    mac.run_until(TimeUs{300'000});
    return std::make_pair(mac.stats(a).delivered, mac.stats(b).delivered);
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MacSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(MacProperty, ReservationAlwaysRespectedAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DcfMac mac{sim::RngStream(seed)};
    const auto reader = mac.add_station();
    const auto rival = mac.add_station();
    mac.make_saturated(rival, 1'500, 54.0);
    mac.reserve(reader, TimeUs{20'000}, TimeUs{5'000});
    mac.run_until(TimeUs{80'000});
    const AirFrame* cts = nullptr;
    for (const auto& f : mac.log()) {
      if (f.packet.kind == FrameKind::kCtsToSelf && !f.collided) cts = &f;
    }
    if (cts == nullptr) continue;  // CTS collided this seed; retried out
    const TimeUs nav_start = cts->packet.end_us();
    const TimeUs nav_end = nav_start + cts->packet.nav_us;
    for (const auto& f : mac.log()) {
      if (&f == cts) continue;
      EXPECT_FALSE(f.packet.start_us >= nav_start &&
                   f.packet.start_us < nav_end)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace wb::wifi
