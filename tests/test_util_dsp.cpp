#include "util/dsp.h"

#include <cmath>
#include <numbers>
#include <span>

#include <gtest/gtest.h>

#include "util/check.h"

namespace wb {
namespace {

TEST(MovingAverage, MeanOfPartialWindow) {
  MovingAverage ma(4);
  EXPECT_DOUBLE_EQ(ma.push(2.0), 2.0);
  EXPECT_DOUBLE_EQ(ma.push(4.0), 3.0);
  EXPECT_FALSE(ma.full());
}

TEST(MovingAverage, SlidesOverWindow) {
  MovingAverage ma(2);
  ma.push(1.0);
  ma.push(3.0);
  EXPECT_TRUE(ma.full());
  EXPECT_DOUBLE_EQ(ma.push(5.0), 4.0);  // window = {3, 5}
}

TEST(MovingAverage, ResetClears) {
  MovingAverage ma(3);
  ma.push(10.0);
  ma.reset();
  EXPECT_EQ(ma.size(), 0u);
  EXPECT_DOUBLE_EQ(ma.mean(), 0.0);
}

TEST(MovingAverage, ConstantInputYieldsConstantMean) {
  MovingAverage ma(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(ma.push(7.5), 7.5);
  }
}

TEST(RemoveMovingAverage, RemovesDcOffset) {
  std::vector<double> x(100, 3.0);
  const auto y = remove_moving_average(x, 10);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(RemoveMovingAverage, PreservesFastSquareWave) {
  // A +-1 square wave with period << window survives (attenuated but with
  // correct signs) while its DC offset is removed.
  std::vector<double> x;
  for (int i = 0; i < 200; ++i) x.push_back(10.0 + ((i / 2) % 2 ? 1.0 : -1.0));
  const auto y = remove_moving_average(x, 40);
  for (std::size_t i = 50; i < y.size(); ++i) {
    const double expected_sign = ((i / 2) % 2 ? 1.0 : -1.0);
    EXPECT_GT(y[i] * expected_sign, 0.0) << i;
  }
}

TEST(NormalizeMad, UnitMeanAbsolute) {
  const std::vector<double> x = {1.0, -3.0, 2.0, -2.0};
  const auto y = normalize_mad(x);
  double mad = 0.0;
  for (double v : y) mad += std::abs(v);
  mad /= static_cast<double>(y.size());
  EXPECT_NEAR(mad, 1.0, 1e-12);
}

TEST(NormalizeMad, AllZerosUnchanged) {
  const std::vector<double> x = {0.0, 0.0, 0.0};
  const auto y = normalize_mad(x);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NormalizeMad, PreservesSignPattern) {
  const std::vector<double> x = {5.0, -1.0, 0.5};
  const auto y = normalize_mad(x);
  EXPECT_GT(y[0], 0.0);
  EXPECT_LT(y[1], 0.0);
  EXPECT_GT(y[2], 0.0);
}

TEST(SlidingCorrelation, PeaksAtAlignment) {
  const std::vector<double> tmpl = {1.0, -1.0, 1.0};
  std::vector<double> x(20, 0.0);
  x[7] = 1.0;
  x[8] = -1.0;
  x[9] = 1.0;
  const auto corr = sliding_correlation(x, tmpl);
  EXPECT_EQ(argmax(corr), 7u);
  EXPECT_DOUBLE_EQ(corr[7], 3.0);
}

TEST(SlidingCorrelation, EmptyWhenTemplateTooLong) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> tmpl = {1.0, 1.0, 1.0};
  EXPECT_TRUE(sliding_correlation(x, tmpl).empty());
}

TEST(SlidingCorrelation, OutputSize) {
  const std::vector<double> x(10, 1.0);
  const std::vector<double> tmpl(4, 1.0);
  EXPECT_EQ(sliding_correlation(x, tmpl).size(), 7u);
}

TEST(Dsp, MeanVarianceStddev) {
  const std::vector<double> x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_NEAR(variance(x), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(x), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Dsp, VarianceOfSingletonIsZero) {
  const std::vector<double> x = {42.0};
  EXPECT_DOUBLE_EQ(variance(x), 0.0);
}

TEST(Dsp, DotProduct) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
}

TEST(Dsp, PearsonPerfectCorrelation) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> c = b;
  for (double& v : c) v = -v;
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Dsp, PearsonZeroVarianceIsZero) {
  const std::vector<double> a = {1.0, 1.0, 1.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Dsp, ArgmaxEmptyIsZero) { EXPECT_EQ(argmax({}), 0u); }

TEST(RemoveMovingAverage, SinusoidalDriftSuppressed) {
  // Slow sinusoid (period 10x the window) is strongly attenuated.
  std::vector<double> x;
  const std::size_t n = 1'000;
  for (std::size_t i = 0; i < n; ++i) {
    x.push_back(std::sin(2.0 * std::numbers::pi * static_cast<double>(i) /
                         1'000.0));
  }
  const auto y = remove_moving_average(x, 100);
  double max_abs = 0.0;
  for (std::size_t i = 100; i < n; ++i) {
    max_abs = std::max(max_abs, std::abs(y[i]));
  }
  EXPECT_LT(max_abs, 0.45);  // raw amplitude was 1.0
}

TEST(SpanVariants, BitIdenticalToAllocatingWrappers) {
  // The span-out overloads promise the exact same arithmetic in the same
  // order as the allocating wrappers (DESIGN.md §10) — compare EXACTLY.
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(std::sin(0.37 * i) * (1.0 + 0.01 * i));
  }
  const std::vector<double> tmpl = {1.0, -1.0, 1.0, 1.0, -1.0};

  const auto rm_ref = remove_moving_average(xs, 32);
  std::vector<double> rm_out(xs.size(), -99.0);
  remove_moving_average(xs, 32, rm_out);
  EXPECT_EQ(rm_ref, rm_out);

  const auto nm_ref = normalize_mad(xs);
  std::vector<double> nm_out(xs.size(), -99.0);
  normalize_mad(xs, nm_out);
  EXPECT_EQ(nm_ref, nm_out);

  const auto sc_ref = sliding_correlation(xs, tmpl);
  std::vector<double> sc_out(sc_ref.size(), -99.0);
  sliding_correlation(xs, tmpl, sc_out);
  EXPECT_EQ(sc_ref, sc_out);
}

TEST(SpanVariants, NormalizeMadMayAliasItsInput) {
  std::vector<double> xs = {1.0, -2.0, 3.0, -4.0};
  const auto ref = normalize_mad(xs);
  normalize_mad(xs, xs);  // in place
  EXPECT_EQ(ref, xs);
}

TEST(SpanVariants, AliasingInputAndOutputIsRejected) {
  // The span-out kernels document their aliasing contracts; under the
  // throwing policy a violation must surface as ContractViolation, not as
  // silently wrong numbers.
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  std::vector<double> xs(16, 1.0);
  const std::vector<double> tmpl = {1.0, -1.0, 1.0};

  // remove_moving_average: any overlap is banned (trailing window
  // re-reads behind the cursor).
  EXPECT_THROW(remove_moving_average(xs, 4, xs), ContractViolation);
  EXPECT_THROW(
      remove_moving_average(std::span<const double>(xs.data(), 8), 4,
                            std::span<double>(xs.data() + 4, 8)),
      ContractViolation);

  // normalize_mad: full alias is fine (tested above), partial is not.
  EXPECT_THROW(
      normalize_mad(std::span<const double>(xs.data(), 8),
                    std::span<double>(xs.data() + 4, 8)),
      ContractViolation);

  // sliding_correlation: output may alias neither input.
  std::vector<double> corr(xs.size() - tmpl.size() + 1, 0.0);
  EXPECT_THROW(
      sliding_correlation(std::span<const double>(xs),
                          std::span<const double>(tmpl),
                          std::span<double>(xs.data(), corr.size())),
      ContractViolation);
}

// -- stream-batched rows kernels (DESIGN.md §15) ------------------------

/// Builds an n_rows x stride matrix whose columns are distinct,
/// sign-varying series; the last column is all zeros like the padding
/// lanes the conditioning path appends.
std::vector<double> make_rows(std::size_t n_rows, std::size_t stride) {
  std::vector<double> rows(n_rows * stride);
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t c = 0; c + 1 < stride; ++c) {
      rows[r * stride + c] =
          std::sin(0.31 * static_cast<double>(r * stride + c)) *
          (1.0 + 0.1 * static_cast<double>(c));
    }
    rows[r * stride + stride - 1] = 0.0;  // padding column
  }
  return rows;
}

TEST(RowsKernels, MadRowsMatchesPerColumnScalar) {
  // Exercise row counts around the pack width (1, 5, 37) so both the
  // pack main loop and the scalar remainder are covered.
  const std::size_t stride = 8;  // multiple of simd::kLanes
  for (const std::size_t n_rows : {1u, 5u, 37u}) {
    const auto rows = make_rows(n_rows, stride);
    std::vector<double> mads(stride, -99.0);
    mad_rows(rows, stride, n_rows, mads);
    for (std::size_t c = 0; c < stride; ++c) {
      // Replay the scalar normalize_mad divisor chain on the column.
      double acc = 0.0;
      for (std::size_t r = 0; r < n_rows; ++r) {
        acc += std::abs(rows[r * stride + c]);
      }
      const double mad = acc / static_cast<double>(n_rows);
      EXPECT_EQ(mads[c], mad <= 0.0 ? 1.0 : mad) << "col " << c;
    }
    // The all-zero padding column must come back with the safe divisor.
    EXPECT_EQ(mads[stride - 1], 1.0);
  }
}

TEST(RowsKernels, NormalizeMadRowsMatchesPerColumnSpanKernel) {
  const std::size_t stride = 8;
  for (const std::size_t n_rows : {1u, 5u, 37u}) {
    const auto rows = make_rows(n_rows, stride);
    std::vector<double> out(rows.size(), -99.0), mads(stride);
    normalize_mad_rows(rows, stride, n_rows, mads, out);
    for (std::size_t c = 0; c < stride; ++c) {
      std::vector<double> col(n_rows), want(n_rows);
      for (std::size_t r = 0; r < n_rows; ++r) col[r] = rows[r * stride + c];
      normalize_mad(col, want);
      for (std::size_t r = 0; r < n_rows; ++r) {
        EXPECT_EQ(out[r * stride + c], want[r]) << "col " << c << " row " << r;
      }
    }
    // Padding column (all zeros) is copied unchanged.
    for (std::size_t r = 0; r < n_rows; ++r) {
      EXPECT_EQ(out[r * stride + stride - 1], 0.0);
    }
  }
}

TEST(RowsKernels, NormalizeMadRowsInPlaceMatchesOutOfPlace) {
  const std::size_t stride = 8, n_rows = 21;
  auto rows = make_rows(n_rows, stride);
  std::vector<double> want(rows.size()), mads(stride);
  normalize_mad_rows(rows, stride, n_rows, mads, want);
  normalize_mad_rows(rows, stride, n_rows, mads, rows);  // full alias
  EXPECT_EQ(rows, want);
}

TEST(RowsKernels, ContractViolationsAreRejected) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  const std::size_t stride = 8, n_rows = 4;
  auto rows = make_rows(n_rows, stride);
  std::vector<double> out(rows.size()), mads(stride);

  // Stride not a multiple of the pack width.
  EXPECT_THROW(mad_rows(rows, 7, n_rows, mads), ContractViolation);
  // Matrix size inconsistent with stride * n_rows.
  EXPECT_THROW(mad_rows(std::span<const double>(rows.data(), 17), stride, 2,
                        mads),
               ContractViolation);
  // Wrong divisor-vector size.
  std::vector<double> short_mads(stride - 1);
  EXPECT_THROW(mad_rows(rows, stride, n_rows, short_mads), ContractViolation);
  // mad output aliasing the matrix.
  EXPECT_THROW(mad_rows(rows, stride, n_rows,
                        std::span<double>(rows.data(), stride)),
               ContractViolation);
  // Partial overlap of the normalised output with the input.
  EXPECT_THROW(
      normalize_mad_rows(std::span<const double>(rows.data(), 2 * stride),
                         stride, 2, mads,
                         std::span<double>(rows.data() + stride, 2 * stride)),
      ContractViolation);
  // Scratch aliasing the output.
  EXPECT_THROW(normalize_mad_rows(rows, stride, n_rows,
                                  std::span<double>(out.data(), stride), out),
               ContractViolation);
}

TEST(RowsKernels, EmptyMatrixYieldsSafeDivisors) {
  std::vector<double> mads(8, -99.0);
  mad_rows(std::span<const double>(), 8, 0, mads);
  // Every column of an empty matrix is degenerate — the safe divisor,
  // never stale or zero values a caller could divide by.
  for (double v : mads) EXPECT_EQ(v, 1.0);
  // normalize_mad_rows on the empty matrix writes nothing and survives.
  normalize_mad_rows(std::span<const double>(), 8, 0, mads,
                     std::span<double>());
}

}  // namespace
}  // namespace wb
