#include "core/system.h"

#include <gtest/gtest.h>

namespace wb::core {
namespace {

SystemConfig friendly_config(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.tag_reader_distance_m = Meters{0.10};
  cfg.helper_distance_m = Meters{3.0};
  cfg.helper_pps = 2'000.0;
  cfg.seed = seed;
  return cfg;
}

TEST(System, DownlinkDeliversQuery) {
  WiFiBackscatterSystem sys(friendly_config(1));
  Query q;
  q.tag_address = 0x0042;
  q.command = kCmdReadSensor;
  const auto out = sys.send_downlink(q.to_bits());
  ASSERT_TRUE(out.delivered);
  ASSERT_TRUE(out.decoded_query.has_value());
  EXPECT_EQ(out.decoded_query->tag_address, 0x0042);
  EXPECT_GT(out.tag_energy_uj, 0.0);
}

TEST(System, UplinkDeliversData) {
  WiFiBackscatterSystem sys(friendly_config(2));
  const BitVec data = random_bits(32, 99);
  const auto out = sys.receive_uplink(data, 200.0);
  ASSERT_TRUE(out.sync_found);
  ASSERT_TRUE(out.delivered);
  EXPECT_EQ(out.data, data);
  EXPECT_EQ(out.bit_errors, 0u);
  EXPECT_DOUBLE_EQ(out.bit_rate_bps, 200.0);
}

TEST(System, FullQueryRoundTrip) {
  WiFiBackscatterSystem sys(friendly_config(3));
  Query q;
  q.tag_address = 0x7;
  q.command = kCmdReadSensor;
  const BitVec data = random_bits(24, 55);
  const auto out = sys.query(q, data);
  ASSERT_TRUE(out.success());
  EXPECT_EQ(out.uplink.data, data);
  // The tag used a rate from the supported set.
  bool supported = false;
  for (double r : kSupportedBitRates) {
    if (out.uplink.bit_rate_bps == r) supported = true;
  }
  EXPECT_TRUE(supported);
}

TEST(System, CommandedRateTracksHelperLoad) {
  SystemConfig slow = friendly_config(4);
  slow.helper_pps = 400.0;
  SystemConfig fast = friendly_config(4);
  fast.helper_pps = 15'000.0;
  EXPECT_LT(WiFiBackscatterSystem(slow).commanded_bit_rate(),
            WiFiBackscatterSystem(fast).commanded_bit_rate());
}

TEST(System, QueryCarriesCommandedRateCode) {
  SystemConfig cfg = friendly_config(5);
  cfg.helper_pps = 15'000.0;
  cfg.packets_per_bit = 10.0;
  WiFiBackscatterSystem sys(cfg);
  Query q;
  q.command = kCmdReadSensor;
  const auto out = sys.query(q, random_bits(16, 1));
  ASSERT_TRUE(out.downlink.delivered);
  // 15000/10*0.8 = 1200 -> chooses 1000 bps (code 3).
  EXPECT_EQ(out.downlink.decoded_query->bitrate_code, 3);
  EXPECT_DOUBLE_EQ(out.uplink.bit_rate_bps, 1'000.0);
}

TEST(System, RssiUplinkWorksAtCloseRange) {
  SystemConfig cfg = friendly_config(6);
  cfg.tag_reader_distance_m = Meters{0.05};
  cfg.uplink_source = reader::MeasurementSource::kRssi;
  WiFiBackscatterSystem sys(cfg);
  const BitVec data = random_bits(16, 5);
  const auto out = sys.receive_uplink(data, 100.0);
  EXPECT_TRUE(out.sync_found);
  EXPECT_TRUE(out.delivered);
}

TEST(System, AckExchangeDetectsRealAck) {
  WiFiBackscatterSystem sys(friendly_config(8));
  EXPECT_TRUE(sys.exchange_ack(true));
  EXPECT_FALSE(sys.exchange_ack(false));
}

TEST(System, AckEnabledQuerySucceeds) {
  SystemConfig cfg = friendly_config(9);
  cfg.ack_enabled = true;
  WiFiBackscatterSystem sys(cfg);
  Query q;
  q.command = kCmdReadSensor;
  const BitVec data = random_bits(24, 77);
  const auto out = sys.query(q, data);
  ASSERT_TRUE(out.success());
  ASSERT_TRUE(out.downlink.ack_detected.has_value());
  EXPECT_TRUE(*out.downlink.ack_detected);
  EXPECT_EQ(out.uplink.data, data);
}

TEST(System, AckPreventsUplinkWaitOnMissedQuery) {
  SystemConfig cfg = friendly_config(10);
  cfg.ack_enabled = true;
  cfg.tag_reader_distance_m = Meters{8.0};  // downlink cannot reach
  cfg.max_query_attempts = 2;
  WiFiBackscatterSystem sys(cfg);
  Query q;
  const auto out = sys.query(q, random_bits(8, 3));
  EXPECT_FALSE(out.success());
  ASSERT_TRUE(out.downlink.ack_detected.has_value());
  EXPECT_FALSE(*out.downlink.ack_detected);
  // The reader never attempted the slow uplink.
  EXPECT_FALSE(out.uplink.sync_found);
}

TEST(System, FarDownlinkFailsGracefully) {
  SystemConfig cfg = friendly_config(7);
  cfg.tag_reader_distance_m = Meters{8.0};  // far beyond downlink range
  cfg.max_query_attempts = 2;
  WiFiBackscatterSystem sys(cfg);
  Query q;
  const auto out = sys.query(q, random_bits(8, 2));
  EXPECT_FALSE(out.success());
  EXPECT_EQ(out.downlink.attempts, 2u);
}

}  // namespace
}  // namespace wb::core
