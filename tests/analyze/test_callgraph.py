#!/usr/bin/env python3
"""Unit tests for tools/wb_analyze/callgraph.py (ctest: analyze_callgraph).

Each case writes a miniature src/ tree into a temp dir, builds the call
graph through the same engine path the analyzer uses (collect_files ->
callgraph.build), and asserts on the resolved structure: overload sets,
out-of-line methods, recursion cycles, function pointers, constructor
member-init bodies, STL-homonym member calls, marker arity-overlap
resolution, and to_json determinism.
"""
from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

from wb_analyze import callgraph, engine  # noqa: E402

FAILURES: list[str] = []
CASES = 0


def check(cond: bool, what: str) -> None:
    global CASES
    CASES += 1
    if not cond:
        FAILURES.append(what)


def build_tree(files: dict[str, str]) -> callgraph.CallGraph:
    """files: relative path under the scan root -> contents."""
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for rel, text in files.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(text)
        sources = engine.collect_files(root)
        return callgraph.build([f for f in sources if f.top == "src"])


def symbols(g: callgraph.CallGraph) -> set[str]:
    return {d.symbol for d in g.defs}


def call_targets(g: callgraph.CallGraph, caller_symbol: str,
                 name: str) -> set[str]:
    """Target symbols of the call(s) named `name` out of `caller_symbol`."""
    out: set[str] = set()
    for di, d in enumerate(g.defs):
        if d.symbol != caller_symbol:
            continue
        for ci in g.calls_of(di):
            c = g.calls[ci]
            if c.name == name:
                out.update(g.defs[t].symbol for t in c.targets)
    return out


def test_overloads() -> None:
    g = build_tree({"src/m/a.cpp": """
void scale(double x) { (void)x; }
void scale(double x, double y) { (void)x; (void)y; }
void run() {
  scale(1.0);
  scale(1.0, 2.0);
}
"""})
    check(symbols(g) >= {"scale/1", "scale/2", "run/0"},
          f"overloads: defs missing, got {symbols(g)}")
    check(call_targets(g, "run/0", "scale") == {"scale/1", "scale/2"},
          "overloads: both arities should resolve from their call sites")
    one_arg = [c for c in g.calls if c.name == "scale" and c.arity == 1]
    check(len(one_arg) == 1 and
          {g.defs[t].symbol for t in one_arg[0].targets} == {"scale/1"},
          "overloads: scale(1.0) must resolve to scale/1 only")


def test_out_of_line_method() -> None:
    g = build_tree({
        "src/m/w.h": "#pragma once\nclass Widget {\n public:\n"
                     "  void refresh();\n void helper();\n};\n",
        "src/m/w.cpp": '#include "m/w.h"\n'
                       "void Widget::helper() { }\n"
                       "void Widget::refresh() { helper(); }\n",
    })
    check("Widget::refresh/0" in symbols(g) and
          "Widget::helper/0" in symbols(g),
          f"out-of-line: Cls:: qualifier not attributed, got {symbols(g)}")
    check(call_targets(g, "Widget::refresh/0", "helper")
          == {"Widget::helper/0"},
          "out-of-line: plain call inside a method must reach the "
          "caller's own class methods")


def test_recursion_cycle() -> None:
    g = build_tree({"src/m/r.cpp": """
void pong(int n);
void ping(int n) { if (n > 0) pong(n - 1); }
void pong(int n) { if (n > 0) ping(n - 1); }
"""})
    roots = [i for i, d in enumerate(g.defs) if d.symbol == "ping/1"]
    check(len(roots) == 1, f"cycle: expected one ping def, got {symbols(g)}")
    reach = g.reachable(roots)
    got = {g.defs[i].symbol for i in reach}
    check(got == {"ping/1", "pong/1"},
          f"cycle: BFS must terminate covering both, got {got}")
    pong = next(i for i, d in enumerate(g.defs) if d.symbol == "pong/1")
    check(g.path_to(reach, pong) == ["ping/1", "pong/1"],
          "cycle: path_to must walk root-first")


def test_function_pointer_unresolved() -> None:
    g = build_tree({"src/m/fp.cpp": """
void handler(int x) { (void)x; }
void run() {
  void (*fp)(int) = &handler;
  fp(1);
}
"""})
    fp_calls = [c for c in g.calls if c.name == "fp"]
    check(all(not c.targets for c in fp_calls),
          "fn-pointer: indirect call through fp must stay unresolved")
    check(call_targets(g, "run/0", "handler") == set(),
          "fn-pointer: &handler is not a call site")


def test_ctor_member_init_body() -> None:
    g = build_tree({"src/m/c.cpp": """
void warm_cache(int n);
class Engine {
 public:
  Engine() : gain_(1), bias_(0) { warm_cache(gain_); }
 private:
  int gain_;
  int bias_;
};
void warm_cache(int n) { (void)n; }
"""})
    check("Engine::Engine/0" in symbols(g),
          f"ctor: ctor def with member-init list not found, "
          f"got {symbols(g)}")
    check(call_targets(g, "Engine::Engine/0", "warm_cache")
          == {"warm_cache/1"},
          "ctor: body after member-init list must be scanned for calls")


def test_stl_homonym_member_calls() -> None:
    g = build_tree({"src/m/h.cpp": """
#include <vector>
class Ring {
 public:
  int size() const { return n_; }
 private:
  int n_;
};
int run(const std::vector<int>& v) {
  return static_cast<int>(v.size());
}
"""})
    check(call_targets(g, "run/1", "size") == set(),
          "homonym: v.size() must not resolve into Ring::size")


def test_marker_arity_overlap() -> None:
    g = build_tree({
        "src/m/s.h": "#pragma once\nclass Sink {\n public:\n"
                     "  WB_REALTIME void on_frame(int id, int ch = 0);\n};\n",
        "src/m/s.cpp": '#include "m/s.h"\n'
                       "void Sink::on_frame(int id, int ch) {"
                       " (void)id; (void)ch; }\n",
    })
    check(len(g.markers) == 1 and len(g.markers[0].defs) == 1,
          "marker: declaration default-arg range [1,2] must overlap the "
          "definition's [2,2]")
    g2 = build_tree({
        "src/m/s.h": "#pragma once\nclass Sink {\n public:\n"
                     "  WB_REALTIME void on_frame(int id);\n};\n",
        "src/m/s.cpp": '#include "m/s.h"\n'
                       "void Sink::on_frame(int id, int ch) {"
                       " (void)id; (void)ch; }\n",
    })
    check(len(g2.markers) == 1 and not g2.markers[0].defs,
          "marker: disjoint arity ranges must leave the marker unresolved")


def test_to_json_deterministic() -> None:
    files = {
        "src/m/w.h": "#pragma once\nclass Widget {\n public:\n"
                     "  WB_REALTIME void refresh();\n  void helper();\n};\n",
        "src/m/w.cpp": '#include "m/w.h"\n'
                       "void Widget::helper() { }\n"
                       "void Widget::refresh() { helper(); }\n",
    }
    a = build_tree(files).to_json()
    b = build_tree(files).to_json()
    check(a == b, "to_json: two builds of the same tree must be identical")
    check(a["roots"] and a["roots"][0]["reachable"],
          "to_json: marker root must appear with its reachable set")


def main() -> int:
    test_overloads()
    test_out_of_line_method()
    test_recursion_cycle()
    test_function_pointer_unresolved()
    test_ctor_member_init_body()
    test_stl_homonym_member_calls()
    test_marker_arity_overlap()
    test_to_json_deterministic()
    for f in FAILURES:
        print(f"FAIL {f}")
    if FAILURES:
        print(f"analyze_callgraph: {len(FAILURES)}/{CASES} check(s) failed",
              file=sys.stderr)
        return 1
    print(f"analyze_callgraph: OK ({CASES} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
