#include <string_view>
// std::stoi appears only in this comment and in the string below.
inline const char* kWhy = "std::stoi accepts trailing garbage";
bool parse(std::string_view s, int& out);  // wb::util::parse_full style
