#include <string>
int parse(const std::string& s) { return std::stoi(s); }
double parsed(const std::string& s) { return std::stod(s); }
