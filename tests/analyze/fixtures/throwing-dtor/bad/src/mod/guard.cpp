#include <stdexcept>
struct Guard {
  ~Guard() {
    if (armed) throw std::runtime_error("boom");
  }
  bool armed = false;
};
