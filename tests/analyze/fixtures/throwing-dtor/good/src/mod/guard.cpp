#include <stdexcept>
struct Guard {
  ~Guard() { release(); }  // "throw" in this comment must not fire
  void release() noexcept;
  bool armed = false;
};
void fire() { throw std::runtime_error("throwing OUTSIDE a dtor is fine"); }
int mask() { return ~0; }  // bitwise not, not a destructor
