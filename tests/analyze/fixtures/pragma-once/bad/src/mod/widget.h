// Deliberately missing #pragma once.
namespace wb {
struct Widget {
  int x = 0;
};
}  // namespace wb
