#include <immintrin.h>

double sum4(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  __m256d h = _mm256_hadd_pd(v, v);
  return _mm256_cvtsd_f64(h);
}
