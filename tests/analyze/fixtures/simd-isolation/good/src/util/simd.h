// Miniature stand-in for the real wrapper header: the carve-out lets
// src/util/simd.h (and only it) touch platform intrinsics.
#pragma once

#include <immintrin.h>

inline double lane0(__m128d v) { return _mm_cvtsd_f64(v); }
