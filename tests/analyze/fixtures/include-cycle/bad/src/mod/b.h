#pragma once
#include "mod/a.h"
namespace wb { struct B { A* peer; }; }
