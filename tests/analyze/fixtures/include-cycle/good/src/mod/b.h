#pragma once
namespace wb { struct B { int x = 0; }; }
