#pragma once
#include "mod/b.h"
namespace wb { struct A { B b; }; }
