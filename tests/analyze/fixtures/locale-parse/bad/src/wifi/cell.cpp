#include <cstdlib>
#include <sstream>
#include <string>
double parse(const std::string& cell) {
  std::istringstream is(cell);
  double v = 0.0;
  is >> v;
  return v;
}
double parse2(const std::string& cell) { return atof(cell.c_str()); }
