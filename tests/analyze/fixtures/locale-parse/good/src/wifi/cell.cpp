#include <sstream>
#include <string>
#include <vector>
std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) out.push_back(cell);  // no extraction
  return out;
}
unsigned shift(unsigned bits) { return bits >> 3; }  // shift, not a stream
