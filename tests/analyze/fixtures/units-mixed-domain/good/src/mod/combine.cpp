#include "util/units.h"
namespace wb::mod {
wb::units::Milliwatts total(wb::units::Dbm a, wb::units::Dbm b) {
  return a.to_mw() + b.to_mw();
}
}  // namespace wb::mod
