namespace wb::mod {
double total(double a_dbm, double b_dbm, double floor_mw, double gain_db) {
  const double sum = a_dbm + b_dbm;
  const double mixed = floor_mw + gain_db;
  return sum + mixed;
}
}  // namespace wb::mod
