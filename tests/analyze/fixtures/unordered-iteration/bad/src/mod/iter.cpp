#include <unordered_set>
int sum(const std::unordered_set<int>& live) {
  int s = 0;
  for (int v : live) s += v;
  return s;
}
int first(const std::unordered_set<int>& live) { return *live.begin(); }
