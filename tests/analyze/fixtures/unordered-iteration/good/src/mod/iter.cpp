#include <map>
#include <unordered_set>
int sum(const std::map<int, int>& totals,
        const std::unordered_set<int>& live) {
  int s = 0;
  for (const auto& [k, v] : totals) s += v;    // ordered container: fine
  s += static_cast<int>(live.count(3));        // point lookup: fine
  return s;
}
