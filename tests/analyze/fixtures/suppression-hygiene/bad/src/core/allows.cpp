// A bare allow with no justification:
// wb-analyze: allow(no-rand)
// An allow naming an unknown rule:
// wb-analyze: allow(definitely-not-a-rule): because I said so
// A justified allow that suppresses nothing (stale):
// wb-analyze: allow(no-stox): left behind by a refactor
int f() { return 1; }
