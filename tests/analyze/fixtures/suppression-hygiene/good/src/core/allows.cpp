#include <chrono>
long stamp() {
  // wb-analyze: allow(no-wallclock): fixture demonstrating a justified suppression; value feeds no result
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
