// rand() in a comment must not fire; sim::RngStream is the real API.
int noise(int state) { return state * 48271 % 2147483647; }
