#include <cstdlib>
int noise() {
  srand(42);
  return rand();
}
