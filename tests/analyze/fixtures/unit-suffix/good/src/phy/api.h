#pragma once
namespace wb::phy {
double attenuation_db(double distance_m, double tx_power_dbm);
}  // namespace wb::phy
