#pragma once
#include "util/units.h"
namespace wb::phy {
double attenuation_db(wb::units::Meters distance_m,
                      wb::units::Dbm tx_power_dbm);
}  // namespace wb::phy
