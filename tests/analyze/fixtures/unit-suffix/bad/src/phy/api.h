#pragma once
namespace wb::phy {
double attenuation(double distance, double tx_power);
}  // namespace wb::phy
