struct Registry {
  void counter(const char*);
  void gauge(const char*);
};
void instrument(Registry& r) {
  r.counter("BadName");
  r.gauge("core.depth");
}
