struct Registry {
  void counter(const char*);
  void histogram(const char*);
};
void instrument(Registry& r) {
  r.counter("core.downlink.frames_total");
  r.histogram("reader.decode.latency_us");
}
