#include <thread>
// src/runner/ owns the concurrency surface; raw threads are legal here.
void spawn() {
  std::thread t([] {});
  t.join();
}
