#include <thread>
void spawn() {
  std::thread t([] {});
  t.join();
}
