#include "pipeline/decode.h"

#include <string>

namespace fx::pipeline {

void Decoder::append_bit(Frame& out, int bit) {
  out.bits[(out.count++) & 7] = bit;
}

// Allocates freely — legal because the only hot call site prunes the
// edge with a justified cold-gate allow.
void Decoder::log_empty(const Frame& f) {
  std::string label = "empty frame";
  label += static_cast<char>('0' + (f.count & 7));
  (void)label;
}

void Decoder::decode_into(const Frame& in, Frame& out) {
  // Explicit sizing into reused capacity is the sanctioned idiom: legal.
  scratch_.assign(8, 0);
  out.count = 0;
  for (int i = 0; i < in.count; ++i) {
    append_bit(out, in.bits[i]);
  }
  if (out.count == 0) {
    log_empty(out);  // wb-analyze: allow(realtime-alloc): empty-frame diagnostics fire at most once per session setup — cold by construction
  }
}

}  // namespace fx::pipeline
