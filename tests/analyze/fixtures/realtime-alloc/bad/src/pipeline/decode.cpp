#include "pipeline/decode.h"

namespace fx::pipeline {

// The violation lives one call level below the root: only the
// interprocedural walk sees it.
void Decoder::append_bit(Frame& out, int bit) {
  scratch_.push_back(bit);
  out.bits[(out.count++) & 7] = bit;
}

void Decoder::decode_into(const Frame& in, Frame& out) {
  out.count = 0;
  for (int i = 0; i < in.count; ++i) {
    append_bit(out, in.bits[i]);
  }
}

}  // namespace fx::pipeline
