#pragma once

#include <vector>

namespace fx::pipeline {

struct Frame {
  int bits[8];
  int count;
};

class Decoder {
 public:
  WB_REALTIME void decode_into(const Frame& in, Frame& out);

 private:
  void append_bit(Frame& out, int bit);

  std::vector<int> scratch_;
};

}  // namespace fx::pipeline
