#pragma once
#include <vector>
using namespace std;
namespace wb {
inline vector<int> v() { return {}; }
}  // namespace wb
