#pragma once
#include <vector>
// A comment mentioning `using namespace std;` must not fire.
inline const char* kDoc = "using namespace std;";  // nor a string literal
namespace wb {
inline std::vector<int> v() { return {}; }
}  // namespace wb
