#include "obs/forensics.h"

namespace wb::obs {

const char* to_string(DropStage stage) noexcept {
  switch (stage) {
    case DropStage::kDecoder:
      return "decoder";
  }
  return "unknown";
}

const char* to_string(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kNoPreamble:
      return "no_preamble";
    case DropReason::kCrcFail:
      return "crc_fail";
  }
  return "unknown";
}

}  // namespace wb::obs
