#include "obs/forensics.h"

namespace wb::reader {

wb::obs::DropReason classify(bool synced) {
  if (!synced) return wb::obs::DropReason::kNoPreamble;
  return wb::obs::DropReason::kCrcFail;
}

}  // namespace wb::reader
