#pragma once

#include <cstdint>

namespace wb::obs {

enum class DropStage : std::uint8_t {
  kDecoder,
};

enum class DropReason : std::uint8_t {
  kNoPreamble,
  kCrcFail,
};

const char* to_string(DropStage stage) noexcept;
const char* to_string(DropReason reason) noexcept;

}  // namespace wb::obs
