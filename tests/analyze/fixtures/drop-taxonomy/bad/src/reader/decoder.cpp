#include "obs/forensics.h"

namespace wb::reader {

// kCrcFail is never recorded anywhere: dead taxonomy.
wb::obs::DropReason classify() {
  return wb::obs::DropReason::kNoPreamble;
}

}  // namespace wb::reader
