// Fixture: every banned construct in one serve data-plane file — growth
// calls, unbounded node containers, and blocking primitives.
#include <chrono>
#include <condition_variable>
#include <deque>
#include <list>
#include <mutex>
#include <thread>
#include <vector>

namespace wb::serve {

struct Backlog {
  std::deque<int> items;
  std::list<int> overflow;
  std::condition_variable cv;
  std::mutex m;
  std::vector<int> staged;

  void enqueue(int v) {
    staged.push_back(v);
    items.emplace_back(v);
  }

  void drain() {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};

}  // namespace wb::serve
