// Fixture: the sanctioned shape — storage preallocated at construction,
// writes by index, backpressure handled by refusing (not waiting).
#include <cstddef>
#include <vector>

namespace wb::serve {

class Ring {
 public:
  explicit Ring(std::size_t capacity) : slots_(capacity, 0) {}

  bool push(int v) {
    if (count_ == slots_.size()) return false;
    slots_[(head_ + count_) % slots_.size()] = v;
    ++count_;
    return true;
  }

  bool pop(int& out) {
    if (count_ == 0) return false;
    out = slots_[head_];
    head_ = (head_ + 1) % slots_.size();
    --count_;
    return true;
  }

 private:
  std::vector<int> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace wb::serve
