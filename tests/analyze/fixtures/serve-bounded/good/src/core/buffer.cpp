// Fixture: the rule is scoped to src/serve/ — growth elsewhere is fine.
#include <vector>

namespace wb::core {

void collect(std::vector<int>& out, int v) { out.push_back(v); }

}  // namespace wb::core
