#pragma once

namespace fx::pipeline {

class FrameSink {
 public:
  // Declaration carries a default argument; the out-of-line definition
  // does not repeat it. Arity ranges overlap, so the marker resolves.
  WB_REALTIME void on_frame(int frame_id, int channel = 0);
};

}  // namespace fx::pipeline
