#include "pipeline/sink.h"

namespace fx::pipeline {

void FrameSink::on_frame(int frame_id, int channel) {
  (void)frame_id;
  (void)channel;
}

}  // namespace fx::pipeline
