#pragma once

namespace fx::pipeline {

class FrameSink {
 public:
  // Stale: the definition below gained a `channel` parameter and the
  // declaration was never updated, so the marker guards nothing.
  WB_REALTIME void on_frame(int frame_id);
};

}  // namespace fx::pipeline
