#pragma once
#include "util/units.h"
namespace wb::mod {
struct LinkBudget {
  wb::units::Dbm tx_power_dbm{16.0};
  wb::units::Db wall_loss_db{};
};
struct CaptureCell {
  double rssi_dbm[3];     // wire-shaped C array: stays raw by contract
  double smooth_tau_us = 5.0;  // fractional-us analog constant: raw ok
};
double margin(wb::units::Milliwatts noise_mw, wb::units::Meters range_m);
}  // namespace wb::mod
