#pragma once
namespace wb::mod {
struct LinkBudget {
  double tx_power_dbm = 16.0;
  float wall_loss_db = 0.0f;
};
double margin(double noise_mw, double range_m);
}  // namespace wb::mod
