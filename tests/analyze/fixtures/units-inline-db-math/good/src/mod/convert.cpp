#include "util/units.h"
namespace wb::mod {
double to_mw(double dbm) { return wb::units::dbm_to_mw(dbm); }
double to_db(double ratio) { return wb::units::ratio_to_db(ratio); }
double to_amp_db(double r) { return wb::units::amplitude_ratio_to_db(r); }
}  // namespace wb::mod
