#include <cmath>
namespace wb::mod {
double to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
double to_db(double ratio) { return 10.0 * std::log10(ratio); }
double to_amp_db(double r) { return 20.0 * std::log10(r); }
}  // namespace wb::mod
