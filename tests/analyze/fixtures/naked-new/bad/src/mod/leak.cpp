int* leak() { return new int(42); }
void assign() { int* p = new int(7); delete p; }
int* arr() { return new int[8]; }
