#include <cstddef>
#include <memory>
#include <new>
struct Pool {
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
};
void* operator new(std::size_t n);          // allocator machinery: fine
void operator delete(void* p) noexcept;     // allocator machinery: fine
std::unique_ptr<int> make() { return std::make_unique<int>(42); }
