#include "pipeline/engine.h"

#include <mutex>

namespace fx::pipeline {

namespace {

std::mutex g_mu;
int g_pending = 0;

// The lock sits two call levels below the root.
void drain_pending() {
  const std::lock_guard<std::mutex> lock(g_mu);
  g_pending = 0;
}

void step() { drain_pending(); }

}  // namespace

void poll_once(int budget) {
  for (int i = 0; i < budget; ++i) {
    step();
  }
}

}  // namespace fx::pipeline
