#include "pipeline/engine.h"

#include <mutex>

namespace fx::pipeline {

namespace {

std::mutex g_mu;
int g_pending = 0;

// Blocking, but only reachable through the cold-gated shutdown edge.
void flush_blocking() {
  const std::lock_guard<std::mutex> lock(g_mu);
  g_pending = 0;
}

}  // namespace

void poll_once(int budget) {
  if (budget < 0) {
    flush_blocking();  // wb-analyze: allow(realtime-blocking): negative budget is the shutdown handshake — callers opt into blocking there
    return;
  }
  for (int i = 0; i < budget; ++i) {
    g_pending = 0;
  }
}

}  // namespace fx::pipeline
