#pragma once

namespace fx::pipeline {

WB_REALTIME void poll_once(int budget);

}  // namespace fx::pipeline
