// Identifiers containing `time` must not fire the lookbehind patterns.
long run_time(long now_us);
long advance(long now_us) { return run_time(now_us) + 5; }
