#include <chrono>
// src/runner/ may read the host clock (thread-pool timeouts etc.).
long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
