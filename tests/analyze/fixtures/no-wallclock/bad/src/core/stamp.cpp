#include <chrono>
#include <cstdlib>
long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
const char* home() { return std::getenv("HOME"); }
