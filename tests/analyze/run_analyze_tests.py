#!/usr/bin/env python3
"""Fixture-corpus driver for tools/wb_analyze (registered in ctest as
`analyze_fixtures`).

Layout: tests/analyze/fixtures/<rule>/{good,bad}/ — each a miniature scan
root (src/, bench/, examples/ as needed). Contract per case:

  bad/   the analyzer exits non-zero, reports >= 1 finding of exactly the
         rule named by the directory, and NO findings of any other rule
         (so a rule regression AND cross-rule false positives both fail)
  good/  the analyzer exits zero with zero unsuppressed findings

The analyzer is exercised through its real CLI (subprocess), the same way
scripts/check.sh and CI invoke it, so flag parsing and JSON output are
covered too.
"""
from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
ANALYZER = REPO / "tools" / "wb_analyze"


def run_case(root: Path, json_out: Path,
             extra: list[str] | None = None) -> tuple[int, dict]:
    proc = subprocess.run(
        [sys.executable, str(ANALYZER), "--root", str(root),
         "--json-out", str(json_out), "--quiet", *(extra or [])],
        capture_output=True, text=True)
    try:
        doc = json.loads(json_out.read_text())
    except (OSError, json.JSONDecodeError):
        doc = {}
    return proc.returncode, doc


def main() -> int:
    if not FIXTURES.is_dir():
        print(f"analyze_fixtures: missing {FIXTURES}", file=sys.stderr)
        return 1

    failures: list[str] = []
    cases = 0
    with tempfile.TemporaryDirectory() as tmp:
        for case in sorted(p for p in FIXTURES.iterdir() if p.is_dir()):
            rule = case.name
            for kind in ("good", "bad"):
                root = case / kind
                cases += 1
                if not root.is_dir():
                    failures.append(f"{rule}/{kind}: fixture tree missing")
                    continue
                rc, doc = run_case(root, Path(tmp) / f"{rule}.{kind}.json")
                if not doc:
                    failures.append(f"{rule}/{kind}: no JSON report")
                    continue
                nonzero = {r: c for r, c in doc["counts"].items() if c}
                if kind == "bad":
                    if rc == 0:
                        failures.append(f"{rule}/bad: expected non-zero exit")
                    elif nonzero.get(rule, 0) < 1:
                        failures.append(
                            f"{rule}/bad: rule did not fire (counts: "
                            f"{nonzero or '{}'})")
                    elif set(nonzero) != {rule}:
                        failures.append(
                            f"{rule}/bad: unexpected cross-rule findings: "
                            f"{nonzero}")
                else:
                    if rc != 0 or nonzero:
                        failures.append(
                            f"{rule}/good: expected clean run, got exit {rc}"
                            f" counts {nonzero}")

        # --rule filtering, driven against a real bad fixture: filtering
        # to the fixture's own rule still fires; filtering to an
        # unrelated rule is clean (and must not flag the unrelated
        # rule's suppressions as stale); an unknown name is usage error.
        filter_root = FIXTURES / "units-raw-api" / "bad"
        cases += 3
        rc, doc = run_case(filter_root, Path(tmp) / "filter.own.json",
                           extra=["--rule", "units-raw-api"])
        hits = {r: c for r, c in doc.get("counts", {}).items() if c}
        if rc == 0 or set(hits) != {"units-raw-api"}:
            failures.append(
                f"--rule own: expected only units-raw-api, got exit {rc} "
                f"counts {hits}")
        rc, doc = run_case(filter_root, Path(tmp) / "filter.other.json",
                           extra=["--rule", "no-rand", "--rule", "no-stox"])
        hits = {r: c for r, c in doc.get("counts", {}).items() if c}
        if rc != 0 or hits:
            failures.append(
                f"--rule other: expected clean, got exit {rc} counts {hits}")
        rc, _ = run_case(filter_root, Path(tmp) / "filter.unknown.json",
                         extra=["--rule", "no-such-rule"])
        if rc != 2:
            failures.append(f"--rule unknown: expected exit 2, got {rc}")

    # --list-rules must include every units-family rule with its family.
    listing = subprocess.run(
        [sys.executable, str(ANALYZER), "--list-rules"],
        capture_output=True, text=True)
    cases += 1
    missing = [r for r in ("units-raw-api", "units-inline-db-math",
                           "units-mixed-domain")
               if r not in listing.stdout or "[units/" not in listing.stdout]
    if listing.returncode != 0 or missing:
        failures.append(f"--list-rules: missing units rules {missing}")

    # The legacy entry point must stay alive (ROADMAP pre-PR gate docs and
    # muscle memory both call it).
    shim = subprocess.run(
        [sys.executable, str(REPO / "tools" / "wb_lint.py"), "--list-rules"],
        capture_output=True, text=True)
    cases += 1
    if shim.returncode != 0:
        failures.append("wb_lint.py shim: --list-rules exited non-zero")

    for f in failures:
        print(f"FAIL {f}")
    if failures:
        print(f"analyze_fixtures: {len(failures)}/{cases} case(s) failed",
              file=sys.stderr)
        return 1
    print(f"analyze_fixtures: OK ({cases} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
