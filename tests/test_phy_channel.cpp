#include "phy/uplink_channel.h"

#include <gtest/gtest.h>

#include "phy/drift.h"
#include "util/stats.h"

namespace wb::phy {
namespace {

UplinkChannelParams params_at(double tag_reader_m) {
  UplinkChannelParams p;
  p.reader_pos = {0.0, 0.0};
  p.tag_pos = {tag_reader_m, 0.0};
  p.helper_pos = {tag_reader_m + 3.0, 0.0};
  return p;
}

TEST(OuProcess, StartsFromStationaryDistribution) {
  RunningStats stats;
  for (int i = 0; i < 2'000; ++i) {
    sim::RngStream rng(static_cast<std::uint64_t>(i) + 1);
    OuProcess ou(1.0, 0.5, rng);
    stats.push(ou.at(TimeUs{0}));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 0.5, 0.05);
}

TEST(OuProcess, StationaryVarianceOverTime) {
  sim::RngStream rng(3);
  OuProcess ou(0.5, 0.2, rng);
  RunningStats stats;
  for (TimeUs t{0}; t < kMicrosPerSec * 60; t += TimeUs{10'000}) {
    stats.push(ou.at(t));
  }
  EXPECT_NEAR(stats.stddev(), 0.2, 0.05);
}

TEST(OuProcess, ContinuousOverSmallSteps) {
  sim::RngStream rng(4);
  OuProcess ou(2.0, 0.1, rng);
  double prev = ou.at(TimeUs{0});
  for (TimeUs t{100}; t < TimeUs{100'000}; t += TimeUs{100}) {
    const double x = ou.at(t);
    EXPECT_LT(std::abs(x - prev), 0.05);  // 100 us steps are tiny vs tau
    prev = x;
  }
}

TEST(OuProcess, ZeroDtReturnsSameValue) {
  sim::RngStream rng(5);
  OuProcess ou(1.0, 0.3, rng);
  const double a = ou.at(TimeUs{1'000});
  const double b = ou.at(TimeUs{1'000});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(UplinkChannel, ResponseIsDirectPlusDelta) {
  sim::RngStream rng(6);
  UplinkChannelParams p = params_at(0.3);
  p.drift.antenna_sigma = 0.0;  // disable drift for exactness
  p.drift.subchannel_sigma = 0.0;
  UplinkChannel ch(p, rng);
  const auto off = ch.response(false, TimeUs{});
  const auto on = ch.response(true, TimeUs{});
  for (std::size_t a = 0; a < kNumAntennas; ++a) {
    for (std::size_t s = 0; s < kNumSubchannels; ++s) {
      EXPECT_NEAR(std::abs(on[a][s] - off[a][s] - ch.delta()[a][s]), 0.0,
                  1e-12);
    }
  }
}

TEST(UplinkChannel, DepthDecaysWithTagReaderDistance) {
  double prev = 1e9;
  for (double d : {0.05, 0.2, 0.5, 1.0, 2.0}) {
    sim::RngStream rng(7);  // same multipath luck across distances
    UplinkChannel ch(params_at(d), rng);
    const double depth = ch.mean_relative_depth();
    EXPECT_LT(depth, prev) << d;
    prev = depth;
  }
}

TEST(UplinkChannel, DepthIsSubstantialAtCloseRange) {
  sim::RngStream rng(8);
  UplinkChannel ch(params_at(0.05), rng);
  // Fig 3: clearly visible two-level modulation at 5 cm.
  EXPECT_GT(ch.mean_relative_depth(), 0.05);
  EXPECT_LT(ch.mean_relative_depth(), 1.5);
}

TEST(UplinkChannel, DriftChangesResponseOverTime) {
  sim::RngStream rng(9);
  UplinkChannel ch(params_at(0.3), rng);
  const auto h0 = ch.response(false, TimeUs{});
  const auto h1 = ch.response(false, kMicrosPerSec * 10);
  double diff = 0.0;
  for (std::size_t a = 0; a < kNumAntennas; ++a) {
    for (std::size_t s = 0; s < kNumSubchannels; ++s) {
      diff += std::abs(h0[a][s] - h1[a][s]);
    }
  }
  EXPECT_GT(diff, 0.0);
}

TEST(UplinkChannel, CoherenceAlignsDeltaWithDirectAtCloseRange) {
  // At 5 cm the backscatter perturbation should be strongly correlated
  // with the direct channel; at 2 m it should not.
  auto alignment = [](double d) {
    sim::RngStream rng(10);
    UplinkChannelParams p = params_at(d);
    UplinkChannel ch(p, rng);
    std::complex<double> num{0.0, 0.0};
    double den_a = 0.0, den_b = 0.0;
    for (std::size_t a = 0; a < kNumAntennas; ++a) {
      for (std::size_t s = 0; s < kNumSubchannels; ++s) {
        const auto x = ch.delta()[a][s];
        const auto y = ch.direct()[a][s];
        num += x * std::conj(y);
        den_a += std::norm(x);
        den_b += std::norm(y);
      }
    }
    return std::abs(num) / std::sqrt(den_a * den_b);
  };
  EXPECT_GT(alignment(0.05), alignment(2.0));
  EXPECT_GT(alignment(0.05), 0.5);
}

TEST(UplinkChannel, WallAttenuatesEverything) {
  FloorPlan plan;
  plan.add_wall(Wall{{1.5, -5}, {1.5, 5}, Db{10.0}});
  UplinkChannelParams with_wall = params_at(0.3);
  with_wall.plan = &plan;  // wall between helper (3.3, 0) and the others
  sim::RngStream rng1(11), rng2(11);
  UplinkChannel ch_wall(with_wall, rng1);
  UplinkChannel ch_open(params_at(0.3), rng2);
  double p_wall = 0.0, p_open = 0.0;
  for (std::size_t s = 0; s < kNumSubchannels; ++s) {
    p_wall += std::norm(ch_wall.direct()[0][s]);
    p_open += std::norm(ch_open.direct()[0][s]);
  }
  EXPECT_LT(p_wall, p_open * 0.2);  // 10 dB wall
}

TEST(UplinkChannel, TagReflectionContrast) {
  TagReflection tr;
  EXPECT_GT(std::abs(tr.delta()), 0.0);
  EXPECT_NEAR(std::abs(tr.state_factor(true)) /
                  std::abs(tr.state_factor(false)),
              0.95 / 0.05, 1e-9);
}

TEST(ChannelDrift, BoundedByConfiguredSigma) {
  ChannelDrift::Params p;
  p.antenna_sigma = 0.03;
  p.subchannel_sigma = 0.008;
  sim::RngStream rng(12);
  ChannelDrift drift(p, rng);
  RunningStats stats;
  for (TimeUs t{0}; t < kMicrosPerSec * 30; t += TimeUs{5'000}) {
    stats.push(drift.at(0, 0, t));
  }
  // Combined stationary sigma ~ sqrt(0.03^2 + 0.008^2) ~ 0.031.
  EXPECT_NEAR(stats.stddev(), 0.031, 0.012);
  EXPECT_LT(std::abs(stats.mean()), 0.03);
}

}  // namespace
}  // namespace wb::phy
