// Integration tests over the experiment drivers — the same code paths the
// figure benches run, pinned at small sizes so the suite stays fast while
// still asserting the paper's headline orderings.
#include "core/experiments.h"

#include <gtest/gtest.h>

namespace wb::core {
namespace {

UplinkExperimentParams quick_params(double distance_m, std::uint64_t seed) {
  UplinkExperimentParams p;
  p.tag_reader_distance_m = Meters{distance_m};
  p.packets_per_bit = 30.0;
  p.payload_bits = 40;
  p.runs = 4;
  p.seed = seed;
  return p;
}

TEST(Experiments, CloseRangeDecodesCleanly) {
  const auto m = measure_uplink_ber(quick_params(0.05, 1));
  EXPECT_EQ(m.failed_syncs, 0u);
  EXPECT_LT(m.ber_raw, 0.02);
}

TEST(Experiments, BerRisesWithDistance) {
  // Average over several seeds to defeat placement luck.
  double close_total = 0.0, far_total = 0.0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    close_total += measure_uplink_ber(quick_params(0.10, s)).ber_raw;
    far_total += measure_uplink_ber(quick_params(0.90, s)).ber_raw;
  }
  EXPECT_LT(close_total, far_total);
  EXPECT_GT(far_total, 0.01);
}

TEST(Experiments, CsiOutperformsRssiAtMidRange) {
  double csi_total = 0.0, rssi_total = 0.0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    auto p = quick_params(0.35, s);
    csi_total += measure_uplink_ber(p).ber_raw;
    p.source = reader::MeasurementSource::kRssi;
    rssi_total += measure_uplink_ber(p).ber_raw;
  }
  EXPECT_LT(csi_total, rssi_total);
}

TEST(Experiments, CombiningBeatsRandomStream) {
  auto p = quick_params(0.40, 4);
  const auto ours = measure_uplink_ber(p);
  const auto random = measure_uplink_ber_random_stream(p);
  EXPECT_LT(ours.ber_raw, random.ber_raw + 1e-9);
  EXPECT_GT(random.ber_raw, 0.02);
}

TEST(Experiments, PerStreamBerHasGoodAndBadStreams) {
  auto p = quick_params(0.15, 5);
  p.runs = 2;
  const auto bers = measure_per_stream_ber(p);
  ASSERT_EQ(bers.size(), wifi::kNumCsiStreams);
  std::size_t good = 0, bad = 0;
  for (double b : bers) {
    if (b < 1e-2) ++good;
    if (b > 0.2) ++bad;
  }
  EXPECT_GT(good, 0u);
  EXPECT_GT(bad, 0u);  // the weak antenna's streams at least
}

TEST(Experiments, PacketDeliveryHighAtCloseRange) {
  auto p = quick_params(0.05, 6);
  p.payload_bits = 24;
  p.runs = 6;
  EXPECT_GE(measure_packet_delivery(p), 0.8);
}

TEST(Experiments, AchievableRateGrowsWithHelperRate) {
  UplinkExperimentParams p = quick_params(0.05, 7);
  p.payload_bits = 48;
  p.runs = 3;
  p.helper_pps = 400.0;
  const double slow = achievable_bit_rate(p);
  p.helper_pps = 3'000.0;
  const double fast = achievable_bit_rate(p);
  EXPECT_GE(fast, slow);
  EXPECT_GE(fast, 500.0);
  EXPECT_GT(slow, 0.0);
}

TEST(Experiments, CodedDecoderReachesBeyondPlainRange) {
  // At 1.2 m the plain decoder is dead (Fig 6) but a 20-chip code works
  // (Fig 20).
  CodedExperimentParams coded;
  coded.tag_reader_distance_m = Meters{1.2};
  coded.code_length = 20;
  coded.packets_per_chip = 4.0;
  coded.payload_bits = 12;
  coded.runs = 3;
  coded.seed = 8;
  const auto coded_m = measure_coded_uplink_ber(coded);
  EXPECT_LT(coded_m.ber_raw, 0.05);

  auto plain = quick_params(1.2, 8);
  plain.runs = 3;
  const auto plain_m = measure_uplink_ber(plain);
  EXPECT_GT(plain_m.ber_raw, coded_m.ber_raw);
}

TEST(Experiments, LongerCodesExtendRange) {
  CodedExperimentParams p;
  p.tag_reader_distance_m = Meters{2.0};
  p.packets_per_chip = 2.0;
  p.payload_bits = 12;
  p.runs = 3;
  p.seed = 9;
  p.code_length = 4;
  const auto short_code = measure_coded_uplink_ber(p);
  p.code_length = 64;
  const auto long_code = measure_coded_uplink_ber(p);
  EXPECT_LE(long_code.ber_raw, short_code.ber_raw + 1e-9);
}

TEST(Experiments, RequiredLengthMonotoneInterface) {
  CodedExperimentParams p;
  p.tag_reader_distance_m = Meters{0.6};
  p.packets_per_chip = 2.0;
  p.payload_bits = 12;
  p.runs = 2;
  p.seed = 10;
  const auto l = required_correlation_length(p, {4, 16, 64});
  EXPECT_NE(l, 0u);  // 0.6 m is inside even the plain decoder's range
}

TEST(Experiments, BeaconOnlyUplinkWorks) {
  UplinkExperimentParams p;
  p.tag_reader_distance_m = Meters{0.05};
  p.helper_pps = 50.0;  // beacons/s
  p.packets_per_bit = 2.5;
  p.beacons_only = true;
  p.source = reader::MeasurementSource::kRssi;
  p.payload_bits = 24;
  p.runs = 3;
  p.seed = 11;
  const auto m = measure_uplink_ber(p);
  EXPECT_LT(m.ber_raw, 0.05);
}

TEST(Experiments, GeometryOverridesAreUsed) {
  // Putting the helper behind a thick wall must reduce absolute signal
  // but leave relative decoding workable (Fig 14's point).
  phy::FloorPlan plan;
  plan.add_wall(phy::Wall{{1.5, -5.0}, {1.5, 5.0}, Db{8.0}});
  UplinkExperimentParams p = quick_params(0.05, 12);
  p.helper_pos = phy::Vec2{4.0, 0.0};
  p.reader_pos = phy::Vec2{0.0, 0.0};
  p.tag_pos = phy::Vec2{0.05, 0.0};
  p.plan = &plan;
  p.payload_bits = 24;
  const auto m = measure_uplink_ber(p);
  EXPECT_EQ(m.failed_syncs, 0u);
  EXPECT_LT(m.ber_raw, 0.05);
}

}  // namespace
}  // namespace wb::core
