#include "tag/mcu.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace wb::tag {
namespace {

/// Compute the comparator edge times a clean transmission of
/// `preamble + payload` produces, bit duration T, starting at t0.
struct EdgeStream {
  std::vector<std::pair<TimeUs, bool>> edges;  // (time, level-after)
};

EdgeStream edges_for(const BitVec& bits, TimeUs t0, TimeUs bit_us) {
  EdgeStream s;
  bool level = false;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool b = bits[i] != 0;
    if (b != level) {
      s.edges.emplace_back(
          t0 + bit_us * static_cast<std::int64_t>(i), b);
      level = b;
    }
  }
  if (level) {
    s.edges.emplace_back(
        t0 + bit_us * static_cast<std::int64_t>(bits.size()), false);
  }
  return s;
}

McuParams test_params() {
  McuParams p = McuParams::defaults();
  p.bit_duration_us = TimeUs{50};
  p.payload_bits = 8;
  return p;
}

/// Drive the MCU through a clean frame; returns decoded payloads.
std::vector<McuDecodeResult> run_frame(Mcu& mcu, const BitVec& payload,
                                       TimeUs t0, TimeUs bit_us) {
  BitVec message = McuParams::defaults().preamble;
  message.insert(message.end(), payload.begin(), payload.end());
  const auto stream = edges_for(message, t0, bit_us);
  std::size_t e = 0;
  const TimeUs end =
      t0 + bit_us * static_cast<std::int64_t>(message.size() + 2);
  for (TimeUs t = t0 - TimeUs{100}; t < end; t += TimeUs{1}) {
    while (e < stream.edges.size() && stream.edges[e].first <= t) {
      mcu.on_transition(stream.edges[e].first, stream.edges[e].second);
      ++e;
    }
    if (const auto s = mcu.next_sample_time()) {
      if (*s <= t) {
        // Level at time *s from the message schedule.
        const auto idx = static_cast<std::size_t>((*s - t0) / bit_us);
        const bool level = idx < message.size() && message[idx] != 0;
        mcu.on_sample(*s, level);
      }
    }
  }
  return mcu.decoded();
}

TEST(Mcu, DecodesCleanFrame) {
  Mcu mcu(test_params());
  const BitVec payload = {1, 0, 1, 1, 0, 0, 1, 0};
  const auto decoded = run_frame(mcu, payload, TimeUs{10'000}, TimeUs{50});
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].payload, payload);
  EXPECT_EQ(mcu.decode_mode_entries(), 1u);
}

TEST(Mcu, PayloadStartAfterPreamble) {
  Mcu mcu(test_params());
  const BitVec payload = {1, 1, 1, 1, 0, 0, 0, 0};
  const auto decoded = run_frame(mcu, payload, TimeUs{10'000}, TimeUs{50});
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].payload_start_us,
            TimeUs{10'000 + 16 * 50});  // 16-bit preamble
}

TEST(Mcu, RearmsAfterDecode) {
  Mcu mcu(test_params());
  const BitVec p1 = {1, 0, 1, 0, 1, 0, 1, 0};
  const BitVec p2 = {0, 1, 1, 0, 0, 1, 1, 0};
  run_frame(mcu, p1, TimeUs{10'000}, TimeUs{50});
  const auto decoded = run_frame(mcu, p2, TimeUs{50'000}, TimeUs{50});
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[1].payload, p2);
}

TEST(Mcu, ToleratesIntervalJitter) {
  // Edges jittered by 10% of the bit duration must still match (tolerance
  // is 30%).
  McuParams params = test_params();
  Mcu mcu(params);
  BitVec message = params.preamble;
  const BitVec payload = {1, 0, 0, 1, 1, 0, 1, 1};
  message.insert(message.end(), payload.begin(), payload.end());
  auto stream = edges_for(message, TimeUs{10'000}, TimeUs{50});
  sim::RngStream rng(3);
  for (auto& [t, level] : stream.edges) {
    t += TimeUs{static_cast<std::int64_t>(rng.uniform(-5.0, 5.0))};
  }
  std::size_t e = 0;
  for (TimeUs t{9'000}; t < TimeUs{12'500}; t += TimeUs{1}) {
    while (e < stream.edges.size() && stream.edges[e].first <= t) {
      mcu.on_transition(stream.edges[e].first, stream.edges[e].second);
      ++e;
    }
    if (const auto s = mcu.next_sample_time()) {
      if (*s <= t) {
        const auto idx =
            static_cast<std::size_t>((*s - TimeUs{10'000}) / TimeUs{50});
        mcu.on_sample(*s, idx < message.size() && message[idx] != 0);
      }
    }
  }
  ASSERT_EQ(mcu.decoded().size(), 1u);
  EXPECT_EQ(mcu.decoded()[0].payload, payload);
}

TEST(Mcu, RejectsWrongIntervalPattern) {
  Mcu mcu(test_params());
  // Uniform 50 us toggling does not match the preamble's run structure.
  bool level = false;
  for (TimeUs t{0}; t < TimeUs{20'000}; t += TimeUs{50}) {
    level = !level;
    mcu.on_transition(t, level);
  }
  EXPECT_EQ(mcu.decode_mode_entries(), 0u);
}

TEST(Mcu, RejectsScaledPattern) {
  // The right run-length *ratios* at double the bit duration must not
  // match (absolute intervals are checked).
  McuParams params = test_params();
  Mcu mcu(params);
  BitVec message = params.preamble;
  message.insert(message.end(), 8, 0);
  const auto stream =
      edges_for(message, TimeUs{}, TimeUs{100});  // 2x slower
  for (const auto& [t, level] : stream.edges) {
    mcu.on_transition(t, level);
  }
  EXPECT_EQ(mcu.decode_mode_entries(), 0u);
}

TEST(Mcu, SampleTimesAreMidBit) {
  McuParams params = test_params();
  Mcu mcu(params);
  BitVec message = params.preamble;
  message.insert(message.end(), 8, 1);
  const auto stream = edges_for(message, TimeUs{}, TimeUs{50});
  for (const auto& [t, level] : stream.edges) {
    mcu.on_transition(t, level);
    if (mcu.decoding()) break;
  }
  ASSERT_TRUE(mcu.decoding());
  const auto s = mcu.next_sample_time();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, TimeUs{16 * 50 + 25});  // middle of the first payload bit
}

TEST(Mcu, EnergyGrowsWithActivity) {
  McuParams params = test_params();
  Mcu quiet_mcu(params);
  Mcu busy_mcu(params);
  quiet_mcu.on_transition(TimeUs{}, true);
  busy_mcu.on_transition(TimeUs{}, true);
  for (TimeUs t{10}; t < TimeUs{10'000}; t += TimeUs{10}) {
    busy_mcu.on_transition(t, (t / TimeUs{10}) % 2 == 0);
  }
  EXPECT_GT(busy_mcu.energy_uj(TimeUs{10'000}),
            quiet_mcu.energy_uj(TimeUs{10'000}));
}

TEST(Mcu, SleepEnergyDominatesWhenIdle) {
  McuParams params = test_params();
  Mcu mcu(params);
  mcu.on_transition(TimeUs{}, true);
  mcu.on_transition(TimeUs{100}, false);
  // One hour idle at 0.5 uW sleep ~ 1800 uJ; two wakes ~ 0.007 uJ.
  const double e = mcu.energy_uj(kMicrosPerSec * 3'600);
  EXPECT_NEAR(e, 1'800.0, 10.0);
}

TEST(Mcu, DefaultPreambleStartsHighAndHasIrregularRuns) {
  const auto p = McuParams::defaults();
  EXPECT_EQ(p.preamble.front(), 1);
  EXPECT_EQ(p.preamble.size(), 16u);
}

}  // namespace
}  // namespace wb::tag
