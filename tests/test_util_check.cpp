#include "util/check.h"

#include <gtest/gtest.h>

#include <string>

#include "phy/drift.h"
#include "reader/conditioning.h"
#include "reader/uplink_decoder.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "tag/harvester.h"

namespace wb {
namespace {

// ---------------- macro semantics ----------------

TEST(Check, PassingContractsAreNoOps) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  EXPECT_NO_THROW(WB_REQUIRE(true));
  EXPECT_NO_THROW(WB_ENSURE(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(WB_INVARIANT(true));
}

TEST(Check, ConditionIsEvaluatedExactlyOnce) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  int calls = 0;
  WB_REQUIRE([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

TEST(Check, ThrowPolicyRaisesContractViolation) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  EXPECT_THROW(WB_REQUIRE(false), ContractViolation);
  EXPECT_THROW(WB_ENSURE(false), ContractViolation);
  EXPECT_THROW(WB_INVARIANT(false), ContractViolation);
}

TEST(Check, ViolationMessageCarriesLocationKindAndText) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  std::string what;
  try {
    WB_REQUIRE(2 < 1, "two is not less than one");
  } catch (const ContractViolation& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("test_util_check.cpp"), std::string::npos) << what;
  EXPECT_NE(what.find("precondition"), std::string::npos) << what;
  EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
  EXPECT_NE(what.find("two is not less than one"), std::string::npos) << what;
}

TEST(Check, EnsureAndInvariantReportTheirKind) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  try {
    WB_ENSURE(false);
    FAIL() << "WB_ENSURE(false) did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"),
              std::string::npos);
  }
  try {
    WB_INVARIANT(false);
    FAIL() << "WB_INVARIANT(false) did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Check, ScopedPolicyRestoresOnExit) {
  ASSERT_EQ(contract_policy(), ContractPolicy::kAbort);
  {
    ScopedContractPolicy guard(ContractPolicy::kThrow);
    EXPECT_EQ(contract_policy(), ContractPolicy::kThrow);
    {
      ScopedContractPolicy inner(ContractPolicy::kAbort);
      EXPECT_EQ(contract_policy(), ContractPolicy::kAbort);
    }
    EXPECT_EQ(contract_policy(), ContractPolicy::kThrow);
  }
  EXPECT_EQ(contract_policy(), ContractPolicy::kAbort);
}

TEST(CheckDeathTest, DefaultPolicyAbortsWithLocation) {
  ASSERT_EQ(contract_policy(), ContractPolicy::kAbort);
  EXPECT_DEATH(WB_REQUIRE(false, "boom"), "precondition violated.*boom");
}

// ---------------- wired boundary contracts ----------------
//
// One representative precondition per module, exercised through the
// public API it guards.

TEST(WiredContracts, EventQueueRejectsSchedulingIntoThePast) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  sim::EventQueue q;
  q.schedule_at(TimeUs{1'000}, [] {});
  q.run_until(TimeUs{1'000});
  ASSERT_EQ(q.now(), TimeUs{1'000});
  EXPECT_THROW(q.schedule_at(TimeUs{999}, [] {}), ContractViolation);
  EXPECT_THROW(q.schedule_in(TimeUs{-1}, [] {}), ContractViolation);
  EXPECT_THROW(q.schedule_at(TimeUs{2'000}, sim::EventFn{}),
               ContractViolation);
}

TEST(WiredContracts, RngRejectsDegenerateDistributions) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  sim::RngStream rng(7);
  EXPECT_THROW(rng.uniform_int(0), ContractViolation);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(WiredContracts, DecoderConfigMustBeWellFormed) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  reader::UplinkDecoderConfig cfg;
  cfg.bit_duration_us = TimeUs{};
  EXPECT_THROW(reader::UplinkDecoder{cfg}, ContractViolation);
  cfg = reader::UplinkDecoderConfig{};
  cfg.preamble.clear();
  EXPECT_THROW(reader::UplinkDecoder{cfg}, ContractViolation);
  cfg = reader::UplinkDecoderConfig{};
  cfg.num_good_streams = 0;
  EXPECT_THROW(reader::UplinkDecoder{cfg}, ContractViolation);
}

TEST(WiredContracts, ConditioningRejectsMalformedSeries) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  const std::vector<TimeUs> sorted{TimeUs{0}, TimeUs{10}, TimeUs{20}};
  const std::vector<TimeUs> unsorted{TimeUs{0}, TimeUs{20}, TimeUs{10}};
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW(reader::remove_time_moving_average(sorted, xs, TimeUs{}),
               ContractViolation);
  EXPECT_THROW(
      reader::remove_time_moving_average(unsorted, xs, TimeUs{100}),
               ContractViolation);
  EXPECT_THROW(reader::remove_time_moving_average({TimeUs{0}, TimeUs{10}},
                                                  xs, TimeUs{100}),
               ContractViolation);
}

TEST(WiredContracts, PhyDriftRejectsOutOfRangeStream) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  sim::RngStream rng(3);
  phy::ChannelDrift drift(phy::ChannelDrift::Params{}, rng.fork("d"));
  EXPECT_THROW(drift.at(phy::kNumAntennas, 0, TimeUs{}),
               ContractViolation);
  EXPECT_THROW(drift.at(0, phy::kNumSubchannels, TimeUs{}),
               ContractViolation);
  phy::ChannelDrift::Params bad;
  bad.antenna_tau_s = 0.0;
  EXPECT_THROW(phy::ChannelDrift(bad, rng.fork("b")), ContractViolation);
}

TEST(WiredContracts, HarvesterRejectsNonPhysicalBudgets) {
  ScopedContractPolicy guard(ContractPolicy::kThrow);
  EXPECT_THROW(tag::incident_power_dbm(Dbm{30.0}, Meters{}),
               ContractViolation);
  tag::Harvester ok{tag::HarvesterParams{}};
  EXPECT_THROW(ok.sustainable_duty_cycle(-1.0, 10.0), ContractViolation);
  tag::HarvesterParams p;
  p.v_high = p.v_low;  // no capacitor swing: burst energy is undefined
  tag::Harvester flat{p};
  EXPECT_THROW(flat.burst_seconds(10.0, 1.0), ContractViolation);
}

}  // namespace
}  // namespace wb
