#include "reader/multi_helper.h"

#include <gtest/gtest.h>

#include "phy/uplink_channel.h"
#include "tag/modulator.h"
#include "util/codes.h"
#include "wifi/nic.h"
#include "wifi/traffic.h"

namespace wb::reader {
namespace {

/// Two helpers at different positions, one tag, one reader NIC. Each
/// helper's packets traverse its own channel realisation.
struct TwoHelperWorld {
  wifi::CaptureTrace trace;
  BitVec payload;
  TimeUs frame_start{600'000};
  TimeUs bit_us{10'000};
};

TwoHelperWorld make_world(double pps_each, std::size_t payload_bits,
                          std::uint64_t seed, double noise_rel = 0.08) {
  TwoHelperWorld w;
  w.payload = random_bits(payload_bits, seed ^ 0xCAFE);
  BitVec frame = barker13();
  frame.insert(frame.end(), w.payload.begin(), w.payload.end());
  tag::Modulator mod(frame, w.bit_us, w.frame_start);

  sim::RngStream rng(seed);
  phy::UplinkChannelParams base;
  base.reader_pos = {0.0, 0.0};
  base.tag_pos = {0.15, 0.0};

  phy::UplinkChannelParams p1 = base;
  p1.helper_pos = {3.0, 0.5};
  phy::UplinkChannelParams p2 = base;
  p2.helper_pos = {-2.0, -1.5};  // opposite side of the room
  phy::UplinkChannel ch1(p1, rng.fork("ch1"));
  phy::UplinkChannel ch2(p2, rng.fork("ch2"));

  wifi::NicModelParams nic_params;
  nic_params.csi_noise_rel = noise_rel;
  wifi::NicModel nic(nic_params, rng.fork("nic"));
  nic.calibrate(ch1.response(false, TimeUs{}));

  const TimeUs until = w.frame_start +
                       w.bit_us * static_cast<std::int64_t>(frame.size()) +
                       TimeUs{100'000};
  wifi::TrafficParams t1;
  t1.source = 1;
  wifi::TrafficParams t2;
  t2.source = 2;
  auto rng1 = rng.fork("t1");
  auto rng2 = rng.fork("t2");
  auto tl = wifi::merge_timelines(
      {wifi::make_poisson_timeline(pps_each, until, t1, rng1),
       wifi::make_poisson_timeline(pps_each, until, t2, rng2)});

  for (const auto& pkt : tl) {
    const bool state = mod.state_at(pkt.start_us);
    auto& ch = pkt.source == 1 ? ch1 : ch2;
    w.trace.push_back(nic.measure(ch.response(state, pkt.start_us),
                                  pkt.start_us, pkt.source, pkt.kind));
  }
  return w;
}

UplinkDecoderConfig config_for(const TwoHelperWorld& w,
                               std::size_t payload_bits) {
  UplinkDecoderConfig cfg;
  cfg.payload_bits = payload_bits;
  cfg.bit_duration_us = w.bit_us;
  cfg.search_from = w.frame_start - 2 * w.bit_us;
  cfg.search_to = w.frame_start + 2 * w.bit_us;
  return cfg;
}

TEST(MultiHelper, FusesTwoSources) {
  const auto w = make_world(1'500, 24, 1);
  MultiHelperDecoder dec(config_for(w, 24));
  const auto res = dec.decode(w.trace);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.sources_used.size(), 2u);
  EXPECT_EQ(res.payload, w.payload);
}

TEST(MultiHelper, WorksWhenOneSourceIsSilent) {
  // Only helper 1 transmits (helper 2's sub-trace is too small).
  auto w = make_world(1'500, 24, 2);
  wifi::CaptureTrace only_one;
  for (const auto& r : w.trace) {
    if (r.source == 1) only_one.push_back(r);
  }
  MultiHelperDecoder dec(config_for(w, 24));
  const auto res = dec.decode(only_one);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.sources_used.size(), 1u);
  EXPECT_EQ(res.payload, w.payload);
}

TEST(MultiHelper, FusionBeatsEitherSourceAtLowRate) {
  // With each helper too slow for reliable decoding on its own
  // (few packets per bit), fusing both recovers the frame more often.
  std::size_t fused_errors = 0, single_errors = 0;
  const std::size_t payload_bits = 24;
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    const auto w = make_world(320, payload_bits, seed, 0.12);
    MultiHelperDecoder dec(config_for(w, payload_bits));
    const auto fused = dec.decode(w.trace);
    fused_errors += fused.found
                        ? hamming_distance(fused.payload, w.payload)
                        : payload_bits;
    wifi::CaptureTrace only_one;
    for (const auto& r : w.trace) {
      if (r.source == 1) only_one.push_back(r);
    }
    UplinkDecoder single(config_for(w, payload_bits));
    const auto s = single.decode(only_one);
    single_errors += s.found ? hamming_distance(s.payload, w.payload)
                             : payload_bits;
  }
  EXPECT_LE(fused_errors, single_errors);
}

TEST(MultiHelper, EmptyTraceNotFound) {
  UplinkDecoderConfig cfg;
  cfg.payload_bits = 8;
  cfg.bit_duration_us = TimeUs{1'000};
  MultiHelperDecoder dec(cfg);
  EXPECT_FALSE(dec.decode({}).found);
}

TEST(MultiHelper, ReportsPerSourceResults) {
  const auto w = make_world(1'500, 24, 3);
  MultiHelperDecoder dec(config_for(w, 24));
  const auto res = dec.decode(w.trace);
  ASSERT_TRUE(res.found);
  ASSERT_EQ(res.per_source.size(), res.sources_used.size());
  for (const auto& r : res.per_source) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.payload.size(), 24u);
  }
  ASSERT_EQ(res.fused_confidence.size(), 24u);
  for (double c : res.fused_confidence) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

}  // namespace
}  // namespace wb::reader
