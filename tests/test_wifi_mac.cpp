#include "wifi/mac.h"

#include <gtest/gtest.h>

namespace wb::wifi {
namespace {

TEST(DcfMac, SingleStationDeliversEverything) {
  DcfMac mac{sim::RngStream(1)};
  const auto s = mac.add_station();
  for (int i = 0; i < 50; ++i) {
    mac.enqueue(s, TimeUs{i * 1'000}, 500, 24.0);
  }
  mac.run_until(kMicrosPerSec);
  EXPECT_EQ(mac.stats(s).delivered, 50u);
  EXPECT_EQ(mac.stats(s).collisions, 0u);
  EXPECT_EQ(mac.stats(s).dropped, 0u);
}

TEST(DcfMac, FramesNeverOverlapInTime) {
  DcfMac mac{sim::RngStream(2)};
  for (int i = 0; i < 4; ++i) {
    mac.make_saturated(mac.add_station(), 1'000, 54.0);
  }
  mac.run_until(TimeUs{200'000});
  const auto& log = mac.log();
  ASSERT_GT(log.size(), 10u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    // Same start is a collision; otherwise strictly after previous end.
    if (log[i].packet.start_us == log[i - 1].packet.start_us) {
      EXPECT_TRUE(log[i].collided && log[i - 1].collided);
    } else {
      EXPECT_GE(log[i].packet.start_us, log[i - 1].packet.end_us());
    }
  }
}

TEST(DcfMac, SaturatedStationsShareFairly) {
  DcfMac mac{sim::RngStream(3)};
  const auto a = mac.add_station();
  const auto b = mac.add_station();
  mac.make_saturated(a, 1'000, 54.0);
  mac.make_saturated(b, 1'000, 54.0);
  mac.run_until(2 * kMicrosPerSec);
  const double da = static_cast<double>(mac.stats(a).delivered);
  const double db = static_cast<double>(mac.stats(b).delivered);
  EXPECT_GT(da, 100.0);
  EXPECT_NEAR(da / db, 1.0, 0.15);
}

TEST(DcfMac, CollisionsHappenUnderContention) {
  DcfMac mac{sim::RngStream(4)};
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(mac.add_station());
    mac.make_saturated(ids.back(), 1'000, 54.0);
  }
  mac.run_until(2 * kMicrosPerSec);
  std::uint64_t collisions = 0;
  for (auto id : ids) collisions += mac.stats(id).collisions;
  EXPECT_GT(collisions, 10u);
}

TEST(DcfMac, MoreStationsMoreCollisions) {
  auto collision_rate = [](std::size_t n) {
    DcfMac mac{sim::RngStream(5)};
    std::vector<std::uint32_t> ids;
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(mac.add_station());
      mac.make_saturated(ids.back(), 1'000, 54.0);
    }
    mac.run_until(2 * kMicrosPerSec);
    double coll = 0.0, sent = 0.0;
    for (auto id : ids) {
      coll += static_cast<double>(mac.stats(id).collisions);
      sent += static_cast<double>(mac.stats(id).delivered) + coll;
    }
    return coll / sent;
  };
  EXPECT_GT(collision_rate(12), collision_rate(2));
}

TEST(DcfMac, NavBlocksOtherStations) {
  DcfMac mac{sim::RngStream(6)};
  const auto reader = mac.add_station();
  const auto other = mac.add_station();
  mac.make_saturated(other, 1'500, 54.0);
  mac.reserve(reader, TimeUs{10'000}, TimeUs{8'000});  // 8 ms reservation
  mac.run_until(TimeUs{60'000});

  // Find the CTS and verify no other frame starts inside its NAV.
  const AirFrame* cts = nullptr;
  for (const auto& f : mac.log()) {
    if (f.packet.kind == FrameKind::kCtsToSelf) cts = &f;
  }
  ASSERT_NE(cts, nullptr);
  const TimeUs nav_start = cts->packet.end_us();
  const TimeUs nav_end = nav_start + cts->packet.nav_us;
  for (const auto& f : mac.log()) {
    if (&f == cts) continue;
    EXPECT_FALSE(f.packet.start_us >= nav_start &&
                 f.packet.start_us < nav_end)
        << "frame inside NAV at " << f.packet.start_us;
  }
}

TEST(DcfMac, TrafficResumesAfterNav) {
  DcfMac mac{sim::RngStream(7)};
  const auto reader = mac.add_station();
  const auto other = mac.add_station();
  mac.make_saturated(other, 1'000, 54.0);
  mac.reserve(reader, TimeUs{5'000}, TimeUs{10'000});
  mac.run_until(TimeUs{100'000});
  bool frame_after_nav = false;
  for (const auto& f : mac.log()) {
    if (f.packet.kind == FrameKind::kData && f.packet.start_us > TimeUs{20'000}) {
      frame_after_nav = true;
    }
  }
  EXPECT_TRUE(frame_after_nav);
}

TEST(DcfMac, DeliveredTimelineExcludesCollisions) {
  DcfMac mac{sim::RngStream(8)};
  for (int i = 0; i < 6; ++i) {
    mac.make_saturated(mac.add_station(), 1'000, 54.0);
  }
  mac.run_until(kMicrosPerSec);
  const auto tl = mac.delivered_timeline();
  std::size_t successes = 0;
  for (const auto& f : mac.log()) {
    if (!f.collided && f.packet.kind == FrameKind::kData) ++successes;
  }
  EXPECT_EQ(tl.size(), successes);
}

TEST(DcfMac, ThroughputBoundedByAirtime) {
  DcfMac mac{sim::RngStream(9)};
  const auto s = mac.add_station();
  mac.make_saturated(s, 1'500, 54.0);
  mac.run_until(kMicrosPerSec);
  // One 1500 B frame per cycle of DIFS + backoff + air + SIFS + ACK:
  // ~242+28+~70+10+25 ~ 375 us -> ~2'650 frames/s upper bound.
  EXPECT_GT(mac.stats(s).delivered, 2'000u);
  EXPECT_LT(mac.stats(s).delivered, 3'200u);
  EXPECT_GT(mac.utilisation(), 0.5);
  EXPECT_LE(mac.utilisation(), 1.0);
}

TEST(DcfMac, PoissonArrivalsUnderLoad) {
  DcfMac mac{sim::RngStream(10)};
  const auto s = mac.add_station();
  sim::RngStream arrivals(11);
  mac.enqueue_poisson(s, 500.0, kMicrosPerSec, 500, 54.0, arrivals);
  mac.run_until(2 * kMicrosPerSec);
  EXPECT_NEAR(static_cast<double>(mac.stats(s).delivered), 500.0, 70.0);
}

TEST(DcfMac, HelperRateDropsUnderContention) {
  // The §5 premise: the helper's achievable packet rate depends on other
  // traffic. A saturated helper alone vs with three competing stations.
  auto helper_rate = [](std::size_t rivals) {
    DcfMac mac{sim::RngStream(12)};
    const auto helper = mac.add_station();
    mac.make_saturated(helper, 1'000, 54.0);
    for (std::size_t i = 0; i < rivals; ++i) {
      mac.make_saturated(mac.add_station(), 1'500, 24.0);
    }
    mac.run_until(2 * kMicrosPerSec);
    return static_cast<double>(mac.stats(helper).delivered) / 2.0;
  };
  EXPECT_LT(helper_rate(3), 0.5 * helper_rate(0));
}

TEST(DcfMac, EmptyMacIdles) {
  DcfMac mac{sim::RngStream(13)};
  mac.add_station();
  mac.run_until(kMicrosPerSec);
  EXPECT_TRUE(mac.log().empty());
  EXPECT_EQ(mac.now(), kMicrosPerSec);
  EXPECT_DOUBLE_EQ(mac.utilisation(), 0.0);
}

}  // namespace
}  // namespace wb::wifi
