#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "util/bits.h"

namespace wb {
namespace {

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.push(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.push(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, ResetRestoresEmpty) {
  RunningStats s;
  s.push(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStats, NumericallyStableLargeOffset) {
  RunningStats s;
  for (int i = 0; i < 1'000; ++i) {
    s.push(1e9 + static_cast<double>(i % 2));
  }
  EXPECT_NEAR(s.variance(), 0.25, 1e-3);
}

TEST(BerCounter, CountsErrors) {
  BerCounter c;
  c.add(BitVec{1, 0, 1, 1}, BitVec{1, 1, 1, 0});
  EXPECT_EQ(c.bits(), 4u);
  EXPECT_EQ(c.errors(), 2u);
  EXPECT_DOUBLE_EQ(c.ber(), 0.5);
}

TEST(BerCounter, FloorConventionMatchesPaper) {
  // The paper: 1800 error-free bits reported as BER 5e-4 (roughly 0.5/N).
  BerCounter c;
  c.add_counts(0, 1800);
  EXPECT_NEAR(c.ber_floored(), 2.78e-4, 1e-5);
  EXPECT_DOUBLE_EQ(c.ber(), 0.0);
}

TEST(BerCounter, FloorNotAppliedWhenErrorsExist) {
  BerCounter c;
  c.add_counts(3, 1'000);
  EXPECT_DOUBLE_EQ(c.ber_floored(), 0.003);
}

TEST(BerCounter, AccumulatesAcrossCalls) {
  BerCounter c;
  c.add_counts(1, 100);
  c.add(BitVec{0, 0}, BitVec{1, 1});
  EXPECT_EQ(c.errors(), 3u);
  EXPECT_EQ(c.bits(), 102u);
}

TEST(BerCounter, EmptyIsZero) {
  BerCounter c;
  EXPECT_DOUBLE_EQ(c.ber(), 0.0);
  EXPECT_DOUBLE_EQ(c.ber_floored(), 0.0);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(-2.0, 2.0, 40);
  sim::RngStream rng(5);
  for (int i = 0; i < 10'000; ++i) h.push(rng.normal(0.0, 0.5));
  double integral = 0.0;
  const double bin_width = 4.0 / 40.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    integral += h.density(b) * bin_width;
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 10);
  h.push(-5.0);
  h.push(7.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, UnimodalGaussianHasOneMode) {
  Histogram h(-3.0, 3.0, 48);
  sim::RngStream rng(6);
  for (int i = 0; i < 20'000; ++i) h.push(rng.normal(0.0, 0.6));
  EXPECT_EQ(h.count_modes(), 1u);
}

TEST(Histogram, SeparatedBimodalHasTwoModes) {
  Histogram h(-3.0, 3.0, 48);
  sim::RngStream rng(7);
  for (int i = 0; i < 20'000; ++i) {
    h.push(rng.normal(i % 2 ? 1.0 : -1.0, 0.3));
  }
  EXPECT_EQ(h.count_modes(), 2u);
}

TEST(Histogram, HeavilyOverlappingModesCountAsOne) {
  // Two Gaussians closer than their width merge into a single hump — the
  // valley criterion must not call this bimodal.
  Histogram h(-3.0, 3.0, 48);
  sim::RngStream rng(8);
  for (int i = 0; i < 20'000; ++i) {
    h.push(rng.normal(i % 2 ? 0.3 : -0.3, 0.6));
  }
  EXPECT_EQ(h.count_modes(), 1u);
}

TEST(Histogram, EmptyHasNoModes) {
  Histogram h(0.0, 1.0, 8);
  EXPECT_EQ(h.count_modes(), 0u);
}

TEST(Percentile, KnownQuartiles) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0); }

}  // namespace
}  // namespace wb
