// End-to-end observability: a full query/response round trip through
// WiFiBackscatterSystem must populate metrics from every pipeline layer
// and stitch a coherent protocol trace.
#include <string>

#include <gtest/gtest.h>

#include "core/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bits.h"

namespace wb {
namespace {

std::uint64_t counter_value(const obs::MetricsRegistry::Snapshot& snap,
                            const std::string& name) {
  for (const auto& [k, v] : snap.counters) {
    if (k == name) return v;
  }
  return 0;
}

TEST(ObsSystem, QueryRoundTripPopulatesMetricsAcrossLayers) {
  core::SystemConfig cfg;
  cfg.tag_reader_distance_m = Meters{0.2};
  cfg.helper_pps = 3'000.0;
  cfg.seed = 5;

  obs::MetricsRegistry reg;
  core::QueryOutcome outcome;
  {
    obs::ScopedMetrics scope(reg);
    core::WiFiBackscatterSystem system(cfg);
    core::Query q;
    q.tag_address = 3;
    q.command = core::kCmdReadSensor;
    outcome = system.query(q, random_bits(24, 9));
  }
  ASSERT_TRUE(outcome.success());

  const auto snap = reg.snapshot();
  // Protocol layer.
  EXPECT_EQ(counter_value(snap, "core.system.queries_total"), 1u);
  EXPECT_EQ(counter_value(snap, "core.system.query_success_total"), 1u);
  EXPECT_EQ(counter_value(snap, "core.system.downlink_attempts_total"),
            outcome.downlink.attempts);
  EXPECT_GT(counter_value(snap, "core.system.uplink_bits_delivered_total"),
            0u);
  // Downlink leg: encoder, tag detector/MCU.
  EXPECT_GT(counter_value(snap, "reader.downlink.slots_encoded_total"), 0u);
  EXPECT_GT(counter_value(snap, "core.downlink.slots_probed_total"), 0u);
  EXPECT_GT(counter_value(snap, "tag.mcu.wakeups_total"), 0u);
  EXPECT_GT(counter_value(snap, "tag.mcu.frames_decoded_total"), 0u);
  // Uplink leg: channel, traffic, conditioning, decoder.
  EXPECT_GT(counter_value(snap, "phy.channel.responses_total"), 0u);
  EXPECT_GT(counter_value(snap, "wifi.traffic.packets_generated_total"), 0u);
  EXPECT_GT(counter_value(snap, "reader.conditioning.packets_total"), 0u);
  EXPECT_GT(counter_value(snap, "reader.uplink.decodes_total"), 0u);
  EXPECT_GT(counter_value(snap, "reader.uplink.bits_decoded_total"), 0u);
  // Rate control ran.
  EXPECT_GT(counter_value(snap, "core.rate_control.choices_total"), 0u);
  // Energy accounting flowed up.
  bool found_energy = false;
  for (const auto& [k, v] : snap.gauges) {
    if (k == "core.system.tag_energy_uj") {
      found_energy = true;
      EXPECT_GT(v, 0.0);
    }
  }
  EXPECT_TRUE(found_energy);
  // Wall-clock decode timing got recorded.
  bool found_timer = false;
  for (const auto& [k, h] : snap.histograms) {
    if (k == "reader.uplink.decode_wall_us") {
      found_timer = true;
      EXPECT_GT(h.count, 0u);
      EXPECT_GT(h.p50, 0.0);
    }
  }
  EXPECT_TRUE(found_timer);
}

TEST(ObsSystem, QueryTraceStitchesLegsOntoOneTimeline) {
  core::SystemConfig cfg;
  cfg.tag_reader_distance_m = Meters{0.2};
  cfg.helper_pps = 3'000.0;
  cfg.seed = 5;

  obs::Tracer tracer;
  {
    obs::ScopedTracer scope(tracer);
    core::WiFiBackscatterSystem system(cfg);
    core::Query q;
    q.tag_address = 3;
    q.command = core::kCmdReadSensor;
    (void)system.query(q, random_bits(24, 9));
  }
  EXPECT_GT(tracer.num_events(), 0u);
  const std::string json = tracer.to_json();
  // The protocol lane carries the outer spans; inner lanes carry the legs.
  EXPECT_NE(json.find("\"downlink_query\""), std::string::npos);
  EXPECT_NE(json.find("\"uplink_response\""), std::string::npos);
  EXPECT_NE(json.find("\"downlink_listen\""), std::string::npos);
  EXPECT_NE(json.find("\"uplink_frame\""), std::string::npos);
  // Offset restored after query() completes.
  EXPECT_EQ(tracer.offset(), TimeUs{});
}

TEST(ObsSystem, MetricsOffIsStillSuccessful) {
  ASSERT_EQ(obs::metrics(), nullptr);
  ASSERT_EQ(obs::tracer(), nullptr);
  core::SystemConfig cfg;
  cfg.tag_reader_distance_m = Meters{0.2};
  cfg.helper_pps = 3'000.0;
  cfg.seed = 5;
  core::WiFiBackscatterSystem system(cfg);
  core::Query q;
  q.tag_address = 3;
  q.command = core::kCmdReadSensor;
  const auto outcome = system.query(q, random_bits(24, 9));
  EXPECT_TRUE(outcome.success());
}

TEST(ObsSystem, SameSeedSameOutcomeWithAndWithoutMetrics) {
  // Observability must not perturb simulation results.
  core::SystemConfig cfg;
  cfg.tag_reader_distance_m = Meters{0.2};
  cfg.helper_pps = 3'000.0;
  cfg.seed = 11;
  core::Query q;
  q.tag_address = 3;
  q.command = core::kCmdReadSensor;
  const BitVec data = random_bits(24, 9);

  core::WiFiBackscatterSystem plain(cfg);
  const auto without = plain.query(q, data);

  obs::MetricsRegistry reg;
  obs::ScopedMetrics scope(reg);
  core::WiFiBackscatterSystem observed(cfg);
  const auto with = observed.query(q, data);

  EXPECT_EQ(without.success(), with.success());
  EXPECT_EQ(without.downlink.attempts, with.downlink.attempts);
  EXPECT_EQ(without.uplink.bit_errors, with.uplink.bit_errors);
  EXPECT_EQ(without.uplink.data, with.uplink.data);
}

}  // namespace
}  // namespace wb
