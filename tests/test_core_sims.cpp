#include "core/downlink_sim.h"
#include "core/uplink_sim.h"

#include <gtest/gtest.h>

#include "core/frame.h"
#include "reader/downlink_encoder.h"
#include "tag/modulator.h"
#include "wifi/traffic.h"

namespace wb::core {
namespace {

// ---------------- uplink sim ----------------

UplinkSimConfig close_range_config(std::uint64_t seed) {
  UplinkSimConfig cfg;
  cfg.channel.reader_pos = {0.0, 0.0};
  cfg.channel.tag_pos = {0.05, 0.0};
  cfg.channel.helper_pos = {3.05, 0.0};
  cfg.seed = seed;
  return cfg;
}

TEST(UplinkSim, OneRecordPerPacket) {
  sim::RngStream rng(1);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(1'000, kMicrosPerSec,
                                          wifi::TrafficParams{},
                                          traffic_rng);
  tag::Modulator mod(BitVec(100, 1), TimeUs{10'000}, TimeUs{});
  UplinkSim sim(close_range_config(2));
  const auto trace = sim.run(tl, mod);
  ASSERT_EQ(trace.size(), tl.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].timestamp_us, tl[i].start_us);
    EXPECT_EQ(trace[i].source, tl[i].source);
  }
}

TEST(UplinkSim, TagModulationVisibleInCsi) {
  // With alternating tag bits at close range, CSI variance across packets
  // must exceed the idle-tag variance on at least some streams.
  sim::RngStream rng(3);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(2'000, kMicrosPerSec,
                                          wifi::TrafficParams{},
                                          traffic_rng);
  BitVec alternating;
  for (int i = 0; i < 100; ++i) {
    alternating.push_back(static_cast<std::uint8_t>(i % 2));
  }
  tag::Modulator mod(alternating, TimeUs{10'000}, TimeUs{});

  UplinkSim sim_mod(close_range_config(4));
  UplinkSim sim_idle(close_range_config(4));
  const auto t_mod = sim_mod.run(tl, mod);
  const auto t_idle = sim_idle.run_idle(tl);

  auto stream_var = [](const wifi::CaptureTrace& t, std::size_t s) {
    double sum = 0.0, sum2 = 0.0;
    for (const auto& r : t) {
      const double v = wifi::stream_csi(r, s);
      sum += v;
      sum2 += v * v;
    }
    const double n = static_cast<double>(t.size());
    return sum2 / n - (sum / n) * (sum / n);
  };
  std::size_t louder = 0;
  for (std::size_t s = 0; s < wifi::kNumCsiStreams; ++s) {
    if (stream_var(t_mod, s) > 2.0 * stream_var(t_idle, s)) ++louder;
  }
  EXPECT_GT(louder, 10u);
}

TEST(UplinkSim, ChannelSeedFixesPlacement) {
  // Same channel_seed + different run seeds: the underlying channel is
  // identical, so idle-trace means per stream agree closely.
  UplinkSimConfig a = close_range_config(100);
  UplinkSimConfig b = close_range_config(200);
  a.channel_seed = 7;
  b.channel_seed = 7;
  a.nic.csi_noise_rel = 0.001;
  b.nic.csi_noise_rel = 0.001;
  a.nic.spurious_prob = 0.0;
  b.nic.spurious_prob = 0.0;
  a.channel.drift.antenna_sigma = 0.0;
  a.channel.drift.subchannel_sigma = 0.0;
  b.channel.drift = a.channel.drift;

  sim::RngStream rng(5);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(1'000, TimeUs{100'000},
                                          wifi::TrafficParams{},
                                          traffic_rng);
  UplinkSim sa(a), sb(b);
  const auto ta = sa.run_idle(tl);
  const auto tb = sb.run_idle(tl);
  for (std::size_t s = 0; s < wifi::kNumCsiStreams; s += 13) {
    EXPECT_NEAR(wifi::stream_csi(ta[0], s), wifi::stream_csi(tb[0], s),
                0.2);
  }
}

TEST(UplinkSim, DeterministicForSeed) {
  sim::RngStream rng(6);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(500, TimeUs{100'000},
                                          wifi::TrafficParams{},
                                          traffic_rng);
  UplinkSim a(close_range_config(42));
  UplinkSim b(close_range_config(42));
  const auto ta = a.run_idle(tl);
  const auto tb = b.run_idle(tl);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].csi[0][0], tb[i].csi[0][0]);
    EXPECT_EQ(ta[i].rssi_dbm[0], tb[i].rssi_dbm[0]);
  }
}

// ---------------- downlink sim ----------------

TEST(DownlinkSim, SlotLevelsMatchTransmittedBitsAtCloseRange) {
  reader::DownlinkEncoder enc(reader::DownlinkEncoderConfig{});
  BitVec message = downlink_preamble();
  const BitVec data = random_bits(40, 77);
  message.insert(message.end(), data.begin(), data.end());
  const auto tx = enc.encode(message, TimeUs{1'000});

  DownlinkSimConfig cfg;
  cfg.reader_tag_distance_m = Meters{0.3};
  cfg.seed = 8;
  DownlinkSim sim(cfg);
  const auto rep = sim.run(tx, {}, tx.end_us + TimeUs{2'000});
  ASSERT_EQ(rep.slot_levels.size(), tx.slots.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < tx.slots.size(); ++i) {
    if (rep.slot_levels[i] != tx.slots[i].bit) ++errors;
  }
  EXPECT_EQ(errors, 0u);
}

TEST(DownlinkSim, McuDecodesFullFrame) {
  reader::DownlinkEncoder enc(reader::DownlinkEncoderConfig{});
  const BitVec data = random_bits(kDownlinkDataBits, 13);
  const auto message = build_downlink_frame(data);
  const auto tx = enc.encode(message, TimeUs{1'000});

  DownlinkSimConfig cfg;
  cfg.reader_tag_distance_m = Meters{0.5};
  cfg.seed = 9;
  DownlinkSim sim(cfg);
  const auto rep = sim.run(tx, {}, tx.end_us + TimeUs{2'000});
  ASSERT_EQ(rep.decoded.size(), 1u);
  const auto parsed = parse_downlink_payload(rep.decoded[0].payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, data);
}

TEST(DownlinkSim, NavSuppressesAmbientDuringMessage) {
  reader::DownlinkEncoder enc(reader::DownlinkEncoderConfig{});
  const auto message = build_downlink_frame(random_bits(56, 14));
  const auto tx = enc.encode(message, TimeUs{5'000});

  // Dense ambient traffic through the reserved window.
  sim::RngStream rng(10);
  auto traffic_rng = rng.fork("t");
  const auto ambient = wifi::make_poisson_timeline(
      5'000, tx.end_us + TimeUs{10'000}, wifi::TrafficParams{}, traffic_rng);

  DownlinkSimConfig cfg;
  cfg.reader_tag_distance_m = Meters{0.5};
  cfg.ambient_distance_m = Meters{2.0};
  cfg.ambient_respects_nav = true;
  cfg.seed = 11;
  DownlinkSim sim(cfg);
  const auto rep = sim.run(tx, ambient, tx.end_us + TimeUs{10'000});
  // The frame must still decode: compliant neighbours defer.
  ASSERT_GE(rep.decoded.size(), 1u);
  EXPECT_TRUE(
      parse_downlink_payload(rep.decoded[0].payload).has_value());
}

TEST(DownlinkSim, NonCompliantAmbientCorruptsSilences) {
  reader::DownlinkEncoder enc(reader::DownlinkEncoderConfig{});
  const auto message = build_downlink_frame(random_bits(56, 15));
  const auto tx = enc.encode(message, TimeUs{5'000});
  sim::RngStream rng(12);
  auto traffic_rng = rng.fork("t");
  const auto ambient = wifi::make_poisson_timeline(
      8'000, tx.end_us + TimeUs{10'000}, wifi::TrafficParams{}, traffic_rng);

  DownlinkSimConfig cfg;
  cfg.reader_tag_distance_m = Meters{1.2};
  cfg.ambient_distance_m = Meters{0.8};  // loud interferer
  cfg.ambient_respects_nav = false;
  cfg.seed = 13;
  DownlinkSim sim(cfg);
  const auto rep = sim.run(tx, ambient, tx.end_us + TimeUs{10'000});
  std::size_t errors = 0;
  for (std::size_t i = 0; i < tx.slots.size(); ++i) {
    if (rep.slot_levels[i] != tx.slots[i].bit) ++errors;
  }
  EXPECT_GT(errors, 3u);  // '0' slots read as energy
}

TEST(DownlinkSim, EnergyAccountingPositive) {
  reader::DownlinkEncoder enc(reader::DownlinkEncoderConfig{});
  const auto tx = enc.encode(build_downlink_frame(random_bits(56, 16)),
                             TimeUs{1'000});
  DownlinkSimConfig cfg;
  cfg.seed = 14;
  DownlinkSim sim(cfg);
  const auto rep = sim.run(tx, {}, tx.end_us + TimeUs{1'000});
  EXPECT_GT(rep.detector_energy_uj, 0.0);
  EXPECT_GT(rep.mcu_energy_uj, 0.0);
  // The always-on detector at ~1 uW over ~10 ms is ~0.01 uJ.
  EXPECT_LT(rep.detector_energy_uj, 1.0);
}

TEST(DownlinkSim, ReceivedPowerFollowsDistance) {
  DownlinkSimConfig near_cfg;
  near_cfg.reader_tag_distance_m = Meters{0.5};
  DownlinkSimConfig far_cfg;
  far_cfg.reader_tag_distance_m = Meters{2.0};
  DownlinkSim near_sim(near_cfg), far_sim(far_cfg);
  EXPECT_GT(near_sim.reader_power_mw(), far_sim.reader_power_mw() * 10.0);
}

TEST(DownlinkSim, NoiseOnlyNeverYieldsValidFrame) {
  // With nothing on the air the comparator chatters around its decayed
  // threshold; occasional interval-pattern matches wake the MCU (the
  // Fig 18 false positives), but the CRC must reject every such frame.
  DownlinkSimConfig cfg;
  cfg.seed = 15;
  DownlinkSim sim(cfg);
  const auto rep =
      sim.run(reader::DownlinkTransmission{}, {}, kMicrosPerSec);
  for (const auto& frame : rep.decoded) {
    EXPECT_FALSE(parse_downlink_payload(frame.payload).has_value());
  }
  EXPECT_TRUE(rep.slot_levels.empty());
}

}  // namespace
}  // namespace wb::core
