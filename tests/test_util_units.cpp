#include "util/units.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <type_traits>

#include <gtest/gtest.h>

namespace wb {
namespace {

// ---- compile-time contract (the SFINAE-visible half; the hard errors
// like `Dbm + Dbm` live in tests/compile_fail/) ----

// Zero cost: each strong type is exactly its underlying scalar.
static_assert(sizeof(Dbm) == sizeof(double));
static_assert(sizeof(Db) == sizeof(double));
static_assert(sizeof(Milliwatts) == sizeof(double));
static_assert(sizeof(Meters) == sizeof(double));
static_assert(sizeof(Hertz) == sizeof(double));
static_assert(sizeof(TimeUs) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<Dbm>);
static_assert(std::is_trivially_copyable_v<TimeUs>);

// Construction from a raw scalar is always explicit — an unlabelled
// number never silently becomes a physical quantity.
static_assert(!std::is_convertible_v<double, Dbm>);
static_assert(!std::is_convertible_v<double, Db>);
static_assert(!std::is_convertible_v<double, Milliwatts>);
static_assert(!std::is_convertible_v<double, Meters>);
static_assert(!std::is_convertible_v<double, Hertz>);
static_assert(!std::is_convertible_v<std::int64_t, TimeUs>);
static_assert(!std::is_convertible_v<int, TimeUs>);
static_assert(std::is_constructible_v<Dbm, double>);
static_assert(std::is_constructible_v<TimeUs, std::int64_t>);

// Cross-type mixes are not SFINAE-constructible either.
static_assert(!std::is_constructible_v<Dbm, Db>);
static_assert(!std::is_constructible_v<Db, Dbm>);
static_assert(!std::is_constructible_v<Milliwatts, Dbm>);
static_assert(!std::is_constructible_v<Meters, Hertz>);

// Only the physically meaningful operators exist. std::plus<void> probes
// operator+ through overload resolution without hard errors.
static_assert(!std::is_invocable_v<std::plus<>, Dbm, Dbm>);
static_assert(std::is_invocable_v<std::plus<>, Dbm, Db>);
static_assert(std::is_invocable_v<std::plus<>, Db, Db>);
static_assert(std::is_invocable_v<std::plus<>, Milliwatts, Milliwatts>);
static_assert(!std::is_invocable_v<std::plus<>, Milliwatts, Db>);
static_assert(!std::is_invocable_v<std::plus<>, Milliwatts, Dbm>);
static_assert(!std::is_invocable_v<std::plus<>, Meters, Hertz>);
static_assert(!std::is_invocable_v<std::multiplies<>, TimeUs, TimeUs>);
static_assert(!std::is_invocable_v<std::multiplies<>, TimeUs, double>);
static_assert(std::is_invocable_v<std::multiplies<>, TimeUs, int>);

// Result types follow the operator table.
static_assert(std::is_same_v<decltype(Dbm{0.0} + Db{0.0}), Dbm>);
static_assert(std::is_same_v<decltype(Dbm{0.0} - Dbm{0.0}), Db>);
static_assert(std::is_same_v<decltype(Milliwatts{1.0} / Milliwatts{1.0}),
                             double>);
static_assert(std::is_same_v<decltype(TimeUs{1} / TimeUs{1}), std::int64_t>);
static_assert(std::is_same_v<decltype(TimeUs{1} % TimeUs{1}), TimeUs>);

std::int64_t ulp_distance(double a, double b) {
  std::int64_t ia = 0;
  std::int64_t ib = 0;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  return ia > ib ? ia - ib : ib - ia;
}

// ---- the zero-added-error property: every typed conversion is
// bit-identical to the raw helper it delegates to ----

TEST(UnitsProperty, TypedConversionsBitIdenticalToRawHelpers) {
  for (double x = -120.0; x <= 30.0; x += 0.0137) {
    EXPECT_EQ(Dbm{x}.to_mw().value(), units::dbm_to_mw(x)) << x;
    EXPECT_EQ(Db{x}.to_ratio(), db_to_ratio(x)) << x;
    EXPECT_EQ(Db{x}.to_amplitude(), db_to_amplitude(x)) << x;
  }
  for (double mw = 1e-12; mw < 1e3; mw *= 1.0137) {
    EXPECT_EQ(Milliwatts{mw}.to_dbm().value(), mw_to_dbm(mw)) << mw;
    EXPECT_EQ(Db::from_ratio(mw).value(), ratio_to_db(mw)) << mw;
    EXPECT_EQ(Db::from_amplitude(mw).value(), amplitude_ratio_to_db(mw))
        << mw;
  }
}

TEST(UnitsProperty, TypedRoundTripBitIdenticalToRawRoundTrip) {
  // The strong types add no floating-point error of their own: a
  // dBm -> mW -> dBm trip through the types lands on exactly the double
  // the raw-helper trip lands on, and that double is within a hair of
  // the start (the residue is libm's, not the type layer's).
  for (double x = -120.0; x <= 30.0; x += 0.0137) {
    const double typed = Dbm{x}.to_mw().to_dbm().value();
    const double raw = units::mw_to_dbm(units::dbm_to_mw(x));
    EXPECT_EQ(typed, raw) << x;
    EXPECT_NEAR(typed, x, 1e-12) << x;
  }
  for (double mw = 1e-12; mw < 1e3; mw *= 1.0137) {
    const double typed = Milliwatts{mw}.to_dbm().to_mw().value();
    const double raw = units::dbm_to_mw(units::mw_to_dbm(mw));
    EXPECT_EQ(typed, raw) << mw;
    EXPECT_LE(ulp_distance(typed, mw), 64) << mw;
  }
}

TEST(UnitsProperty, DecadePointsRoundTripExactly) {
  // Powers of ten are where calibration constants live (0 dBm = 1 mW,
  // 20 dBm = 100 mW); those round-trip bit-exactly through the types.
  for (double x = -120.0; x <= 120.0; x += 10.0) {
    EXPECT_EQ(Dbm{x}.to_mw().to_dbm().value(), x);
    EXPECT_EQ(Db{x}.to_ratio(), std::pow(10.0, x / 10.0));
  }
  EXPECT_EQ(Dbm{0.0}.to_mw().value(), 1.0);
  EXPECT_EQ(Dbm{10.0}.to_mw().value(), 10.0);
  EXPECT_EQ(Dbm{20.0}.to_mw().value(), 100.0);
  EXPECT_EQ(Dbm{-30.0}.to_mw().to_dbm().value(), -30.0);
  EXPECT_EQ(Db{0.0}.to_ratio(), 1.0);
  EXPECT_EQ(Db{3.0}.to_amplitude(), db_to_amplitude(3.0));
}

// ---- operator semantics ----

TEST(Units, LogDomainOperatorTable) {
  const Dbm tx{20.0};
  const Db loss{-47.5};
  EXPECT_DOUBLE_EQ((tx + loss).value(), -27.5);
  EXPECT_DOUBLE_EQ((loss + tx).value(), -27.5);
  EXPECT_DOUBLE_EQ((tx - Db{3.0}).value(), 17.0);
  EXPECT_DOUBLE_EQ((tx - Dbm{-27.5}).value(), 47.5);  // Dbm - Dbm -> Db
  EXPECT_DOUBLE_EQ((Db{3.0} + Db{4.0}).value(), 7.0);
  EXPECT_DOUBLE_EQ((Db{3.0} - Db{4.0}).value(), -1.0);
  EXPECT_DOUBLE_EQ((-Db{3.0}).value(), -3.0);
  EXPECT_DOUBLE_EQ((Db{3.0} * 4.0).value(), 12.0);  // 4 walls' worth
  EXPECT_DOUBLE_EQ((Db{12.0} / 4.0).value(), 3.0);
  Dbm p{0.0};
  p += Db{5.0};
  p -= Db{2.0};
  EXPECT_DOUBLE_EQ(p.value(), 3.0);
}

TEST(Units, LinearDomainOperatorTable) {
  const Milliwatts a{0.25};
  const Milliwatts b{0.75};
  EXPECT_DOUBLE_EQ((a + b).value(), 1.0);  // MRC combining adds linearly
  EXPECT_DOUBLE_EQ((b - a).value(), 0.5);
  EXPECT_DOUBLE_EQ((a * 4.0).value(), 1.0);
  EXPECT_DOUBLE_EQ((4.0 * a).value(), 1.0);
  EXPECT_DOUBLE_EQ((b / 3.0).value(), 0.25);
  EXPECT_DOUBLE_EQ(b / a, 3.0);  // Mw / Mw -> dimensionless ratio
  EXPECT_DOUBLE_EQ((Meters{6.0} / Meters{2.0}), 3.0);
  EXPECT_DOUBLE_EQ((Hertz{2.4e9} / 2.0).value(), 1.2e9);
}

TEST(Units, TimeUsArithmetic) {
  const TimeUs bit{400};
  EXPECT_EQ((bit * 8).ticks(), 3200);
  EXPECT_EQ((8 * bit).ticks(), 3200);
  EXPECT_EQ((bit / 4).ticks(), 100);
  EXPECT_EQ(TimeUs{3200} / bit, 8);  // dimensionless count
  EXPECT_EQ((TimeUs{1001} % TimeUs{400}).ticks(), 201);
  EXPECT_EQ((TimeUs{100} + TimeUs{23}).ticks(), 123);
  EXPECT_EQ((TimeUs{100} - TimeUs{23}).ticks(), 77);
  EXPECT_EQ((-TimeUs{5}).ticks(), -5);
  EXPECT_DOUBLE_EQ(TimeUs{1'500'000}.seconds(), 1.5);
  EXPECT_EQ(TimeUs::max().ticks(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_LT(TimeUs{0}, TimeUs::max());
}

TEST(Units, LiteralsAndConstants) {
  EXPECT_EQ((400_us).ticks(), 400);
  EXPECT_EQ((3_ms).ticks(), 3'000);
  EXPECT_EQ((2_s).ticks(), 2'000'000);
  EXPECT_EQ(kMicrosPerMilli.ticks(), 1'000);
  EXPECT_EQ(kMicrosPerSec.ticks(), 1'000'000);
  EXPECT_DOUBLE_EQ((20.0_dbm).value(), 20.0);
  EXPECT_DOUBLE_EQ((-3.0_db).value(), -3.0);
  EXPECT_DOUBLE_EQ((1.5_mw).value(), 1.5);
  EXPECT_DOUBLE_EQ((2.4_m).value(), 2.4);
  EXPECT_DOUBLE_EQ((2.437e9_hz).value(), 2.437e9);
  EXPECT_EQ(units::kWifiChannel6.value(), 2.437e9);
  EXPECT_EQ(units::kWifiChannel6.wavelength().value(),
            wavelength_m(2.437e9));
}

TEST(Units, ComparisonAndStreaming) {
  EXPECT_LT(Dbm{-80.0}, Dbm{-40.0});
  EXPECT_GE(Db{3.0}, Db{3.0});
  EXPECT_EQ(Milliwatts{1.0}, Milliwatts{1.0});
  std::ostringstream os;
  os << Dbm{-27.5} << " / " << Db{3.0} << " / " << Milliwatts{2.0} << " / "
     << Meters{1.5} << " / " << Hertz{2.4e9} << " / " << TimeUs{400};
  EXPECT_EQ(os.str(), "-27.5 dBm / 3 dB / 2 mW / 1.5 m / 2.4e+09 Hz / 400 us");
}

}  // namespace
}  // namespace wb
