
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/drift.cpp" "src/phy/CMakeFiles/wb_phy.dir/drift.cpp.o" "gcc" "src/phy/CMakeFiles/wb_phy.dir/drift.cpp.o.d"
  "/root/repo/src/phy/geometry.cpp" "src/phy/CMakeFiles/wb_phy.dir/geometry.cpp.o" "gcc" "src/phy/CMakeFiles/wb_phy.dir/geometry.cpp.o.d"
  "/root/repo/src/phy/multi_tag_channel.cpp" "src/phy/CMakeFiles/wb_phy.dir/multi_tag_channel.cpp.o" "gcc" "src/phy/CMakeFiles/wb_phy.dir/multi_tag_channel.cpp.o.d"
  "/root/repo/src/phy/multipath.cpp" "src/phy/CMakeFiles/wb_phy.dir/multipath.cpp.o" "gcc" "src/phy/CMakeFiles/wb_phy.dir/multipath.cpp.o.d"
  "/root/repo/src/phy/pathloss.cpp" "src/phy/CMakeFiles/wb_phy.dir/pathloss.cpp.o" "gcc" "src/phy/CMakeFiles/wb_phy.dir/pathloss.cpp.o.d"
  "/root/repo/src/phy/uplink_channel.cpp" "src/phy/CMakeFiles/wb_phy.dir/uplink_channel.cpp.o" "gcc" "src/phy/CMakeFiles/wb_phy.dir/uplink_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
