file(REMOVE_RECURSE
  "CMakeFiles/wb_phy.dir/drift.cpp.o"
  "CMakeFiles/wb_phy.dir/drift.cpp.o.d"
  "CMakeFiles/wb_phy.dir/geometry.cpp.o"
  "CMakeFiles/wb_phy.dir/geometry.cpp.o.d"
  "CMakeFiles/wb_phy.dir/multi_tag_channel.cpp.o"
  "CMakeFiles/wb_phy.dir/multi_tag_channel.cpp.o.d"
  "CMakeFiles/wb_phy.dir/multipath.cpp.o"
  "CMakeFiles/wb_phy.dir/multipath.cpp.o.d"
  "CMakeFiles/wb_phy.dir/pathloss.cpp.o"
  "CMakeFiles/wb_phy.dir/pathloss.cpp.o.d"
  "CMakeFiles/wb_phy.dir/uplink_channel.cpp.o"
  "CMakeFiles/wb_phy.dir/uplink_channel.cpp.o.d"
  "libwb_phy.a"
  "libwb_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
