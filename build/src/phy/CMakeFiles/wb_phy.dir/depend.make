# Empty dependencies file for wb_phy.
# This may be replaced when dependencies are built.
