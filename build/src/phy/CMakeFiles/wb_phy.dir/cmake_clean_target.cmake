file(REMOVE_RECURSE
  "libwb_phy.a"
)
