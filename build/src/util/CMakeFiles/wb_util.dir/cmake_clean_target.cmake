file(REMOVE_RECURSE
  "libwb_util.a"
)
