file(REMOVE_RECURSE
  "CMakeFiles/wb_util.dir/bits.cpp.o"
  "CMakeFiles/wb_util.dir/bits.cpp.o.d"
  "CMakeFiles/wb_util.dir/codes.cpp.o"
  "CMakeFiles/wb_util.dir/codes.cpp.o.d"
  "CMakeFiles/wb_util.dir/crc.cpp.o"
  "CMakeFiles/wb_util.dir/crc.cpp.o.d"
  "CMakeFiles/wb_util.dir/dsp.cpp.o"
  "CMakeFiles/wb_util.dir/dsp.cpp.o.d"
  "CMakeFiles/wb_util.dir/stats.cpp.o"
  "CMakeFiles/wb_util.dir/stats.cpp.o.d"
  "libwb_util.a"
  "libwb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
