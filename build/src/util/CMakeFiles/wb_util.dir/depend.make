# Empty dependencies file for wb_util.
# This may be replaced when dependencies are built.
