
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bits.cpp" "src/util/CMakeFiles/wb_util.dir/bits.cpp.o" "gcc" "src/util/CMakeFiles/wb_util.dir/bits.cpp.o.d"
  "/root/repo/src/util/codes.cpp" "src/util/CMakeFiles/wb_util.dir/codes.cpp.o" "gcc" "src/util/CMakeFiles/wb_util.dir/codes.cpp.o.d"
  "/root/repo/src/util/crc.cpp" "src/util/CMakeFiles/wb_util.dir/crc.cpp.o" "gcc" "src/util/CMakeFiles/wb_util.dir/crc.cpp.o.d"
  "/root/repo/src/util/dsp.cpp" "src/util/CMakeFiles/wb_util.dir/dsp.cpp.o" "gcc" "src/util/CMakeFiles/wb_util.dir/dsp.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/wb_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/wb_util.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
