file(REMOVE_RECURSE
  "libwb_tag.a"
)
