# Empty compiler generated dependencies file for wb_tag.
# This may be replaced when dependencies are built.
