
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tag/energy_detector.cpp" "src/tag/CMakeFiles/wb_tag.dir/energy_detector.cpp.o" "gcc" "src/tag/CMakeFiles/wb_tag.dir/energy_detector.cpp.o.d"
  "/root/repo/src/tag/harvester.cpp" "src/tag/CMakeFiles/wb_tag.dir/harvester.cpp.o" "gcc" "src/tag/CMakeFiles/wb_tag.dir/harvester.cpp.o.d"
  "/root/repo/src/tag/mcu.cpp" "src/tag/CMakeFiles/wb_tag.dir/mcu.cpp.o" "gcc" "src/tag/CMakeFiles/wb_tag.dir/mcu.cpp.o.d"
  "/root/repo/src/tag/modulator.cpp" "src/tag/CMakeFiles/wb_tag.dir/modulator.cpp.o" "gcc" "src/tag/CMakeFiles/wb_tag.dir/modulator.cpp.o.d"
  "/root/repo/src/tag/power_manager.cpp" "src/tag/CMakeFiles/wb_tag.dir/power_manager.cpp.o" "gcc" "src/tag/CMakeFiles/wb_tag.dir/power_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/wb_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
