file(REMOVE_RECURSE
  "CMakeFiles/wb_tag.dir/energy_detector.cpp.o"
  "CMakeFiles/wb_tag.dir/energy_detector.cpp.o.d"
  "CMakeFiles/wb_tag.dir/harvester.cpp.o"
  "CMakeFiles/wb_tag.dir/harvester.cpp.o.d"
  "CMakeFiles/wb_tag.dir/mcu.cpp.o"
  "CMakeFiles/wb_tag.dir/mcu.cpp.o.d"
  "CMakeFiles/wb_tag.dir/modulator.cpp.o"
  "CMakeFiles/wb_tag.dir/modulator.cpp.o.d"
  "CMakeFiles/wb_tag.dir/power_manager.cpp.o"
  "CMakeFiles/wb_tag.dir/power_manager.cpp.o.d"
  "libwb_tag.a"
  "libwb_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
