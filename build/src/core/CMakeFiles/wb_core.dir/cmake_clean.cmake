file(REMOVE_RECURSE
  "CMakeFiles/wb_core.dir/arq.cpp.o"
  "CMakeFiles/wb_core.dir/arq.cpp.o.d"
  "CMakeFiles/wb_core.dir/device.cpp.o"
  "CMakeFiles/wb_core.dir/device.cpp.o.d"
  "CMakeFiles/wb_core.dir/downlink_sim.cpp.o"
  "CMakeFiles/wb_core.dir/downlink_sim.cpp.o.d"
  "CMakeFiles/wb_core.dir/experiments.cpp.o"
  "CMakeFiles/wb_core.dir/experiments.cpp.o.d"
  "CMakeFiles/wb_core.dir/frame.cpp.o"
  "CMakeFiles/wb_core.dir/frame.cpp.o.d"
  "CMakeFiles/wb_core.dir/inventory.cpp.o"
  "CMakeFiles/wb_core.dir/inventory.cpp.o.d"
  "CMakeFiles/wb_core.dir/rate_control.cpp.o"
  "CMakeFiles/wb_core.dir/rate_control.cpp.o.d"
  "CMakeFiles/wb_core.dir/system.cpp.o"
  "CMakeFiles/wb_core.dir/system.cpp.o.d"
  "CMakeFiles/wb_core.dir/uplink_sim.cpp.o"
  "CMakeFiles/wb_core.dir/uplink_sim.cpp.o.d"
  "libwb_core.a"
  "libwb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
