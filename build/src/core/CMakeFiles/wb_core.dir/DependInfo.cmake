
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arq.cpp" "src/core/CMakeFiles/wb_core.dir/arq.cpp.o" "gcc" "src/core/CMakeFiles/wb_core.dir/arq.cpp.o.d"
  "/root/repo/src/core/device.cpp" "src/core/CMakeFiles/wb_core.dir/device.cpp.o" "gcc" "src/core/CMakeFiles/wb_core.dir/device.cpp.o.d"
  "/root/repo/src/core/downlink_sim.cpp" "src/core/CMakeFiles/wb_core.dir/downlink_sim.cpp.o" "gcc" "src/core/CMakeFiles/wb_core.dir/downlink_sim.cpp.o.d"
  "/root/repo/src/core/experiments.cpp" "src/core/CMakeFiles/wb_core.dir/experiments.cpp.o" "gcc" "src/core/CMakeFiles/wb_core.dir/experiments.cpp.o.d"
  "/root/repo/src/core/frame.cpp" "src/core/CMakeFiles/wb_core.dir/frame.cpp.o" "gcc" "src/core/CMakeFiles/wb_core.dir/frame.cpp.o.d"
  "/root/repo/src/core/inventory.cpp" "src/core/CMakeFiles/wb_core.dir/inventory.cpp.o" "gcc" "src/core/CMakeFiles/wb_core.dir/inventory.cpp.o.d"
  "/root/repo/src/core/rate_control.cpp" "src/core/CMakeFiles/wb_core.dir/rate_control.cpp.o" "gcc" "src/core/CMakeFiles/wb_core.dir/rate_control.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/wb_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/wb_core.dir/system.cpp.o.d"
  "/root/repo/src/core/uplink_sim.cpp" "src/core/CMakeFiles/wb_core.dir/uplink_sim.cpp.o" "gcc" "src/core/CMakeFiles/wb_core.dir/uplink_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reader/CMakeFiles/wb_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/wb_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/wb_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wb_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
