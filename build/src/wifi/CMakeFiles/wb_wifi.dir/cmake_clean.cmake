file(REMOVE_RECURSE
  "CMakeFiles/wb_wifi.dir/link_sim.cpp.o"
  "CMakeFiles/wb_wifi.dir/link_sim.cpp.o.d"
  "CMakeFiles/wb_wifi.dir/mac.cpp.o"
  "CMakeFiles/wb_wifi.dir/mac.cpp.o.d"
  "CMakeFiles/wb_wifi.dir/nic.cpp.o"
  "CMakeFiles/wb_wifi.dir/nic.cpp.o.d"
  "CMakeFiles/wb_wifi.dir/packet.cpp.o"
  "CMakeFiles/wb_wifi.dir/packet.cpp.o.d"
  "CMakeFiles/wb_wifi.dir/rate_adapt.cpp.o"
  "CMakeFiles/wb_wifi.dir/rate_adapt.cpp.o.d"
  "CMakeFiles/wb_wifi.dir/trace_io.cpp.o"
  "CMakeFiles/wb_wifi.dir/trace_io.cpp.o.d"
  "CMakeFiles/wb_wifi.dir/traffic.cpp.o"
  "CMakeFiles/wb_wifi.dir/traffic.cpp.o.d"
  "libwb_wifi.a"
  "libwb_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
