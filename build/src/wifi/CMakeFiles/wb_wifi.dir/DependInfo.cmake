
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/link_sim.cpp" "src/wifi/CMakeFiles/wb_wifi.dir/link_sim.cpp.o" "gcc" "src/wifi/CMakeFiles/wb_wifi.dir/link_sim.cpp.o.d"
  "/root/repo/src/wifi/mac.cpp" "src/wifi/CMakeFiles/wb_wifi.dir/mac.cpp.o" "gcc" "src/wifi/CMakeFiles/wb_wifi.dir/mac.cpp.o.d"
  "/root/repo/src/wifi/nic.cpp" "src/wifi/CMakeFiles/wb_wifi.dir/nic.cpp.o" "gcc" "src/wifi/CMakeFiles/wb_wifi.dir/nic.cpp.o.d"
  "/root/repo/src/wifi/packet.cpp" "src/wifi/CMakeFiles/wb_wifi.dir/packet.cpp.o" "gcc" "src/wifi/CMakeFiles/wb_wifi.dir/packet.cpp.o.d"
  "/root/repo/src/wifi/rate_adapt.cpp" "src/wifi/CMakeFiles/wb_wifi.dir/rate_adapt.cpp.o" "gcc" "src/wifi/CMakeFiles/wb_wifi.dir/rate_adapt.cpp.o.d"
  "/root/repo/src/wifi/trace_io.cpp" "src/wifi/CMakeFiles/wb_wifi.dir/trace_io.cpp.o" "gcc" "src/wifi/CMakeFiles/wb_wifi.dir/trace_io.cpp.o.d"
  "/root/repo/src/wifi/traffic.cpp" "src/wifi/CMakeFiles/wb_wifi.dir/traffic.cpp.o" "gcc" "src/wifi/CMakeFiles/wb_wifi.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/wb_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
