# Empty dependencies file for wb_wifi.
# This may be replaced when dependencies are built.
