file(REMOVE_RECURSE
  "libwb_wifi.a"
)
