# Empty dependencies file for wb_reader.
# This may be replaced when dependencies are built.
