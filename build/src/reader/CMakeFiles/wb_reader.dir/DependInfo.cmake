
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reader/ack_detector.cpp" "src/reader/CMakeFiles/wb_reader.dir/ack_detector.cpp.o" "gcc" "src/reader/CMakeFiles/wb_reader.dir/ack_detector.cpp.o.d"
  "/root/repo/src/reader/conditioning.cpp" "src/reader/CMakeFiles/wb_reader.dir/conditioning.cpp.o" "gcc" "src/reader/CMakeFiles/wb_reader.dir/conditioning.cpp.o.d"
  "/root/repo/src/reader/corr_decoder.cpp" "src/reader/CMakeFiles/wb_reader.dir/corr_decoder.cpp.o" "gcc" "src/reader/CMakeFiles/wb_reader.dir/corr_decoder.cpp.o.d"
  "/root/repo/src/reader/downlink_encoder.cpp" "src/reader/CMakeFiles/wb_reader.dir/downlink_encoder.cpp.o" "gcc" "src/reader/CMakeFiles/wb_reader.dir/downlink_encoder.cpp.o.d"
  "/root/repo/src/reader/multi_helper.cpp" "src/reader/CMakeFiles/wb_reader.dir/multi_helper.cpp.o" "gcc" "src/reader/CMakeFiles/wb_reader.dir/multi_helper.cpp.o.d"
  "/root/repo/src/reader/streaming_decoder.cpp" "src/reader/CMakeFiles/wb_reader.dir/streaming_decoder.cpp.o" "gcc" "src/reader/CMakeFiles/wb_reader.dir/streaming_decoder.cpp.o.d"
  "/root/repo/src/reader/uplink_decoder.cpp" "src/reader/CMakeFiles/wb_reader.dir/uplink_decoder.cpp.o" "gcc" "src/reader/CMakeFiles/wb_reader.dir/uplink_decoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wifi/CMakeFiles/wb_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wb_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
