file(REMOVE_RECURSE
  "CMakeFiles/wb_reader.dir/ack_detector.cpp.o"
  "CMakeFiles/wb_reader.dir/ack_detector.cpp.o.d"
  "CMakeFiles/wb_reader.dir/conditioning.cpp.o"
  "CMakeFiles/wb_reader.dir/conditioning.cpp.o.d"
  "CMakeFiles/wb_reader.dir/corr_decoder.cpp.o"
  "CMakeFiles/wb_reader.dir/corr_decoder.cpp.o.d"
  "CMakeFiles/wb_reader.dir/downlink_encoder.cpp.o"
  "CMakeFiles/wb_reader.dir/downlink_encoder.cpp.o.d"
  "CMakeFiles/wb_reader.dir/multi_helper.cpp.o"
  "CMakeFiles/wb_reader.dir/multi_helper.cpp.o.d"
  "CMakeFiles/wb_reader.dir/streaming_decoder.cpp.o"
  "CMakeFiles/wb_reader.dir/streaming_decoder.cpp.o.d"
  "CMakeFiles/wb_reader.dir/uplink_decoder.cpp.o"
  "CMakeFiles/wb_reader.dir/uplink_decoder.cpp.o.d"
  "libwb_reader.a"
  "libwb_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
