file(REMOVE_RECURSE
  "libwb_reader.a"
)
