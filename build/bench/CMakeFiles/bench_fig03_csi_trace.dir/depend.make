# Empty dependencies file for bench_fig03_csi_trace.
# This may be replaced when dependencies are built.
