# Empty compiler generated dependencies file for bench_ablation_downlink.
# This may be replaced when dependencies are built.
