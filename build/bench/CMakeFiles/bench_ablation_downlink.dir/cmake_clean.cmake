file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_downlink.dir/bench_ablation_downlink.cpp.o"
  "CMakeFiles/bench_ablation_downlink.dir/bench_ablation_downlink.cpp.o.d"
  "bench_ablation_downlink"
  "bench_ablation_downlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_downlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
