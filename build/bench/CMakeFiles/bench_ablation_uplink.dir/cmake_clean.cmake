file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_uplink.dir/bench_ablation_uplink.cpp.o"
  "CMakeFiles/bench_ablation_uplink.dir/bench_ablation_uplink.cpp.o.d"
  "bench_ablation_uplink"
  "bench_ablation_uplink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_uplink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
