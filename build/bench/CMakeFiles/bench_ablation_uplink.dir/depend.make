# Empty dependencies file for bench_ablation_uplink.
# This may be replaced when dependencies are built.
