file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_downlink_ber.dir/bench_fig17_downlink_ber.cpp.o"
  "CMakeFiles/bench_fig17_downlink_ber.dir/bench_fig17_downlink_ber.cpp.o.d"
  "bench_fig17_downlink_ber"
  "bench_fig17_downlink_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_downlink_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
