# Empty dependencies file for bench_fig17_downlink_ber.
# This may be replaced when dependencies are built.
