# Empty dependencies file for bench_fig04_csi_pdf.
# This may be replaced when dependencies are built.
