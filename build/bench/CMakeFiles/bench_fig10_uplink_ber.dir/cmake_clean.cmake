file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_uplink_ber.dir/bench_fig10_uplink_ber.cpp.o"
  "CMakeFiles/bench_fig10_uplink_ber.dir/bench_fig10_uplink_ber.cpp.o.d"
  "bench_fig10_uplink_ber"
  "bench_fig10_uplink_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_uplink_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
