# Empty compiler generated dependencies file for bench_fig10_uplink_ber.
# This may be replaced when dependencies are built.
