# Empty compiler generated dependencies file for bench_fig05_good_subchannels.
# This may be replaced when dependencies are built.
