file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_good_subchannels.dir/bench_fig05_good_subchannels.cpp.o"
  "CMakeFiles/bench_fig05_good_subchannels.dir/bench_fig05_good_subchannels.cpp.o.d"
  "bench_fig05_good_subchannels"
  "bench_fig05_good_subchannels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_good_subchannels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
