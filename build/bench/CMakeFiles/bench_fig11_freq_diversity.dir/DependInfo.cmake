
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_freq_diversity.cpp" "bench/CMakeFiles/bench_fig11_freq_diversity.dir/bench_fig11_freq_diversity.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11_freq_diversity.dir/bench_fig11_freq_diversity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/wb_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/wb_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/wb_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wb_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
