# Empty dependencies file for bench_fig11_freq_diversity.
# This may be replaced when dependencies are built.
