file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_bitrate_vs_helper_rate.dir/bench_fig12_bitrate_vs_helper_rate.cpp.o"
  "CMakeFiles/bench_fig12_bitrate_vs_helper_rate.dir/bench_fig12_bitrate_vs_helper_rate.cpp.o.d"
  "bench_fig12_bitrate_vs_helper_rate"
  "bench_fig12_bitrate_vs_helper_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_bitrate_vs_helper_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
