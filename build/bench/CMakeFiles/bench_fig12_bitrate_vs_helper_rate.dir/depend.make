# Empty dependencies file for bench_fig12_bitrate_vs_helper_rate.
# This may be replaced when dependencies are built.
