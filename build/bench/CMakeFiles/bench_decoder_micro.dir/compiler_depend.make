# Empty compiler generated dependencies file for bench_decoder_micro.
# This may be replaced when dependencies are built.
