file(REMOVE_RECURSE
  "CMakeFiles/bench_decoder_micro.dir/bench_decoder_micro.cpp.o"
  "CMakeFiles/bench_decoder_micro.dir/bench_decoder_micro.cpp.o.d"
  "bench_decoder_micro"
  "bench_decoder_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decoder_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
