# Empty dependencies file for bench_fig16_beacons.
# This may be replaced when dependencies are built.
