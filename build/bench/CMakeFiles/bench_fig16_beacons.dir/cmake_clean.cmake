file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_beacons.dir/bench_fig16_beacons.cpp.o"
  "CMakeFiles/bench_fig16_beacons.dir/bench_fig16_beacons.cpp.o.d"
  "bench_fig16_beacons"
  "bench_fig16_beacons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_beacons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
