# Empty dependencies file for bench_fig20_correlation_range.
# This may be replaced when dependencies are built.
