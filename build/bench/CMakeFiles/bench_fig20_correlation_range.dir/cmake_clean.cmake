file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_correlation_range.dir/bench_fig20_correlation_range.cpp.o"
  "CMakeFiles/bench_fig20_correlation_range.dir/bench_fig20_correlation_range.cpp.o.d"
  "bench_fig20_correlation_range"
  "bench_fig20_correlation_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_correlation_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
