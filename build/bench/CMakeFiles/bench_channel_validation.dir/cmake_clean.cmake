file(REMOVE_RECURSE
  "CMakeFiles/bench_channel_validation.dir/bench_channel_validation.cpp.o"
  "CMakeFiles/bench_channel_validation.dir/bench_channel_validation.cpp.o.d"
  "bench_channel_validation"
  "bench_channel_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_channel_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
