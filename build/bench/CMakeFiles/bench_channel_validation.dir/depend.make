# Empty dependencies file for bench_channel_validation.
# This may be replaced when dependencies are built.
