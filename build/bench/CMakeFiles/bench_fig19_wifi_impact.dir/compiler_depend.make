# Empty compiler generated dependencies file for bench_fig19_wifi_impact.
# This may be replaced when dependencies are built.
