file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_false_positives.dir/bench_fig18_false_positives.cpp.o"
  "CMakeFiles/bench_fig18_false_positives.dir/bench_fig18_false_positives.cpp.o.d"
  "bench_fig18_false_positives"
  "bench_fig18_false_positives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_false_positives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
