# Empty compiler generated dependencies file for bench_fig18_false_positives.
# This may be replaced when dependencies are built.
