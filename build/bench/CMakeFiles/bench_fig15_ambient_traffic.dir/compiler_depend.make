# Empty compiler generated dependencies file for bench_fig15_ambient_traffic.
# This may be replaced when dependencies are built.
