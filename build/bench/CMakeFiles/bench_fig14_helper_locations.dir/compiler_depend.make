# Empty compiler generated dependencies file for bench_fig14_helper_locations.
# This may be replaced when dependencies are built.
