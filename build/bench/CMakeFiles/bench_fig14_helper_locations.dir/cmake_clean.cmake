file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_helper_locations.dir/bench_fig14_helper_locations.cpp.o"
  "CMakeFiles/bench_fig14_helper_locations.dir/bench_fig14_helper_locations.cpp.o.d"
  "bench_fig14_helper_locations"
  "bench_fig14_helper_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_helper_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
