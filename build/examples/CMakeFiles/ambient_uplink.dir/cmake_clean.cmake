file(REMOVE_RECURSE
  "CMakeFiles/ambient_uplink.dir/ambient_uplink.cpp.o"
  "CMakeFiles/ambient_uplink.dir/ambient_uplink.cpp.o.d"
  "ambient_uplink"
  "ambient_uplink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambient_uplink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
