# Empty dependencies file for ambient_uplink.
# This may be replaced when dependencies are built.
