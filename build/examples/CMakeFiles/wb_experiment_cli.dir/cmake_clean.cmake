file(REMOVE_RECURSE
  "CMakeFiles/wb_experiment_cli.dir/wb_experiment_cli.cpp.o"
  "CMakeFiles/wb_experiment_cli.dir/wb_experiment_cli.cpp.o.d"
  "wb_experiment_cli"
  "wb_experiment_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_experiment_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
