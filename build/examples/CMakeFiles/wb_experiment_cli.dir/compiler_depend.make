# Empty compiler generated dependencies file for wb_experiment_cli.
# This may be replaced when dependencies are built.
