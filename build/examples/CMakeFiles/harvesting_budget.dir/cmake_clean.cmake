file(REMOVE_RECURSE
  "CMakeFiles/harvesting_budget.dir/harvesting_budget.cpp.o"
  "CMakeFiles/harvesting_budget.dir/harvesting_budget.cpp.o.d"
  "harvesting_budget"
  "harvesting_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvesting_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
