# Empty dependencies file for harvesting_budget.
# This may be replaced when dependencies are built.
