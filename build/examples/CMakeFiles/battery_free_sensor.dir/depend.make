# Empty dependencies file for battery_free_sensor.
# This may be replaced when dependencies are built.
