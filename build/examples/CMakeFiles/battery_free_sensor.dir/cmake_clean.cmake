file(REMOVE_RECURSE
  "CMakeFiles/battery_free_sensor.dir/battery_free_sensor.cpp.o"
  "CMakeFiles/battery_free_sensor.dir/battery_free_sensor.cpp.o.d"
  "battery_free_sensor"
  "battery_free_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_free_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
