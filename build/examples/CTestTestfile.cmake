# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_harvesting_budget "/root/repo/build/examples/harvesting_budget")
set_tests_properties(example_harvesting_budget PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smart_shelf "/root/repo/build/examples/smart_shelf")
set_tests_properties(example_smart_shelf PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ambient_uplink "/root/repo/build/examples/ambient_uplink")
set_tests_properties(example_ambient_uplink PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_uplink "/root/repo/build/examples/wb_experiment_cli" "uplink" "--distance" "0.2" "--runs" "2")
set_tests_properties(example_cli_uplink PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
