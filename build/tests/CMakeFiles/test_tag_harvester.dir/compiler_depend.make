# Empty compiler generated dependencies file for test_tag_harvester.
# This may be replaced when dependencies are built.
