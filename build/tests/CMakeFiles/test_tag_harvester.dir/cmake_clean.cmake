file(REMOVE_RECURSE
  "CMakeFiles/test_tag_harvester.dir/test_tag_harvester.cpp.o"
  "CMakeFiles/test_tag_harvester.dir/test_tag_harvester.cpp.o.d"
  "test_tag_harvester"
  "test_tag_harvester.pdb"
  "test_tag_harvester[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_harvester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
