# Empty dependencies file for test_wifi_trace_io.
# This may be replaced when dependencies are built.
