file(REMOVE_RECURSE
  "CMakeFiles/test_wifi_mac.dir/test_wifi_mac.cpp.o"
  "CMakeFiles/test_wifi_mac.dir/test_wifi_mac.cpp.o.d"
  "test_wifi_mac"
  "test_wifi_mac.pdb"
  "test_wifi_mac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wifi_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
