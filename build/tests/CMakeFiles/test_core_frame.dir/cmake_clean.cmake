file(REMOVE_RECURSE
  "CMakeFiles/test_core_frame.dir/test_core_frame.cpp.o"
  "CMakeFiles/test_core_frame.dir/test_core_frame.cpp.o.d"
  "test_core_frame"
  "test_core_frame.pdb"
  "test_core_frame[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
