file(REMOVE_RECURSE
  "CMakeFiles/test_util_crc.dir/test_util_crc.cpp.o"
  "CMakeFiles/test_util_crc.dir/test_util_crc.cpp.o.d"
  "test_util_crc"
  "test_util_crc.pdb"
  "test_util_crc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
