# Empty compiler generated dependencies file for test_core_sims.
# This may be replaced when dependencies are built.
