file(REMOVE_RECURSE
  "CMakeFiles/test_core_sims.dir/test_core_sims.cpp.o"
  "CMakeFiles/test_core_sims.dir/test_core_sims.cpp.o.d"
  "test_core_sims"
  "test_core_sims.pdb"
  "test_core_sims[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_sims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
