file(REMOVE_RECURSE
  "CMakeFiles/test_wifi_traffic.dir/test_wifi_traffic.cpp.o"
  "CMakeFiles/test_wifi_traffic.dir/test_wifi_traffic.cpp.o.d"
  "test_wifi_traffic"
  "test_wifi_traffic.pdb"
  "test_wifi_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wifi_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
