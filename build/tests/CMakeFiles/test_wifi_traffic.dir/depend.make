# Empty dependencies file for test_wifi_traffic.
# This may be replaced when dependencies are built.
