file(REMOVE_RECURSE
  "CMakeFiles/test_tag_energy_detector.dir/test_tag_energy_detector.cpp.o"
  "CMakeFiles/test_tag_energy_detector.dir/test_tag_energy_detector.cpp.o.d"
  "test_tag_energy_detector"
  "test_tag_energy_detector.pdb"
  "test_tag_energy_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_energy_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
