# Empty dependencies file for test_tag_energy_detector.
# This may be replaced when dependencies are built.
