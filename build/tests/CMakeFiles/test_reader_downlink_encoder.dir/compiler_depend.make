# Empty compiler generated dependencies file for test_reader_downlink_encoder.
# This may be replaced when dependencies are built.
