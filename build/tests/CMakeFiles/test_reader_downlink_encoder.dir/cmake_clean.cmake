file(REMOVE_RECURSE
  "CMakeFiles/test_reader_downlink_encoder.dir/test_reader_downlink_encoder.cpp.o"
  "CMakeFiles/test_reader_downlink_encoder.dir/test_reader_downlink_encoder.cpp.o.d"
  "test_reader_downlink_encoder"
  "test_reader_downlink_encoder.pdb"
  "test_reader_downlink_encoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reader_downlink_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
