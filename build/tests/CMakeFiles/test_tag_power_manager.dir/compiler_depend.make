# Empty compiler generated dependencies file for test_tag_power_manager.
# This may be replaced when dependencies are built.
