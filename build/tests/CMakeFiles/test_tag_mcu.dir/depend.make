# Empty dependencies file for test_tag_mcu.
# This may be replaced when dependencies are built.
