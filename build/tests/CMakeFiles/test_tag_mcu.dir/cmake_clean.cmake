file(REMOVE_RECURSE
  "CMakeFiles/test_tag_mcu.dir/test_tag_mcu.cpp.o"
  "CMakeFiles/test_tag_mcu.dir/test_tag_mcu.cpp.o.d"
  "test_tag_mcu"
  "test_tag_mcu.pdb"
  "test_tag_mcu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
