file(REMOVE_RECURSE
  "CMakeFiles/test_calibration_pins.dir/test_calibration_pins.cpp.o"
  "CMakeFiles/test_calibration_pins.dir/test_calibration_pins.cpp.o.d"
  "test_calibration_pins"
  "test_calibration_pins.pdb"
  "test_calibration_pins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calibration_pins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
