# Empty compiler generated dependencies file for test_calibration_pins.
# This may be replaced when dependencies are built.
