# Empty dependencies file for test_core_arq.
# This may be replaced when dependencies are built.
