file(REMOVE_RECURSE
  "CMakeFiles/test_core_arq.dir/test_core_arq.cpp.o"
  "CMakeFiles/test_core_arq.dir/test_core_arq.cpp.o.d"
  "test_core_arq"
  "test_core_arq.pdb"
  "test_core_arq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_arq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
