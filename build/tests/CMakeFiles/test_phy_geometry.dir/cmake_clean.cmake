file(REMOVE_RECURSE
  "CMakeFiles/test_phy_geometry.dir/test_phy_geometry.cpp.o"
  "CMakeFiles/test_phy_geometry.dir/test_phy_geometry.cpp.o.d"
  "test_phy_geometry"
  "test_phy_geometry.pdb"
  "test_phy_geometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
