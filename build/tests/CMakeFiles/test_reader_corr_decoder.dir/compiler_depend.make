# Empty compiler generated dependencies file for test_reader_corr_decoder.
# This may be replaced when dependencies are built.
