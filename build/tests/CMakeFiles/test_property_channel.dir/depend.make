# Empty dependencies file for test_property_channel.
# This may be replaced when dependencies are built.
