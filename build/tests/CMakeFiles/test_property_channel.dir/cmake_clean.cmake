file(REMOVE_RECURSE
  "CMakeFiles/test_property_channel.dir/test_property_channel.cpp.o"
  "CMakeFiles/test_property_channel.dir/test_property_channel.cpp.o.d"
  "test_property_channel"
  "test_property_channel.pdb"
  "test_property_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
