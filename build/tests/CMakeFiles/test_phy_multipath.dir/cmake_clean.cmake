file(REMOVE_RECURSE
  "CMakeFiles/test_phy_multipath.dir/test_phy_multipath.cpp.o"
  "CMakeFiles/test_phy_multipath.dir/test_phy_multipath.cpp.o.d"
  "test_phy_multipath"
  "test_phy_multipath.pdb"
  "test_phy_multipath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
