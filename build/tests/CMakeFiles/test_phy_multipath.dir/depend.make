# Empty dependencies file for test_phy_multipath.
# This may be replaced when dependencies are built.
