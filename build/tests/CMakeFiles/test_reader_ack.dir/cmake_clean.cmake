file(REMOVE_RECURSE
  "CMakeFiles/test_reader_ack.dir/test_reader_ack.cpp.o"
  "CMakeFiles/test_reader_ack.dir/test_reader_ack.cpp.o.d"
  "test_reader_ack"
  "test_reader_ack.pdb"
  "test_reader_ack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reader_ack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
