# Empty dependencies file for test_reader_ack.
# This may be replaced when dependencies are built.
