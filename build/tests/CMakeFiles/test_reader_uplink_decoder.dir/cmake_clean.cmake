file(REMOVE_RECURSE
  "CMakeFiles/test_reader_uplink_decoder.dir/test_reader_uplink_decoder.cpp.o"
  "CMakeFiles/test_reader_uplink_decoder.dir/test_reader_uplink_decoder.cpp.o.d"
  "test_reader_uplink_decoder"
  "test_reader_uplink_decoder.pdb"
  "test_reader_uplink_decoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reader_uplink_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
