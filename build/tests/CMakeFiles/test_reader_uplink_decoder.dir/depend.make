# Empty dependencies file for test_reader_uplink_decoder.
# This may be replaced when dependencies are built.
