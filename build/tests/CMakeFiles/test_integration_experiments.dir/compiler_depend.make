# Empty compiler generated dependencies file for test_integration_experiments.
# This may be replaced when dependencies are built.
