file(REMOVE_RECURSE
  "CMakeFiles/test_integration_experiments.dir/test_integration_experiments.cpp.o"
  "CMakeFiles/test_integration_experiments.dir/test_integration_experiments.cpp.o.d"
  "test_integration_experiments"
  "test_integration_experiments.pdb"
  "test_integration_experiments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
