file(REMOVE_RECURSE
  "CMakeFiles/test_util_codes.dir/test_util_codes.cpp.o"
  "CMakeFiles/test_util_codes.dir/test_util_codes.cpp.o.d"
  "test_util_codes"
  "test_util_codes.pdb"
  "test_util_codes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
