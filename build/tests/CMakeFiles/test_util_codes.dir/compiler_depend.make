# Empty compiler generated dependencies file for test_util_codes.
# This may be replaced when dependencies are built.
