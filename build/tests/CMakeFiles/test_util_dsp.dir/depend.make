# Empty dependencies file for test_util_dsp.
# This may be replaced when dependencies are built.
