file(REMOVE_RECURSE
  "CMakeFiles/test_util_dsp.dir/test_util_dsp.cpp.o"
  "CMakeFiles/test_util_dsp.dir/test_util_dsp.cpp.o.d"
  "test_util_dsp"
  "test_util_dsp.pdb"
  "test_util_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
