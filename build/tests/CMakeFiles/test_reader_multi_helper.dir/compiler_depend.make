# Empty compiler generated dependencies file for test_reader_multi_helper.
# This may be replaced when dependencies are built.
