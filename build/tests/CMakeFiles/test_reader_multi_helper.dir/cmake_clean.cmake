file(REMOVE_RECURSE
  "CMakeFiles/test_reader_multi_helper.dir/test_reader_multi_helper.cpp.o"
  "CMakeFiles/test_reader_multi_helper.dir/test_reader_multi_helper.cpp.o.d"
  "test_reader_multi_helper"
  "test_reader_multi_helper.pdb"
  "test_reader_multi_helper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reader_multi_helper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
