# Empty compiler generated dependencies file for test_reader_streaming.
# This may be replaced when dependencies are built.
