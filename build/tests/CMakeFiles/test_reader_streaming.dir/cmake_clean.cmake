file(REMOVE_RECURSE
  "CMakeFiles/test_reader_streaming.dir/test_reader_streaming.cpp.o"
  "CMakeFiles/test_reader_streaming.dir/test_reader_streaming.cpp.o.d"
  "test_reader_streaming"
  "test_reader_streaming.pdb"
  "test_reader_streaming[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reader_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
