file(REMOVE_RECURSE
  "CMakeFiles/test_reader_conditioning.dir/test_reader_conditioning.cpp.o"
  "CMakeFiles/test_reader_conditioning.dir/test_reader_conditioning.cpp.o.d"
  "test_reader_conditioning"
  "test_reader_conditioning.pdb"
  "test_reader_conditioning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reader_conditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
