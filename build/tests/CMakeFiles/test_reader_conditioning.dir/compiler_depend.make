# Empty compiler generated dependencies file for test_reader_conditioning.
# This may be replaced when dependencies are built.
