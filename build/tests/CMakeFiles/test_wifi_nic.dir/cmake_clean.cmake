file(REMOVE_RECURSE
  "CMakeFiles/test_wifi_nic.dir/test_wifi_nic.cpp.o"
  "CMakeFiles/test_wifi_nic.dir/test_wifi_nic.cpp.o.d"
  "test_wifi_nic"
  "test_wifi_nic.pdb"
  "test_wifi_nic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wifi_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
