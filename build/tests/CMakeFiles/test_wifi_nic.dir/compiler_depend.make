# Empty compiler generated dependencies file for test_wifi_nic.
# This may be replaced when dependencies are built.
