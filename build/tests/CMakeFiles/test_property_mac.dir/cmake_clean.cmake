file(REMOVE_RECURSE
  "CMakeFiles/test_property_mac.dir/test_property_mac.cpp.o"
  "CMakeFiles/test_property_mac.dir/test_property_mac.cpp.o.d"
  "test_property_mac"
  "test_property_mac.pdb"
  "test_property_mac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
