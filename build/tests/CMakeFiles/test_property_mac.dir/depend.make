# Empty dependencies file for test_property_mac.
# This may be replaced when dependencies are built.
