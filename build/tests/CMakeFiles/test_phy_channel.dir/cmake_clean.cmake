file(REMOVE_RECURSE
  "CMakeFiles/test_phy_channel.dir/test_phy_channel.cpp.o"
  "CMakeFiles/test_phy_channel.dir/test_phy_channel.cpp.o.d"
  "test_phy_channel"
  "test_phy_channel.pdb"
  "test_phy_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
