# Empty compiler generated dependencies file for test_core_inventory.
# This may be replaced when dependencies are built.
