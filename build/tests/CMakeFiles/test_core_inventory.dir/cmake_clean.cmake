file(REMOVE_RECURSE
  "CMakeFiles/test_core_inventory.dir/test_core_inventory.cpp.o"
  "CMakeFiles/test_core_inventory.dir/test_core_inventory.cpp.o.d"
  "test_core_inventory"
  "test_core_inventory.pdb"
  "test_core_inventory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
