file(REMOVE_RECURSE
  "CMakeFiles/test_wifi_ratelink.dir/test_wifi_ratelink.cpp.o"
  "CMakeFiles/test_wifi_ratelink.dir/test_wifi_ratelink.cpp.o.d"
  "test_wifi_ratelink"
  "test_wifi_ratelink.pdb"
  "test_wifi_ratelink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wifi_ratelink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
