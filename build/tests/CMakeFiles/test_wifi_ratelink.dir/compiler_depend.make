# Empty compiler generated dependencies file for test_wifi_ratelink.
# This may be replaced when dependencies are built.
