// Command-line experiment runner: poke at any operating point of the
// system without writing code.
//
//   wb_experiment_cli uplink   [--distance M] [--pkts-per-bit N]
//                              [--helper-pps N] [--rssi] [--runs N]
//                              [--seed N]
//   wb_experiment_cli coded    [--distance M] [--length L] [--runs N]
//   wb_experiment_cli downlink [--distance M] [--slot-us N] [--bits N]
//   wb_experiment_cli trace    [--distance M] [--packets N] --out FILE
//   wb_experiment_cli query    [--distance M] [--helper-pps N]
//                              [--queries N] [--ack] [--seed N]
//
// `trace` writes a capture CSV (an alternating-bit tag) that external
// tools — or `read_capture_csv` — can consume. `query` drives full
// request-response round trips through the discrete-event scheduler.
//
// Observability (any mode):
//   --metrics-out FILE   write a JSON run report with every wb::obs metric
//   --trace-out FILE     write Chrome trace_event JSON (open in
//                        chrome://tracing or https://ui.perfetto.dev)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/downlink_sim.h"
#include "core/experiments.h"
#include "core/frame.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "reader/downlink_encoder.h"
#include "sim/event_queue.h"
#include "tag/modulator.h"
#include "util/stats.h"
#include "wifi/trace_io.h"

namespace {

using namespace wb;

double arg_double(int argc, char** argv, const char* name, double dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return dflt;
}

const char* arg_string(int argc, char** argv, const char* name,
                       const char* dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return dflt;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int run_uplink(int argc, char** argv) {
  core::UplinkExperimentParams p;
  p.tag_reader_distance_m = arg_double(argc, argv, "--distance", 0.3);
  p.packets_per_bit = arg_double(argc, argv, "--pkts-per-bit", 30.0);
  p.helper_pps = arg_double(argc, argv, "--helper-pps", 3'000.0);
  p.runs = static_cast<std::size_t>(arg_double(argc, argv, "--runs", 10));
  p.seed = static_cast<std::uint64_t>(arg_double(argc, argv, "--seed", 1));
  if (arg_flag(argc, argv, "--rssi")) {
    p.source = reader::MeasurementSource::kRssi;
  }
  const auto m = core::measure_uplink_ber(p);
  std::printf("uplink %s @ %.0f cm, %.0f pkt/bit, helper %.0f pkt/s\n",
              p.source == reader::MeasurementSource::kRssi ? "RSSI" : "CSI",
              p.tag_reader_distance_m * 100, p.packets_per_bit,
              p.helper_pps);
  std::printf("  bit rate   : %.0f bps\n",
              p.helper_pps / p.packets_per_bit);
  std::printf("  BER        : %.3e (%zu errors / %zu bits)\n", m.ber,
              m.errors, m.bits);
  std::printf("  sync fails : %zu / %zu runs\n", m.failed_syncs, p.runs);
  return 0;
}

int run_coded(int argc, char** argv) {
  core::CodedExperimentParams p;
  p.tag_reader_distance_m = arg_double(argc, argv, "--distance", 1.6);
  p.code_length =
      static_cast<std::size_t>(arg_double(argc, argv, "--length", 20));
  p.runs = static_cast<std::size_t>(arg_double(argc, argv, "--runs", 5));
  p.packets_per_chip = arg_double(argc, argv, "--pkts-per-chip", 2.0);
  p.seed = static_cast<std::uint64_t>(arg_double(argc, argv, "--seed", 1));
  const auto m = core::measure_coded_uplink_ber(p);
  std::printf("coded uplink @ %.0f cm, L=%zu, %.0f pkt/chip\n",
              p.tag_reader_distance_m * 100, p.code_length,
              p.packets_per_chip);
  std::printf("  BER: %.3e (%zu errors / %zu bits)\n", m.ber, m.errors,
              m.bits);
  return 0;
}

int run_downlink(int argc, char** argv) {
  const double distance = arg_double(argc, argv, "--distance", 1.5);
  const auto slot_us = static_cast<TimeUs>(
      arg_double(argc, argv, "--slot-us", 50));
  const auto bits = static_cast<std::size_t>(
      arg_double(argc, argv, "--bits", 20'000));

  reader::DownlinkEncoderConfig enc_cfg;
  enc_cfg.slot_us = slot_us;
  reader::DownlinkEncoder encoder(enc_cfg);
  BerCounter ber;
  std::size_t sent = 0;
  std::uint64_t round = 0;
  while (sent < bits) {
    const std::size_t n =
        std::min<std::size_t>(500, bits - sent);
    BitVec message = core::downlink_preamble();
    const BitVec data = random_bits(n, 33 + round);
    message.insert(message.end(), data.begin(), data.end());
    const auto tx = encoder.encode(message, 500);
    core::DownlinkSimConfig cfg;
    cfg.reader_tag_distance_m = distance;
    cfg.mcu.bit_duration_us = slot_us;
    cfg.seed = 77 + round;
    core::DownlinkSim sim(cfg);
    const auto rep = sim.run(tx, {}, tx.end_us + 1'000);
    BitVec truth;
    for (const auto& s : tx.slots) truth.push_back(s.bit);
    ber.add(truth, rep.slot_levels);
    sent += n;
    ++round;
  }
  std::printf("downlink @ %.0f cm, %lld us slots (%.0f kbps)\n",
              distance * 100, static_cast<long long>(slot_us),
              1e3 / static_cast<double>(slot_us));
  std::printf("  slot BER: %.3e (%zu errors / %zu bits)\n",
              ber.ber_floored(), ber.errors(), ber.bits());
  return 0;
}

int run_trace(int argc, char** argv) {
  const double distance = arg_double(argc, argv, "--distance", 0.05);
  const auto packets = static_cast<std::size_t>(
      arg_double(argc, argv, "--packets", 3'000));
  const std::string out = arg_string(argc, argv, "--out", "");
  if (out.empty()) {
    std::fprintf(stderr, "trace mode requires --out FILE\n");
    return 2;
  }
  core::UplinkSimConfig cfg;
  cfg.channel.tag_pos = {distance, 0.0};
  cfg.channel.helper_pos = {distance + 3.0, 0.0};
  cfg.seed = static_cast<std::uint64_t>(arg_double(argc, argv, "--seed", 1));
  const double pps = 3'000.0;
  const TimeUs until =
      static_cast<TimeUs>(static_cast<double>(packets) / pps * 1e6) + 1;
  sim::RngStream rng(cfg.seed);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(pps, until, wifi::TrafficParams{},
                                          traffic_rng);
  BitVec alternating;
  for (std::size_t i = 0; i * 10'000 < static_cast<std::size_t>(until);
       ++i) {
    alternating.push_back(static_cast<std::uint8_t>(i % 2));
  }
  tag::Modulator mod(alternating, 10'000, 0);
  core::UplinkSim sim(cfg);
  const auto trace = sim.run(tl, mod);
  const auto n = wifi::save_capture_csv(out, trace);
  std::printf("wrote %zu capture records to %s\n", n, out.c_str());
  return 0;
}

int run_query(int argc, char** argv) {
  core::SystemConfig cfg;
  cfg.tag_reader_distance_m = arg_double(argc, argv, "--distance", 0.3);
  cfg.helper_pps = arg_double(argc, argv, "--helper-pps", 3'000.0);
  cfg.ack_enabled = arg_flag(argc, argv, "--ack");
  cfg.seed = static_cast<std::uint64_t>(arg_double(argc, argv, "--seed", 1));
  const auto queries = static_cast<std::size_t>(
      arg_double(argc, argv, "--queries", 3));
  core::WiFiBackscatterSystem system(cfg);

  // Drive the exchanges through the discrete-event scheduler: one event
  // per query on a fixed virtual cadence, each with a watchdog the
  // completion path cancels (so cancelled events show in sim.* metrics).
  sim::EventQueue queue;
  constexpr TimeUs kQueryPeriodUs = 5'000'000;
  std::size_t succeeded = 0;
  std::size_t attempts = 0;
  for (std::size_t i = 0; i < queries; ++i) {
    queue.schedule_at(static_cast<TimeUs>(i) * kQueryPeriodUs, [&, i] {
      const std::uint64_t watchdog =
          queue.schedule_in(kQueryPeriodUs - 1, [i] {
            std::printf("query %zu: watchdog expired\n", i);
          });
      core::Query q;
      q.tag_address = 7;
      q.command = core::kCmdReadSensor;
      const BitVec reading = random_bits(24, cfg.seed + i);
      const auto outcome = system.query(q, reading);
      attempts += outcome.downlink.attempts;
      if (outcome.success()) ++succeeded;
      std::printf("query %zu: %s after %zu attempt(s), %zu/%zu bits ok\n",
                  i, outcome.success() ? "ok" : "FAILED",
                  outcome.downlink.attempts,
                  outcome.uplink.bits_total - outcome.uplink.bit_errors,
                  outcome.uplink.bits_total);
      queue.cancel(watchdog);
    });
  }
  queue.run_all();
  std::printf("query summary: %zu/%zu round trips ok, %zu attempts, "
              "%lld us virtual\n",
              succeeded, queries, attempts,
              static_cast<long long>(queue.now()));
  return succeeded == queries ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s {uplink|coded|downlink|trace|query} [options]\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = argv[1];

  // Observability: install a registry/tracer for the whole run when the
  // corresponding output file is requested.
  const std::string metrics_out =
      arg_string(argc, argv, "--metrics-out", "");
  const std::string trace_out = arg_string(argc, argv, "--trace-out", "");
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  std::unique_ptr<obs::ScopedMetrics> metrics_guard;
  std::unique_ptr<obs::ScopedTracer> tracer_guard;
  if (!metrics_out.empty()) {
    metrics_guard = std::make_unique<obs::ScopedMetrics>(registry);
  }
  if (!trace_out.empty()) {
    tracer_guard = std::make_unique<obs::ScopedTracer>(tracer);
  }

  int rc = 2;
  if (mode == "uplink") rc = run_uplink(argc, argv);
  else if (mode == "coded") rc = run_coded(argc, argv);
  else if (mode == "downlink") rc = run_downlink(argc, argv);
  else if (mode == "trace") rc = run_trace(argc, argv);
  else if (mode == "query") rc = run_query(argc, argv);
  else std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());

  if (!metrics_out.empty()) {
    obs::RunReport report;
    report.set_meta("tool", "wb_experiment_cli");
    report.set_meta("mode", mode);
    report.set_meta("exit_code", static_cast<double>(rc));
    report.attach_metrics(registry);
    if (!report.write_json(metrics_out)) {
      std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
      return 2;
    }
    std::printf("metrics report: %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!tracer.write_json(trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 2;
    }
    std::printf("trace (%zu events): %s\n", tracer.num_events(),
                trace_out.c_str());
  }
  return rc;
}
