// Command-line experiment runner: poke at any operating point of the
// system without writing code.
//
//   wb_experiment_cli uplink   [--distance M] [--pkts-per-bit N]
//                              [--helper-pps N] [--rssi] [--runs N]
//                              [--seed N]
//   wb_experiment_cli coded    [--distance M] [--length L] [--runs N]
//   wb_experiment_cli downlink [--distance M] [--slot-us N] [--bits N]
//   wb_experiment_cli trace    [--distance M] [--packets N] --out FILE
//                              | --in FILE
//   wb_experiment_cli query    [--distance M] [--helper-pps N]
//                              [--queries N] [--ack] [--seed N]
//   wb_experiment_cli sweep    [--distances-cm A,B,...]
//                              [--pkts-per-bit A,B,...] [--helper-pps N]
//                              [--runs N] [--seed N] [--rssi]
//                              [--threads N] [--json-out FILE]
//   wb_experiment_cli serve    [--in FILE] [--sessions N] [--ring N]
//                              [--policy block|drop-oldest|drop-newest]
//                              [--threads N] [--packets N] [--distance M]
//                              [--stagger-us N] [--seed N]
//
// `trace` writes a capture CSV (an alternating-bit tag) that external
// tools — or `read_capture_csv` — can consume; `trace --in` reads one
// back (strict parse: malformed cells are rejected with line:column). `query` drives full
// request-response round trips through the discrete-event scheduler.
// `sweep` expands a distance × packets-per-bit grid and runs it on
// wb::runner worker threads (default: hardware concurrency), emitting one
// obs::RunReport for the whole grid — rows in grid order, per-task
// metrics merged in task order, bit-identical output at any --threads.
// `serve` replays a capture (recorded via `trace --out`, or synthetic)
// as N staggered concurrent sessions through the wb::serve
// CaptureService and prints per-session decodes plus the service's
// property snapshot; with --forensics-out the merged serve forensics
// (ingest ledger + per-session decode taxonomy) lands in the JSONL.
//
// Observability (any mode):
//   --metrics-out FILE   write a JSON run report with every wb::obs metric
//   --trace-out FILE     write Chrome trace_event JSON (open in
//                        chrome://tracing or https://ui.perfetto.dev)
//   --forensics-out FILE write decode-forensics JSONL (drop taxonomy
//                        counts + flight-recorder events) plus exemplar
//                        capture CSV sidecars (`FILE.<stage>_<reason>.N.csv`,
//                        replayable via `trace --in`); also arms a
//                        contract-failure dump to FILE.crash.jsonl
//   --slo RULE           declarative SLO rule (repeatable), e.g.
//                        `ber=core.system.uplink_bit_errors_total/`
//                        `core.system.uplink_bits_delivered_total<=0.01`;
//                        any breach after the run exits 4
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/downlink_sim.h"
#include "core/experiments.h"
#include "core/frame.h"
#include "core/rate_control.h"
#include "core/system.h"
#include "obs/flight_recorder.h"
#include "obs/forensics.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "runner/sweep.h"
#include "serve/capture_service.h"
#include "sim/event_queue.h"
#include "tag/modulator.h"
#include "util/args.h"
#include "util/stats.h"
#include "wifi/replay.h"
#include "wifi/trace_io.h"

namespace {

using namespace wb;

int run_uplink(const util::Args& args) {
  core::UplinkExperimentParams p;
  p.tag_reader_distance_m = Meters{args.num("--distance", 0.3)};
  p.packets_per_bit = args.num("--pkts-per-bit", 30.0);
  p.helper_pps = args.num("--helper-pps", 3'000.0);
  p.runs = args.size("--runs", 10);
  p.seed = args.u64("--seed", 1);
  if (args.flag("--rssi")) {
    p.source = reader::MeasurementSource::kRssi;
  }
  const auto m = core::measure_uplink_ber(p);
  std::printf("uplink %s @ %.0f cm, %.0f pkt/bit, helper %.0f pkt/s\n",
              p.source == reader::MeasurementSource::kRssi ? "RSSI" : "CSI",
              p.tag_reader_distance_m.value() * 100, p.packets_per_bit,
              p.helper_pps);
  std::printf("  bit rate   : %.0f bps\n",
              p.helper_pps / p.packets_per_bit);
  std::printf("  BER        : %.3e (%zu errors / %zu bits)\n", m.ber,
              m.errors, m.bits);
  std::printf("  sync fails : %zu / %zu runs\n", m.failed_syncs, p.runs);
  return 0;
}

int run_coded(const util::Args& args) {
  core::CodedExperimentParams p;
  p.tag_reader_distance_m = Meters{args.num("--distance", 1.6)};
  p.code_length = args.size("--length", 20);
  p.runs = args.size("--runs", 5);
  p.packets_per_chip = args.num("--pkts-per-chip", 2.0);
  p.seed = args.u64("--seed", 1);
  const auto m = core::measure_coded_uplink_ber(p);
  std::printf("coded uplink @ %.0f cm, L=%zu, %.0f pkt/chip\n",
              p.tag_reader_distance_m.value() * 100, p.code_length,
              p.packets_per_chip);
  std::printf("  BER: %.3e (%zu errors / %zu bits)\n", m.ber, m.errors,
              m.bits);
  return 0;
}

int run_downlink(const util::Args& args) {
  core::DownlinkExperimentParams p;
  p.reader_tag_distance_m = Meters{args.num("--distance", 1.5)};
  p.slot_us = TimeUs::from_us(args.num("--slot-us", 50));
  p.total_bits = args.size("--bits", 20'000);
  p.max_burst_bits = 500;
  p.seed = args.u64("--seed", 33);
  const auto m = core::measure_downlink_ber(p);
  std::printf("downlink @ %.0f cm, %lld us slots (%.0f kbps)\n",
              p.reader_tag_distance_m.value() * 100,
              static_cast<long long>(p.slot_us.ticks()),
              1e3 / static_cast<double>(p.slot_us.ticks()));
  std::printf("  slot BER: %.3e (%zu errors / %zu bits)\n", m.ber,
              m.errors, m.bits);
  return 0;
}

int run_trace(const util::Args& args) {
  const std::string in = args.str("--in");
  if (!in.empty()) {
    // Inspect a previously written capture: record count, time span, CSI
    // coverage, and the helper packet rate the rate controller would see.
    // A malformed cell is reported with its line and column, not decoded
    // partially.
    wifi::CaptureTrace trace;
    try {
      trace = wifi::load_capture_csv(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::printf("read %zu capture records from %s\n", trace.size(),
                in.c_str());
    if (!trace.empty()) {
      std::size_t with_csi = 0;
      for (const auto& rec : trace) with_csi += rec.has_csi ? 1 : 0;
      const auto span_us =
          trace.back().timestamp_us - trace.front().timestamp_us;
      std::printf("  span     : %.3f s\n",
                  static_cast<double>(span_us.ticks()) / 1e6);
      std::printf("  CSI      : %zu/%zu records\n", with_csi, trace.size());
      std::printf("  rate     : %.0f pkt/s over the last second\n",
                  core::RateControl::measured_packet_rate(trace, TimeUs{1'000'000}));
    }
    return 0;
  }
  const double distance = args.num("--distance", 0.05);
  const auto packets = args.size("--packets", 3'000);
  const std::string out = args.str("--out");
  if (out.empty()) {
    std::fprintf(stderr, "trace mode requires --out or --in FILE\n");
    return 2;
  }
  core::UplinkSimConfig cfg;
  cfg.channel.tag_pos = {distance, 0.0};
  cfg.channel.helper_pos = {distance + 3.0, 0.0};
  cfg.seed = args.u64("--seed", 1);
  const double pps = 3'000.0;
  const TimeUs until =
      TimeUs{static_cast<std::int64_t>(
          static_cast<double>(packets) / pps * 1e6)} +
      TimeUs{1};
  sim::RngStream rng(cfg.seed);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(pps, until, wifi::TrafficParams{},
                                          traffic_rng);
  BitVec alternating;
  for (std::size_t i = 0;
       TimeUs{10'000} * static_cast<std::int64_t>(i) < until;
       ++i) {
    alternating.push_back(static_cast<std::uint8_t>(i % 2));
  }
  tag::Modulator mod(alternating, TimeUs{10'000}, TimeUs{});
  core::UplinkSim sim(cfg);
  const auto trace = sim.run(tl, mod);
  const auto n = wifi::save_capture_csv(out, trace);
  std::printf("wrote %zu capture records to %s\n", n, out.c_str());
  return 0;
}

int run_query(const util::Args& args) {
  core::SystemConfig cfg;
  cfg.tag_reader_distance_m = Meters{args.num("--distance", 0.3)};
  cfg.helper_pps = args.num("--helper-pps", 3'000.0);
  cfg.ack_enabled = args.flag("--ack");
  cfg.seed = args.u64("--seed", 1);
  const auto queries = args.size("--queries", 3);
  core::WiFiBackscatterSystem system(cfg);

  // Drive the exchanges through the discrete-event scheduler: one event
  // per query on a fixed virtual cadence, each with a watchdog the
  // completion path cancels (so cancelled events show in sim.* metrics).
  sim::EventQueue queue;
  constexpr TimeUs kQueryPeriodUs{5'000'000};
  std::size_t succeeded = 0;
  std::size_t attempts = 0;
  for (std::size_t i = 0; i < queries; ++i) {
    queue.schedule_at(kQueryPeriodUs * static_cast<std::int64_t>(i),
                      [&, i] {
      const std::uint64_t watchdog =
          queue.schedule_in(kQueryPeriodUs - TimeUs{1}, [i] {
            std::printf("query %zu: watchdog expired\n", i);
          });
      core::Query q;
      q.tag_address = 7;
      q.command = core::kCmdReadSensor;
      const BitVec reading = random_bits(24, cfg.seed + i);
      const auto outcome = system.query(q, reading);
      attempts += outcome.downlink.attempts;
      if (outcome.success()) ++succeeded;
      std::printf("query %zu: %s after %zu attempt(s), %zu/%zu bits ok\n",
                  i, outcome.success() ? "ok" : "FAILED",
                  outcome.downlink.attempts,
                  outcome.uplink.bits_total - outcome.uplink.bit_errors,
                  outcome.uplink.bits_total);
      queue.cancel(watchdog);
    });
  }
  queue.run_all();
  std::printf("query summary: %zu/%zu round trips ok, %zu attempts, "
              "%lld us virtual\n",
              succeeded, queries, attempts,
              static_cast<long long>(queue.now().ticks()));
  return succeeded == queries ? 0 : 1;
}

int run_sweep(const util::Args& args) {
  core::UplinkGridSpec spec;
  spec.base.helper_pps = args.num("--helper-pps", 3'000.0);
  spec.base.runs = args.size("--runs", 4);
  spec.base.seed = args.u64("--seed", 1);
  if (args.flag("--rssi")) {
    spec.sources = {reader::MeasurementSource::kRssi};
  }
  for (double cm : args.num_list("--distances-cm", {5, 15, 30, 50})) {
    spec.distances_m.push_back(cm / 100.0);
  }
  spec.packets_per_bit = args.num_list("--pkts-per-bit", {30, 6});
  const auto grid = core::expand_uplink_grid(spec);
  if (grid.empty()) {
    std::fprintf(stderr, "sweep grid is empty\n");
    return 2;
  }

  runner::SweepConfig cfg;
  cfg.threads = static_cast<unsigned>(args.u64("--threads", 0));
  cfg.base_seed = spec.base.seed;
  cfg.collect_metrics = true;
  // Collect per-task forensics whenever a sink is installed for the run
  // (--forensics-out); the per-task sinks merge in task-index order, so
  // the combined taxonomy is thread-count independent.
  cfg.collect_forensics = obs::forensics() != nullptr;
  runner::SweepRunner sweep(cfg);
  const auto res =
      sweep.run(grid.size(), [&grid](const runner::TaskContext& ctx) {
        return core::measure_uplink_ber(grid[ctx.task_index].params);
      });

  // One RunReport for the whole grid: rows in grid (task-index) order,
  // the merged per-task metrics attached. Nothing scheduling-dependent
  // goes into the report, so the JSON is byte-identical at any --threads.
  obs::RunReport report;
  report.set_meta("tool", "wb_experiment_cli");
  report.set_meta("mode", "sweep");
  report.set_meta("base_seed", static_cast<double>(spec.base.seed));
  report.set_meta("rssi", args.flag("--rssi"));
  report.set_meta("grid_points", static_cast<double>(grid.size()));

  std::printf("%-10s %-14s %-10s %-12s %s\n", "task", "distance(cm)",
              "pkt/bit", "BER", "errors/bits");
  for (const auto& pt : grid) {
    const auto& m = res.results[pt.index];
    std::printf("%-10zu %-14.1f %-10.0f %-12.3e %zu/%zu\n", pt.index,
                pt.distance_m.value() * 100.0, pt.packets_per_bit, m.ber,
                m.errors,
                m.bits);
    report.add_row("grid_point")
        .set("task", static_cast<double>(pt.index))
        .set("source",
             pt.source == reader::MeasurementSource::kRssi ? "rssi" : "csi")
        .set("distance_cm", pt.distance_m.value() * 100.0)
        .set("pkts_per_bit", pt.packets_per_bit)
        .set("ber", m.ber)
        .set("ber_raw", m.ber_raw)
        .set("errors", static_cast<double>(m.errors))
        .set("bits", static_cast<double>(m.bits))
        .set("failed_syncs", static_cast<double>(m.failed_syncs));
  }
  if (res.metrics != nullptr) {
    report.attach_metrics(*res.metrics);
    // Fold the sweep's merged metrics into a --metrics-out registry, if
    // one is installed on this thread, so the generic artifact below
    // covers sweep mode too.
    if (auto* m = obs::metrics()) m->merge_from(*res.metrics);
  }
  if (res.forensics != nullptr) {
    // Same for the merged drop taxonomy and the --forensics-out sink.
    if (auto* fx = obs::forensics()) fx->merge_from(*res.forensics);
  }

  const std::string json_out = args.str("--json-out");
  if (!json_out.empty()) {
    if (!report.write_json(json_out)) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 2;
    }
    std::printf("sweep report: %s\n", json_out.c_str());
  }
  return 0;
}

bool parse_policy(const std::string& s, serve::BackpressurePolicy& out) {
  if (s.empty() || s == "block") {
    out = serve::BackpressurePolicy::kBlockProducer;
  } else if (s == "drop-oldest") {
    out = serve::BackpressurePolicy::kDropOldest;
  } else if (s == "drop-newest") {
    out = serve::BackpressurePolicy::kDropNewest;
  } else {
    return false;
  }
  return true;
}

int run_serve(const util::Args& args) {
  serve::ServeConfig cfg;
  const std::size_t sessions = args.size("--sessions", 3);
  cfg.max_sessions = sessions;
  cfg.ring_capacity = args.size("--ring", 256);
  cfg.dispatch_threads = static_cast<unsigned>(args.u64("--threads", 1));
  if (!parse_policy(args.str("--policy"), cfg.policy)) {
    std::fprintf(stderr,
                 "unknown --policy '%s' (block|drop-oldest|drop-newest)\n",
                 args.str("--policy").c_str());
    return 2;
  }
  const std::size_t payload_bits = args.size("--payload-bits", 24);
  const TimeUs bit_us = TimeUs::from_us(args.num("--bit-us", 5'000));
  cfg.decoder.decoder.payload_bits = payload_bits;
  cfg.decoder.decoder.bit_duration_us = bit_us;
  const std::uint64_t seed = args.u64("--seed", 1);

  // Source capture: a recorded CSV, or a synthetic frame (the streaming
  // decoder's preamble + payload at 0.7 s) over helper CBR traffic.
  wifi::CaptureTrace trace;
  const std::string in = args.str("--in");
  if (!in.empty()) {
    try {
      trace = wifi::load_capture_csv(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else {
    const auto packets = args.size("--packets", 3'600);
    const double distance = args.num("--distance", 0.08);
    core::UplinkSimConfig sim_cfg;
    sim_cfg.channel.tag_pos = {distance, 0.0};
    sim_cfg.channel.helper_pos = {distance + 3.0, 0.0};
    sim_cfg.seed = seed;
    const double pps = 3'000.0;
    const TimeUs until = TimeUs{static_cast<std::int64_t>(
        static_cast<double>(packets) / pps * 1e6)};
    sim::RngStream rng(seed);
    auto traffic_rng = rng.fork("t");
    const auto tl = wifi::make_cbr_timeline(pps, until, wifi::TrafficParams{},
                                            traffic_rng);
    BitVec frame = barker13();
    const BitVec payload = random_bits(payload_bits, seed);
    frame.insert(frame.end(), payload.begin(), payload.end());
    tag::Modulator mod(frame, bit_us, TimeUs{700'000});
    core::UplinkSim sim(sim_cfg);
    trace = sim.run(tl, mod);
  }
  if (trace.empty()) {
    std::fprintf(stderr, "serve: capture is empty\n");
    return 1;
  }

  serve::CaptureService svc(cfg);
  for (std::uint32_t id = 0; id < sessions; ++id) {
    const auto err = svc.attach(id);
    if (!err.ok()) {
      std::fprintf(stderr, "attach %u: %s (%s)\n", id,
                   serve::to_string(err.code()), err.message().c_str());
      return 1;
    }
  }

  // Replay the capture as `sessions` concurrent time-staggered streams
  // merged in global timestamp order — what a live multi-NIC feed looks
  // like to the service.
  const TimeUs stagger = TimeUs::from_us(args.num("--stagger-us", 1'733));
  wifi::MultiSessionFeed feed(wifi::fan_out(trace, sessions, stagger));
  std::uint32_t session = 0;
  wifi::CaptureRecord rec{};
  while (feed.next(session, rec)) {
    const auto err = svc.submit(session, rec);
    if (!err.ok()) {
      std::fprintf(stderr, "submit (session %u): %s (%s)\n", session,
                   serve::to_string(err.code()), err.message().c_str());
      return 1;
    }
  }
  const std::size_t drained = svc.drain_all();

  std::printf("serve: %zu sessions x %zu records, ring %zu (%s), "
              "threads %u\n",
              sessions, trace.size(), cfg.ring_capacity,
              serve::to_string(cfg.policy), cfg.dispatch_threads);
  for (std::uint32_t id = 0; id < sessions; ++id) {
    const serve::Session* s = svc.find(id);
    if (s == nullptr) continue;
    std::printf("  session %-3u state=%-8s records=%llu frames=%llu\n", id,
                serve::to_string(s->state()),
                static_cast<unsigned long long>(s->records_dispatched()),
                static_cast<unsigned long long>(s->frames_total()));
  }
  std::printf("  drained %zu frame(s) at shutdown\n", drained);
  std::printf("properties:\n");
  for (const auto& kv : svc.properties()) {
    std::printf("  %-36s %s\n", kv.first.c_str(), kv.second.c_str());
  }

  svc.publish_metrics();
  // Fold the service's forensics (ingest ledger + per-session decode
  // taxonomy) into the --forensics-out sink, if one is installed.
  if (auto* fx = obs::forensics()) svc.merge_forensics_into(*fx);
  const auto err = svc.stop();
  if (!err.ok()) {
    std::fprintf(stderr, "stop: %s\n", serve::to_string(err.code()));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: %s {uplink|coded|downlink|trace|query|sweep|serve} "
        "[options]\n",
        argv[0]);
    return 2;
  }
  const util::Args args(argc, argv);
  const std::string mode = argv[1];

  // Observability: install a registry/tracer for the whole run when the
  // corresponding output file is requested.
  const std::string metrics_out = args.str("--metrics-out");
  const std::string trace_out = args.str("--trace-out");
  const std::string forensics_out = args.str("--forensics-out");
  const std::vector<std::string> slo_specs = args.str_list("--slo");
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ForensicsSink forensics;
  obs::FlightRecorder recorder;
  std::unique_ptr<obs::ScopedMetrics> metrics_guard;
  std::unique_ptr<obs::ScopedTracer> tracer_guard;
  std::unique_ptr<obs::ScopedForensics> forensics_guard;
  std::unique_ptr<obs::ScopedFlightRecorder> recorder_guard;
  std::unique_ptr<obs::ScopedContractDump> dump_guard;
  // SLO rules read metrics, so evaluating them needs a registry even when
  // no --metrics-out artifact was asked for.
  if (!metrics_out.empty() || !slo_specs.empty()) {
    metrics_guard = std::make_unique<obs::ScopedMetrics>(registry);
  }
  if (!trace_out.empty()) {
    tracer_guard = std::make_unique<obs::ScopedTracer>(tracer);
  }
  if (!forensics_out.empty()) {
    forensics_guard = std::make_unique<obs::ScopedForensics>(forensics);
    recorder_guard = std::make_unique<obs::ScopedFlightRecorder>(&recorder);
    dump_guard = std::make_unique<obs::ScopedContractDump>(
        forensics_out + ".crash.jsonl");
  }
  obs::HealthMonitor health;
  for (const auto& spec : slo_specs) {
    if (!health.add_rule(spec)) {
      std::fprintf(stderr, "malformed --slo rule '%s'\n", spec.c_str());
      return 2;
    }
  }

  int rc = 2;
  if (mode == "uplink") rc = run_uplink(args);
  else if (mode == "coded") rc = run_coded(args);
  else if (mode == "downlink") rc = run_downlink(args);
  else if (mode == "trace") rc = run_trace(args);
  else if (mode == "query") rc = run_query(args);
  else if (mode == "sweep") rc = run_sweep(args);
  else if (mode == "serve") rc = run_serve(args);
  else std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());

  if (!metrics_out.empty()) {
    obs::RunReport report;
    report.set_meta("tool", "wb_experiment_cli");
    report.set_meta("mode", mode);
    report.set_meta("exit_code", static_cast<double>(rc));
    report.attach_metrics(registry);
    if (!report.write_json(metrics_out)) {
      std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
      return 2;
    }
    std::printf("metrics report: %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!tracer.write_json(trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 2;
    }
    std::printf("trace (%zu events): %s\n", tracer.num_events(),
                trace_out.c_str());
  }
  // Evaluate SLOs before writing forensics so breach events appear in
  // the JSONL artifact.
  if (health.num_rules() > 0) {
    const auto statuses = health.evaluate(
        registry, TimeUs{0}, recorder_guard != nullptr ? &recorder : nullptr);
    for (const auto& st : statuses) {
      std::printf("slo %-48s %s value=%.6g%s\n", st.name.c_str(),
                  st.breached ? "BREACH" : "ok", st.value,
                  st.has_value ? "" : " (no such instrument)");
    }
    if (health.breached_count() > 0 && rc == 0) rc = 4;
  }
  if (!forensics_out.empty()) {
    if (!forensics.write_jsonl(forensics_out, &recorder)) {
      std::fprintf(stderr, "failed to write %s\n", forensics_out.c_str());
      return 2;
    }
    const std::size_t sidecars = forensics.write_exemplars(forensics_out);
    std::printf("forensics (%llu drops, %zu exemplar files): %s\n",
                static_cast<unsigned long long>(forensics.total_drops()),
                sidecars, forensics_out.c_str());
  }
  return rc;
}
