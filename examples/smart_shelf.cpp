// A smart shelf with several battery-free tags.
//
// Six RF-powered price/stock tags sit on a shelf near a Wi-Fi reader. The
// reader first runs an EPC Gen-2-style inventory over the backscatter
// uplink to learn which tags are present (paper §2), then queries each
// identified tag individually for its stock count.
//
// Build & run:   ./build/examples/smart_shelf
#include <cstdio>

#include "core/inventory.h"
#include "core/system.h"

int main() {
  using namespace wb;

  // --- The shelf ---
  std::vector<core::InventoryTag> tags;
  const std::uint16_t addresses[] = {0x2001, 0x2002, 0x2003,
                                     0x2004, 0x2005, 0x2006};
  const int stock[] = {12, 3, 47, 0, 8, 21};
  for (std::size_t i = 0; i < 6; ++i) {
    core::InventoryTag t;
    t.address = addresses[i];
    t.placement.pos = {0.08 + 0.05 * static_cast<double>(i),
                       (i % 2) ? 0.03 : -0.03};
    tags.push_back(t);
  }

  // --- Phase 1: inventory ---
  core::InventoryConfig inv_cfg;
  inv_cfg.seed = 99;
  inv_cfg.initial_q = 2;
  std::printf("phase 1: inventorying the shelf...\n");
  const auto inventory = core::run_inventory(tags, inv_cfg);
  for (std::size_t r = 0; r < inventory.rounds.size(); ++r) {
    const auto& log = inventory.rounds[r];
    std::printf(
        "  round %zu: Q=%zu (%zu slots) -> %zu identified, %zu collisions,"
        " %zu empty\n",
        r + 1, log.q, log.slots, log.identified, log.collisions,
        log.empties);
  }
  std::printf("  found %zu/%zu tags in %.2f s of air time%s\n",
              inventory.identified.size(), tags.size(),
              static_cast<double>(inventory.elapsed_us.ticks()) / 1e6,
              inventory.complete ? "" : " (INCOMPLETE)");

  // --- Phase 2: query each identified tag for its stock count ---
  std::printf("\nphase 2: reading stock counts...\n");
  std::size_t ok = 0;
  for (const auto addr : inventory.identified) {
    core::SystemConfig cfg;
    cfg.tag_reader_distance_m = Meters{0.15};
    cfg.helper_pps = 2'000.0;
    cfg.seed = 1000 + addr;
    core::WiFiBackscatterSystem system(cfg);

    core::Query q;
    q.tag_address = addr;
    q.command = core::kCmdReadSensor;

    // The addressed tag answers with its address + stock count.
    int count = 0;
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (tags[i].address == addr) count = stock[i];
    }
    BitVec reply = unpack_uint(addr, 16);
    const auto value = unpack_uint(static_cast<std::uint64_t>(count), 16);
    reply.insert(reply.end(), value.begin(), value.end());

    const auto out = system.query(q, reply);
    if (out.success()) {
      const auto got =
          pack_uint({out.uplink.data.data() + 16, 16});
      std::printf("  tag 0x%04x: %2llu units in stock\n", addr,
                  static_cast<unsigned long long>(got));
      ++ok;
    } else {
      std::printf("  tag 0x%04x: query failed\n", addr);
    }
  }
  std::printf("\n%zu/%zu tags read end-to-end\n", ok,
              inventory.identified.size());
  return (inventory.complete && ok == inventory.identified.size()) ? 0 : 1;
}
