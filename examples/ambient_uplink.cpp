// Uplink with zero injected traffic: decoding a tag from ambient packets
// and from beacons alone (paper §7.4, §7.5).
//
// No cooperating traffic source exists in this scenario — the reader is a
// phone in monitor mode, and the only Wi-Fi energy comes from an office
// AP going about its business (bursty ambient traffic), or, in the
// quietest case, nothing but the AP's periodic beacons decoded via RSSI.
//
// Build & run:   ./build/examples/ambient_uplink
#include <cstdio>

#include "core/uplink_sim.h"
#include "reader/streaming_decoder.h"
#include "reader/uplink_decoder.h"
#include "tag/modulator.h"
#include "util/codes.h"
#include "wifi/traffic.h"

namespace {

using namespace wb;

/// Decode one tag frame carried by an arbitrary ambient timeline; returns
/// bit errors (or payload size when sync fails).
std::size_t run_ambient(const wifi::PacketTimeline& timeline,
                        reader::MeasurementSource source, TimeUs bit_us,
                        const BitVec& payload, std::uint64_t seed) {
  core::UplinkSimConfig cfg;
  cfg.channel.tag_pos = {0.05, 0.0};
  cfg.channel.helper_pos = {3.05, 0.0};
  cfg.seed = seed;

  BitVec frame = barker13();
  frame.insert(frame.end(), payload.begin(), payload.end());
  const TimeUs frame_start{600'000};
  tag::Modulator mod(frame, bit_us, frame_start);

  core::UplinkSim sim(cfg);
  const auto trace = sim.run(timeline, mod);

  reader::UplinkDecoderConfig dec;
  dec.source = source;
  dec.payload_bits = payload.size();
  dec.bit_duration_us = bit_us;
  dec.num_good_streams =
      source == reader::MeasurementSource::kRssi ? 1 : 10;
  dec.search_from = frame_start - 2 * bit_us;
  dec.search_to = frame_start + 2 * bit_us;
  reader::UplinkDecoder decoder(dec);
  const auto result = decoder.decode(trace);
  if (!result.found) return payload.size();
  return hamming_distance(payload, result.payload);
}

}  // namespace

int main() {
  using namespace wb;
  const BitVec payload = random_bits(40, 77);

  std::printf("ambient-only uplink (tag at 5 cm, no injected traffic)\n\n");

  // --- Case 1: bursty ambient office traffic, CSI decoding ---
  {
    sim::RngStream rng(11);
    auto traffic_rng = rng.fork("ambient");
    wifi::BurstyParams bursty;  // ~1000 pkt/s long-run average
    bursty.burst_pps = 3000.0;
    bursty.mean_burst_ms = 60.0;
    bursty.mean_idle_ms = 120.0;
    const TimeUs bit_us{12'000};  // ~83 bps, conservative for bursts
    const TimeUs until = TimeUs{600'000} + 53 * bit_us + TimeUs{100'000};
    const auto tl =
        wifi::make_bursty_timeline(bursty, until, wifi::TrafficParams{},
                                   traffic_rng);
    const auto errors =
        run_ambient(tl, reader::MeasurementSource::kCsi, bit_us, payload, 21);
    std::printf("bursty ambient traffic (%5zu pkts): %zu/%zu bit errors %s\n",
                tl.size(), errors, payload.size(),
                errors == 0 ? "- clean decode" : "");
  }

  // --- Case 2: Poisson ambient traffic at a quiet hour, CSI ---
  {
    sim::RngStream rng(12);
    auto traffic_rng = rng.fork("quiet");
    const TimeUs bit_us{40'000};  // 25 bps: quiet network, slow and sure
    const TimeUs until = TimeUs{600'000} + 53 * bit_us + TimeUs{100'000};
    const auto tl = wifi::make_poisson_timeline(
        300.0, until, wifi::TrafficParams{}, traffic_rng);
    const auto errors =
        run_ambient(tl, reader::MeasurementSource::kCsi, bit_us, payload, 22);
    std::printf("quiet Poisson traffic  (%5zu pkts): %zu/%zu bit errors %s\n",
                tl.size(), errors, payload.size(),
                errors == 0 ? "- clean decode" : "");
  }

  // --- Case 3: beacons only, RSSI decoding ---
  {
    sim::RngStream rng(13);
    auto traffic_rng = rng.fork("beacons");
    const double beacons_per_sec = 50.0;
    const TimeUs bit_us{50'000};  // 20 bps from 2.5 beacons per bit
    const TimeUs until = TimeUs{600'000} + 53 * bit_us + TimeUs{100'000};
    const auto tl =
        wifi::make_beacon_timeline(beacons_per_sec, until, 1, traffic_rng);
    const auto errors = run_ambient(tl, reader::MeasurementSource::kRssi,
                                    bit_us, payload, 23);
    std::printf("beacons only at %2.0f/s   (%5zu pkts): %zu/%zu bit errors %s\n",
                beacons_per_sec, tl.size(), errors, payload.size(),
                errors == 0 ? "- clean decode" : "");
  }

  // --- Case 4: record-by-record streaming decode, drained by flush() ---
  // The reader consumes the capture live instead of decoding a recorded
  // trace, and the ambient traffic dies right after the frame's last bit —
  // so the final frame is only recovered by flushing when the capture ends.
  {
    sim::RngStream rng(14);
    auto traffic_rng = rng.fork("live");
    const TimeUs bit_us{12'000};
    const TimeUs frame_start{600'000};
    const TimeUs frame_end = frame_start + 53 * bit_us;
    const auto tl = wifi::make_cbr_timeline(3'000, frame_end + TimeUs{5'000},
                                            wifi::TrafficParams{},
                                            traffic_rng);

    core::UplinkSimConfig cfg;
    cfg.channel.tag_pos = {0.05, 0.0};
    cfg.channel.helper_pos = {3.05, 0.0};
    cfg.seed = 24;
    BitVec frame = barker13();
    frame.insert(frame.end(), payload.begin(), payload.end());
    tag::Modulator mod(frame, bit_us, frame_start);
    core::UplinkSim sim(cfg);
    const auto trace = sim.run(tl, mod);

    reader::StreamingDecoderConfig scfg;
    scfg.decoder.payload_bits = payload.size();
    scfg.decoder.bit_duration_us = bit_us;
    reader::StreamingUplinkDecoder dec(scfg);
    std::vector<reader::UplinkDecodeResult> frames;
    for (const auto& rec : trace) {
      for (auto& f : dec.push(rec)) frames.push_back(std::move(f));
    }
    const std::size_t live = frames.size();
    for (auto& f : dec.flush()) frames.push_back(std::move(f));
    const std::size_t errors =
        frames.empty() ? payload.size()
                       : hamming_distance(payload, frames.front().payload);
    std::printf(
        "live capture          (%5zu pkts): %zu frame(s) while streaming, "
        "%zu drained by flush, %zu/%zu bit errors\n",
        trace.size(), live, frames.size() - live, errors, payload.size());
  }

  std::printf(
      "\nthe uplink needs no cooperating traffic source: whatever packets\n"
      "the network already carries (even just beacons) are its carrier.\n");
  return 0;
}
