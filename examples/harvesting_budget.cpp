// Energy budget of the battery-free tag (paper §6).
//
// Walks the tag's power ledger: the 0.65 uW transmit circuit, the 9.0 uW
// receive chain, and the duty-cycled MCU — against what the harvester can
// pull from Wi-Fi at various distances and from a TV tower kilometers
// away. Reproduces the paper's two headline claims:
//   * both circuits run continuously about one foot from the Wi-Fi reader;
//   * with dual-band Wi-Fi + TV harvesting, the full system sustains a
//     ~50% duty cycle 10 km from a TV broadcast tower.
//
// Build & run:   ./build/examples/harvesting_budget
#include <cstdio>

#include <initializer_list>

#include "tag/harvester.h"

int main() {
  using namespace wb;
  using namespace wb::tag;

  const double tx_circuit_uw = 0.65;  // backscatter switch + timer (§6)
  const double rx_circuit_uw = 9.0;   // energy detector + wake logic (§6)
  const double both_uw = tx_circuit_uw + rx_circuit_uw;

  Harvester wifi_harvester{HarvesterParams{}};

  std::printf("Wi-Fi harvesting (reader transmitting at +16 dBm)\n");
  std::printf("%-14s %-14s %-14s %-12s\n", "distance", "incident",
              "harvested", "duty cycle");
  for (double d : {0.15, 0.30, 0.61, 1.0, 2.0}) {  // 0.61 m ~ 2 feet
    const Dbm inc = incident_power_dbm(Dbm{16.0}, Meters{d});
    const double hv = wifi_harvester.harvested_uw(inc);
    const double duty = wifi_harvester.sustainable_duty_cycle(hv, both_uw);
    std::printf("%-14.2f %-14.1f %-14.2f %-12.2f%s\n", d, inc.value(), hv,
                duty,
                duty >= 1.0 ? "  <- continuous" : "");
  }

  std::printf("\nTV-band harvesting (1 MW EIRP tower ~ 90 dBm)\n");
  std::printf("%-14s %-14s %-14s %-12s\n", "distance(km)", "incident",
              "harvested", "duty cycle");
  HarvesterParams tv_params;
  tv_params.antenna_gain_db = Db{8.0};  // larger dedicated TV-band antenna
  Harvester tv_harvester{tv_params};
  // The "full system" adds the MCU's sleep draw and periodic activity.
  const double full_system_uw = both_uw + 1.5;
  for (double km : {1.0, 5.0, 10.0, 20.0}) {
    const Dbm inc = tv_incident_power_dbm(Dbm{90.0}, km);
    const double hv = tv_harvester.harvested_uw(inc);
    const double duty =
        tv_harvester.sustainable_duty_cycle(hv, full_system_uw);
    std::printf("%-14.1f %-14.1f %-14.2f %-12.2f\n", km, inc.value(), hv,
                duty);
  }

  std::printf("\nburst behaviour from the 100 uF storage capacitor:\n");
  const double harvested = 2.0;  // uW, a mid-range operating point
  std::printf("  MCU active burst (600 uW load): runs %.2f s, recharges in"
              " %.0f s\n",
              wifi_harvester.burst_seconds(600.0, harvested),
              wifi_harvester.recharge_seconds(harvested, 0.5));
  return 0;
}
