// Live capture service walkthrough: one synthetic tag frame replayed as
// four staggered concurrent streams through wb::serve::CaptureService,
// once per backpressure policy, with a mid-stream detach thrown in.
//
// A deliberately small ingest ring forces the policies apart: the
// block-producer service drains inline and loses nothing, while the two
// shedding policies trade completeness for bounded producer latency and
// account for every victim in the forensics ledger
// (attempts == decodes + drops at the serve.ingest stage).
//
// Build & run:   ./build/examples/wb_capture_serve
#include <cstdio>
#include <cstdlib>

#include "core/uplink_sim.h"
#include "serve/capture_service.h"
#include "tag/modulator.h"
#include "util/codes.h"
#include "wifi/replay.h"
#include "wifi/traffic.h"

namespace {

using namespace wb;

constexpr std::size_t kSessions = 4;
constexpr std::size_t kPayloadBits = 24;

/// One decodable frame (preamble + payload at 0.7 s) over helper CBR
/// traffic — the same air every session will see, time-shifted.
wifi::CaptureTrace make_capture() {
  core::UplinkSimConfig cfg;
  cfg.channel.tag_pos = {0.08, 0.0};
  cfg.channel.helper_pos = {3.08, 0.0};
  cfg.seed = 21;
  sim::RngStream rng(cfg.seed);
  auto traffic_rng = rng.fork("t");
  const auto tl = wifi::make_cbr_timeline(3'000, TimeUs{1'200'000},
                                          wifi::TrafficParams{}, traffic_rng);
  BitVec frame = barker13();
  const BitVec payload = random_bits(kPayloadBits, 2);
  frame.insert(frame.end(), payload.begin(), payload.end());
  tag::Modulator mod(frame, TimeUs{5'000}, TimeUs{700'000});
  core::UplinkSim sim(cfg);
  return sim.run(tl, mod);
}

struct PolicyOutcome {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t frames = 0;
  std::uint64_t ingest_drops = 0;
  bool ledger_ok = false;
};

/// Run the whole staggered workload under one policy. Session kSessions-1
/// is detached halfway through to exercise the lifecycle: later records
/// for it bounce with kNotFound, and its forensics retire into the
/// service-held archive that merge_forensics_into() still reports.
PolicyOutcome run_policy(const wifi::CaptureTrace& capture,
                         serve::BackpressurePolicy policy) {
  serve::ServeConfig cfg;
  cfg.ring_capacity = 16;  // small on purpose: make the policy matter
  cfg.policy = policy;
  cfg.max_sessions = kSessions;
  cfg.dispatch_threads = 2;
  cfg.decoder.decoder.payload_bits = kPayloadBits;
  cfg.decoder.decoder.bit_duration_us = TimeUs{5'000};
  serve::CaptureService svc(cfg);
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    const auto err = svc.attach(id);
    if (!err.ok()) {
      std::fprintf(stderr, "attach %u: %s\n", id,
                   serve::to_string(err.code()));
      std::exit(1);
    }
  }

  wifi::MultiSessionFeed feed(
      wifi::fan_out(capture, kSessions, TimeUs{1'733}));
  const std::size_t total = feed.remaining();
  const std::size_t detach_at = total / 2;
  std::size_t fed = 0;
  std::uint32_t session = 0;
  wifi::CaptureRecord rec{};
  while (feed.next(session, rec)) {
    if (fed++ == detach_at) {
      const auto err = svc.detach(kSessions - 1);
      if (!err.ok()) {
        std::fprintf(stderr, "detach: %s\n", serve::to_string(err.code()));
        std::exit(1);
      }
    }
    const auto err = svc.submit(session, rec);
    if (!err.ok() && err.code() != serve::ErrorCode::kNotFound) {
      std::fprintf(stderr, "submit: %s\n", serve::to_string(err.code()));
      std::exit(1);
    }
  }
  svc.drain_all();

  PolicyOutcome out;
  const auto& c = svc.counters();
  out.submitted = c.submitted;
  out.accepted = c.accepted;
  out.shed = c.dropped_backpressure;
  out.frames = svc.frames_total();
  obs::ForensicsSink merged;
  svc.merge_forensics_into(merged);
  out.ingest_drops = merged.total_drops(obs::DropStage::kIngest);
  out.ledger_ok =
      merged.attempts(obs::DropStage::kIngest) ==
      merged.decodes(obs::DropStage::kIngest) +
          merged.total_drops(obs::DropStage::kIngest);
  svc.stop();
  return out;
}

}  // namespace

int main() {
  const auto capture = make_capture();
  std::printf("capture: %zu records, %zu sessions staggered 1.733 ms, "
              "ring 16, detach session %zu mid-stream\n\n",
              capture.size(), kSessions, kSessions - 1);
  std::printf("%-14s %10s %10s %8s %8s %8s  %s\n", "policy", "submitted",
              "accepted", "shed", "frames", "drops", "ledger");

  const serve::BackpressurePolicy policies[] = {
      serve::BackpressurePolicy::kBlockProducer,
      serve::BackpressurePolicy::kDropOldest,
      serve::BackpressurePolicy::kDropNewest,
  };
  bool all_ok = true;
  std::uint64_t block_frames = 0;
  for (const auto policy : policies) {
    const PolicyOutcome out = run_policy(capture, policy);
    if (policy == serve::BackpressurePolicy::kBlockProducer) {
      block_frames = out.frames;
    }
    all_ok = all_ok && out.ledger_ok;
    std::printf("%-14s %10llu %10llu %8llu %8llu %8llu  %s\n",
                serve::to_string(policy),
                static_cast<unsigned long long>(out.submitted),
                static_cast<unsigned long long>(out.accepted),
                static_cast<unsigned long long>(out.shed),
                static_cast<unsigned long long>(out.frames),
                static_cast<unsigned long long>(out.ingest_drops),
                out.ledger_ok ? "reconciles" : "BROKEN");
  }

  std::printf("\nblock_producer decoded %llu frame(s) — one per surviving "
              "session — and the shedding policies never exceed it.\n",
              static_cast<unsigned long long>(block_frames));
  if (!all_ok) {
    std::fprintf(stderr, "forensics ledger failed to reconcile\n");
    return 1;
  }
  return 0;
}
