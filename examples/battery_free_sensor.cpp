// A battery-free temperature sensor reporting through the day.
//
// The scenario the paper's introduction motivates: a sensor tag embedded
// in an everyday object, powered only by harvested RF, is polled by a
// nearby Wi-Fi device once a minute. The reader adapts the uplink bit
// rate to the ambient network load (§5's N/M rule over the diurnal office
// profile) and retries queries that the tag misses.
//
// Build & run:   ./build/examples/battery_free_sensor
#include <cstdio>

#include "core/system.h"
#include "tag/power_manager.h"
#include "wifi/traffic.h"

namespace {

/// A fake temperature that drifts through the day (centi-degrees C).
std::uint16_t temperature_at(double hour) {
  const double t = 20.0 + 3.5 * std::sin((hour - 14.0) / 24.0 * 6.28318);
  return static_cast<std::uint16_t>(t * 100.0);
}

}  // namespace

int main() {
  using namespace wb;

  std::printf("battery-free sensor: polling every 30 sim-minutes, 9:00-18:00\n");
  std::printf("%-7s %-12s %-12s %-10s %-10s %-10s %-8s\n", "time",
              "load(pkt/s)", "rate(bps)", "downlink", "uplink", "reading",
              "charge");

  std::size_t delivered = 0, polls = 0;
  double tag_energy_uj = 0.0;

  // The tag's charge ledger: harvesting from the phone that polls it
  // (~60 cm away) plus ambient Wi-Fi, against its idle listening load.
  tag::PowerManagerParams pm_params;
  pm_params.incident_dbm = Dbm{-20.0};
  tag::PowerManager pm(pm_params);

  for (double hour = 9.0; hour < 18.0; hour += 0.5) {
    core::SystemConfig cfg;
    cfg.tag_reader_distance_m = Meters{0.25};
    cfg.helper_distance_m = Meters{4.0};
    cfg.helper_pps = wifi::office_load_pps(hour);
    cfg.packets_per_bit = 8.0;
    cfg.max_query_attempts = 6;  // quiet hours need more retries (§4.1)
    cfg.seed = 555 + static_cast<std::uint64_t>(hour * 100);
    core::WiFiBackscatterSystem system(cfg);

    core::Query q;
    q.tag_address = 0x0007;
    q.command = core::kCmdReadSensor;
    BitVec data = unpack_uint(0x0007, 16);
    const auto reading = unpack_uint(temperature_at(hour), 16);
    data.insert(data.end(), reading.begin(), reading.end());

    // 30 sim-minutes of idle listening between polls.
    pm.idle(30 * 60 * kMicrosPerSec);
    // The poll itself: decode the query (one ~6 ms frame per attempt)
    // plus the backscatter response (~0.5 s at 100 bps) — only if the
    // capacitor can afford it.
    const bool powered = pm.try_decode(TimeUs{6'000}) && pm.try_respond(TimeUs{530'000});
    core::QueryOutcome out;
    ++polls;
    if (powered) {
      out = system.query(q, data);
      if (out.success()) ++delivered;
      tag_energy_uj += out.downlink.tag_energy_uj;
    }

    char when[16];
    std::snprintf(when, sizeof when, "%02d:%02d", static_cast<int>(hour),
                  static_cast<int>((hour - static_cast<int>(hour)) * 60));
    char reading_s[32] = "-";
    if (out.uplink.delivered) {
      const auto v = pack_uint({out.uplink.data.data() + 16, 16});
      std::snprintf(reading_s, sizeof reading_s, "%.2f C",
                    static_cast<double>(v) / 100.0);
    }
    std::printf("%-7s %-12.0f %-12.0f %-10s %-10s %-10s %3.0f%%\n", when,
                cfg.helper_pps, out.uplink.bit_rate_bps,
                !powered ? "dark" : out.downlink.delivered ? "ok" : "miss",
                !powered ? "dark" : out.uplink.delivered ? "ok" : "miss",
                reading_s, 100.0 * pm.stored_fraction());
  }

  std::printf("\n%zu/%zu polls delivered end-to-end\n", delivered, polls);
  std::printf("tag receive-path energy over the day: %.1f uJ\n",
              tag_energy_uj);
  std::printf("harvested %.0f uJ, spent %.0f uJ, capacitor at %.0f%%\n",
              pm.harvested_uj(), pm.spent_uj(),
              100.0 * pm.stored_fraction());
  std::printf("note how the commanded bit rate follows the network load.\n");
  return delivered * 3 >= polls * 2 ? 0 : 1;  // expect >= 2/3 delivered
}
