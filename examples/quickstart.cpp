// Quickstart: one full Wi-Fi Backscatter query-response round trip.
//
// A battery-free tag sits 15 cm from a phone (the Wi-Fi reader) while the
// home AP (the Wi-Fi helper) serves normal traffic three meters away. The
// reader:
//   1. picks an uplink bit rate from the helper's packet rate (N/M, §5),
//   2. sends the tag a query over the downlink — short Wi-Fi packets and
//      silences inside a CTS_to_SELF reservation (§4),
//   3. decodes the tag's backscattered response from its per-packet CSI
//      (§3).
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/system.h"

int main() {
  using namespace wb;

  core::SystemConfig cfg;
  cfg.tag_reader_distance_m = Meters{0.15};
  cfg.helper_distance_m = Meters{3.0};
  cfg.helper_pps = 1200.0;  // a moderately busy AP
  cfg.seed = 2026;

  core::WiFiBackscatterSystem system(cfg);

  std::printf("Wi-Fi Backscatter quickstart\n");
  std::printf("  tag-reader distance : %.0f cm\n",
              cfg.tag_reader_distance_m.value() * 100);
  std::printf("  helper packet rate  : %.0f pkt/s\n", cfg.helper_pps);
  std::printf("  commanded bit rate  : %.0f bps (N/M rate control)\n\n",
              system.commanded_bit_rate());

  // The query asks tag 0x0042 for its sensor reading.
  core::Query query;
  query.tag_address = 0x0042;
  query.command = core::kCmdReadSensor;

  // The tag's answer: a 16-bit sensor reading plus its short address.
  const std::uint16_t temperature_centi_c = 2243;  // 22.43 C
  BitVec tag_data = unpack_uint(0x0042, 16);
  const BitVec reading = unpack_uint(temperature_centi_c, 16);
  tag_data.insert(tag_data.end(), reading.begin(), reading.end());

  const auto outcome = system.query(query, tag_data);

  std::printf("downlink: %s after %zu attempt(s), tag spent %.2f uJ\n",
              outcome.downlink.delivered ? "delivered" : "FAILED",
              outcome.downlink.attempts, outcome.downlink.tag_energy_uj);
  if (outcome.downlink.decoded_query) {
    std::printf("  tag decoded query for address 0x%04x (command 0x%02x)\n",
                outcome.downlink.decoded_query->tag_address,
                outcome.downlink.decoded_query->command);
  }
  std::printf("uplink  : %s at %.0f bps (%zu bit errors in %zu)\n",
              outcome.uplink.delivered ? "delivered (CRC ok)" : "FAILED",
              outcome.uplink.bit_rate_bps, outcome.uplink.bit_errors,
              outcome.uplink.bits_total);
  if (outcome.uplink.delivered) {
    const std::uint64_t addr =
        pack_uint({outcome.uplink.data.data(), 16});
    const std::uint64_t val =
        pack_uint({outcome.uplink.data.data() + 16, 16});
    std::printf("  tag 0x%04llx reports %.2f C\n",
                static_cast<unsigned long long>(addr),
                static_cast<double>(val) / 100.0);
  }
  std::printf("\nround trip %s\n", outcome.success() ? "OK" : "FAILED");
  return outcome.success() ? 0 : 1;
}
