#!/usr/bin/env python3
"""Validate a BENCH_serve.json produced by `bench_serve_throughput --json-out`.

Checks the schema (meta + the sessions_1/sessions_8 rows) and enforces the
live-capture-service contract: the steady-state ingest+dispatch path must
not allocate (ring, pending queues, frame rings, and decoder workspaces
are preallocated; the forensics exemplar caps fill during warmup), every
pass must decode one frame per session (drain loses no decodable frame),
and the service must sustain a positive packet rate with measured submit
latency percentiles. Used by the ctest smoke test and scripts/check.sh's
Release perf gate.

Usage:
  validate_bench_serve.py FILE                      # validate existing file
  validate_bench_serve.py --bench BIN --out FILE    # run the bench first
"""

import argparse
import json
import subprocess
import sys

REQUIRED_ROWS = ("sessions_1", "sessions_8")
ROW_KEYS = (
    "sessions",
    "records_per_pass",
    "pkts_per_sec",
    "ns_per_record",
    "allocs_per_record",
    "frames_per_pass",
    "latency_p50_ns",
    "latency_p95_ns",
    "latency_p99_ns",
)

MAX_STEADY_STATE_ALLOCS = 0
MIN_CONCURRENT_SESSIONS = 8


def fail(msg):
    print(f"validate_bench_serve: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_file", nargs="?", help="existing report to validate")
    ap.add_argument("--bench", help="bench_serve_throughput binary to run")
    ap.add_argument("--out", help="report path when running --bench")
    ap.add_argument("--quick", action="store_true",
                    help="pass --quick to the bench")
    ap.add_argument("--max-allocs", type=float,
                    default=MAX_STEADY_STATE_ALLOCS)
    args = ap.parse_args()

    if args.bench:
        if not args.out:
            fail("--bench requires --out")
        cmd = [args.bench, "--json-out", args.out]
        if args.quick:
            cmd.append("--quick")
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            fail(f"bench exited with {proc.returncode}")
        path = args.out
    elif args.json_file:
        path = args.json_file
    else:
        fail("give a report file or --bench/--out")

    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")

    meta = report.get("meta")
    if not isinstance(meta, dict):
        fail("missing meta object")
    if meta.get("bench") != "serve_throughput":
        fail(f"meta.bench is {meta.get('bench')!r}, want 'serve_throughput'")
    for key in ("iters", "trace_records", "ring_capacity"):
        if not isinstance(meta.get(key), (int, float)) or meta[key] <= 0:
            fail(f"meta.{key} missing or not a positive number")
    if meta.get("policy") != "block_producer":
        fail(f"meta.policy is {meta.get('policy')!r}: the frame gate is "
             "exact only for the lossless block_producer policy")
    if not isinstance(meta.get("quick"), bool):
        fail("meta.quick missing or not a bool")

    rows = {r.get("row"): r for r in report.get("rows", [])}
    for name in REQUIRED_ROWS:
        row = rows.get(name)
        if row is None:
            fail(f"missing row {name!r}")
        for key in ROW_KEYS:
            v = row.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"row {name!r}: {key} missing or negative")
        for key in ("pkts_per_sec", "ns_per_record", "latency_p50_ns",
                    "latency_p95_ns", "latency_p99_ns"):
            if row[key] <= 0:
                fail(f"row {name!r}: {key} must be positive")
        if not (row["latency_p50_ns"] <= row["latency_p95_ns"]
                <= row["latency_p99_ns"]):
            fail(f"row {name!r}: latency percentiles are not monotone")

        allocs = row["allocs_per_record"]
        if allocs > args.max_allocs:
            fail(f"row {name!r}: {allocs} allocations/record exceeds the "
                 f"budget of {args.max_allocs} — the serve steady state "
                 f"must not allocate on the ingest/dispatch path")
        # Drain loses no decodable frame: one frame per session per pass.
        if row["frames_per_pass"] != row["sessions"]:
            fail(f"row {name!r}: {row['frames_per_pass']} frames/pass, "
                 f"want {row['sessions']} (one per session)")

    if rows["sessions_8"]["sessions"] < MIN_CONCURRENT_SESSIONS:
        fail(f"sessions_8 row measured {rows['sessions_8']['sessions']} "
             f"sessions, want >= {MIN_CONCURRENT_SESSIONS}")

    r8 = rows["sessions_8"]
    print(f"validate_bench_serve: OK ({path}: 8 sessions at "
          f"{r8['pkts_per_sec']:.0f} pkts/s, submit p99 "
          f"{r8['latency_p99_ns']:.0f} ns, "
          f"{r8['allocs_per_record']:.2f} allocs/record)")


if __name__ == "__main__":
    main()
