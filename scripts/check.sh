#!/usr/bin/env bash
# Pre-PR correctness gate. Named steps, in default order:
#   analyze   tools/wb_analyze static analysis (determinism, headers, raii,
#             realtime call-graph walk, legacy lint) + JSON + call-graph
#             artifacts + committed-baseline diff + call-graph unit tests
#   build     ASan+UBSan build, -Werror        (build dir: build-check/)
#   test      full ctest under the sanitizers
#   tsan      TSan build of the concurrency surface (build-tsan/) running
#             the runner + obs + serve test binaries
#   clang     clang build with -Wthread-safety -Werror (build-clang/):
#             statically proves the WB_GUARDED_BY/WB_REQUIRES capability
#             annotations and that the units layer is warnings-clean on
#             the second toolchain (skipped with a notice if clang++ is
#             not installed — gcc expands the annotations to nothing)
#   obs       observability smoke: one CLI query exchange, --metrics-out /
#             --trace-out validated as JSON covering all six modules;
#             --forensics-out JSONL diffed against the DropReason enum
#             (exact two-way coverage), a sweep byte-compared at
#             --threads 1 vs 8, and the serve mode's stdout + forensics
#             byte-compared at --threads 1 vs 8
#   tidy      clang-tidy over src/  (skipped with a notice if not installed)
#   perf      Release perf gate: bench_decoder_micro --json-out must show a
#             zero-allocation workspace decode (validate_bench_decoder.py),
#             bench_obs_overhead must hold the forensics budget — <=5%
#             decode overhead, zero steady-state allocations
#             (validate_bench_obs.py) — and bench_serve_throughput must
#             sustain 8 concurrent sessions with zero steady-state
#             ingest/dispatch allocations and a lossless drain
#             (validate_bench_serve.py)
#
# Usage: scripts/check.sh [-j N] [--fast] [--only STEP ...]
#   --fast        analyze + plain build (build-fast/, no sanitizers) + unit
#                 tests — the doc-change loop; the sanitizer matrix, tidy,
#                 and the perf gate are skipped
#   --only STEP   run just the named step(s), in the order given
#                 (repeatable; step names as listed above)
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
ONLY=()
while [ $# -gt 0 ]; do
  case "$1" in
    -j) JOBS="$2"; shift 2 ;;
    -j*) JOBS="${1#-j}"; shift ;;
    --fast) FAST=1; shift ;;
    --only)
      [ $# -ge 2 ] || { echo "--only needs a step name" >&2; exit 2; }
      ONLY+=("$2"); shift 2 ;;
    -h|--help)
      sed -n '2,31p' "$0"; exit 0 ;;
    *) echo "usage: scripts/check.sh [-j N] [--fast] [--only STEP ...]" >&2
       exit 2 ;;
  esac
done

BUILD_DIR=build-check
TSAN_DIR=build-tsan
CLANG_DIR=build-clang
PERF_DIR=build-perf
FAST_DIR=build-fast

step_analyze() {
  mkdir -p "$BUILD_DIR"
  python3 tools/wb_analyze \
    --json-out "$BUILD_DIR/wb_analyze.json" \
    --callgraph-out "$BUILD_DIR/wb_callgraph.json" \
    --baseline tools/wb_analyze/baseline.json
  python3 tests/analyze/test_callgraph.py
}

step_build() {
  cmake -B "$BUILD_DIR" -S . \
    -DWB_SANITIZE=address -DWB_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$BUILD_DIR" -j "$JOBS"
}

step_test() {
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
}

step_build_fast() {
  cmake -B "$FAST_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$FAST_DIR" -j "$JOBS"
}

step_test_fast() {
  ctest --test-dir "$FAST_DIR" --output-on-failure -j "$JOBS"
}

step_tsan() {
  cmake -B "$TSAN_DIR" -S . \
    -DWB_SANITIZE=thread -DWB_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$TSAN_DIR" -j "$JOBS" \
    --target test_runner_thread_pool test_runner_sweep test_obs_metrics \
             test_serve_service
  "$TSAN_DIR/tests/test_runner_thread_pool"
  "$TSAN_DIR/tests/test_runner_sweep"
  "$TSAN_DIR/tests/test_obs_metrics"
  "$TSAN_DIR/tests/test_serve_service"
}

step_clang() {
  if ! command -v clang++ > /dev/null 2>&1; then
    echo "    clang++ not installed; skipping thread-safety analysis" \
         "(annotations: src/util/thread_annotations.h)"
    return 0
  fi
  # -Wthread-safety is added by CMakeLists.txt whenever the compiler is
  # clang; WB_WERROR promotes it (and any units-layer warning) to an error.
  cmake -B "$CLANG_DIR" -S . \
    -DCMAKE_CXX_COMPILER=clang++ -DWB_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$CLANG_DIR" -j "$JOBS"
}

step_obs() {
  local tmp
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '$tmp'" EXIT
  "$BUILD_DIR/examples/wb_experiment_cli" query \
    --queries 1 --distance 0.2 \
    --metrics-out "$tmp/smoke.metrics.json" \
    --trace-out "$tmp/smoke.trace.json" > /dev/null
  python3 - "$tmp" <<'PY'
import json, sys
tmp = sys.argv[1]
metrics = json.load(open(tmp + "/smoke.metrics.json"))
trace = json.load(open(tmp + "/smoke.trace.json"))
counters = metrics["metrics"]["counters"]
modules = sorted({name.split(".")[0] for name in counters})
missing = sorted(set(["core", "phy", "reader", "sim", "tag", "wifi"])
                 - set(modules))
assert not missing, f"metrics missing modules: {missing}"
assert trace["traceEvents"], "trace has no events"
print(f"    metrics: {len(counters)} counters over modules {modules}")
print(f"    trace:   {len(trace['traceEvents'])} events")
PY
  # Decode forensics: a query exchange with the taxonomy and SLO watchdog
  # on. The JSONL's aggregate reason lines (emitted even at zero) must
  # cover the DropReason enum in src/obs/forensics.h exactly — a new
  # enumerator without an export line (or vice versa) fails here.
  "$BUILD_DIR/examples/wb_experiment_cli" query \
    --queries 1 --distance 0.2 \
    --forensics-out "$tmp/smoke.forensics.jsonl" \
    --slo "mac_drops=forensics.wifi_mac.collision_total<=1000000" > /dev/null
  python3 - "$tmp/smoke.forensics.jsonl" src/obs/forensics.h <<'PY'
import json, re, sys
jsonl_path, header_path = sys.argv[1], sys.argv[2]
header = open(header_path).read()

def enum_tokens(name):
    body = re.search(r"enum class %s\s*:[^{]*\{(.*?)\n\};" % name,
                     header, re.S).group(1)
    names = re.findall(r"^\s*k([A-Za-z0-9]+),", body, re.M)
    return {re.sub(r"(?<!^)([A-Z])", r"_\1", n).lower() for n in names}

lines = [json.loads(l) for l in open(jsonl_path) if l.strip()]
by_type = {}
for l in lines:
    by_type.setdefault(l["type"], []).append(l)
exported_reasons = {l["reason"] for l in by_type.get("reason", [])}
enum_reasons = enum_tokens("DropReason")
assert exported_reasons == enum_reasons, (
    f"taxonomy drift: enum-only {sorted(enum_reasons - exported_reasons)}, "
    f"export-only {sorted(exported_reasons - enum_reasons)}")
stages = {l["stage"] for l in by_type.get("stage", [])}
num_stages = len(re.findall(r"^\s*k[A-Za-z0-9]+,", re.search(
    r"enum class DropStage\s*:[^{]*\{(.*?)\n\};", header, re.S).group(1),
    re.M))
assert len(stages) == num_stages, (
    f"{len(stages)} stage lines vs {num_stages} DropStage enumerators")
for l in by_type["stage"]:
    assert l["attempts"] == l["decodes"] + l["drops"], f"ledger broken: {l}"
print(f"    forensics: {len(exported_reasons)} reasons x {len(stages)} "
      f"stages covered, per-stage ledgers reconcile")
PY
  # Thread-count determinism: the same sweep at --threads 1 and 8 must
  # write byte-identical forensics JSONL (per-task sinks, in-order merge).
  for t in 1 8; do
    "$BUILD_DIR/examples/wb_experiment_cli" sweep \
      --distances-cm 5,30 --pkts-per-bit 10 --runs 2 --seed 11 \
      --threads "$t" --json-out "$tmp/sweep.t$t.json" \
      --forensics-out "$tmp/sweep.t$t.jsonl" > /dev/null
  done
  cmp "$tmp/sweep.t1.jsonl" "$tmp/sweep.t8.jsonl"
  echo "    forensics: sweep JSONL byte-identical at --threads 1 vs 8"
  # Live-capture service determinism: the same multi-session replay with
  # inline dispatch and an 8-worker pool must print the same report and
  # export byte-identical merged forensics (per-session private sinks,
  # ascending-id merge).
  for t in 1 8; do
    "$BUILD_DIR/examples/wb_experiment_cli" serve \
      --sessions 3 --ring 64 --packets 3600 --seed 11 --threads "$t" \
      --forensics-out "$tmp/serve.t$t.jsonl" > "$tmp/serve.t$t.out"
  done
  cmp "$tmp/serve.t1.jsonl" "$tmp/serve.t8.jsonl"
  # The report prints the configured thread count and the forensics
  # output path; mask those two tokens.
  for t in 1 8; do
    sed -e "s/threads [0-9]*/threads N/" -e "s/serve\.t[0-9]*/serve.tN/" \
      "$tmp/serve.t$t.out" > "$tmp/serve.t$t.masked"
  done
  cmp "$tmp/serve.t1.masked" "$tmp/serve.t8.masked"
  echo "    serve: report + forensics byte-identical at --threads 1 vs 8"
}

step_tidy() {
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "    clang-tidy not installed; skipping (config: .clang-tidy)"
    return 0
  fi
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "    no $BUILD_DIR/compile_commands.json — run the build step first" >&2
    return 1
  fi
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "src/.*\.cpp$"
  else
    # Single-binary fallback. Capture output and propagate the exit code:
    # .clang-tidy sets WarningsAsErrors '*', so any finding exits non-zero
    # (the old version piped to /dev/null and ignored failures entirely).
    local log="$BUILD_DIR/clang-tidy.log" rc=0
    find src -name '*.cpp' -print0 | sort -z | \
      xargs -0 clang-tidy -p "$BUILD_DIR" --quiet > "$log" 2>&1 || rc=$?
    if [ "$rc" -ne 0 ]; then
      cat "$log"
      echo "    clang-tidy failed (exit $rc); full log: $log" >&2
      return "$rc"
    fi
    echo "    clang-tidy clean ($(find src -name '*.cpp' | wc -l) files)"
  fi
}

step_perf() {
  cmake -B "$PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build "$PERF_DIR" -j "$JOBS" \
    --target bench_decoder_micro bench_obs_overhead bench_serve_throughput
  # Decode hot path: zero steady-state allocations on the workspace rows
  # and the stream-batched conditioning kernels at least 2x the frozen
  # scalar reference (DESIGN.md §15).
  python3 scripts/validate_bench_decoder.py \
    --bench "$PERF_DIR/bench/bench_decoder_micro" \
    --out "$PERF_DIR/BENCH_decoder.json" \
    --min-conditioning-speedup 2.0
  # Forensics-layer budget: recorder+taxonomy-on decode within 5% of off
  # and zero steady-state allocations (the ctest smoke runs the same
  # validator with a relaxed bound; Release is where the 5% is meaningful).
  python3 scripts/validate_bench_obs.py \
    --bench "$PERF_DIR/bench/bench_obs_overhead" \
    --out "$PERF_DIR/BENCH_obs.json"
  # Live-capture service budget: 8 concurrent sessions sustained with
  # zero steady-state ingest/dispatch allocations, measured submit
  # latency percentiles, and one decoded frame per session per pass.
  python3 scripts/validate_bench_serve.py \
    --bench "$PERF_DIR/bench/bench_serve_throughput" \
    --out "$PERF_DIR/BENCH_serve.json"
}

if [ ${#ONLY[@]} -gt 0 ]; then
  STEPS=("${ONLY[@]}")
elif [ "$FAST" -eq 1 ]; then
  STEPS=(analyze build_fast test_fast)
else
  STEPS=(analyze build test tsan clang obs tidy perf)
fi

N=${#STEPS[@]}
i=0
for step in "${STEPS[@]}"; do
  i=$((i + 1))
  case "$step" in
    analyze|build|test|tsan|clang|obs|tidy|perf|build_fast|test_fast) ;;
    *) echo "unknown step: $step (steps: analyze build test tsan clang obs" \
            "tidy perf)" >&2; exit 2 ;;
  esac
  echo "==> [$i/$N] $step"
  "step_$step"
done

echo "==> all checks passed"
