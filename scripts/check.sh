#!/usr/bin/env bash
# Pre-PR correctness gate. Runs, in order:
#   1. tools/wb_lint.py           repo-specific lint rules
#   2. ASan+UBSan build, -Werror  (build dir: build-check/)
#   3. full ctest under the sanitizers
#   4. clang-tidy over src/       (skipped with a notice if not installed)
# Exits non-zero on the first failure. Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: scripts/check.sh [-j N]" >&2; exit 2 ;;
  esac
done

BUILD_DIR=build-check

echo "==> [1/4] wb_lint"
python3 tools/wb_lint.py

echo "==> [2/4] configure + build (WB_SANITIZE=address, WB_WERROR=ON)"
cmake -B "$BUILD_DIR" -S . \
  -DWB_SANITIZE=address -DWB_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "==> [3/4] ctest under ASan+UBSan"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "==> [4/4] clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "src/.*\.cpp$"
  else
    # shellcheck disable=SC2046
    clang-tidy -p "$BUILD_DIR" --quiet $(find src -name '*.cpp') \
      > /dev/null
  fi
else
  echo "    clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo "==> all checks passed"
