#!/usr/bin/env bash
# Pre-PR correctness gate. Runs, in order:
#   1. tools/wb_lint.py           repo-specific lint rules
#   2. ASan+UBSan build, -Werror  (build dir: build-check/)
#   3. full ctest under the sanitizers
#   4. TSan build of the concurrency surface (build dir: build-tsan/) and
#      the runner + obs test binaries run under it
#   5. observability smoke: one CLI query exchange with --metrics-out /
#      --trace-out, both outputs validated as JSON
#   6. clang-tidy over src/       (skipped with a notice if not installed)
#   7. Release perf gate: bench_decoder_micro --json-out must show a
#      zero-allocation workspace decode (scripts/validate_bench_decoder.py)
# Exits non-zero on the first failure. Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: scripts/check.sh [-j N]" >&2; exit 2 ;;
  esac
done

BUILD_DIR=build-check

echo "==> [1/7] wb_lint"
python3 tools/wb_lint.py

echo "==> [2/7] configure + build (WB_SANITIZE=address, WB_WERROR=ON)"
cmake -B "$BUILD_DIR" -S . \
  -DWB_SANITIZE=address -DWB_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "==> [3/7] ctest under ASan+UBSan"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "==> [4/7] TSan over the concurrency surface (WB_SANITIZE=thread)"
TSAN_DIR=build-tsan
cmake -B "$TSAN_DIR" -S . \
  -DWB_SANITIZE=thread -DWB_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "$TSAN_DIR" -j "$JOBS" \
  --target test_runner_thread_pool test_runner_sweep test_obs_metrics
"$TSAN_DIR/tests/test_runner_thread_pool"
"$TSAN_DIR/tests/test_runner_sweep"
"$TSAN_DIR/tests/test_obs_metrics"

echo "==> [5/7] observability smoke (CLI query + JSON validation)"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
"$BUILD_DIR/examples/wb_experiment_cli" query \
  --queries 1 --distance 0.2 \
  --metrics-out "$OBS_TMP/smoke.metrics.json" \
  --trace-out "$OBS_TMP/smoke.trace.json" > /dev/null
python3 - "$OBS_TMP" <<'PY'
import json, sys
tmp = sys.argv[1]
metrics = json.load(open(tmp + "/smoke.metrics.json"))
trace = json.load(open(tmp + "/smoke.trace.json"))
counters = metrics["metrics"]["counters"]
modules = sorted({name.split(".")[0] for name in counters})
missing = sorted(set(["core", "phy", "reader", "sim", "tag", "wifi"])
                 - set(modules))
assert not missing, f"metrics missing modules: {missing}"
assert trace["traceEvents"], "trace has no events"
print(f"    metrics: {len(counters)} counters over modules {modules}")
print(f"    trace:   {len(trace['traceEvents'])} events")
PY

echo "==> [6/7] clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "src/.*\.cpp$"
  else
    # shellcheck disable=SC2046
    clang-tidy -p "$BUILD_DIR" --quiet $(find src -name '*.cpp') \
      > /dev/null
  fi
else
  echo "    clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo "==> [7/7] decode hot-path allocation gate (Release bench)"
PERF_DIR=build-perf
cmake -B "$PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$PERF_DIR" -j "$JOBS" --target bench_decoder_micro
python3 scripts/validate_bench_decoder.py \
  --bench "$PERF_DIR/bench/bench_decoder_micro" \
  --out "$PERF_DIR/BENCH_decoder.json"

echo "==> all checks passed"
