#!/usr/bin/env python3
"""Validate a BENCH_decoder.json produced by `bench_decoder_micro --json-out`.

Checks the schema (meta + the eight measurement rows) and enforces two
steady-state gates on the workspace rows: the decode hot path must not
allocate per call (DESIGN.md §10), and the stream-batched conditioning
kernels must beat the frozen scalar reference by --min-conditioning-speedup
(DESIGN.md §15; the ratio is vectorisation only — both paths are
allocation-free). Used by the ctest smoke test and by scripts/check.sh.

Usage:
  validate_bench_decoder.py FILE                      # validate existing file
  validate_bench_decoder.py --bench BIN --out FILE    # run the bench first
"""

import argparse
import json
import subprocess
import sys

REQUIRED_ROWS = (
    "full_decode_seed",
    "conditioning_seed",
    "full_decode_allocating",
    "conditioning_allocating",
    "full_decode_workspace",
    "conditioning_workspace",
    "conditioning_scalar",
    "full_decode_batch",
)
WORKSPACE_ROWS = ("full_decode_workspace", "conditioning_workspace",
                  "full_decode_batch")

# Budgeted steady-state allocations per decode for the workspace path.
MAX_WORKSPACE_ALLOCS = 0

# Required conditioning_scalar/conditioning_workspace ratio. 2.0 is the
# Release gate (scripts/check.sh); the ctest smoke test passes 0 because
# Debug/-O0 builds do not vectorise.
MIN_CONDITIONING_SPEEDUP = 2.0


def fail(msg):
    print(f"validate_bench_decoder: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_file", nargs="?", help="existing report to validate")
    ap.add_argument("--bench", help="bench_decoder_micro binary to run first")
    ap.add_argument("--out", help="report path when running --bench")
    ap.add_argument("--quick", action="store_true",
                    help="pass --quick to the bench")
    ap.add_argument("--max-workspace-allocs", type=float,
                    default=MAX_WORKSPACE_ALLOCS)
    ap.add_argument("--min-conditioning-speedup", type=float,
                    default=MIN_CONDITIONING_SPEEDUP,
                    help="required conditioning_scalar/conditioning_workspace "
                         "ratio (0 disables, for unoptimised builds)")
    args = ap.parse_args()

    if args.bench:
        if not args.out:
            fail("--bench requires --out")
        cmd = [args.bench, "--json-out", args.out]
        if args.quick:
            cmd.append("--quick")
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            fail(f"bench exited with {proc.returncode}")
        path = args.out
    elif args.json_file:
        path = args.json_file
    else:
        fail("give a report file or --bench/--out")

    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")

    meta = report.get("meta")
    if not isinstance(meta, dict):
        fail("missing meta object")
    if meta.get("bench") != "decoder_micro":
        fail(f"meta.bench is {meta.get('bench')!r}, want 'decoder_micro'")
    for key in ("packets", "iters", "speedup_full_decode_vs_seed",
                "speedup_conditioning_vs_scalar"):
        if not isinstance(meta.get(key), (int, float)) or meta[key] <= 0:
            fail(f"meta.{key} missing or not a positive number")
    if not isinstance(meta.get("quick"), bool):
        fail("meta.quick missing or not a bool")

    rows = {r.get("row"): r for r in report.get("rows", [])}
    for name in REQUIRED_ROWS:
        row = rows.get(name)
        if row is None:
            fail(f"missing row {name!r}")
        for key in ("ns_per_packet", "allocs_per_decode"):
            v = row.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"row {name!r}: {key} missing or negative")
        if row["ns_per_packet"] <= 0:
            fail(f"row {name!r}: ns_per_packet must be positive")

    for name in WORKSPACE_ROWS:
        allocs = rows[name]["allocs_per_decode"]
        if allocs > args.max_workspace_allocs:
            fail(f"row {name!r}: {allocs} allocations/decode exceeds the "
                 f"budget of {args.max_workspace_allocs}")

    cond_speedup = meta["speedup_conditioning_vs_scalar"]
    if cond_speedup < args.min_conditioning_speedup:
        fail(f"conditioning speedup {cond_speedup:.2f}x is below the "
             f"required {args.min_conditioning_speedup:.2f}x "
             f"(conditioning_scalar / conditioning_workspace)")

    speedup = meta["speedup_full_decode_vs_seed"]
    print(f"validate_bench_decoder: OK ({path}: "
          f"speedup {speedup:.2f}x vs seed, conditioning "
          f"{cond_speedup:.2f}x vs scalar, workspace allocs "
          f"{[rows[n]['allocs_per_decode'] for n in WORKSPACE_ROWS]})")


if __name__ == "__main__":
    main()
