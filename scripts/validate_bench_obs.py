#!/usr/bin/env python3
"""Validate a BENCH_obs.json produced by `bench_obs_overhead --json-out`.

Checks the schema (meta + the four measurement rows) and enforces the
forensics-layer contract: the recorder/taxonomy-enabled decode rows must
not allocate in steady state (the ring and counters are preallocated;
exemplar serialisation stops once the per-cell cap fills during warmup),
and the successful-decode overhead must stay within budget (5% relative
ns/packet by default). Used by the ctest smoke test and scripts/check.sh's
Release perf gate.

Usage:
  validate_bench_obs.py FILE                      # validate existing file
  validate_bench_obs.py --bench BIN --out FILE    # run the bench first
"""

import argparse
import json
import subprocess
import sys

REQUIRED_ROWS = (
    "decode_off",
    "drop_off",
    "decode_forensics_on",
    "drop_forensics_on",
)
INSTRUMENTED_ROWS = ("decode_forensics_on", "drop_forensics_on")

MAX_INSTRUMENTED_ALLOCS = 0
MAX_OVERHEAD_PCT = 5.0


def fail(msg):
    print(f"validate_bench_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_file", nargs="?", help="existing report to validate")
    ap.add_argument("--bench", help="bench_obs_overhead binary to run first")
    ap.add_argument("--out", help="report path when running --bench")
    ap.add_argument("--quick", action="store_true",
                    help="pass --quick to the bench")
    ap.add_argument("--max-allocs", type=float,
                    default=MAX_INSTRUMENTED_ALLOCS)
    ap.add_argument("--max-overhead-pct", type=float,
                    default=MAX_OVERHEAD_PCT)
    args = ap.parse_args()

    if args.bench:
        if not args.out:
            fail("--bench requires --out")
        cmd = [args.bench, "--json-out", args.out]
        if args.quick:
            cmd.append("--quick")
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            fail(f"bench exited with {proc.returncode}")
        path = args.out
    elif args.json_file:
        path = args.json_file
    else:
        fail("give a report file or --bench/--out")

    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")

    meta = report.get("meta")
    if not isinstance(meta, dict):
        fail("missing meta object")
    if meta.get("bench") != "obs_overhead":
        fail(f"meta.bench is {meta.get('bench')!r}, want 'obs_overhead'")
    for key in ("packets", "iters"):
        if not isinstance(meta.get(key), (int, float)) or meta[key] <= 0:
            fail(f"meta.{key} missing or not a positive number")
    for key in ("overhead_pct", "drop_overhead_pct"):
        if not isinstance(meta.get(key), (int, float)):
            fail(f"meta.{key} missing or not a number")
    if not isinstance(meta.get("quick"), bool):
        fail("meta.quick missing or not a bool")

    rows = {r.get("row"): r for r in report.get("rows", [])}
    for name in REQUIRED_ROWS:
        row = rows.get(name)
        if row is None:
            fail(f"missing row {name!r}")
        for key in ("ns_per_packet", "allocs_per_decode"):
            v = row.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"row {name!r}: {key} missing or negative")
        if row["ns_per_packet"] <= 0:
            fail(f"row {name!r}: ns_per_packet must be positive")

    for name in INSTRUMENTED_ROWS:
        allocs = rows[name]["allocs_per_decode"]
        if allocs > args.max_allocs:
            fail(f"row {name!r}: {allocs} allocations/decode exceeds the "
                 f"budget of {args.max_allocs} — the forensics steady "
                 f"state must not allocate")

    overhead = meta["overhead_pct"]
    if overhead > args.max_overhead_pct:
        fail(f"overhead_pct {overhead:.2f} exceeds the budget of "
             f"{args.max_overhead_pct}%")

    print(f"validate_bench_obs: OK ({path}: overhead {overhead:+.2f}%, "
          f"instrumented allocs "
          f"{[rows[n]['allocs_per_decode'] for n in INSTRUMENTED_ROWS]})")


if __name__ == "__main__":
    main()
