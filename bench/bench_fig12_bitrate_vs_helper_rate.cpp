// Reproduces Fig 12: achievable uplink bit rate vs the helper's packet
// transmission rate.
//
// Paper setup (§7.2): tag 5 cm from the reader, helper 3 m away; the tag
// tries 100/200/500/1000 bps and the achievable rate is the largest with
// BER below 1e-2. Expected: ~100 bps at 500 pkt/s, ~1 kbps at ~3000 pkt/s
// (rate scales like helper_rate / packets-per-bit).
//
// One wb::runner task per helper rate (--threads N); per-point seeds are
// fixed up front, so output is bit-identical at any thread count.
#include <cstdio>

#include <vector>

#include "bench_util.h"
#include "core/experiments.h"
#include "runner/sweep.h"

int main(int argc, char** argv) {
  using namespace wb;
  const std::size_t runs = bench::quick_mode(argc, argv) ? 2 : 8;
  bench::print_header("Figure 12",
                      "Achievable uplink bit rate vs helper transmission rate");
  bench::BenchReport report(
      argc, argv, "fig12",
      "Achievable uplink bit rate vs helper transmission rate");

  const std::vector<double> helper_rates = {240,  500,  750,  1000,
                                            1500, 2000, 2500, 3070};
  // One task per helper rate; parameters (and the legacy seed formula)
  // fixed before execution.
  std::vector<core::UplinkExperimentParams> grid;
  for (double pps : helper_rates) {
    core::UplinkExperimentParams p;
    p.tag_reader_distance_m = Meters{0.05};
    p.helper_pps = pps;
    p.runs = runs;
    p.payload_bits = 48;
    p.seed = 2100 + static_cast<std::uint64_t>(pps);
    grid.push_back(p);
  }

  runner::SweepRunner sweep({bench::threads_arg(argc, argv)});
  const auto res =
      sweep.run(grid.size(), [&grid](const runner::TaskContext& ctx) {
        return core::achievable_bit_rate(grid[ctx.task_index]);
      });

  std::printf("%-16s  %20s\n", "helper (pkt/s)", "achievable rate (bps)");
  bench::print_row_divider();
  for (std::size_t i = 0; i < helper_rates.size(); ++i) {
    std::printf("%-16.0f  %20.0f\n", helper_rates[i], res.results[i]);
    report.add_row("operating_point")
        .set("helper_pps", helper_rates[i])
        .set("achievable_bps", res.results[i]);
  }
  std::printf(
      "\nPaper reference: ~100 bps at 500 pkt/s rising to ~1 kbps at\n"
      "~3070 pkt/s — the bit rate tracks the helper's packet rate.\n");
  return report.finish() ? 0 : 1;
}
