// Microbenchmarks of the reader-side decoding kernels and the tag-side
// circuit simulation, via google-benchmark. These bound how much capture
// data a software reader can process in real time.
//
// Two modes:
//   (default)        the google-benchmark suite below
//   --json-out FILE  direct instrumented measurement of the decode hot
//                    path, written as an obs::RunReport (BENCH_decoder
//                    .json): ns/packet and allocations/decode for the
//                    workspace path, the allocating wrappers, and a frozen
//                    seed-equivalent reference (the pre-workspace
//                    implementation, kept verbatim below so the perf
//                    trajectory keeps a fixed baseline). --quick shrinks
//                    the iteration count. scripts/check.sh gates on
//                    allocs_per_decode == 0 for the workspace rows.
#include <chrono>
#include <string>

#include <benchmark/benchmark.h>

#include "alloc_count.h"

#include "core/uplink_sim.h"
#include "obs/report.h"
#include "phy/ofdm_envelope.h"
#include "reader/conditioning.h"
#include "reader/decode_workspace.h"
#include "reader/uplink_decoder.h"
#include "tag/energy_detector.h"
#include "tag/modulator.h"
#include "util/args.h"
#include "util/dsp.h"
#include "wifi/traffic.h"

namespace {

using namespace wb;

/// A shared capture trace: 30 pkt/bit, 40 payload bits, tag at 20 cm.
const wifi::CaptureTrace& shared_trace() {
  static const wifi::CaptureTrace trace = [] {
    core::UplinkSimConfig cfg;
    cfg.channel.tag_pos = {0.2, 0.0};
    cfg.channel.helper_pos = {3.2, 0.0};
    cfg.seed = 99;
    const TimeUs bit_us{10'000};
    BitVec frame = barker13();
    const auto payload = random_bits(40, 5);
    frame.insert(frame.end(), payload.begin(), payload.end());
    const TimeUs until = TimeUs{600'000} +
                         bit_us * static_cast<std::int64_t>(frame.size()) +
                         TimeUs{100'000};
    sim::RngStream rng(1);
    auto traffic_rng = rng.fork("t");
    const auto tl = wifi::make_cbr_timeline(3000, until,
                                            wifi::TrafficParams{},
                                            traffic_rng);
    tag::Modulator mod(frame, bit_us, TimeUs{600'000});
    core::UplinkSim sim(cfg);
    return sim.run(tl, mod);
  }();
  return trace;
}

reader::UplinkDecoderConfig shared_decoder_config() {
  reader::UplinkDecoderConfig dec;
  dec.payload_bits = 40;
  dec.bit_duration_us = TimeUs{10'000};
  dec.search_from = TimeUs{600'000 - 20'000};
  dec.search_to = TimeUs{600'000 + 20'000};
  return dec;
}

void BM_Conditioning(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    auto ct = reader::condition(trace, reader::MeasurementSource::kCsi);
    benchmark::DoNotOptimize(ct);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_Conditioning);

void BM_PreambleCorrelation(benchmark::State& state) {
  const auto ct =
      reader::condition(shared_trace(), reader::MeasurementSource::kCsi);
  const reader::UplinkDecoder dec(shared_decoder_config());
  std::size_t stream = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dec.preamble_correlation(ct, stream, TimeUs{600'000}));
    stream = (stream + 1) % ct.num_streams();
  }
}
BENCHMARK(BM_PreambleCorrelation);

void BM_FrameSync(benchmark::State& state) {
  const auto ct =
      reader::condition(shared_trace(), reader::MeasurementSource::kCsi);
  const reader::UplinkDecoder dec(shared_decoder_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.find_frame(ct));
  }
}
BENCHMARK(BM_FrameSync);

void BM_FullDecode(benchmark::State& state) {
  const auto& trace = shared_trace();
  const reader::UplinkDecoder dec(shared_decoder_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FullDecode);

void BM_MovingAverage(benchmark::State& state) {
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  std::vector<TimeUs> ts(xs.size());
  sim::RngStream rng(3);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ts[i] = TimeUs{static_cast<std::int64_t>(i)} * 333;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reader::remove_time_moving_average(ts, xs, TimeUs{400'000}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MovingAverage)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_EnergyDetectorStep(benchmark::State& state) {
  sim::RngStream rng(4);
  tag::EnergyDetector det(tag::EnergyDetectorParams{}, rng.fork("det"));
  auto env = rng.fork("env");
  const Milliwatts p{dbm_to_mw(-25.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        det.step(1.0, Milliwatts{phy::draw_ofdm_power_sample(p, env)}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EnergyDetectorStep);

// ---------------------------------------------------------------------
// --json-out mode: direct measurement of the decode hot path.

/// The seed's condition() implementation, frozen verbatim (modulo the
/// metrics block) as the perf baseline: AoS per-record collection via
/// push_back with per-call stream_csi index arithmetic, then the
/// allocating dsp wrappers per stream. Produces values identical to
/// reader::condition — only the memory behaviour differs.
reader::ConditionedTrace condition_seed(const wifi::CaptureTrace& trace,
                                        reader::MeasurementSource source,
                                        TimeUs movavg_window_us) {
  reader::ConditionedTrace out;
  std::vector<std::vector<double>> raw;
  const std::size_t num_streams =
      (source == reader::MeasurementSource::kCsi) ? wifi::kNumCsiStreams
                                                  : phy::kNumAntennas;
  raw.resize(num_streams);
  for (const auto& rec : trace) {
    if (source == reader::MeasurementSource::kCsi && !rec.has_csi) continue;
    out.timestamps.push_back(rec.timestamp_us);
    for (std::size_t s = 0; s < num_streams; ++s) {
      const double v = (source == reader::MeasurementSource::kCsi)
                           ? wifi::stream_csi(rec, s)
                           : rec.rssi_dbm[s];
      raw[s].push_back(v);
    }
  }
  out.streams.resize(num_streams);
  for (std::size_t s = 0; s < num_streams; ++s) {
    auto centered = reader::remove_time_moving_average(
        out.timestamps, raw[s], movavg_window_us);
    out.streams[s] = normalize_mad(centered);
  }
  return out;
}

/// The pre-vectorisation workspace conditioning, frozen as the scalar
/// reference for the conditioning speedup gate (scripts/check.sh passes
/// --min-conditioning-speedup to the validator): SoA collection into
/// reused per-stream buffers, then the retained span kernels one stream
/// at a time. Values are identical to condition_into and both paths are
/// allocation-free once warm — the only difference is stream batching,
/// so the conditioning_workspace/conditioning_scalar ratio measures the
/// vectorised kernels, not allocator noise.
struct ScalarConditionScratch {
  std::vector<std::vector<double>> raw;  ///< [stream][packet]
  std::vector<double> centered;          ///< one stream's centered series
};

void condition_scalar_into(const wifi::CaptureTrace& trace,
                           reader::MeasurementSource source,
                           TimeUs movavg_window_us,
                           ScalarConditionScratch& ws,
                           reader::ConditionedTrace& out) {
  const bool want_csi = source == reader::MeasurementSource::kCsi;
  const std::size_t num_streams =
      want_csi ? wifi::kNumCsiStreams : phy::kNumAntennas;
  std::size_t n = 0;
  if (want_csi) {
    for (const auto& rec : trace) n += rec.has_csi ? 1 : 0;
  } else {
    n = trace.size();
  }
  out.timestamps.resize(n);
  ws.raw.resize(num_streams);
  for (auto& stream : ws.raw) stream.resize(n);

  std::size_t idx = 0;
  for (const auto& rec : trace) {
    if (want_csi && !rec.has_csi) continue;
    out.timestamps[idx] = rec.timestamp_us;
    if (want_csi) {
      std::size_t s = 0;
      for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
        for (std::size_t c = 0; c < phy::kNumSubchannels; ++c) {
          ws.raw[s++][idx] = rec.csi[a][c];
        }
      }
    } else {
      for (std::size_t s = 0; s < num_streams; ++s) {
        ws.raw[s][idx] = rec.rssi_dbm[s];
      }
    }
    ++idx;
  }

  out.streams.resize(num_streams);
  ws.centered.resize(n);
  for (std::size_t s = 0; s < num_streams; ++s) {
    reader::remove_time_moving_average(
        std::span<const TimeUs>(out.timestamps),
        std::span<const double>(ws.raw[s]), movavg_window_us, ws.centered);
    out.streams[s].resize(n);
    normalize_mad(ws.centered, out.streams[s]);
  }
}

struct Sample {
  double ns_per_packet = 0.0;
  double allocs_per_decode = 0.0;
};

/// Times `fn` over `iters` calls (after two warmup calls so workspace
/// capacities are steady-state) and reads the allocation-counter delta.
template <typename F>
Sample measure(F&& fn, std::size_t packets, int iters) {
  fn();
  fn();
  const std::uint64_t a0 = wb_bench::alloc_count();
  // wb-analyze: allow(no-wallclock): wall-clock is the measurand here — this timing harness reports ns/packet, never feeds results
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  // wb-analyze: allow(no-wallclock): wall-clock is the measurand here (end of the timed window)
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t a1 = wb_bench::alloc_count();
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  Sample s;
  s.ns_per_packet =
      ns / (static_cast<double>(iters) * static_cast<double>(packets));
  s.allocs_per_decode =
      static_cast<double>(a1 - a0) / static_cast<double>(iters);
  return s;
}

bool run_json_report(const std::string& path, bool quick) {
  const auto& trace = shared_trace();
  const std::size_t packets = trace.size();
  const int iters = quick ? 5 : 25;
  const auto cfg = shared_decoder_config();
  const reader::UplinkDecoder dec(cfg);

  obs::RunReport report;
  report.set_meta("bench", "decoder_micro");
  report.set_meta("quick", quick);
  report.set_meta("packets", static_cast<double>(packets));
  report.set_meta("iters", static_cast<double>(iters));

  auto add = [&report](const char* name, const Sample& s) {
    report.add_row(name)
        .set("ns_per_packet", s.ns_per_packet)
        .set("allocs_per_decode", s.allocs_per_decode);
    return s;
  };

  // Frozen pre-workspace reference (see condition_seed above).
  const Sample full_seed = add("full_decode_seed", measure(
      [&] {
        const auto ct =
            condition_seed(trace, cfg.source, cfg.movavg_window_us);
        benchmark::DoNotOptimize(dec.decode_conditioned(ct));
      },
      packets, iters));
  add("conditioning_seed", measure(
      [&] {
        benchmark::DoNotOptimize(
            condition_seed(trace, cfg.source, cfg.movavg_window_us));
      },
      packets, iters));

  // Current allocating convenience wrappers (fresh workspace per call).
  add("full_decode_allocating", measure(
      [&] { benchmark::DoNotOptimize(dec.decode(trace)); }, packets, iters));
  add("conditioning_allocating", measure(
      [&] {
        benchmark::DoNotOptimize(reader::condition(trace, cfg.source));
      },
      packets, iters));

  // Steady-state workspace path: one workspace + result, reused.
  reader::DecodeWorkspace ws;
  reader::UplinkDecodeResult result;
  const Sample full_ws = add("full_decode_workspace", measure(
      [&] {
        dec.decode_into(trace, ws, result);
        benchmark::DoNotOptimize(result.found);
      },
      packets, iters));
  reader::DecodeWorkspace cond_ws;
  reader::ConditionedTrace ct_out;
  const Sample cond_ws_sample = add("conditioning_workspace", measure(
      [&] {
        reader::condition_into(trace, cfg.source, cfg.movavg_window_us,
                               cond_ws, ct_out);
        benchmark::DoNotOptimize(ct_out.timestamps.data());
      },
      packets, iters));

  // Scalar conditioning reference (see condition_scalar_into above):
  // same steady-state memory behaviour, per-stream scalar kernels. The
  // workspace/scalar ratio is the vectorisation-speedup gate.
  ScalarConditionScratch scalar_ws;
  reader::ConditionedTrace scalar_out;
  const Sample cond_scalar = add("conditioning_scalar", measure(
      [&] {
        condition_scalar_into(trace, cfg.source, cfg.movavg_window_us,
                              scalar_ws, scalar_out);
        benchmark::DoNotOptimize(scalar_out.timestamps.data());
      },
      packets, iters));

  // Batch entry point: four traces through one workspace per call. The
  // per-packet cost should match full_decode_workspace (the batch API is
  // a loop sharing scratch, not a different pipeline) and stay
  // allocation-free once the result vector is warm.
  const std::vector<wifi::CaptureTrace> batch(4, trace);
  reader::DecodeWorkspace batch_ws;
  std::vector<reader::UplinkDecodeResult> batch_results;
  add("full_decode_batch", measure(
      [&] {
        dec.decode_batch_into(batch, batch_ws, batch_results);
        benchmark::DoNotOptimize(batch_results.data());
      },
      packets * batch.size(), iters));

  report.set_meta("speedup_full_decode_vs_seed",
                  full_seed.ns_per_packet / full_ws.ns_per_packet);
  report.set_meta("speedup_conditioning_vs_scalar",
                  cond_scalar.ns_per_packet / cond_ws_sample.ns_per_packet);
  if (!report.write_json(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  std::printf("json report: %s\n", path.c_str());
  std::printf("full decode: seed %.0f ns/pkt (%.0f allocs), workspace "
              "%.0f ns/pkt (%.0f allocs), speedup %.2fx\n",
              full_seed.ns_per_packet, full_seed.allocs_per_decode,
              full_ws.ns_per_packet, full_ws.allocs_per_decode,
              full_seed.ns_per_packet / full_ws.ns_per_packet);
  std::printf("conditioning: scalar %.0f ns/pkt, batched %.0f ns/pkt, "
              "speedup %.2fx\n",
              cond_scalar.ns_per_packet, cond_ws_sample.ns_per_packet,
              cond_scalar.ns_per_packet / cond_ws_sample.ns_per_packet);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string json_path = args.str("--json-out");
  if (!json_path.empty()) {
    return run_json_report(json_path, args.flag("--quick")) ? 0 : 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
