// Microbenchmarks of the reader-side decoding kernels and the tag-side
// circuit simulation, via google-benchmark. These bound how much capture
// data a software reader can process in real time.
#include <benchmark/benchmark.h>

#include "core/uplink_sim.h"
#include "phy/ofdm_envelope.h"
#include "reader/conditioning.h"
#include "reader/uplink_decoder.h"
#include "tag/energy_detector.h"
#include "tag/modulator.h"
#include "util/dsp.h"
#include "wifi/traffic.h"

namespace {

using namespace wb;

/// A shared capture trace: 30 pkt/bit, 40 payload bits, tag at 20 cm.
const wifi::CaptureTrace& shared_trace() {
  static const wifi::CaptureTrace trace = [] {
    core::UplinkSimConfig cfg;
    cfg.channel.tag_pos = {0.2, 0.0};
    cfg.channel.helper_pos = {3.2, 0.0};
    cfg.seed = 99;
    const TimeUs bit_us = 10'000;
    BitVec frame = barker13();
    const auto payload = random_bits(40, 5);
    frame.insert(frame.end(), payload.begin(), payload.end());
    const TimeUs until =
        600'000 + static_cast<TimeUs>(frame.size()) * bit_us + 100'000;
    sim::RngStream rng(1);
    auto traffic_rng = rng.fork("t");
    const auto tl = wifi::make_cbr_timeline(3000, until,
                                            wifi::TrafficParams{},
                                            traffic_rng);
    tag::Modulator mod(frame, bit_us, 600'000);
    core::UplinkSim sim(cfg);
    return sim.run(tl, mod);
  }();
  return trace;
}

reader::UplinkDecoderConfig shared_decoder_config() {
  reader::UplinkDecoderConfig dec;
  dec.payload_bits = 40;
  dec.bit_duration_us = 10'000;
  dec.search_from = 600'000 - 20'000;
  dec.search_to = 600'000 + 20'000;
  return dec;
}

void BM_Conditioning(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    auto ct = reader::condition(trace, reader::MeasurementSource::kCsi);
    benchmark::DoNotOptimize(ct);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_Conditioning);

void BM_PreambleCorrelation(benchmark::State& state) {
  const auto ct =
      reader::condition(shared_trace(), reader::MeasurementSource::kCsi);
  const reader::UplinkDecoder dec(shared_decoder_config());
  std::size_t stream = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dec.preamble_correlation(ct, stream, 600'000));
    stream = (stream + 1) % ct.num_streams();
  }
}
BENCHMARK(BM_PreambleCorrelation);

void BM_FrameSync(benchmark::State& state) {
  const auto ct =
      reader::condition(shared_trace(), reader::MeasurementSource::kCsi);
  const reader::UplinkDecoder dec(shared_decoder_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.find_frame(ct));
  }
}
BENCHMARK(BM_FrameSync);

void BM_FullDecode(benchmark::State& state) {
  const auto& trace = shared_trace();
  const reader::UplinkDecoder dec(shared_decoder_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FullDecode);

void BM_MovingAverage(benchmark::State& state) {
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  std::vector<TimeUs> ts(xs.size());
  sim::RngStream rng(3);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ts[i] = static_cast<TimeUs>(i) * 333;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reader::remove_time_moving_average(ts, xs, 400'000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MovingAverage)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_EnergyDetectorStep(benchmark::State& state) {
  sim::RngStream rng(4);
  tag::EnergyDetector det(tag::EnergyDetectorParams{}, rng.fork("det"));
  auto env = rng.fork("env");
  const double p = dbm_to_mw(-25.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        det.step(1.0, phy::draw_ofdm_power_sample(p, env)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EnergyDetectorStep);

}  // namespace

BENCHMARK_MAIN();
