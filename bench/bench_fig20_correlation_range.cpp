// Reproduces Fig 20: the correlation length (code length L) required to
// reach BER < 1e-2, as a function of tag-reader distance beyond the plain
// decoder's range.
//
// Paper setup (§10): helper 3 m from the reader; the tag encodes each bit
// as one of two orthogonal L-chip codes; the reader correlates (§3.4).
// Expected: L ~ 20 suffices around 1.6 m; L grows steeply with distance,
// reaching ~150 at 2.1 m.
//
// One wb::runner task per (distance, placement) pair (--threads N); the
// median over placements is taken after the deterministic merge, so
// output is bit-identical at any thread count.
#include <cstdio>

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/experiments.h"
#include "runner/sweep.h"

int main(int argc, char** argv) {
  using namespace wb;
  const bool quick = bench::quick_mode(argc, argv);
  bench::print_header(
      "Figure 20", "Correlation length needed for BER < 1e-2 vs distance");
  bench::BenchReport report(
      argc, argv, "fig20",
      "Correlation length needed for BER < 1e-2 vs distance");

  const std::vector<std::size_t> lengths = {8,  16, 24, 32,  48,
                                            64, 96, 128, 160};
  const std::vector<double> distances_cm = {80,  100, 120, 140, 160,
                                            180, 200, 210, 220};

  // Median over placements: each physical placement has its own multipath
  // luck; the paper measured one placement per distance but a single draw
  // makes the curve jumpy.
  core::CodedGridSpec spec;
  spec.base.packets_per_chip = 2.0;
  spec.base.payload_bits = quick ? 12 : 30;
  spec.base.runs = quick ? 2 : 8;
  spec.placements = quick ? 3 : 5;
  for (double cm : distances_cm) spec.distances_m.push_back(cm / 100.0);
  auto grid = core::expand_coded_grid(spec);
  // Legacy per-point seed formula (9900 + cm + placement*131), so numbers
  // match the pre-runner serial loop byte for byte.
  for (auto& pt : grid) {
    const double cm = distances_cm[pt.index / spec.placements];
    pt.params.seed =
        9900 + static_cast<std::uint64_t>(cm) + pt.placement * 131;
  }

  runner::SweepRunner sweep({bench::threads_arg(argc, argv)});
  const auto res =
      sweep.run(grid.size(), [&grid, &lengths](const runner::TaskContext& ctx) {
        const std::size_t l = core::required_correlation_length(
            grid[ctx.task_index].params, lengths);
        return l == 0 ? lengths.back() * 2 : l;
      });

  std::printf("%-14s  %s\n", "distance(cm)", "required correlation length");
  bench::print_row_divider();
  for (std::size_t d = 0; d < distances_cm.size(); ++d) {
    std::vector<std::size_t> per_placement(
        res.results.begin() +
            static_cast<std::ptrdiff_t>(d * spec.placements),
        res.results.begin() +
            static_cast<std::ptrdiff_t>((d + 1) * spec.placements));
    std::sort(per_placement.begin(), per_placement.end());
    const std::size_t median = per_placement[per_placement.size() / 2];
    const bool achievable = median <= lengths.back();
    if (achievable) {
      std::printf("%-14.0f  %zu\n", distances_cm[d], median);
    } else {
      std::printf("%-14.0f  > %zu (not achievable in sweep)\n",
                  distances_cm[d], lengths.back());
    }
    report.add_row("distance_point")
        .set("distance_cm", distances_cm[d])
        .set("median_correlation_length", static_cast<double>(median))
        .set("achievable", achievable);
  }
  std::printf(
      "\nPaper reference: ~20 bits at 1.6 m growing superlinearly to ~150\n"
      "bits at 2.1 m; correlation buys range at the cost of bit rate, with\n"
      "no extra power at the tag.\n");
  return report.finish() ? 0 : 1;
}
