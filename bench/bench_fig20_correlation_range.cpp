// Reproduces Fig 20: the correlation length (code length L) required to
// reach BER < 1e-2, as a function of tag-reader distance beyond the plain
// decoder's range.
//
// Paper setup (§10): helper 3 m from the reader; the tag encodes each bit
// as one of two orthogonal L-chip codes; the reader correlates (§3.4).
// Expected: L ~ 20 suffices around 1.6 m; L grows steeply with distance,
// reaching ~150 at 2.1 m.
#include <cstdio>

#include <algorithm>

#include "bench_util.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace wb;
  const bool quick = bench::quick_mode(argc, argv);
  bench::print_header(
      "Figure 20", "Correlation length needed for BER < 1e-2 vs distance");

  const std::vector<std::size_t> lengths = {8,  16, 24, 32,  48,
                                            64, 96, 128, 160};
  const double distances_cm[] = {80, 100, 120, 140, 160, 180, 200, 210, 220};

  std::printf("%-14s  %s\n", "distance(cm)", "required correlation length");
  bench::print_row_divider();
  for (double cm : distances_cm) {
    // Median over placements: each physical placement has its own
    // multipath luck; the paper measured one placement per distance but a
    // single draw makes the curve jumpy.
    std::vector<std::size_t> per_placement;
    const std::size_t n_placements = quick ? 3 : 5;
    for (std::size_t placement = 0; placement < n_placements; ++placement) {
      core::CodedExperimentParams p;
      p.tag_reader_distance_m = cm / 100.0;
      p.packets_per_chip = 2.0;
      p.payload_bits = quick ? 12 : 30;
      p.runs = quick ? 2 : 8;
      p.channel_seed = 100 + placement;
      p.seed = 9900 + static_cast<std::uint64_t>(cm) + placement * 131;
      const std::size_t l = core::required_correlation_length(p, lengths);
      per_placement.push_back(l == 0 ? lengths.back() * 2 : l);
    }
    std::sort(per_placement.begin(), per_placement.end());
    const std::size_t median = per_placement[per_placement.size() / 2];
    if (median > lengths.back()) {
      std::printf("%-14.0f  > %zu (not achievable in sweep)\n", cm,
                  lengths.back());
    } else {
      std::printf("%-14.0f  %zu\n", cm, median);
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper reference: ~20 bits at 1.6 m growing superlinearly to ~150\n"
      "bits at 2.1 m; correlation buys range at the cost of bit rate, with\n"
      "no extra power at the tag.\n");
  return 0;
}
