// Reproduces Fig 15: achievable uplink bit rate using only the *ambient*
// packets of an office Wi-Fi network, across the afternoon and evening.
//
// Paper setup (§7.4): reader 5 cm from the tag, monitor mode capturing all
// of the organisation AP's traffic; a measurement every 10 minutes from
// noon to 8 PM. Expected: achievable rate tracks the network load —
// roughly 100-200 bps over the day.
#include <cstdio>

#include <algorithm>

#include "bench_util.h"
#include "core/experiments.h"
#include "wifi/traffic.h"

int main(int argc, char** argv) {
  using namespace wb;
  const std::size_t runs = bench::quick_mode(argc, argv) ? 2 : 6;
  bench::print_header(
      "Figure 15",
      "Achievable uplink bit rate from ambient office traffic vs time");

  std::printf("%-8s  %-16s  %s\n", "time", "load (pkt/s)",
              "achievable rate (bps)");
  bench::print_row_divider();
  for (double hour = 12.0; hour <= 20.0; hour += 0.5) {
    const double pps = wifi::office_load_pps(hour);
    // The paper's ambient experiments resolve rates below the query
    // protocol's 100 bps floor (Fig 15's y axis starts at 50 bps).
    const double rates[] = {50, 100, 200, 500, 1000};
    double rate = 0.0;
    for (double r : rates) {
      core::UplinkExperimentParams p;
      p.tag_reader_distance_m = Meters{0.05};
      p.helper_pps = pps;
      p.packets_per_bit = pps / r;
      if (p.packets_per_bit < 1.5) continue;
      p.paced_traffic = false;  // ambient arrivals, not injected
      p.runs = runs;
      p.payload_bits = 48;
      p.seed = 7000 + static_cast<std::uint64_t>(hour * 10 + r);
      if (core::measure_uplink_ber(p).ber_raw < 1e-2) {
        rate = std::max(rate, r);
      }
    }
    const int h = static_cast<int>(hour);
    const int m = static_cast<int>((hour - h) * 60.0);
    std::printf("%02d:%02d     %-16.0f  %.0f\n", h, m, pps, rate);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper reference: the achievable bit rate is proportional to the\n"
      "number of packets on the network (100-200 bps in their building);\n"
      "no additional traffic needs to be injected.\n");
  return 0;
}
