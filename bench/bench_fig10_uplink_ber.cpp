// Reproduces Fig 10(a)/(b): uplink bit error rate vs tag-reader distance,
// decoding with CSI and with RSSI, for 30/6/3 helper packets per bit.
//
// Paper setup (§7.1): helper 3 m from the tag, 90-bit messages (13-bit
// Barker preamble + 77 payload bits), 20 runs per point, BER floored at
// 5e-4 when no errors occur over the 1540 payload bits.
//
// Expected shape: BER grows with distance; more packets per bit helps;
// CSI reaches ~65 cm at BER 1e-2 with 30 pkt/bit while RSSI dies ~30 cm.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

namespace {

void sweep(wb::reader::MeasurementSource source, const char* label,
           std::size_t runs) {
  const double pkts_per_bit[] = {30.0, 6.0, 3.0};
  const double distances_cm[] = {5, 10, 15, 20, 25, 30, 40, 50, 60, 65, 70};

  std::printf("\n(%s)\n", label);
  std::printf("%-14s", "distance(cm)");
  for (double m : pkts_per_bit) std::printf("  %6.0fp/bit", m);
  std::printf("\n");
  wb::bench::print_row_divider();
  for (double cm : distances_cm) {
    std::printf("%-14.0f", cm);
    for (double m : pkts_per_bit) {
      wb::core::UplinkExperimentParams p;
      p.source = source;
      p.tag_reader_distance_m = cm / 100.0;
      p.packets_per_bit = m;
      p.runs = runs;
      p.seed = 42 + static_cast<std::uint64_t>(cm * 100 + m);
      const auto meas = wb::core::measure_uplink_ber(p);
      std::printf("  %10.2e", meas.ber);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = wb::bench::quick_mode(argc, argv) ? 4 : 20;
  wb::bench::print_header(
      "Figure 10", "Uplink BER vs distance (helper at 3 m, 90-bit frames)");
  sweep(wb::reader::MeasurementSource::kCsi, "a: CSI decoding", runs);
  sweep(wb::reader::MeasurementSource::kRssi, "b: RSSI decoding", runs);
  std::printf(
      "\nPaper reference: CSI decodes below BER 1e-2 out to ~65 cm with\n"
      "30 pkt/bit; RSSI only to ~30 cm; fewer packets per bit is worse.\n");
  return 0;
}
