// Reproduces Fig 10(a)/(b): uplink bit error rate vs tag-reader distance,
// decoding with CSI and with RSSI, for 30/6/3 helper packets per bit.
//
// Paper setup (§7.1): helper 3 m from the tag, 90-bit messages (13-bit
// Barker preamble + 77 payload bits), 20 runs per point, BER floored at
// 5e-4 when no errors occur over the 1540 payload bits.
//
// Expected shape: BER grows with distance; more packets per bit helps;
// CSI reaches ~65 cm at BER 1e-2 with 30 pkt/bit while RSSI dies ~30 cm.
//
// The 66-point grid runs on wb::runner (--threads N, default hardware
// concurrency); every point's parameters and seed are fixed at expansion
// time, so the table and --json-out report are bit-identical at any
// thread count.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "runner/sweep.h"

int main(int argc, char** argv) {
  using namespace wb;
  const std::size_t runs = bench::quick_mode(argc, argv) ? 4 : 20;
  bench::print_header(
      "Figure 10", "Uplink BER vs distance (helper at 3 m, 90-bit frames)");
  bench::BenchReport report(
      argc, argv, "fig10",
      "Uplink BER vs distance (helper at 3 m, 90-bit frames)");

  const std::vector<double> distances_cm = {5,  10, 15, 20, 25, 30,
                                            40, 50, 60, 65, 70};
  core::UplinkGridSpec spec;
  spec.base.runs = runs;
  spec.sources = {reader::MeasurementSource::kCsi,
                  reader::MeasurementSource::kRssi};
  for (double cm : distances_cm) spec.distances_m.push_back(cm / 100.0);
  spec.packets_per_bit = {30.0, 6.0, 3.0};
  auto grid = core::expand_uplink_grid(spec);
  // Legacy per-point seed formula (42 + cm*100 + pkts_per_bit), computed
  // from the exact cm literals the serial loop used, so this bench's
  // numbers match the pre-runner output byte for byte.
  const std::size_t n_pkts = spec.packets_per_bit.size();
  for (auto& pt : grid) {
    const double cm = distances_cm[(pt.index / n_pkts) %
                                   distances_cm.size()];
    pt.params.seed = 42 + static_cast<std::uint64_t>(
                              cm * 100 + pt.packets_per_bit);
  }

  const std::string forensics_out = bench::forensics_out_path(argc, argv);
  runner::SweepConfig sweep_cfg;
  sweep_cfg.threads = bench::threads_arg(argc, argv);
  sweep_cfg.collect_forensics = !forensics_out.empty();
  runner::SweepRunner sweep(sweep_cfg);
  const auto res =
      sweep.run(grid.size(), [&grid](const runner::TaskContext& ctx) {
        return core::measure_uplink_ber(grid[ctx.task_index].params);
      });

  // Print the two per-source tables from the merged results (expansion is
  // source-major, then distance, then packets-per-bit).
  const std::size_t n_dist = spec.distances_m.size();
  for (std::size_t s = 0; s < spec.sources.size(); ++s) {
    std::printf("\n(%s)\n", s == 0 ? "a: CSI decoding" : "b: RSSI decoding");
    std::printf("%-14s", "distance(cm)");
    for (double m : spec.packets_per_bit) std::printf("  %6.0fp/bit", m);
    std::printf("\n");
    bench::print_row_divider();
    for (std::size_t d = 0; d < n_dist; ++d) {
      std::printf("%-14.0f", distances_cm[d]);
      auto& row = report.add_row("ber_point")
                      .set("source", s == 0 ? "csi" : "rssi")
                      .set("distance_cm", distances_cm[d]);
      for (std::size_t k = 0; k < n_pkts; ++k) {
        const auto& meas = res.results[(s * n_dist + d) * n_pkts + k];
        std::printf("  %10.2e", meas.ber);
        row.set("ber_" + std::to_string(static_cast<int>(
                             spec.packets_per_bit[k])) + "pkt",
                meas.ber);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper reference: CSI decodes below BER 1e-2 out to ~65 cm with\n"
      "30 pkt/bit; RSSI only to ~30 cm; fewer packets per bit is worse.\n");
  if (!forensics_out.empty() && res.forensics != nullptr) {
    if (!res.forensics->write_jsonl(forensics_out)) {
      std::fprintf(stderr, "failed to write %s\n", forensics_out.c_str());
      return 1;
    }
    res.forensics->write_exemplars(forensics_out);
    std::printf("forensics (%llu drops): %s\n",
                static_cast<unsigned long long>(res.forensics->total_drops()),
                forensics_out.c_str());
  }
  return report.finish() ? 0 : 1;
}
