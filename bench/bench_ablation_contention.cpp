// MAC-level ablation: how medium contention erodes the uplink.
//
// §5's premise is that the helper's *achievable* packet rate — and with it
// the tag's bit rate — depends on what else shares the air. Here the
// helper's packet timeline comes from the full DCF simulation (collisions,
// backoff, retries) rather than an idealised generator: a saturated helper
// competes with 0..12 saturated rivals, and the surviving delivered frames
// carry the tag's backscatter to the reader.
#include <cstdio>

#include "bench_util.h"
#include "core/uplink_sim.h"
#include "reader/uplink_decoder.h"
#include "tag/modulator.h"
#include "util/stats.h"
#include "wifi/mac.h"

namespace {

using namespace wb;

struct Outcome {
  double helper_pps = 0.0;
  double bit_rate = 0.0;
  double ber = 0.0;
};

Outcome run_with_rivals(std::size_t rivals, std::size_t runs,
                        std::uint64_t seed) {
  Outcome out;
  BerCounter ber;
  for (std::size_t run = 0; run < runs; ++run) {
    // --- MAC: helper + rivals share the medium ---
    wifi::DcfMac mac{sim::RngStream(seed + run * 7919)};
    const auto helper = mac.add_station();
    mac.make_saturated(helper, 1'000, 54.0);
    for (std::size_t i = 0; i < rivals; ++i) {
      mac.make_saturated(mac.add_station(), 1'500, 24.0);
    }

    // The reader sizes the tag's bit rate from a short probe of the
    // helper's delivered rate (the N/M rule, M = 20).
    mac.run_until(TimeUs{500'000});
    const double probe_pps =
        static_cast<double>(mac.stats(helper).delivered) / 0.5;
    const TimeUs bit_us =
        TimeUs::from_us(20.0 * 1e6 / std::max(probe_pps, 50.0));

    const std::size_t payload_bits = 32;
    const TimeUs frame_start{700'000};
    const TimeUs frame_dur =
        bit_us * static_cast<std::int64_t>(13 + payload_bits);
    mac.run_until(frame_start + frame_dur + TimeUs{100'000});

    // Keep only the helper's delivered frames: the reader filters by
    // transmitter address.
    wifi::PacketTimeline timeline;
    for (const auto& f : mac.delivered_timeline()) {
      if (f.source == helper) timeline.push_back(f);
    }
    out.helper_pps += probe_pps / static_cast<double>(runs);

    // --- Tag + channel + decoder ---
    core::UplinkSimConfig cfg;
    cfg.channel.tag_pos = {0.10, 0.0};
    cfg.channel.helper_pos = {3.10, 0.0};
    cfg.seed = seed + run;
    const BitVec payload = random_bits(payload_bits, seed + run);
    BitVec frame = barker13();
    frame.insert(frame.end(), payload.begin(), payload.end());
    tag::Modulator mod(frame, bit_us, frame_start);
    core::UplinkSim sim(cfg);
    const auto trace = sim.run(timeline, mod);

    reader::UplinkDecoderConfig dec;
    dec.payload_bits = payload_bits;
    dec.bit_duration_us = bit_us;
    dec.search_from = frame_start - 2 * bit_us;
    dec.search_to = frame_start + 2 * bit_us;
    reader::UplinkDecoder decoder(dec);
    const auto res = decoder.decode(trace);
    if (res.found) {
      ber.add(payload, res.payload);
    } else {
      ber.add_counts(payload.size(), payload.size());
    }
    out.bit_rate += 1e6 / static_cast<double>(bit_us.ticks()) /
                    static_cast<double>(runs);
  }
  out.ber = ber.ber_floored();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = wb::bench::quick_mode(argc, argv) ? 3 : 8;
  bench::print_header(
      "Ablation (contention)",
      "Uplink over a DCF medium shared with saturated rivals");
  std::printf("%-10s %-18s %-16s %s\n", "rivals", "helper (pkt/s)",
              "tag rate (bps)", "uplink BER");
  bench::print_row_divider();
  for (std::size_t rivals : {0, 1, 3, 6, 12}) {
    const auto o = run_with_rivals(rivals, runs, 5'000 + rivals * 31);
    std::printf("%-10zu %-18.0f %-16.1f %.2e\n", rivals, o.helper_pps,
                o.bit_rate, o.ber);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected: each rival halves-ish the helper's share of the air;\n"
      "the N/M rate control follows it down, and the BER stays workable\n"
      "because the rate adapts — the §5 design point.\n");
  return 0;
}
