// Channel-model validation: checks that the simulated PHY exhibits the
// textbook statistics the substitutions in DESIGN.md lean on. Not a paper
// figure — a credibility check for the substrate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "phy/multipath.h"
#include "phy/ofdm_envelope.h"
#include "phy/uplink_channel.h"
#include "util/stats.h"

namespace {

using namespace wb;

void fading_distribution() {
  // |H| over many draws at one sub-channel: Rician with the profile's K.
  sim::RngStream rng(1);
  RunningStats amp;
  std::size_t deep_fades = 0;
  const std::size_t n = 20'000;
  for (std::size_t i = 0; i < n; ++i) {
    const auto h = phy::draw_frequency_response(phy::MultipathProfile{}, rng);
    const double a = std::abs(h[7]);
    amp.push(a);
    if (a < 0.3) ++deep_fades;
  }
  std::printf("fading |H| (K=2 Rician): mean %.3f  stddev %.3f  "
              "P(|H|<0.3) = %.3f\n",
              amp.mean(), amp.stddev(),
              static_cast<double>(deep_fades) / n);
  std::printf("  reference: Rician K=2 -> mean ~0.93, deep fades rare but"
              " present\n");
}

void coherence_bandwidth() {
  // Correlation of |H| between sub-channels i and i+d, vs spacing d.
  sim::RngStream rng(2);
  const std::size_t n = 4'000;
  std::vector<phy::FrequencyResponse> draws;
  draws.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    draws.push_back(
        phy::draw_frequency_response(phy::MultipathProfile{}, rng));
  }
  std::printf("\n|H| correlation vs sub-channel spacing (0.67 MHz each):\n");
  for (std::size_t d : {1, 2, 4, 8, 16, 29}) {
    double sxy = 0, sx = 0, sy = 0, sxx = 0, syy = 0;
    for (const auto& h : draws) {
      const double x = std::abs(h[0]);
      const double y = std::abs(h[d]);
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
    }
    const double nn = static_cast<double>(n);
    const double corr =
        (sxy - sx * sy / nn) /
        std::sqrt((sxx - sx * sx / nn) * (syy - sy * sy / nn));
    std::printf("  spacing %2zu: corr %.2f\n", d, corr);
  }
  std::printf("  reference: decorrelates over a few MHz (70 ns delay"
              " spread -> ~2 MHz coherence bandwidth)\n");
}

void depth_decay() {
  std::printf("\nbackscatter modulation depth vs tag-reader distance:\n");
  for (double d : {0.05, 0.1, 0.2, 0.4, 0.8, 1.6}) {
    RunningStats depth;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      phy::UplinkChannelParams p;
      p.tag_pos = {d, 0.0};
      p.helper_pos = {d + 3.0, 0.0};
      sim::RngStream rng(100 + seed);
      phy::UplinkChannel ch(p, rng);
      depth.push(ch.mean_relative_depth());
    }
    std::printf("  %.2f m: depth %.4f +- %.4f\n", d, depth.mean(),
                depth.stddev());
  }
  std::printf("  reference: monotone decay ~1/d with a near-field clamp\n");
}

void ofdm_papr() {
  sim::RngStream rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 100'000; ++i) {
    samples.push_back(phy::draw_ofdm_raw_power_sample(Milliwatts{1.0}, rng));
  }
  std::sort(samples.begin(), samples.end());
  const double p99 = samples[static_cast<std::size_t>(0.99 * static_cast<double>(samples.size()))];
  const double p999 =
      samples[static_cast<std::size_t>(0.999 * static_cast<double>(samples.size()))];
  std::printf("\nOFDM instantaneous power (mean 1.0): p99 = %.2f (%.1f dB),"
              " p99.9 = %.2f (%.1f dB)\n",
              p99, 10 * std::log10(p99), p999, 10 * std::log10(p999));
  std::printf("  reference: exponential power -> ~6.6 dB at p99 (the high"
              " PAPR the peak detector exploits, paper 4.2)\n");
}

}  // namespace

int main(int, char**) {
  wb::bench::print_header("Channel validation",
                          "Substrate statistics vs textbook references");
  fading_distribution();
  coherence_bandwidth();
  depth_decay();
  ofdm_papr();
  return 0;
}
