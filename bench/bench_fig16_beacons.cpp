// Reproduces Fig 16: achievable uplink bit rate using only the AP's
// periodic beacons, vs the beacon transmission rate.
//
// Paper setup (§7.5): tag 5 cm from the reader; the reader passively
// listens to beacons. Intel cards provide no CSI for beacon frames, so
// decoding uses RSSI. Expected: the achievable rate grows with the beacon
// frequency (up to a few tens of bps) — the uplink works with zero added
// network traffic.
#include <cstdio>

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace wb;
  const std::size_t runs = bench::quick_mode(argc, argv) ? 2 : 10;
  bench::print_header(
      "Figure 16", "Achievable bit rate from beacons only (RSSI decoding)");

  const double beacon_rates[] = {10, 20, 30, 40, 50, 60, 70};
  const double bit_rates[] = {2, 3, 5, 10, 15, 20, 30, 40, 50};

  std::printf("%-18s  %s\n", "beacons per sec", "achievable rate (bps)");
  bench::print_row_divider();
  for (double bps : beacon_rates) {
    // Median achievable rate over three physical placements: a single
    // placement measures multipath luck as much as beacon-rate scaling.
    std::vector<double> per_placement;
    for (std::uint64_t placement : {1, 3, 7}) {
      double best = 0.0;
      for (double rate : bit_rates) {
        const double m = bps / rate;  // beacons per bit
        if (m < 1.5) continue;
        core::UplinkExperimentParams p;
        p.tag_reader_distance_m = Meters{0.05};
        p.helper_pps = bps;
        p.packets_per_bit = m;
        p.beacons_only = true;
        p.source = reader::MeasurementSource::kRssi;
        p.payload_bits = 24;
        p.channel_seed = placement;
        // Slow beacon-borne bits need a wider drift-removal window than
        // the default 400 ms (the window must span several bits).
        p.movavg_window_us =
            std::max(TimeUs{400'000}, 6 * p.bit_duration_us());
        p.runs = runs;
        p.seed = 8800 + static_cast<std::uint64_t>(bps * 100 + rate);
        const auto meas = core::measure_uplink_ber(p);
        if (meas.ber_raw < 1e-2) best = std::max(best, rate);
      }
      per_placement.push_back(best);
    }
    std::sort(per_placement.begin(), per_placement.end());
    std::printf("%-18.0f  %.0f\n", bps, per_placement[1]);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper reference: the rate increases with beacon frequency; even\n"
      "beacons alone sustain the uplink (tens of bps), with no additional\n"
      "traffic on the network.\n");
  return 0;
}
