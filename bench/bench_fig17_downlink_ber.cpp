// Reproduces Fig 17: downlink BER vs distance between the Wi-Fi reader and
// the tag, for packet lengths of 50/100/200 us (20/10/5 kbps).
//
// Paper setup (§8.1): 200 kbit per point across multiple transmissions at
// +16 dBm; bits measured at the tag's detector output. The measurement
// loop itself lives in core::measure_downlink_ber (shared with the CLI).
//
// Expected shape: BER grows with distance and with bit rate; at BER 1e-2
// the 20 kbps link reaches ~2.1 m and 10 kbps ~2.9 m.
//
// The 42-point grid runs on wb::runner (--threads N); per-point seeds are
// fixed at expansion time, so output is bit-identical at any thread count.
#include <cstdio>

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/experiments.h"
#include "runner/sweep.h"

int main(int argc, char** argv) {
  using namespace wb;
  const bool quick = bench::quick_mode(argc, argv);
  bench::print_header("Figure 17",
                      "Downlink BER vs distance (reader at +16 dBm)");
  bench::BenchReport report(
      argc, argv, "fig17", "Downlink BER vs distance (reader at +16 dBm)");

  const char* rate_labels[] = {"20 kbps", "10 kbps", "5 kbps"};
  const std::vector<double> distances_cm = {25,  50,  75,  100, 125,
                                            150, 175, 200, 225, 250,
                                            275, 300, 325, 350};
  core::DownlinkGridSpec spec;
  spec.base.total_bits = quick ? 4'000 : 50'000;
  spec.slot_durations_us = {TimeUs{50}, TimeUs{100}, TimeUs{200}};
  for (double cm : distances_cm) spec.distances_m.push_back(cm / 100.0);
  auto grid = core::expand_downlink_grid(spec);
  // Legacy per-point seed formula (1234 + cm + slot_us), so numbers match
  // the pre-runner serial loop byte for byte.
  const std::size_t n_rates = spec.slot_durations_us.size();
  for (auto& pt : grid) {
    const double cm = distances_cm[pt.index / n_rates];
    pt.params.seed = 1234 + static_cast<std::uint64_t>(cm) +
                     static_cast<std::uint64_t>(pt.slot_us.ticks());
  }

  runner::SweepRunner sweep({bench::threads_arg(argc, argv)});
  const auto res =
      sweep.run(grid.size(), [&grid](const runner::TaskContext& ctx) {
        return core::measure_downlink_ber(grid[ctx.task_index].params);
      });

  std::printf("%-14s", "distance(cm)");
  for (const char* label : rate_labels) std::printf("  %10s", label);
  std::printf("\n");
  bench::print_row_divider();
  for (std::size_t d = 0; d < distances_cm.size(); ++d) {
    std::printf("%-14.0f", distances_cm[d]);
    auto& row =
        report.add_row("distance_point").set("distance_cm", distances_cm[d]);
    for (std::size_t r = 0; r < n_rates; ++r) {
      const double ber = res.results[d * n_rates + r].ber;
      std::printf("  %10.2e", ber);
      row.set("ber_" +
                  std::to_string(static_cast<long long>(
                      spec.slot_durations_us[r].ticks())) +
                  "us",
              ber);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper reference: at BER 1e-2, 20 kbps reaches ~2.13 m and 10 kbps\n"
      "~2.90 m; lower bit rates extend range.\n");
  return report.finish() ? 0 : 1;
}
