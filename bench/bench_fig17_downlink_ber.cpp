// Reproduces Fig 17: downlink BER vs distance between the Wi-Fi reader and
// the tag, for packet lengths of 50/100/200 us (20/10/5 kbps).
//
// Paper setup (§8.1): 200 kbit per point across multiple transmissions at
// +16 dBm; bits measured at the tag's detector output.
//
// Expected shape: BER grows with distance and with bit rate; at BER 1e-2
// the 20 kbps link reaches ~2.1 m and 10 kbps ~2.9 m.
#include <cstdio>

#include "bench_util.h"
#include "core/downlink_sim.h"
#include "core/frame.h"
#include "reader/downlink_encoder.h"
#include "util/stats.h"

namespace {

double measure_downlink_ber(double distance_m, wb::TimeUs slot_us,
                            std::size_t total_bits, std::uint64_t seed) {
  using namespace wb;
  BerCounter ber;
  // Transmit in bursts the size of one NAV reservation, with the preamble
  // bits prepended so the peak detector charges the way it would in a real
  // message (the preamble starts with packets on the air).
  reader::DownlinkEncoderConfig enc_cfg;
  enc_cfg.slot_us = slot_us;
  reader::DownlinkEncoder encoder(enc_cfg);

  const std::size_t burst_bits =
      std::min<std::size_t>(enc_cfg.bits_per_chunk(), 600);
  std::size_t sent = 0;
  std::uint64_t round = 0;
  while (sent < total_bits) {
    const std::size_t n = std::min(burst_bits, total_bits - sent);
    BitVec message = core::downlink_preamble();
    const BitVec data = random_bits(n, seed + round);
    message.insert(message.end(), data.begin(), data.end());
    const auto tx = encoder.encode(message, /*start_us=*/500);

    core::DownlinkSimConfig cfg;
    cfg.reader_tag_distance_m = distance_m;
    cfg.mcu.bit_duration_us = slot_us;
    cfg.seed = seed * 0x9e3779b9ull + round;
    core::DownlinkSim sim(cfg);
    const auto report = sim.run(tx, /*ambient=*/{}, tx.end_us + 1'000);

    // Compare detector slot decisions against the transmitted bits.
    BitVec truth;
    truth.reserve(tx.slots.size());
    for (const auto& s : tx.slots) truth.push_back(s.bit);
    ber.add(truth, report.slot_levels);
    sent += n;
    ++round;
  }
  return ber.ber_floored();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wb::bench::quick_mode(argc, argv);
  const std::size_t total_bits = quick ? 4'000 : 50'000;
  wb::bench::print_header("Figure 17",
                          "Downlink BER vs distance (reader at +16 dBm)");
  wb::bench::BenchReport report(
      argc, argv, "fig17", "Downlink BER vs distance (reader at +16 dBm)");
  struct Rate {
    wb::TimeUs slot_us;
    const char* label;
  };
  const Rate rates[] = {{50, "20 kbps"}, {100, "10 kbps"}, {200, "5 kbps"}};
  const double distances_cm[] = {25,  50,  75,  100, 125, 150, 175,
                                 200, 225, 250, 275, 300, 325, 350};

  std::printf("%-14s", "distance(cm)");
  for (const auto& r : rates) std::printf("  %10s", r.label);
  std::printf("\n");
  wb::bench::print_row_divider();
  for (double cm : distances_cm) {
    std::printf("%-14.0f", cm);
    auto& row = report.add_row("distance_point").set("distance_cm", cm);
    for (const auto& r : rates) {
      const double ber = measure_downlink_ber(
          cm / 100.0, r.slot_us, total_bits,
          1234 + static_cast<std::uint64_t>(cm) + r.slot_us);
      std::printf("  %10.2e", ber);
      row.set(std::string("ber_") +
                  std::to_string(static_cast<long long>(r.slot_us)) + "us",
              ber);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper reference: at BER 1e-2, 20 kbps reaches ~2.13 m and 10 kbps\n"
      "~2.90 m; lower bit rates extend range.\n");
  return report.finish() ? 0 : 1;
}
