// Reproduces Fig 11: the value of exploiting frequency diversity.
// Compares Wi-Fi Backscatter's decoder (preamble-selected top sub-channels
// + maximum-ratio combining) against decoding from one randomly chosen
// sub-channel, at 30 packets per bit.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace wb;
  const std::size_t runs = bench::quick_mode(argc, argv) ? 4 : 20;
  bench::print_header("Figure 11",
                      "Frequency diversity vs random sub-channel (30 pkt/bit)");

  const double distances_cm[] = {5, 10, 15, 20, 25, 30, 40, 50, 60, 70};
  std::printf("%-14s  %14s  %18s\n", "distance(cm)", "our algorithm",
              "random sub-channel");
  bench::print_row_divider();
  for (double cm : distances_cm) {
    core::UplinkExperimentParams p;
    p.tag_reader_distance_m = Meters{cm / 100.0};
    p.packets_per_bit = 30.0;
    p.runs = runs;
    p.seed = 42 + static_cast<std::uint64_t>(cm);
    const auto ours = core::measure_uplink_ber(p);
    const auto random = core::measure_uplink_ber_random_stream(p);
    std::printf("%-14.0f  %14.2e  %18.2e\n", cm, ours.ber, random.ber);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper reference: a random sub-channel stops working beyond ~15 cm;\n"
      "combining the preamble-selected sub-channels works far further.\n");
  return 0;
}
