// Ablation study of the uplink decoder's design choices (DESIGN.md §6):
//   * stream combining: MRC (1/sigma^2 weights) vs equal-gain vs best-1;
//   * hysteresis thresholds on vs off;
//   * number of combined streams G;
//   * moving-average window length.
//
// Each ablation reports BER at a mid-range operating point (40 cm,
// 30 pkt/bit) where the decoder has work to do.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

namespace {

using namespace wb;

core::UplinkExperimentParams base_params(std::size_t runs) {
  core::UplinkExperimentParams p;
  p.tag_reader_distance_m = Meters{0.40};
  p.packets_per_bit = 30.0;
  p.runs = runs;
  p.seed = 4242;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = wb::bench::quick_mode(argc, argv) ? 6 : 20;
  bench::print_header("Ablation (uplink)",
                      "Decoder design choices at 40 cm, 30 pkt/bit");

  std::printf("%-44s  %s\n", "variant", "BER");
  bench::print_row_divider();

  {
    auto p = base_params(runs);
    std::printf("%-44s  %.2e\n", "full decoder (MRC, G=10, hysteresis 0.5s)",
                core::measure_uplink_ber(p).ber);
  }
  for (std::size_t g : {1, 3, 5, 20, 45}) {
    auto p = base_params(runs);
    p.num_good_streams = g;
    std::printf("combined streams G=%-26zu  %.2e\n", g,
                core::measure_uplink_ber(p).ber);
  }
  // Hysteresis earns its keep against the NIC's spurious CSI events
  // (§3.2's stated motivation); ablate it under a spurious-heavy card.
  for (double h : {0.0, 0.25, 0.5, 1.0}) {
    auto p = base_params(runs);
    p.nic.spurious_prob = 0.05;
    p.hysteresis_sigma = h;
    std::printf("hysteresis %.2f sigma (spurious-heavy NIC)%*s  %.2e\n", h,
                2, "", core::measure_uplink_ber(p).ber);
  }
  for (TimeUs w : {TimeUs{100'000}, TimeUs{200'000}, TimeUs{800'000},
                   TimeUs{1'600'000}}) {
    auto p = base_params(runs);
    p.movavg_window_us = w;
    std::printf("moving-average window %4lld ms%*s  %.2e\n",
                static_cast<long long>(w.ticks() / 1000), 13, "",
                core::measure_uplink_ber(p).ber);
  }
  {
    auto p = base_params(runs);
    std::printf("%-44s  %.2e\n", "random single sub-channel (Fig 11 baseline)",
                core::measure_uplink_ber_random_stream(p).ber);
  }
  std::printf(
      "\nExpected: combining beats any single stream by orders of\n"
      "magnitude; a handful of good streams suffices (G of 3-10), while\n"
      "G=45 dilutes with noise-only streams; hysteresis is dominated by\n"
      "per-bit majority voting even on a spurious-heavy NIC (wide dead\n"
      "zones only discard votes) — which is why the decoder's default\n"
      "band is narrow; very long moving-average windows pass drift\n"
      "through.\n");
  return 0;
}
