// Reproduces Fig 3 (and Fig 6): raw CSI amplitude of one Wi-Fi sub-channel
// vs packet number while the tag modulates an alternating bit pattern.
//
// Fig 3: tag 5 cm from the reader — two clean levels are visible on top of
// the channel measurements. Fig 6: tag 1 m away — the two levels are no
// longer separable, motivating the correlation decoder of §3.4.
//
// Output: an ASCII rendering of the trace plus summary statistics (level
// separation vs noise) at both distances.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/uplink_sim.h"
#include "tag/modulator.h"
#include "util/stats.h"
#include "wifi/traffic.h"

namespace {

using namespace wb;

void trace_at(double distance_m, const char* figure, std::size_t packets) {
  core::UplinkSimConfig cfg;
  cfg.channel.reader_pos = {0.0, 0.0};
  cfg.channel.tag_pos = {distance_m, 0.0};
  cfg.channel.helper_pos = {distance_m + 5.0, 0.0};  // helper 5 m away
  cfg.seed = 321;

  // Saturating download: ~3000 pkt/s; alternating bits at ~15 pkts/bit.
  const double pps = 3000.0;
  const TimeUs bit_us{5'000};
  const TimeUs until =
      TimeUs{static_cast<std::int64_t>(
          static_cast<double>(packets) / pps * 1e6)} +
      TimeUs{1};

  sim::RngStream rng(cfg.seed);
  auto traffic_rng = rng.fork("traffic");
  const auto timeline =
      wifi::make_cbr_timeline(pps, until, wifi::TrafficParams{}, traffic_rng);

  BitVec alternating;
  for (std::size_t i = 0;
       bit_us * static_cast<std::int64_t>(i) < until;
       ++i) {
    alternating.push_back(static_cast<std::uint8_t>(i % 2));
  }
  tag::Modulator mod(alternating, bit_us, TimeUs{});

  core::UplinkSim sim(cfg);
  const auto trace = sim.run(timeline, mod);

  // Pick the sub-channel with the largest amplitude contrast between the
  // two tag states (the paper plots sub-channel 19 of its setup).
  std::size_t best = 0;
  double best_sep = -1.0;
  for (std::size_t s = 0; s < wifi::kNumCsiStreams; ++s) {
    RunningStats one, zero;
    for (std::size_t k = 0; k < trace.size(); ++k) {
      const bool state = mod.state_at(trace[k].timestamp_us);
      (state ? one : zero).push(wifi::stream_csi(trace[k], s));
    }
    const double sep = std::abs(one.mean() - zero.mean());
    if (sep > best_sep) {
      best_sep = sep;
      best = s;
    }
  }

  RunningStats one, zero;
  std::vector<double> series;
  series.reserve(trace.size());
  for (const auto& rec : trace) {
    const double v = wifi::stream_csi(rec, best);
    series.push_back(v);
    (mod.state_at(rec.timestamp_us) ? one : zero).push(v);
  }

  std::printf("\n(%s) tag at %.0f cm — sub-channel %zu (antenna %zu)\n",
              figure, distance_m * 100.0, wifi::stream_subchannel(best),
              wifi::stream_antenna(best));
  std::printf("  CSI level (tag reflecting): %.3f +- %.3f\n", one.mean(),
              one.stddev());
  std::printf("  CSI level (tag absorbing) : %.3f +- %.3f\n", zero.mean(),
              zero.stddev());
  const double noise = 0.5 * (one.stddev() + zero.stddev());
  std::printf("  level separation / noise  : %.2f %s\n",
              best_sep / (noise > 0 ? noise : 1.0),
              best_sep / (noise > 0 ? noise : 1.0) > 2.0
                  ? "(two distinct levels)"
                  : "(levels not separable)");

  // Coarse ASCII strip chart of the first 600 packets, 60 per row.
  const double lo = *std::min_element(series.begin(), series.end());
  const double hi = *std::max_element(series.begin(), series.end());
  std::printf("  trace (first 600 packets, '. -=#%%' = amplitude):\n");
  const char glyphs[] = ".-=#%";
  for (std::size_t row = 0; row < 10; ++row) {
    std::printf("    ");
    for (std::size_t col = 0; col < 60; ++col) {
      const std::size_t k = row * 60 + col;
      if (k >= series.size()) break;
      const double frac =
          hi > lo ? (series[k] - lo) / (hi - lo) : 0.5;
      std::printf("%c", glyphs[std::min<std::size_t>(
                            4, static_cast<std::size_t>(frac * 5.0))]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t packets = wb::bench::quick_mode(argc, argv) ? 1'000 : 3'000;
  wb::bench::print_header(
      "Figures 3 and 6",
      "Raw CSI vs packet number with an alternating tag pattern");
  trace_at(0.05, "Fig 3", packets);
  trace_at(1.00, "Fig 6", packets);
  std::printf(
      "\nPaper reference: at 5 cm the binary modulation is clearly visible\n"
      "as two CSI levels; at 1 m no two distinct levels remain.\n");
  return 0;
}
