// Measures what the decode-forensics layer costs on the decoder hot path:
// the same workspace decode, run with no obs installed ("off") and with a
// thread-local ForensicsSink + FlightRecorder installed ("on"), plus the
// drop path (a sync threshold the trace cannot meet, so every decode
// records a drop and a flight-recorder event).
//
// Emits BENCH_obs.json (an obs::RunReport):
//   rows  decode_off / decode_forensics_on / drop_off / drop_forensics_on
//         with ns_per_packet and allocs_per_decode
//   meta  overhead_pct — relative ns/packet cost of "on" over "off" for
//         the successful-decode path
//
// scripts/validate_bench_obs.py gates on allocs_per_decode == 0 for both
// "on" rows (the recorder ring and taxonomy counters are preallocated;
// exemplar serialisation stops once the per-cell cap fills during warmup)
// and overhead_pct <= 5.
#include <chrono>
#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "alloc_count.h"

#include "core/uplink_sim.h"
#include "obs/flight_recorder.h"
#include "obs/forensics.h"
#include "obs/report.h"
#include "reader/decode_workspace.h"
#include "reader/uplink_decoder.h"
#include "tag/modulator.h"
#include "util/args.h"
#include "wifi/traffic.h"

namespace {

using namespace wb;

/// Same capture recipe as bench_decoder_micro: 30 pkt/bit, 40 payload
/// bits, tag at 20 cm — decodes cleanly at the default threshold.
const wifi::CaptureTrace& shared_trace() {
  static const wifi::CaptureTrace trace = [] {
    core::UplinkSimConfig cfg;
    cfg.channel.tag_pos = {0.2, 0.0};
    cfg.channel.helper_pos = {3.2, 0.0};
    cfg.seed = 99;
    const TimeUs bit_us{10'000};
    BitVec frame = barker13();
    const auto payload = random_bits(40, 5);
    frame.insert(frame.end(), payload.begin(), payload.end());
    const TimeUs until = TimeUs{600'000} +
                         bit_us * static_cast<std::int64_t>(frame.size()) +
                         TimeUs{100'000};
    sim::RngStream rng(1);
    auto traffic_rng = rng.fork("t");
    const auto tl = wifi::make_cbr_timeline(3000, until,
                                            wifi::TrafficParams{},
                                            traffic_rng);
    tag::Modulator mod(frame, bit_us, TimeUs{600'000});
    core::UplinkSim sim(cfg);
    return sim.run(tl, mod);
  }();
  return trace;
}

reader::UplinkDecoderConfig decoder_config(double sync_threshold) {
  reader::UplinkDecoderConfig dec;
  dec.payload_bits = 40;
  dec.bit_duration_us = TimeUs{10'000};
  dec.search_from = TimeUs{600'000 - 20'000};
  dec.search_to = TimeUs{600'000 + 20'000};
  dec.sync_threshold = sync_threshold;
  return dec;
}

struct Sample {
  double ns_per_packet = 0.0;
  double allocs_per_decode = 0.0;
};

/// Times `fn` over `iters` calls after two warmup calls (workspace
/// capacities reach steady state and the forensics exemplar cap fills).
/// The timed window repeats kReps times and the *minimum* is reported —
/// scheduling noise and competing load only ever add time, so the min is
/// the robust estimator for a relative-overhead gate. The allocation
/// delta spans all repetitions (the budget is zero, so any rep
/// allocating fails regardless of which one).
template <typename F>
Sample measure(F&& fn, std::size_t packets, int iters) {
  constexpr int kReps = 3;
  fn();
  fn();
  const std::uint64_t a0 = wb_bench::alloc_count();
  double best_ns = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    // wb-analyze: allow(no-wallclock): wall-clock is the measurand here — this timing harness reports ns/packet, never feeds results
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    // wb-analyze: allow(no-wallclock): wall-clock is the measurand here (end of the timed window)
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  const std::uint64_t a1 = wb_bench::alloc_count();
  Sample s;
  s.ns_per_packet =
      best_ns / (static_cast<double>(iters) * static_cast<double>(packets));
  s.allocs_per_decode =
      static_cast<double>(a1 - a0) / static_cast<double>(kReps * iters);
  return s;
}

int run(const std::string& path, bool quick) {
  const auto& trace = shared_trace();
  const std::size_t packets = trace.size();
  const int iters = quick ? 5 : 25;

  obs::RunReport report;
  report.set_meta("bench", "obs_overhead");
  report.set_meta("quick", quick);
  report.set_meta("packets", static_cast<double>(packets));
  report.set_meta("iters", static_cast<double>(iters));

  auto add = [&report](const char* name, const Sample& s) {
    report.add_row(name)
        .set("ns_per_packet", s.ns_per_packet)
        .set("allocs_per_decode", s.allocs_per_decode);
    return s;
  };

  const reader::UplinkDecoder dec_ok(decoder_config(0.0));
  // A threshold no window of this trace reaches: every decode drops with
  // low_snr and logs one flight-recorder event.
  const reader::UplinkDecoder dec_drop(decoder_config(0.99));
  reader::DecodeWorkspace ws;
  reader::UplinkDecodeResult result;

  const auto decode_ok = [&] {
    dec_ok.decode_into(trace, ws, result);
    benchmark::DoNotOptimize(result.found);
  };
  const auto decode_drop = [&] {
    dec_drop.decode_into(trace, ws, result);
    benchmark::DoNotOptimize(result.found);
  };

  const Sample off = add("decode_off", measure(decode_ok, packets, iters));
  const Sample drop_off =
      add("drop_off", measure(decode_drop, packets, iters));

  Sample on;
  Sample drop_on;
  {
    obs::ForensicsSink sink;
    obs::FlightRecorder recorder;
    const obs::ScopedForensics forensics_guard(sink);
    const obs::ScopedFlightRecorder recorder_guard(&recorder);
    on = add("decode_forensics_on", measure(decode_ok, packets, iters));
    drop_on =
        add("drop_forensics_on", measure(decode_drop, packets, iters));
  }

  const double overhead_pct =
      (on.ns_per_packet - off.ns_per_packet) / off.ns_per_packet * 100.0;
  report.set_meta("overhead_pct", overhead_pct);
  report.set_meta("drop_overhead_pct",
                  (drop_on.ns_per_packet - drop_off.ns_per_packet) /
                      drop_off.ns_per_packet * 100.0);

  if (!report.write_json(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("json report: %s\n", path.c_str());
  std::printf("decode: off %.0f ns/pkt, forensics on %.0f ns/pkt "
              "(%+.2f%%, %.0f allocs/decode)\n",
              off.ns_per_packet, on.ns_per_packet, overhead_pct,
              on.allocs_per_decode);
  std::printf("drop:   off %.0f ns/pkt, forensics on %.0f ns/pkt "
              "(%.0f allocs/decode)\n",
              drop_off.ns_per_packet, drop_on.ns_per_packet,
              drop_on.allocs_per_decode);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string json_path =
      args.str("--json-out", "BENCH_obs.json");
  return run(json_path, args.flag("--quick"));
}
