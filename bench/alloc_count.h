// Binary-local allocation instrumentation shared by the BENCH_* binaries:
// every operator-new in the process bumps a counter, so a measured loop's
// delta is exactly its allocation count (the "allocations/op" columns of
// the BENCH_*.json reports). Counting is always on — readers take deltas
// via wb_bench::alloc_count().
//
// This header DEFINES the replaceable global operator new/delete set, and
// replacement allocation functions must not be inline — include it from
// exactly one translation unit per binary (each bench_*.cpp is its own
// binary, so each includes it once). Including it from two TUs linked into
// the same binary is a duplicate-symbol link error, which is the failure
// mode we want: loud, at build time.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace wb_bench {

inline std::atomic<std::uint64_t> g_allocs{0};

/// Current process-wide allocation count; subtract two samples to get the
/// allocation count of the code between them.
inline std::uint64_t alloc_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace wb_bench

// GCC's -Wmismatched-new-delete inlines the delete below to free() and
// flags it against operator new; the pair is consistent (both sides go
// through malloc/free), so silence the false positive for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  wb_bench::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  wb_bench::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
