// Ablation study of the tag's energy-detector circuit (paper §4.2):
//   * adaptive threshold (peak/2) vs other threshold fractions;
//   * peak-hold decay time constant;
//   * envelope smoothing time constant (the 50 us packet-length limit).
//
// Each variant reports downlink slot BER at 20 kbps, 1.75 m — a point
// where the default circuit works but has little margin.
#include <cstdio>

#include "bench_util.h"
#include "core/downlink_sim.h"
#include "core/frame.h"
#include "reader/downlink_encoder.h"
#include "util/stats.h"

namespace {

using namespace wb;

double slot_ber(const tag::EnergyDetectorParams& det, std::size_t total_bits,
                std::uint64_t seed) {
  BerCounter ber;
  reader::DownlinkEncoderConfig enc_cfg;
  enc_cfg.slot_us = TimeUs{50};
  reader::DownlinkEncoder encoder(enc_cfg);
  std::uint64_t round = 0;
  std::size_t sent = 0;
  while (sent < total_bits) {
    const std::size_t n = std::min<std::size_t>(500, total_bits - sent);
    BitVec message = core::downlink_preamble();
    const BitVec data = random_bits(n, seed + round);
    message.insert(message.end(), data.begin(), data.end());
    const auto tx = encoder.encode(message, TimeUs{500});

    core::DownlinkSimConfig cfg;
    cfg.reader_tag_distance_m = Meters{1.75};
    cfg.detector = det;
    cfg.mcu.bit_duration_us = TimeUs{50};
    cfg.seed = seed * 31 + round;
    core::DownlinkSim sim(cfg);
    const auto report = sim.run(tx, {}, tx.end_us + TimeUs{1'000});
    BitVec truth;
    for (const auto& s : tx.slots) truth.push_back(s.bit);
    ber.add(truth, report.slot_levels);
    sent += n;
    ++round;
  }
  return ber.ber_floored();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t bits = wb::bench::quick_mode(argc, argv) ? 3'000 : 20'000;
  bench::print_header("Ablation (downlink)",
                      "Energy-detector circuit choices at 20 kbps, 1.75 m");

  std::printf("%-44s  %s\n", "variant", "slot BER");
  bench::print_row_divider();

  {
    tag::EnergyDetectorParams det;
    std::printf("%-44s  %.2e\n", "paper circuit (th=peak/2, smooth 18 us)",
                slot_ber(det, bits, 11));
  }
  for (double frac : {0.25, 0.35, 0.65, 0.8}) {
    tag::EnergyDetectorParams det;
    det.threshold_fraction = frac;
    std::printf("threshold = %.2f x peak%*s  %.2e\n", frac, 21, "",
                slot_ber(det, bits, 12));
  }
  for (double tau : {4.0, 9.0, 36.0, 60.0}) {
    tag::EnergyDetectorParams det;
    det.smooth_tau_us = tau;
    std::printf("envelope smoothing tau = %4.0f us%*s  %.2e\n", tau, 14, "",
                slot_ber(det, bits, 13));
  }
  for (double decay : {500.0, 2'000.0, 32'000.0, 128'000.0}) {
    tag::EnergyDetectorParams det;
    det.peak_decay_tau_us = decay;
    std::printf("peak-hold decay tau = %6.0f us%*s  %.2e\n", decay, 14, "",
                slot_ber(det, bits, 14));
  }
  std::printf(
      "\nExpected: peak/2 is near-optimal (lower thresholds admit noise,\n"
      "higher ones miss settled packets); smoothing trades OFDM flicker\n"
      "against edge speed with an interior optimum; too-fast peak decay\n"
      "loses the reference during zero runs.\n");
  return 0;
}
