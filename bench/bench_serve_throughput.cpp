// Measures the live-capture service's sustained ingest throughput: N
// staggered replicas of one decodable capture merged in timestamp order
// and pushed through CaptureService::submit() + drain_all(), exactly the
// wb_experiment_cli `serve` path.
//
// Emits BENCH_serve.json (an obs::RunReport):
//   rows  sessions_1 / sessions_8 with records_per_pass, pkts_per_sec,
//         ns_per_record, allocs_per_record, frames_per_pass, and submit
//         latency percentiles (latency_p50_ns/p95/p99) from a separate
//         untimed pass
//   meta  ring/policy/threads of the measured configuration
//
// scripts/validate_bench_serve.py gates on allocs_per_record == 0 for
// the steady-state ingest+dispatch path (ring, pending queues, frame
// rings, and decoder workspaces are preallocated; the forensics exemplar
// cap fills during warmup) and frames_per_pass == sessions (drain loses
// no decodable frame). The block-producer policy is measured: it is the
// only one that admits every record, so the frame gate is exact.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <benchmark/benchmark.h>

#include "alloc_count.h"

#include "core/uplink_sim.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "serve/capture_service.h"
#include "tag/modulator.h"
#include "util/args.h"
#include "wifi/replay.h"
#include "wifi/traffic.h"

namespace {

using namespace wb;

constexpr std::size_t kPayloadBits = 24;
constexpr TimeUs kBitUs{5'000};
constexpr TimeUs kStagger{1'733};
constexpr std::size_t kRing = 64;

/// One decodable frame (preamble + 24-bit payload at 0.7 s) over helper
/// CBR traffic — the per-session streaming decoders emit exactly one
/// frame per full pass.
const wifi::CaptureTrace& shared_trace() {
  static const wifi::CaptureTrace trace = [] {
    core::UplinkSimConfig cfg;
    cfg.channel.tag_pos = {0.08, 0.0};
    cfg.channel.helper_pos = {3.08, 0.0};
    cfg.seed = 17;
    sim::RngStream rng(1);
    auto traffic_rng = rng.fork("t");
    const auto tl = wifi::make_cbr_timeline(3'000, TimeUs{1'200'000},
                                            wifi::TrafficParams{},
                                            traffic_rng);
    BitVec frame = barker13();
    const auto payload = random_bits(kPayloadBits, 5);
    frame.insert(frame.end(), payload.begin(), payload.end());
    tag::Modulator mod(frame, kBitUs, TimeUs{700'000});
    core::UplinkSim sim(cfg);
    return sim.run(tl, mod);
  }();
  return trace;
}

serve::ServeConfig serve_config(std::size_t sessions) {
  serve::ServeConfig cfg;
  cfg.ring_capacity = kRing;
  cfg.policy = serve::BackpressurePolicy::kBlockProducer;
  cfg.max_sessions = sessions;
  cfg.dispatch_threads = 1;  // the alloc-gated deterministic inline path
  cfg.decoder.decoder.payload_bits = kPayloadBits;
  cfg.decoder.decoder.bit_duration_us = kBitUs;
  // A frame-ring slot's payload storage is first-touch allocated; a small
  // ring models a consumer that keeps up, so the warmup passes (one frame
  // per pass) warm every slot and steady state reuses them.
  cfg.frame_capacity = 2;
  return cfg;
}

struct Sample {
  double records_per_pass = 0.0;
  double pkts_per_sec = 0.0;
  double ns_per_record = 0.0;
  double allocs_per_record = 0.0;
  double frames_per_pass = 0.0;
  double latency_p50_ns = 0.0;
  double latency_p95_ns = 0.0;
  double latency_p99_ns = 0.0;
};

/// One full service pass: every staggered record submitted in merged
/// timestamp order, then the stranded tails drained. `epoch` shifts the
/// whole pass forward in service time — the per-session decoders require
/// monotone timestamps across their lifetime, so each pass replays the
/// same air at a later epoch, exactly like a tag re-keying the same
/// payload.
std::size_t run_pass(serve::CaptureService& svc, wifi::MultiSessionFeed& feed,
                     TimeUs epoch) {
  feed.rewind();
  std::uint32_t session = 0;
  wifi::CaptureRecord rec{};
  while (feed.next(session, rec)) {
    rec.timestamp_us = rec.timestamp_us + epoch;
    const auto err = svc.submit(session, rec);
    if (!err.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   serve::to_string(err.code()));
      std::exit(1);
    }
  }
  return svc.drain_all();
}

/// Times full passes after three warmup passes (ring/pending/frame/
/// workspace capacities reach steady state and the forensics exemplar
/// caps fill).
/// The timed window repeats kReps times and the *minimum* is reported —
/// noise only ever adds time. The allocation delta spans all repetitions
/// (the budget is zero, so any rep allocating fails regardless of which).
/// Submit latency percentiles come from one extra untimed pass so the
/// clock reads never perturb the throughput numbers.
Sample measure(std::size_t sessions, int iters) {
  constexpr int kReps = 3;
  serve::CaptureService svc(serve_config(sessions));
  for (std::uint32_t id = 0; id < sessions; ++id) {
    const auto err = svc.attach(id);
    if (!err.ok()) {
      std::fprintf(stderr, "attach failed: %s\n",
                   serve::to_string(err.code()));
      std::exit(1);
    }
  }
  wifi::MultiSessionFeed feed(
      wifi::fan_out(shared_trace(), sessions, kStagger));
  const auto records = static_cast<double>(feed.remaining());
  // One pass spans the base trace plus the last session's stagger; space
  // epochs a second apart beyond that so passes never overlap in time.
  const TimeUs period =
      shared_trace().back().timestamp_us +
      kStagger * static_cast<std::int64_t>(sessions) + TimeUs{1'000'000};
  std::int64_t pass = 0;
  const auto next_epoch = [&] {
    return period * pass++;
  };

  // Three warmup passes: capacities reach steady state in the first, and
  // the forensics exemplar caps (2 per cell) fill by the third even for
  // cells that fire once per pass — the inter-epoch gap scan drops one
  // no_preamble per pass starting at the *second* pass, so its cell
  // saturates during the third. Any later serialization would allocate.
  std::size_t drained = 0;
  drained = run_pass(svc, feed, next_epoch());
  drained = run_pass(svc, feed, next_epoch());
  drained = run_pass(svc, feed, next_epoch());

  const std::uint64_t a0 = wb_bench::alloc_count();
  double best_ns = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    // wb-analyze: allow(no-wallclock): wall-clock is the measurand here — this timing harness reports pkts/sec, never feeds results
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      drained = run_pass(svc, feed, next_epoch());
      benchmark::DoNotOptimize(drained);
    }
    // wb-analyze: allow(no-wallclock): wall-clock is the measurand here (end of the timed window)
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  const std::uint64_t a1 = wb_bench::alloc_count();

  const std::uint64_t frames_before = svc.frames_total();
  obs::LogHistogram latency;
  {
    const TimeUs epoch = next_epoch();
    feed.rewind();
    std::uint32_t session = 0;
    wifi::CaptureRecord rec{};
    while (feed.next(session, rec)) {
      rec.timestamp_us = rec.timestamp_us + epoch;
      // wb-analyze: allow(no-wallclock): wall-clock is the measurand here — per-submit latency feeding the reported percentiles only
      const auto t0 = std::chrono::steady_clock::now();
      const auto err = svc.submit(session, rec);
      // wb-analyze: allow(no-wallclock): wall-clock is the measurand here (end of the latency window)
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(err.ok());
      latency.record(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
    svc.drain_all();
  }

  Sample s;
  s.records_per_pass = records;
  const double per_pass_ns = best_ns / static_cast<double>(iters);
  s.pkts_per_sec = records / (per_pass_ns * 1e-9);
  s.ns_per_record = per_pass_ns / records;
  s.allocs_per_record = static_cast<double>(a1 - a0) /
                        (static_cast<double>(kReps * iters) * records);
  // Every pass decodes the same frames; the untimed latency pass ran once
  // after frames_before was read, so the delta is one pass's yield.
  s.frames_per_pass =
      static_cast<double>(svc.frames_total() - frames_before);
  s.latency_p50_ns = latency.percentile(50.0);
  s.latency_p95_ns = latency.percentile(95.0);
  s.latency_p99_ns = latency.percentile(99.0);
  return s;
}

int run(const std::string& path, bool quick) {
  const std::size_t session_counts[] = {1, 8};
  const int iters = quick ? 2 : 8;

  obs::RunReport report;
  report.set_meta("bench", "serve_throughput");
  report.set_meta("quick", quick);
  report.set_meta("iters", static_cast<double>(iters));
  report.set_meta("trace_records", static_cast<double>(shared_trace().size()));
  report.set_meta("ring_capacity", static_cast<double>(kRing));
  report.set_meta("policy", "block_producer");
  report.set_meta("dispatch_threads", 1.0);

  for (const std::size_t sessions : session_counts) {
    const Sample s = measure(sessions, iters);
    const std::string row = "sessions_" + std::to_string(sessions);
    report.add_row(row)
        .set("sessions", static_cast<double>(sessions))
        .set("records_per_pass", s.records_per_pass)
        .set("pkts_per_sec", s.pkts_per_sec)
        .set("ns_per_record", s.ns_per_record)
        .set("allocs_per_record", s.allocs_per_record)
        .set("frames_per_pass", s.frames_per_pass)
        .set("latency_p50_ns", s.latency_p50_ns)
        .set("latency_p95_ns", s.latency_p95_ns)
        .set("latency_p99_ns", s.latency_p99_ns);
    std::printf("sessions %zu: %.0f pkts/s (%.0f ns/record, "
                "%.2f allocs/record), %.0f frame(s)/pass, "
                "submit p50/p95/p99 %.0f/%.0f/%.0f ns\n",
                sessions, s.pkts_per_sec, s.ns_per_record,
                s.allocs_per_record, s.frames_per_pass, s.latency_p50_ns,
                s.latency_p95_ns, s.latency_p99_ns);
  }

  if (!report.write_json(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("json report: %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string json_path = args.str("--json-out", "BENCH_serve.json");
  return run(json_path, args.flag("--quick"));
}
