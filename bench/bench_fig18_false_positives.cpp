// Reproduces Fig 18: downlink false-positive rate — how often ordinary
// Wi-Fi traffic tricks the tag into waking its microcontroller for a
// Wi-Fi Backscatter preamble that is not there.
//
// Paper setup (§8.2): tag 30 cm from the AP, constant streaming traffic
// through peak hours, preamble bits of 50 us; reported as wake-up events
// per hour over a working day. Expected: below ~30/hour at all times.
#include <cstdio>

#include "bench_util.h"
#include "core/downlink_sim.h"
#include "wifi/traffic.h"

int main(int argc, char** argv) {
  using namespace wb;
  const bool quick = bench::quick_mode(argc, argv);
  // Simulated seconds per hour-of-day point, scaled up to events/hour.
  const TimeUs window_us = (quick ? 60 : 600) * kMicrosPerSec;

  bench::print_header(
      "Figure 18",
      "Downlink false positives per hour (tag 30 cm from a busy AP)");
  std::printf("%-10s  %14s  %12s\n", "hour", "ambient pkts/s",
              "false pos/hr");
  bench::print_row_divider();

  for (int hour = 10; hour <= 18; ++hour) {
    // Diurnal office load plus the experiment's constant audio stream.
    const double pps = wifi::office_load_pps(hour) + 50.0;
    sim::RngStream rng(9000 + static_cast<std::uint64_t>(hour));
    auto traffic_rng = rng.fork("ambient");
    const auto ambient =
        wifi::make_ambient_mix_timeline(pps, window_us, traffic_rng);

    core::DownlinkSimConfig cfg;
    cfg.ambient_distance_m = Meters{0.30};  // 30 cm from the AP
    cfg.reader_tag_distance_m = Meters{1.0};
    cfg.mcu.bit_duration_us = TimeUs{50};
    cfg.seed = 77 + static_cast<std::uint64_t>(hour);
    core::DownlinkSim sim(cfg);
    const auto report =
        sim.run(reader::DownlinkTransmission{}, ambient, window_us);

    const double per_hour =
        static_cast<double>(report.decode_entries) * 3.6e9 /
        static_cast<double>(window_us.ticks());
    std::printf("%-10d  %14.0f  %12.1f\n", hour, pps, per_hour);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper reference: the maximum observed false-positive rate is\n"
      "below 30 events/hour; ordinary traffic rarely mimics the preamble's\n"
      "transition-interval structure.\n");
  return 0;
}
