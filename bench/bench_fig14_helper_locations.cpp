// Reproduces Fig 14 (on the Fig 13 testbed): probability of receiving a
// correct packet on the uplink for helper locations 2-5 — line-of-sight
// spots at 3-6 m and a non-line-of-sight spot in the adjacent room.
//
// Paper setup (§7.3): tag and reader 5 cm apart at location 1; the tag
// sends 20 packets at 100 bps per location. Expected: delivery is high at
// every location, including through the wall — the uplink depends on the
// tag-reader distance, not on where the helper stands.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "phy/geometry.h"

int main(int argc, char** argv) {
  using namespace wb;
  const std::size_t runs = bench::quick_mode(argc, argv) ? 6 : 20;
  bench::print_header(
      "Figure 14", "Uplink packet delivery probability vs helper location");

  const auto testbed = phy::Testbed::paper_fig13();
  std::printf("%-10s %-12s %-8s  %s\n", "location", "distance(m)", "LOS",
              "P(correct packet)");
  bench::print_row_divider();
  for (std::size_t loc = 0; loc < testbed.helper_locations.size(); ++loc) {
    const auto helper = testbed.helper_locations[loc];
    const Meters d = phy::distance(helper, testbed.tag);
    const bool nlos =
        testbed.plan.wall_loss_db(helper, testbed.tag) > Db{};

    core::UplinkExperimentParams p;
    p.helper_pos = helper;
    p.reader_pos = testbed.reader;
    p.tag_pos = testbed.tag;
    p.plan = &testbed.plan;
    p.helper_pps = 3000.0;
    p.packets_per_bit = 30.0;  // 100 bps at 3000 pkt/s
    p.payload_bits = 24;       // short sensor packets, 20 of them
    p.runs = runs;
    p.seed = 500 + loc;
    const double pdr = core::measure_packet_delivery(p);
    std::printf("%-10zu %-12.1f %-8s  %.2f\n", loc + 2, d.value(),
                nlos ? "no" : "yes", pdr);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper reference: delivery probability is high across all helper\n"
      "locations, including location 5 in a different room.\n");
  return 0;
}
