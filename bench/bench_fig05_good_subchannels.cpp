// Reproduces Fig 5: which Wi-Fi sub-channels can, on their own, decode the
// tag below BER 1e-2 — at each tag-reader distance.
//
// Paper observation (§3.2): the set of "good" sub-channels varies
// significantly with the tag position (multipath profile); no sub-channel
// is consistently good, which is why the decoder re-selects streams per
// transmission via preamble correlation.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace wb;
  const bool quick = bench::quick_mode(argc, argv);
  bench::print_header(
      "Figure 5", "Sub-channels with BER < 1e-2 vs tag-reader distance");

  const double distances_cm[] = {5, 10, 15, 20, 25, 30, 40, 50, 60, 70};
  std::printf("%-14s %-6s %s\n", "distance(cm)", "#good",
              "good sub-channels of antenna 0 ('#' = BER<1e-2)");
  bench::print_row_divider();

  for (double cm : distances_cm) {
    core::UplinkExperimentParams p;
    p.tag_reader_distance_m = Meters{cm / 100.0};
    p.packets_per_bit = 30.0;
    p.runs = quick ? 2 : 6;
    p.payload_bits = 40;
    // One fixed channel realisation per distance, like the paper's one
    // physical placement per distance.
    p.seed = 1000 + static_cast<std::uint64_t>(cm);
    const auto bers = core::measure_per_stream_ber(p);

    std::size_t good_total = 0;
    for (double b : bers) {
      if (b < 1e-2) ++good_total;
    }
    std::printf("%-14.0f %-6zu ", cm, good_total);
    for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
      std::printf("%c", bers[s] < 1e-2 ? '#' : '.');
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper reference: the good set shifts with every distance (and\n"
      "hence multipath profile); no sub-channel is consistently good.\n");
  return 0;
}
