// Shared helpers for the figure-reproduction benches: consistent table
// printing so bench output reads like the paper's figures, flag parsing
// (one util::Args scanner instead of per-binary strcmp loops), and an
// optional machine-readable JSON sink (--json-out, backed by
// obs::RunReport) alongside the human table.
//
// Flags every bench understands:
//   --quick          shrink run counts so the whole suite stays fast
//   --json-out FILE  write the obs::RunReport twin of the printed table
//   --threads N      sweep worker threads (default: hardware concurrency;
//                    1 = serial). Sweep output is bit-identical at any N.
//   --forensics-out FILE  (sweep benches) write the merged decode-forensics
//                    JSONL — per-task sinks merged in task-index order, so
//                    the file is bit-identical at any --threads.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "runner/thread_pool.h"
#include "util/args.h"

namespace wb::bench {

/// True if argv contains --quick (benches then shrink run counts so the
/// whole suite stays fast; full fidelity is the default).
inline bool quick_mode(int argc, char** argv) {
  return util::Args(argc, argv).flag("--quick");
}

/// Value of `--json-out FILE`, or "" when not given.
inline std::string json_out_path(int argc, char** argv) {
  return util::Args(argc, argv).str("--json-out");
}

/// Value of `--forensics-out FILE`, or "" when not given.
inline std::string forensics_out_path(int argc, char** argv) {
  return util::Args(argc, argv).str("--forensics-out");
}

/// Value of `--threads N` (0 and absent both mean "the hardware's
/// concurrency"; 1 preserves the exact serial execution path).
inline unsigned threads_arg(int argc, char** argv) {
  const auto n = util::Args(argc, argv).u64("--threads", 0);
  return n == 0 ? runner::default_threads() : static_cast<unsigned>(n);
}

/// Print a figure header in a uniform style.
inline void print_header(const char* fig, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", fig, title);
  std::printf("================================================================\n");
}

inline void print_row_divider() {
  std::printf("----------------------------------------------------------------\n");
}

/// Machine-readable twin of the printed table: benches add one named row
/// per table line, and finish() writes an obs::RunReport JSON file when
/// --json-out was given (a no-op otherwise, so the human table stays the
/// default interface).
///
/// Deliberately NOT in the report: the thread count. Sweep JSON must be
/// byte-identical across --threads values (that is the determinism
/// contract ctest enforces), so nothing scheduling-dependent may appear
/// in it.
class BenchReport {
 public:
  BenchReport(int argc, char** argv, const char* fig, const char* title)
      : path_(json_out_path(argc, argv)) {
    report_.set_meta("figure", fig);
    report_.set_meta("title", title);
    report_.set_meta("quick", quick_mode(argc, argv));
  }

  obs::RunReport::Row& add_row(std::string_view name) {
    return report_.add_row(name);
  }

  obs::RunReport& report() { return report_; }

  /// Writes the JSON report (attaching a metrics snapshot if a registry
  /// is installed). Returns false only on an actual write failure.
  bool finish() {
    if (path_.empty()) return true;
    if (const auto* m = obs::metrics()) report_.attach_metrics(*m);
    if (!report_.write_json(path_)) {
      std::fprintf(stderr, "failed to write %s\n", path_.c_str());
      return false;
    }
    std::printf("json report: %s\n", path_.c_str());
    return true;
  }

 private:
  obs::RunReport report_;
  std::string path_;
};

}  // namespace wb::bench
