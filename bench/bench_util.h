// Shared helpers for the figure-reproduction benches: consistent table
// printing so bench output reads like the paper's figures, CLI parsing for
// --quick runs, and an optional machine-readable JSON sink (--json-out,
// backed by obs::RunReport) alongside the human table.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"

namespace wb::bench {

/// True if argv contains --quick (benches then shrink run counts so the
/// whole suite stays fast; full fidelity is the default).
inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

/// Value of `--json-out FILE`, or "" when not given.
inline std::string json_out_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0) return argv[i + 1];
  }
  return "";
}

/// Print a figure header in a uniform style.
inline void print_header(const char* fig, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", fig, title);
  std::printf("================================================================\n");
}

inline void print_row_divider() {
  std::printf("----------------------------------------------------------------\n");
}

/// Machine-readable twin of the printed table: benches add one named row
/// per table line, and finish() writes an obs::RunReport JSON file when
/// --json-out was given (a no-op otherwise, so the human table stays the
/// default interface).
class BenchReport {
 public:
  BenchReport(int argc, char** argv, const char* fig, const char* title)
      : path_(json_out_path(argc, argv)) {
    report_.set_meta("figure", fig);
    report_.set_meta("title", title);
    report_.set_meta("quick", quick_mode(argc, argv) ? 1.0 : 0.0);
  }

  obs::RunReport::Row& add_row(std::string_view name) {
    return report_.add_row(name);
  }

  obs::RunReport& report() { return report_; }

  /// Writes the JSON report (attaching a metrics snapshot if a registry
  /// is installed). Returns false only on an actual write failure.
  bool finish() {
    if (path_.empty()) return true;
    if (const auto* m = obs::metrics()) report_.attach_metrics(*m);
    if (!report_.write_json(path_)) {
      std::fprintf(stderr, "failed to write %s\n", path_.c_str());
      return false;
    }
    std::printf("json report: %s\n", path_.c_str());
    return true;
  }

 private:
  obs::RunReport report_;
  std::string path_;
};

}  // namespace wb::bench
