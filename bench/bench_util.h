// Shared helpers for the figure-reproduction benches: consistent table
// printing so bench output reads like the paper's figures, plus CLI
// parsing for --quick runs.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace wb::bench {

/// True if argv contains --quick (benches then shrink run counts so the
/// whole suite stays fast; full fidelity is the default).
inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

/// Print a figure header in a uniform style.
inline void print_header(const char* fig, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", fig, title);
  std::printf("================================================================\n");
}

inline void print_row_divider() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace wb::bench
