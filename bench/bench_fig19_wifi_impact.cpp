// Reproduces Fig 19(a)/(b): the effect of a continuously modulating Wi-Fi
// Backscatter tag on ordinary Wi-Fi throughput, with the tag 5 cm and
// 30 cm from the Wi-Fi receiver and the transmitter at testbed locations
// 2-5 (location 5 suffers contention from the class next door).
//
// Paper setup (§9): 2-minute UDP transfers, default rate adaptation,
// tag continuously modulating at 100 bps / 1 kbps (a stress test — a real
// tag modulates only when queried). Expected: throughput differences stay
// within the run-to-run variance at every location.
#include <cstdio>

#include "bench_util.h"
#include "phy/geometry.h"
#include "phy/pathloss.h"
#include "phy/tag_rcs.h"
#include "phy/uplink_channel.h"
#include "wifi/link_sim.h"

namespace {

using namespace wb;

/// SNR of the transmitter->receiver link at a testbed location.
double link_snr_db(const phy::Testbed& tb, std::size_t loc) {
  const phy::PathLossModel pl;
  const double tx_dbm = 16.0;
  const Db loss =
      pl.loss_db(tb.helper_locations[loc], tb.reader, &tb.plan);
  const double noise_dbm = -90.0;  // thermal + NF over 20 MHz
  return tx_dbm - loss.value() - noise_dbm;
}

/// Tag-induced SNR ripple (dB) for a tag at `d` meters from the receiver,
/// from the same backscatter path physics as the uplink channel model.
double tag_depth_db(double d) {
  phy::UplinkChannelParams ch;
  const double g = ch.tag_leg_pathloss.amplitude_gain(Meters{d});
  const double depth = std::abs(phy::TagReflection{}.delta()) * g;
  return 20.0 * std::log10(1.0 + depth) ;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const TimeUs duration =
      (quick ? 10 : 120) * kMicrosPerSec;  // paper: 2 minutes

  const auto tb = phy::Testbed::paper_fig13();
  bench::print_header(
      "Figure 19",
      "Wi-Fi throughput with a continuously modulating tag (UDP, ARF)");

  for (double tag_cm : {5.0, 30.0}) {
    std::printf("\n(tag %.0f cm from the Wi-Fi receiver)\n", tag_cm);
    std::printf("%-10s %-10s  %-22s %-22s %-22s\n", "location", "SNR(dB)",
                "no device (Mbps)", "100 bps (Mbps)", "1 kbps (Mbps)");
    bench::print_row_divider();
    for (std::size_t loc = 0; loc < tb.helper_locations.size(); ++loc) {
      const double snr = link_snr_db(tb, loc);
      // Location 5 (index 3) shares the air with a busy classroom.
      const double busy = loc == 3 ? 0.45 : 0.05;
      std::printf("%-10zu %-10.1f ", loc + 2, snr);
      const double rates[] = {0.0, 100.0, 1000.0};
      for (double tag_rate : rates) {
        wifi::LinkSimConfig cfg;
        cfg.base_snr_db = Db{snr};
        cfg.contention_busy_frac = busy;
        cfg.tag_depth_db =
            Db{tag_rate > 0.0 ? tag_depth_db(tag_cm / 100.0) : 0.0};
        cfg.tag_bit_rate_bps = tag_rate > 0.0 ? tag_rate : 100.0;
        cfg.seed = 40'000 + loc * 97 + static_cast<std::uint64_t>(tag_rate) +
                   static_cast<std::uint64_t>(tag_cm);
        const auto r = wifi::run_link_sim(cfg, duration);
        std::printf(" %8.2f +- %-10.2f", r.mean_throughput_mbps,
                    r.stddev_throughput_mbps);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nPaper reference: rate adaptation absorbs the tag's small channel\n"
      "ripple — throughput with the tag modulating stays within the\n"
      "variance of the no-tag runs at every location (location 5 is noisy\n"
      "for all three scenarios because of adjacent-room utilisation).\n");
  return 0;
}
