// Reproduces Fig 4: probability density of *normalised* channel values for
// each of the 30 Wi-Fi sub-channels, with the tag adjacent to the reader.
//
// Paper observations (§3.2): for ~30% of sub-channels the density is
// bimodal (two Gaussians at +-1 — the two reflection states); the noise
// variance differs visibly across sub-channels; the rest of the
// sub-channels see no usable backscatter signal (multipath fades).
#include <cstdio>

#include "bench_util.h"
#include "core/uplink_sim.h"
#include "reader/conditioning.h"
#include "tag/modulator.h"
#include "util/stats.h"
#include "wifi/traffic.h"

int main(int argc, char** argv) {
  using namespace wb;
  const std::size_t packets =
      bench::quick_mode(argc, argv) ? 6'000 : 42'000;
  bench::print_header(
      "Figure 4", "PDF of normalised CSI per sub-channel (tag adjacent)");

  core::UplinkSimConfig cfg;
  cfg.channel.reader_pos = {0.0, 0.0};
  cfg.channel.tag_pos = {0.05, 0.0};
  cfg.channel.helper_pos = {3.05, 0.0};
  cfg.seed = 7;

  const double pps = 3000.0;
  const TimeUs bit_us{10'000};
  const TimeUs until =
      TimeUs{static_cast<std::int64_t>(
          static_cast<double>(packets) / pps * 1e6)} +
      TimeUs{1};

  sim::RngStream rng(cfg.seed);
  auto traffic_rng = rng.fork("traffic");
  const auto timeline =
      wifi::make_cbr_timeline(pps, until, wifi::TrafficParams{}, traffic_rng);
  BitVec alternating;
  for (std::size_t i = 0;
       bit_us * static_cast<std::int64_t>(i) < until; ++i) {
    alternating.push_back(static_cast<std::uint8_t>(i % 2));
  }
  tag::Modulator mod(alternating, bit_us, TimeUs{});
  core::UplinkSim sim(cfg);
  const auto trace = sim.run(timeline, mod);
  const auto ct =
      reader::condition(trace, reader::MeasurementSource::kCsi, TimeUs{400'000});

  // Histogram the normalised values of antenna 0's 30 sub-channels.
  std::printf("%-12s %-9s %-8s %s\n", "sub-channel", "modes", "stddev",
              "density over [-3,3] (normalised CSI)");
  bench::print_row_divider();
  std::size_t bimodal = 0;
  for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
    Histogram h(-3.0, 3.0, 48);
    RunningStats stats;
    for (double v : ct.streams[s]) {
      h.push(v);
      stats.push(v);
    }
    const std::size_t modes = h.count_modes(0.35);
    if (modes >= 2) ++bimodal;
    std::printf("%-12zu %-9zu %-8.2f ", s, modes, stats.stddev());
    // Sparkline of the density.
    double peak = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b) {
      peak = std::max(peak, h.density(b));
    }
    static const char* glyphs = " .:-=+*#%@";
    for (std::size_t b = 0; b < h.bins(); ++b) {
      const double f = peak > 0 ? h.density(b) / peak : 0.0;
      std::printf("%c", glyphs[std::min<std::size_t>(
                            9, static_cast<std::size_t>(f * 10.0))]);
    }
    std::printf("\n");
  }
  std::printf("\nbimodal sub-channels: %zu / %zu (%.0f%%)\n", bimodal,
              phy::kNumSubchannels,
              100.0 * static_cast<double>(bimodal) /
                  static_cast<double>(phy::kNumSubchannels));
  std::printf(
      "\nPaper reference: ~30%% of sub-channels show two Gaussians centred\n"
      "at +-1; noise variance differs across sub-channels; the rest see a\n"
      "very weak backscatter effect due to multipath.\n");
  return 0;
}
