#include "phy/drift.h"

#include <cassert>
#include <cmath>

namespace wb::phy {

OuProcess::OuProcess(double tau_s, double sigma, sim::RngStream rng)
    : tau_s_(tau_s), sigma_(sigma), rng_(rng) {
  assert(tau_s_ > 0.0);
  assert(sigma_ >= 0.0);
}

double OuProcess::at(TimeUs t) {
  if (!started_) {
    started_ = true;
    last_t_ = t;
    // Start from the stationary distribution so experiments have no
    // warm-up transient.
    x_ = rng_.normal(0.0, sigma_);
    return x_;
  }
  assert(t >= last_t_ && "OU process must be sampled in time order");
  const double dt_s =
      static_cast<double>(t - last_t_) / static_cast<double>(kMicrosPerSec);
  last_t_ = t;
  if (dt_s <= 0.0) return x_;
  // Exact discretisation of the OU transition kernel.
  const double a = std::exp(-dt_s / tau_s_);
  const double noise_sd = sigma_ * std::sqrt(1.0 - a * a);
  x_ = a * x_ + rng_.normal(0.0, noise_sd);
  return x_;
}

ChannelDrift::ChannelDrift(const Params& p, sim::RngStream rng) {
  antenna_.reserve(kNumAntennas);
  subchannel_.reserve(kNumAntennas);
  for (std::size_t a = 0; a < kNumAntennas; ++a) {
    antenna_.emplace_back(p.antenna_tau_s, p.antenna_sigma,
                          rng.fork("drift-ant", a));
    std::vector<OuProcess> row;
    row.reserve(kNumSubchannels);
    for (std::size_t s = 0; s < kNumSubchannels; ++s) {
      row.emplace_back(p.subchannel_tau_s, p.subchannel_sigma,
                       rng.fork("drift-sub", a * kNumSubchannels + s));
    }
    subchannel_.push_back(std::move(row));
  }
}

double ChannelDrift::at(std::size_t antenna, std::size_t subchannel,
                        TimeUs t) {
  return antenna_.at(antenna).at(t) +
         subchannel_.at(antenna).at(subchannel).at(t);
}

}  // namespace wb::phy
