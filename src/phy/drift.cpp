#include "phy/drift.h"

#include <cmath>

#include "util/check.h"

namespace wb::phy {

OuProcess::OuProcess(double tau_s, double sigma, sim::RngStream rng)
    : tau_s_(tau_s), sigma_(sigma), rng_(rng) {
  WB_REQUIRE(tau_s_ > 0.0, "OU relaxation time must be positive");
  WB_REQUIRE(sigma_ >= 0.0);
}

double OuProcess::at(TimeUs t_us) {
  if (!started_) {
    started_ = true;
    last_t_ = t_us;
    // Start from the stationary distribution so experiments have no
    // warm-up transient.
    x_ = rng_.normal(0.0, sigma_);
    return x_;
  }
  // Out-of-order sampling is supported: dt <= 0 returns the current state
  // without evolving (inventory rounds restart their timelines at t = 0
  // against one long-lived channel).
  const double dt_s = (t_us - last_t_).seconds();
  last_t_ = t_us;
  if (dt_s <= 0.0) return x_;
  // Exact discretisation of the OU transition kernel.
  const double a = std::exp(-dt_s / tau_s_);
  const double noise_sd = sigma_ * std::sqrt(1.0 - a * a);
  x_ = a * x_ + rng_.normal(0.0, noise_sd);
  return x_;
}

ChannelDrift::ChannelDrift(const Params& p, sim::RngStream rng) {
  antenna_.reserve(kNumAntennas);
  subchannel_.reserve(kNumAntennas);
  for (std::size_t a = 0; a < kNumAntennas; ++a) {
    antenna_.emplace_back(p.antenna_tau_s, p.antenna_sigma,
                          rng.fork("drift-ant", a));
    std::vector<OuProcess> row;
    row.reserve(kNumSubchannels);
    for (std::size_t s = 0; s < kNumSubchannels; ++s) {
      row.emplace_back(p.subchannel_tau_s, p.subchannel_sigma,
                       rng.fork("drift-sub", a * kNumSubchannels + s));
    }
    subchannel_.push_back(std::move(row));
  }
}

double ChannelDrift::at(std::size_t antenna, std::size_t subchannel,
                        TimeUs t_us) {
  WB_REQUIRE(antenna < kNumAntennas);
  WB_REQUIRE(subchannel < kNumSubchannels);
  return antenna_[antenna].at(t_us) +
         subchannel_[antenna][subchannel].at(t_us);
}

}  // namespace wb::phy
