// The full uplink channel: what a Wi-Fi reader's radio front end receives,
// per antenna and per sub-channel, when the helper transmits a packet while
// the backscatter tag sits in one of its two switch states.
//
//   H[a][s](t, b) = ( D[a][s] + b * Delta[a][s] ) * (1 + drift[a][s](t))
//
// where D is the direct helper->reader channel, Delta the two-state
// backscatter contrast through the helper->tag->reader product channel, b
// the tag switch state, and drift the slow environmental variation. All
// gains are complex amplitudes in sqrt-milliwatt units, so |H|^2 is
// received power per sub-channel in mW.
#pragma once

#include <array>
#include <complex>
#include <memory>

#include "phy/constants.h"
#include "phy/drift.h"
#include "phy/geometry.h"
#include "phy/multipath.h"
#include "phy/pathloss.h"
#include "phy/tag_rcs.h"
#include "sim/rng.h"
#include "util/units.h"

namespace wb::phy {

/// Complex channel truth for one packet: [antenna][sub-channel].
using CsiMatrix = std::array<FrequencyResponse, kNumAntennas>;

struct UplinkChannelParams {
  Vec2 helper_pos{3.0, 0.0};
  Vec2 reader_pos{0.0, 0.0};
  Vec2 tag_pos{0.05, 0.0};
  const FloorPlan* plan = nullptr;  ///< optional walls (not owned)

  Dbm helper_tx_power_dbm{16.0};

  PathLossModel pathloss{};

  /// Path loss of the tag->reader leg alone, separated out because this
  /// leg spans 5-210 cm — from inside the antenna near field out to a few
  /// wavelengths — where the effective decay differs from the far-field
  /// room-scale model used for the helper legs.
  PathLossModel tag_leg_pathloss{.exponent = 2.0,
                                 .near_field_m = Meters{0.05}};

  MultipathProfile multipath{};
  ChannelDrift::Params drift{};
  TagReflection tag{};

  /// Spatial coherence distance of the backscatter perturbation (meters).
  /// When the tag is much closer to the reader than this, the
  /// helper->tag->reader path is the direct path plus a tiny detour, so
  /// the perturbation is *correlated* with the direct channel — coherent
  /// across sub-channels, which is what makes the total-power (RSSI)
  /// modulation visible at close range. As the tag moves away the paths
  /// decorrelate (rho = exp(-d_tr / coherence)), the per-sub-channel
  /// phases randomise, RSSI modulation washes out, and CSI frequency
  /// diversity (Fig 4/5) fully develops.
  Meters coherence_dist_m{0.35};

  /// Coherent fraction at zero separation. Even with the tag touching the
  /// reader, part of the backscatter arrives through its own reflections,
  /// so some sub-channel diversity remains (Fig 4 shows bimodal PDFs on
  /// only a subset of sub-channels even with the tag adjacent).
  double coherence_max = 0.7;
};

/// A static channel realisation plus its drift process. One instance
/// corresponds to one physical placement of the three devices; re-create
/// (with a forked RNG) to model moving a device.
class UplinkChannel {
 public:
  UplinkChannel(const UplinkChannelParams& params, sim::RngStream rng);

  /// Channel truth seen by the reader for a packet at time t_us with the
  /// tag in the given switch state. Must be called with non-decreasing
  /// times (drift is a stochastic process).
  CsiMatrix response(bool tag_reflecting, TimeUs t_us);

  /// Static direct-path component (no tag, no drift); for tests/analysis.
  const CsiMatrix& direct() const { return direct_; }

  /// Static backscatter contrast Delta; for tests/analysis.
  const CsiMatrix& delta() const { return delta_; }

  /// Mean over antennas/sub-channels of |Delta|/|D|: the relative
  /// modulation depth, the quantity that decays with tag-reader distance.
  double mean_relative_depth() const;

  const UplinkChannelParams& params() const { return params_; }

 private:
  UplinkChannelParams params_;
  CsiMatrix direct_{};
  CsiMatrix delta_{};
  std::unique_ptr<ChannelDrift> drift_;
};

}  // namespace wb::phy
