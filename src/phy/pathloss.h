// Log-distance path-loss model with wall penetration, the standard indoor
// propagation abstraction. All experiments in the paper happen indoors at
// 2.4 GHz over 0.05-9 m, squarely inside this model's regime.
#pragma once

#include "phy/geometry.h"

namespace wb::phy {

/// Log-distance path loss: PL(d) = PL(d0) + 10 n log10(d/d0) [+ walls].
struct PathLossModel {
  /// Path-loss exponent; ~2.0 free space, 1.8-2.2 indoor LOS.
  double exponent = 2.0;

  /// Loss at the 1 m reference distance. 40 dB is the 2.4 GHz
  /// free-space value.
  Db ref_loss_db{40.0};

  /// Distances below this are clamped via d_eff = hypot(d, near_field_m):
  /// the far-field 1/d law does not hold inside the antenna near field, and
  /// the paper's closest measurements (5 cm) are within it.
  Meters near_field_m{0.08};

  /// Loss over distance d, without walls.
  Db loss_db(Meters d) const;

  /// Loss in dB between two points, including wall penetration from `plan`
  /// (pass nullptr for open space).
  Db loss_db(Vec2 from, Vec2 to, const FloorPlan* plan) const;

  /// Linear *amplitude* gain over distance d: 10^(-loss/20).
  double amplitude_gain(Meters d) const;

  /// Linear amplitude gain between two points with walls.
  double amplitude_gain(Vec2 from, Vec2 to, const FloorPlan* plan) const;
};

}  // namespace wb::phy
