#include "phy/multi_tag_channel.h"

#include <cmath>

#include "util/check.h"

namespace wb::phy {

MultiTagUplinkChannel::MultiTagUplinkChannel(
    const UplinkChannelParams& base, std::span<const TagPlacement> tags,
    sim::RngStream rng) {
  WB_REQUIRE(!tags.empty(), "a multi-tag channel needs at least one tag");
  WB_REQUIRE(distance(base.helper_pos, base.reader_pos) > Meters{},
             "helper and reader must not be co-located");
  const double tx_amp =
      std::sqrt(base.helper_tx_power_dbm.to_mw().value());
  const double g_hr = base.pathloss.amplitude_gain(
      base.helper_pos, base.reader_pos, base.plan);

  // Direct multipath per antenna (shared by all tags' coherent parts).
  std::vector<FrequencyResponse> f_d(kNumAntennas);
  for (std::size_t a = 0; a < kNumAntennas; ++a) {
    auto r = rng.fork("mp-direct", a);
    f_d[a] = draw_frequency_response(base.multipath, r);
    for (std::size_t s = 0; s < kNumSubchannels; ++s) {
      direct_[a][s] = tx_amp * g_hr * f_d[a][s];
    }
  }

  deltas_.reserve(tags.size());
  for (std::size_t i = 0; i < tags.size(); ++i) {
    const auto& tag = tags[i];
    const double g_ht =
        base.pathloss.amplitude_gain(base.helper_pos, tag.pos, base.plan);
    const double g_tr = base.tag_leg_pathloss.amplitude_gain(
        tag.pos, base.reader_pos, base.plan);
    const Meters d_tr = distance(tag.pos, base.reader_pos);
    const double rho =
        base.coherence_dist_m > Meters{}
            ? base.coherence_max *
                  std::exp(-(d_tr / base.coherence_dist_m))
            : 0.0;
    const double rho_c = std::sqrt(std::max(0.0, 1.0 - rho * rho));
    const auto rcs_delta = tag.reflection.delta();
    const auto rcs_absorb = tag.reflection.state_factor(false);

    auto rng_ht = rng.fork("mp-helper-tag", i);
    const FrequencyResponse f_ht =
        draw_frequency_response(base.multipath, rng_ht);

    CsiMatrix delta{};
    for (std::size_t a = 0; a < kNumAntennas; ++a) {
      auto rng_tr = rng.fork("mp-tag-reader", i * kNumAntennas + a);
      const FrequencyResponse f_tr =
          draw_frequency_response(base.multipath, rng_tr);
      for (std::size_t s = 0; s < kNumSubchannels; ++s) {
        const Complex f_bs = rho * f_d[a][s] + rho_c * f_ht[s] * f_tr[s];
        // Absorb-state residual folds into the static direct component.
        direct_[a][s] += tx_amp * g_ht * g_tr * rcs_absorb * f_bs;
        delta[a][s] = tx_amp * g_ht * g_tr * rcs_delta * f_bs;
      }
    }
    deltas_.push_back(delta);
  }

  drift_ = std::make_unique<ChannelDrift>(base.drift, rng.fork("drift"));
}

CsiMatrix MultiTagUplinkChannel::response(
    std::span<const std::uint8_t> states, TimeUs t_us) {
  WB_REQUIRE(states.size() == deltas_.size(),
             "one switch state per tag is required");
  CsiMatrix out{};
  for (std::size_t a = 0; a < kNumAntennas; ++a) {
    for (std::size_t s = 0; s < kNumSubchannels; ++s) {
      Complex h = direct_[a][s];
      for (std::size_t i = 0; i < deltas_.size(); ++i) {
        if (states[i] != 0) h += deltas_[i][a][s];
      }
      out[a][s] = h * (1.0 + drift_->at(a, s, t_us));
    }
  }
  return out;
}

}  // namespace wb::phy
