// Frequency-selective multipath: a tapped-delay-line (TDL) channel whose
// frequency response across the 20 MHz Wi-Fi band gives each of the 30
// reported sub-channels a different complex gain.
//
// This is the mechanism behind the paper's Fig 4/5 observations: the tag's
// reflection arrives at the reader through its own multipath, so on some
// sub-channels it adds nearly in quadrature to the direct path (invisible
// in amplitude CSI) and on others nearly in phase (strongly visible) — and
// which sub-channels are "good" changes with every device position.
#pragma once

#include <array>
#include <complex>
#include <cstddef>

#include "phy/constants.h"
#include "sim/rng.h"

namespace wb::phy {

using Complex = std::complex<double>;

/// Per-sub-channel complex gains of one propagation path for one antenna.
using FrequencyResponse = std::array<Complex, kNumSubchannels>;

/// Parameters of the indoor multipath profile.
struct MultipathProfile {
  /// Number of discrete taps (first tap is the direct ray).
  std::size_t taps = 6;

  /// RMS delay spread, seconds. 50-100 ns is typical for offices; larger
  /// spread -> smaller coherence bandwidth -> more sub-channel diversity.
  double delay_spread_s = 70e-9;

  /// Ratio of direct-ray power to total scattered power (Rician K factor,
  /// linear). Higher = more benign channel.
  double rician_k = 2.0;
};

/// Draw one static multipath realisation and return its frequency response
/// sampled at the sub-channel centers. The result has unit average power
/// (E|H|^2 == 1) so path loss can be applied multiplicatively.
FrequencyResponse draw_frequency_response(const MultipathProfile& profile,
                                          sim::RngStream& rng);

/// Average power of a response: mean over sub-channels of |H|^2.
double average_power(const FrequencyResponse& h);

/// Element-wise product (used to chain path segments, e.g.
/// helper->tag times tag->reader).
FrequencyResponse hadamard(const FrequencyResponse& a,
                           const FrequencyResponse& b);

}  // namespace wb::phy
