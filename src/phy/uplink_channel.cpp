#include "phy/uplink_channel.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace wb::phy {

UplinkChannel::UplinkChannel(const UplinkChannelParams& params,
                             sim::RngStream rng)
    : params_(params) {
  WB_REQUIRE(distance(params.helper_pos, params.reader_pos) > Meters{},
             "helper and reader must not be co-located");
  WB_REQUIRE(distance(params.helper_pos, params.tag_pos) > Meters{},
             "helper and tag must not be co-located");
  WB_REQUIRE(params.coherence_dist_m >= Meters{});
  WB_REQUIRE(params.coherence_max >= 0.0 && params.coherence_max <= 1.0);
  const double tx_amp =
      std::sqrt(params.helper_tx_power_dbm.to_mw().value());

  // Straight-line amplitude gains of the three legs, including walls.
  const double g_hr = params.pathloss.amplitude_gain(
      params.helper_pos, params.reader_pos, params.plan);
  const double g_ht = params.pathloss.amplitude_gain(
      params.helper_pos, params.tag_pos, params.plan);
  const double g_tr = params.tag_leg_pathloss.amplitude_gain(
      params.tag_pos, params.reader_pos, params.plan);

  // The helper->tag multipath is common to all reader antennas (one tag
  // antenna); the direct and tag->reader multipath differ per antenna.
  auto rng_ht = rng.fork("mp-helper-tag");
  const FrequencyResponse f_ht =
      draw_frequency_response(params.multipath, rng_ht);

  const std::complex<double> rcs_delta = params.tag.delta();

  // Spatial coherence between the backscatter detour and the direct path:
  // high when the tag is close to the reader, vanishing with distance.
  const Meters d_tr = distance(params.tag_pos, params.reader_pos);
  const double rho =
      params.coherence_dist_m > Meters{}
          ? params.coherence_max *
                std::exp(-(d_tr / params.coherence_dist_m))
          : 0.0;
  const double rho_c = std::sqrt(std::max(0.0, 1.0 - rho * rho));

  for (std::size_t a = 0; a < kNumAntennas; ++a) {
    auto rng_d = rng.fork("mp-direct", a);
    auto rng_tr = rng.fork("mp-tag-reader", a);
    const FrequencyResponse f_d =
        draw_frequency_response(params.multipath, rng_d);
    const FrequencyResponse f_tr =
        draw_frequency_response(params.multipath, rng_tr);

    for (std::size_t s = 0; s < kNumSubchannels; ++s) {
      // Direct leg includes the tag's absorb-state residual reflection
      // folded in (constant, so it only shifts the baseline the decoder's
      // conditioning removes anyway).
      // Backscatter channel shape: a rho-weighted copy of the direct
      // multipath (tiny detour at close range) plus an independent
      // product-channel component (fully developed at range).
      const Complex f_bs = rho * f_d[s] + rho_c * f_ht[s] * f_tr[s];
      direct_[a][s] =
          tx_amp * (g_hr * f_d[s] + g_ht * g_tr *
                                        params.tag.state_factor(false) *
                                        f_bs);
      delta_[a][s] = tx_amp * g_ht * g_tr * rcs_delta * f_bs;
    }
  }

  drift_ = std::make_unique<ChannelDrift>(params.drift, rng.fork("drift"));
}

CsiMatrix UplinkChannel::response(bool tag_reflecting, TimeUs t_us) {
  if (auto* m = obs::metrics()) {
    m->counter("phy.channel.responses_total").add(1);
    if (tag_reflecting) {
      m->counter("phy.channel.reflect_responses_total").add(1);
    }
  }
  CsiMatrix out{};
  for (std::size_t a = 0; a < kNumAntennas; ++a) {
    for (std::size_t s = 0; s < kNumSubchannels; ++s) {
      Complex h = direct_[a][s];
      if (tag_reflecting) h += delta_[a][s];
      out[a][s] = h * (1.0 + drift_->at(a, s, t_us));
    }
  }
  return out;
}

double UplinkChannel::mean_relative_depth() const {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t a = 0; a < kNumAntennas; ++a) {
    for (std::size_t s = 0; s < kNumSubchannels; ++s) {
      const double d = std::abs(direct_[a][s]);
      if (d > 0.0) {
        acc += std::abs(delta_[a][s]) / d;
        ++n;
      }
    }
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

}  // namespace wb::phy
