#include "phy/multipath.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.h"

namespace wb::phy {

FrequencyResponse draw_frequency_response(const MultipathProfile& profile,
                                          sim::RngStream& rng) {
  WB_REQUIRE(profile.taps >= 1, "a channel needs at least the direct tap");
  WB_REQUIRE(profile.delay_spread_s >= 0.0);
  WB_REQUIRE(profile.rician_k >= 0.0);
  // Tap delays: first tap at 0 (direct ray), the rest exponentially spaced
  // over the delay spread. Tap powers follow an exponential power-delay
  // profile; the direct tap carries the Rician line-of-sight component.
  struct Tap {
    Complex gain;
    double delay_s;
  };
  std::vector<Tap> taps;
  taps.reserve(profile.taps);

  const double k = profile.rician_k;
  const double scattered_total = 1.0 / (1.0 + k);
  const double los_power = k / (1.0 + k);

  // Exponential PDP: power of scattered tap i proportional to exp(-i).
  double pdp_norm = 0.0;
  for (std::size_t i = 0; i < profile.taps; ++i) {
    pdp_norm += std::exp(-static_cast<double>(i));
  }

  for (std::size_t i = 0; i < profile.taps; ++i) {
    const double p =
        scattered_total * std::exp(-static_cast<double>(i)) / pdp_norm;
    const double sigma = std::sqrt(p / 2.0);
    Complex g{rng.normal(0.0, sigma), rng.normal(0.0, sigma)};
    double delay = 0.0;
    if (i > 0) {
      // Random delay within the tap's slot of the delay-spread window.
      const double slot = 2.0 * profile.delay_spread_s /
                          static_cast<double>(profile.taps);
      delay = (static_cast<double>(i) - rng.uniform()) * slot;
    } else {
      // Line-of-sight component with a random absolute phase.
      const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
      g += std::sqrt(los_power) * Complex{std::cos(phi), std::sin(phi)};
    }
    taps.push_back(Tap{g, delay});
  }

  FrequencyResponse h{};
  for (std::size_t s = 0; s < kNumSubchannels; ++s) {
    // Sub-channel center offset from band center, Hz.
    const double f = (static_cast<double>(s) -
                      static_cast<double>(kNumSubchannels - 1) / 2.0) *
                     kSubchannelSpacingHz.value();
    Complex acc{0.0, 0.0};
    for (const Tap& t : taps) {
      const double theta = -2.0 * std::numbers::pi * f * t.delay_s;
      acc += t.gain * Complex{std::cos(theta), std::sin(theta)};
    }
    h[s] = acc;
  }

  // Normalise to unit average power so callers can apply path loss
  // multiplicatively without tracking the draw's random total power.
  const double p = average_power(h);
  if (p > 0.0) {
    const double scale = 1.0 / std::sqrt(p);
    for (Complex& c : h) c *= scale;
  }
  return h;
}

double average_power(const FrequencyResponse& h) {
  double p = 0.0;
  for (const Complex& c : h) p += std::norm(c);
  return p / static_cast<double>(h.size());
}

FrequencyResponse hadamard(const FrequencyResponse& a,
                           const FrequencyResponse& b) {
  FrequencyResponse out{};
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

}  // namespace wb::phy
