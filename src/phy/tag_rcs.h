// Two-state radar-cross-section model of the backscatter tag antenna.
//
// The tag's RF switch toggles the antenna termination between an absorbing
// and a reflecting impedance (paper §3.1). What a remote receiver sees is
// the *difference* between the two states' reflection coefficients, scaled
// by the antenna's scattering aperture: the patch array in Fig 9 was
// designed to maximise exactly this contrast.
#pragma once

#include <complex>

#include "util/units.h"

namespace wb::phy {

struct TagReflection {
  /// Complex reflection coefficient in the absorbing state. A perfectly
  /// matched load would be 0; real switches leak a little.
  std::complex<double> gamma_absorb{0.05, 0.0};

  /// Complex reflection coefficient in the reflecting state. |gamma| <= 1.
  std::complex<double> gamma_reflect{0.95, 0.0};

  /// Scattering gain of the antenna (amplitude domain): how efficiently
  /// incident energy is re-radiated. The prototype's six-patch array gives
  /// it a relatively high value for its size; this is the main calibration
  /// knob tying simulated uplink range to the paper's.
  Db scatter_gain_db{7.0};

  /// Effective complex amplitude factor applied to the
  /// helper->tag->reader path in a given switch state.
  std::complex<double> state_factor(bool reflecting) const {
    const double g = scatter_gain_db.to_amplitude();
    return g * (reflecting ? gamma_reflect : gamma_absorb);
  }

  /// Contrast between the two states (what the decoder ultimately sees).
  std::complex<double> delta() const {
    return scatter_gain_db.to_amplitude() * (gamma_reflect - gamma_absorb);
  }
};

}  // namespace wb::phy
