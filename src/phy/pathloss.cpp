#include "phy/pathloss.h"

#include <cmath>

#include "util/check.h"
#include "util/units.h"

namespace wb::phy {

Db PathLossModel::loss_db(Meters d) const {
  WB_REQUIRE(d >= Meters{}, "distance must be non-negative");
  WB_REQUIRE(exponent > 0.0, "path-loss exponent must be positive");
  const double d_eff = std::hypot(d.value(), near_field_m.value());
  WB_REQUIRE(d_eff > 0.0,
             "a zero distance needs a positive near-field clamp");
  return ref_loss_db + Db{10.0 * exponent * std::log10(d_eff)};
}

Db PathLossModel::loss_db(Vec2 from, Vec2 to,
                          const FloorPlan* plan) const {
  Db loss = loss_db(distance(from, to));
  if (plan != nullptr) loss += plan->wall_loss_db(from, to);
  return loss;
}

double PathLossModel::amplitude_gain(Meters d) const {
  return (-loss_db(d)).to_amplitude();
}

double PathLossModel::amplitude_gain(Vec2 from, Vec2 to,
                                     const FloorPlan* plan) const {
  return (-loss_db(from, to, plan)).to_amplitude();
}

}  // namespace wb::phy
