#include "phy/pathloss.h"

#include <cmath>

#include "util/check.h"
#include "util/units.h"

namespace wb::phy {

double PathLossModel::loss_db(double d) const {
  WB_REQUIRE(d >= 0.0, "distance must be non-negative");
  WB_REQUIRE(exponent > 0.0, "path-loss exponent must be positive");
  const double d_eff = std::hypot(d, near_field_m);
  WB_REQUIRE(d_eff > 0.0,
             "a zero distance needs a positive near-field clamp");
  return ref_loss_db + 10.0 * exponent * std::log10(d_eff);
}

double PathLossModel::loss_db(Vec2 from, Vec2 to,
                              const FloorPlan* plan) const {
  double loss = loss_db(distance(from, to));
  if (plan != nullptr) loss += plan->wall_loss_db(from, to);
  return loss;
}

double PathLossModel::amplitude_gain(double d) const {
  return db_to_amplitude(-loss_db(d));
}

double PathLossModel::amplitude_gain(Vec2 from, Vec2 to,
                                     const FloorPlan* plan) const {
  return db_to_amplitude(-loss_db(from, to, plan));
}

}  // namespace wb::phy
