#include "phy/geometry.h"

namespace wb::phy {
namespace {

double cross(Vec2 o, Vec2 a, Vec2 b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

int sign(double v) {
  if (v > 0) return 1;
  if (v < 0) return -1;
  return 0;
}

}  // namespace

bool segments_intersect(Vec2 p, Vec2 q, Vec2 a, Vec2 b) {
  const int d1 = sign(cross(p, q, a));
  const int d2 = sign(cross(p, q, b));
  const int d3 = sign(cross(a, b, p));
  const int d4 = sign(cross(a, b, q));
  if (d1 != d2 && d3 != d4) return true;
  // Collinear touching cases: treat as crossing (conservative attenuation).
  auto on_segment = [](Vec2 s, Vec2 e, Vec2 pt) {
    return cross(s, e, pt) == 0.0 && pt.x >= std::min(s.x, e.x) &&
           pt.x <= std::max(s.x, e.x) && pt.y >= std::min(s.y, e.y) &&
           pt.y <= std::max(s.y, e.y);
  };
  return on_segment(p, q, a) || on_segment(p, q, b) || on_segment(a, b, p) ||
         on_segment(a, b, q);
}

Db FloorPlan::wall_loss_db(Vec2 p, Vec2 q) const {
  Db loss{};
  for (const Wall& w : walls_) {
    if (segments_intersect(p, q, w.a, w.b)) loss += w.attenuation_db;
  }
  return loss;
}

Testbed Testbed::paper_fig13() {
  Testbed t;
  t.reader = {0.0, 0.0};
  t.tag = {0.05, 0.0};  // 5 cm from the reader, as in §7.3
  // Helper locations 2-5. Distances from the tag span 3-9 m; location 5 is
  // in the next room, separated by a wall running along x = 7 m.
  t.helper_locations = {
      Vec2{3.0, 0.5},   // location 2: 3 m, LOS
      Vec2{4.2, -1.5},  // location 3: ~4.5 m, LOS
      Vec2{5.5, 2.0},   // location 4: ~5.9 m, LOS
      Vec2{8.8, 1.5},   // location 5: ~8.9 m, NLOS (other room)
  };
  t.plan.add_wall(Wall{{7.0, -6.0}, {7.0, 6.0}, Db{7.0}});
  return t;
}

}  // namespace wb::phy
