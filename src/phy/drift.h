// Slow temporal channel drift caused by environmental mobility (people
// walking, doors, HVAC). Modelled as an Ornstein-Uhlenbeck process per
// antenna with a small per-sub-channel component.
//
// This drift is why the decoder's first step (paper §3.2) subtracts a
// 400 ms moving average: over a bit period the drift is nearly constant,
// but over seconds it wanders by more than the backscatter modulation
// depth.
#pragma once

#include <array>
#include <vector>

#include "phy/constants.h"
#include "sim/rng.h"
#include "util/units.h"

namespace wb::phy {

/// Scalar Ornstein-Uhlenbeck process sampled at arbitrary (monotone)
/// times: dx = -x/tau dt + sigma sqrt(2/tau) dW, stationary stddev sigma.
class OuProcess {
 public:
  /// tau: relaxation time (seconds); sigma: stationary standard deviation.
  OuProcess(double tau_s, double sigma, sim::RngStream rng);

  /// Value at absolute time t_us (microseconds). Times must be
  /// non-decreasing across calls.
  double at(TimeUs t_us);

  double sigma() const { return sigma_; }

 private:
  double tau_s_;
  double sigma_;
  sim::RngStream rng_;
  TimeUs last_t_{0};
  double x_ = 0.0;
  bool started_ = false;
};

/// Drift state for a full CSI matrix: a common per-antenna component (the
/// dominant effect: body shadowing moves whole-antenna gain) plus an
/// independent small per-sub-channel component.
class ChannelDrift {
 public:
  struct Params {
    double antenna_tau_s = 2.0;       ///< time constant of per-antenna drift
    double antenna_sigma = 0.03;      ///< stationary stddev (relative units)
    double subchannel_tau_s = 5.0;    ///< per-sub-channel drift time constant
    double subchannel_sigma = 0.008;  ///< per-sub-channel stddev
  };

  ChannelDrift(const Params& p, sim::RngStream rng);

  /// Additive amplitude drift for (antenna, sub-channel) at time t_us.
  /// Callers must query with non-decreasing times.
  double at(std::size_t antenna, std::size_t subchannel, TimeUs t_us);

 private:
  std::vector<OuProcess> antenna_;                   // size kNumAntennas
  std::vector<std::vector<OuProcess>> subchannel_;   // [ant][subch]
};

}  // namespace wb::phy
