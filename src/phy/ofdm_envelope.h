// Instantaneous-envelope model of a Wi-Fi OFDM burst, as seen by the tag's
// analog envelope detector on the downlink.
//
// An OFDM symbol is a sum of many independently modulated subcarriers, so
// its complex baseband sample is very nearly Gaussian; the instantaneous
// power is therefore exponentially distributed around the mean received
// power, with the high peak-to-average ratio the paper leans on (§4.2):
// "the average energy in the Wi-Fi signal is small, with occasional peaks
// spread out during the transmission." The tag's peak detector keys on
// those peaks rather than the average.
#pragma once

#include <cmath>

#include "sim/rng.h"
#include "util/units.h"

namespace wb::phy {

/// One *instantaneous* received-power sample (mW) of an OFDM burst whose
/// average received power is `mean_power_mw`. Exponential law == Rayleigh
/// envelope == complex-Gaussian baseband.
inline double draw_ofdm_raw_power_sample(Milliwatts mean_power_mw,
                                         sim::RngStream& rng) {
  return rng.exponential(mean_power_mw.value());
}

/// A detector-bandwidth-limited power sample: the diode's video bandwidth
/// (~1 MHz) is far below the 20 MHz signal bandwidth, so each microsecond
/// the detector effectively averages ~20 independent envelope samples. The
/// averaged power is Gamma(k)/k-distributed; we use its normal
/// approximation (relative std 1/sqrt(k), k = 16), clamped non-negative.
inline double draw_ofdm_power_sample(Milliwatts mean_power_mw,
                                     sim::RngStream& rng) {
  constexpr double kRelStd = 0.25;  // 1/sqrt(16)
  const double v = mean_power_mw.value() * (1.0 + kRelStd * rng.normal());
  return v > 0.0 ? v : 0.0;
}

/// One instantaneous envelope (amplitude, sqrt-mW) sample of the same.
inline double draw_ofdm_envelope_sample(Milliwatts mean_power_mw,
                                        sim::RngStream& rng) {
  return std::sqrt(draw_ofdm_raw_power_sample(mean_power_mw, rng));
}

/// Peak-to-average power ratio exceeded with probability p by a single
/// exponential power sample: PAPR(p) = -ln(p). Used in tests to sanity
/// check the model (e.g. 1% of samples exceed ~6.6 dB above average).
inline double papr_exceeded_with_probability(double p) {
  return -std::log(p);
}

}  // namespace wb::phy
