// Dimension constants for the simulated 802.11n PHY, matching the hardware
// the paper measures with (Intel Wi-Fi Link 5300 + Linux CSI tool).
#pragma once

#include <cstddef>

#include "util/units.h"

namespace wb::phy {

/// The Intel 5300 CSI tool reports channel state for 30 subcarrier groups
/// ("sub-channels" in the paper: 60 subcarriers reported in adjacent pairs).
inline constexpr std::size_t kNumSubchannels = 30;

/// The 5300 is a 3x3 MIMO NIC; the paper uses all three receive antennas
/// (one of which chronically reports low CSI, see §7.1).
inline constexpr std::size_t kNumAntennas = 3;

/// 20 MHz Wi-Fi channel.
inline constexpr Hertz kBandwidthHz{20e6};

/// Frequency spacing between the centers of adjacent reported
/// sub-channels across the 20 MHz band.
inline constexpr Hertz kSubchannelSpacingHz =
    kBandwidthHz / static_cast<double>(kNumSubchannels);

}  // namespace wb::phy
