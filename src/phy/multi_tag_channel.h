// Uplink channel with several backscatter tags in the field at once.
//
// Each tag contributes its own two-state perturbation through its own
// helper->tag->reader product path; the reader sees the superposition:
//
//   H[a][s](t, b_1..b_N) = ( D[a][s] + sum_i b_i * Delta_i[a][s] )
//                          * (1 + drift[a][s](t))
//
// This is the physical substrate of the paper's §2 note that multiple
// tags are separated with an EPC Gen-2-style inventory protocol: when two
// tags answer in the same slot their perturbations superpose and the
// reader's CRC rejects the garbled frame (a collision), exactly like
// colliding RFID replies.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "phy/uplink_channel.h"

namespace wb::phy {

/// One tag's placement and RF personality.
struct TagPlacement {
  Vec2 pos{0.1, 0.0};
  TagReflection reflection{};
};

class MultiTagUplinkChannel {
 public:
  /// `base.tag_pos` / `base.tag` are ignored; tags come from `tags`.
  MultiTagUplinkChannel(const UplinkChannelParams& base,
                        std::span<const TagPlacement> tags,
                        sim::RngStream rng);

  /// Channel truth with per-tag switch states (`states.size() ==
  /// num_tags()`, nonzero = reflecting). Call with non-decreasing times.
  CsiMatrix response(std::span<const std::uint8_t> states, TimeUs t_us);

  std::size_t num_tags() const { return deltas_.size(); }
  const CsiMatrix& direct() const { return direct_; }
  const CsiMatrix& delta(std::size_t tag) const { return deltas_.at(tag); }

 private:
  CsiMatrix direct_{};
  std::vector<CsiMatrix> deltas_;
  std::unique_ptr<ChannelDrift> drift_;
};

}  // namespace wb::phy
