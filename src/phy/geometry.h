// 2-D testbed geometry: device positions and walls. Reproduces the paper's
// Fig 13 office testbed, where helper locations 2-4 are line-of-sight in
// the same room and location 5 sits in an adjacent room behind a wall.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "util/units.h"

namespace wb::phy {

/// A point in the testbed plane, meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

inline Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
inline Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }

inline Meters distance(Vec2 a, Vec2 b) {
  return Meters{std::hypot(a.x - b.x, a.y - b.y)};
}

/// A wall segment with a penetration loss.
struct Wall {
  Vec2 a;
  Vec2 b;
  Db attenuation_db{6.0};
};

/// True if segment pq crosses segment ab (proper intersection; shared
/// endpoints count as crossing, which is the conservative choice for
/// attenuation).
bool segments_intersect(Vec2 p, Vec2 q, Vec2 a, Vec2 b);

/// An office floor plan: a set of walls plus named device positions.
class FloorPlan {
 public:
  void add_wall(Wall w) { walls_.push_back(w); }

  /// Total wall attenuation along the straight line p -> q.
  Db wall_loss_db(Vec2 p, Vec2 q) const;

  std::size_t wall_count() const { return walls_.size(); }

 private:
  std::vector<Wall> walls_;
};

/// The paper's Fig 13 testbed. Location indices follow the figure:
///   1: the tag + reader (5 cm apart)            — origin
///   2, 3, 4: helper spots in the same room, 3-6 m, line-of-sight
///   5: helper spot in the adjacent room, ~9 m, behind one wall
struct Testbed {
  FloorPlan plan;
  Vec2 reader;
  Vec2 tag;
  std::vector<Vec2> helper_locations;  // index 0 == paper location 2

  /// Build the canonical testbed.
  static Testbed paper_fig13();
};

}  // namespace wb::phy
