// Deterministic random-number streams for the simulator.
//
// Every stochastic component (fading taps, noise, traffic arrivals, NIC
// artefacts...) owns a named RngStream derived from a master seed, so an
// experiment is exactly reproducible and adding randomness to one module
// never perturbs the draws of another.
#pragma once

#include <cstdint>
#include <string_view>

namespace wb::sim {

/// A small, fast counter-based generator (SplitMix64 core) with
/// distribution helpers. Copyable; copies continue the same sequence
/// independently.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : state_(seed) {}

  /// Derive a stream for a named sub-component: hashes `name` and `index`
  /// into the seed so streams are independent and stable across runs.
  RngStream fork(std::string_view name, std::uint64_t index = 0) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box–Muller (no state between calls; one draw costs
  /// two uniforms — simplicity over speed; the simulator is not RNG-bound).
  double normal();

  /// Normal with the given mean/stddev.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (>0). Used for Poisson inter-arrivals.
  double exponential(double mean);

  /// Bounded Pareto used by the bursty traffic model. alpha > 0, lo > 0.
  double pareto(double alpha, double lo, double hi);

  /// Bernoulli draw.
  bool chance(double p);

 private:
  std::uint64_t state_;
};

}  // namespace wb::sim
