#include "sim/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace wb::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// FNV-1a over the stream name; good enough to decorrelate named forks.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

RngStream RngStream::fork(std::string_view name, std::uint64_t index) const {
  std::uint64_t mixed = state_ ^ fnv1a(name) ^ (index * 0x9e3779b97f4a7c15ull);
  // One scramble round so fork(a).fork(b) != fork(b).fork(a).
  splitmix64(mixed);
  return RngStream(mixed);
}

std::uint64_t RngStream::next_u64() { return splitmix64(state_); }

double RngStream::uniform() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t RngStream::uniform_int(std::uint64_t n) {
  WB_REQUIRE(n > 0, "uniform_int needs a non-empty range");
  // Modulo bias is < 2^-50 for the ranges this simulator uses.
  return next_u64() % n;
}

double RngStream::normal() {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double RngStream::normal(double mean, double stddev) {
  WB_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
  return mean + stddev * normal();
}

double RngStream::exponential(double mean) {
  WB_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

double RngStream::pareto(double alpha, double lo, double hi) {
  WB_REQUIRE(alpha > 0.0);
  WB_REQUIRE(lo > 0.0);
  WB_REQUIRE(hi > lo);
  // Inverse-CDF sampling of a Pareto truncated to [lo, hi]:
  //   F(x) = (1 - (lo/x)^alpha) / (1 - (lo/hi)^alpha)
  //   x    = lo * (1 - U * (1 - (lo/hi)^alpha))^(-1/alpha)
  const double ratio_a = std::pow(lo / hi, alpha);
  const double u = uniform();
  return lo * std::pow(1.0 - u * (1.0 - ratio_a), -1.0 / alpha);
}

bool RngStream::chance(double p) { return uniform() < p; }

}  // namespace wb::sim
