// Minimal discrete-event simulation kernel.
//
// The Wi-Fi MAC, traffic generators, tag bit clock, and reader query
// scheduler all run on one virtual clock. Events are closures ordered by
// (time, insertion sequence) so same-time events fire in a deterministic
// order.
//
// When observability is installed (obs::metrics()), the queue reports
// sim.event_queue.* counters: events scheduled/fired/cancelled, tombstones
// skipped on pop, and the peak pending depth.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace wb::sim {

using EventFn = std::function<void()>;

/// Discrete-event scheduler with a virtual microsecond clock.
class EventQueue {
 public:
  /// Current virtual time. Starts at 0.
  TimeUs now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now). Returns an id
  /// usable with cancel().
  std::uint64_t schedule_at(TimeUs at, EventFn fn);

  /// Schedule `fn` to run `delay` microseconds from now.
  std::uint64_t schedule_in(TimeUs delay, EventFn fn);

  /// Cancel a pending event. Cancelling an already-fired, already-
  /// cancelled, or unknown id is a no-op (pending() only changes when a
  /// live event is actually cancelled). O(1) amortised: the event is
  /// tombstoned and skipped when popped.
  void cancel(std::uint64_t id);

  /// Run events until the queue is empty or the clock would pass `until`.
  /// Events scheduled exactly at `until` do run. Returns the number of
  /// events executed.
  std::size_t run_until(TimeUs until);

  /// Run everything (use with care: self-rescheduling processes never
  /// terminate; prefer run_until).
  std::size_t run_all();

  /// Fire at most one event; returns false if the queue is empty.
  bool step();

  bool empty() const { return live_.empty(); }
  std::size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    TimeUs at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint64_t id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_one(Entry& out);
  /// Advances the clock and fires `e` (shared tail of run/step).
  void fire(const Entry& e);

  TimeUs now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> live_;  ///< ids pending in the heap
  std::vector<std::uint64_t> cancelled_;    ///< sorted ids pending skip
};

}  // namespace wb::sim
