#include "sim/event_queue.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace wb::sim {

std::uint64_t EventQueue::schedule_at(TimeUs at, EventFn fn) {
  WB_REQUIRE(at >= now_, "cannot schedule into the past");
  WB_REQUIRE(static_cast<bool>(fn), "event closure must be callable");
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  if (auto* m = obs::metrics()) {
    m->counter("sim.event_queue.scheduled_total").add(1);
    m->gauge("sim.event_queue.depth_peak_count")
        .max_of(static_cast<double>(live_.size()));
  }
  return id;
}

std::uint64_t EventQueue::schedule_in(TimeUs delay, EventFn fn) {
  WB_REQUIRE(delay >= TimeUs{}, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

void EventQueue::cancel(std::uint64_t id) {
  // Only a live (scheduled, not yet fired or cancelled) id counts: a
  // repeated cancel, a fired id, or an unknown id must leave pending()
  // untouched, so liveness is tracked explicitly rather than inferred
  // from the tombstone list (a consumed tombstone would otherwise allow
  // the same id to decrement the count twice).
  if (live_.erase(id) == 0) return;
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  cancelled_.insert(it, id);
  if (auto* m = obs::metrics()) {
    m->counter("sim.event_queue.cancelled_total").add(1);
  }
}

bool EventQueue::pop_one(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; move via const_cast is the standard
    // idiom but copying the closure is fine at this scale — keep it simple.
    Entry e = heap_.top();
    heap_.pop();
    auto it =
        std::lower_bound(cancelled_.begin(), cancelled_.end(), e.id);
    if (it != cancelled_.end() && *it == e.id) {
      cancelled_.erase(it);
      if (auto* m = obs::metrics()) {
        m->counter("sim.event_queue.tombstones_skipped_total").add(1);
      }
      continue;  // tombstoned
    }
    out = std::move(e);
    return true;
  }
  return false;
}

void EventQueue::fire(const Entry& e) {
  WB_INVARIANT(e.at >= now_, "event timestamps must be monotone");
  now_ = e.at;
  live_.erase(e.id);
  if (auto* m = obs::metrics()) {
    m->counter("sim.event_queue.fired_total").add(1);
  }
  e.fn();
}

std::size_t EventQueue::run_until(TimeUs until) {
  std::size_t fired = 0;
  Entry e;
  while (!heap_.empty()) {
    if (heap_.top().at > until) break;
    if (!pop_one(e)) break;
    if (e.at > until) {
      // Re-queue: it was live but beyond the horizon.
      heap_.push(std::move(e));
      break;
    }
    ++fired;
    fire(e);
  }
  if (now_ < until) now_ = until;
  return fired;
}

std::size_t EventQueue::run_all() {
  std::size_t fired = 0;
  Entry e;
  while (pop_one(e)) {
    ++fired;
    fire(e);
  }
  return fired;
}

bool EventQueue::step() {
  Entry e;
  if (!pop_one(e)) return false;
  fire(e);
  return true;
}

}  // namespace wb::sim
