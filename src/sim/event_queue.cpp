#include "sim/event_queue.h"

#include <algorithm>

#include "util/check.h"

namespace wb::sim {

std::uint64_t EventQueue::schedule_at(TimeUs at, EventFn fn) {
  WB_REQUIRE(at >= now_, "cannot schedule into the past");
  WB_REQUIRE(static_cast<bool>(fn), "event closure must be callable");
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id, std::move(fn)});
  ++live_count_;
  return id;
}

std::uint64_t EventQueue::schedule_in(TimeUs delay, EventFn fn) {
  WB_REQUIRE(delay >= 0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

void EventQueue::cancel(std::uint64_t id) {
  // Ids are monotonically increasing and each is cancelled at most once in
  // practice; a sorted vector with binary search keeps this allocation-lean.
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end() && *it == id) return;
  if (id == 0 || id >= next_id_) return;
  cancelled_.insert(it, id);
  if (live_count_ > 0) --live_count_;
}

bool EventQueue::pop_one(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; move via const_cast is the standard
    // idiom but copying the closure is fine at this scale — keep it simple.
    Entry e = heap_.top();
    heap_.pop();
    auto it =
        std::lower_bound(cancelled_.begin(), cancelled_.end(), e.id);
    if (it != cancelled_.end() && *it == e.id) {
      cancelled_.erase(it);
      continue;  // tombstoned
    }
    out = std::move(e);
    return true;
  }
  return false;
}

std::size_t EventQueue::run_until(TimeUs until) {
  std::size_t fired = 0;
  Entry e;
  while (!heap_.empty()) {
    if (heap_.top().at > until) break;
    if (!pop_one(e)) break;
    if (e.at > until) {
      // Re-queue: it was live but beyond the horizon.
      heap_.push(std::move(e));
      break;
    }
    WB_INVARIANT(e.at >= now_, "event timestamps must be monotone");
    now_ = e.at;
    --live_count_;
    ++fired;
    e.fn();
  }
  if (now_ < until) now_ = until;
  return fired;
}

std::size_t EventQueue::run_all() {
  std::size_t fired = 0;
  Entry e;
  while (pop_one(e)) {
    WB_INVARIANT(e.at >= now_, "event timestamps must be monotone");
    now_ = e.at;
    --live_count_;
    ++fired;
    e.fn();
  }
  return fired;
}

bool EventQueue::step() {
  Entry e;
  if (!pop_one(e)) return false;
  WB_INVARIANT(e.at >= now_, "event timestamps must be monotone");
  now_ = e.at;
  --live_count_;
  e.fn();
  return true;
}

}  // namespace wb::sim
