#include "util/crc.h"

#include <array>

#include "util/bits.h"

namespace wb {
namespace {

// Table generators run once at static-init time; the tables are small and
// the generation code is simpler to audit than hard-coded constants.

std::array<std::uint8_t, 256> make_crc8_table() {
  std::array<std::uint8_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t c = static_cast<std::uint8_t>(i);
    for (int b = 0; b < 8; ++b) {
      c = static_cast<std::uint8_t>((c & 0x80u) ? (c << 1) ^ 0x07u : (c << 1));
    }
    t[static_cast<std::size_t>(i)] = c;
  }
  return t;
}

std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    std::uint16_t c = static_cast<std::uint16_t>(i << 8);
    for (int b = 0; b < 8; ++b) {
      c = static_cast<std::uint16_t>((c & 0x8000u) ? (c << 1) ^ 0x1021u
                                                   : (c << 1));
    }
    t[static_cast<std::size_t>(i)] = c;
  }
  return t;
}

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int b = 0; b < 8; ++b) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint8_t crc8(std::span<const std::uint8_t> data) {
  static const auto table = make_crc8_table();
  std::uint8_t c = 0;
  for (std::uint8_t byte : data) {
    c = table[static_cast<std::size_t>(c ^ byte)];
  }
  return c;
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
  static const auto table = make_crc16_table();
  std::uint16_t c = 0xFFFFu;
  for (std::uint8_t byte : data) {
    c = static_cast<std::uint16_t>((c << 8) ^
                                   table[((c >> 8) ^ byte) & 0xFFu]);
  }
  return c;
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) {
  static const auto table = make_crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint8_t crc8_bits(std::span<const std::uint8_t> bits) {
  const auto bytes = pack_bits(bits);
  return crc8(bytes);
}

}  // namespace wb
