// Strict full-string numeric parsing on std::from_chars.
//
// The std::sto* family silently accepts trailing garbage ("12abc" -> 12),
// lets std::stoul wrap negative inputs around, and throws bare
// std::invalid_argument with no context — all of which turn malformed
// input files into silently wrong data. These helpers succeed only when
// the ENTIRE string is a valid value of the requested type: no leading or
// trailing whitespace, no trailing characters, no negative values for
// unsigned types, and range-checked. wb_lint's no-stox rule forbids
// std::sto* in src/ in favour of these.
#pragma once

#include <charconv>
#include <string_view>
#include <system_error>

namespace wb::util {

/// Parse the whole of `s` as a value of arithmetic type T (integers in
/// base 10, doubles in the default chars_format). Returns false — leaving
/// `out` untouched — on empty input, trailing characters, sign mismatch,
/// or out-of-range values.
template <typename T>
bool parse_full(std::string_view s, T& out) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return false;
  out = value;
  return true;
}

}  // namespace wb::util
