// Signal-processing primitives used by the reader-side decoding pipeline:
// moving averages, normalisation, and sliding correlation.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <span>
#include <vector>

namespace wb {

namespace detail {
/// True when the double ranges [a, a+an) and [b, b+bn) share any element.
/// Uses std::less for a total pointer order, so the aliasing contracts
/// below can be checked across unrelated allocations.
inline bool spans_overlap(const double* a, std::size_t an, const double* b,
                          std::size_t bn) {
  if (an == 0 || bn == 0) return false;
  const std::less<const double*> lt;
  return lt(a, b + bn) && lt(b, a + an);
}
}  // namespace detail

/// Streaming moving average over a fixed-size window (used for the signal
/// conditioning step of paper §3.2, which subtracts a 400 ms moving average
/// from the channel measurements).
///
/// Until the window fills, the mean of the samples seen so far is returned,
/// so the filter is usable from the first sample.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  /// Push one sample; returns the current window mean.
  double push(double x);

  /// Current mean without pushing (0 when empty).
  double mean() const;

  std::size_t window() const { return window_; }
  std::size_t size() const { return buf_.size(); }
  bool full() const { return buf_.size() == window_; }
  void reset();

 private:
  std::size_t window_;
  std::deque<double> buf_;
  double sum_ = 0.0;
};

/// Subtract a trailing moving average (window `window`) from each sample,
/// producing the zero-mean series the decoder thresholds. Offline variant
/// of MovingAverage for batch decoding.
std::vector<double> remove_moving_average(std::span<const double> x,
                                          std::size_t window);

/// Span-out variant of remove_moving_average for callers that own the
/// output storage (the decode hot path reuses one buffer across calls).
/// `out.size()` must equal `x.size()`; `out` must not alias `x` (the
/// trailing window re-reads samples the output would have overwritten).
/// Bit-identical to the allocating wrapper.
void remove_moving_average(std::span<const double> x, std::size_t window,
                           std::span<double> out);

/// Normalise a zero-mean series so the mean absolute value becomes 1
/// (paper §3.2 step 1: divide by the average of |x|). A series of all zeros
/// is returned unchanged.
std::vector<double> normalize_mad(std::span<const double> x);

/// Span-out variant of normalize_mad. `out.size()` must equal `x.size()`;
/// `out` may fully alias `x` (in-place normalisation, same first element),
/// but a *partial* overlap is rejected: the divide pass would read
/// elements it already overwrote. Bit-identical to the allocating wrapper.
void normalize_mad(std::span<const double> x, std::span<double> out);

/// Stream-batched normalize_mad over a row-major [row][lane] matrix
/// (DESIGN.md §15): `rows` holds `n_rows` rows of `stride` lanes each, and
/// every lane *column* is normalised independently, exactly as the span
/// variant normalises one series — per column, |x| accumulates in row
/// order and columns whose mean absolute value is <= 0 are copied
/// unchanged (their divisor is 1.0, which is an exact copy). `stride`
/// must be a multiple of simd::kLanes (callers pad; all-zero padding
/// columns come back unchanged). `mad_scratch` must have `stride`
/// elements. `out_rows` may fully alias `rows` (in-place) but must not
/// partially overlap. Bit-identical per column to normalize_mad.
void normalize_mad_rows(std::span<const double> rows, std::size_t stride,
                        std::size_t n_rows, std::span<double> mad_scratch,
                        std::span<double> out_rows);

/// The divisor half of normalize_mad_rows on its own: writes each lane
/// column's mean absolute value into `mad_out[c]`, with degenerate
/// columns (mad <= 0) replaced by 1.0 so dividing by the result is
/// always safe and an exact copy for all-zero columns. An empty matrix
/// (n_rows == 0) makes every column degenerate: all divisors are 1.0. Accumulation is
/// in row (= time) order per column, replaying the scalar normalize_mad
/// chain. Callers that want to fuse the divide into a later pass (e.g.
/// conditioning's transpose) use this; normalize_mad_rows is exactly
/// mad_rows followed by the elementwise divide.
void mad_rows(std::span<const double> rows, std::size_t stride,
              std::size_t n_rows, std::span<double> mad_out);

/// Sliding (valid-mode) correlation of a series against a bipolar template.
/// out[i] = sum_j x[i+j] * tmpl[j]; out has size x.size()-tmpl.size()+1
/// (empty if the template is longer than the series).
std::vector<double> sliding_correlation(std::span<const double> x,
                                        std::span<const double> tmpl);

/// Span-out variant of sliding_correlation. `out.size()` must equal
/// `x.size() - tmpl.size() + 1` (callers handle the empty case); `out`
/// must not alias `x` or `tmpl`. Bit-identical to the allocating wrapper.
void sliding_correlation(std::span<const double> x,
                         std::span<const double> tmpl, std::span<double> out);

/// Index of the maximum element (0 for an empty span).
std::size_t argmax(std::span<const double> x);

/// Inner product of two equal-length spans.
double dot(std::span<const double> a, std::span<const double> b);

/// Sample mean.
double mean(std::span<const double> x);

/// Unbiased sample variance (0 for fewer than 2 samples).
double variance(std::span<const double> x);

/// Sample standard deviation.
double stddev(std::span<const double> x);

/// Pearson correlation coefficient in [-1, 1]; 0 if either side has zero
/// variance.
double pearson(std::span<const double> a, std::span<const double> b);

}  // namespace wb
