#include "util/codes.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace wb {

const BitVec& barker13() {
  static const BitVec k = bits_from_string("1111100110101");
  return k;
}

const BitVec& barker11() {
  static const BitVec k = bits_from_string("11100010010");
  return k;
}

const BitVec& barker7() {
  static const BitVec k = bits_from_string("1110010");
  return k;
}

std::vector<double> to_bipolar(std::span<const std::uint8_t> bits) {
  std::vector<double> out;
  out.reserve(bits.size());
  for (std::uint8_t b : bits) out.push_back(b ? 1.0 : -1.0);
  return out;
}

BitVec walsh_row(std::size_t n, std::size_t row) {
  WB_REQUIRE(n > 0 && (n & (n - 1)) == 0, "order must be a power of two");
  WB_REQUIRE(row < n);
  BitVec out(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Hadamard entry sign = (-1)^{popcount(row & col)}.
    const auto parity =
        static_cast<unsigned>(std::popcount(row & col)) & 1u;
    out[col] = static_cast<std::uint8_t>(parity);  // 1 == negative sign
  }
  return out;
}

OrthogonalCodePair make_orthogonal_pair(std::size_t length) {
  WB_REQUIRE(length >= 2);
  OrthogonalCodePair pair;
  pair.one.resize(length);
  pair.zero.resize(length);
  // Construction: `one` alternates with period 2 (1,0,1,0,...), `zero`
  // alternates with period 4 in the first half sense (1,1,0,0,...). For
  // even lengths divisible by 4 the bipolar cross-correlation is exactly 0;
  // otherwise it is at most 2 chips, negligible against length L.
  for (std::size_t i = 0; i < length; ++i) {
    pair.one[i] = static_cast<std::uint8_t>(i % 2 == 0);
    pair.zero[i] = static_cast<std::uint8_t>((i / 2) % 2 == 0);
  }
  return pair;
}

double code_correlation(std::span<const std::uint8_t> a,
                        std::span<const std::uint8_t> b) {
  WB_REQUIRE(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += (a[i] ? 1.0 : -1.0) * (b[i] ? 1.0 : -1.0);
  }
  return sum;
}

double max_autocorrelation_sidelobe(std::span<const std::uint8_t> code) {
  const std::size_t n = code.size();
  double worst = 0.0;
  for (std::size_t shift = 1; shift < n; ++shift) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t x = code[i];
      const std::uint8_t y = code[(i + shift) % n];
      sum += (x ? 1.0 : -1.0) * (y ? 1.0 : -1.0);
    }
    worst = std::max(worst, std::abs(sum));
  }
  return worst;
}

}  // namespace wb
