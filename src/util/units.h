// Physical units for the Wi-Fi Backscatter simulator: strong types with
// explicit constructors and only physically meaningful operators, so a
// dB-vs-linear or microsecond-vs-millisecond mixup is a compile error
// instead of a silently corrupted figure.
//
// Conventions used throughout the codebase:
//   * time      : TimeUs — integer microsecond sim ticks (strong int64_t)
//   * power     : Milliwatts (linear) or Dbm (log); gains/losses are Db
//   * distance  : Meters
//   * frequency : Hertz
//
// Operator table (everything else is a compile error; see
// tests/compile_fail/):
//   Dbm  + Db   -> Dbm      apply a gain/loss to an absolute power
//   Dbm  - Db   -> Dbm
//   Dbm  - Dbm  -> Db       power ratio between two absolute levels
//   Db   ± Db   -> Db       cascade gains/losses
//   Db   * k    -> Db       scale a per-unit loss (k walls, n decades)
//   Mw   ± Mw   -> Mw       linear powers add (MRC combining)
//   Mw   * k, Mw / k -> Mw
//   Mw   / Mw   -> double   linear power ratio
//   Meters/Hertz: ± within type, scale by double, ratio within type
//   TimeUs ± TimeUs -> TimeUs; TimeUs * n, TimeUs / n (integral n);
//   TimeUs / TimeUs -> int64 (count); TimeUs % TimeUs -> TimeUs
//
// Conversions are explicit and all live here (the wb_analyze `units`
// family forbids inline pow/log10 dB math elsewhere):
//   Dbm::to_mw(), Milliwatts::to_dbm(), Db::to_ratio(),
//   Db::to_amplitude(), Db::from_ratio(), Db::from_amplitude(),
//   Hertz::wavelength(), TimeUs::seconds().
// The raw-double helpers (dbm_to_mw & co) remain for internal math on
// unwrapped values; the strong members delegate to them, so typed and raw
// paths are bit-identical.
//
// Zero cost: every type is one double/int64_t with constexpr inline
// members — codegen is identical to the raw scalar (the Release perf gate
// and byte-identical fig artifacts pin this).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <type_traits>

namespace wb {
namespace units {

// ---- raw-double conversion helpers (the only home of dB math) ----

/// Convert a linear power in milliwatts to dBm. `mw` must be > 0.
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Convert a power in dBm to linear milliwatts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Convert a linear power ratio to decibels. `ratio` must be > 0.
inline double ratio_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// Convert a linear *amplitude* (voltage) ratio to decibels.
inline double amplitude_ratio_to_db(double ratio) {
  return 20.0 * std::log10(ratio);
}

/// Convert decibels to a linear power ratio.
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Convert decibels to a linear *amplitude* (voltage) ratio.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

// ---- strong types ----

class Dbm;
class Milliwatts;

/// A relative power gain or loss in decibels (log domain).
class Db {
 public:
  constexpr Db() = default;
  explicit constexpr Db(double db) : v_(db) {}

  constexpr double value() const { return v_; }

  /// Linear power ratio 10^(db/10).
  double to_ratio() const { return db_to_ratio(v_); }
  /// Linear amplitude (voltage) ratio 10^(db/20).
  double to_amplitude() const { return db_to_amplitude(v_); }
  static Db from_ratio(double ratio) { return Db{ratio_to_db(ratio)}; }
  static Db from_amplitude(double ratio) {
    return Db{amplitude_ratio_to_db(ratio)};
  }

  friend constexpr Db operator+(Db a, Db b) { return Db{a.v_ + b.v_}; }
  friend constexpr Db operator-(Db a, Db b) { return Db{a.v_ - b.v_}; }
  friend constexpr Db operator-(Db a) { return Db{-a.v_}; }
  friend constexpr Db operator*(Db a, double k) { return Db{a.v_ * k}; }
  friend constexpr Db operator*(double k, Db a) { return Db{k * a.v_}; }
  friend constexpr Db operator/(Db a, double k) { return Db{a.v_ / k}; }
  constexpr Db& operator+=(Db o) { v_ += o.v_; return *this; }
  constexpr Db& operator-=(Db o) { v_ -= o.v_; return *this; }

  friend constexpr auto operator<=>(Db, Db) = default;
  friend std::ostream& operator<<(std::ostream& os, Db x) {
    return os << x.v_ << " dB";
  }

 private:
  double v_ = 0.0;
};

/// An absolute power level in dBm (log domain, referenced to 1 mW).
class Dbm {
 public:
  constexpr Dbm() = default;
  explicit constexpr Dbm(double dbm) : v_(dbm) {}

  constexpr double value() const { return v_; }

  /// Linear power, milliwatts. Defined after Milliwatts.
  inline Milliwatts to_mw() const;

  // Absolute powers shift by gains; they do not add to each other
  // (Dbm + Dbm is a compile error — combine in Milliwatts instead).
  friend constexpr Dbm operator+(Dbm a, Db g) { return Dbm{a.v_ + g.value()}; }
  friend constexpr Dbm operator+(Db g, Dbm a) { return Dbm{g.value() + a.v_}; }
  friend constexpr Dbm operator-(Dbm a, Db g) { return Dbm{a.v_ - g.value()}; }
  friend constexpr Db operator-(Dbm a, Dbm b) { return Db{a.v_ - b.v_}; }
  constexpr Dbm& operator+=(Db g) { v_ += g.value(); return *this; }
  constexpr Dbm& operator-=(Db g) { v_ -= g.value(); return *this; }

  friend constexpr auto operator<=>(Dbm, Dbm) = default;
  friend std::ostream& operator<<(std::ostream& os, Dbm x) {
    return os << x.v_ << " dBm";
  }

 private:
  double v_ = 0.0;
};

/// Linear power in milliwatts. Linear powers add (MRC, superposition).
class Milliwatts {
 public:
  constexpr Milliwatts() = default;
  explicit constexpr Milliwatts(double mw) : v_(mw) {}

  constexpr double value() const { return v_; }

  /// Log-domain absolute power; value() must be > 0.
  Dbm to_dbm() const { return Dbm{mw_to_dbm(v_)}; }

  friend constexpr Milliwatts operator+(Milliwatts a, Milliwatts b) {
    return Milliwatts{a.v_ + b.v_};
  }
  friend constexpr Milliwatts operator-(Milliwatts a, Milliwatts b) {
    return Milliwatts{a.v_ - b.v_};
  }
  friend constexpr Milliwatts operator*(Milliwatts a, double k) {
    return Milliwatts{a.v_ * k};
  }
  friend constexpr Milliwatts operator*(double k, Milliwatts a) {
    return Milliwatts{k * a.v_};
  }
  friend constexpr Milliwatts operator/(Milliwatts a, double k) {
    return Milliwatts{a.v_ / k};
  }
  friend constexpr double operator/(Milliwatts a, Milliwatts b) {
    return a.v_ / b.v_;
  }
  constexpr Milliwatts& operator+=(Milliwatts o) { v_ += o.v_; return *this; }
  constexpr Milliwatts& operator-=(Milliwatts o) { v_ -= o.v_; return *this; }

  friend constexpr auto operator<=>(Milliwatts, Milliwatts) = default;
  friend std::ostream& operator<<(std::ostream& os, Milliwatts x) {
    return os << x.v_ << " mW";
  }

 private:
  double v_ = 0.0;
};

inline Milliwatts Dbm::to_mw() const { return Milliwatts{dbm_to_mw(v_)}; }

/// Distance in meters.
class Meters {
 public:
  constexpr Meters() = default;
  explicit constexpr Meters(double m) : v_(m) {}

  constexpr double value() const { return v_; }

  friend constexpr Meters operator+(Meters a, Meters b) {
    return Meters{a.v_ + b.v_};
  }
  friend constexpr Meters operator-(Meters a, Meters b) {
    return Meters{a.v_ - b.v_};
  }
  friend constexpr Meters operator*(Meters a, double k) {
    return Meters{a.v_ * k};
  }
  friend constexpr Meters operator*(double k, Meters a) {
    return Meters{k * a.v_};
  }
  friend constexpr Meters operator/(Meters a, double k) {
    return Meters{a.v_ / k};
  }
  friend constexpr double operator/(Meters a, Meters b) { return a.v_ / b.v_; }

  friend constexpr auto operator<=>(Meters, Meters) = default;
  friend std::ostream& operator<<(std::ostream& os, Meters x) {
    return os << x.v_ << " m";
  }

 private:
  double v_ = 0.0;
};

/// Frequency in hertz.
class Hertz {
 public:
  constexpr Hertz() = default;
  explicit constexpr Hertz(double hz) : v_(hz) {}

  constexpr double value() const { return v_; }

  /// Wavelength at this carrier frequency. Defined after kSpeedOfLight.
  inline Meters wavelength() const;

  friend constexpr Hertz operator+(Hertz a, Hertz b) {
    return Hertz{a.v_ + b.v_};
  }
  friend constexpr Hertz operator-(Hertz a, Hertz b) {
    return Hertz{a.v_ - b.v_};
  }
  friend constexpr Hertz operator*(Hertz a, double k) {
    return Hertz{a.v_ * k};
  }
  friend constexpr Hertz operator*(double k, Hertz a) {
    return Hertz{k * a.v_};
  }
  friend constexpr Hertz operator/(Hertz a, double k) {
    return Hertz{a.v_ / k};
  }
  friend constexpr double operator/(Hertz a, Hertz b) { return a.v_ / b.v_; }

  friend constexpr auto operator<=>(Hertz, Hertz) = default;
  friend std::ostream& operator<<(std::ostream& os, Hertz x) {
    return os << x.v_ << " Hz";
  }

 private:
  double v_ = 0.0;
};

/// Simulation time in integer microsecond ticks (strong int64_t: ~292k
/// years of range). Scaling by a *count* is meaningful (n bits of
/// duration T); scaling by another time, or implicit conversion from a
/// raw integer of unknown unit, is not.
class TimeUs {
 public:
  constexpr TimeUs() = default;
  explicit constexpr TimeUs(std::int64_t ticks) : t_(ticks) {}

  /// The largest representable instant, usable as a "never" sentinel.
  /// (std::numeric_limits is deliberately NOT specialized: its primary
  /// template silently returns TimeUs{} for unknown types.)
  static constexpr TimeUs max() {
    return TimeUs{std::numeric_limits<std::int64_t>::max()};
  }

  /// The raw tick count (microseconds).
  constexpr std::int64_t ticks() const { return t_; }
  /// This instant/duration in seconds, as a double.
  constexpr double seconds() const {
    return static_cast<double>(t_) / 1e6;
  }

  /// Truncate a fractional microsecond count (an intermediate like
  /// `1e6 / bit_rate`, not a stored quantity) onto the integer grid.
  /// Named so the narrowing is a visible, greppable decision.
  static constexpr TimeUs from_us(double us) {
    return TimeUs{static_cast<std::int64_t>(us)};
  }

  friend constexpr TimeUs operator+(TimeUs a, TimeUs b) {
    return TimeUs{a.t_ + b.t_};
  }
  friend constexpr TimeUs operator-(TimeUs a, TimeUs b) {
    return TimeUs{a.t_ - b.t_};
  }
  friend constexpr TimeUs operator-(TimeUs a) { return TimeUs{-a.t_}; }
  constexpr TimeUs& operator+=(TimeUs o) { t_ += o.t_; return *this; }
  constexpr TimeUs& operator-=(TimeUs o) { t_ -= o.t_; return *this; }

  template <class I, class = std::enable_if_t<std::is_integral_v<I>>>
  friend constexpr TimeUs operator*(TimeUs a, I n) {
    return TimeUs{a.t_ * static_cast<std::int64_t>(n)};
  }
  template <class I, class = std::enable_if_t<std::is_integral_v<I>>>
  friend constexpr TimeUs operator*(I n, TimeUs a) {
    return TimeUs{static_cast<std::int64_t>(n) * a.t_};
  }
  template <class I, class = std::enable_if_t<std::is_integral_v<I>>>
  friend constexpr TimeUs operator/(TimeUs a, I n) {
    return TimeUs{a.t_ / static_cast<std::int64_t>(n)};
  }
  /// How many `b`-long intervals fit in `a` (dimensionless count).
  friend constexpr std::int64_t operator/(TimeUs a, TimeUs b) {
    return a.t_ / b.t_;
  }
  friend constexpr TimeUs operator%(TimeUs a, TimeUs b) {
    return TimeUs{a.t_ % b.t_};
  }

  friend constexpr auto operator<=>(TimeUs, TimeUs) = default;
  friend std::ostream& operator<<(std::ostream& os, TimeUs x) {
    return os << x.t_ << " us";
  }

 private:
  std::int64_t t_ = 0;
};

// ---- literals (400'000_us reads better than TimeUs{400'000}) ----

constexpr TimeUs operator""_us(unsigned long long t) {
  return TimeUs{static_cast<std::int64_t>(t)};
}
constexpr TimeUs operator""_ms(unsigned long long t) {
  return TimeUs{static_cast<std::int64_t>(t) * 1'000};
}
constexpr TimeUs operator""_s(unsigned long long t) {
  return TimeUs{static_cast<std::int64_t>(t) * 1'000'000};
}
constexpr Dbm operator""_dbm(long double v) {
  return Dbm{static_cast<double>(v)};
}
constexpr Db operator""_db(long double v) { return Db{static_cast<double>(v)}; }
constexpr Milliwatts operator""_mw(long double v) {
  return Milliwatts{static_cast<double>(v)};
}
constexpr Meters operator""_m(long double v) {
  return Meters{static_cast<double>(v)};
}
constexpr Hertz operator""_hz(long double v) {
  return Hertz{static_cast<double>(v)};
}

// ---- constants ----

inline constexpr TimeUs kMicrosPerMilli{1'000};
inline constexpr TimeUs kMicrosPerSec{1'000'000};

/// Speed of light in m/s; used for wavelength computations.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Center frequency of Wi-Fi channel 6 (2.4 GHz ISM band), used by the
/// paper's prototype for all experiments.
inline constexpr Hertz kWifiChannel6{2.437e9};

/// Wavelength at a given carrier frequency, in meters (raw-double helper;
/// the typed path is Hertz::wavelength()).
inline double wavelength_m(double freq_hz) { return kSpeedOfLight / freq_hz; }

inline Meters Hertz::wavelength() const {
  return Meters{wavelength_m(v_)};
}

}  // namespace units

// The units vocabulary is part of wb's core API surface: every module
// spells wb::TimeUs / wb::Dbm / … unqualified inside namespace wb.
using units::operator""_us;   // NOLINT(misc-unused-using-decls)
using units::operator""_ms;   // NOLINT(misc-unused-using-decls)
using units::operator""_s;    // NOLINT(misc-unused-using-decls)
using units::operator""_dbm;  // NOLINT(misc-unused-using-decls)
using units::operator""_db;   // NOLINT(misc-unused-using-decls)
using units::operator""_mw;   // NOLINT(misc-unused-using-decls)
using units::operator""_m;    // NOLINT(misc-unused-using-decls)
using units::operator""_hz;   // NOLINT(misc-unused-using-decls)
using units::Db;
using units::Dbm;
using units::Hertz;
using units::Meters;
using units::Milliwatts;
using units::TimeUs;
using units::amplitude_ratio_to_db;
using units::db_to_amplitude;
using units::db_to_ratio;
using units::dbm_to_mw;
using units::kMicrosPerMilli;
using units::kMicrosPerSec;
using units::kSpeedOfLight;
using units::kWifiChannel6;
using units::mw_to_dbm;
using units::ratio_to_db;
using units::wavelength_m;

}  // namespace wb
