// Physical-unit helpers shared across the Wi-Fi Backscatter simulator.
//
// Conventions used throughout the codebase:
//   * time      : microseconds as int64_t (sim ticks) unless noted otherwise
//   * power     : milliwatts (linear) or dBm, always named explicitly
//   * distance  : meters (double)
//   * frequency : Hz (double)
#pragma once

#include <cmath>
#include <cstdint>

namespace wb {

/// Simulation time in microseconds. 64-bit: ~292k years of range.
using TimeUs = std::int64_t;

inline constexpr TimeUs kMicrosPerMilli = 1'000;
inline constexpr TimeUs kMicrosPerSec = 1'000'000;

/// Convert a linear power in milliwatts to dBm. `mw` must be > 0.
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Convert a power in dBm to linear milliwatts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Convert a linear power ratio to decibels. `ratio` must be > 0.
inline double ratio_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// Convert decibels to a linear power ratio.
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Convert decibels to a linear *amplitude* (voltage) ratio.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

/// Speed of light in m/s; used for wavelength computations.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Center frequency of Wi-Fi channel 6 (2.4 GHz ISM band), used by the
/// paper's prototype for all experiments.
inline constexpr double kWifiChannel6Hz = 2.437e9;

/// Wavelength at a given carrier frequency, in meters.
inline double wavelength_m(double freq_hz) { return kSpeedOfLight / freq_hz; }

}  // namespace wb
