#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace wb {
namespace {

std::atomic<ContractPolicy> g_policy{ContractPolicy::kAbort};
std::atomic<ContractFailureHook> g_failure_hook{nullptr};

}  // namespace

ContractPolicy contract_policy() noexcept {
  return g_policy.load(std::memory_order_relaxed);
}

void set_contract_policy(ContractPolicy policy) noexcept {
  g_policy.store(policy, std::memory_order_relaxed);
}

ContractFailureHook contract_failure_hook() noexcept {
  return g_failure_hook.load(std::memory_order_relaxed);
}

void set_contract_failure_hook(ContractFailureHook hook) noexcept {
  g_failure_hook.store(hook, std::memory_order_relaxed);
}

namespace detail {

[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line, const char* msg) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%s:%d: %s violated: %s%s%s", file, line,
                kind, expr, msg != nullptr ? " — " : "",
                msg != nullptr ? msg : "");
  if (ContractFailureHook hook = contract_failure_hook()) hook(buf);
  if (contract_policy() == ContractPolicy::kThrow) {
    throw ContractViolation(buf);
  }
  std::fputs(buf, stderr);
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace detail
}  // namespace wb
