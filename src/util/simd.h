// Portable fixed-width SIMD wrapper for the decode kernels (DESIGN.md §15).
//
// wb::simd::pack<T, N> is a value type holding N lanes of T with
// elementwise arithmetic written as fixed-trip-count loops the compiler
// vectorises (no platform intrinsics anywhere — the `simd-isolation`
// analyzer rule bans those outside this header, and this header does not
// need them).
//
// Determinism contract — what makes a pack kernel bit-identical to the
// scalar loop it replaces:
//   * Lane order is index order and is part of the API: lane i of
//     load(p) is p[i], lane i of store writes p[i], and every
//     elementwise op computes lane i from lane i of its operands only.
//   * Every lane op is one IEEE-754 double operation, identical to the
//     scalar expression it names. mul_add(a, b, c) is a*b + c with the
//     product *rounded* (never fused): a hardware FMA keeps the infinite-
//     precision product and would change results, so kernels that must
//     stay bit-identical to scalar `x*y + z` code can rely on mul_add.
//   * hsum() reduces in ascending lane order: ((l0 + l1) + l2) + l3 for
//     N = 4. No pairwise/tree reduction — reassociation changes rounding.
//   * min/max/clamp match std::min/std::max/std::clamp argument-for-
//     argument (comparisons only, no arithmetic), so NaN/signed-zero
//     behaviour is exactly the scalar library's.
//
// Consequently a kernel is bit-identical to its scalar reference exactly
// when each lane replays one scalar chain in the scalar order — vectorise
// across independent series (stream lanes) or elementwise across time,
// never by reassociating a reduction over time or slots.
#pragma once

#include <cstddef>

// Function multiversioning hook (GCC/Clang on x86-64). Annotating a hot
// kernel with WB_SIMD_MULTIVERSION makes the compiler emit an extra clone
// compiled for wider vector registers (AVX2) next to the baseline build,
// and pick one once at load time via ifunc. This does not loosen the
// determinism contract above: every clone runs the same IEEE-754 lane
// operations in the same order — wider registers change throughput, never
// results. The one ISA that *could* change results is hardware FMA
// (contracting a*b + c skips the product rounding), which is why the
// clone list is plain "avx2" — the avx2 target does not enable FMA, so
// the compiler cannot contract even if a mul_add sneaks into an annotated
// kernel. Keep it that way; never add "fma" or an arch= level that
// implies it.
#if defined(__x86_64__) && defined(__GNUC__)
#define WB_SIMD_MULTIVERSION __attribute__((target_clones("avx2", "default")))
#else
#define WB_SIMD_MULTIVERSION
#endif

// Every pack method is force-inlined. This is not an optimisation knob —
// it is required for correctness with WB_SIMD_MULTIVERSION: packs are
// passed and returned by value, and the calling convention of a by-value
// vector argument depends on the ISA the *callee* was compiled for. An
// out-of-line pack helper built for the baseline ISA called from an avx2
// clone would disagree with it about where the lanes live (ymm registers
// vs memory) and corrupt them; inlining makes every pack op inherit the
// kernel's ISA, in unoptimised builds too.
#if defined(__GNUC__)
#define WB_SIMD_INLINE inline __attribute__((always_inline))
#else
#define WB_SIMD_INLINE inline
#endif

namespace wb::simd {

/// Default pack width for the decode kernels. Four doubles map onto one
/// AVX register or two SSE2 registers; the row stride of the batched
/// conditioning kernels is padded to a multiple of this.
inline constexpr std::size_t kLanes = 4;

namespace detail {

// Pack storage. On GCC/Clang a power-of-two pack is backed by a native
// vector-extension type: elementwise +,-,*,/ compile to vector
// instructions *directly*, with no reliance on the auto-vectoriser (whose
// SLP pass gives up on shuffle-heavy kernels like the conditioning
// transpose and silently scalarises them). Vector-extension arithmetic is
// still one IEEE-754 operation per lane — the determinism contract above
// is unchanged — and lane subscripting works like the array fallback.
template <typename T, std::size_t N, bool = ((N & (N - 1)) == 0)>
struct storage {
  using type = T[N];
  static constexpr bool kNative = false;
};

#if defined(__GNUC__)
template <typename T, std::size_t N>
struct storage<T, N, true> {
  typedef T type __attribute__((vector_size(sizeof(T) * N)));
  static constexpr bool kNative = true;
};
#endif

}  // namespace detail

template <typename T, std::size_t N>
struct pack {
  static_assert(N > 0, "a pack has at least one lane");

  /// Native vector when the compiler has one, else a plain array; lane i
  /// is `lane[i]` either way.
  typename detail::storage<T, N>::type lane;

  static constexpr bool kNative = detail::storage<T, N>::kNative;

  /// Number of lanes, as a constant expression.
  static constexpr std::size_t size() { return N; }

  /// Unaligned load: lane i = p[i].
  WB_SIMD_INLINE static pack load(const T* p) {
    pack r;
    if constexpr (kNative) {
      __builtin_memcpy(&r.lane, p, sizeof(r.lane));
    } else {
      for (std::size_t i = 0; i < N; ++i) r.lane[i] = p[i];
    }
    return r;
  }

  /// Unaligned store: p[i] = lane i.
  WB_SIMD_INLINE void store(T* p) const {
    if constexpr (kNative) {
      __builtin_memcpy(p, &lane, sizeof(lane));
    } else {
      for (std::size_t i = 0; i < N; ++i) p[i] = lane[i];
    }
  }

  /// All lanes = v.
  WB_SIMD_INLINE static pack broadcast(T v) {
    pack r;
    for (std::size_t i = 0; i < N; ++i) r.lane[i] = v;
    return r;
  }

  /// All lanes = T{} (positive zero for floating-point T).
  WB_SIMD_INLINE static pack zero() { return broadcast(T{}); }

  WB_SIMD_INLINE friend pack operator+(pack a, pack b) {
    pack r;
    if constexpr (kNative) {
      r.lane = a.lane + b.lane;
    } else {
      for (std::size_t i = 0; i < N; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    }
    return r;
  }
  WB_SIMD_INLINE friend pack operator-(pack a, pack b) {
    pack r;
    if constexpr (kNative) {
      r.lane = a.lane - b.lane;
    } else {
      for (std::size_t i = 0; i < N; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    }
    return r;
  }
  WB_SIMD_INLINE friend pack operator*(pack a, pack b) {
    pack r;
    if constexpr (kNative) {
      r.lane = a.lane * b.lane;
    } else {
      for (std::size_t i = 0; i < N; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    }
    return r;
  }
  WB_SIMD_INLINE friend pack operator/(pack a, pack b) {
    pack r;
    if constexpr (kNative) {
      r.lane = a.lane / b.lane;
    } else {
      for (std::size_t i = 0; i < N; ++i) r.lane[i] = a.lane[i] / b.lane[i];
    }
    return r;
  }
  WB_SIMD_INLINE pack& operator+=(pack b) { return *this = *this + b; }
  WB_SIMD_INLINE pack& operator-=(pack b) { return *this = *this - b; }
  WB_SIMD_INLINE pack& operator*=(pack b) { return *this = *this * b; }
  WB_SIMD_INLINE pack& operator/=(pack b) { return *this = *this / b; }

  /// a*b + c per lane with the product rounded to T before the add —
  /// deliberately *not* a fused multiply-add (see header comment).
  WB_SIMD_INLINE static pack mul_add(pack a, pack b, pack c) {
    pack r;
    if constexpr (kNative) {
      const auto p = a.lane * b.lane;  // named temp: product rounds to T
      r.lane = p + c.lane;
    } else {
      for (std::size_t i = 0; i < N; ++i) {
        const T p = a.lane[i] * b.lane[i];
        r.lane[i] = p + c.lane[i];
      }
    }
    return r;
  }

  /// Per-lane std::min semantics: b < a ? b : a.
  WB_SIMD_INLINE static pack min(pack a, pack b) {
    pack r;
    if constexpr (kNative) {
      r.lane = b.lane < a.lane ? b.lane : a.lane;
    } else {
      for (std::size_t i = 0; i < N; ++i) {
        r.lane[i] = b.lane[i] < a.lane[i] ? b.lane[i] : a.lane[i];
      }
    }
    return r;
  }

  /// Per-lane std::max semantics: a < b ? b : a.
  WB_SIMD_INLINE static pack max(pack a, pack b) {
    pack r;
    if constexpr (kNative) {
      r.lane = a.lane < b.lane ? b.lane : a.lane;
    } else {
      for (std::size_t i = 0; i < N; ++i) {
        r.lane[i] = a.lane[i] < b.lane[i] ? b.lane[i] : a.lane[i];
      }
    }
    return r;
  }

  /// Per-lane std::clamp semantics: v < lo ? lo : (hi < v ? hi : v).
  WB_SIMD_INLINE static pack clamp(pack v, pack lo, pack hi) {
    return min(max(v, lo), hi);
  }

  /// Per-lane absolute value: exactly the scalar chain `v < 0 ? -v : v`
  /// (comparison + negation). Note -0.0 compares equal to 0.0, so it is
  /// returned unchanged — unlike std::abs. The decode kernels only ever
  /// *sum* these values, and x + -0.0 == x + 0.0 for every non-negative
  /// x the accumulators hold, so MAD divisors are unaffected.
  WB_SIMD_INLINE static pack abs(pack v) {
    pack r;
    if constexpr (kNative) {
      r.lane = v.lane < decltype(v.lane){} ? -v.lane : v.lane;
    } else {
      for (std::size_t i = 0; i < N; ++i) {
        r.lane[i] = v.lane[i] < T{} ? -v.lane[i] : v.lane[i];
      }
    }
    return r;
  }

  /// Horizontal sum in ascending lane order: ((l0 + l1) + l2) + l3 ...
  /// Fixed order is the contract — callers may rely on the exact
  /// left-to-right rounding sequence.
  WB_SIMD_INLINE T hsum() const {
    T s = lane[0];
    for (std::size_t i = 1; i < N; ++i) s = s + lane[i];
    return s;
  }
};

/// The pack type the decode kernels use.
using dpack = pack<double, kLanes>;

}  // namespace wb::simd
