// Spreading / synchronisation codes used by the Wi-Fi Backscatter link.
//
// The tag frames begin with a 13-bit Barker code (paper §6) chosen for its
// near-ideal autocorrelation; the long-range uplink mode (paper §3.4)
// represents the one/zero bits with a pair of orthogonal codes of length L,
// which we derive from Walsh–Hadamard rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bits.h"

namespace wb {

/// The 13-bit Barker sequence (1111100110101), the preamble the prototype
/// tag transmits at the start of every uplink frame.
const BitVec& barker13();

/// The 11-bit Barker sequence, used by tests exercising alternate preambles.
const BitVec& barker11();

/// The 7-bit Barker sequence.
const BitVec& barker7();

/// Map bits {0,1} to bipolar {-1,+1} doubles, the domain in which
/// correlation is computed at the reader.
std::vector<double> to_bipolar(std::span<const std::uint8_t> bits);

/// A pair of codes used by the long-range uplink: code_one is transmitted
/// for a '1' bit and code_zero for a '0' bit. The two are orthogonal under
/// the bipolar inner product, so a correlating receiver can distinguish
/// them even at SNR far below the single-bit detection threshold.
struct OrthogonalCodePair {
  BitVec one;
  BitVec zero;
  std::size_t length() const { return one.size(); }
};

/// Build an orthogonal code pair of the given length.
///
/// For lengths that are a multiple of 2 we use complementary alternating
/// structure derived from Walsh rows: `one` is row r of a Hadamard-like
/// construction and `zero` its complement-in-half, guaranteeing zero
/// cross-correlation. Any length >= 2 is accepted; odd lengths get the
/// closest achievable cross-correlation of 1 chip.
OrthogonalCodePair make_orthogonal_pair(std::size_t length);

/// Bipolar cross-correlation of two equal-length codes:
/// sum_i (2a_i-1)(2b_i-1). Orthogonal codes give 0; identical give +N.
double code_correlation(std::span<const std::uint8_t> a,
                        std::span<const std::uint8_t> b);

/// Walsh–Hadamard row `row` of order `n` (n must be a power of two,
/// row < n). Returned as bits {0,1} where bit = (sign < 0).
BitVec walsh_row(std::size_t n, std::size_t row);

/// Autocorrelation sidelobe peak of a code in bipolar domain: the maximum
/// |correlation| over all non-zero cyclic shifts. Barker codes have
/// sidelobes <= 1.
double max_autocorrelation_sidelobe(std::span<const std::uint8_t> code);

}  // namespace wb
