#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/check.h"

namespace wb {

void RunningStats::push(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() { *this = RunningStats{}; }

void BerCounter::add(std::span<const std::uint8_t> truth,
                     std::span<const std::uint8_t> decoded) {
  errors_ += hamming_distance(truth, decoded);
  bits_ += std::max(truth.size(), decoded.size());
}

void BerCounter::add_counts(std::size_t errors, std::size_t bits) {
  errors_ += errors;
  bits_ += bits;
}

double BerCounter::ber() const {
  if (bits_ == 0) return 0.0;
  return static_cast<double>(errors_) / static_cast<double>(bits_);
}

double BerCounter::ber_floored() const {
  if (bits_ == 0) return 0.0;
  if (errors_ == 0) return 0.5 / static_cast<double>(bits_);
  return ber();
}

void BerCounter::reset() { *this = BerCounter{}; }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  WB_REQUIRE(hi > lo);
  WB_REQUIRE(bins > 0);
}

void Histogram::push(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(std::floor(frac * static_cast<double>(
                                              counts_.size())));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

double Histogram::density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return static_cast<double>(counts_.at(i)) /
         (static_cast<double>(total_) * w);
}

std::size_t Histogram::count_modes(double min_height,
                                   double max_valley) const {
  if (total_ == 0) return 0;
  // Light smoothing (3-tap box) to suppress single-bin jitter before mode
  // counting.
  const std::size_t n = counts_.size();
  std::vector<double> smooth(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = static_cast<double>(counts_[i]);
    double w = 1.0;
    if (i > 0) {
      acc += static_cast<double>(counts_[i - 1]);
      w += 1.0;
    }
    if (i + 1 < n) {
      acc += static_cast<double>(counts_[i + 1]);
      w += 1.0;
    }
    smooth[i] = acc / w;
  }
  const double peak = *std::max_element(smooth.begin(), smooth.end());
  if (peak <= 0.0) return 0;
  const double floor = peak * min_height;

  // Collect candidate peaks above the floor.
  struct Peak {
    std::size_t at;
    double height;
  };
  std::vector<Peak> peaks;
  for (std::size_t i = 0; i < n; ++i) {
    const double left = (i > 0) ? smooth[i - 1] : -1.0;
    const double right = (i + 1 < n) ? smooth[i + 1] : -1.0;
    if (smooth[i] >= floor && smooth[i] > left && smooth[i] >= right) {
      peaks.push_back(Peak{i, smooth[i]});
      // Skip the plateau so a flat-topped mode counts once.
      while (i + 1 < n && smooth[i + 1] == smooth[i]) ++i;
    }
  }
  if (peaks.empty()) return 0;

  // Merge adjacent peaks that lack a real valley between them.
  std::size_t modes = 1;
  std::size_t prev = peaks.front().at;
  double prev_h = peaks.front().height;
  for (std::size_t p = 1; p < peaks.size(); ++p) {
    double valley = peaks[p].height;
    for (std::size_t i = prev; i <= peaks[p].at; ++i) {
      valley = std::min(valley, smooth[i]);
    }
    if (valley <= max_valley * std::min(prev_h, peaks[p].height)) {
      ++modes;
      prev = peaks[p].at;
      prev_h = peaks[p].height;
    } else if (peaks[p].height > prev_h) {
      // Merged: keep the taller representative.
      prev = peaks[p].at;
      prev_h = peaks[p].height;
    }
  }
  return modes;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace wb
