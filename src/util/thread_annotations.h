// Clang thread-safety capability annotations and the annotated locking
// primitives built on them.
//
// Under clang, `-Wthread-safety` statically proves that every access to a
// WB_GUARDED_BY member happens while its mutex is held (the CI clang job
// and scripts/check.sh's clang step build with it promoted to an error).
// Under gcc — the primary toolchain — every macro expands to nothing and
// wb::util::Mutex/MutexLock behave exactly like std::mutex/lock_guard.
//
// The std types themselves cannot be annotated portably (libstdc++ carries
// no capability attributes, and libc++ hides them behind a config macro),
// which is why the thin wrappers below exist: they are the repo's locking
// vocabulary wherever analysis matters (src/runner/, src/obs/).
// Condition-variable users pair Mutex with std::condition_variable_any,
// which accepts any BasicLockable.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define WB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef WB_THREAD_ANNOTATION
#define WB_THREAD_ANNOTATION(x)
#endif

#define WB_CAPABILITY(x) WB_THREAD_ANNOTATION(capability(x))
#define WB_SCOPED_CAPABILITY WB_THREAD_ANNOTATION(scoped_lockable)
#define WB_GUARDED_BY(x) WB_THREAD_ANNOTATION(guarded_by(x))
#define WB_PT_GUARDED_BY(x) WB_THREAD_ANNOTATION(pt_guarded_by(x))
#define WB_REQUIRES(...) \
  WB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define WB_ACQUIRE(...) \
  WB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define WB_RELEASE(...) \
  WB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define WB_TRY_ACQUIRE(...) \
  WB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define WB_EXCLUDES(...) WB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define WB_NO_THREAD_SAFETY_ANALYSIS \
  WB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace wb::util {

/// std::mutex with a capability annotation so WB_GUARDED_BY members can
/// name it. Meets BasicLockable/Lockable, so std::scoped_lock and
/// std::condition_variable_any take it directly.
class WB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WB_ACQUIRE() { mu_.lock(); }
  void unlock() WB_RELEASE() { mu_.unlock(); }
  bool try_lock() WB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock of a Mutex (std::lock_guard shape, annotation-aware).
class WB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() WB_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace wb::util
