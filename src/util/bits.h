// Bit-vector helpers: packing, unpacking, and comparison utilities used by
// the framing, coding, and BER-measurement layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wb {

/// A sequence of bits. We use uint8_t with values {0,1} rather than
/// std::vector<bool> so spans/iterators behave like normal containers and
/// signal-processing code can treat bits as small integers.
using BitVec = std::vector<std::uint8_t>;

/// Pack bits (MSB-first within each byte) into bytes. The bit count need not
/// be a multiple of 8; the final byte is zero-padded on the right.
std::vector<std::uint8_t> pack_bits(std::span<const std::uint8_t> bits);

/// Unpack bytes into bits, MSB-first. Produces exactly 8 * bytes.size() bits.
BitVec unpack_bits(std::span<const std::uint8_t> bytes);

/// Unpack an integer into `nbits` bits, MSB-first.
BitVec unpack_uint(std::uint64_t value, std::size_t nbits);

/// Reassemble an integer from up to 64 MSB-first bits.
std::uint64_t pack_uint(std::span<const std::uint8_t> bits);

/// Number of positions where the two bit strings differ. If lengths differ,
/// the extra tail of the longer string counts entirely as errors (a lost or
/// hallucinated bit is an error, not a free pass).
std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

/// Render bits as a "0101..." string, for logs and test failure messages.
std::string bits_to_string(std::span<const std::uint8_t> bits);

/// Parse a "0101..." string into bits. Characters other than '0'/'1' are
/// ignored (so "0101 1010" is accepted).
BitVec bits_from_string(const std::string& s);

/// Repeat each bit `factor` times ("1 0" x3 -> "111 000"). Used to expand a
/// tag bit into its per-packet channel symbol stream in tests.
BitVec repeat_bits(std::span<const std::uint8_t> bits, std::size_t factor);

/// Generate `n` pseudo-random bits from a splitmix64-seeded generator.
/// Deterministic for a given seed; used by workloads and tests.
BitVec random_bits(std::size_t n, std::uint64_t seed);

/// True if every element is 0 or 1.
bool is_binary(std::span<const std::uint8_t> bits);

}  // namespace wb
