// CRC implementations used by the Wi-Fi Backscatter framing layers.
//
// The downlink/uplink tag frames use CRC-8 (tiny frames, tag-side check is
// cheap) and CRC-16-CCITT; simulated 802.11 frames carry the standard
// CRC-32 FCS.
#pragma once

#include <cstdint>
#include <span>

namespace wb {

/// CRC-8 (poly 0x07, init 0x00), as used on the Wi-Fi Backscatter tag
/// frames where the MCU must verify integrity with minimal energy.
std::uint8_t crc8(std::span<const std::uint8_t> data);

/// CRC-16-CCITT (poly 0x1021, init 0xFFFF).
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

/// CRC-32 (IEEE 802.3 reflected, poly 0xEDB88320, init/final 0xFFFFFFFF),
/// the FCS used by 802.11 frames.
std::uint32_t crc32_ieee(std::span<const std::uint8_t> data);

/// Compute CRC-8 over a *bit* string by packing it MSB-first; convenience
/// for the tag frames whose payloads are expressed as bits end-to-end.
std::uint8_t crc8_bits(std::span<const std::uint8_t> bits);

}  // namespace wb
