// Statistics accumulators used by experiments and benchmarks: running
// moments, BER counters, and histograms (for the Fig-4 style PDFs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wb {

/// Numerically stable running mean/variance (Welford).
class RunningStats {
 public:
  void push(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Bit-error-rate accumulator. Compares decoded bits against truth and
/// keeps totals across runs; reports the paper's floor convention when no
/// errors were observed (BER = 0.5 / total, i.e. "fewer than one error").
class BerCounter {
 public:
  /// Accumulate errors between `truth` and `decoded` (length mismatch
  /// counts as errors, matching hamming_distance semantics).
  void add(std::span<const std::uint8_t> truth,
           std::span<const std::uint8_t> decoded);

  /// Accumulate pre-counted errors.
  void add_counts(std::size_t errors, std::size_t bits);

  std::size_t bits() const { return bits_; }
  std::size_t errors() const { return errors_; }

  /// Measured BER; exact ratio when errors were seen.
  double ber() const;

  /// BER with the paper's floor convention: if no errors were observed over
  /// N bits, report 0.5/N instead of 0 (the paper uses 5e-4 for 1800 bits,
  /// i.e. roughly one unobserved error in 2N).
  double ber_floored() const;

  void reset();

 private:
  std::size_t bits_ = 0;
  std::size_t errors_ = 0;
};

/// Fixed-range histogram with uniform bins; used to reproduce the Fig 4
/// PDFs of normalised CSI values.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Add a sample; out-of-range samples clamp into the edge bins.
  void push(double x);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count() const { return total_; }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }

  /// Center x-value of bin i.
  double bin_center(std::size_t i) const;

  /// Probability *density* of bin i (integrates to 1 over the range).
  double density(std::size_t i) const;

  /// Number of *separated* modes: local maxima of the smoothed density
  /// that exceed `min_height` x the global peak AND are separated from the
  /// neighbouring counted mode by a valley at most `max_valley` x the
  /// smaller of the two peak heights. Two half-merged humps count as one
  /// mode; "two Gaussians centred at +-1" (Fig 4) requires a real dip.
  std::size_t count_modes(double min_height = 0.25,
                          double max_valley = 0.7) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
};

/// Percentile of a sample set (linear interpolation, p in [0,100]).
double percentile(std::vector<double> xs, double p);

}  // namespace wb
