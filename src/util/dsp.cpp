#include "util/dsp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/simd.h"

namespace wb {

MovingAverage::MovingAverage(std::size_t window) : window_(window) {
  WB_REQUIRE(window_ > 0, "window must be positive");
}

double MovingAverage::push(double x) {
  buf_.push_back(x);
  sum_ += x;
  if (buf_.size() > window_) {
    sum_ -= buf_.front();
    buf_.pop_front();
  }
  return mean();
}

double MovingAverage::mean() const {
  if (buf_.empty()) return 0.0;
  return sum_ / static_cast<double>(buf_.size());
}

void MovingAverage::reset() {
  buf_.clear();
  sum_ = 0.0;
}

void remove_moving_average(std::span<const double> x, std::size_t window,
                           std::span<double> out) {
  WB_REQUIRE(window > 0, "window must be positive");
  WB_REQUIRE(out.size() == x.size(), "output must cover every sample");
  WB_REQUIRE(!detail::spans_overlap(x.data(), x.size(), out.data(),
                                    out.size()),
             "out must not alias x: the trailing window re-reads samples "
             "the output would have overwritten");
  // Subtract the average of the window *including* the current sample;
  // with bit periods much shorter than the 400 ms window, the average
  // tracks the environmental drift while the backscatter square wave
  // integrates out. Same accumulation order as MovingAverage::push (add
  // the new sample, then retire the oldest) so results are bit-identical
  // to the allocating wrapper.
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i];
    if (i >= window) sum -= x[i - window];
    const std::size_t n = std::min(i + 1, window);
    out[i] = x[i] - sum / static_cast<double>(n);
  }
}

std::vector<double> remove_moving_average(std::span<const double> x,
                                          std::size_t window) {
  std::vector<double> out(x.size());
  remove_moving_average(x, window, out);
  return out;
}

void normalize_mad(std::span<const double> x, std::span<double> out) {
  WB_REQUIRE(out.size() == x.size(), "output must cover every sample");
  WB_REQUIRE(out.data() == x.data() ||
                 !detail::spans_overlap(x.data(), x.size(), out.data(),
                                        out.size()),
             "out must fully alias x (in-place) or not overlap at all: a "
             "partial overlap makes the divide pass read elements it "
             "already overwrote");
  double mad = 0.0;
  for (double v : x) mad += std::abs(v);
  if (x.empty()) return;
  mad /= static_cast<double>(x.size());
  if (mad <= 0.0) {
    std::copy(x.begin(), x.end(), out.begin());
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] / mad;
}

std::vector<double> normalize_mad(std::span<const double> x) {
  std::vector<double> out(x.size());
  normalize_mad(x, out);
  return out;
}

WB_SIMD_MULTIVERSION
void mad_rows(std::span<const double> rows, std::size_t stride,
              std::size_t n_rows, std::span<double> mad_out) {
  WB_REQUIRE(stride > 0 && stride % simd::kLanes == 0,
             "row stride must be a positive multiple of the pack width");
  WB_REQUIRE(rows.size() == n_rows * stride,
             "rows must hold n_rows rows of stride lanes");
  WB_REQUIRE(mad_out.size() == stride,
             "mad output needs one accumulator per lane column");
  WB_REQUIRE(!detail::spans_overlap(mad_out.data(), mad_out.size(),
                                    rows.data(), rows.size()),
             "mad output must not alias the input rows");
  if (n_rows == 0) {
    // Every column of an empty matrix is degenerate: the safe divisor.
    for (double& m : mad_out) m = 1.0;
    return;
  }
  using P = simd::dpack;
  // Per-column mean |x|, accumulated in row (= time) order so each column
  // replays the scalar normalize_mad accumulation chain.
  for (double& m : mad_out) m = 0.0;
  for (std::size_t k = 0; k < n_rows; ++k) {
    const double* row = rows.data() + k * stride;
    for (std::size_t g = 0; g < stride; g += simd::kLanes) {
      (P::load(mad_out.data() + g) + P::abs(P::load(row + g)))
          .store(mad_out.data() + g);
    }
  }
  // Degenerate columns (mad <= 0) divide by 1.0 — an exact copy, which is
  // also what keeps all-zero padding columns untouched.
  const double n = static_cast<double>(n_rows);
  for (std::size_t c = 0; c < stride; ++c) {
    const double mad = mad_out[c] / n;
    mad_out[c] = mad <= 0.0 ? 1.0 : mad;
  }
}

WB_SIMD_MULTIVERSION
void normalize_mad_rows(std::span<const double> rows, std::size_t stride,
                        std::size_t n_rows, std::span<double> mad_scratch,
                        std::span<double> out_rows) {
  WB_REQUIRE(out_rows.size() == rows.size(),
             "output must cover every sample");
  WB_REQUIRE(out_rows.data() == rows.data() ||
                 !detail::spans_overlap(rows.data(), rows.size(),
                                        out_rows.data(), out_rows.size()),
             "out_rows must fully alias rows (in-place) or not overlap at "
             "all");
  WB_REQUIRE(!detail::spans_overlap(mad_scratch.data(), mad_scratch.size(),
                                    out_rows.data(), out_rows.size()),
             "mad scratch must not alias the output");
  mad_rows(rows, stride, n_rows, mad_scratch);
  if (n_rows == 0) return;
  using P = simd::dpack;
  // Elementwise divide (safe in place).
  for (std::size_t k = 0; k < n_rows; ++k) {
    const double* src = rows.data() + k * stride;
    double* dst = out_rows.data() + k * stride;
    for (std::size_t g = 0; g < stride; g += simd::kLanes) {
      (P::load(src + g) / P::load(mad_scratch.data() + g)).store(dst + g);
    }
  }
}

void sliding_correlation(std::span<const double> x,
                         std::span<const double> tmpl, std::span<double> out) {
  WB_REQUIRE(!tmpl.empty() && x.size() >= tmpl.size(),
             "series must be at least as long as the template");
  const std::size_t n = x.size() - tmpl.size() + 1;
  WB_REQUIRE(out.size() == n, "output must have x.size()-tmpl.size()+1 slots");
  WB_REQUIRE(!detail::spans_overlap(x.data(), x.size(), out.data(),
                                    out.size()) &&
                 !detail::spans_overlap(tmpl.data(), tmpl.size(), out.data(),
                                        out.size()),
             "out must not alias x or tmpl: each output reads a window of "
             "inputs that earlier outputs would have overwritten");
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < tmpl.size(); ++j) {
      s += x[i + j] * tmpl[j];
    }
    out[i] = s;
  }
}

std::vector<double> sliding_correlation(std::span<const double> x,
                                        std::span<const double> tmpl) {
  if (tmpl.empty() || x.size() < tmpl.size()) return {};
  std::vector<double> out(x.size() - tmpl.size() + 1);
  sliding_correlation(x, tmpl, out);
  return out;
}

std::size_t argmax(std::span<const double> x) {
  if (x.empty()) return 0;
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

double dot(std::span<const double> a, std::span<const double> b) {
  WB_REQUIRE(a.size() == b.size());
  return std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
}

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  return std::accumulate(x.begin(), x.end(), 0.0) /
         static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size() - 1);
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double pearson(std::span<const double> a, std::span<const double> b) {
  WB_REQUIRE(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace wb
