#include "util/bits.h"

#include <algorithm>

namespace wb {

std::vector<std::uint8_t> pack_bits(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != 0) {
      out[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
    }
  }
  return out;
}

BitVec unpack_bits(std::span<const std::uint8_t> bytes) {
  BitVec out;
  out.reserve(bytes.size() * 8);
  for (std::uint8_t byte : bytes) {
    for (int b = 7; b >= 0; --b) {
      out.push_back(static_cast<std::uint8_t>((byte >> b) & 1u));
    }
  }
  return out;
}

BitVec unpack_uint(std::uint64_t value, std::size_t nbits) {
  BitVec out(nbits, 0);
  for (std::size_t i = 0; i < nbits; ++i) {
    out[nbits - 1 - i] = static_cast<std::uint8_t>((value >> i) & 1u);
  }
  return out;
}

std::uint64_t pack_uint(std::span<const std::uint8_t> bits) {
  std::uint64_t v = 0;
  for (std::uint8_t b : bits) {
    v = (v << 1) | (b & 1u);
  }
  return v;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  const std::size_t common = std::min(a.size(), b.size());
  std::size_t d = std::max(a.size(), b.size()) - common;
  for (std::size_t i = 0; i < common; ++i) {
    if ((a[i] != 0) != (b[i] != 0)) ++d;
  }
  return d;
}

std::string bits_to_string(std::span<const std::uint8_t> bits) {
  std::string s;
  s.reserve(bits.size());
  for (std::uint8_t b : bits) s.push_back(b ? '1' : '0');
  return s;
}

BitVec bits_from_string(const std::string& s) {
  BitVec out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '0') out.push_back(0);
    if (c == '1') out.push_back(1);
  }
  return out;
}

BitVec repeat_bits(std::span<const std::uint8_t> bits, std::size_t factor) {
  BitVec out;
  out.reserve(bits.size() * factor);
  for (std::uint8_t b : bits) {
    out.insert(out.end(), factor, b);
  }
  return out;
}

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  // splitmix64: tiny, high-quality, and fully deterministic across
  // platforms (unlike std::mt19937 distributions).
  auto next = [&seed]() {
    seed += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  BitVec out;
  out.reserve(n);
  std::uint64_t word = 0;
  int avail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (avail == 0) {
      word = next();
      avail = 64;
    }
    out.push_back(static_cast<std::uint8_t>(word & 1u));
    word >>= 1;
    --avail;
  }
  return out;
}

bool is_binary(std::span<const std::uint8_t> bits) {
  return std::all_of(bits.begin(), bits.end(),
                     [](std::uint8_t b) { return b <= 1; });
}

}  // namespace wb
