// Executable contracts for module boundaries: WB_REQUIRE (preconditions),
// WB_ENSURE (postconditions), WB_INVARIANT (internal consistency).
//
// Unlike assert(), these stay on in release builds — the decoder pipeline
// is numeric code where silent misuse (sigma^2 = 0 MRC weights, empty CSI
// windows, out-of-range sub-channel indices) corrupts BER results without
// failing anything. A violated contract either aborts with a source
// location (default; what you want in production and under sanitizers) or
// throws wb::ContractViolation (what tests use to assert that a violation
// is detected). The policy is process-global and switchable at runtime.
//
// Usage:
//   WB_REQUIRE(slot_us > 0);
//   WB_REQUIRE(var > 0.0, "MRC weight needs positive noise variance");
//   WB_ENSURE(out.size() == nslots);
//   WB_INVARIANT(heap_.empty() || heap_.top().at >= now_);
#pragma once

#include <stdexcept>

namespace wb {

/// What a violated contract does.
enum class ContractPolicy {
  kAbort,  ///< print the violation to stderr and std::abort() (default)
  kThrow,  ///< throw wb::ContractViolation
};

/// Thrown on violation under ContractPolicy::kThrow.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Current process-global policy.
ContractPolicy contract_policy() noexcept;

/// Set the process-global policy (tests switch to kThrow).
void set_contract_policy(ContractPolicy policy) noexcept;

/// RAII policy switch for test scopes.
class ScopedContractPolicy {
 public:
  explicit ScopedContractPolicy(ContractPolicy policy)
      : prev_(contract_policy()) {
    set_contract_policy(policy);
  }
  ~ScopedContractPolicy() { set_contract_policy(prev_); }
  ScopedContractPolicy(const ScopedContractPolicy&) = delete;
  ScopedContractPolicy& operator=(const ScopedContractPolicy&) = delete;

 private:
  ContractPolicy prev_;
};

/// Observer called with the formatted violation message ("file:line: kind
/// violated: expr — msg") *before* the policy (throw/abort) runs, on the
/// failing thread. Must not throw and must tolerate being called during
/// unwinding — the intended use is flushing diagnostics (e.g. the obs
/// flight recorder's dump-on-violation). nullptr disables it.
using ContractFailureHook = void (*)(const char* message) noexcept;

/// Currently installed hook (nullptr when none).
ContractFailureHook contract_failure_hook() noexcept;

/// Install/replace the process-global hook; returns nothing, callers that
/// need nesting save contract_failure_hook() first.
void set_contract_failure_hook(ContractFailureHook hook) noexcept;

namespace detail {
/// Reports a violation per the current policy. Never returns.
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const char* msg = nullptr);
}  // namespace detail

}  // namespace wb

#define WB_CONTRACT_CHECK_(kind, cond, ...)                          \
  (static_cast<bool>(cond)                                           \
       ? static_cast<void>(0)                                        \
       : ::wb::detail::contract_fail(kind, #cond, __FILE__, __LINE__ \
                                         __VA_OPT__(, ) __VA_ARGS__))

/// Caller-facing precondition at a module boundary.
#define WB_REQUIRE(cond, ...) WB_CONTRACT_CHECK_("precondition", cond, __VA_ARGS__)

/// Result guarantee before returning.
#define WB_ENSURE(cond, ...) WB_CONTRACT_CHECK_("postcondition", cond, __VA_ARGS__)

/// Internal consistency condition.
#define WB_INVARIANT(cond, ...) WB_CONTRACT_CHECK_("invariant", cond, __VA_ARGS__)

/// Declares a function/method a *realtime hot root*: everything
/// transitively reachable from it must neither allocate amortizedly
/// (new, make_unique/shared, container growth, std::string building) nor
/// block (mutex/CV waits, sleeps, I/O, throw). Enforced statically by
/// tools/wb_analyze's `realtime-alloc`/`realtime-blocking` rules, which
/// walk the src/ call graph from every marked root; a marker that no
/// longer resolves to a defined symbol is itself a finding
/// (`realtime-marker`). Genuinely cold call sites under a root (e.g.
/// first-N exemplar capture) are pruned from the walk with a justified
/// wb-analyze allow(realtime-alloc) comment ("why" required) on the
/// call line.
/// Expands to nothing — purely an analyzer annotation.
#define WB_REALTIME
