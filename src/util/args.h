// Tiny command-line flag scanner shared by every bench binary and the
// experiment CLI, replacing the per-binary strcmp loops that used to be
// copy-pasted around (`--quick`, `--json-out`, `--threads`, ...).
//
// Grammar is deliberately minimal — positional words are ignored, `--name`
// is a boolean flag, `--name value` an option; the last occurrence wins.
// No registration, no help text: binaries document their own flags. Misuse
// fails loudly via WB_REQUIRE rather than being silently reinterpreted: a
// valued flag with a missing or `--`-prefixed follower (`--json-out
// --quick`) and non-numeric values for numeric flags (`--threads abc`)
// are usage errors, not defaults.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"
#include "util/parse.h"

namespace wb::util {

class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// True if `--name` appears anywhere.
  bool flag(std::string_view name) const {
    return find(name) >= 0;
  }

  /// Value following the last `--name`, or `dflt` when absent.
  std::string str(std::string_view name, std::string_view dflt = "") const {
    const int i = find_valued(name);
    return i >= 0 ? argv_[i + 1] : std::string(dflt);
  }

  double num(std::string_view name, double dflt) const {
    const int i = find_valued(name);
    return i >= 0 ? parse_num(argv_[i + 1]) : dflt;
  }

  std::uint64_t u64(std::string_view name, std::uint64_t dflt) const {
    const int i = find_valued(name);
    return i >= 0 ? parse_u64(argv_[i + 1]) : dflt;
  }

  std::size_t size(std::string_view name, std::size_t dflt) const {
    return static_cast<std::size_t>(u64(name, dflt));
  }

  /// Values of EVERY occurrence of `--name value`, in command-line order
  /// (repeatable flags like `--slo RULE --slo RULE`). Each occurrence is
  /// validated like str(); absent flag yields an empty vector.
  std::vector<std::string> str_list(std::string_view name) const {
    std::vector<std::string> out;
    for (int i = 1; i < argc_; ++i) {
      if (name != argv_[i]) continue;
      WB_REQUIRE(i + 1 < argc_,
                 "valued flag at end of line is missing its value");
      const std::string_view value = argv_[i + 1];
      WB_REQUIRE(value.substr(0, 2) != "--",
                 "value after a valued flag looks like another flag");
      out.emplace_back(value);
      ++i;  // skip the consumed value
    }
    return out;
  }

  /// Comma-separated list of numbers (`--distances-cm 5,30,65`);
  /// `dflt` when the flag is absent, empty elements skipped.
  std::vector<double> num_list(std::string_view name,
                               std::vector<double> dflt = {}) const {
    const int i = find_valued(name);
    if (i < 0) return dflt;
    std::vector<double> out;
    const std::string_view raw = argv_[i + 1];
    std::size_t start = 0;
    while (start <= raw.size()) {
      std::size_t end = raw.find(',', start);
      if (end == std::string_view::npos) end = raw.size();
      if (end > start) {
        out.push_back(
            parse_num(std::string(raw.substr(start, end - start)).c_str()));
      }
      start = end + 1;
    }
    return out;
  }

 private:
  /// Index of the last occurrence of `name`, or -1.
  int find(std::string_view name) const {
    for (int i = argc_ - 1; i >= 1; --i) {
      if (name == argv_[i]) return i;
    }
    return -1;
  }

  /// Index of the last occurrence of `name`, validated to be followed by
  /// a value token; -1 when the flag is absent. A trailing flag with no
  /// value, or one whose "value" is the next `--flag`, is a usage error.
  int find_valued(std::string_view name) const {
    const int i = find(name);
    if (i < 0) return -1;
    WB_REQUIRE(i + 1 < argc_, "valued flag at end of line is missing its value");
    const std::string_view value = argv_[i + 1];
    WB_REQUIRE(value.substr(0, 2) != "--",
               "value after a valued flag looks like another flag");
    return i;
  }

  // Locale-independent strict parsing: std::strtod would read "0.2" as 0
  // under a decimal-comma locale, silently shifting every numeric flag.
  static double parse_num(const char* s) {
    double v = 0.0;
    WB_REQUIRE(parse_full(std::string_view(s), v),
               "flag value is not a number");
    return v;
  }

  static std::uint64_t parse_u64(const char* s) {
    std::uint64_t v = 0;
    WB_REQUIRE(parse_full(std::string_view(s), v),
               "flag value is not a non-negative base-10 integer");
    return v;
  }

  int argc_;
  char** argv_;
};

}  // namespace wb::util
