// CaptureService: the live-capture front end (DESIGN.md §14). One
// externally synchronised driver thread submits (session, record) pairs;
// the service admits them through a preallocated IngestRing with an
// explicit backpressure policy, routes them to per-session decoders, and
// dispatches sessions — inline or across a deterministic worker pool —
// with byte-identical outputs either way.
//
// Observability follows the repo's ledger discipline: every record
// admitted to the ring is a DropStage::kIngest attempt; leaving the ring
// into a session is the stage's "decode"; backpressure victims are drops
// (DropReason::kBackpressure). After drain_all() the ingest ledger
// reconciles exactly: attempts == decodes + drops.
//
// Threading contract: all public methods are called from one driver
// thread. Parallelism exists only inside poll()/drain_all(), where
// attached sessions dispatch on runner::for_each_index — each worker
// touches a single session's state and private sink, so there is no
// internal locking and no blocking wait anywhere in the service.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/forensics.h"
#include "reader/streaming_decoder.h"
#include "serve/error.h"
#include "serve/ingest_ring.h"
#include "serve/session.h"
#include "util/check.h"
#include "wifi/capture.h"

namespace wb::serve {

struct ServeConfig {
  /// Ingest ring slots (also the per-session staging bound).
  std::size_t ring_capacity = 256;
  BackpressurePolicy policy = BackpressurePolicy::kBlockProducer;

  /// Session slots; attach beyond this fails with kCapacity.
  std::size_t max_sessions = 8;

  /// Worker threads for session dispatch. <=1 dispatches inline (in
  /// ascending session id order); more threads split sessions across a
  /// pool with identical per-session results.
  unsigned dispatch_threads = 1;

  /// Decoder configuration shared by every session.
  reader::StreamingDecoderConfig decoder{};

  /// Decoded frames retained per session (ring; oldest overwritten).
  std::size_t frame_capacity = 1024;

  /// Exemplars per (stage, reason) in each session's forensics sink.
  std::size_t forensics_exemplar_cap = obs::ForensicsSink::kDefaultExemplarCap;

  /// Detached sessions whose forensics sinks are retained individually;
  /// sinks beyond this merge into one overflow sink so churny workloads
  /// stay bounded.
  std::size_t retired_forensics_cap = 64;
};

enum class ServiceState : std::uint8_t {
  kIdle,      ///< no attached sessions
  kServing,   ///< at least one attached session
  kDraining,  ///< drain_all in progress (transient)
  kStopped,   ///< terminal; every further mutation fails kWrongState
};

/// Stable snake-case token (properties/export surface).
inline const char* to_string(ServiceState state) noexcept {
  switch (state) {
    case ServiceState::kIdle: return "idle";
    case ServiceState::kServing: return "serving";
    case ServiceState::kDraining: return "draining";
    case ServiceState::kStopped: return "stopped";
  }
  return "unknown";
}

class CaptureService {
 public:
  explicit CaptureService(const ServeConfig& cfg);

  CaptureService(const CaptureService&) = delete;
  CaptureService& operator=(const CaptureService&) = delete;

  // ---- control plane ----

  /// Binds a new session id. kAlreadyExists / kCapacity / kWrongState.
  Error attach(std::uint32_t session);

  /// Drains everything queued for `session` (ring + staging + decoder
  /// tail), retires its forensics sink, and frees the slot.
  Error detach(std::uint32_t session);

  /// Drains the ring and every session's decoder tail; sessions stay
  /// attached. Returns frames emitted. Flush-verified: after this, no
  /// decodable frame remains buffered anywhere in the service.
  std::size_t drain_all();

  /// drain_all + detach every session + terminal kStopped. Idempotent.
  Error stop();

  // ---- data plane ----

  /// Offers one record for `session`. Under kBlockProducer a full ring
  /// "blocks" deterministically: the service runs the dispatch loop
  /// inline and retries, so submit never fails for capacity and no
  /// record is lost. Under the drop policies a full ring sheds load per
  /// policy (recorded in forensics) and submit still succeeds.
  /// kNotFound / kWrongState for invalid targets.
  WB_REALTIME Error submit(std::uint32_t session,
                           const wifi::CaptureRecord& rec);

  /// Drains the ring into sessions and dispatches them; returns records
  /// routed. Call at any cadence; submit() under backpressure calls it
  /// implicitly.
  WB_REALTIME std::size_t poll();

  // ---- introspection ----

  ServiceState state() const noexcept { return state_; }
  const ServeConfig& config() const noexcept { return cfg_; }
  /// Attached session by id; nullptr if none.
  const Session* find(std::uint32_t session) const noexcept {
    return sessions_.find(session);
  }
  std::size_t active_sessions() const noexcept {
    return sessions_.active_count();
  }
  std::size_t ring_depth() const noexcept { return ring_.size(); }
  std::size_t ring_depth_peak() const noexcept { return ring_.depth_peak(); }

  /// Monotonic service counters (never reset).
  struct Counters {
    std::uint64_t submitted = 0;     ///< submit() calls that reached the ring
    std::uint64_t accepted = 0;      ///< records admitted to the ring
    std::uint64_t blocked = 0;       ///< full-ring retries (kBlockProducer)
    std::uint64_t dropped_backpressure = 0;  ///< evicted or refused records
    std::uint64_t routed = 0;        ///< records moved ring -> session
    std::uint64_t dispatch_batches = 0;  ///< poll()s that routed >= 1 record
    std::uint64_t attached_total = 0;
    std::uint64_t detached_total = 0;
  };
  const Counters& counters() const noexcept { return counters_; }

  /// Total frames emitted across currently attached sessions.
  std::uint64_t frames_total() const noexcept;

  /// Shill-style property snapshot: sorted (key, value) pairs capturing
  /// configuration, state, and counters. Stable keys; values are decimal
  /// numbers or snake_case tokens.
  std::vector<std::pair<std::string, std::string>> properties() const;

  /// Adds service counters to the thread's MetricsRegistry (no-op when
  /// none is installed). Additive — call once per finished run.
  void publish_metrics() const;

  /// Merges the service's forensics into `out` in deterministic order:
  /// the ingest ledger, then per-session sinks in ascending session id
  /// (a retired sink before a live one with the same id), then the
  /// retired-overflow sink.
  void merge_forensics_into(obs::ForensicsSink& out) const;

  /// The merged forensics as JSONL (convenience over merge_forensics_into
  /// for exports and byte-compare tests).
  std::string forensics_jsonl() const;

 private:
  /// Pops every ring item into its session's staging, then dispatches
  /// sessions with pending records (ascending id; parallel when
  /// configured). Returns records routed.
  std::size_t dispatch_ring();

  /// Ledger + exemplar + counter updates for one backpressure victim.
  void record_backpressure_drop(const IngestItem& victim);

  /// Moves a detaching session's sink into retired_ / the overflow sink.
  void retire_forensics(std::uint32_t id, const obs::ForensicsSink& sink);

  ServeConfig cfg_;
  IngestRing ring_;
  SessionManager sessions_;
  obs::ForensicsSink ingest_sink_;  ///< kIngest ledger + backpressure drops
  /// Sinks of detached sessions, keyed by session id (merged in key
  /// order at export). Re-detaching an id merges into its entry.
  std::map<std::uint32_t, std::unique_ptr<obs::ForensicsSink>> retired_;
  std::unique_ptr<obs::ForensicsSink> retired_overflow_;
  std::vector<Session*> dispatch_order_;  ///< preallocated scratch
  std::vector<std::size_t> drain_emitted_;  ///< preallocated scratch
  ServiceState state_ = ServiceState::kIdle;
  Counters counters_;
};

}  // namespace wb::serve
