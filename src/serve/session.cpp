#include "serve/session.h"

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace wb::serve {

Session::Session(const reader::StreamingDecoderConfig& decoder_cfg,
                 const SessionLimits& limits)
    : decoder_(decoder_cfg),
      limits_(limits),
      pending_(limits.pending_capacity),
      frames_(limits.frame_capacity),
      sink_(std::make_unique<obs::ForensicsSink>(
          limits.forensics_exemplar_cap)) {
  WB_REQUIRE(limits.pending_capacity > 0,
             "session pending capacity must be positive");
  WB_REQUIRE(limits.frame_capacity > 0,
             "session frame capacity must be positive");
}

void Session::attach(std::uint32_t id) {
  WB_REQUIRE(state_ == SessionState::kDetached,
             "attach on a slot that is not free");
  id_ = id;
  state_ = SessionState::kAttached;
  pending_count_ = 0;
  frames_total_ = 0;
  records_dispatched_ = 0;
  decoder_.reset();  // keeps warmed buffer/workspace capacity
  // Fresh ledger per stream; the previous sink was retired by the
  // service before release().
  sink_ = std::make_unique<obs::ForensicsSink>(limits_.forensics_exemplar_cap);
}

void Session::detach() {
  WB_REQUIRE(state_ != SessionState::kDetached, "detach on a free slot");
  WB_REQUIRE(pending_count_ == 0, "detach with undispatched records");
  state_ = SessionState::kDetached;
}

void Session::enqueue(const wifi::CaptureRecord& rec) {
  WB_REQUIRE(state_ == SessionState::kAttached ||
                 state_ == SessionState::kActive,
             "enqueue on a session that is not serving");
  WB_REQUIRE(pending_count_ < pending_.size(),
             "session staging overflow: dispatch must run between "
             "ring drains");
  pending_[pending_count_] = rec;
  ++pending_count_;
}

std::size_t Session::dispatch_pending() {
  if (pending_count_ == 0) return 0;
  // The session's own observability environment: frames/drops land in
  // the private sink; caller-thread metrics and flight recorder are
  // suppressed so an inline (threads=1) dispatch has exactly the side
  // effects of a worker-thread one.
  const obs::ScopedForensics fx(*sink_);
  const obs::ScopedFlightRecorder no_rec(nullptr);
  const obs::ScopedMetrics no_metrics(
      static_cast<obs::MetricsRegistry*>(nullptr));
  std::size_t frames = 0;
  for (std::size_t i = 0; i < pending_count_; ++i) {
    frames += decoder_.push(pending_[i], *this);
  }
  records_dispatched_ += pending_count_;
  pending_count_ = 0;
  state_ = SessionState::kActive;
  return frames;
}

std::size_t Session::flush() {
  WB_REQUIRE(state_ == SessionState::kAttached ||
                 state_ == SessionState::kActive,
             "flush on a session that is not serving");
  std::size_t frames = dispatch_pending();
  state_ = SessionState::kDraining;
  {
    const obs::ScopedForensics fx(*sink_);
    const obs::ScopedFlightRecorder no_rec(nullptr);
    const obs::ScopedMetrics no_metrics(
        static_cast<obs::MetricsRegistry*>(nullptr));
    frames += decoder_.flush(*this);
  }
  state_ = records_dispatched_ > 0 ? SessionState::kActive
                                   : SessionState::kAttached;
  return frames;
}

std::size_t Session::frames_kept() const noexcept {
  return frames_total_ < frames_.size()
             ? static_cast<std::size_t>(frames_total_)
             : frames_.size();
}

const DecodedFrame& Session::frame(std::size_t i) const {
  WB_REQUIRE(i < frames_kept(), "frame index out of range");
  const std::uint64_t oldest = frames_total_ - frames_kept();
  return frames_[(oldest + i) % frames_.size()];
}

std::string Session::frames_jsonl() const {
  std::string out;
  for (std::size_t i = 0; i < frames_kept(); ++i) {
    const DecodedFrame& f = frame(i);
    out += "{\"type\":\"frame\",\"session\":";
    out += std::to_string(id_);
    out += ",\"ordinal\":";
    out += std::to_string(f.ordinal);
    out += ",\"start_us\":";
    out += std::to_string(f.start_us.ticks());
    out += ",\"sync_score\":";
    out += obs::json_number(f.sync_score);
    out += ",\"packets_used\":";
    out += std::to_string(f.packets_used);
    out += ",\"payload\":\"";
    for (const auto bit : f.payload) out += bit != 0 ? '1' : '0';
    out += "\"}\n";
  }
  return out;
}

void Session::on_frame(const reader::UplinkDecodeResult& frame) {
  DecodedFrame& slot = frames_[frames_total_ % frames_.size()];
  slot.ordinal = frames_total_;
  slot.start_us = frame.start_us;
  slot.sync_score = frame.sync_score;
  slot.packets_used = frame.packets_used;
  slot.payload = frame.payload;  // copy-assign: slot capacity is reused
  ++frames_total_;
}

SessionManager::SessionManager(
    std::size_t max_sessions,
    const reader::StreamingDecoderConfig& decoder_cfg,
    const SessionLimits& limits)
    : slots_(max_sessions) {
  WB_REQUIRE(max_sessions > 0, "session pool must hold at least one slot");
  for (auto& slot : slots_) {
    slot = std::make_unique<Session>(decoder_cfg, limits);
  }
}

Error SessionManager::attach(std::uint32_t id) {
  Session* free_slot = nullptr;
  for (auto& slot : slots_) {
    if (slot->state() != SessionState::kDetached) {
      if (slot->id() == id) {
        return Error::make(ErrorCode::kAlreadyExists,
                           "session " + std::to_string(id) +
                               " is already attached");
      }
      continue;
    }
    if (free_slot == nullptr) free_slot = slot.get();
  }
  if (free_slot == nullptr) {
    return Error::make(ErrorCode::kCapacity,
                       "all " + std::to_string(slots_.size()) +
                           " session slots are busy");
  }
  free_slot->attach(id);
  return Error::success();
}

Error SessionManager::release(std::uint32_t id) {
  Session* s = find(id);
  if (s == nullptr) {
    return Error::make(ErrorCode::kNotFound,
                       "session " + std::to_string(id) + " is not attached");
  }
  s->detach();
  return Error::success();
}

Session* SessionManager::find(std::uint32_t id) noexcept {
  for (auto& slot : slots_) {
    if (slot->state() != SessionState::kDetached && slot->id() == id) {
      return slot.get();
    }
  }
  return nullptr;
}

const Session* SessionManager::find(std::uint32_t id) const noexcept {
  for (const auto& slot : slots_) {
    if (slot->state() != SessionState::kDetached && slot->id() == id) {
      return slot.get();
    }
  }
  return nullptr;
}

std::size_t SessionManager::active_count() const noexcept {
  std::size_t n = 0;
  for (const auto& slot : slots_) {
    if (slot->state() != SessionState::kDetached) ++n;
  }
  return n;
}

std::size_t SessionManager::snapshot_attached(Session** out,
                                              std::size_t cap) const {
  WB_REQUIRE(cap >= slots_.size(),
             "snapshot buffer smaller than the session pool");
  std::size_t n = 0;
  for (const auto& slot : slots_) {
    if (slot->state() == SessionState::kDetached) continue;
    // Insertion sort by id: the pool is small and mostly ordered.
    std::size_t pos = n;
    while (pos > 0 && out[pos - 1]->id() > slot->id()) {
      out[pos] = out[pos - 1];
      --pos;
    }
    out[pos] = slot.get();
    ++n;
  }
  return n;
}

}  // namespace wb::serve
