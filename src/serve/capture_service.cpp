#include "serve/capture_service.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "runner/indexed_for.h"
#include "util/check.h"
#include "wifi/trace_io.h"

namespace wb::serve {

namespace {

SessionLimits limits_from(const ServeConfig& cfg) {
  SessionLimits limits;
  // A full ring routed to a single session must fit its staging array.
  limits.pending_capacity = cfg.ring_capacity;
  limits.frame_capacity = cfg.frame_capacity;
  limits.forensics_exemplar_cap = cfg.forensics_exemplar_cap;
  return limits;
}

}  // namespace

CaptureService::CaptureService(const ServeConfig& cfg)
    : cfg_(cfg),
      ring_(cfg.ring_capacity, cfg.policy),
      sessions_(cfg.max_sessions, cfg.decoder, limits_from(cfg)),
      ingest_sink_(cfg.forensics_exemplar_cap),
      dispatch_order_(cfg.max_sessions, nullptr),
      drain_emitted_(cfg.max_sessions, 0) {
  WB_REQUIRE(cfg.max_sessions > 0, "service needs at least one session slot");
}

Error CaptureService::attach(std::uint32_t session) {
  if (state_ == ServiceState::kStopped) {
    return Error::make(ErrorCode::kWrongState, "service is stopped");
  }
  Error err = sessions_.attach(session);
  if (!err.ok()) return err;
  ++counters_.attached_total;
  state_ = ServiceState::kServing;
  if (auto* rec = obs::recorder()) {
    rec->log(TimeUs{0}, obs::Severity::kInfo, "serve.service",
             "session_attached", {{"session", static_cast<double>(session)}});
  }
  return Error::success();
}

Error CaptureService::detach(std::uint32_t session) {
  if (state_ == ServiceState::kStopped) {
    return Error::make(ErrorCode::kWrongState, "service is stopped");
  }
  Session* s = sessions_.find(session);
  if (s == nullptr) {
    return Error::make(ErrorCode::kNotFound,
                       "session " + std::to_string(session) +
                           " is not attached");
  }
  // Drain everything still queued for any session (ring items cannot be
  // selectively extracted), then flush this session's decoder tail so no
  // decodable frame is lost.
  dispatch_ring();
  s->flush();
  retire_forensics(session, s->forensics_sink());
  const Error err = sessions_.release(session);
  WB_ENSURE(err.ok(), "release of a found session cannot fail");
  ++counters_.detached_total;
  if (sessions_.active_count() == 0 && state_ == ServiceState::kServing) {
    state_ = ServiceState::kIdle;
  }
  if (auto* rec = obs::recorder()) {
    rec->log(TimeUs{0}, obs::Severity::kInfo, "serve.service",
             "session_detached", {{"session", static_cast<double>(session)}});
  }
  return Error::success();
}

Error CaptureService::submit(std::uint32_t session,
                             const wifi::CaptureRecord& rec) {
  if (state_ == ServiceState::kStopped || state_ == ServiceState::kDraining) {
    return Error::make(ErrorCode::kWrongState,  // wb-analyze: allow(realtime-alloc): reject-path error message; the accept path below is allocation-free (0 allocs/record per BENCH_serve)
                       std::string("submit while ") + to_string(state_));
  }
  if (sessions_.find(session) == nullptr) {
    return Error::make(ErrorCode::kNotFound,  // wb-analyze: allow(realtime-alloc): reject-path error message; the accept path below is allocation-free (0 allocs/record per BENCH_serve)
                       "session " + std::to_string(session) +
                           " is not attached");
  }
  ++counters_.submitted;
  IngestItem item;
  item.session = session;
  item.record = rec;
  IngestItem evicted;
  for (;;) {
    switch (ring_.push(item, evicted)) {
      case PushOutcome::kAccepted:
        ingest_sink_.record_attempt(obs::DropStage::kIngest);
        ++counters_.accepted;
        return Error::success();
      case PushOutcome::kAcceptedEvicted:
        ingest_sink_.record_attempt(obs::DropStage::kIngest);
        ++counters_.accepted;
        record_backpressure_drop(evicted);
        return Error::success();
      case PushOutcome::kDroppedNewest:
        // The submit succeeded; the *record* was shed by policy. The
        // drop is visible in forensics, not in the error code.
        ingest_sink_.record_attempt(obs::DropStage::kIngest);
        record_backpressure_drop(item);
        return Error::success();
      case PushOutcome::kRejectedFull:
        // Block-producer, virtual-time style: the producer "blocks" by
        // driving the consumer inline, then retries. Deterministic, and
        // guaranteed to make room — the ring is non-empty here.
        ++counters_.blocked;
        dispatch_ring();
        break;
    }
  }
}

std::size_t CaptureService::poll() { return dispatch_ring(); }

std::size_t CaptureService::drain_all() {
  if (state_ == ServiceState::kStopped) return 0;
  const ServiceState resume =
      sessions_.active_count() > 0 ? ServiceState::kServing
                                   : ServiceState::kIdle;
  state_ = ServiceState::kDraining;
  dispatch_ring();
  const std::size_t n =
      sessions_.snapshot_attached(dispatch_order_.data(),
                                  dispatch_order_.size());
  if (cfg_.dispatch_threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      drain_emitted_[i] = dispatch_order_[i]->flush();
    }
  } else {
    runner::for_each_index(cfg_.dispatch_threads, n, [&](std::size_t i) {
      drain_emitted_[i] = dispatch_order_[i]->flush();
    });
  }
  std::size_t frames = 0;
  for (std::size_t i = 0; i < n; ++i) frames += drain_emitted_[i];
  state_ = resume;
  return frames;
}

Error CaptureService::stop() {
  if (state_ == ServiceState::kStopped) return Error::success();
  drain_all();
  const std::size_t n =
      sessions_.snapshot_attached(dispatch_order_.data(),
                                  dispatch_order_.size());
  for (std::size_t i = 0; i < n; ++i) {
    Session* s = dispatch_order_[i];
    retire_forensics(s->id(), s->forensics_sink());
    const Error err = sessions_.release(s->id());
    WB_ENSURE(err.ok(), "release of an attached session cannot fail");
    ++counters_.detached_total;
  }
  state_ = ServiceState::kStopped;
  return Error::success();
}

std::size_t CaptureService::dispatch_ring() {
  IngestItem item;
  std::size_t routed = 0;
  while (ring_.pop(item)) {
    Session* s = sessions_.find(item.session);
    // submit() validates attachment and detach() drains the ring first,
    // so a ring item always targets a live session.
    WB_INVARIANT(s != nullptr, "ring item targets a detached session");
    ingest_sink_.record_decode(obs::DropStage::kIngest);
    s->enqueue(item.record);
    ++routed;
  }
  if (routed == 0) return 0;
  counters_.routed += routed;
  ++counters_.dispatch_batches;
  const std::size_t n =
      sessions_.snapshot_attached(dispatch_order_.data(),
                                  dispatch_order_.size());
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (dispatch_order_[i]->pending() > 0) {
      dispatch_order_[m] = dispatch_order_[i];
      ++m;
    }
  }
  if (cfg_.dispatch_threads <= 1 || m <= 1) {
    // Inline, ascending session id — the allocation-free serving path.
    for (std::size_t i = 0; i < m; ++i) {
      dispatch_order_[i]->dispatch_pending();
    }
  } else {
    // Each worker owns one session; per-session outputs are identical
    // to the inline path by construction (private sinks, suppressed
    // thread-ambient observability).
    runner::for_each_index(  // wb-analyze: allow(realtime-blocking): opted-in worker fan-out (dispatch_threads > 1) synchronizes at batch boundaries by design; the default single-driver path above never enters the pool
        cfg_.dispatch_threads, m,
        [this](std::size_t i) { dispatch_order_[i]->dispatch_pending(); });
  }
  return routed;
}

void CaptureService::record_backpressure_drop(const IngestItem& victim) {
  ++counters_.dropped_backpressure;
  ingest_sink_.record_drop(obs::DropStage::kIngest,
                           obs::DropReason::kBackpressure);
  if (ingest_sink_.wants_exemplar(obs::DropStage::kIngest,
                                  obs::DropReason::kBackpressure)) {
    wifi::CaptureTrace one(1);
    one[0] = victim.record;
    ingest_sink_.add_exemplar(obs::DropStage::kIngest, obs::DropReason::kBackpressure,  // wb-analyze: allow(realtime-alloc): exemplar serialization is wants_exemplar-gated to the first exemplar_cap backpressure drops — cold by construction
                              wifi::capture_csv_string(one));
  }
  if (auto* rec = obs::recorder()) {
    rec->log(victim.record.timestamp_us, obs::Severity::kWarn, "serve.ingest",
             "backpressure_drop",
             {{"session", static_cast<double>(victim.session)}});
  }
}

void CaptureService::retire_forensics(std::uint32_t id,
                                      const obs::ForensicsSink& sink) {
  auto it = retired_.find(id);
  if (it != retired_.end()) {
    it->second->merge_from(sink);
    return;
  }
  if (retired_.size() < cfg_.retired_forensics_cap) {
    auto fresh =
        std::make_unique<obs::ForensicsSink>(cfg_.forensics_exemplar_cap);
    fresh->merge_from(sink);
    retired_.emplace(id, std::move(fresh));
    return;
  }
  if (retired_overflow_ == nullptr) {
    retired_overflow_ =
        std::make_unique<obs::ForensicsSink>(cfg_.forensics_exemplar_cap);
  }
  retired_overflow_->merge_from(sink);
}

std::uint64_t CaptureService::frames_total() const noexcept {
  std::uint64_t frames = 0;
  std::vector<Session*> live(sessions_.max_sessions(), nullptr);
  const std::size_t n = sessions_.snapshot_attached(live.data(), live.size());
  for (std::size_t i = 0; i < n; ++i) frames += live[i]->frames_total();
  return frames;
}

std::vector<std::pair<std::string, std::string>> CaptureService::properties()
    const {
  return {
      {"dispatch.batches_total", std::to_string(counters_.dispatch_batches)},
      {"dispatch.records_total", std::to_string(counters_.routed)},
      {"ingest.accepted_total", std::to_string(counters_.accepted)},
      {"ingest.blocked_total", std::to_string(counters_.blocked)},
      {"ingest.dropped_backpressure_total",
       std::to_string(counters_.dropped_backpressure)},
      {"ingest.submitted_total", std::to_string(counters_.submitted)},
      {"ring.capacity", std::to_string(ring_.capacity())},
      {"ring.depth", std::to_string(ring_.size())},
      {"ring.depth_peak", std::to_string(ring_.depth_peak())},
      {"ring.policy", to_string(cfg_.policy)},
      {"service.state", to_string(state_)},
      {"sessions.active", std::to_string(sessions_.active_count())},
      {"sessions.attached_total", std::to_string(counters_.attached_total)},
      {"sessions.detached_total", std::to_string(counters_.detached_total)},
      {"sessions.frames_total", std::to_string(frames_total())},
      {"sessions.max", std::to_string(sessions_.max_sessions())},
  };
}

void CaptureService::publish_metrics() const {
  auto* m = obs::metrics();
  if (m == nullptr) return;
  m->counter("serve.ingest.submitted_total").add(counters_.submitted);
  m->counter("serve.ingest.accepted_total").add(counters_.accepted);
  m->counter("serve.ingest.blocked_total").add(counters_.blocked);
  m->counter("serve.ingest.dropped_backpressure_total")
      .add(counters_.dropped_backpressure);
  m->counter("serve.dispatch.records_total").add(counters_.routed);
  m->counter("serve.dispatch.batches_total").add(counters_.dispatch_batches);
  m->counter("serve.session.frames_total").add(frames_total());
  m->gauge("serve.ring.depth_peak_count")
      .max_of(static_cast<double>(ring_.depth_peak()));
  m->gauge("serve.session.active_count")
      .set(static_cast<double>(sessions_.active_count()));
}

void CaptureService::merge_forensics_into(obs::ForensicsSink& out) const {
  out.merge_from(ingest_sink_);
  std::vector<Session*> live(sessions_.max_sessions(), nullptr);
  const std::size_t n = sessions_.snapshot_attached(live.data(), live.size());
  std::size_t i = 0;
  auto it = retired_.begin();
  while (it != retired_.end() || i < n) {
    const bool take_retired =
        it != retired_.end() && (i >= n || it->first <= live[i]->id());
    if (take_retired) {
      out.merge_from(*it->second);
      ++it;
    } else {
      out.merge_from(live[i]->forensics_sink());
      ++i;
    }
  }
  if (retired_overflow_ != nullptr) out.merge_from(*retired_overflow_);
}

std::string CaptureService::forensics_jsonl() const {
  obs::ForensicsSink merged(cfg_.forensics_exemplar_cap);
  merge_forensics_into(merged);
  return merged.to_jsonl();
}

}  // namespace wb::serve
