// Preallocated ingest ring: the admission queue between capture
// producers (NIC replay threads, trace feeds) and the dispatch loop.
//
// The ring is a fixed-capacity circular buffer of (session, record)
// items — every slot is allocated at construction, push/pop are index
// arithmetic plus one record copy, so the steady-state ingest path never
// allocates (the BENCH_serve gate pins this at 0 allocs/record).
//
// Backpressure is an explicit policy chosen at construction, not an
// accident of container growth:
//
//   kBlockProducer  a full ring *rejects* the push; the caller must drain
//                   (CaptureService::submit responds by running the
//                   dispatch loop inline, then retrying — the
//                   deterministic, virtual-time analogue of a producer
//                   blocking on a consumer). No record is ever lost.
//   kDropOldest     a full ring evicts its oldest item to admit the new
//                   one (freshness wins; the evicted item is handed back
//                   so the service can record the drop).
//   kDropNewest     a full ring refuses the incoming item (in-flight
//                   work wins).
//
// Every drop is recorded by the service through obs::ForensicsSink under
// DropStage::kIngest / DropReason::kBackpressure — the ring itself stays
// mechanical and observability-free so it can be unit-tested in
// isolation.
//
// Threading: single-producer/single-consumer from the same externally
// synchronised driver thread (the CaptureService contract). No internal
// locking, no blocking waits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "wifi/capture.h"

namespace wb::serve {

enum class BackpressurePolicy : std::uint8_t {
  kBlockProducer,
  kDropOldest,
  kDropNewest,
};

/// Stable snake-case token (properties/export surface).
inline const char* to_string(BackpressurePolicy policy) noexcept {
  switch (policy) {
    case BackpressurePolicy::kBlockProducer: return "block_producer";
    case BackpressurePolicy::kDropOldest: return "drop_oldest";
    case BackpressurePolicy::kDropNewest: return "drop_newest";
  }
  return "unknown";
}

/// One queued capture record, tagged with its session.
struct IngestItem {
  std::uint32_t session = 0;
  wifi::CaptureRecord record{};
};

/// What push() did with the offered item.
enum class PushOutcome : std::uint8_t {
  kAccepted,         ///< stored; ring had room
  kAcceptedEvicted,  ///< stored; the oldest item was evicted into `evicted`
  kDroppedNewest,    ///< refused; ring full under kDropNewest
  kRejectedFull,     ///< refused; ring full under kBlockProducer — drain and retry
};

class IngestRing {
 public:
  IngestRing(std::size_t capacity, BackpressurePolicy policy)
      : slots_(capacity), policy_(policy) {
    WB_REQUIRE(capacity > 0, "ingest ring capacity must be positive");
  }

  IngestRing(const IngestRing&) = delete;
  IngestRing& operator=(const IngestRing&) = delete;

  /// Offers `item`. `evicted` is written only when the outcome is
  /// kAcceptedEvicted. Never allocates.
  PushOutcome push(const IngestItem& item, IngestItem& evicted) {
    if (count_ == slots_.size()) {
      switch (policy_) {
        case BackpressurePolicy::kBlockProducer:
          return PushOutcome::kRejectedFull;
        case BackpressurePolicy::kDropNewest:
          return PushOutcome::kDroppedNewest;
        case BackpressurePolicy::kDropOldest:
          evicted = slots_[head_];
          head_ = advance(head_);
          --count_;
          store(item);
          return PushOutcome::kAcceptedEvicted;
      }
    }
    store(item);
    if (count_ > depth_peak_) depth_peak_ = count_;
    return PushOutcome::kAccepted;
  }

  /// Removes the oldest item into `out`; false when empty.
  bool pop(IngestItem& out) {
    if (count_ == 0) return false;
    out = slots_[head_];
    head_ = advance(head_);
    --count_;
    return true;
  }

  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return slots_.size(); }
  bool empty() const noexcept { return count_ == 0; }
  bool full() const noexcept { return count_ == slots_.size(); }
  BackpressurePolicy policy() const noexcept { return policy_; }
  /// High-water mark of size() since construction.
  std::size_t depth_peak() const noexcept { return depth_peak_; }

 private:
  std::size_t advance(std::size_t i) const noexcept {
    return i + 1 == slots_.size() ? 0 : i + 1;
  }
  void store(const IngestItem& item) {
    std::size_t tail = head_ + count_;
    if (tail >= slots_.size()) tail -= slots_.size();
    slots_[tail] = item;
    ++count_;
  }

  std::vector<IngestItem> slots_;  ///< preallocated; never resized
  std::size_t head_ = 0;           ///< index of the oldest item
  std::size_t count_ = 0;
  std::size_t depth_peak_ = 0;
  BackpressurePolicy policy_;
};

}  // namespace wb::serve
