// Per-stream serving state: a Session owns one StreamingUplinkDecoder,
// bounded staging and result storage, and a private forensics sink, so
// any number of concurrent backscatter streams decode independently with
// byte-identical per-session output regardless of how the service
// interleaves or parallelises them.
//
// Lifecycle (driven by SessionManager / CaptureService):
//
//   kDetached --attach()--> kAttached --first dispatch--> kActive
//      ^                                                     |
//      |                   flush()  <---- begin_drain() ------
//      +---- detach() ---- (kDraining)          (drain-and-continue
//                                                returns to kActive)
//
// Memory is bounded by SessionLimits at attach time: the pending staging
// array and the kept-frames ring are preallocated and written by index —
// nothing in a session grows with stream length, and after the first
// wrap of a payload slot the frame-copy path stops allocating (the
// BENCH_serve gate measures this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/forensics.h"
#include "reader/streaming_decoder.h"
#include "serve/error.h"
#include "util/bits.h"
#include "util/units.h"
#include "wifi/capture.h"

namespace wb::serve {

enum class SessionState : std::uint8_t {
  kDetached,  ///< slot free; no stream bound
  kAttached,  ///< stream bound; no record dispatched yet
  kActive,    ///< records flowing through the decoder
  kDraining,  ///< flush in progress (transient)
};

/// Stable snake-case token (properties/export surface).
inline const char* to_string(SessionState state) noexcept {
  switch (state) {
    case SessionState::kDetached: return "detached";
    case SessionState::kAttached: return "attached";
    case SessionState::kActive: return "active";
    case SessionState::kDraining: return "draining";
  }
  return "unknown";
}

/// Bounded copy of one decoded frame (the streaming decoder's result is
/// scratch — sessions copy what the serving layer reports and nothing
/// more).
struct DecodedFrame {
  std::uint64_t ordinal = 0;  ///< 0-based emit index within the session
  TimeUs start_us{0};
  double sync_score = 0.0;
  std::size_t packets_used = 0;
  BitVec payload;
};

/// Per-session memory bounds, fixed at SessionManager construction.
struct SessionLimits {
  /// Staged records awaiting dispatch. The service sizes this to the
  /// ingest ring capacity: a full ring routed to one session still fits.
  std::size_t pending_capacity = 256;

  /// Kept decoded frames (ring; oldest overwritten once full).
  std::size_t frame_capacity = 1024;

  /// Raw-trace exemplars per (stage, reason) in the session's sink.
  std::size_t forensics_exemplar_cap = obs::ForensicsSink::kDefaultExemplarCap;
};

class Session final : public reader::FrameSink {
 public:
  Session(const reader::StreamingDecoderConfig& decoder_cfg,
          const SessionLimits& limits);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- lifecycle (SessionManager only) ----

  /// kDetached -> kAttached: binds `id`, resets the decoder (keeping its
  /// warmed capacity) and starts a fresh forensics sink.
  void attach(std::uint32_t id);

  /// -> kDetached: the slot is reusable. The caller is responsible for
  /// flushing and retiring the forensics sink first.
  void detach();

  std::uint32_t id() const noexcept { return id_; }
  SessionState state() const noexcept { return state_; }

  // ---- data path ----

  /// Stage one record for the next dispatch. Bounded: staging more than
  /// pending_capacity records without a dispatch is a contract violation
  /// (the service's ring sizing makes it unreachable).
  void enqueue(const wifi::CaptureRecord& rec);

  /// Records staged and not yet dispatched.
  std::size_t pending() const noexcept { return pending_count_; }

  /// Pushes every staged record through the streaming decoder; returns
  /// frames emitted. Installs the session's own observability environment
  /// (its forensics sink; caller-thread metrics and flight recorder
  /// suppressed) so decode side effects are identical whether this runs
  /// inline or on a worker thread. Safe to call concurrently with other
  /// sessions' dispatches — all state touched is per-session.
  std::size_t dispatch_pending();

  /// Drains staged records, then flushes the streaming decoder (final
  /// scan over the buffered tail). Returns frames emitted. The session
  /// stays attached (kActive) and may keep receiving records.
  std::size_t flush();

  // ---- results ----

  /// Total frames ever emitted by this session since attach.
  std::uint64_t frames_total() const noexcept { return frames_total_; }
  /// Frames currently retained (<= frame_capacity).
  std::size_t frames_kept() const noexcept;
  /// i-th oldest retained frame, i < frames_kept().
  const DecodedFrame& frame(std::size_t i) const;
  /// Records ever dispatched through the decoder since attach.
  std::uint64_t records_dispatched() const noexcept {
    return records_dispatched_;
  }

  /// The session's private sink (ledger + drops for its decode stages).
  const obs::ForensicsSink& forensics_sink() const { return *sink_; }

  /// Deterministic per-session decode output: one JSON object per
  /// retained frame, oldest first —
  /// {"type":"frame","session":S,"ordinal":N,"start_us":T,
  ///  "sync_score":X,"packets_used":P,"payload":"0101..."}
  std::string frames_jsonl() const;

  /// reader::FrameSink: copies the scratch result into the frame ring.
  void on_frame(const reader::UplinkDecodeResult& frame) override;

 private:
  reader::StreamingUplinkDecoder decoder_;
  SessionLimits limits_;
  std::uint32_t id_ = 0;
  SessionState state_ = SessionState::kDetached;

  std::vector<wifi::CaptureRecord> pending_;  ///< preallocated staging
  std::size_t pending_count_ = 0;
  std::vector<DecodedFrame> frames_;  ///< preallocated ring
  std::uint64_t frames_total_ = 0;
  std::uint64_t records_dispatched_ = 0;
  std::unique_ptr<obs::ForensicsSink> sink_;  ///< fresh per attach
};

/// Fixed pool of session slots with id-based lookup. Slots (and their
/// decoders) are constructed once; attach/detach cycles reuse them, so
/// repeated sessions cost no steady-state allocation beyond the fresh
/// forensics sink per attach.
class SessionManager {
 public:
  SessionManager(std::size_t max_sessions,
                 const reader::StreamingDecoderConfig& decoder_cfg,
                 const SessionLimits& limits);

  /// Binds `id` to a free slot. Fails with kAlreadyExists / kCapacity.
  Error attach(std::uint32_t id);

  /// Marks `id` detached (slot reusable). Fails with kNotFound. The
  /// caller must have flushed the session first.
  Error release(std::uint32_t id);

  /// The attached session with this id; nullptr if none.
  Session* find(std::uint32_t id) noexcept;
  const Session* find(std::uint32_t id) const noexcept;

  std::size_t max_sessions() const noexcept { return slots_.size(); }
  /// Currently attached sessions.
  std::size_t active_count() const noexcept;

  /// Writes pointers to all attached sessions into out[0..cap) in
  /// ascending id order; returns how many were written. cap must be >=
  /// max_sessions(). Allocation-free (insertion sort over <= cap slots).
  std::size_t snapshot_attached(Session** out, std::size_t cap) const;

 private:
  std::vector<std::unique_ptr<Session>> slots_;
};

}  // namespace wb::serve
