// Shill-style error taxonomy for the capture service: every control-plane
// operation (attach/detach/submit/stop) returns an Error carrying a
// stable code plus a human-readable message, instead of throwing or
// returning bare bools. Codes are coarse on purpose — callers branch on
// the code, humans read the message.
#pragma once

#include <cstdint>
#include <string>

namespace wb::serve {

enum class ErrorCode : std::uint8_t {
  kSuccess,           ///< not an error
  kInvalidArguments,  ///< malformed request (bad id, bad config value)
  kAlreadyExists,     ///< attach of a session id that is already attached
  kNotFound,          ///< operation names a session that is not attached
  kWrongState,        ///< operation illegal in the service's current state
  kCapacity,          ///< all session slots busy
  kOperationFailed,   ///< internal failure not covered above
};

/// Stable snake-case token (export/log surface).
inline const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kSuccess: return "success";
    case ErrorCode::kInvalidArguments: return "invalid_arguments";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kWrongState: return "wrong_state";
    case ErrorCode::kCapacity: return "capacity";
    case ErrorCode::kOperationFailed: return "operation_failed";
  }
  return "unknown";
}

/// Value-type operation result. Default-constructed = success; the
/// success path never builds a message (no allocation on the hot path).
class Error {
 public:
  Error() = default;

  static Error success() { return Error(); }
  static Error make(ErrorCode code, std::string message) {
    Error e;
    e.code_ = code;
    e.message_ = std::move(message);
    return e;
  }

  bool ok() const noexcept { return code_ == ErrorCode::kSuccess; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

 private:
  ErrorCode code_ = ErrorCode::kSuccess;
  std::string message_;
};

}  // namespace wb::serve
