// Tag-side application framework: what a developer programs when they
// build a product on a Wi-Fi Backscatter tag.
//
// A TagDevice owns an address and a set of sensor/actuator registers; the
// framework handles everything the paper's firmware does around them —
// validating the query address, dispatching commands, building the
// response payload, and honouring the reader's commanded bit rate. The
// system-side helper `query_device` runs a full round trip against a
// device description.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/frame.h"
#include "core/system.h"

namespace wb::core {

/// A readable register on the tag (a sensor channel, a counter, ...).
struct TagRegister {
  std::string name;
  std::function<std::uint16_t()> read;
};

/// Behavioural description of one tag's firmware.
class TagDevice {
 public:
  explicit TagDevice(std::uint16_t address) : address_(address) {}

  std::uint16_t address() const { return address_; }

  /// Register a readable 16-bit register at `reg_index` (the low byte of
  /// the query's `argument` selects it).
  void add_register(std::uint8_t reg_index, TagRegister reg);

  /// Number of times this device decoded a query addressed to it.
  std::uint64_t queries_served() const { return queries_served_; }

  /// Firmware entry point: the tag decoded `query`; produce the response
  /// data bits, or nullopt if the query is not for this tag / not
  /// understood (the tag stays silent, §2's addressing model).
  std::optional<BitVec> handle(const Query& query);

 private:
  std::uint16_t address_;
  std::map<std::uint8_t, TagRegister> registers_;
  std::uint64_t queries_served_ = 0;
};

/// Response payload layout produced by TagDevice::handle for
/// kCmdReadSensor: [address:16][reg_index:8][value:16] = 40 bits.
inline constexpr std::size_t kDeviceResponseBits = 40;

struct DeviceQueryOutcome {
  QueryOutcome transport;            ///< full link-level outcome
  bool addressed_tag_responded = false;
  std::optional<std::uint16_t> value;  ///< decoded register value
};

/// Run one query against `device` over `system`. If the query addresses a
/// different tag, the device stays silent and the uplink times out.
DeviceQueryOutcome query_device(WiFiBackscatterSystem& system,
                                TagDevice& device, const Query& query);

}  // namespace wb::core
