// End-to-end uplink simulation: helper traffic -> channel (with tag
// modulation) -> commodity NIC -> capture trace for the decoder.
//
// This is the harness every uplink experiment drives: it plays a packet
// timeline through the uplink channel while the tag's modulator toggles
// the reflection state on its own bit clock, and records what the reader's
// NIC reports for each packet.
#pragma once

#include <cstdint>
#include <optional>

#include "phy/uplink_channel.h"
#include "sim/rng.h"
#include "tag/modulator.h"
#include "wifi/nic.h"
#include "wifi/traffic.h"

namespace wb::core {

struct UplinkSimConfig {
  phy::UplinkChannelParams channel{};
  wifi::NicModelParams nic{};
  std::uint64_t seed = 1;

  /// When set, the channel realisation (multipath/placement luck) is drawn
  /// from this seed instead of `seed` — lets experiments re-run noise and
  /// traffic while keeping one physical placement (Fig 5's per-distance
  /// sub-channel maps).
  std::optional<std::uint64_t> channel_seed;
};

class UplinkSim {
 public:
  explicit UplinkSim(const UplinkSimConfig& cfg);

  /// Play `timeline` through the channel with the tag running `mod`;
  /// returns the reader-side capture trace. The tag state is sampled at
  /// mid-packet (its bit clock is slower than any packet, §3.1).
  wifi::CaptureTrace run(const wifi::PacketTimeline& timeline,
                         const tag::Modulator& mod);

  /// Same, with the tag silent (for baseline/false-positive experiments).
  wifi::CaptureTrace run_idle(const wifi::PacketTimeline& timeline);

  phy::UplinkChannel& channel() { return channel_; }
  wifi::NicModel& nic() { return nic_; }

 private:
  phy::UplinkChannel channel_;
  wifi::NicModel nic_;
};

}  // namespace wb::core
