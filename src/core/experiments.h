// Reusable experiment drivers behind the paper's evaluation figures.
// Each bench binary is a thin loop over one of these; keeping the logic
// here lets the test suite exercise the exact code that generates the
// numbers in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/uplink_sim.h"
#include "wifi/nic.h"
#include "reader/conditioning.h"
#include "reader/uplink_decoder.h"
#include "util/stats.h"
#include "util/units.h"

namespace wb::core {

// ---------------------------------------------------------------- uplink

/// Parameters shared by the uplink BER experiments (§7.1 setup).
struct UplinkExperimentParams {
  Meters tag_reader_distance_m{0.05};
  Meters helper_tag_distance_m{3.0};
  double helper_pps = 3000.0;
  double packets_per_bit = 30.0;  ///< M; bit rate = helper_pps / M
  std::size_t payload_bits = 77;  ///< 90-bit message incl. 13-bit preamble

  /// Paced (CBR) helper injection, as the paper's §7.1-§7.2 experiments
  /// ("we insert a delay between injected packets"); false = Poisson
  /// ambient arrivals.
  bool paced_traffic = true;

  /// Helper transmits only periodic beacons (§7.5 / Fig 16). Beacons carry
  /// no CSI on the paper's NIC, so set source = kRssi with this.
  bool beacons_only = false;
  std::size_t runs = 20;
  reader::MeasurementSource source = reader::MeasurementSource::kCsi;
  std::uint64_t seed = 42;

  /// Optional wall/floor-plan geometry override (Fig 13/14): when set, the
  /// positions below are used verbatim instead of the collinear layout.
  std::optional<phy::Vec2> helper_pos;
  std::optional<phy::Vec2> reader_pos;
  std::optional<phy::Vec2> tag_pos;
  const phy::FloorPlan* plan = nullptr;

  /// NIC model override (defaults model the Intel 5300).
  wifi::NicModelParams nic{};

  /// When set, every run reuses this channel realisation (one physical
  /// placement, as in the paper's single-setup experiments); otherwise
  /// each run redraws the placement.
  std::optional<std::uint64_t> channel_seed;

  /// Decoder overrides.
  std::size_t num_good_streams = 10;
  double hysteresis_sigma = 0.25;
  TimeUs movavg_window_us{400'000};
  /// Minimum sync score to accept a frame (0 = accept the best window
  /// unconditionally, the paper's offline-decode behaviour). Runs whose
  /// best score falls below count as failed syncs — and surface in decode
  /// forensics as low_snr drops.
  double sync_threshold = 0.0;

  TimeUs bit_duration_us() const {
    return TimeUs::from_us(1e6 * packets_per_bit / helper_pps);
  }
};

/// Build the channel geometry for a parameter set (collinear by default:
/// reader at origin, tag at distance d, helper beyond the tag).
phy::UplinkChannelParams make_channel_params(
    const UplinkExperimentParams& p);

/// Outcome of a BER sweep point.
struct BerMeasurement {
  double ber = 0.0;      ///< floored per the paper's convention (plots)
  double ber_raw = 0.0;  ///< exact errors/bits (threshold comparisons)
  std::size_t bits = 0;
  std::size_t errors = 0;
  std::size_t failed_syncs = 0;  ///< runs where the frame was never found
};

/// Measure uplink BER at one operating point: `runs` frames of random
/// payload, decoded with the configured pipeline; errors are counted
/// against the transmitted payload. A run whose sync fails contributes
/// all-bits-wrong (the paper's 20-run averages bury the distinction).
BerMeasurement measure_uplink_ber(const UplinkExperimentParams& p);

/// Same pipeline but decoding with exactly one (randomly chosen) stream —
/// the "Random-Subchannel" baseline of Fig 11.
BerMeasurement measure_uplink_ber_random_stream(
    const UplinkExperimentParams& p);

/// Per-stream BER at one point (Fig 5): decode using only stream s for
/// every CSI stream; returns BER per stream index.
std::vector<double> measure_per_stream_ber(const UplinkExperimentParams& p);

/// Packet delivery probability (Fig 14): fraction of `runs` frames whose
/// payload decodes without any bit error.
double measure_packet_delivery(const UplinkExperimentParams& p);

/// Achievable bit rate (§7.2 definition): the largest supported rate
/// {100, 200, 500, 1000} bps whose measured BER is below `target_ber`,
/// given a helper at `helper_pps`; 0 when none qualifies.
double achievable_bit_rate(UplinkExperimentParams p, double target_ber = 1e-2);

// ---------------------------------------------------------------- coded

/// Long-range coded uplink (Fig 20): BER at a distance for a given
/// correlation length L.
struct CodedExperimentParams {
  Meters tag_reader_distance_m{1.6};
  Meters helper_tag_distance_m{3.0};
  double helper_pps = 3000.0;
  double packets_per_chip = 10.0;
  std::size_t code_length = 20;
  std::size_t payload_bits = 16;
  std::size_t runs = 6;
  bool paced_traffic = true;
  std::uint64_t seed = 42;

  /// When set, every run reuses this channel realisation (one placement).
  std::optional<std::uint64_t> channel_seed;
};

BerMeasurement measure_coded_uplink_ber(const CodedExperimentParams& p);

/// Smallest correlation length from `candidates` achieving BER below
/// `target` at the given distance; 0 if none.
std::size_t required_correlation_length(
    CodedExperimentParams p, const std::vector<std::size_t>& candidates,
    double target = 1e-2);

// ------------------------------------------------------------- downlink

/// Downlink BER driver shared by bench_fig17 and the CLI (§8.1 setup):
/// transmits `total_bits` in NAV-reservation-sized bursts with the
/// downlink preamble prepended to each (so the peak detector charges as
/// it would mid-message) and counts the tag's slot decisions against the
/// transmitted bits.
struct DownlinkExperimentParams {
  Meters reader_tag_distance_m{1.5};
  TimeUs slot_us{50};  ///< bit duration; 50 us = 20 kbps
  std::size_t total_bits = 20'000;
  /// Bursts are min(encoder bits_per_chunk, this) bits long.
  std::size_t max_burst_bits = 600;
  std::uint64_t seed = 1234;
};

BerMeasurement measure_downlink_ber(const DownlinkExperimentParams& p);

// -------------------------------------------------------------- sweeps
//
// Declarative grids for wb::runner parallel sweeps. Expansion is a pure
// function of the spec: every point's full parameter set — including its
// seed — is fixed before any task executes, which is what makes sweep
// results independent of thread count and scheduling. By default each
// point's seed is runner::derive_seed(base.seed, index); callers that
// must reproduce a legacy per-point seed formula can overwrite
// `params.seed` on the expanded grid before running it.

/// Cross product sources × distances × packets_per_bit, indexed row-major
/// in that order (source-major matches Fig 10's per-source tables).
struct UplinkGridSpec {
  UplinkExperimentParams base;  ///< template every point starts from
  std::vector<reader::MeasurementSource> sources = {
      reader::MeasurementSource::kCsi};
  std::vector<double> distances_m;
  std::vector<double> packets_per_bit;
};

struct UplinkGridPoint {
  std::size_t index = 0;
  reader::MeasurementSource source = reader::MeasurementSource::kCsi;
  Meters distance_m{};
  double packets_per_bit = 0.0;
  UplinkExperimentParams params;
};

std::vector<UplinkGridPoint> expand_uplink_grid(const UplinkGridSpec& spec);

/// Cross product distances × placements (Fig 20's median-over-placements
/// layout), distance-major. Each placement pins its channel realisation
/// via `channel_seed = placement_channel_seed_base + placement`.
struct CodedGridSpec {
  CodedExperimentParams base;
  std::vector<double> distances_m;
  std::size_t placements = 1;
  std::uint64_t placement_channel_seed_base = 100;
};

struct CodedGridPoint {
  std::size_t index = 0;
  Meters distance_m{};
  std::size_t placement = 0;
  CodedExperimentParams params;
};

std::vector<CodedGridPoint> expand_coded_grid(const CodedGridSpec& spec);

/// Cross product distances × slot durations (Fig 17), distance-major.
struct DownlinkGridSpec {
  DownlinkExperimentParams base;
  std::vector<double> distances_m;
  std::vector<TimeUs> slot_durations_us;
};

struct DownlinkGridPoint {
  std::size_t index = 0;
  Meters distance_m{};
  TimeUs slot_us{0};
  DownlinkExperimentParams params;
};

std::vector<DownlinkGridPoint> expand_downlink_grid(
    const DownlinkGridSpec& spec);

}  // namespace wb::core
