// Wi-Fi Backscatter frame formats (paper §6, Fig 7).
//
// Uplink (tag -> reader): [ preamble | payload | crc8 | postamble ]
//   The preamble is the 13-bit Barker code; the postamble (the reversed
//   Barker code) bounds the frame so the reader can verify its bit clock.
//
// Downlink (reader -> tag): [ preamble(16) | payload(56) | crc8 ]
//   64 bits follow the preamble (Fig 7's "64-bit payload message with a
//   16-bit preamble ... in 4.0 ms" at 50 us slots).
//
// The query payload layout used by the request-response protocol (§5):
//   [ tag address : 16 ][ command : 8 ][ bit-rate code : 8 ][ arg : 24 ]
// where the bit-rate code indexes the supported uplink rates the reader
// computed from network load (N/M, §5).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bits.h"
#include "util/codes.h"

namespace wb::core {

// ---------- uplink ----------

/// Uplink preamble: 13-bit Barker.
const BitVec& uplink_preamble();

/// Uplink postamble: the Barker code reversed.
const BitVec& uplink_postamble();

/// Build a full uplink frame around `data` bits: preamble + data + crc8 +
/// postamble.
BitVec build_uplink_frame(const BitVec& data);

/// Payload bit count of an uplink frame carrying `data_bits` data bits
/// (everything between preamble and end: data + crc + postamble).
std::size_t uplink_payload_bits(std::size_t data_bits);

/// Validate + strip a decoded uplink payload (data + crc8 + postamble).
/// Returns the data bits or nullopt on CRC/postamble failure.
std::optional<BitVec> parse_uplink_payload(const BitVec& payload,
                                           std::size_t data_bits);

// ---------- downlink ----------

inline constexpr std::size_t kDownlinkPayloadBits = 64;  ///< incl. CRC
inline constexpr std::size_t kDownlinkDataBits = 56;

/// Downlink preamble (irregular run structure, runs 2,2,1,2,9; must match
/// the tag MCU preamble in tag/mcu.cpp).
const BitVec& downlink_preamble();

/// Build a downlink message: preamble + 56 data bits + crc8. `data` must
/// be exactly kDownlinkDataBits long.
BitVec build_downlink_frame(const BitVec& data);

/// Validate + strip a tag-decoded downlink payload (64 bits).
std::optional<BitVec> parse_downlink_payload(const BitVec& payload);

// ---------- query payload (request-response protocol, §5) ----------

struct Query {
  std::uint16_t tag_address = 0;
  std::uint8_t command = 0;
  std::uint8_t bitrate_code = 0;  ///< index into supported uplink rates
  std::uint32_t argument = 0;     ///< 24 bits used

  /// Serialise into kDownlinkDataBits bits.
  BitVec to_bits() const;
  static std::optional<Query> from_bits(const BitVec& data);
};

/// Command codes.
inline constexpr std::uint8_t kCmdReadSensor = 0x01;
inline constexpr std::uint8_t kCmdAck = 0x02;

}  // namespace wb::core
