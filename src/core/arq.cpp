#include "core/arq.h"

#include <algorithm>

#include "core/frame.h"
#include "reader/uplink_decoder.h"
#include "tag/modulator.h"
#include "wifi/traffic.h"

namespace wb::core {
namespace {

constexpr TimeUs kLeadUs{600'000};

/// One tag transmission (frame-layer framed `bits`) decoded at the reader;
/// returns the decoder result over the framed payload region.
reader::UplinkDecodeResult transmit_and_decode(const BitVec& bits,
                                               const ArqConfig& cfg,
                                               std::uint64_t round_salt) {
  const auto bit_us = TimeUs::from_us(1e6 / cfg.bit_rate_bps);
  const BitVec frame = build_uplink_frame(bits);

  UplinkSimConfig sim_cfg;
  sim_cfg.channel.reader_pos = {0.0, 0.0};
  sim_cfg.channel.tag_pos = {cfg.tag_reader_distance_m.value(), 0.0};
  sim_cfg.channel.helper_pos = {
      (cfg.tag_reader_distance_m + cfg.helper_tag_distance_m).value(), 0.0};
  sim_cfg.channel_seed = cfg.seed;  // one placement across rounds
  sim_cfg.seed = cfg.seed * 0x9e3779b9ull + round_salt;

  const TimeUs until =
      kLeadUs + bit_us * static_cast<std::int64_t>(frame.size()) +
      TimeUs{100'000};
  sim::RngStream rng(sim_cfg.seed);
  auto traffic_rng = rng.fork("traffic");
  const auto timeline = wifi::make_cbr_timeline(
      cfg.helper_pps, until, wifi::TrafficParams{}, traffic_rng);
  tag::Modulator mod(frame, bit_us, kLeadUs);
  UplinkSim sim(sim_cfg);
  const auto trace = sim.run(timeline, mod);

  reader::UplinkDecoderConfig dec;
  dec.payload_bits = uplink_payload_bits(bits.size());
  dec.bit_duration_us = bit_us;
  dec.search_from = kLeadUs - 2 * bit_us;
  dec.search_to = kLeadUs + 2 * bit_us;
  return reader::UplinkDecoder(dec).decode(trace);
}

}  // namespace

ArqReport run_selective_repeat(const BitVec& data, const ArqConfig& cfg) {
  ArqReport report;
  const std::size_t n = data.size();

  // --- Round 0: full frame ---
  auto full = transmit_and_decode(data, cfg, 0);
  report.bits_transmitted += uplink_payload_bits(n);
  ArqRound r0;
  r0.offset = 0;
  r0.length = n;
  BitVec estimate;       // current payload-region estimate
  BitVec confidence_ok;  // per data bit: validated by a sub-frame CRC
  if (full.found) {
    estimate = full.payload;
    if (auto parsed = parse_uplink_payload(estimate, n)) {
      r0.decoded = true;
      report.rounds.push_back(r0);
      report.delivered = true;
      report.data = std::move(*parsed);
      return report;
    }
  } else {
    estimate.assign(uplink_payload_bits(n), 0);
    full.confidence.assign(n, 0.0);
  }
  report.rounds.push_back(r0);
  confidence_ok.assign(n, 0);

  // --- Repeat rounds ---
  std::vector<double> conf(full.confidence.begin(),
                           full.confidence.begin() + static_cast<long>(n));
  for (std::size_t round = 1; round <= cfg.max_repeats; ++round) {
    // Suspect range: contiguous hull of unvalidated low-confidence bits.
    std::size_t lo = n, hi = 0;
    for (std::size_t b = 0; b < n; ++b) {
      if (confidence_ok[b]) continue;
      if (conf[b] < cfg.confidence_floor) {
        lo = std::min(lo, b);
        hi = std::max(hi, b);
      }
    }
    if (lo > hi) {
      // Nothing looks suspect yet the CRC fails: suspect everything
      // unvalidated.
      for (std::size_t b = 0; b < n; ++b) {
        if (!confidence_ok[b]) {
          lo = std::min(lo, b);
          hi = std::max(hi, b);
        }
      }
      if (lo > hi) break;  // everything validated yet CRC fails: give up
    }
    std::size_t len = hi - lo + 1;
    if (len < cfg.min_request_bits) {
      len = std::min(cfg.min_request_bits, n - lo);
    }

    ArqRound rr;
    rr.offset = lo;
    rr.length = len;
    const BitVec sub(data.begin() + static_cast<long>(lo),
                     data.begin() + static_cast<long>(lo + len));
    const auto res = transmit_and_decode(sub, cfg, round);
    report.bits_transmitted += uplink_payload_bits(len);
    if (res.found) {
      if (auto parsed = parse_uplink_payload(res.payload, len)) {
        rr.decoded = true;
        for (std::size_t i = 0; i < len; ++i) {
          estimate[lo + i] = (*parsed)[i];
          confidence_ok[lo + i] = 1;
          conf[lo + i] = 1.0;
        }
      } else {
        // Patch unvalidated guesses and refresh their confidences.
        for (std::size_t i = 0; i < len && i < res.payload.size(); ++i) {
          if (!confidence_ok[lo + i] &&
              res.confidence[i] > conf[lo + i]) {
            estimate[lo + i] = res.payload[i];
            conf[lo + i] = res.confidence[i];
          }
        }
      }
    }
    report.rounds.push_back(rr);

    if (auto parsed = parse_uplink_payload(estimate, n)) {
      report.delivered = true;
      report.data = std::move(*parsed);
      return report;
    }
  }
  return report;
}

}  // namespace wb::core
