#include "core/uplink_sim.h"

#include "util/check.h"

namespace wb::core {

UplinkSim::UplinkSim(const UplinkSimConfig& cfg)
    : channel_(cfg.channel,
               sim::RngStream(cfg.channel_seed.value_or(cfg.seed))
                   .fork("channel")),
      nic_(cfg.nic, sim::RngStream(cfg.seed).fork("nic")) {
  // Fix the NIC's reporting reference once, from the quiescent channel —
  // the AGC must not chase the backscatter modulation.
  nic_.calibrate(channel_.response(false, TimeUs{}));
}

wifi::CaptureTrace UplinkSim::run(const wifi::PacketTimeline& timeline,
                                  const tag::Modulator& mod) {
  wifi::CaptureTrace trace;
  trace.reserve(timeline.size());
  TimeUs prev_us{0};
  for (const auto& pkt : timeline) {
    WB_REQUIRE(pkt.start_us >= prev_us,
               "packet timeline must be in time order");
    prev_us = pkt.start_us;
    // The NIC estimates CSI from the PLCP preamble at the very start of
    // the packet, so the tag state that matters is the one at start_us —
    // which is also the timestamp the decoder bins by.
    const bool state = mod.state_at(pkt.start_us);
    const auto h = channel_.response(state, pkt.start_us);
    trace.push_back(nic_.measure(h, pkt.start_us, pkt.source, pkt.kind));
  }
  return trace;
}

wifi::CaptureTrace UplinkSim::run_idle(const wifi::PacketTimeline& timeline) {
  wifi::CaptureTrace trace;
  trace.reserve(timeline.size());
  for (const auto& pkt : timeline) {
    const auto h = channel_.response(false, pkt.start_us);
    trace.push_back(nic_.measure(h, pkt.start_us, pkt.source, pkt.kind));
  }
  return trace;
}

}  // namespace wb::core
