#include "core/experiments.h"

#include <algorithm>

#include "core/downlink_sim.h"
#include "core/frame.h"
#include "core/rate_control.h"
#include "reader/corr_decoder.h"
#include "reader/decode_workspace.h"
#include "reader/downlink_encoder.h"
#include "runner/seed_derive.h"
#include "tag/modulator.h"

namespace wb::core {
namespace {

/// Margin of trace captured before/after the tag frame.
constexpr TimeUs kLeadUs{600'000};   // fills the 400 ms conditioning window
constexpr TimeUs kTailUs{100'000};

wifi::PacketTimeline make_helper_timeline(bool paced, double pps,
                                          TimeUs until,
                                          sim::RngStream& rng) {
  return paced ? wifi::make_cbr_timeline(pps, until, wifi::TrafficParams{},
                                         rng)
               : wifi::make_poisson_timeline(pps, until,
                                             wifi::TrafficParams{}, rng);
}

wifi::PacketTimeline make_experiment_timeline(
    const UplinkExperimentParams& p, TimeUs until, sim::RngStream& rng) {
  if (p.beacons_only) {
    return wifi::make_beacon_timeline(p.helper_pps, until, /*source=*/1,
                                      rng);
  }
  return make_helper_timeline(p.paced_traffic, p.helper_pps, until, rng);
}

}  // namespace

phy::UplinkChannelParams make_channel_params(
    const UplinkExperimentParams& p) {
  phy::UplinkChannelParams ch;
  if (p.helper_pos && p.reader_pos && p.tag_pos) {
    ch.helper_pos = *p.helper_pos;
    ch.reader_pos = *p.reader_pos;
    ch.tag_pos = *p.tag_pos;
  } else {
    ch.reader_pos = {0.0, 0.0};
    ch.tag_pos = {p.tag_reader_distance_m.value(), 0.0};
    ch.helper_pos = {
        (p.tag_reader_distance_m + p.helper_tag_distance_m).value(), 0.0};
  }
  ch.plan = p.plan;
  return ch;
}

namespace {

/// One simulated frame: the payload the tag sent and the raw capture.
struct SimOutput {
  BitVec sent;
  wifi::CaptureTrace trace;
};

SimOutput simulate_one_frame(const UplinkExperimentParams& p,
                             std::uint64_t run) {
  const TimeUs bit_us = p.bit_duration_us();
  const std::uint64_t seed =
      p.seed * 0x9e3779b97f4a7c15ull + run * 0xc2b2ae3d27d4eb4full + 1;

  UplinkSimConfig sim_cfg;
  sim_cfg.channel = make_channel_params(p);
  sim_cfg.nic = p.nic;
  sim_cfg.seed = seed;
  sim_cfg.channel_seed = p.channel_seed;

  const BitVec payload = random_bits(p.payload_bits, seed ^ 0x5151u);
  BitVec frame = barker13();
  frame.insert(frame.end(), payload.begin(), payload.end());

  const TimeUs frame_start = kLeadUs;
  const TimeUs frame_dur =
      bit_us * static_cast<std::int64_t>(frame.size());
  const TimeUs until = frame_start + frame_dur + kTailUs;

  sim::RngStream rng(seed);
  auto traffic_rng = rng.fork("traffic");
  const auto timeline = make_experiment_timeline(p, until, traffic_rng);

  tag::Modulator mod(frame, bit_us, frame_start);
  UplinkSim sim(sim_cfg);
  SimOutput out;
  out.sent = payload;
  out.trace = sim.run(timeline, mod);
  return out;
}

/// Decoder configuration for the plain uplink experiments. Run-invariant
/// (the frame start is the fixed query lead time), so callers hoist the
/// decoder — and with it a workspace and result buffers — out of the run
/// loop and decode every trace through decode_into (DESIGN.md §15).
reader::UplinkDecoderConfig experiment_decoder_config(
    const UplinkExperimentParams& p) {
  const TimeUs bit_us = p.bit_duration_us();
  reader::UplinkDecoderConfig dec;
  dec.source = p.source;
  dec.preamble = barker13();
  dec.payload_bits = p.payload_bits;
  dec.bit_duration_us = bit_us;
  dec.movavg_window_us = p.movavg_window_us;
  dec.num_good_streams =
      p.source == reader::MeasurementSource::kRssi ? 1 : p.num_good_streams;
  dec.hysteresis_sigma = p.hysteresis_sigma;
  dec.sync_threshold = p.sync_threshold;
  // The reader knows roughly when it queried the tag; search +-2 bits.
  dec.search_from = kLeadUs - 2 * bit_us;
  dec.search_to = kLeadUs + 2 * bit_us;
  return dec;
}

}  // namespace

BerMeasurement measure_uplink_ber(const UplinkExperimentParams& p) {
  BerCounter ber;
  BerMeasurement m;
  const reader::UplinkDecoder decoder(experiment_decoder_config(p));
  reader::DecodeWorkspace ws;
  reader::UplinkDecodeResult result;
  for (std::size_t run = 0; run < p.runs; ++run) {
    const auto out = simulate_one_frame(p, run);
    decoder.decode_into(out.trace, ws, result);
    if (!result.found) {
      ++m.failed_syncs;
      ber.add_counts(out.sent.size(), out.sent.size());
      continue;
    }
    ber.add(out.sent, result.payload);
  }
  m.ber = ber.ber_floored();
  m.ber_raw = ber.ber();
  m.bits = ber.bits();
  m.errors = ber.errors();
  return m;
}

BerMeasurement measure_uplink_ber_random_stream(
    const UplinkExperimentParams& p) {
  UplinkExperimentParams q = p;
  q.num_good_streams = 1;

  BerCounter ber;
  BerMeasurement m;
  for (std::size_t run = 0; run < q.runs; ++run) {
    // Decode with one random stream: emulate by conditioning the trace and
    // keeping a single randomly chosen stream.
    const TimeUs bit_us = q.bit_duration_us();
    const std::uint64_t seed =
        q.seed * 0x9e3779b97f4a7c15ull + run * 0xc2b2ae3d27d4eb4full + 1;
    UplinkSimConfig sim_cfg;
    sim_cfg.channel = make_channel_params(q);
    sim_cfg.nic = q.nic;
    sim_cfg.seed = seed;

    const BitVec payload = random_bits(q.payload_bits, seed ^ 0x5151u);
    BitVec frame = barker13();
    frame.insert(frame.end(), payload.begin(), payload.end());
    const TimeUs frame_start = kLeadUs;
    const TimeUs until = frame_start +
                         bit_us * static_cast<std::int64_t>(frame.size()) +
                         kTailUs;
    sim::RngStream rng(seed);
    auto traffic_rng = rng.fork("traffic");
    const auto timeline = make_helper_timeline(q.paced_traffic, q.helper_pps,
                                               until, traffic_rng);
    tag::Modulator mod(frame, bit_us, frame_start);
    UplinkSim sim(sim_cfg);
    const auto trace = sim.run(timeline, mod);

    auto ct = reader::condition(trace, q.source, q.movavg_window_us);
    auto pick_rng = rng.fork("random-stream");
    const std::size_t pick = pick_rng.uniform_int(ct.num_streams());
    reader::ConditionedTrace single;
    single.timestamps = ct.timestamps;
    single.streams.push_back(std::move(ct.streams[pick]));

    reader::UplinkDecoderConfig dec;
    dec.source = q.source;
    dec.preamble = barker13();
    dec.payload_bits = q.payload_bits;
    dec.bit_duration_us = bit_us;
    dec.num_good_streams = 1;
    dec.hysteresis_sigma = q.hysteresis_sigma;
    dec.search_from = frame_start - 2 * bit_us;
    dec.search_to = frame_start + 2 * bit_us;
    reader::UplinkDecoder decoder(dec);
    const auto result = decoder.decode_conditioned(single);
    if (!result.found) {
      ++m.failed_syncs;
      ber.add_counts(payload.size(), payload.size());
      continue;
    }
    ber.add(payload, result.payload);
  }
  m.ber = ber.ber_floored();
  m.ber_raw = ber.ber();
  m.bits = ber.bits();
  m.errors = ber.errors();
  return m;
}

std::vector<double> measure_per_stream_ber(const UplinkExperimentParams& p) {
  std::vector<BerCounter> counters(wifi::kNumCsiStreams);
  for (std::size_t run = 0; run < p.runs; ++run) {
    const TimeUs bit_us = p.bit_duration_us();
    const std::uint64_t seed =
        p.seed * 0x9e3779b97f4a7c15ull + run * 0xc2b2ae3d27d4eb4full + 1;
    UplinkSimConfig sim_cfg;
    sim_cfg.channel = make_channel_params(p);
    sim_cfg.nic = p.nic;
    sim_cfg.seed = seed;
    // One physical placement per distance: Fig 5 maps *which* sub-channels
    // are good for a given multipath profile, so the channel must not be
    // redrawn between runs (only noise and traffic vary).
    sim_cfg.channel_seed = p.seed;
    const BitVec payload = random_bits(p.payload_bits, seed ^ 0x5151u);
    BitVec frame = barker13();
    frame.insert(frame.end(), payload.begin(), payload.end());
    const TimeUs frame_start = kLeadUs;
    const TimeUs until = frame_start +
                         bit_us * static_cast<std::int64_t>(frame.size()) +
                         kTailUs;
    sim::RngStream rng(seed);
    auto traffic_rng = rng.fork("traffic");
    const auto timeline = make_helper_timeline(p.paced_traffic, p.helper_pps,
                                               until, traffic_rng);
    tag::Modulator mod(frame, bit_us, frame_start);
    UplinkSim sim(sim_cfg);
    const auto trace = sim.run(timeline, mod);
    const auto ct = reader::condition(trace, reader::MeasurementSource::kCsi,
                                      p.movavg_window_us);

    for (std::size_t s = 0; s < ct.num_streams(); ++s) {
      reader::ConditionedTrace single;
      single.timestamps = ct.timestamps;
      single.streams.push_back(ct.streams[s]);
      reader::UplinkDecoderConfig dec;
      dec.preamble = barker13();
      dec.payload_bits = p.payload_bits;
      dec.bit_duration_us = bit_us;
      dec.num_good_streams = 1;
      dec.hysteresis_sigma = p.hysteresis_sigma;
      // Per-stream decoding assumes frame timing is known (the paper's
      // per-sub-channel BER maps are computed offline per placement).
      dec.search_from = frame_start;
      dec.search_to = frame_start;
      reader::UplinkDecoder decoder(dec);
      const auto result = decoder.decode_conditioned(single);
      if (!result.found) {
        counters[s].add_counts(payload.size(), payload.size());
      } else {
        counters[s].add(payload, result.payload);
      }
    }
  }
  std::vector<double> bers(counters.size());
  for (std::size_t s = 0; s < counters.size(); ++s) {
    bers[s] = counters[s].ber_floored();
  }
  return bers;
}

double measure_packet_delivery(const UplinkExperimentParams& p) {
  std::size_t delivered = 0;
  const reader::UplinkDecoder decoder(experiment_decoder_config(p));
  reader::DecodeWorkspace ws;
  reader::UplinkDecodeResult result;
  for (std::size_t run = 0; run < p.runs; ++run) {
    const auto out = simulate_one_frame(p, run);
    decoder.decode_into(out.trace, ws, result);
    if (result.found && hamming_distance(out.sent, result.payload) == 0) {
      ++delivered;
    }
  }
  return p.runs ? static_cast<double>(delivered) /
                      static_cast<double>(p.runs)
                : 0.0;
}

double achievable_bit_rate(UplinkExperimentParams p, double target_ber) {
  double best = 0.0;
  for (double rate : kSupportedBitRates) {
    const double m = p.helper_pps / rate;
    if (m < 1.0) continue;  // cannot even get one measurement per bit
    UplinkExperimentParams q = p;
    q.packets_per_bit = m;
    const auto meas = measure_uplink_ber(q);
    // Compare the raw error ratio: the floored convention would make small
    // samples unable to pass any threshold below their floor.
    if (meas.ber_raw < target_ber) best = std::max(best, rate);
  }
  return best;
}

BerMeasurement measure_coded_uplink_ber(const CodedExperimentParams& p) {
  BerCounter ber;
  BerMeasurement m;
  // Codes, chip duration and the decoder are run-invariant; the runs only
  // redraw payloads, noise and traffic. Hoisting them (with a workspace)
  // makes the loop allocation-light, same as measure_uplink_ber.
  const auto chip_us =
      TimeUs::from_us(1e6 * p.packets_per_chip / p.helper_pps);
  const auto codes = make_orthogonal_pair(p.code_length);
  const TimeUs frame_start = kLeadUs;

  reader::CodedDecoderConfig dec;
  dec.codes = codes;
  dec.preamble = barker13();
  dec.payload_bits = p.payload_bits;
  dec.chip_duration_us = chip_us;
  dec.known_start = frame_start;  // query-synchronised experiment (§10)
  const reader::CodedUplinkDecoder decoder(dec);
  reader::DecodeWorkspace ws;
  reader::CodedDecodeResult result;

  for (std::size_t run = 0; run < p.runs; ++run) {
    const std::uint64_t seed =
        p.seed * 0x9e3779b97f4a7c15ull + run * 0xff51afd7ed558ccdull + 1;

    UplinkExperimentParams geo;
    geo.tag_reader_distance_m = p.tag_reader_distance_m;
    geo.helper_tag_distance_m = p.helper_tag_distance_m;
    UplinkSimConfig sim_cfg;
    sim_cfg.channel = make_channel_params(geo);
    sim_cfg.seed = seed;
    sim_cfg.channel_seed = p.channel_seed;

    const BitVec payload = random_bits(p.payload_bits, seed ^ 0xabcdu);
    BitVec frame = barker13();
    frame.insert(frame.end(), payload.begin(), payload.end());

    const TimeUs frame_dur =
        chip_us * static_cast<std::int64_t>(frame.size() * p.code_length);
    const TimeUs until = frame_start + frame_dur + kTailUs;

    sim::RngStream rng(seed);
    auto traffic_rng = rng.fork("traffic");
    const auto timeline = make_helper_timeline(p.paced_traffic, p.helper_pps,
                                               until, traffic_rng);

    tag::Modulator mod(frame, codes, chip_us, frame_start);
    UplinkSim sim(sim_cfg);
    const auto trace = sim.run(timeline, mod);

    decoder.decode_into(trace, ws, result);
    if (!result.found) {
      ber.add_counts(payload.size(), payload.size());
      ++m.failed_syncs;
    } else {
      ber.add(payload, result.payload);
    }
  }
  m.ber = ber.ber_floored();
  m.ber_raw = ber.ber();
  m.bits = ber.bits();
  m.errors = ber.errors();
  return m;
}

std::size_t required_correlation_length(
    CodedExperimentParams p, const std::vector<std::size_t>& candidates,
    double target) {
  for (std::size_t l : candidates) {
    CodedExperimentParams q = p;
    q.code_length = l;
    const auto m = measure_coded_uplink_ber(q);
    if (m.ber_raw < target) return l;
  }
  return 0;
}

BerMeasurement measure_downlink_ber(const DownlinkExperimentParams& p) {
  reader::DownlinkEncoderConfig enc_cfg;
  enc_cfg.slot_us = p.slot_us;
  reader::DownlinkEncoder encoder(enc_cfg);

  const std::size_t burst_bits =
      std::min<std::size_t>(enc_cfg.bits_per_chunk(), p.max_burst_bits);
  BerCounter ber;
  std::size_t sent = 0;
  std::uint64_t round = 0;
  while (sent < p.total_bits) {
    const std::size_t n = std::min(burst_bits, p.total_bits - sent);
    BitVec message = downlink_preamble();
    const BitVec data = random_bits(n, p.seed + round);
    message.insert(message.end(), data.begin(), data.end());
    const auto tx = encoder.encode(message, /*start_us=*/TimeUs{500});

    DownlinkSimConfig cfg;
    cfg.reader_tag_distance_m = p.reader_tag_distance_m;
    cfg.mcu.bit_duration_us = p.slot_us;
    cfg.seed = p.seed * 0x9e3779b9ull + round;
    DownlinkSim sim(cfg);
    const auto report = sim.run(tx, /*ambient=*/{}, tx.end_us + TimeUs{1'000});

    // Compare detector slot decisions against the transmitted bits.
    BitVec truth;
    truth.reserve(tx.slots.size());
    for (const auto& s : tx.slots) truth.push_back(s.bit);
    ber.add(truth, report.slot_levels);
    sent += n;
    ++round;
  }
  BerMeasurement m;
  m.ber = ber.ber_floored();
  m.ber_raw = ber.ber();
  m.bits = ber.bits();
  m.errors = ber.errors();
  return m;
}

std::vector<UplinkGridPoint> expand_uplink_grid(const UplinkGridSpec& spec) {
  std::vector<UplinkGridPoint> grid;
  grid.reserve(spec.sources.size() * spec.distances_m.size() *
               spec.packets_per_bit.size());
  for (const auto source : spec.sources) {
    for (const double distance_m : spec.distances_m) {
      for (const double pkts : spec.packets_per_bit) {
        UplinkGridPoint pt;
        pt.index = grid.size();
        pt.source = source;
        pt.distance_m = Meters{distance_m};
        pt.packets_per_bit = pkts;
        pt.params = spec.base;
        pt.params.source = source;
        pt.params.tag_reader_distance_m = Meters{distance_m};
        pt.params.packets_per_bit = pkts;
        pt.params.seed = runner::derive_seed(spec.base.seed, pt.index);
        grid.push_back(std::move(pt));
      }
    }
  }
  return grid;
}

std::vector<CodedGridPoint> expand_coded_grid(const CodedGridSpec& spec) {
  std::vector<CodedGridPoint> grid;
  grid.reserve(spec.distances_m.size() * spec.placements);
  for (const double distance_m : spec.distances_m) {
    for (std::size_t placement = 0; placement < spec.placements;
         ++placement) {
      CodedGridPoint pt;
      pt.index = grid.size();
      pt.distance_m = Meters{distance_m};
      pt.placement = placement;
      pt.params = spec.base;
      pt.params.tag_reader_distance_m = Meters{distance_m};
      pt.params.channel_seed = spec.placement_channel_seed_base + placement;
      pt.params.seed = runner::derive_seed(spec.base.seed, pt.index);
      grid.push_back(std::move(pt));
    }
  }
  return grid;
}

std::vector<DownlinkGridPoint> expand_downlink_grid(
    const DownlinkGridSpec& spec) {
  std::vector<DownlinkGridPoint> grid;
  grid.reserve(spec.distances_m.size() * spec.slot_durations_us.size());
  for (const double distance_m : spec.distances_m) {
    for (const TimeUs slot_us : spec.slot_durations_us) {
      DownlinkGridPoint pt;
      pt.index = grid.size();
      pt.distance_m = Meters{distance_m};
      pt.slot_us = slot_us;
      pt.params = spec.base;
      pt.params.reader_tag_distance_m = Meters{distance_m};
      pt.params.slot_us = slot_us;
      pt.params.seed = runner::derive_seed(spec.base.seed, pt.index);
      grid.push_back(std::move(pt));
    }
  }
  return grid;
}

}  // namespace wb::core
