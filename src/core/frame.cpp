#include "core/frame.h"

#include <algorithm>

#include "util/crc.h"

namespace wb::core {

const BitVec& uplink_preamble() { return barker13(); }

const BitVec& uplink_postamble() {
  static const BitVec k = [] {
    BitVec v = barker13();
    std::reverse(v.begin(), v.end());
    return v;
  }();
  return k;
}

BitVec build_uplink_frame(const BitVec& data) {
  BitVec frame = uplink_preamble();
  frame.insert(frame.end(), data.begin(), data.end());
  const auto crc = unpack_uint(crc8_bits(data), 8);
  frame.insert(frame.end(), crc.begin(), crc.end());
  const auto& post = uplink_postamble();
  frame.insert(frame.end(), post.begin(), post.end());
  return frame;
}

std::size_t uplink_payload_bits(std::size_t data_bits) {
  return data_bits + 8 + uplink_postamble().size();
}

std::optional<BitVec> parse_uplink_payload(const BitVec& payload,
                                           std::size_t data_bits) {
  if (payload.size() != uplink_payload_bits(data_bits)) return std::nullopt;
  BitVec data(payload.begin(),
              payload.begin() + static_cast<long>(data_bits));
  const auto crc_bits = BitVec(
      payload.begin() + static_cast<long>(data_bits),
      payload.begin() + static_cast<long>(data_bits + 8));
  if (static_cast<std::uint8_t>(pack_uint(crc_bits)) != crc8_bits(data)) {
    return std::nullopt;
  }
  const auto& post = uplink_postamble();
  if (!std::equal(post.begin(), post.end(),
                  payload.end() - static_cast<long>(post.size()))) {
    return std::nullopt;
  }
  return data;
}

const BitVec& downlink_preamble() {
  static const BitVec k = bits_from_string("1100100111111111");
  return k;
}

BitVec build_downlink_frame(const BitVec& data) {
  BitVec frame = downlink_preamble();
  BitVec d = data;
  d.resize(kDownlinkDataBits, 0);
  frame.insert(frame.end(), d.begin(), d.end());
  const auto crc = unpack_uint(crc8_bits(d), 8);
  frame.insert(frame.end(), crc.begin(), crc.end());
  return frame;
}

std::optional<BitVec> parse_downlink_payload(const BitVec& payload) {
  if (payload.size() != kDownlinkPayloadBits) return std::nullopt;
  BitVec data(payload.begin(),
              payload.begin() + static_cast<long>(kDownlinkDataBits));
  const BitVec crc_bits(payload.begin() + kDownlinkDataBits, payload.end());
  if (static_cast<std::uint8_t>(pack_uint(crc_bits)) != crc8_bits(data)) {
    return std::nullopt;
  }
  return data;
}

BitVec Query::to_bits() const {
  BitVec out;
  out.reserve(kDownlinkDataBits);
  auto append = [&out](std::uint64_t v, std::size_t n) {
    const auto bits = unpack_uint(v, n);
    out.insert(out.end(), bits.begin(), bits.end());
  };
  append(tag_address, 16);
  append(command, 8);
  append(bitrate_code, 8);
  append(argument & 0xFFFFFFu, 24);
  return out;
}

std::optional<Query> Query::from_bits(const BitVec& data) {
  if (data.size() != kDownlinkDataBits) return std::nullopt;
  Query q;
  auto read = [&data](std::size_t at, std::size_t n) {
    return pack_uint(
        std::span<const std::uint8_t>(data.data() + at, n));
  };
  q.tag_address = static_cast<std::uint16_t>(read(0, 16));
  q.command = static_cast<std::uint8_t>(read(16, 8));
  q.bitrate_code = static_cast<std::uint8_t>(read(24, 8));
  q.argument = static_cast<std::uint32_t>(read(32, 24));
  return q;
}

}  // namespace wb::core
